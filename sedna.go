// Package sedna is a from-scratch Go reproduction of "Sedna: A Memory Based
// Key-Value Storage System for Realtime Processing in Cloud" (Dai, Li,
// Wang, Sun, Zhou — IEEE CLUSTER Workshops 2012).
//
// Sedna is a RAM-based distributed key-value store for realtime cloud
// applications. A cluster consists of a small coordination sub-cluster (a
// ZooKeeper-like ensemble, implemented here from scratch) plus any number
// of data nodes. Data is partitioned with consistent hashing over a fixed
// set of virtual nodes, replicated N ways with quorum reads and writes
// (R+W > N, W > N/2) for eventual consistency, and every row carries the
// Dirty/Monitors metadata that powers Sedna's trigger-based realtime
// programming APIs: jobs watch keys, tables or datasets, filters gate
// updates, actions process them and write results back — with flow control
// that bounds trigger storms.
//
// # Quick start
//
// Boot a coordination member, a few data nodes, and a client:
//
//	coordTr := sedna.NewTCPTransport("127.0.0.1:7000")
//	ensemble := sedna.NewCoordServer(sedna.CoordConfig{
//	    ID: 0, Members: []string{"127.0.0.1:7000"}, Transport: coordTr,
//	})
//	ensemble.Start()
//
//	tr := sedna.NewTCPTransport("127.0.0.1:7101")
//	node, _ := sedna.NewServer(sedna.ServerConfig{
//	    Node:         "127.0.0.1:7101",
//	    Transport:    tr,
//	    CoordServers: []string{"127.0.0.1:7000"},
//	    Bootstrap:    true,
//	})
//	node.Start()
//
//	cli, _ := sedna.NewClient(sedna.ClientConfig{
//	    Servers: []string{"127.0.0.1:7101"},
//	    Caller:  sedna.NewTCPTransport(""),
//	})
//	cli.WriteLatest(ctx, sedna.JoinKey("web", "pages", "p1"), []byte("hi"))
//
// See examples/ for complete programs, including the paper's micro-blogging
// realtime search engine (§V) built on the trigger APIs.
package sedna

import (
	"sedna/internal/client"
	"sedna/internal/coord"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/netsim"
	"sedna/internal/obs"
	"sedna/internal/persist"
	"sedna/internal/quorum"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/trigger"
	"sedna/internal/wal"
)

// --- keys and values ---

// Key is a hierarchical key: "dataset/table/name".
type Key = kv.Key

// JoinKey builds a fully-qualified key from its components.
func JoinKey(dataset, table, name string) Key { return kv.Join(dataset, table, name) }

// Timestamp is Sedna's hybrid logical timestamp.
type Timestamp = kv.Timestamp

// Value is one element of a read_all result.
type Value = client.Value

// --- server side ---

// ServerConfig configures one Sedna data node.
type ServerConfig = core.Config

// Server is one Sedna data node (one "real node" of the paper).
type Server = core.Server

// NewServer builds a data node; call Start to bring it up.
func NewServer(cfg ServerConfig) (*Server, error) { return core.NewServer(cfg) }

// QuorumConfig fixes the replication parameters N, R and W.
type QuorumConfig = quorum.Config

// DefaultQuorum returns the paper's N=3, R=2, W=2.
func DefaultQuorum() QuorumConfig { return quorum.DefaultConfig() }

// NodeID identifies a data node (its dialable address).
type NodeID = ring.NodeID

// --- persistence ---

// PersistConfig selects a node's durability strategy.
type PersistConfig = persist.Config

// Persistency strategies (Table I of the paper).
const (
	PersistNone       = persist.None
	PersistPeriodic   = persist.Periodic
	PersistWriteAhead = persist.WriteAhead
	PersistHybrid     = persist.Hybrid
)

// WAL sync policies.
const (
	SyncNever    = wal.SyncNever
	SyncInterval = wal.SyncInterval
	SyncAlways   = wal.SyncAlways
)

// --- coordination service ---

// CoordConfig configures one coordination ensemble member.
type CoordConfig = coord.ServerConfig

// CoordServer is one coordination ensemble member.
type CoordServer = coord.Server

// NewCoordServer builds a coordination member; call Start to bring it up.
func NewCoordServer(cfg CoordConfig) *CoordServer { return coord.NewServer(cfg) }

// --- client side ---

// ClientConfig configures a Sedna client.
type ClientConfig = client.Config

// Client provides the paper's data access APIs: WriteLatest, WriteAll,
// ReadLatest, ReadAll, Delete, plus Subscribe for pushed changes and the
// causal-replication surface (ReadSiblings, WriteLatestCtx, DeleteCtx).
type Client = client.Client

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) { return client.New(cfg) }

// Siblings is the result of a ReadSiblings call: every causally
// concurrent value of a key plus the opaque context token a follow-up
// WriteLatestCtx/DeleteCtx uses to supersede exactly what was read
// (DESIGN.md §14).
type Siblings = client.Siblings

// Context is the opaque causal-context token carried from a
// ReadSiblings result into a context-carrying write.
type Context = client.Context

// MGetResult is one key's outcome in a batched multi-key read.
type MGetResult = client.MGetResult

// MSetItem is one key of a batched multi-key write.
type MSetItem = client.MSetItem

// Subscription streams changed data to a client.
type Subscription = client.Subscription

// SubscribeOptions tunes a subscription.
type SubscribeOptions = client.SubscribeOptions

// SubHook names monitored data for a subscription.
type SubHook = client.Hook

// Event is one pushed change.
type Event = client.Event

// Client-visible errors.
var (
	// ErrOutdated is the paper's "outdated" write reply.
	ErrOutdated = core.ErrOutdated
	// ErrFailure is the paper's "failure" reply (recovery scheduled).
	ErrFailure = core.ErrFailure
	// ErrNotFound reports a read of a key with no live value.
	ErrNotFound = core.ErrNotFound
)

// --- trigger APIs (§IV) ---

// Job is one trigger application: hooks + filter + action.
type Job = trigger.Job

// Hook names monitored data (key, table or dataset granularity).
type Hook = trigger.Hook

// KeyHook monitors one exact key.
func KeyHook(k Key) Hook { return trigger.KeyHook(k) }

// TableHook monitors every key of one table.
func TableHook(dataset, table string) Hook { return trigger.TableHook(dataset, table) }

// DatasetHook monitors every key of one dataset.
func DatasetHook(dataset string) Hook { return trigger.DatasetHook(dataset) }

// Filter gates trigger events; it sees the old and new snapshots (the
// paper's assert(oldKey, oldValue, newKey, newValue)).
type Filter = trigger.Filter

// FilterFunc adapts a function to Filter.
type FilterFunc = trigger.FilterFunc

// Snapshot is one side of a filter comparison.
type Snapshot = trigger.Snapshot

// Action processes fired events.
type Action = trigger.Action

// ActionFunc adapts a function to Action.
type ActionFunc = trigger.ActionFunc

// Result collects an action's output writes.
type Result = trigger.Result

// --- transports ---

// Transport carries Sedna RPCs.
type Transport = transport.Transport

// Caller issues Sedna RPCs.
type Caller = transport.Caller

// NewTCPTransport returns a real TCP transport listening on addr once
// served ("" or ":0" pick an ephemeral port; the empty address is fine for
// client-only use).
func NewTCPTransport(addr string) *transport.TCPTransport { return transport.NewTCP(addr) }

// TransportStageConfig tunes the staged server pipeline: reader shards,
// worker-pool size, dispatch-queue depth and the connection cap. Zero
// fields take defaults; Spawn=true selects the legacy
// goroutine-per-request server.
type TransportStageConfig = transport.StageConfig

// NewTCPTransportStaged returns a TCP transport whose server side runs the
// staged pipeline (sharded accept, event-loop readers, bounded dispatch,
// fixed worker pool, per-connection writers) with the given tuning.
func NewTCPTransportStaged(addr string, cfg TransportStageConfig) *transport.TCPTransport {
	return transport.NewTCPStaged(addr, cfg)
}

// --- observability ---

// ObsRegistry collects a process's counters, gauges and latency
// histograms. Pass one registry through ServerConfig.Obs, ClientConfig.Obs
// or CoordConfig.Obs to collect that component's metrics; a nil registry
// disables collection with no code changes.
type ObsRegistry = obs.Registry

// ObsSnapshot is a point-in-time copy of a registry. Snapshots from
// different nodes Merge into cluster-wide totals.
type ObsSnapshot = obs.Snapshot

// TraceSnapshot is one sampled per-op trace: stage names with timestamps
// from client arrival through quorum fan-out to the memstore.
type TraceSnapshot = obs.TraceSnapshot

// NodeStats is one data node's observability report as served by the
// stats RPC: its snapshot plus sampled traces.
type NodeStats = client.NodeStats

// NewObsRegistry creates an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// SimNetwork is the in-process simulated network used by tests, examples
// and the paper-reproduction benchmarks.
type SimNetwork = netsim.Network

// SimProfile describes simulated link behaviour.
type SimProfile = netsim.Profile

// NewSimNetwork creates a simulated network with the given default link
// profile and seed.
func NewSimNetwork(p SimProfile, seed int64) *SimNetwork { return netsim.NewNetwork(p, seed) }

// GigabitLAN approximates the paper's testbed network (1 GbE, <1ms RTT).
func GigabitLAN() SimProfile { return netsim.GigabitLAN() }
