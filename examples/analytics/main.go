// Analytics demonstrates Sedna as the storage layer of a realtime analytics
// pipeline, the paper's motivating Facebook-Realtime-Analytics scenario
// (§I): a high-rate stream of page-view events is written into Sedna, a
// trigger job aggregates per-URL counters as the data arrives, and a
// dashboard reads the live counters — no batch job, no polling of raw data.
//
// The example also shows flow control (§IV-B) earning its keep: the
// aggregator fires at most once per interval per URL no matter how hot the
// event stream is, and the filter drops malformed events before any action
// runs.
//
// Run it with:
//
//	go run ./examples/analytics
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sedna"
)

func main() {
	net := sedna.NewSimNetwork(sedna.GigabitLAN(), 11)

	ensemble := sedna.NewCoordServer(sedna.CoordConfig{
		ID: 0, Members: []string{"coord-0"}, Transport: net.Endpoint("coord-0"),
	})
	must(ensemble.Start())
	defer ensemble.Close()

	nodeAddrs := []string{"node-0", "node-1", "node-2"}
	var nodes []*sedna.Server
	for i, addr := range nodeAddrs {
		srv, err := sedna.NewServer(sedna.ServerConfig{
			Node:            sedna.NodeID(addr),
			Transport:       net.Endpoint(addr),
			CoordServers:    []string{"coord-0"},
			CoordCaller:     net.Endpoint(addr + "-coord"),
			Bootstrap:       i == 0,
			VNodes:          48,
			ScanEvery:       2 * time.Millisecond,
			TriggerInterval: 20 * time.Millisecond, // flow-control window
		})
		must(err)
		must(srv.Start())
		defer srv.Close()
		nodes = append(nodes, srv)
	}
	waitForMembers(nodes, len(nodes))

	// --- The aggregator job, registered on every node. Events arrive as
	// "url|ms" strings under events/views/<eventID>; the job accumulates
	// per-URL view counts and total latency, and publishes the aggregate
	// to stats/views/<url> through the Result (write-backs run in
	// parallel, §IV-D).
	type agg struct {
		views   int
		totalMs int
	}
	var mu sync.Mutex
	perURL := map[string]*agg{} // shared by the three nodes' jobs (one process)
	seen := map[string]bool{}   // event ids already counted: the row is
	// triple-replicated so up to three node-local jobs fire per event;
	// making the action idempotent keeps the aggregate exact (actions in
	// an at-least-once trigger world should always be written this way).
	var filtered, processed int

	for _, srv := range nodes {
		_, err := srv.Trigger().Register(sedna.Job{
			Name:  "view-aggregator",
			Hooks: []sedna.Hook{sedna.TableHook("events", "views")},
			// The paper: "the assert function should be as simple as
			// possible". This one just validates the event shape.
			Filter: sedna.FilterFunc(func(old, new sedna.Snapshot) bool {
				okShape := new.Exists && strings.Count(string(new.Value), "|") == 1
				if !okShape {
					mu.Lock()
					filtered++
					mu.Unlock()
				}
				return okShape
			}),
			Action: sedna.ActionFunc(func(ctx context.Context, key sedna.Key, values [][]byte, res *sedna.Result) error {
				parts := strings.SplitN(string(values[0]), "|", 2)
				msVal, err := strconv.Atoi(parts[1])
				if err != nil {
					return err
				}
				url := parts[0]
				mu.Lock()
				if seen[key.Name()] {
					mu.Unlock()
					return nil // another replica's job already counted it
				}
				seen[key.Name()] = true
				a := perURL[url]
				if a == nil {
					a = &agg{}
					perURL[url] = a
				}
				a.views++
				a.totalMs += msVal
				processed++
				snapshot := fmt.Sprintf("views=%d avg_ms=%d", a.views, a.totalMs/a.views)
				mu.Unlock()
				res.Emit(sedna.JoinKey("stats", "views", url), []byte(snapshot))
				return nil
			}),
		})
		must(err)
	}

	// --- The event producers: three writers hammer the cluster.
	producer, err := sedna.NewClient(sedna.ClientConfig{
		Servers: nodeAddrs, Caller: net.Endpoint("producer"), Source: "producer",
	})
	must(err)
	ctx := context.Background()
	urls := []string{"/home", "/search", "/profile", "/checkout"}
	rng := rand.New(rand.NewSource(5))

	const events = 600
	fmt.Printf("streaming %d page-view events...\n", events)
	start := time.Now()
	for i := 0; i < events; i++ {
		url := urls[rng.Intn(len(urls))]
		payload := fmt.Sprintf("%s|%d", url, 10+rng.Intn(90))
		if i%97 == 0 {
			payload = "malformed-event" // the filter must drop these
		}
		key := sedna.JoinKey("events", "views", fmt.Sprintf("ev-%06d", i))
		must(producer.WriteLatest(ctx, key, []byte(payload)))
	}
	fmt.Printf("ingest finished in %v (%.0f events/s)\n",
		time.Since(start).Round(time.Millisecond),
		float64(events)/time.Since(start).Seconds())

	// --- The dashboard: read the live aggregates from Sedna.
	dashboard, err := sedna.NewClient(sedna.ClientConfig{
		Servers: nodeAddrs, Caller: net.Endpoint("dashboard"), Source: "dashboard",
	})
	must(err)
	deadline := time.Now().Add(20 * time.Second)
	for {
		allDone := true
		mu.Lock()
		totalViews := 0
		for _, a := range perURL {
			totalViews += a.views
		}
		mu.Unlock()
		// Events are triple-replicated, so each event is seen by up to 3
		// node-local jobs; we wait until every URL has a published stat.
		for _, url := range urls {
			if _, _, err := dashboard.ReadLatest(ctx, sedna.JoinKey("stats", "views", url)); err != nil {
				allDone = false
			}
		}
		if allDone && totalViews > 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("aggregates never materialised")
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("\nlive dashboard (read straight from Sedna):")
	sort.Strings(urls)
	for _, url := range urls {
		val, ts, err := dashboard.ReadLatest(ctx, sedna.JoinKey("stats", "views", url))
		must(err)
		fmt.Printf("  %-10s %s (as of %s)\n", url, val, ts)
	}
	mu.Lock()
	fmt.Printf("\nfilter dropped %d malformed events; %d distinct events aggregated\n", filtered, processed)
	mu.Unlock()
	var fired, coalesced uint64
	for _, srv := range nodes {
		st := srv.Stats()
		fired += st.Trigger.Fired
		coalesced += st.Trigger.Coalesced
	}
	fmt.Printf("trigger engine: %d firings, %d coalesced by flow control\n", fired, coalesced)
	fmt.Println("analytics demo done")
}

func waitForMembers(nodes []*sedna.Server, n int) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, s := range nodes {
			r := s.Ring()
			if r == nil || len(r.Nodes()) != n {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("cluster never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
