// Microblog reproduces the paper's §V use case: a realtime micro-blogging
// search engine built on Sedna's storage layer and trigger APIs (Fig. 6).
//
// The pipeline:
//
//	(1) users tweet            -> crawler writes social/messages/<id>
//	                              (write_all) and mention edges into
//	                              social/follows/<user>
//	(2) trigger "indexer"      -> monitors social/messages, tokenises each
//	                              new tweet and updates the inverted index
//	                              search/index/<term> — each node publishes
//	                              its own postings via write_all, so index
//	                              updates from different replicas never
//	                              conflict
//	(3) trigger "social-graph" -> monitors social/follows and maintains
//	                              follower counts in social/graph/<user>
//	(4) query                  -> read_all merges every node's postings,
//	                              fetches the tweets and ranks them by
//	                              recency, author followers and retweets
//
// The program reports the paper's headline metric: the interval between a
// tweet being crawled (step 1) and being searchable (step 7), which the
// paper requires to be "less than several minutes" — here it is
// milliseconds.
//
// Run it with:
//
//	go run ./examples/microblog
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"sedna"
	"sedna/internal/workload"
)

// storedTweet is the value stored under social/messages/<id>.
type storedTweet struct {
	ID       string    `json:"id"`
	Author   string    `json:"author"`
	Text     string    `json:"text"`
	Crawled  time.Time `json:"crawled"`
	Retweets int       `json:"retweets"`
}

func main() {
	net := sedna.NewSimNetwork(sedna.GigabitLAN(), 7)

	// Coordination member + three data nodes.
	ensemble := sedna.NewCoordServer(sedna.CoordConfig{
		ID: 0, Members: []string{"coord-0"}, Transport: net.Endpoint("coord-0"),
	})
	must(ensemble.Start())
	defer ensemble.Close()

	nodeAddrs := []string{"node-0", "node-1", "node-2"}
	var nodes []*sedna.Server
	for i, addr := range nodeAddrs {
		srv, err := sedna.NewServer(sedna.ServerConfig{
			Node:            sedna.NodeID(addr),
			Transport:       net.Endpoint(addr),
			CoordServers:    []string{"coord-0"},
			CoordCaller:     net.Endpoint(addr + "-coord"),
			Bootstrap:       i == 0,
			VNodes:          48,
			ScanEvery:       2 * time.Millisecond,
			TriggerInterval: 5 * time.Millisecond,
		})
		must(err)
		must(srv.Start())
		defer srv.Close()
		nodes = append(nodes, srv)
	}
	waitForMembers(nodes, len(nodes))

	// --- Process layer: register the trigger jobs on every node (each
	// node fires for the replicas it stores).
	for _, srv := range nodes {
		registerIndexer(net, srv)
		registerSocialGraph(net, srv)
	}

	// --- Storage layer: the crawler.
	crawler, err := sedna.NewClient(sedna.ClientConfig{
		Servers: nodeAddrs, Caller: net.Endpoint("crawler"), Source: "crawler",
	})
	must(err)
	ctx := context.Background()

	stream := workload.NewTweetStream(20, 99)
	fmt.Println("crawling 200 tweets...")
	var lastTweet storedTweet
	crawlStart := time.Now()
	for i := 0; i < 200; i++ {
		tw := stream.Next()
		st := storedTweet{
			ID: tw.ID, Author: tw.Author, Text: tw.Text,
			Crawled: time.Now(), Retweets: i % 7,
		}
		blob, _ := json.Marshal(st)
		// write_all: the crawler's copy lives alongside any other source
		// (e.g. a second crawler shard) without locking (§III-F).
		must(crawler.WriteAll(ctx, sedna.JoinKey("social", "messages", st.ID), blob))
		for _, m := range tw.Mentions {
			must(crawler.WriteAll(ctx, sedna.JoinKey("social", "follows", m),
				[]byte(tw.Author+"->"+m)))
		}
		lastTweet = st
	}
	fmt.Printf("crawl finished in %v\n", time.Since(crawlStart).Round(time.Millisecond))

	// --- Realtime requirement: wait until the LAST crawled tweet is
	// searchable and report the step-1-to-7 latency.
	terms := tokenize(lastTweet.Text)
	query := terms[0]
	deadline := time.Now().Add(30 * time.Second)
	var searchable time.Time
	for {
		ids := lookupIndex(ctx, crawler, query)
		if contains(ids, lastTweet.ID) {
			searchable = time.Now()
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("tweet %s never became searchable for %q", lastTweet.ID, query)
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("tweet %s searchable %v after being crawled (paper budget: minutes)\n",
		lastTweet.ID, searchable.Sub(lastTweet.Crawled).Round(time.Millisecond))

	// --- Query path: rank results for a few searches.
	for _, q := range []string{"realtime", "cloud", query} {
		results := search(ctx, crawler, q, 3)
		fmt.Printf("\nsearch %q -> %d hits, top %d:\n", q, results.total, len(results.top))
		for i, r := range results.top {
			fmt.Printf("  %d. [score %.1f] %s @%s: %s\n", i+1, r.score, r.tweet.ID, r.tweet.Author, r.tweet.Text)
		}
	}
	fmt.Println("\nmicroblog search engine demo done")
}

// registerIndexer installs the paper's Indexer trigger: "define a Sedna
// trigger monitoring on the web pages data set and perform text parsing and
// index establishing" (§IV). Each node keeps its own postings per term and
// publishes them with write_all, so replicas never fight over the index.
func registerIndexer(net *sedna.SimNetwork, srv *sedna.Server) {
	nodeCli, err := sedna.NewClient(sedna.ClientConfig{
		Servers: []string{string(srv.Node())},
		Caller:  net.Endpoint(string(srv.Node()) + "-indexer"),
		Source:  "indexer@" + string(srv.Node()),
	})
	must(err)
	var mu sync.Mutex
	postings := map[string]map[string]bool{} // term -> tweet ids

	_, err = srv.Trigger().Register(sedna.Job{
		Name:  "indexer",
		Hooks: []sedna.Hook{sedna.TableHook("social", "messages")},
		// Index only real content; the filter is the cheap inline gate.
		Filter: sedna.FilterFunc(func(old, new sedna.Snapshot) bool {
			return new.Exists && len(new.Value) > 0
		}),
		Action: sedna.ActionFunc(func(ctx context.Context, key sedna.Key, values [][]byte, res *sedna.Result) error {
			var tw storedTweet
			if err := json.Unmarshal(values[0], &tw); err != nil {
				return err
			}
			mu.Lock()
			dirty := map[string][]string{}
			for _, term := range tokenize(tw.Text) {
				set := postings[term]
				if set == nil {
					set = map[string]bool{}
					postings[term] = set
				}
				if !set[tw.ID] {
					set[tw.ID] = true
					ids := make([]string, 0, len(set))
					for id := range set {
						ids = append(ids, id)
					}
					sort.Strings(ids)
					dirty[term] = ids
				}
			}
			mu.Unlock()
			// Publish the updated postings lists. Result writes go through
			// the engine in parallel, but postings need write_all (per-node
			// sources), so write them directly.
			for term, ids := range dirty {
				blob, _ := json.Marshal(ids)
				if err := nodeCli.WriteAll(ctx, sedna.JoinKey("search", "index", term), blob); err != nil {
					return err
				}
			}
			return nil
		}),
	})
	must(err)
}

// registerSocialGraph installs the relationship job: "register monitors on
// users' relationship data, when data changes, the job will start to run to
// calculate new social graphic" (§V).
func registerSocialGraph(net *sedna.SimNetwork, srv *sedna.Server) {
	var mu sync.Mutex
	followers := map[string]int{}
	_, err := srv.Trigger().Register(sedna.Job{
		Name:  "social-graph",
		Hooks: []sedna.Hook{sedna.TableHook("social", "follows")},
		Action: sedna.ActionFunc(func(ctx context.Context, key sedna.Key, values [][]byte, res *sedna.Result) error {
			user := key.Name()
			mu.Lock()
			followers[user]++
			n := followers[user]
			mu.Unlock()
			res.Emit(sedna.JoinKey("social", "graph", user), []byte(fmt.Sprintf("%d", n)))
			return nil
		}),
	})
	must(err)
}

// lookupIndex merges every node's postings for a term (read_all).
func lookupIndex(ctx context.Context, cli *sedna.Client, term string) []string {
	vals, err := cli.ReadAll(ctx, sedna.JoinKey("search", "index", term))
	if err != nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, v := range vals {
		var ids []string
		if json.Unmarshal(v.Data, &ids) != nil {
			continue
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

type hit struct {
	tweet storedTweet
	score float64
}

type searchResult struct {
	total int
	top   []hit
}

// search implements the paper's ranking factors: message timeline, the
// author's importance (follower count) and the message's retweet count.
func search(ctx context.Context, cli *sedna.Client, term string, k int) searchResult {
	ids := lookupIndex(ctx, cli, term)
	res := searchResult{total: len(ids)}
	now := time.Now()
	for _, id := range ids {
		raw, _, err := cli.ReadLatest(ctx, sedna.JoinKey("social", "messages", id))
		if err != nil {
			continue
		}
		var tw storedTweet
		if json.Unmarshal(raw, &tw) != nil {
			continue
		}
		score := 0.0
		// Recency: newer tweets score higher.
		age := now.Sub(tw.Crawled).Seconds()
		score += 10 / (1 + age)
		// Author importance from the social-graph job's output.
		if f, _, err := cli.ReadLatest(ctx, sedna.JoinKey("social", "graph", tw.Author)); err == nil {
			var n int
			fmt.Sscanf(string(f), "%d", &n)
			score += float64(n)
		}
		// Retweet count.
		score += float64(tw.Retweets) * 0.5
		res.top = append(res.top, hit{tweet: tw, score: score})
	}
	sort.Slice(res.top, func(i, j int) bool { return res.top[i].score > res.top[j].score })
	if len(res.top) > k {
		res.top = res.top[:k]
	}
	return res
}

func tokenize(text string) []string {
	var out []string
	for _, w := range strings.Fields(strings.ToLower(text)) {
		w = strings.TrimPrefix(w, "@")
		if len(w) >= 3 {
			out = append(out, w)
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func waitForMembers(nodes []*sedna.Server, n int) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, s := range nodes {
			r := s.Ring()
			if r == nil || len(r.Nodes()) != n {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("cluster never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
