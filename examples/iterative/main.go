// Iterative reproduces the paper's trigger-loop programming pattern
// (Fig. 4): multiple triggers push each other forward to implement an
// iterative computation, a stop-condition filter terminates the loop at a
// fixed point, and flow control keeps the cycle from flooding the cluster
// (§IV-B's ripple effect).
//
// The computation is single-source shortest hops over a small directed
// graph, iterated entirely through Sedna triggers:
//
//   - graph/dist/<node> holds the current best hop-count for each node;
//   - the "relax" trigger monitors graph/dist: whenever a node's distance
//     improves, it emits candidate distances for that node's neighbours;
//   - a candidate write only fires the trigger again if it actually lowers
//     the stored distance — the Filter is the stop condition, so the loop
//     terminates exactly when distances reach the fixed point.
//
// Run it with:
//
//	go run ./examples/iterative
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"time"

	"sedna"
)

// The demo graph (directed edges).
var edges = map[string][]string{
	"a": {"b", "c"},
	"b": {"d"},
	"c": {"d", "e"},
	"d": {"f"},
	"e": {"f", "g"},
	"f": {"h"},
	"g": {"h"},
	"h": {},
	// An unreachable island: must stay at infinity.
	"z": {"a"},
}

// Expected hop counts from "a".
var want = map[string]int{
	"a": 0, "b": 1, "c": 1, "d": 2, "e": 2, "f": 3, "g": 3, "h": 4,
}

func main() {
	net := sedna.NewSimNetwork(sedna.GigabitLAN(), 21)

	ensemble := sedna.NewCoordServer(sedna.CoordConfig{
		ID: 0, Members: []string{"coord-0"}, Transport: net.Endpoint("coord-0"),
	})
	must(ensemble.Start())
	defer ensemble.Close()

	nodeAddrs := []string{"node-0", "node-1", "node-2"}
	var nodes []*sedna.Server
	for i, addr := range nodeAddrs {
		srv, err := sedna.NewServer(sedna.ServerConfig{
			Node:            sedna.NodeID(addr),
			Transport:       net.Endpoint(addr),
			CoordServers:    []string{"coord-0"},
			CoordCaller:     net.Endpoint(addr + "-coord"),
			Bootstrap:       i == 0,
			VNodes:          48,
			ScanEvery:       2 * time.Millisecond,
			TriggerInterval: 10 * time.Millisecond,
		})
		must(err)
		must(srv.Start())
		defer srv.Close()
		nodes = append(nodes, srv)
	}
	waitForMembers(nodes, len(nodes))

	// --- The relax trigger, on every node. The job's Deadline is the
	// paper's "timeout measurement to avoid infinite execution".
	for _, srv := range nodes {
		_, err := srv.Trigger().Register(sedna.Job{
			Name:     "relax",
			Hooks:    []sedna.Hook{sedna.TableHook("graph", "dist")},
			Deadline: time.Minute,
			// Stop condition: only react when the distance improved. The
			// filter compares the OLD and NEW values — exactly why the
			// paper gives assert all four arguments (§IV-D).
			Filter: sedna.FilterFunc(func(old, new sedna.Snapshot) bool {
				if !new.Exists {
					return false
				}
				newDist := atoi(string(new.Value))
				if !old.Exists {
					return true
				}
				return newDist < atoi(string(old.Value))
			}),
			Action: sedna.ActionFunc(func(ctx context.Context, key sedna.Key, values [][]byte, res *sedna.Result) error {
				node := key.Name()
				d := atoi(string(values[0]))
				for _, nb := range edges[node] {
					// Candidate distance for each neighbour. The write is
					// unconditional; the neighbour's own filter decides
					// whether it is an improvement worth propagating.
					res.Emit(sedna.JoinKey("graph", "cand", nb), []byte(strconv.Itoa(d+1)))
				}
				return nil
			}),
		})
		must(err)

		// The "min" trigger folds candidates into graph/dist, keeping the
		// minimum — the second trigger of the Fig. 4 circle.
		nodeCli, err := sedna.NewClient(sedna.ClientConfig{
			Servers: []string{string(srv.Node())},
			Caller:  net.Endpoint(string(srv.Node()) + "-min"),
			Source:  "min@" + string(srv.Node()),
		})
		must(err)
		_, err = srv.Trigger().Register(sedna.Job{
			Name:     "min-fold",
			Hooks:    []sedna.Hook{sedna.TableHook("graph", "cand")},
			Deadline: time.Minute,
			Action: sedna.ActionFunc(func(ctx context.Context, key sedna.Key, values [][]byte, res *sedna.Result) error {
				node := key.Name()
				cand := atoi(string(values[0]))
				cur, _, err := nodeCli.ReadLatest(ctx, sedna.JoinKey("graph", "dist", node))
				if err == nil && atoi(string(cur)) <= cand {
					return nil // not an improvement; the loop dies out here
				}
				res.Emit(sedna.JoinKey("graph", "dist", node), []byte(strconv.Itoa(cand)))
				return nil
			}),
		})
		must(err)
	}

	// --- Seed the computation: distance(a) = 0.
	cli, err := sedna.NewClient(sedna.ClientConfig{
		Servers: nodeAddrs, Caller: net.Endpoint("seeder"), Source: "seeder",
	})
	must(err)
	ctx := context.Background()
	fmt.Println("seeding distance(a) = 0; the trigger loop does the rest")
	start := time.Now()
	must(cli.WriteLatest(ctx, sedna.JoinKey("graph", "dist", "a"), []byte("0")))

	// --- Wait for the fixed point.
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for node, exp := range want {
			val, _, err := cli.ReadLatest(ctx, sedna.JoinKey("graph", "dist", node))
			if err != nil || atoi(string(val)) != exp {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			dump(ctx, cli)
			log.Fatal("iteration never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("converged in %v\n\n", time.Since(start).Round(time.Millisecond))
	dump(ctx, cli)

	// The unreachable node never got a distance.
	if _, _, err := cli.ReadLatest(ctx, sedna.JoinKey("graph", "dist", "z")); err == nil {
		log.Fatal("unreachable node acquired a distance")
	}
	fmt.Println("\nunreachable node z correctly stayed at infinity")

	// Show that the loop actually stopped: firings settle once converged.
	before := totalFired(nodes)
	time.Sleep(300 * time.Millisecond)
	after := totalFired(nodes)
	fmt.Printf("trigger firings settled: %d -> %d in 300ms after convergence\n", before, after)
	if after-before > 4 {
		log.Fatalf("loop still running after the fixed point (%d extra firings)", after-before)
	}
	fmt.Println("iterative trigger demo done")
}

func dump(ctx context.Context, cli *sedna.Client) {
	fmt.Println("hop counts from a:")
	var names []string
	for n := range want {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		val, _, err := cli.ReadLatest(ctx, sedna.JoinKey("graph", "dist", n))
		if err != nil {
			fmt.Printf("  %s: ?\n", n)
			continue
		}
		fmt.Printf("  %s: %s\n", n, val)
	}
}

func totalFired(nodes []*sedna.Server) uint64 {
	var n uint64
	for _, s := range nodes {
		n += s.Stats().Trigger.Fired
	}
	return n
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 1 << 30
	}
	return n
}

func waitForMembers(nodes []*sedna.Server, n int) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, s := range nodes {
			r := s.Ring()
			if r == nil || len(r.Nodes()) != n {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("cluster never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
