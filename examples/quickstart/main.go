// Quickstart boots a complete in-process Sedna cluster — one coordination
// member and three data nodes on a simulated gigabit LAN — then walks
// through the paper's client APIs: write_latest / read_latest, the
// multi-source write_all / read_all value lists, deletes, and a realtime
// subscription that receives pushed changes.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sedna"
)

func main() {
	// --- 1. Simulated network (swap for NewTCPTransport in production).
	net := sedna.NewSimNetwork(sedna.GigabitLAN(), 1)

	// --- 2. Coordination sub-cluster (one member is enough for a demo;
	// production runs 3+ for availability).
	coordAddr := "coord-0"
	ensemble := sedna.NewCoordServer(sedna.CoordConfig{
		ID:        0,
		Members:   []string{coordAddr},
		Transport: net.Endpoint(coordAddr),
	})
	if err := ensemble.Start(); err != nil {
		log.Fatal(err)
	}
	defer ensemble.Close()

	// --- 3. Three data nodes; the first bootstraps the cluster layout.
	var nodes []*sedna.Server
	for i := 0; i < 3; i++ {
		addr := fmt.Sprintf("node-%d", i)
		srv, err := sedna.NewServer(sedna.ServerConfig{
			Node:         sedna.NodeID(addr),
			Transport:    net.Endpoint(addr),
			CoordServers: []string{coordAddr},
			CoordCaller:  net.Endpoint(addr + "-coord"),
			Bootstrap:    i == 0,
			VNodes:       48,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		nodes = append(nodes, srv)
	}
	waitForMembers(nodes, 3)
	fmt.Println("cluster up: 3 nodes, 48 virtual nodes, N=3 R=2 W=2")

	// --- 4. A client. It leases the ring and routes requests zero-hop to
	// the primary replica of each key.
	cli, err := sedna.NewClient(sedna.ClientConfig{
		Servers: []string{"node-0", "node-1", "node-2"},
		Caller:  net.Endpoint("client"),
		Source:  "quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// --- 5. write_latest / read_latest: last writer wins.
	key := sedna.JoinKey("app", "greetings", "hello")
	must(cli.WriteLatest(ctx, key, []byte("world")))
	val, ts, err := cli.ReadLatest(ctx, key)
	must(err)
	fmt.Printf("read_latest %s -> %q (written at %s)\n", key, val, ts)

	// --- 6. write_all / read_all: every source keeps its own newest value
	// in the key's value list.
	shared := sedna.JoinKey("app", "votes", "poll-1")
	alice, _ := sedna.NewClient(sedna.ClientConfig{
		Servers: []string{"node-0"}, Caller: net.Endpoint("alice"), Source: "alice",
	})
	bob, _ := sedna.NewClient(sedna.ClientConfig{
		Servers: []string{"node-1"}, Caller: net.Endpoint("bob"), Source: "bob",
	})
	must(alice.WriteAll(ctx, shared, []byte("yes")))
	must(bob.WriteAll(ctx, shared, []byte("no")))
	votes, err := cli.ReadAll(ctx, shared)
	must(err)
	fmt.Printf("read_all %s:\n", shared)
	for _, v := range votes {
		fmt.Printf("  %s voted %q\n", v.Source, v.Data)
	}

	// --- 7. Realtime push: subscribe to a table, then watch a write
	// arrive without polling the data (the trigger-based realtime API).
	var subs []*sedna.Subscription
	events := make(chan sedna.Event, 16)
	for _, addr := range []string{"node-0", "node-1", "node-2"} {
		sub, err := cli.Subscribe(addr, []sedna.SubHook{{Dataset: "app", Table: "feed"}},
			sedna.SubscribeOptions{ChangedOnly: true})
		must(err)
		defer sub.Close()
		subs = append(subs, sub)
		go func(s *sedna.Subscription) {
			for ev := range s.Events() {
				events <- ev
			}
		}(sub)
	}
	must(cli.WriteLatest(ctx, sedna.JoinKey("app", "feed", "item-1"), []byte("breaking news")))
	select {
	case ev := <-events:
		fmt.Printf("pushed event: %s -> %q\n", ev.Key, ev.Value)
	case <-time.After(10 * time.Second):
		log.Fatal("no event pushed")
	}

	// --- 8. Delete is a replicated tombstone.
	must(cli.Delete(ctx, key))
	if _, _, err := cli.ReadLatest(ctx, key); err == sedna.ErrNotFound {
		fmt.Printf("deleted %s\n", key)
	}
	fmt.Println("quickstart done")
}

func waitForMembers(nodes []*sedna.Server, n int) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, s := range nodes {
			r := s.Ring()
			if r == nil || len(r.Nodes()) != n {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("cluster never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
