// Command sedna-cli is a small interactive client for a Sedna cluster.
//
// Usage:
//
//	sedna-cli -servers 127.0.0.1:7101,127.0.0.1:7102 put ds/tb/key value
//	sedna-cli -servers ... putall ds/tb/key value     # write_all
//	sedna-cli -servers ... get ds/tb/key              # read_latest
//	sedna-cli -servers ... getall ds/tb/key           # read_all
//	sedna-cli -servers ... mget ds/tb/k1 ds/tb/k2 ... # batched read_latest
//	sedna-cli -servers ... mset ds/tb/k1=v1 k2=v2 ... # batched write_latest
//	sedna-cli -servers ... del ds/tb/key
//	sedna-cli -servers ... watch ds tb                # subscribe to a table
//	sedna-cli -servers ... stats                      # per-node + merged metrics
//	sedna-cli -servers ... stats -json                # raw JSON snapshots
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sedna"
	"sedna/internal/obs"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sedna-cli -servers a,b,c <put|putall|get|getall|mget|mset|del|watch|stats> args...")
	os.Exit(2)
}

func main() {
	servers := flag.String("servers", "127.0.0.1:7101", "comma-separated Sedna node addresses")
	timeout := flag.Duration("timeout", 5*time.Second, "operation timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	cli, err := sedna.NewClient(sedna.ClientConfig{
		Servers: strings.Split(*servers, ","),
		Caller:  sedna.NewTCPTransport(""),
		Source:  "sedna-cli",
	})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "put":
		need(args, 3)
		if err := cli.WriteLatest(ctx, sedna.Key(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "putall":
		need(args, 3)
		if err := cli.WriteAll(ctx, sedna.Key(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "get":
		need(args, 2)
		val, ts, err := cli.ReadLatest(ctx, sedna.Key(args[1]))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\t(ts %s)\n", val, ts)
	case "getall":
		need(args, 2)
		vals, err := cli.ReadAll(ctx, sedna.Key(args[1]))
		if err != nil {
			fatal(err)
		}
		for _, v := range vals {
			fmt.Printf("%s\t(source %s, ts %s)\n", v.Data, v.Source, v.TS)
		}
	case "mget":
		need(args, 2)
		keys := make([]sedna.Key, len(args)-1)
		for i, a := range args[1:] {
			keys[i] = sedna.Key(a)
		}
		failed := 0
		for _, r := range cli.MGet(ctx, keys) {
			if r.Err != nil {
				failed++
				fmt.Printf("%s\t<error: %v>\n", r.Key, r.Err)
				continue
			}
			fmt.Printf("%s\t%s\t(ts %s)\n", r.Key, r.Value, r.TS)
		}
		if failed > 0 {
			os.Exit(1)
		}
	case "mset":
		need(args, 2)
		items := make([]sedna.MSetItem, len(args)-1)
		for i, a := range args[1:] {
			key, val, ok := strings.Cut(a, "=")
			if !ok {
				fatal(fmt.Errorf("mset arg %q: want key=value", a))
			}
			items[i] = sedna.MSetItem{Key: sedna.Key(key), Value: []byte(val)}
		}
		failed := 0
		for i, err := range cli.MSet(ctx, items) {
			if err != nil {
				failed++
				fmt.Printf("%s\t<error: %v>\n", items[i].Key, err)
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
		fmt.Printf("ok (%d keys)\n", len(items))
	case "del":
		need(args, 2)
		if err := cli.Delete(ctx, sedna.Key(args[1])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "watch":
		need(args, 3)
		watch(cli, strings.Split(*servers, ","), args[1], args[2])
	case "stats":
		asJSON := len(args) > 1 && (args[1] == "-json" || args[1] == "--json")
		stats(ctx, cli, strings.Split(*servers, ","), asJSON)
	default:
		usage()
	}
}

// watch subscribes to a table on every server and streams merged events.
func watch(cli *sedna.Client, servers []string, dataset, table string) {
	merged := make(chan sedna.Event, 256)
	for _, srv := range servers {
		sub, err := cli.Subscribe(srv, []sedna.SubHook{{Dataset: dataset, Table: table}}, sedna.SubscribeOptions{})
		if err != nil {
			fatal(err)
		}
		defer sub.Close()
		go func(sub *sedna.Subscription) {
			for ev := range sub.Events() {
				merged <- ev
			}
		}(sub)
	}
	fmt.Fprintf(os.Stderr, "watching %s/%s (ctrl-c to stop)\n", dataset, table)
	for ev := range merged {
		if ev.Deleted {
			fmt.Printf("%s\t<deleted>\n", ev.Key)
		} else {
			fmt.Printf("%s\t%s\n", ev.Key, ev.Value)
		}
	}
}

// stats fetches each node's obs report, prints it, and when several nodes
// answered also prints the cluster-wide merge and the distributed traces
// stitched across every node's spans. With -json each node's obs.Report is
// printed as one JSON line — the same field names the ops-plane /statsz
// endpoint serves, because both render the same struct.
func stats(ctx context.Context, cli *sedna.Client, servers []string, asJSON bool) {
	var merged sedna.ObsSnapshot
	var spans []obs.TraceSnapshot
	answered := 0
	for _, srv := range servers {
		ns, err := cli.FetchStats(ctx, srv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sedna-cli: %s: %v\n", srv, err)
			continue
		}
		answered++
		merged = merged.Merge(ns.Snapshot)
		if asJSON {
			blob, _ := json.Marshal(ns)
			fmt.Println(string(blob))
			continue
		}
		fmt.Printf("=== node %s ===\n%s", ns.Node, ns.Snapshot.Text())
		for _, so := range ns.SlowOps {
			fmt.Printf("slow\t%s %s vnode=%d outcome=%s tags=%v\n",
				so.Op, so.Dur, so.VNode, so.Outcome, so.Tags)
		}
		spans = append(spans, ns.Traces...)
	}
	if answered == 0 {
		fatal(fmt.Errorf("no node answered"))
	}
	if asJSON {
		return
	}
	for _, st := range obs.StitchTraces(spans) {
		fmt.Println(st)
	}
	if answered > 1 {
		fmt.Printf("=== cluster (merged %d nodes) ===\n%s", answered, merged.Text())
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sedna-cli:", err)
	os.Exit(1)
}
