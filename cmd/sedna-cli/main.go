// Command sedna-cli is a small interactive client for a Sedna cluster.
//
// Usage:
//
//	sedna-cli -servers 127.0.0.1:7101,127.0.0.1:7102 put ds/tb/key value
//	sedna-cli -servers ... putall ds/tb/key value     # write_all
//	sedna-cli -servers ... get ds/tb/key              # read_latest
//	sedna-cli -servers ... getall ds/tb/key           # read_all
//	sedna-cli -servers ... mget ds/tb/k1 ds/tb/k2 ... # batched read_latest
//	sedna-cli -servers ... mset ds/tb/k1=v1 k2=v2 ... # batched write_latest
//	sedna-cli -servers ... del ds/tb/key
//	sedna-cli -servers ... watch ds tb                # subscribe to a table
//	sedna-cli -servers ... stats                      # per-node + merged metrics
//	sedna-cli -servers ... stats -json                # raw JSON snapshots
//	sedna-cli -servers ... top                        # live hot keys / tenants / anomalies
//	sedna-cli -servers ... top -once                  # one sample and exit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sedna"
	"sedna/internal/obs"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sedna-cli -servers a,b,c <put|putall|get|getall|mget|mset|del|watch|stats|top> args...")
	os.Exit(2)
}

func main() {
	servers := flag.String("servers", "127.0.0.1:7101", "comma-separated Sedna node addresses")
	timeout := flag.Duration("timeout", 5*time.Second, "operation timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	cli, err := sedna.NewClient(sedna.ClientConfig{
		Servers: strings.Split(*servers, ","),
		Caller:  sedna.NewTCPTransport(""),
		Source:  "sedna-cli",
	})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "put":
		need(args, 3)
		if err := cli.WriteLatest(ctx, sedna.Key(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "putall":
		need(args, 3)
		if err := cli.WriteAll(ctx, sedna.Key(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "get":
		need(args, 2)
		val, ts, err := cli.ReadLatest(ctx, sedna.Key(args[1]))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\t(ts %s)\n", val, ts)
	case "getall":
		need(args, 2)
		vals, err := cli.ReadAll(ctx, sedna.Key(args[1]))
		if err != nil {
			fatal(err)
		}
		for _, v := range vals {
			fmt.Printf("%s\t(source %s, ts %s)\n", v.Data, v.Source, v.TS)
		}
	case "mget":
		need(args, 2)
		keys := make([]sedna.Key, len(args)-1)
		for i, a := range args[1:] {
			keys[i] = sedna.Key(a)
		}
		failed := 0
		for _, r := range cli.MGet(ctx, keys) {
			if r.Err != nil {
				failed++
				fmt.Printf("%s\t<error: %v>\n", r.Key, r.Err)
				continue
			}
			fmt.Printf("%s\t%s\t(ts %s)\n", r.Key, r.Value, r.TS)
		}
		if failed > 0 {
			os.Exit(1)
		}
	case "mset":
		need(args, 2)
		items := make([]sedna.MSetItem, len(args)-1)
		for i, a := range args[1:] {
			key, val, ok := strings.Cut(a, "=")
			if !ok {
				fatal(fmt.Errorf("mset arg %q: want key=value", a))
			}
			items[i] = sedna.MSetItem{Key: sedna.Key(key), Value: []byte(val)}
		}
		failed := 0
		for i, err := range cli.MSet(ctx, items) {
			if err != nil {
				failed++
				fmt.Printf("%s\t<error: %v>\n", items[i].Key, err)
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
		fmt.Printf("ok (%d keys)\n", len(items))
	case "del":
		need(args, 2)
		if err := cli.Delete(ctx, sedna.Key(args[1])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "watch":
		need(args, 3)
		watch(cli, strings.Split(*servers, ","), args[1], args[2])
	case "stats":
		asJSON := len(args) > 1 && (args[1] == "-json" || args[1] == "--json")
		stats(ctx, cli, strings.Split(*servers, ","), asJSON)
	case "top":
		once := len(args) > 1 && (args[1] == "-once" || args[1] == "--once")
		top(cli, strings.Split(*servers, ","), once, *timeout)
	default:
		usage()
	}
}

// watch subscribes to a table on every server and streams merged events.
func watch(cli *sedna.Client, servers []string, dataset, table string) {
	merged := make(chan sedna.Event, 256)
	for _, srv := range servers {
		sub, err := cli.Subscribe(srv, []sedna.SubHook{{Dataset: dataset, Table: table}}, sedna.SubscribeOptions{})
		if err != nil {
			fatal(err)
		}
		defer sub.Close()
		go func(sub *sedna.Subscription) {
			for ev := range sub.Events() {
				merged <- ev
			}
		}(sub)
	}
	fmt.Fprintf(os.Stderr, "watching %s/%s (ctrl-c to stop)\n", dataset, table)
	for ev := range merged {
		if ev.Deleted {
			fmt.Printf("%s\t<deleted>\n", ev.Key)
		} else {
			fmt.Printf("%s\t%s\n", ev.Key, ev.Value)
		}
	}
}

// stats fetches each node's obs report, prints it, and when several nodes
// answered also prints the cluster-wide merge and the distributed traces
// stitched across every node's spans. With -json each node's obs.Report is
// printed as one JSON line — the same field names the ops-plane /statsz
// endpoint serves, because both render the same struct.
func stats(ctx context.Context, cli *sedna.Client, servers []string, asJSON bool) {
	var merged sedna.ObsSnapshot
	var spans []obs.TraceSnapshot
	answered := 0
	for _, srv := range servers {
		ns, err := cli.FetchStats(ctx, srv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sedna-cli: %s: %v\n", srv, err)
			continue
		}
		answered++
		merged = merged.Merge(ns.Snapshot)
		if asJSON {
			blob, _ := json.Marshal(ns)
			fmt.Println(string(blob))
			continue
		}
		fmt.Printf("=== node %s ===\n%s", ns.Node, ns.Snapshot.Text())
		for _, so := range ns.SlowOps {
			fmt.Printf("slow\t%s %s vnode=%d outcome=%s tags=%v\n",
				so.Op, so.Dur, so.VNode, so.Outcome, so.Tags)
		}
		spans = append(spans, ns.Traces...)
	}
	if answered == 0 {
		fatal(fmt.Errorf("no node answered"))
	}
	if asJSON {
		return
	}
	for _, st := range obs.StitchTraces(spans) {
		fmt.Println(st)
	}
	if answered > 1 {
		fmt.Printf("=== cluster (merged %d nodes) ===\n%s", answered, merged.Text())
	}
}

// top polls every node's introspection surface and renders the cluster-wide
// merged view: hot-key ranking (hashes only — raw keys never leave the
// nodes), per-tenant attribution, and recent watchdog anomalies. The same
// data backs each node's /topz endpoint.
func top(cli *sedna.Client, servers []string, once bool, timeout time.Duration) {
	for {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		var keyLists [][]obs.TopKEntry
		var tenantLists [][]obs.TenantSnapshot
		var anomalies []obs.Anomaly
		answered := 0
		for _, srv := range servers {
			rep, err := cli.FetchStats(ctx, srv)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sedna-cli: %s: %v\n", srv, err)
				continue
			}
			answered++
			keyLists = append(keyLists, rep.TopKeys)
			tenantLists = append(tenantLists, rep.Tenants)
			anomalies = append(anomalies, rep.Anomalies...)
		}
		cancel()
		if answered == 0 {
			fatal(fmt.Errorf("no node answered"))
		}
		renderTop(answered, obs.MergeTopK(16, keyLists...), obs.MergeTenants(tenantLists...), anomalies)
		if once {
			return
		}
		time.Sleep(2 * time.Second)
	}
}

func renderTop(nodes int, keys []obs.TopKEntry, tenants []obs.TenantSnapshot, anomalies []obs.Anomaly) {
	fmt.Printf("=== top (merged %d nodes, %s) ===\n", nodes, time.Now().Format("15:04:05"))
	if len(keys) > 0 {
		fmt.Printf("%-18s %6s %10s %8s %10s %10s %12s\n", "KEY-HASH", "VNODE", "COUNT", "ERR", "READS", "WRITES", "BYTES")
		for _, e := range keys {
			fmt.Printf("%016x   %6d %10d %8d %10d %10d %12d\n",
				e.Hash, e.VNode, e.Count, e.Err, e.Reads, e.Writes, e.Bytes)
		}
	}
	if len(tenants) > 0 {
		fmt.Printf("%-16s %10s %10s %12s %8s %10s %10s\n", "TENANT", "READS", "WRITES", "BYTES", "ERRORS", "P50", "P99")
		for _, t := range tenants {
			fmt.Printf("%-16s %10d %10d %12d %8d %10s %10s\n",
				t.Tenant, t.Reads, t.Writes, t.Bytes, t.Errors,
				time.Duration(t.Lat.P50()), time.Duration(t.Lat.P99()))
		}
	}
	for i, a := range anomalies {
		if i >= 8 {
			break
		}
		fmt.Printf("anomaly\t%s\t%s\t%s\n", time.Unix(0, a.Wall).Format("15:04:05"), a.Kind, a.Detail)
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sedna-cli:", err)
	os.Exit(1)
}
