// Command sedna-coord runs one member of Sedna's coordination sub-cluster
// (the ZooKeeper-like ensemble of §III-A/§III-E).
//
// Usage:
//
//	sedna-coord -id 0 -members 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Every member must be started with the same -members list; -id selects
// this member's own entry.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sedna"
	"sedna/internal/opshttp"
)

func main() {
	id := flag.Int("id", 0, "this member's index into -members")
	members := flag.String("members", "127.0.0.1:7000", "comma-separated ensemble addresses")
	opsAddr := flag.String("ops-addr", "", "ops-plane HTTP listen address (/metrics, /healthz, pprof); empty disables")
	verbose := flag.Bool("v", false, "verbose logging")
	flag.Parse()

	addrs := strings.Split(*members, ",")
	if *id < 0 || *id >= len(addrs) {
		fmt.Fprintf(os.Stderr, "sedna-coord: -id %d out of range for %d members\n", *id, len(addrs))
		os.Exit(2)
	}
	cfg := sedna.CoordConfig{
		ID:        *id,
		Members:   addrs,
		Transport: sedna.NewTCPTransport(addrs[*id]),
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv := sedna.NewCoordServer(cfg)
	if err := srv.Start(); err != nil {
		log.Fatalf("sedna-coord: %v", err)
	}
	if *opsAddr != "" {
		ops, err := opshttp.Start(srv.OpsConfig(*opsAddr))
		if err != nil {
			log.Fatalf("sedna-coord: ops plane: %v", err)
		}
		defer ops.Close()
		log.Printf("sedna-coord: ops plane on http://%s/metrics", ops.Addr())
	}
	log.Printf("sedna-coord: member %d serving on %s", *id, addrs[*id])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
}
