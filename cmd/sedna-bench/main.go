// Command sedna-bench regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablation experiments indexed in DESIGN.md, all
// against in-process clusters on the simulated gigabit LAN.
//
// Usage:
//
//	sedna-bench -fig 7a              # Fig. 7(a): Sedna vs Memcached(x3)
//	sedna-bench -fig 7b              # Fig. 7(b): Sedna vs Memcached(x1)
//	sedna-bench -fig 8               # Fig. 8: nine clients vs one
//	sedna-bench -fig ablations       # E4: quorum / flow control / vnodes
//	sedna-bench -fig coord           # E5: lease cache & adaptation
//	sedna-bench -fig pipeline        # E6: §V crawl-to-searchable latency
//	sedna-bench -fig batch           # E7: MGet/MSet vs per-key loops
//	sedna-bench -fig hotpath         # E8: hot-path ns/op and allocs/op
//	sedna-bench -fig rebalance       # E9: online vnode migration under load
//	sedna-bench -fig durability      # E10: group commit vs SyncAlways, restart time
//	sedna-bench -fig introspect      # E11: introspection-plane overhead and fidelity
//	sedna-bench -fig dvv             # E12: lost updates, LWW vs dotted version vectors
//	sedna-bench -fig transport       # E13: staged transport, 100..10k conn fan-in
//	sedna-bench -fig all
//
// -scale shrinks the sweep for quick runs (1.0 = the paper's 10k..60k).
//
// The figure sweeps also write machine-readable artifacts —
// BENCH_fig7a.json, BENCH_fig7b.json, BENCH_fig8.json — carrying per-step
// mean/p50/p99 op latency from the client-side obs histograms alongside
// the wall-clock numbers (-outdir picks the directory).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sedna/internal/bench"
)

func main() {
	// Transport-bench worker subprocess: the connection-scaling sweep
	// re-execs this binary to hold client sockets outside the parent's
	// descriptor budget.
	if os.Getenv("SEDNA_TW_ADDR") != "" {
		bench.TransportWorkerMain()
		return
	}
	fig := flag.String("fig", "all", "which artifact to regenerate: 7a|7b|8|ablations|coord|pipeline|batch|hotpath|rebalance|durability|introspect|dvv|transport|all")
	scale := flag.Float64("scale", 0.1, "sweep scale relative to the paper's 10k..60k ops")
	nodes := flag.Int("nodes", 9, "cluster size (the paper uses 9)")
	seed := flag.Int64("seed", 42, "simulation seed")
	outdir := flag.String("outdir", ".", "directory for the BENCH_*.json artifacts")
	flag.Parse()

	steps := opsSteps(*scale)
	run := map[string]bool{}
	if *fig == "all" {
		for _, f := range []string{"7a", "7b", "8", "ablations", "coord", "pipeline", "batch", "hotpath", "rebalance", "durability", "introspect", "dvv", "transport"} {
			run[f] = true
		}
	} else {
		run[*fig] = true
	}
	any := false

	if run["7a"] {
		any = true
		fmt.Println("== Fig. 7(a): one client, Sedna vs Memcached writing each key 3x sequentially ==")
		series, err := bench.RunFig7(bench.Fig7Config{Nodes: *nodes, OpsSteps: steps, MCReplicas: 3, Seed: *seed})
		if err != nil {
			log.Fatalf("fig 7a: %v", err)
		}
		fmt.Print(bench.TSV(series))
		writeArtifact(*outdir, "BENCH_fig7a.json", "7a", series)
		fmt.Println()
	}
	if run["7b"] {
		any = true
		fmt.Println("== Fig. 7(b): one client, Sedna vs Memcached writing once ==")
		series, err := bench.RunFig7(bench.Fig7Config{Nodes: *nodes, OpsSteps: steps, MCReplicas: 1, Seed: *seed})
		if err != nil {
			log.Fatalf("fig 7b: %v", err)
		}
		fmt.Print(bench.TSV(series))
		writeArtifact(*outdir, "BENCH_fig7b.json", "7b", series)
		fmt.Println()
	}
	if run["8"] {
		any = true
		fmt.Println("== Fig. 8: nine concurrent clients vs one ==")
		series, err := bench.RunFig8(bench.Fig8Config{Nodes: *nodes, Clients: 9, OpsSteps: steps, Seed: *seed})
		if err != nil {
			log.Fatalf("fig 8: %v", err)
		}
		fmt.Print(bench.TSV(series))
		writeArtifact(*outdir, "BENCH_fig8.json", "8", series)
		fmt.Println()
	}
	if run["ablations"] {
		any = true
		fmt.Println("== E4 ablations (Table I quantified) ==")
		qt, err := bench.RunQuorumAblation(5, scaleInt(2000, *scale), bench.DefaultProfile(), *seed)
		if err != nil {
			log.Fatalf("quorum ablation: %v", err)
		}
		fmt.Print(qt.Render())
		fmt.Println()
		ft, err := bench.RunFlowControlAblation(scaleInt(500, *scale))
		if err != nil {
			log.Fatalf("flow control ablation: %v", err)
		}
		fmt.Print(ft.Render())
		fmt.Println()
		vt, err := bench.RunVNodeBalanceAblation(*nodes)
		if err != nil {
			log.Fatalf("vnode ablation: %v", err)
		}
		fmt.Print(vt.Render())
		fmt.Println()
		st, err := bench.RunWatchStormAblation(scaleInt(500, *scale), 10, *seed)
		if err != nil {
			log.Fatalf("watch storm ablation: %v", err)
		}
		fmt.Print(st.Render())
		fmt.Println()
		dir, err := os.MkdirTemp("", "sedna-persist-abl")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		pt, err := bench.RunPersistenceAblation(dir, scaleInt(10000, *scale), *seed)
		if err != nil {
			log.Fatalf("persistence ablation: %v", err)
		}
		fmt.Print(pt.Render())
		fmt.Println()
	}
	if run["coord"] {
		any = true
		fmt.Println("== E5: coordination service off the read path ==")
		ct, err := bench.RunCoordCacheAblation(scaleInt(5000, *scale), bench.DefaultProfile(), *seed)
		if err != nil {
			log.Fatalf("coord cache ablation: %v", err)
		}
		fmt.Print(ct.Render())
		fmt.Println()
		lt, err := bench.RunLeaseAdaptationAblation(*seed)
		if err != nil {
			log.Fatalf("lease ablation: %v", err)
		}
		fmt.Print(lt.Render())
		fmt.Println()
	}
	if run["pipeline"] {
		any = true
		fmt.Println("== E6: realtime pipeline latency (§V, Fig. 6 steps 1-7) ==")
		pt, err := bench.RunPipelineBench(scaleInt(2000, *scale), bench.DefaultProfile(), *seed)
		if err != nil {
			log.Fatalf("pipeline bench: %v", err)
		}
		fmt.Print(pt.Render())
		fmt.Println()
	}
	if run["batch"] {
		any = true
		fmt.Println("== E7: 16-key batches vs per-key loops, 3-node cluster ==")
		series, err := bench.RunFigBatch(bench.BatchConfig{
			Nodes: 3,
			Steps: batchSteps(*scale),
			Seed:  *seed,
		})
		if err != nil {
			log.Fatalf("fig batch: %v", err)
		}
		fmt.Print(bench.TSV(series))
		writeArtifact(*outdir, "BENCH_fig_batch.json", "batch", series)
		fmt.Println()
	}
	if run["hotpath"] {
		any = true
		fmt.Println("== E8: hot-path memory discipline, copying vs zero-copy/pooled ==")
		series, err := bench.RunFigHotpath(bench.HotpathConfig{Iters: scaleInt(200000, *scale)})
		if err != nil {
			log.Fatalf("fig hotpath: %v", err)
		}
		fmt.Print(bench.HotpathTSV(series))
		writeArtifact(*outdir, "BENCH_fig_hotpath.json", "hotpath", series)
		fmt.Println()
	}
	if run["rebalance"] {
		any = true
		fmt.Println("== E9: live elasticity — passive join + drain under a steady workload ==")
		rep, err := bench.RunFigRebalance(bench.RebalanceConfig{
			Keys: scaleInt(12000, *scale),
			Seed: *seed,
		})
		if err != nil {
			log.Fatalf("fig rebalance: %v", err)
		}
		for _, p := range rep.Phases {
			fmt.Printf("%-10s acked=%-6d failed=%-4d p50=%.2fms p99=%.2fms\n",
				p.Name, p.Acked, p.Failed, p.P50Ms, p.P99Ms)
		}
		fmt.Printf("join : %d moves, %d rows streamed (%.0f rows/s), movement %.3f vs ideal %.3f (%.2fx)\n",
			rep.Join.Moves, rep.Join.RowsStreamed, rep.Join.RowsPerSec,
			rep.Join.MovementRatio, rep.Join.IdealRatio, rep.Join.RatioVsIdeal)
		fmt.Printf("drain: %d moves, %d rows streamed (%.0f rows/s), movement %.3f vs ideal %.3f (%.2fx)\n",
			rep.Drain.Moves, rep.Drain.RowsStreamed, rep.Drain.RowsPerSec,
			rep.Drain.MovementRatio, rep.Drain.IdealRatio, rep.Drain.RatioVsIdeal)
		fmt.Printf("lost acks: %d of %d audited keys\n", rep.LostAcks, rep.AuditedKeys)
		path := filepath.Join(*outdir, "BENCH_fig_rebalance.json")
		if err := bench.WriteRebalanceJSON(path, rep); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		fmt.Println()
	}
	if run["durability"] {
		any = true
		fmt.Println("== E10: durability — group commit vs per-append fsync, restart-to-serving ==")
		dir, err := os.MkdirTemp("", "sedna-durability")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		rep, err := bench.RunFigDurability(bench.DurabilityConfig{
			Dir:          dir,
			Ops:          scaleInt(20000, *scale),
			RecoveryKeys: scaleInt(200000, *scale),
		})
		if err != nil {
			log.Fatalf("fig durability: %v", err)
		}
		for _, c := range rep.Throughput {
			fmt.Printf("%-15s writers=%-3d ops=%-6d %8.0f ops/s  fsyncs=%-5d",
				c.Policy, c.Writers, c.Ops, c.OpsPerSec, c.FsyncBatches)
			if c.OpsPerFsync > 0 {
				fmt.Printf("  %.1f ops/fsync", c.OpsPerFsync)
			}
			if c.MeanWaitMs > 0 {
				fmt.Printf("  wait=%.3fms", c.MeanWaitMs)
			}
			fmt.Println()
		}
		for _, r := range rep.Recovery {
			fmt.Printf("recovery workers=%-3d keys=%-7d %8.1fms  (%.0f keys/s)\n",
				r.Workers, r.Keys, r.Millis, r.KeysSec)
		}
		path := filepath.Join(*outdir, "BENCH_fig_durability.json")
		if err := bench.WriteDurabilityJSON(path, rep); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		fmt.Println()
	}
	if run["introspect"] {
		any = true
		fmt.Println("== E11: workload introspection plane — overhead and fidelity under zipf(1.1) ==")
		rep, err := bench.RunFigIntrospect(bench.IntrospectConfig{
			Ops:  scaleInt(30000, *scale),
			Keys: scaleInt(20000, *scale),
			Seed: *seed,
		})
		if err != nil {
			log.Fatalf("fig introspect: %v", err)
		}
		fmt.Printf("enabled : %8.0f ops/s  p50=%.2fms p99=%.2fms\n",
			rep.OpsPerSecEnabled, rep.P50MsEnabled, rep.P99MsEnabled)
		fmt.Printf("disabled: %8.0f ops/s  p50=%.2fms p99=%.2fms\n",
			rep.OpsPerSecDisabled, rep.P50MsDisabled, rep.P99MsDisabled)
		fmt.Printf("overhead: %.2f%% (target <5%%)\n", rep.OverheadPct)
		fmt.Printf("hottest key ranked first: %v\n", rep.HottestRankedFirst)
		fmt.Printf("exemplars resolved: %d/%d\n", rep.ExemplarsResolved, rep.ExemplarsTotal)
		for i, e := range rep.TopKeys {
			if i >= 5 {
				break
			}
			fmt.Printf("  top[%d] hash=%016x count=%d (err<=%d) vnode=%d\n", i, e.Hash, e.Count, e.Err, e.VNode)
		}
		for _, tr := range rep.TenantRows {
			fmt.Printf("  tenant %-8s reads=%-6d writes=%-6d bytes=%d\n", tr.Tenant, tr.Reads, tr.Writes, tr.Bytes)
		}
		path := filepath.Join(*outdir, "BENCH_fig_introspect.json")
		if err := bench.WriteIntrospectJSON(path, rep); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		fmt.Println()
	}
	if run["dvv"] {
		any = true
		fmt.Println("== E12: silent lost updates — concurrent RMW under LWW vs dotted version vectors ==")
		rep, err := bench.RunFigDVV(bench.DVVConfig{
			OpsPerWriter: scaleInt(500, *scale),
			Seed:         *seed,
		})
		if err != nil {
			log.Fatalf("fig dvv: %v", err)
		}
		fmt.Printf("lww: acked=%-5d refused=%-4d dropped=%-4d (%.2f%%)  p50=%.2fms p99=%.2fms\n",
			rep.LWW.Acked, rep.LWW.Refused, rep.LWW.Dropped, rep.LWW.DroppedPct, rep.LWW.P50Ms, rep.LWW.P99Ms)
		fmt.Printf("dvv: acked=%-5d refused=%-4d dropped=%-4d (%.2f%%)  p50=%.2fms p99=%.2fms  max-siblings=%d\n",
			rep.DVV.Acked, rep.DVV.Refused, rep.DVV.Dropped, rep.DVV.DroppedPct, rep.DVV.P50Ms, rep.DVV.P99Ms, rep.DVV.MaxSiblings)
		fmt.Printf("write overhead: p50=%.1f%% p99=%.1f%%\n", rep.WriteOverheadPctP50, rep.WriteOverheadPctP99)
		path := filepath.Join(*outdir, "BENCH_fig_dvv.json")
		if err := bench.WriteDVVJSON(path, rep); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		fmt.Println()
	}
	if run["transport"] {
		any = true
		fmt.Println("== E13: staged transport — connection scaling and overload shedding ==")
		rep, err := bench.RunFigTransport(bench.TransportConfig{
			ConnSteps: connSteps(*scale),
		})
		if err != nil {
			log.Fatalf("fig transport: %v", err)
		}
		for _, s := range rep.Scaling {
			bound := ""
			if s.GoroutineBound > 0 {
				bound = fmt.Sprintf(" bound=%d", s.GoroutineBound)
			}
			fmt.Printf("%-6s conns=%-6d ops=%-7d errs=%-3d p50=%.2fms p99=%.2fms %.0f ops/s goros=%d%s\n",
				s.Mode, s.Conns, s.Ops, s.Errors, s.P50Ms, s.P99Ms, s.OpsPerS, s.GoroutinePeak, bound)
		}
		for _, o := range rep.Overload {
			fmt.Printf("overload %s: conns=%d served=%d sheds=%d errs=%d served-p50=%.2fms shed-p99=%.2fms breaker-trips=%d\n",
				o.Mode, o.Conns, o.Served, o.Sheds, o.Errors, o.ServedP50Ms, o.ShedP99Ms, o.BreakerTrips)
		}
		path := filepath.Join(*outdir, "BENCH_fig_transport.json")
		if err := bench.WriteTransportJSON(path, rep); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		fmt.Println()
	}
	if !any {
		fmt.Fprintf(os.Stderr, "sedna-bench: unknown -fig %q\n", *fig)
		os.Exit(2)
	}
}

func writeArtifact(dir, name, figure string, series []bench.Series) {
	path := filepath.Join(dir, name)
	if err := bench.WriteJSON(path, figure, series); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func opsSteps(scale float64) []int {
	base := []int{10000, 20000, 30000, 40000, 50000, 60000}
	out := make([]int, len(base))
	for i, b := range base {
		out[i] = scaleInt(b, scale)
	}
	return out
}

// batchSteps scales the batch sweep's group counts; each group is one
// 16-key batch, so even deep scaling keeps a usable sample for p99.
func batchSteps(scale float64) []int {
	base := []int{25, 50, 100}
	out := make([]int, len(base))
	for i, b := range base {
		out[i] = scaleInt(b, scale)
	}
	return out
}

// connSteps scales the transport sweep's connection counts (the full sweep
// is the paper-style 100 -> 10k fan-in).
func connSteps(scale float64) []int {
	base := []int{100, 1000, 10000}
	out := make([]int, len(base))
	for i, b := range base {
		out[i] = scaleInt(b, scale)
	}
	return out
}

func scaleInt(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 10 {
		v = 10
	}
	return v
}
