// Command sedna-server runs one Sedna data node ("real node").
//
// Usage:
//
//	sedna-server -addr 127.0.0.1:7101 -coord 127.0.0.1:7000 -bootstrap
//	sedna-server -addr 127.0.0.1:7102 -coord 127.0.0.1:7000
//
// The first node of a fresh cluster passes -bootstrap to initialise the
// coordination layout (the virtual-node count is fixed at that moment and
// cannot change without a cluster restart, §III-D).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sedna"
	"sedna/internal/opshttp"
	"sedna/internal/persist"
	"sedna/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7101", "address to serve and advertise")
	coordList := flag.String("coord", "127.0.0.1:7000", "comma-separated coordination addresses")
	bootstrap := flag.Bool("bootstrap", false, "initialise the coordination layout if missing")
	passive := flag.Bool("passive", false, "join without claiming vnodes; acquire data later via 'coordctl join'")
	vnodes := flag.Int("vnodes", 0, "virtual node count for -bootstrap (default 128)")
	memMB := flag.Int64("mem", 64, "local store memory limit in MiB")
	persistMode := flag.String("persist", "none", "persistency strategy: none|periodic|wal|hybrid")
	dataDir := flag.String("data", "", "persistence directory (required unless -persist none)")
	walSync := flag.String("wal-sync", "interval", "WAL sync policy: never|interval|always (always = group commit: every acked write is fsync-covered)")
	walGroupWindow := flag.Duration("wal-group-window", 0, "group-commit dwell before fsync under -wal-sync always (0 = natural batching)")
	flushEvery := flag.Duration("flush-every", 0, "snapshot period for periodic/hybrid (default 30s)")
	opsAddr := flag.String("ops-addr", "", "ops-plane HTTP listen address (/metrics, /healthz, /traces, pprof); empty disables")
	slowMS := flag.Int64("slow-ms", 0, "slow-op threshold in milliseconds (0 = default 250ms, negative disables)")
	tenantRule := flag.String("tenant-rule", "", "per-tenant attribution rule: dataset|table|prefix:N; empty disables")
	transportMode := flag.String("transport-mode", "staged", "server pipeline: staged (bounded event-loop stages) or spawn (goroutine per request)")
	transportReaders := flag.Int("transport-readers", 0, "event-loop reader shards (0 = min(GOMAXPROCS, 8))")
	transportWorkers := flag.Int("transport-workers", 0, "handler worker-pool size (0 = max(64, 8*GOMAXPROCS))")
	transportQueue := flag.Int("transport-queue", 0, "dispatch queue depth before requests shed with busy frames (0 = 1024)")
	maxConns := flag.Int("max-conns", 0, "accepted connection cap; beyond it new connections are shed (0 = 65536)")
	verbose := flag.Bool("v", false, "verbose logging")
	flag.Parse()

	var strategy persist.Strategy
	switch *persistMode {
	case "none":
		strategy = sedna.PersistNone
	case "periodic":
		strategy = sedna.PersistPeriodic
	case "wal":
		strategy = sedna.PersistWriteAhead
	case "hybrid":
		strategy = sedna.PersistHybrid
	default:
		fmt.Fprintf(os.Stderr, "sedna-server: unknown -persist %q\n", *persistMode)
		os.Exit(2)
	}
	if strategy != sedna.PersistNone && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "sedna-server: -data required with persistence enabled")
		os.Exit(2)
	}
	var syncPolicy wal.SyncPolicy
	switch *walSync {
	case "never":
		syncPolicy = sedna.SyncNever
	case "interval":
		syncPolicy = sedna.SyncInterval
	case "always":
		syncPolicy = sedna.SyncAlways
	default:
		fmt.Fprintf(os.Stderr, "sedna-server: unknown -wal-sync %q\n", *walSync)
		os.Exit(2)
	}

	stage := sedna.TransportStageConfig{
		Readers:       *transportReaders,
		Workers:       *transportWorkers,
		DispatchDepth: *transportQueue,
		MaxConns:      *maxConns,
	}
	switch *transportMode {
	case "staged":
	case "spawn":
		stage.Spawn = true
	default:
		fmt.Fprintf(os.Stderr, "sedna-server: unknown -transport-mode %q\n", *transportMode)
		os.Exit(2)
	}

	cfg := sedna.ServerConfig{
		Node:         sedna.NodeID(*addr),
		Transport:    sedna.NewTCPTransportStaged(*addr, stage),
		CoordServers: strings.Split(*coordList, ","),
		MemoryLimit:  *memMB << 20,
		Persist: sedna.PersistConfig{
			Dir:            *dataDir,
			Strategy:       strategy,
			WALSync:        syncPolicy,
			WALGroupWindow: *walGroupWindow,
			FlushInterval:  *flushEvery,
		},
		Bootstrap:       *bootstrap,
		Passive:         *passive,
		VNodes:          *vnodes,
		SlowOpThreshold: time.Duration(*slowMS) * time.Millisecond,
		TenantRule:      *tenantRule,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv, err := sedna.NewServer(cfg)
	if err != nil {
		log.Fatalf("sedna-server: %v", err)
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("sedna-server: start: %v", err)
	}
	if *opsAddr != "" {
		ops, err := opshttp.Start(srv.OpsConfig(*opsAddr))
		if err != nil {
			log.Fatalf("sedna-server: ops plane: %v", err)
		}
		defer ops.Close()
		log.Printf("sedna-server: ops plane on http://%s/metrics", ops.Addr())
	}
	log.Printf("sedna-server: node %s up (coord %s, persist %s)", *addr, *coordList, *persistMode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("sedna-server: leaving cluster")
	if err := srv.Leave(); err != nil {
		log.Printf("sedna-server: graceful leave failed (%v); closing", err)
		srv.Close()
	}
}
