// Command coordctl inspects and manipulates the coordination ensemble —
// Sedna's replacement for the ZooKeeper CLI.
//
// Usage:
//
//	coordctl -servers 127.0.0.1:7000 status
//	coordctl -servers ... ls /sedna/realnodes
//	coordctl -servers ... get /sedna/ring
//	coordctl -servers ... create /path value
//	coordctl -servers ... set /path value
//	coordctl -servers ... del /path
//	coordctl -servers ... ring                   # decode and print the assignment
//	coordctl -servers ... stats [addr] [--json]  # member metrics (znode-free path)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sedna/internal/cluster"
	"sedna/internal/coord"
	"sedna/internal/ring"
	"sedna/internal/transport"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: coordctl -servers a,b,c <status|ls|get|create|set|del|ring|stats> [args]")
	os.Exit(2)
}

func main() {
	servers := flag.String("servers", "127.0.0.1:7000", "comma-separated coordination addresses")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	cli, err := coord.Dial(coord.ClientConfig{
		Servers:   strings.Split(*servers, ","),
		Caller:    transport.NewTCP(""),
		NoSession: true,
	})
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	switch args[0] {
	case "status":
		zxid, err := cli.Cursor()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("zxid\t%d\n", zxid)
	case "ls":
		need(args, 2)
		kids, err := cli.Children(args[1])
		if err != nil {
			fatal(err)
		}
		for _, k := range kids {
			fmt.Println(k)
		}
	case "get":
		need(args, 2)
		data, stat, err := cli.Get(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%q\t(version %d, children %d)\n", data, stat.Version, stat.NumChildren)
	case "create":
		need(args, 2)
		var data []byte
		if len(args) > 2 {
			data = []byte(args[2])
		}
		path, err := cli.Create(args[1], data, coord.CreateOpts{})
		if err != nil {
			fatal(err)
		}
		fmt.Println(path)
	case "set":
		need(args, 3)
		if _, err := cli.Set(args[1], []byte(args[2]), -1); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "del":
		need(args, 2)
		if err := cli.Delete(args[1], -1); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "ring":
		blob, _, err := cli.Get(cluster.DefaultLayout().RingPath())
		if err != nil {
			fatal(err)
		}
		snap, err := ring.DecodeRing(blob)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("version\t%d\nvnodes\t%d\nreplicas\t%d\n", snap.Version(), snap.NumVNodes(), snap.ReplicaFactor())
		for _, n := range snap.Nodes() {
			fmt.Printf("node\t%s\tprimaries=%d\treplicas=%d\n",
				n, len(snap.PrimaryVNodesOf(n)), len(snap.VNodesOf(n)))
		}
	case "stats":
		// With an explicit member address the RPC goes straight there;
		// otherwise whichever member the client prefers answers. Either
		// way the path reads only soft state and works leaderless.
		addr := ""
		asJSON := false
		for _, a := range args[1:] {
			if a == "-json" || a == "--json" {
				asJSON = true
			} else {
				addr = a
			}
		}
		rep, err := cli.ObsStats(addr)
		if err != nil {
			fatal(err)
		}
		if asJSON {
			blob, _ := json.Marshal(rep)
			fmt.Println(string(blob))
			break
		}
		if rep.Node != "" {
			fmt.Printf("node\t%s\n", rep.Node)
		}
		fmt.Print(rep.Snapshot.Text())
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coordctl:", err)
	os.Exit(1)
}
