// Command coordctl inspects and manipulates the coordination ensemble —
// Sedna's replacement for the ZooKeeper CLI.
//
// Usage:
//
//	coordctl -servers 127.0.0.1:7000 status
//	coordctl -servers ... ls /sedna/realnodes
//	coordctl -servers ... get /sedna/ring
//	coordctl -servers ... create /path value
//	coordctl -servers ... set /path value
//	coordctl -servers ... del /path
//	coordctl -servers ... ring                   # decode and print the assignment
//	coordctl -servers ... stats [addr] [--json]  # member metrics (znode-free path)
//
// Elasticity (the -node flag names the data node the campaign runs on):
//
//	coordctl -node 127.0.0.1:7103 join              # stream a fair share of vnodes TO the node
//	coordctl -node 127.0.0.1:7101 drain             # stream every vnode OFF the node
//	coordctl -node 127.0.0.1:7103 rebalance status  # one-shot campaign progress
//	coordctl -node 127.0.0.1:7101 top               # the node's hot keys / tenants / anomalies
//
// join/drain block, reporting progress, until the campaign completes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sedna/internal/cluster"
	"sedna/internal/coord"
	"sedna/internal/core"
	"sedna/internal/obs"
	"sedna/internal/rebalance"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: coordctl [-servers a,b,c] [-node addr] <status|ls|get|create|set|del|ring|stats|join|drain|rebalance|top> [args]")
	os.Exit(2)
}

func main() {
	servers := flag.String("servers", "127.0.0.1:7000", "comma-separated coordination addresses")
	node := flag.String("node", "", "data node address for join/drain/rebalance")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	// The elasticity verbs are data-plane RPCs against one node; they need
	// no coordination session at all.
	switch args[0] {
	case "join", "drain":
		if *node == "" {
			fmt.Fprintln(os.Stderr, "coordctl: "+args[0]+" requires -node <data-node-addr>")
			os.Exit(2)
		}
		op := core.OpRebalanceJoin
		if args[0] == "drain" {
			op = core.OpRebalanceDrain
		}
		if _, err := dataCall(*node, op, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("%s campaign started on %s\n", args[0], *node)
		if err := watchCampaign(*node); err != nil {
			fatal(err)
		}
		return
	case "rebalance":
		need(args, 2)
		if args[1] != "status" {
			usage()
		}
		if *node == "" {
			fmt.Fprintln(os.Stderr, "coordctl: rebalance status requires -node <data-node-addr>")
			os.Exit(2)
		}
		c, err := campaignStatus(*node)
		if errors.Is(err, core.ErrNotFound) {
			fmt.Println("no campaign")
			return
		}
		if err != nil {
			fatal(err)
		}
		printCampaign(c)
		return
	case "top":
		if *node == "" {
			fmt.Fprintln(os.Stderr, "coordctl: top requires -node <data-node-addr>")
			os.Exit(2)
		}
		if err := nodeTop(*node); err != nil {
			fatal(err)
		}
		return
	}

	cli, err := coord.Dial(coord.ClientConfig{
		Servers:   strings.Split(*servers, ","),
		Caller:    transport.NewTCP(""),
		NoSession: true,
	})
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	switch args[0] {
	case "status":
		zxid, err := cli.Cursor()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("zxid\t%d\n", zxid)
	case "ls":
		need(args, 2)
		kids, err := cli.Children(args[1])
		if err != nil {
			fatal(err)
		}
		for _, k := range kids {
			fmt.Println(k)
		}
	case "get":
		need(args, 2)
		data, stat, err := cli.Get(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%q\t(version %d, children %d)\n", data, stat.Version, stat.NumChildren)
	case "create":
		need(args, 2)
		var data []byte
		if len(args) > 2 {
			data = []byte(args[2])
		}
		path, err := cli.Create(args[1], data, coord.CreateOpts{})
		if err != nil {
			fatal(err)
		}
		fmt.Println(path)
	case "set":
		need(args, 3)
		if _, err := cli.Set(args[1], []byte(args[2]), -1); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "del":
		need(args, 2)
		if err := cli.Delete(args[1], -1); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "ring":
		blob, _, err := cli.Get(cluster.DefaultLayout().RingPath())
		if err != nil {
			fatal(err)
		}
		snap, err := ring.DecodeRing(blob)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("version\t%d\nvnodes\t%d\nreplicas\t%d\n", snap.Version(), snap.NumVNodes(), snap.ReplicaFactor())
		for _, n := range snap.Nodes() {
			fmt.Printf("node\t%s\tprimaries=%d\treplicas=%d\n",
				n, len(snap.PrimaryVNodesOf(n)), len(snap.VNodesOf(n)))
		}
	case "stats":
		// With an explicit member address the RPC goes straight there;
		// otherwise whichever member the client prefers answers. Either
		// way the path reads only soft state and works leaderless.
		addr := ""
		asJSON := false
		for _, a := range args[1:] {
			if a == "-json" || a == "--json" {
				asJSON = true
			} else {
				addr = a
			}
		}
		rep, err := cli.ObsStats(addr)
		if err != nil {
			fatal(err)
		}
		if asJSON {
			blob, _ := json.Marshal(rep)
			fmt.Println(string(blob))
			break
		}
		if rep.Node != "" {
			fmt.Printf("node\t%s\n", rep.Node)
		}
		fmt.Print(rep.Snapshot.Text())
	default:
		usage()
	}
}

// dataCall issues one data-plane RPC (the same wire protocol the servers
// speak among themselves) and returns the decoder positioned after the
// ok-header.
func dataCall(addr string, op uint16, body []byte) (*wire.Dec, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := transport.NewTCP("").Call(ctx, addr, transport.Message{Op: op, Body: body})
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if d.Err != nil {
		return nil, d.Err
	}
	if st != core.StOK {
		return nil, core.StatusErr(st, detail)
	}
	return d, nil
}

// nodeTop fetches one data node's obs report over the data plane and renders
// its introspection surface: the hot-key sketch, per-tenant attribution, and
// recent watchdog anomalies — the same data the node's /topz endpoint serves.
func nodeTop(addr string) error {
	d, err := dataCall(addr, core.OpObsStats, nil)
	if err != nil {
		return err
	}
	blob := d.Bytes()
	if d.Err != nil {
		return d.Err
	}
	var rep obs.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return err
	}
	fmt.Printf("=== node %s ===\n", rep.Node)
	if len(rep.TopKeys) > 0 {
		fmt.Printf("%-18s %6s %10s %8s %10s %10s %12s\n", "KEY-HASH", "VNODE", "COUNT", "ERR", "READS", "WRITES", "BYTES")
		for _, e := range rep.TopKeys {
			fmt.Printf("%016x   %6d %10d %8d %10d %10d %12d\n",
				e.Hash, e.VNode, e.Count, e.Err, e.Reads, e.Writes, e.Bytes)
		}
	}
	if len(rep.Tenants) > 0 {
		fmt.Printf("%-16s %10s %10s %12s %8s %10s %10s\n", "TENANT", "READS", "WRITES", "BYTES", "ERRORS", "P50", "P99")
		for _, t := range rep.Tenants {
			fmt.Printf("%-16s %10d %10d %12d %8d %10s %10s\n",
				t.Tenant, t.Reads, t.Writes, t.Bytes, t.Errors,
				time.Duration(t.Lat.P50()), time.Duration(t.Lat.P99()))
		}
	}
	for _, a := range rep.Anomalies {
		fmt.Printf("anomaly\t%s\t%s\t%s\n", time.Unix(0, a.Wall).Format("15:04:05"), a.Kind, a.Detail)
	}
	return nil
}

func campaignStatus(addr string) (rebalance.Campaign, error) {
	d, err := dataCall(addr, core.OpRebalanceStatus, nil)
	if err != nil {
		return rebalance.Campaign{}, err
	}
	blob := d.Bytes()
	if d.Err != nil {
		return rebalance.Campaign{}, d.Err
	}
	var c rebalance.Campaign
	if err := json.Unmarshal(blob, &c); err != nil {
		return rebalance.Campaign{}, err
	}
	return c, nil
}

// watchCampaign polls the campaign until it leaves the running state,
// echoing progress as moves complete.
func watchCampaign(addr string) error {
	lastDone := -1
	for {
		c, err := campaignStatus(addr)
		if errors.Is(err, core.ErrNotFound) {
			return errors.New("campaign vanished before completing")
		}
		if err != nil {
			return err
		}
		done := c.Completed + c.Skipped + c.Failed
		if done != lastDone {
			lastDone = done
			fmt.Printf("  %d/%d moves (%d skipped, %d failed)%s\n",
				done, c.Total, c.Skipped, c.Failed, currentSuffix(c))
		}
		if c.State != rebalance.CampaignRunning {
			printCampaign(c)
			if c.State == rebalance.CampaignFailed {
				os.Exit(1)
			}
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func currentSuffix(c rebalance.Campaign) string {
	if c.Current == "" {
		return ""
	}
	return " — " + c.Current
}

func printCampaign(c rebalance.Campaign) {
	fmt.Printf("%s %s: %s — %d/%d moves, %d skipped, %d failed\n",
		c.Kind, c.Target, c.State, c.Completed, c.Total, c.Skipped, c.Failed)
	if c.Error != "" {
		fmt.Println("error:", c.Error)
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coordctl:", err)
	os.Exit(1)
}
