GO ?= go

.PHONY: all build vet test race bench bench-micro fmt check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick paper-figure regeneration (writes BENCH_*.json into the tree).
bench:
	$(GO) run ./cmd/sedna-bench -fig all -scale 0.05

# Hot-path micro-benchmarks with allocation counts (E8 backing data).
bench-micro:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/memstore/ ./internal/wire/ ./internal/kv/ ./internal/transport/

fmt:
	gofmt -l -w .

# What CI runs.
check: build vet race
