module sedna

go 1.22
