package sedna_test

import (
	"context"
	"fmt"
	"log"
	"testing"
	"time"

	"sedna"
)

func TestFacadeTypesRoundTrip(t *testing.T) {
	key := sedna.JoinKey("web", "pages", "p1")
	if key.Dataset() != "web" || key.Table() != "web/pages" || key.Name() != "p1" {
		t.Fatalf("key components wrong: %q", key)
	}
	if !sedna.TableHook("web", "pages").Matches(key) {
		t.Fatal("table hook does not match")
	}
	if !sedna.DatasetHook("web").Matches(key) {
		t.Fatal("dataset hook does not match")
	}
	if sedna.KeyHook(sedna.JoinKey("web", "pages", "p2")).Matches(key) {
		t.Fatal("foreign key hook matches")
	}
	q := sedna.DefaultQuorum()
	if q.N != 3 || q.R != 2 || q.W != 2 {
		t.Fatalf("default quorum = %+v", q)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Example boots a minimal single-node cluster through the public facade and
// round-trips one key — the smallest possible Sedna program.
func Example() {
	net := sedna.NewSimNetwork(sedna.SimProfile{}, 1)

	ensemble := sedna.NewCoordServer(sedna.CoordConfig{
		ID: 0, Members: []string{"coord"}, Transport: net.Endpoint("coord"),
	})
	if err := ensemble.Start(); err != nil {
		log.Fatal(err)
	}
	defer ensemble.Close()

	node, err := sedna.NewServer(sedna.ServerConfig{
		Node:         "node-0",
		Transport:    net.Endpoint("node-0"),
		CoordServers: []string{"coord"},
		CoordCaller:  net.Endpoint("node-0-coord"),
		Bootstrap:    true,
		VNodes:       16,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	cli, err := sedna.NewClient(sedna.ClientConfig{
		Servers: []string{"node-0"},
		Caller:  net.Endpoint("client"),
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	key := sedna.JoinKey("app", "kv", "greeting")
	if err := cli.WriteLatest(ctx, key, []byte("hello sedna")); err != nil {
		log.Fatal(err)
	}
	val, _, err := cli.ReadLatest(ctx, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(val))
	// Output: hello sedna
}

func TestFacadeSingleNodeTriggers(t *testing.T) {
	net := sedna.NewSimNetwork(sedna.SimProfile{}, 2)
	ensemble := sedna.NewCoordServer(sedna.CoordConfig{
		ID: 0, Members: []string{"coord"}, Transport: net.Endpoint("coord"),
	})
	if err := ensemble.Start(); err != nil {
		t.Fatal(err)
	}
	defer ensemble.Close()
	node, err := sedna.NewServer(sedna.ServerConfig{
		Node:            "solo",
		Transport:       net.Endpoint("solo"),
		CoordServers:    []string{"coord"},
		CoordCaller:     net.Endpoint("solo-coord"),
		Bootstrap:       true,
		VNodes:          8,
		ScanEvery:       2 * time.Millisecond,
		TriggerInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	fired := make(chan sedna.Key, 8)
	_, err = node.Trigger().Register(sedna.Job{
		Name:  "facade",
		Hooks: []sedna.Hook{sedna.TableHook("a", "b")},
		Filter: sedna.FilterFunc(func(old, new sedna.Snapshot) bool {
			return new.Exists
		}),
		Action: sedna.ActionFunc(func(ctx context.Context, key sedna.Key, values [][]byte, res *sedna.Result) error {
			fired <- key
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sedna.NewClient(sedna.ClientConfig{Servers: []string{"solo"}, Caller: net.Endpoint("cli")})
	if err != nil {
		t.Fatal(err)
	}
	key := sedna.JoinKey("a", "b", "c")
	if err := cli.WriteLatest(context.Background(), key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-fired:
		if got != key {
			t.Fatalf("fired for %q", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("trigger never fired through the facade")
	}
}
