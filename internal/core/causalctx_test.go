package core

// In-package regressions for the two blind-context lost-update bugs: a
// coordinator whose local apply lags its own quorum ack must still mint a
// context covering its earlier acked writes (program order), and a
// write_all context must never claim another source's events (clock
// poisoning). Both were caught as rare TestWriteAllValueLists /
// TestTombstoneGC failures; these pin the mechanism deterministically.

import (
	"testing"

	"sedna/internal/kv"
	"sedna/internal/memstore"
	"sedna/internal/quorum"
)

func newCtxServer() *Server {
	return &Server{
		store:   memstore.New(memstore.Config{}),
		dotNode: 0xbeefcafe,
	}
}

// TestBlindCtxCoversOwnMintedHistory is the program-order hole: under W<N a
// blind write can be minted while the coordinator's own local apply of the
// previous (already acked) write is still in flight. The context must cover
// that earlier dot anyway — from the sequencer, not the lagging row — or a
// sequential delete becomes a phantom concurrent sibling of its own
// predecessor and the deleted value resurrects.
func TestBlindCtxCoversOwnMintedHistory(t *testing.T) {
	s := newCtxServer()
	key := kv.Join("ctx", "t", "k")
	d1 := s.mintDot(key, "src")
	d2 := s.mintDot(key, "src")
	if d1.Node != d2.Node || d2.Counter != d1.Counter+1 {
		t.Fatalf("same (key, source) must mint one contiguous stream: %v then %v", d1, d2)
	}
	// The local store is empty: nothing of d1's write has applied here yet.
	for _, mode := range []quorum.Mode{quorum.Latest, quorum.All} {
		ctx := s.blindCtx(key, "src", mode, d2)
		if !ctx.Covers(d1) {
			t.Fatalf("mode %v: blind ctx %v does not cover the writer's own acked dot %v", mode, ctx, d1)
		}
		if ctx.Covers(d2) {
			t.Fatalf("mode %v: blind ctx %v covers the write's own dot %v", mode, ctx, d2)
		}
	}
}

// TestBlindCtxAllModeIsSourceScoped is the clock-poisoning hole: replicas
// union a write's context into the row clock and Merge treats
// covered-and-absent as superseded with no notion of source. A write_all
// context covering another writer's event would make a reordered replica
// silently drop that writer's acked value — so it must cover only the
// writer's own events: its minted stream plus same-source stored dots.
func TestBlindCtxAllModeIsSourceScoped(t *testing.T) {
	s := newCtxServer()
	key := kv.Join("ctx", "t", "k2")

	aliceDot := s.mintDot(key, "alice")
	bobDot := s.mintDot(key, "bob")
	if aliceDot.Node == bobDot.Node {
		t.Fatalf("sources must mint under distinct actors, both got %d", aliceDot.Node)
	}

	// The local row stores alice's dotted value and an old dotted value of
	// bob's written under a previous actor (earlier boot or coordinator).
	bobOld := kv.Dot{Node: 0x1234, Counter: 7}
	row := &kv.Row{}
	row.ApplyCausal(kv.Versioned{Value: []byte("a"), Source: "alice", Dot: aliceDot}, false, 0)
	row.ApplyCausal(kv.Versioned{Value: []byte("b0"), Source: "bob", Dot: bobOld}, false, 0)
	if err := s.store.Set(string(key), kv.EncodeRow(row), 0, 0); err != nil {
		t.Fatal(err)
	}

	next := s.mintDot(key, "bob")
	ctx := s.blindCtx(key, "bob", quorum.All, next)
	if ctx.Covers(aliceDot) {
		t.Fatalf("write_all blind ctx %v covers another source's event %v", ctx, aliceDot)
	}
	if !ctx.Covers(bobOld) {
		t.Fatalf("write_all blind ctx %v misses the writer's own stored dot %v", ctx, bobOld)
	}
	if !ctx.Covers(bobDot) {
		t.Fatalf("write_all blind ctx %v misses the writer's own minted dot %v", ctx, bobDot)
	}

	// write_latest keeps the supersede-what-the-coordinator-saw semantics:
	// the full local clock, own history included.
	lctx := s.blindCtx(key, "bob", quorum.Latest, next)
	if !lctx.Covers(aliceDot) || !lctx.Covers(bobOld) || !lctx.Covers(bobDot) {
		t.Fatalf("write_latest blind ctx %v must cover everything the coordinator saw", lctx)
	}
}
