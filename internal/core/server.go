package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/cluster"
	"sedna/internal/coord"
	"sedna/internal/heal"
	"sedna/internal/kv"
	"sedna/internal/memstore"
	"sedna/internal/obs"
	"sedna/internal/persist"
	"sedna/internal/quorum"
	"sedna/internal/rebalance"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/trigger"
)

// Config parameterises one Sedna server (one "real node").
type Config struct {
	// Node is the node's identity; it must equal the transport address
	// other nodes dial.
	Node ring.NodeID
	// Transport serves the data plane and dials peers.
	Transport transport.Transport
	// CoordServers lists the coordination ensemble addresses.
	CoordServers []string
	// CoordCaller dials the ensemble; nil selects Transport.
	CoordCaller transport.Caller
	// SessionTimeout is the liveness session expiry; zero selects 5s.
	// Heartbeat loss past this is how the cluster learns the node died
	// (§III-D).
	SessionTimeout time.Duration
	// Quorum fixes N/R/W; zero selects the paper's 3/2/2.
	Quorum quorum.Config
	// SiblingCap bounds the concurrent sibling fan-out a causal (DVV) row
	// retains; past it the causally oldest siblings are evicted
	// deterministically and the row's Obs witness counts them. Zero
	// selects kv.DefaultSiblingCap.
	SiblingCap int
	// MemoryLimit caps the local store; zero selects 64 MiB.
	MemoryLimit int64
	// Persist selects the durability strategy (default: None).
	Persist persist.Config
	// Bootstrap initialises the coordination layout when missing, with
	// VNodes virtual nodes (fixed forever, §III-D). Zero VNodes selects
	// 128.
	Bootstrap bool
	VNodes    int
	// Passive joins the cluster without claiming any vnodes: the node
	// serves RPCs and watches the ring but holds no data until an explicit
	// rebalance campaign (coordctl join) migrates vnodes onto it. This is
	// how elastic scale-out adds capacity without the thundering handoff
	// an eager join would trigger.
	Passive bool
	// ScanEvery, TriggerInterval and TriggerWorkers tune the trigger
	// engine (zero selects 10ms / 100ms / 4).
	ScanEvery       time.Duration
	TriggerInterval time.Duration
	TriggerWorkers  int
	// ReconcileEvery tunes membership reconciliation; zero selects 500ms.
	ReconcileEvery time.Duration
	// PublishEvery tunes imbalance publication; zero selects 2s.
	PublishEvery time.Duration
	// SubIdleTimeout garbage-collects subscriptions nobody polls; zero
	// selects 2 minutes.
	SubIdleTimeout time.Duration
	// Breaker tunes the per-node health breakers gating every replica
	// call; zero fields select the transport defaults (5 consecutive
	// failures open, 1s cooldown, 1 half-open probe).
	Breaker transport.BreakerConfig
	// HintCapacity bounds each per-node hint queue of the failure healer;
	// zero selects 1024.
	HintCapacity int
	// HintReplayBackoff is the base backoff between hint-replay probes to
	// a dark node; zero selects 100ms.
	HintReplayBackoff time.Duration
	// SweepEvery paces the anti-entropy sweep (one dirty vnode re-merged
	// per tick); zero selects 250ms.
	SweepEvery time.Duration
	// Obs receives the node's metrics and traces; nil creates a private
	// registry (reachable via Server.Obs) so instrumentation is always on.
	Obs *obs.Registry
	// SlowOpThreshold is the latency above which coordinator ops are
	// force-retained in the slow-op event log regardless of trace sampling;
	// zero selects 250ms, negative disables the log.
	SlowOpThreshold time.Duration
	// TenantRule derives a tenant tag from each key for per-tenant
	// attribution: "" (disabled, the default), "dataset", "table", or
	// "prefix:N" (see obs.ParseTenantRule).
	TenantRule string
	// WatchdogEvery paces the anomaly watchdog over obs snapshots; zero
	// selects 2s, negative disables the watchdog.
	WatchdogEvery time.Duration
	// Logf receives diagnostics; nil disables.
	Logf func(format string, args ...any)
}

// Stats aggregates a server's counters.
type Stats struct {
	CoordWrites   uint64
	CoordReads    uint64
	ReplicaWrites uint64
	ReplicaReads  uint64
	Repairs       uint64
	Recoveries    uint64
	Store         memstore.Stats
	Trigger       trigger.Stats
}

// Server is one Sedna node.
type Server struct {
	cfg   Config
	store *memstore.Store
	clock *kv.Clock

	coordCli *coord.Client
	cache    *coord.CachedClient
	mgr      *cluster.Manager
	engine   *quorum.Engine
	trig     *trigger.Engine
	pers     *persist.Manager
	health   *transport.HealthCaller
	healer   *heal.Healer
	sweeper  *heal.Sweeper
	mig      *rebalance.Migrator
	reb      *rebalance.Rebalancer
	watchdog *obs.Watchdog

	// lastOwnRefresh rate-limits authoritative ring refreshes taken by the
	// write-ownership gate (unix nanos of the last attempt).
	lastOwnRefresh atomic.Int64

	// ready gates inbound RPCs: the transport must serve before the cluster
	// join (peers stream us data during it), but most handlers dereference
	// state that only exists once Start completes — a ring_get arriving in
	// that window used to segfault the node. Until ready, handlers answer
	// StFailure and callers retry/hint exactly as for a down node.
	ready atomic.Bool

	mu        sync.Mutex
	loadStats *ring.LoadStats
	started   bool
	closed    bool

	dirtyMu  sync.Mutex
	dirtyQ   []kv.Key
	dirtySet map[kv.Key]bool

	// dotMu guards the per-(key, actor) causal event sequencer behind
	// mintDot. dotNode seeds this boot's causal actor ids: the node-name
	// hash salted with per-process randomness, further mixed per writing
	// source (see dotActor). Boot-scoping means a restarted coordinator
	// that lost its sequencer (and possibly its store) can never re-mint
	// a counter some replica's clock already covers — a covered dot is
	// treated as a replay and silently dropped, which would turn every
	// post-restart collision into an acked-but-lost write. Source-scoping
	// means every counter range belongs to exactly one writer, so a blind
	// write's context may cover the writer's own minted history without
	// ever claiming another source's events.
	dotMu   sync.Mutex
	dotNode uint32
	dotSeq  map[dotSeqKey]uint64

	// undurable tracks keys whose stored row is ahead of the write-ahead
	// log (LogWrite refused the blob after the memstore accepted it); a
	// retry duplicate must settle this debt before it may ack. nUndurable
	// keeps the happy path to one atomic load.
	undurMu    sync.Mutex
	undurable  map[kv.Key]struct{}
	nUndurable atomic.Int64

	subs *subRegistry

	stopCh chan struct{}
	wg     sync.WaitGroup

	obs                           *obs.Registry
	nCoordWrites, nCoordReads     *obs.Counter
	nReplicaWrites, nReplicaReads *obs.Counter
	nRepairs, nRecoveries         *obs.Counter
	nHintsRedirected              *obs.Counter
	hCoordWrite, hCoordRead       *obs.Histogram
	hReplicaFanout                *obs.Histogram
}

// NewServer builds a stopped server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Node == "" {
		return nil, errors.New("core: Node required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("core: Transport required")
	}
	if len(cfg.CoordServers) == 0 {
		return nil, errors.New("core: CoordServers required")
	}
	if cfg.CoordCaller == nil {
		cfg.CoordCaller = cfg.Transport
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = 5 * time.Second
	}
	if cfg.Quorum.N == 0 {
		cfg.Quorum = quorum.DefaultConfig()
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 128
	}
	if cfg.ReconcileEvery <= 0 {
		cfg.ReconcileEvery = 500 * time.Millisecond
	}
	if cfg.PublishEvery <= 0 {
		cfg.PublishEvery = 2 * time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	cfg.Obs.SetNode(string(cfg.Node))
	switch {
	case cfg.SlowOpThreshold == 0:
		cfg.Obs.SetSlowOpThreshold(250 * time.Millisecond)
	case cfg.SlowOpThreshold > 0:
		cfg.Obs.SetSlowOpThreshold(cfg.SlowOpThreshold)
	}
	tenantRule, err := obs.ParseTenantRule(cfg.TenantRule)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg.Obs.SetTenantRule(tenantRule)
	s := &Server{
		cfg:      cfg,
		store:    memstore.New(memstore.Config{MemoryLimit: cfg.MemoryLimit}),
		clock:    kv.NewClock(uint32(ring.Hash64(kv.Key(cfg.Node)))),
		dotNode:  uint32(ring.Hash64(kv.Key(cfg.Node))) ^ rand.Uint32(),
		dirtySet: map[kv.Key]bool{},
		stopCh:   make(chan struct{}),

		obs:              cfg.Obs,
		nCoordWrites:     cfg.Obs.Counter("core.coord_writes"),
		nCoordReads:      cfg.Obs.Counter("core.coord_reads"),
		nReplicaWrites:   cfg.Obs.Counter("core.replica_writes"),
		nReplicaReads:    cfg.Obs.Counter("core.replica_reads"),
		nRepairs:         cfg.Obs.Counter("core.repairs"),
		nRecoveries:      cfg.Obs.Counter("core.recoveries"),
		nHintsRedirected: cfg.Obs.Counter("rebalance.hints_redirected"),
		hCoordWrite:      cfg.Obs.Histogram("client_ops.write"),
		hCoordRead:       cfg.Obs.Histogram("client_ops.read"),
		hReplicaFanout:   cfg.Obs.Histogram("replica.fanout"),
	}
	s.subs = newSubRegistry(s)

	// Failure-healing pipeline: every replica call goes through a per-node
	// circuit breaker; failed writes and repairs queue as hints replayed in
	// the background; eviction-dirtied vnodes re-merge via the sweeper. All
	// three exist from construction so hints survive a slow Start, and the
	// loops only run between Start and Close.
	s.health = transport.NewHealthCaller(cfg.Transport, cfg.Breaker)
	s.health.Instrument(cfg.Obs)
	healer, err := heal.New(heal.Config{
		// replayHint re-checks ownership before delivering: hints parked
		// behind a dead node's backoff can outlive a migration cutover, in
		// which case they redirect to the vnode's current owners.
		Replay:        s.replayHint,
		QueueCapacity: cfg.HintCapacity,
		BaseBackoff:   cfg.HintReplayBackoff,
		ReplayTimeout: cfg.Quorum.Timeout,
		Seed:          int64(ring.Hash64(kv.Key(cfg.Node))),
		Obs:           cfg.Obs,
		Logf:          cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	s.healer = healer
	s.sweeper, err = heal.NewSweeper(heal.SweepConfig{
		Sweep: s.sweepVNode,
		Every: cfg.SweepEvery,
		Obs:   cfg.Obs,
		Logf:  cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	// Migration engine and campaign orchestrator. Both exist from
	// construction so the rebalance.* counters appear in every metrics
	// snapshot; the closures nil-check s.mgr because migrations can only
	// be armed after Start.
	s.mig = rebalance.NewMigrator(rebalance.MigratorConfig{
		Self: cfg.Node,
		Scan: s.scanVNodeRows,
		Send: s.sendMigrateRows,
		Drop: s.dropVNodeRows,
		Owned: func(v ring.VNodeID) bool {
			if s.mgr == nil {
				return true // unknown: keep the rows
			}
			r := s.mgr.Ring()
			if r == nil {
				return true
			}
			return nodeOwns(r, v, cfg.Node)
		},
		MarkDirty: func(v ring.VNodeID) { s.sweeper.MarkDirty(v) },
		Obs:       cfg.Obs,
		Logf:      cfg.Logf,
	})
	s.reb = rebalance.NewRebalancer(rebalance.RebalancerConfig{
		Host: rebalanceHost{s},
		Obs:  cfg.Obs,
		Logf: cfg.Logf,
	})
	s.health.OnStateChange = func(addr string, from, to transport.BreakerState) {
		s.logf("breaker %s: %s -> %s", addr, from, to)
		if to == transport.BreakerClosed {
			// The node answered again: drain its hint queue immediately.
			s.healer.NotifyAlive(ring.NodeID(addr))
		}
	}
	return s, nil
}

// Obs returns the node's metric registry.
func (s *Server) Obs() *obs.Registry { return s.obs }

// ObsSnapshot publishes the point-in-time gauges (memstore occupancy, slab
// usage, trigger queue depth) and captures the registry. This is what the
// STATS RPC serves.
func (s *Server) ObsSnapshot() obs.Snapshot {
	s.store.PublishObs(s.obs)
	if s.trig != nil {
		s.trig.PublishObs()
	}
	return s.obs.Snapshot()
}

// ObsReport publishes the point-in-time gauges and captures the node's full
// stats surface — snapshot, recent traces and the slow-op log — as the one
// shape every stats consumer renders (OpObsStats, the CLI, the ops plane).
func (s *Server) ObsReport() obs.Report {
	s.store.PublishObs(s.obs)
	if s.trig != nil {
		s.trig.PublishObs()
	}
	return s.obs.Report()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("sedna[%s]: "+format, append([]any{s.cfg.Node}, args...)...)
	}
}

// Start brings the node up: recover persisted state, serve RPCs, join the
// cluster (claiming vnodes), and start the trigger engine and background
// loops. The startup order follows §III-D: local storage first, then the
// coordination connection, then the Sedna service.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("core: already started")
	}
	s.started = true
	s.mu.Unlock()

	// 1. Local storage and persisted state. The manager shares the node's
	// metrics registry (wal.*, persist.*) and recovers in parallel: the
	// store's sharded locks make the apply callback safe from multiple
	// goroutines, so replay fans out per key shard.
	pcfg := s.cfg.Persist
	pcfg.Obs = s.obs
	if pcfg.RecoveryWorkers == 0 {
		pcfg.RecoveryWorkers = runtime.GOMAXPROCS(0)
	}
	pers, err := persist.NewManager(pcfg, snapshotSource{s})
	if err != nil {
		return err
	}
	s.pers = pers
	recoverStart := time.Now()
	err = pers.Recover(func(key string, blob []byte) error {
		if blob == nil {
			s.store.Delete(key)
			return nil
		}
		// Deliberately the copying Set, not SetOwned: replayed blobs alias
		// whole WAL segment buffers, which adoption would pin in memory.
		return s.store.Set(key, blob, 0, 0)
	})
	if err != nil {
		return fmt.Errorf("core: recover: %w", err)
	}
	if s.cfg.Persist.Strategy != persist.None {
		s.logf("recovered %d keys in %s", s.store.Len(), time.Since(recoverStart).Round(time.Millisecond))
	}

	// 2. RPC surface. The transport joins the node's registry when it can
	// (real TCP; the simulated transport has no instrumentation), and every
	// handler is wrapped in a per-opcode server-side latency histogram.
	if t, ok := s.cfg.Transport.(interface{ Instrument(*obs.Registry) }); ok {
		t.Instrument(s.obs)
	}
	// The transport's own diagnostics (protocol violations, slow-consumer
	// kills) route through the node's logger when both sides support it.
	if lt, ok := s.cfg.Transport.(interface{ SetLogf(func(string, ...any)) }); ok && s.cfg.Logf != nil {
		lt.SetLogf(s.logf)
	}
	mux := transport.NewMux()
	for _, reg := range []struct {
		op   uint16
		name string
		h    transport.Handler
	}{
		{OpCoordWrite, "coord_write", s.handleCoordWrite},
		{OpCoordRead, "coord_read", s.handleCoordRead},
		{OpCoordWriteBatch, "coord_write_batch", s.handleCoordWriteBatch},
		{OpCoordReadBatch, "coord_read_batch", s.handleCoordReadBatch},
		{OpReplicaWrite, "replica_write", s.handleReplicaWrite},
		{OpReplicaRead, "replica_read", s.handleReplicaRead},
		{OpReplicaWriteBatch, "replica_write_batch", s.handleReplicaWriteBatch},
		{OpReplicaReadBatch, "replica_read_batch", s.handleReplicaReadBatch},
		{OpReplicaRepair, "replica_repair", s.handleReplicaRepair},
		{OpVNodeScan, "vnode_scan", s.handleVNodeScan},
		{OpRingGet, "ring_get", s.handleRingGet},
		{OpSubNew, "sub_new", s.subs.handleNew},
		{OpSubPoll, "sub_poll", s.subs.handlePoll},
		{OpSubClose, "sub_close", s.subs.handleClose},
		{OpServerStats, "server_stats", s.handleStats},
		{OpObsStats, "obs_stats", s.handleObsStats},
		{OpMigrateStart, "migrate_start", s.handleMigrateStart},
		{OpMigrateRows, "migrate_rows", s.handleMigrateRows},
		{OpMigrateStatus, "migrate_status", s.handleMigrateStatus},
		{OpMigrateFinish, "migrate_finish", s.handleMigrateFinish},
		{OpRebalanceJoin, "rebalance_join", s.handleRebalanceJoin},
		{OpRebalanceDrain, "rebalance_drain", s.handleRebalanceDrain},
		{OpRebalanceStatus, "rebalance_status", s.handleRebalanceStatus},
	} {
		mux.HandleFunc(reg.op, instrumented(s.obs.Histogram("rpc.server."+reg.name), s.gated(reg.op, reg.h)))
	}
	if err := s.cfg.Transport.Serve(mux.Handle); err != nil {
		return err
	}

	// 3. Coordination session, layout and membership.
	s.coordCli, err = coord.Dial(coord.ClientConfig{
		Servers:        s.cfg.CoordServers,
		Caller:         s.cfg.CoordCaller,
		SessionTimeout: s.cfg.SessionTimeout,
	})
	if err != nil {
		return fmt.Errorf("core: coord dial: %w", err)
	}
	s.cache, err = coord.NewCachedClient(s.coordCli, coord.CacheConfig{Obs: s.obs})
	if err != nil {
		return err
	}
	if s.cfg.Bootstrap {
		if err := cluster.Bootstrap(s.coordCli, cluster.DefaultLayout(), s.cfg.VNodes, s.cfg.Quorum.N); err != nil {
			return fmt.Errorf("core: bootstrap: %w", err)
		}
	}
	s.mgr, err = cluster.NewManager(cluster.Config{
		Node:              s.cfg.Node,
		Client:            s.coordCli,
		Cache:             s.cache,
		ReconcileEvery:    s.cfg.ReconcileEvery,
		OnMoves:           s.onMoves,
		OnDeaths:          s.onDeaths,
		OnOwnershipChange: s.onOwnershipChange,
		Logf:              s.cfg.Logf,
	})
	if err != nil {
		return err
	}
	var moves []ring.Move
	if s.cfg.Passive {
		if err := s.mgr.JoinPassive(); err != nil {
			return fmt.Errorf("core: passive join: %w", err)
		}
	} else {
		moves, err = s.mgr.Join()
		if err != nil {
			return fmt.Errorf("core: join: %w", err)
		}
	}
	r := s.mgr.Ring()
	s.mu.Lock()
	s.loadStats = ring.NewLoadStats(r.NumVNodes())
	s.mu.Unlock()

	// 4. Quorum engine over the replica RPCs.
	s.engine, err = quorum.NewEngine(s.cfg.Quorum, replicaRPC{s})
	if err != nil {
		return err
	}
	s.engine.Instrument(s.obs)
	// Failed repair deliveries become hints so healing never depends on a
	// later read of the same key.
	s.engine.OnRepairError(func(node ring.NodeID, key kv.Key, row *kv.Row) {
		s.healer.Enqueue(node, key, row)
	})
	// Hinted handoff: every replica write that ultimately failed — including
	// stragglers that miss the quorum's early return — is queued for replay
	// once the node answers again (§III-C).
	s.engine.OnWriteError(func(node ring.NodeID, key kv.Key, v kv.Versioned, mode quorum.Mode) {
		// RowFromWrite folds a dotted write's dot (and, for write_latest,
		// its context) into the hint row's clock, so hint delivery by Merge
		// performs the same causal supersession the missed ApplyCausal
		// would have.
		s.healer.Enqueue(node, key, kv.RowFromWrite(v, mode == quorum.Latest))
	})

	// 5. Trigger engine.
	s.trig, err = trigger.NewEngine(trigger.Config{
		Source:          dirtySource{s},
		Write:           s.triggerWrite,
		ScanEvery:       s.cfg.ScanEvery,
		DefaultInterval: s.cfg.TriggerInterval,
		Workers:         s.cfg.TriggerWorkers,
		Obs:             s.obs,
		Logf:            s.cfg.Logf,
	})
	if err != nil {
		return err
	}
	s.trig.Start()

	// 6. Background work: data for vnodes gained at join, persistence,
	// imbalance publication, anomaly watchdog.
	s.onMoves(moves)
	s.pers.Start()
	s.healer.Start()
	s.sweeper.Start()
	s.wg.Add(1)
	go s.publishLoop()
	if s.cfg.WatchdogEvery >= 0 {
		s.watchdog = obs.NewWatchdog(obs.WatchdogConfig{
			Registry:  s.obs,
			Every:     s.cfg.WatchdogEvery,
			Imbalance: s.vnodeImbalanceRatio,
			// The persistence degraded flag (sticky fsync failure) surfaces
			// through the watchdog so /healthz degraded_reasons names it.
			Probes: map[string]func() bool{
				"wal_durability_degraded": func() bool { return s.pers != nil && s.pers.Degraded() },
			},
		})
		s.watchdog.Start()
	}
	s.ready.Store(true)
	s.logf("started with %d vnode moves", len(moves))
	return nil
}

// Watchdog exposes the anomaly watchdog (nil when disabled; tests drive
// Tick directly for determinism).
func (s *Server) Watchdog() *obs.Watchdog { return s.watchdog }

// vnodeImbalanceRatio reports max/mean per-vnode op load on this node (0
// when idle or before join) — the watchdog's load-imbalance signal.
func (s *Server) vnodeImbalanceRatio() float64 {
	ls := s.LoadStats()
	if ls == nil {
		return 0
	}
	loads := ls.Snapshot()
	var total, max uint64
	for _, l := range loads {
		ops := l.Reads + l.Writes
		total += ops
		if ops > max {
			max = ops
		}
	}
	if total == 0 || len(loads) == 0 {
		return 0
	}
	mean := float64(total) / float64(len(loads))
	return float64(max) / mean
}

// Close shuts the node down without leaving the ring (peers evict it when
// the session expires). Use Leave for a graceful departure.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	s.wg.Wait()
	if s.watchdog != nil {
		s.watchdog.Close()
	}
	if s.mig != nil {
		s.mig.Close()
	}
	if s.healer != nil {
		s.healer.Close()
	}
	if s.sweeper != nil {
		s.sweeper.Close()
	}
	if s.trig != nil {
		s.trig.Close()
	}
	if s.mgr != nil {
		s.mgr.Close()
	}
	if s.pers != nil {
		s.pers.Close()
	}
	if s.coordCli != nil {
		s.coordCli.Close()
	}
	s.cfg.Transport.Close()
}

// Leave gracefully hands the node's vnodes to the survivors and shuts down.
func (s *Server) Leave() error {
	if s.mgr != nil {
		if err := s.mgr.Leave(); err != nil {
			return err
		}
	}
	s.Close()
	return nil
}

// Node returns the server's identity.
func (s *Server) Node() ring.NodeID { return s.cfg.Node }

// Ring returns the node's current assignment view.
func (s *Server) Ring() *ring.Ring { return s.mgr.Ring() }

// Trigger exposes the trigger engine for in-process job registration (the
// paper's Job.schedule path; actions are code, so they live in the server
// process).
func (s *Server) Trigger() *trigger.Engine { return s.trig }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		CoordWrites:   s.nCoordWrites.Load(),
		CoordReads:    s.nCoordReads.Load(),
		ReplicaWrites: s.nReplicaWrites.Load(),
		ReplicaReads:  s.nReplicaReads.Load(),
		Repairs:       s.nRepairs.Load(),
		Recoveries:    s.nRecoveries.Load(),
		Store:         s.store.Stats(),
	}
	if s.trig != nil {
		st.Trigger = s.trig.Stats()
	}
	return st
}

// LoadStats exposes the per-vnode counters (for the balancer and tests).
func (s *Server) LoadStats() *ring.LoadStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadStats
}

// Health exposes the per-node breaker layer (diagnostics and tests).
func (s *Server) Health() *transport.HealthCaller { return s.health }

// Healer exposes the hint-queue replayer (diagnostics and tests).
func (s *Server) Healer() *heal.Healer { return s.healer }

// LocalRow returns a copy of the locally stored row for key without going
// through the replica protocol or touching its counters (test and audit
// use — e.g. asserting convergence happened with zero reads issued).
func (s *Server) LocalRow(key kv.Key) (*kv.Row, bool) {
	it, ok := s.store.Get(string(key))
	if !ok {
		return nil, false
	}
	row, err := kv.DecodeRow(it.Value)
	if err != nil {
		return nil, false
	}
	return row, true
}

// snapshotSource adapts the store to persist.Source.
type snapshotSource struct{ s *Server }

// SnapshotRange implements persist.Source.
func (ss snapshotSource) SnapshotRange(emit func(key string, blob []byte)) {
	ss.s.store.Range(func(key string, it memstore.Item) bool {
		emit(key, it.Value)
		return true
	})
}

// ReadKey implements persist.KeyReader, enabling incremental (delta)
// snapshots that persist only the keys dirtied since the previous one.
func (ss snapshotSource) ReadKey(key string) ([]byte, bool) {
	it, ok := ss.s.store.Get(key)
	if !ok {
		return nil, false
	}
	return it.Value, true
}

// publishLoop periodically publishes the node's imbalance row (§III-B).
func (s *Server) publishLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.PublishEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
		}
		r := s.mgr.Ring()
		s.mu.Lock()
		ls := s.loadStats
		s.mu.Unlock()
		if r == nil || ls == nil {
			continue
		}
		table := ring.Imbalance(r, ls.Snapshot())
		for _, row := range table {
			if row.Node == s.cfg.Node {
				if err := s.mgr.PublishImbalance(row); err != nil {
					s.logf("publish imbalance: %v", err)
				}
			}
		}
	}
}

// triggerWrite is the Result write-back: trigger outputs are regular
// write_latest operations coordinated by this node.
func (s *Server) triggerWrite(ctx context.Context, key kv.Key, value []byte) error {
	return s.CoordWrite(ctx, key, value, quorum.Latest, false, string(s.cfg.Node))
}

// Rebalance runs one round of imbalance-driven data balance (§III-B): it
// folds this node's per-vnode load counters into the imbalance table and,
// when some node carries more than threshold times its fair share, commits
// primary moves toward the coldest nodes (preferring existing replica
// holders, which makes the move a pure metadata swap). It returns the moves
// applied.
func (s *Server) Rebalance(threshold float64) ([]ring.Move, error) {
	r := s.mgr.Ring()
	s.mu.Lock()
	ls := s.loadStats
	s.mu.Unlock()
	if r == nil || ls == nil {
		return nil, errors.New("core: not started")
	}
	plan := ring.PlanLoadRebalance(r, ls.Snapshot(), threshold)
	if len(plan) == 0 {
		return nil, nil
	}
	if err := s.mgr.ApplyPlan(plan); err != nil {
		return nil, err
	}
	s.logf("rebalanced %d primaries", len(plan))
	return plan, nil
}
