package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sedna/internal/cluster"
	"sedna/internal/kv"
	"sedna/internal/memstore"
	"sedna/internal/rebalance"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// This file wires the rebalance subsystem into the server: the Migrator's
// store/transport closures, the replica-write ownership gate that makes the
// dual-write window sound, the Host the campaign orchestrator drives, and
// the migration RPC handlers.
//
// Protocol recap (one vnode move, donor D → recipient R):
//
//  1. arm R (accept rows for v before owning it)
//  2. arm D (bulk copy streams out; D dual-writes every accepted mutation)
//  3. cutover: CAS the slot D→R in the coordination service (epoch bump)
//  4. finish D: clear migration state FIRST (new writes now bounce with
//     NotOwner and reroute), then one final catch-up pass, then drop rows
//  5. finish R: stop special-casing v
//
// The write gate is what makes step 3 safe: after cutover the old and new
// quorums may not overlap, so D must reject writes it would previously have
// acked — a stale-leased coordinator is told NotOwner (with the fresh ring
// version) instead of being allowed to assemble a phantom quorum.

// ownershipRefreshInterval rate-limits authoritative ring refreshes taken on
// the write path; within the window the gate answers from the current lease.
const ownershipRefreshInterval = 100 * time.Millisecond

// nodeOwns reports whether node holds any replica slot of v in r.
func nodeOwns(r *ring.Ring, v ring.VNodeID, node ring.NodeID) bool {
	for _, o := range r.Owners(v) {
		if o == node {
			return true
		}
	}
	return false
}

// ownsOrParty reports whether this node may accept writes for v under r:
// it holds a replica slot, or it is a party to a live migration of v
// (donor mid-stream, or armed recipient).
func (s *Server) ownsOrParty(r *ring.Ring, v ring.VNodeID) bool {
	if s.mig != nil && s.mig.Party(v) {
		return true
	}
	return nodeOwns(r, v, s.cfg.Node)
}

// checkWriteOwnership is the replica-write gate. A node that is neither an
// owner nor a migration party takes ONE rate-limited authoritative look at
// the coordination service (its lease may simply be stale — e.g. it just
// gained the vnode) before rejecting with NotOwner + its ring version. When
// the coordination service is unreachable the gate accepts: availability
// over strictness, matching the pre-elasticity behavior.
func (s *Server) checkWriteOwnership(key kv.Key) error {
	if s.mig == nil || s.mgr == nil {
		return nil
	}
	r := s.mgr.Ring()
	if r == nil {
		return nil
	}
	v := r.VNodeFor(key)
	if s.ownsOrParty(r, v) {
		return nil
	}
	if refreshed, fresh := s.tryRefreshOwnership(); refreshed {
		if fresh == nil {
			return nil // coordination service unreachable: accept
		}
		if s.ownsOrParty(fresh, v) {
			return nil
		}
		return NotOwnerWithEpoch(fresh.Version())
	}
	return NotOwnerWithEpoch(r.Version())
}

// tryRefreshOwnership performs one authoritative ring refresh, rate-limited
// to ownershipRefreshInterval. refreshed reports whether this call won the
// rate-limit slot; fresh is nil when the refresh itself failed.
func (s *Server) tryRefreshOwnership() (refreshed bool, fresh *ring.Ring) {
	now := time.Now().UnixNano()
	last := s.lastOwnRefresh.Load()
	if now-last < int64(ownershipRefreshInterval) || !s.lastOwnRefresh.CompareAndSwap(last, now) {
		return false, nil
	}
	r, err := s.mgr.RefreshRing()
	if err != nil {
		s.logf("ownership refresh: %v", err)
		return true, nil
	}
	return true, r
}

// noteRemoteNotOwner reacts to a peer's NotOwner rejection: when the carried
// epoch is ahead of (or incomparable to) our lease, refresh it in the
// background so the next op routes correctly.
func (s *Server) noteRemoteNotOwner(epoch uint64) {
	r := s.mgr.Ring()
	if r != nil && epoch != 0 && epoch <= r.Version() {
		return // our lease already covers that version
	}
	go s.tryRefreshOwnership()
}

// forwardDualWrite runs after a successfully applied replica write: while
// this node donates the key's vnode, the value is also queued to the
// recipient (the hint machinery provides retry/backoff for free). If a
// cutover raced the apply and this node lost the vnode mid-write, the value
// is queued to the current owners instead so it cannot strand on a replica
// about to drop its rows. The Versioned is deep-cloned: v.Value may alias a
// pooled transport frame, and the healer's coalescing merge aliases values.
func (s *Server) forwardDualWrite(key kv.Key, v kv.Versioned, latest bool) {
	if s.mig == nil || s.mgr == nil {
		return
	}
	r := s.mgr.Ring()
	if r == nil {
		return
	}
	vn := r.VNodeFor(key)
	if to, ok := s.mig.Recipient(vn); ok {
		s.mig.NoteDualWrite()
		s.healer.Enqueue(to, key, kv.RowFromWrite(v, latest))
		return
	}
	if !s.ownsOrParty(r, vn) {
		row := kv.RowFromWrite(v, latest)
		for _, o := range r.Owners(vn) {
			if o != "" && o != s.cfg.Node {
				s.healer.Enqueue(o, key, row)
			}
		}
	}
}

// forwardDualRow is forwardDualWrite for merged repair rows.
func (s *Server) forwardDualRow(key kv.Key, in *kv.Row) {
	if s.mig == nil || s.mgr == nil {
		return
	}
	r := s.mgr.Ring()
	if r == nil {
		return
	}
	vn := r.VNodeFor(key)
	if to, ok := s.mig.Recipient(vn); ok {
		s.mig.NoteDualWrite()
		s.healer.Enqueue(to, key, in.Clone())
		return
	}
	if !s.ownsOrParty(r, vn) {
		row := in.Clone()
		for _, o := range r.Owners(vn) {
			if o != "" && o != s.cfg.Node {
				s.healer.Enqueue(o, key, row)
			}
		}
	}
}

// replayHint is the healer's Replay callback. Hints parked behind a dead
// node's backoff can outlive a migration cutover, so each delivery first
// re-checks that the target still owns the key's vnode (or is the dual-write
// recipient); otherwise the hint is redirected to the current owners.
// Enqueue-from-Replay is safe: the healer calls Replay outside its lock.
func (s *Server) replayHint(ctx context.Context, node ring.NodeID, key kv.Key, row *kv.Row) error {
	if s.mgr != nil {
		if r := s.mgr.Ring(); r != nil {
			v := r.VNodeFor(key)
			recipient, dual := ring.NodeID(""), false
			if s.mig != nil {
				recipient, dual = s.mig.Recipient(v)
			}
			if !nodeOwns(r, v, node) && !(dual && recipient == node) {
				s.nHintsRedirected.Inc()
				for _, o := range r.Owners(v) {
					if o != "" && o != node {
						s.healer.Enqueue(o, key, row)
					}
				}
				return nil
			}
		}
	}
	err := replicaRPC{s}.RepairReplica(ctx, node, key, row)
	if err != nil {
		if epoch, ok := NotOwnerEpoch(err); ok {
			// The target's view is fresher than ours: adopt it and hand the
			// hint to whoever owns the vnode now.
			s.noteRemoteNotOwner(epoch)
			s.nHintsRedirected.Inc()
			if r := s.mgr.Ring(); r != nil {
				for _, o := range r.Owners(r.VNodeFor(key)) {
					if o != "" && o != node {
						s.healer.Enqueue(o, key, row)
					}
				}
			}
			return nil
		}
	}
	return err
}

// retargetedReplicas refreshes the lease after a failed quorum op and
// returns the key's new owner set iff it differs from the one just tried —
// the one-shot retry path that absorbs a migration cutover racing an op.
func (s *Server) retargetedReplicas(key kv.Key, tried []ring.NodeID) []ring.NodeID {
	refreshed, fresh := s.tryRefreshOwnership()
	if !refreshed || fresh == nil {
		return nil
	}
	now := s.replicasFor(key)
	if len(now) == 0 || sameNodes(now, tried) {
		return nil
	}
	return now
}

func sameNodes(a, b []ring.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Migrator closures (store + transport surface) ---

// scanVNodeRows iterates the local rows of one vnode; blobs are stable store
// references (the store replaces, never mutates, values).
func (s *Server) scanVNodeRows(v ring.VNodeID, fn func(key string, blob []byte) bool) {
	if s.mgr == nil {
		return
	}
	r := s.mgr.Ring()
	if r == nil {
		return
	}
	s.store.Range(func(key string, it memstore.Item) bool {
		if r.VNodeFor(kv.Key(key)) != v {
			return true
		}
		return fn(key, it.Value)
	})
}

// sendMigrateRows ships one bounded batch of rows to the recipient.
func (s *Server) sendMigrateRows(ctx context.Context, to ring.NodeID, v ring.VNodeID, keys []string, blobs [][]byte) error {
	var e wire.Enc
	e.U32(uint32(v))
	e.Str(string(s.cfg.Node))
	e.U32(uint32(len(keys)))
	for i, k := range keys {
		e.Str(k)
		e.Bytes(blobs[i])
	}
	resp, err := s.health.Call(ctx, string(to), transport.Message{Op: OpMigrateRows, Body: e.B})
	if err != nil {
		return err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if d.Err != nil {
		return d.Err
	}
	return StatusErr(st, detail)
}

// dropVNodeRows deletes the local rows of a fully migrated vnode.
func (s *Server) dropVNodeRows(v ring.VNodeID) int {
	if s.mgr == nil {
		return 0
	}
	r := s.mgr.Ring()
	if r == nil {
		return 0
	}
	var victims []string
	s.store.Range(func(key string, it memstore.Item) bool {
		if r.VNodeFor(kv.Key(key)) == v {
			victims = append(victims, key)
		}
		return true
	})
	n := 0
	for _, key := range victims {
		if s.store.Delete(key) {
			n++
			if s.pers != nil {
				if err := s.pers.LogWrite(key, nil); err != nil {
					s.logf("drop vnode %d, key %q: %v", v, key, err)
				}
			}
		}
	}
	return n
}

// --- rebalance.Host: local fast paths + RPC fan-out ---

// migrationRPCTimeout bounds one migration control RPC. Finish covers the
// donor's final catch-up pass, so it gets a generous bound.
const migrationRPCTimeout = 30 * time.Second

type rebalanceHost struct{ s *Server }

func (h rebalanceHost) Self() ring.NodeID { return h.s.cfg.Node }

func (h rebalanceHost) FreshRing() (*ring.Ring, error) { return h.s.mgr.RefreshRing() }

func (h rebalanceHost) MigrateStart(ctx context.Context, node ring.NodeID, v ring.VNodeID, peer ring.NodeID, recipientRole bool) error {
	if node == h.s.cfg.Node {
		if recipientRole {
			h.s.mig.ExpectRecipient(v, peer)
			return nil
		}
		return h.s.mig.StartDonor(v, peer)
	}
	var e wire.Enc
	e.U32(uint32(v))
	e.Str(string(peer))
	e.Bool(recipientRole)
	return h.call(ctx, node, OpMigrateStart, e.B, nil)
}

func (h rebalanceHost) MigrateStatus(ctx context.Context, node ring.NodeID, v ring.VNodeID) (rebalance.Status, error) {
	if node == h.s.cfg.Node {
		st, ok := h.s.mig.DonorStatus(v)
		if !ok {
			return rebalance.Status{}, ErrNotFound
		}
		return st, nil
	}
	var e wire.Enc
	e.U32(uint32(v))
	var st rebalance.Status
	err := h.call(ctx, node, OpMigrateStatus, e.B, func(d *wire.Dec) error {
		return json.Unmarshal(d.BytesView(), &st)
	})
	return st, err
}

func (h rebalanceHost) MigrateFinish(ctx context.Context, node ring.NodeID, v ring.VNodeID, abort, recipientRole bool) error {
	if node == h.s.cfg.Node {
		if recipientRole {
			h.s.mig.UnexpectRecipient(v)
			return nil
		}
		return h.s.finishDonor(ctx, v, abort)
	}
	var e wire.Enc
	e.U32(uint32(v))
	e.Bool(abort)
	e.Bool(recipientRole)
	return h.call(ctx, node, OpMigrateFinish, e.B, nil)
}

func (h rebalanceHost) Commit(v ring.VNodeID, slot int, from, to ring.NodeID) error {
	return h.s.mgr.CommitMoveSlot(v, slot, from, to)
}

func (h rebalanceHost) Guard(v ring.VNodeID) (func(), error) {
	return h.s.mgr.AcquireMigrationGuard(v)
}

func (h rebalanceHost) GuardHeld(err error) bool {
	return errors.Is(err, cluster.ErrGuardHeld)
}

func (h rebalanceHost) Recover(v ring.VNodeID) {
	if err := h.s.recoverVNode(v); err != nil {
		h.s.logf("rebalance: recover vnode %d: %v", v, err)
	}
}

// call runs one migration control RPC and decodes the ok-header (plus an
// optional payload) from the response.
func (h rebalanceHost) call(ctx context.Context, node ring.NodeID, op uint16, body []byte, payload func(*wire.Dec) error) error {
	ctx, cancel := context.WithTimeout(ctx, migrationRPCTimeout)
	defer cancel()
	resp, err := h.s.health.Call(ctx, string(node), transport.Message{Op: op, Body: body})
	if err != nil {
		return err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if d.Err != nil {
		return d.Err
	}
	if st != StOK {
		return StatusErr(st, detail)
	}
	if payload != nil {
		return payload(d)
	}
	return nil
}

// --- migration / rebalance RPC handlers ---

func (s *Server) handleMigrateStart(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	v := ring.VNodeID(d.U32())
	peer := ring.NodeID(d.Str())
	recipientRole := d.Bool()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	if recipientRole {
		s.mig.ExpectRecipient(v, peer)
		return transport.Message{Op: OpMigrateStart, Body: okHeader().B}, nil
	}
	if err := s.mig.StartDonor(v, peer); err != nil {
		return errorMsg(OpMigrateStart, err), nil
	}
	return transport.Message{Op: OpMigrateStart, Body: okHeader().B}, nil
}

func (s *Server) handleMigrateRows(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	v := ring.VNodeID(d.U32())
	src := d.Str()
	n := int(d.U32())
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	if n < 0 || n > MaxBatchKeys {
		return errorMsg(OpMigrateRows, ErrBadRequest), nil
	}
	applied := 0
	for i := 0; i < n; i++ {
		key := kv.Key(d.Str())
		// View decode: the row aliases the pooled request frame and is merged
		// (copied into a store-owned blob) before this handler returns.
		blob := d.BytesView()
		if d.Err != nil {
			return transport.Message{}, d.Err
		}
		row := &kv.Row{}
		if err := kv.DecodeRowInto(row, blob); err != nil {
			return errorMsg(OpMigrateRows, err), nil
		}
		if err := s.mergeReplicaRow(key, row); err != nil {
			return errorMsg(OpMigrateRows, err), nil
		}
		applied++
	}
	s.mig.NoteRowsReceived(applied)
	_ = v
	_ = src
	return transport.Message{Op: OpMigrateRows, Body: okHeader().B}, nil
}

func (s *Server) handleMigrateStatus(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	v := ring.VNodeID(d.U32())
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	st, ok := s.mig.DonorStatus(v)
	if !ok {
		return errorMsg(OpMigrateStatus, ErrNotFound), nil
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return errorMsg(OpMigrateStatus, err), nil
	}
	e := okHeader()
	e.Bytes(blob)
	return transport.Message{Op: OpMigrateStatus, Body: e.B}, nil
}

func (s *Server) handleMigrateFinish(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	v := ring.VNodeID(d.U32())
	abort := d.Bool()
	recipientRole := d.Bool()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	if recipientRole {
		s.mig.UnexpectRecipient(v)
		return transport.Message{Op: OpMigrateFinish, Body: okHeader().B}, nil
	}
	if err := s.finishDonor(ctx, v, abort); err != nil {
		return errorMsg(OpMigrateFinish, err), nil
	}
	return transport.Message{Op: OpMigrateFinish, Body: okHeader().B}, nil
}

// finishDonor completes the donor half of one migration. The orchestrator
// calls this right after committing the cutover, so the local ring view
// almost certainly lags it: refresh authoritatively first, or the migrator's
// Owned check would keep every migrated row on the donor until the next
// reconcile tick (and, since FinishDonor runs once, forever). A failed
// refresh degrades safely — the stale view keeps the rows for anti-entropy.
func (s *Server) finishDonor(ctx context.Context, v ring.VNodeID, abort bool) error {
	if !abort {
		if _, err := s.mgr.RefreshRing(); err != nil {
			s.logf("finish donor vnode %d: ring refresh failed (%v); keeping rows", v, err)
		}
	}
	return s.mig.FinishDonor(ctx, v, abort)
}

func (s *Server) handleRebalanceJoin(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	if err := s.reb.StartJoin(); err != nil {
		// A campaign that cannot start (busy, nothing to plan, no room) is
		// the caller's problem, not a replication failure.
		return errorMsg(OpRebalanceJoin, fmt.Errorf("%w: %v", ErrBadRequest, err)), nil
	}
	return transport.Message{Op: OpRebalanceJoin, Body: okHeader().B}, nil
}

func (s *Server) handleRebalanceDrain(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	if err := s.reb.StartDrain(); err != nil {
		return errorMsg(OpRebalanceDrain, fmt.Errorf("%w: %v", ErrBadRequest, err)), nil
	}
	return transport.Message{Op: OpRebalanceDrain, Body: okHeader().B}, nil
}

func (s *Server) handleRebalanceStatus(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	c, ok := s.reb.Status()
	if !ok {
		return errorMsg(OpRebalanceStatus, ErrNotFound), nil
	}
	blob, err := json.Marshal(c)
	if err != nil {
		return errorMsg(OpRebalanceStatus, err), nil
	}
	e := okHeader()
	e.Bytes(blob)
	return transport.Message{Op: OpRebalanceStatus, Body: e.B}, nil
}

// Migrator exposes the node's migration engine (tests and diagnostics).
func (s *Server) Migrator() *rebalance.Migrator { return s.mig }

// Rebalancer exposes the node's campaign orchestrator (tests, CLI paths).
func (s *Server) Rebalancer() *rebalance.Rebalancer { return s.reb }
