package core

import (
	"context"
	"sync"
	"time"

	"sedna/internal/kv"
	"sedna/internal/transport"
	"sedna/internal/trigger"
	"sedna/internal/wire"
)

// Subscriptions are Sedna's push API for remote clients: "by pushing
// recently changed data to corresponding clients", §II-B. Since an Action
// is Go code, remote clients cannot ship one; instead they register a
// subscription — hooks plus a built-in changed-value filter — and the node
// buffers matching events, delivered through long-polls. In-process
// applications use Server.Trigger() directly for full filter/action power.

// SubEvent is one pushed change.
type SubEvent struct {
	Key     kv.Key
	Value   []byte
	TS      kv.Timestamp
	Deleted bool
}

// subBufferCap bounds each subscription's event buffer; the oldest events
// are dropped first (freshest-matters-most, like flow control).
const subBufferCap = 4096

type sub struct {
	id    uint64
	jobID uint64

	mu       sync.Mutex
	buf      []SubEvent
	dropped  uint64
	notify   chan struct{}
	lastPoll time.Time
}

func (sb *sub) push(ev SubEvent) {
	sb.mu.Lock()
	if len(sb.buf) >= subBufferCap {
		sb.buf = sb.buf[1:]
		sb.dropped++
	}
	sb.buf = append(sb.buf, ev)
	select {
	case sb.notify <- struct{}{}:
	default:
	}
	sb.mu.Unlock()
}

func (sb *sub) take(max int) []SubEvent {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.lastPoll = time.Now()
	n := len(sb.buf)
	if n > max {
		n = max
	}
	out := make([]SubEvent, n)
	copy(out, sb.buf[:n])
	sb.buf = sb.buf[n:]
	return out
}

type subRegistry struct {
	s    *Server
	idle time.Duration
	mu   sync.Mutex
	subs map[uint64]*sub
	next uint64
}

func newSubRegistry(s *Server) *subRegistry {
	idle := s.cfg.SubIdleTimeout
	if idle <= 0 {
		idle = 2 * time.Minute
	}
	return &subRegistry{s: s, idle: idle, subs: map[uint64]*sub{}}
}

// handleNew registers a subscription. Body: u32 hook count, per hook three
// strings (dataset, table, name); bool changedOnly; u32 interval ms.
func (r *subRegistry) handleNew(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	n := int(d.U32())
	hooks := make([]trigger.Hook, 0, n)
	for i := 0; i < n; i++ {
		hooks = append(hooks, trigger.Hook{Dataset: d.Str(), Table: d.Str(), Name: d.Str()})
	}
	changedOnly := d.Bool()
	intervalMs := d.U32()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	if len(hooks) == 0 {
		return errorMsg(OpSubNew, ErrBadRequest), nil
	}

	sb := &sub{notify: make(chan struct{}, 1), lastPoll: time.Now()}
	job := trigger.Job{
		Name:     "sub:" + from,
		Hooks:    hooks,
		Interval: time.Duration(intervalMs) * time.Millisecond,
		Action: trigger.ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *trigger.Result) error {
			ev := SubEvent{Key: key}
			if len(values) > 0 {
				ev.Value = values[0]
			} else {
				ev.Deleted = true
			}
			sb.push(ev)
			return nil
		}),
	}
	if changedOnly {
		job.Filter = trigger.FilterFunc(func(old, new trigger.Snapshot) bool {
			return old.Exists != new.Exists || string(old.Value) != string(new.Value)
		})
	}
	jobID, err := r.s.trig.Register(job)
	if err != nil {
		return errorMsg(OpSubNew, err), nil
	}
	sb.jobID = jobID
	r.mu.Lock()
	r.next++
	sb.id = r.next
	r.subs[sb.id] = sb
	first := len(r.subs) == 1
	r.mu.Unlock()
	if first {
		go r.gcLoop()
	}
	e := okHeader()
	e.U64(sb.id)
	return transport.Message{Op: OpSubNew, Body: e.B}, nil
}

// handlePoll returns buffered events, waiting up to waitMs when empty.
// Body: u64 sub id, u32 max, u32 wait ms.
func (r *subRegistry) handlePoll(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	id := d.U64()
	max := int(d.U32())
	waitMs := d.U32()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	if max <= 0 {
		max = 256
	}
	r.mu.Lock()
	sb := r.subs[id]
	r.mu.Unlock()
	if sb == nil {
		return errorMsg(OpSubPoll, ErrNoSub), nil
	}
	events := sb.take(max)
	if len(events) == 0 && waitMs > 0 {
		timer := time.NewTimer(time.Duration(waitMs) * time.Millisecond)
		select {
		case <-sb.notify:
		case <-timer.C:
		case <-ctx.Done():
		case <-r.s.stopCh:
		}
		timer.Stop()
		events = sb.take(max)
	}
	e := okHeader()
	e.U32(uint32(len(events)))
	for _, ev := range events {
		e.Str(string(ev.Key))
		e.Bytes(ev.Value)
		e.I64(ev.TS.Wall)
		e.U32(ev.TS.Logical)
		e.U32(ev.TS.Node)
		e.Bool(ev.Deleted)
	}
	return transport.Message{Op: OpSubPoll, Body: e.B}, nil
}

// handleClose tears a subscription down. Body: u64 sub id.
func (r *subRegistry) handleClose(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	id := d.U64()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	r.mu.Lock()
	sb := r.subs[id]
	delete(r.subs, id)
	r.mu.Unlock()
	if sb != nil {
		r.s.trig.Unregister(sb.jobID)
	}
	return transport.Message{Op: OpSubClose, Body: okHeader().B}, nil
}

// gcLoop drops subscriptions whose client vanished without closing.
func (r *subRegistry) gcLoop() {
	t := time.NewTicker(r.idle / 4)
	defer t.Stop()
	for {
		select {
		case <-r.s.stopCh:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-r.idle)
		r.mu.Lock()
		for id, sb := range r.subs {
			sb.mu.Lock()
			idle := sb.lastPoll.Before(cutoff)
			sb.mu.Unlock()
			if idle {
				delete(r.subs, id)
				r.s.trig.Unregister(sb.jobID)
			}
		}
		r.mu.Unlock()
	}
}
