package core

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"sedna/internal/kv"
	"sedna/internal/memstore"
	"sedna/internal/obs"
	"sedna/internal/quorum"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// instrumented wraps an RPC handler with a server-side latency histogram.
func instrumented(h *obs.Histogram, fn transport.Handler) transport.Handler {
	return func(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
		start := time.Now()
		resp, err := fn(ctx, from, req)
		h.Observe(time.Since(start))
		return resp, err
	}
}

// errStarting answers RPCs that arrive between Transport.Serve and the end
// of Start, when handler state (cluster manager, quorum engine, ...) does
// not exist yet. It maps to StFailure, so callers treat the node exactly
// like one that is down: retry elsewhere, hint what could not be delivered.
var errStarting = errors.New("core: starting")

// gated rejects an RPC until Start has finished wiring the server.
func (s *Server) gated(op uint16, fn transport.Handler) transport.Handler {
	return func(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
		if !s.ready.Load() {
			return errorMsg(op, errStarting), nil
		}
		return fn(ctx, from, req)
	}
}

// errorMsg builds an error response. NotOwner rejections carry the
// responder's ring version after the detail string so the caller can
// retarget in one round trip.
func errorMsg(op uint16, err error) transport.Message {
	st, detail := ErrStatus(err)
	var e wire.Enc
	e.U16(st)
	e.Str(detail)
	if st == StNotOwner {
		epoch, _ := NotOwnerEpoch(err)
		e.U64(epoch)
	}
	return transport.Message{Op: op, Body: e.B}
}

func okHeader() *wire.Enc {
	var e wire.Enc
	e.U16(StOK)
	e.Str("")
	return &e
}

// handleCoordWrite serves the client write path: body is key, versioned
// payload fields (value, deleted), mode and source; the timestamp is
// assigned here by the coordinator's clock.
func (s *Server) handleCoordWrite(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	if tr := s.obs.ContinueTrace(req.Trace); tr != nil {
		tr.Mark("coord.recv")
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	key := kv.Key(d.Str())
	value := d.Bytes()
	mode := quorum.Mode(d.U8())
	deleted := d.Bool()
	source := d.Str()
	// Optional trailing causal fields: pre-DVV clients simply omit them
	// (legacy timestamp semantics), new clients append a flag, an
	// explicit-context flag, and — when explicit — the writer's read
	// context. An explicit empty context is NOT a blind write: it means
	// "my read observed nothing", and the coordinator must not substitute
	// its own state (that would erase a genuinely concurrent sibling).
	causal := false
	var cctx kv.DVV
	if d.Err == nil && d.Off < len(d.B) {
		causal = d.Bool()
		if causal && d.Bool() {
			cctx = decodeCtx(d)
			if cctx == nil {
				cctx = kv.DVV{}
			}
		}
	}
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	if source == "" {
		source = from
	}
	var err error
	if causal {
		err = s.CoordWriteCausal(ctx, key, value, mode, deleted, source, cctx)
	} else {
		err = s.CoordWrite(ctx, key, value, mode, deleted, source)
	}
	if err != nil {
		return errorMsg(OpCoordWrite, err), nil
	}
	return transport.Message{Op: OpCoordWrite, Body: okHeader().B}, nil
}

// handleCoordRead serves the client read path; the response carries the
// merged row.
func (s *Server) handleCoordRead(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	if tr := s.obs.ContinueTrace(req.Trace); tr != nil {
		tr.Mark("coord.recv")
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	key := kv.Key(d.Str())
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	row, err := s.CoordRead(ctx, key)
	if err != nil {
		return errorMsg(OpCoordRead, err), nil
	}
	e := okHeader()
	e.Bytes(kv.EncodeRow(row))
	return transport.Message{Op: OpCoordRead, Body: e.B}, nil
}

func (s *Server) handleReplicaWrite(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	tr := s.obs.ContinueTrace(req.Trace)
	if tr != nil {
		tr.Mark("replica.recv")
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	key := kv.Key(d.Str())
	// View decode: v.Value aliases the pooled request frame, which stays
	// valid until this handler returns; applyReplicaWrite copies it exactly
	// once, into the re-encoded row blob, before that.
	v := DecodeVersionedView(d)
	mode := quorum.Mode(d.U8())
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	s.clock.Observe(v.TS)
	status, err := s.applyReplicaWrite(key, v, mode)
	tr.Mark("replica.applied")
	if err != nil {
		return errorMsg(OpReplicaWrite, err), nil
	}
	var e wire.Enc
	if status == quorum.WriteOK {
		e.U16(StOK)
	} else {
		e.U16(StOutdated)
	}
	e.Str("")
	return transport.Message{Op: OpReplicaWrite, Body: e.B}, nil
}

func (s *Server) handleReplicaRead(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	tr := s.obs.ContinueTrace(req.Trace)
	if tr != nil {
		tr.Mark("replica.recv")
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	key := kv.Key(d.Str())
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	// The stored blob IS the wire encoding: copy it straight into the
	// response with no decode/re-encode round trip.
	blob := s.readReplicaBlob(key)
	tr.Mark("replica.read")
	e := okHeader()
	e.Bytes(blob)
	return transport.Message{Op: OpReplicaRead, Body: e.B}, nil
}

func (s *Server) handleReplicaRepair(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	if tr := s.obs.ContinueTrace(req.Trace); tr != nil {
		tr.Mark("replica.recv")
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	key := kv.Key(d.Str())
	// View decode: the row aliases the pooled request frame and is merged
	// (copied into a store-owned blob) before this handler returns.
	blob := d.BytesView()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	row := &kv.Row{}
	if err := kv.DecodeRowInto(row, blob); err != nil {
		return errorMsg(OpReplicaRepair, err), nil
	}
	if err := s.mergeReplicaRow(key, row); err != nil {
		return errorMsg(OpReplicaRepair, err), nil
	}
	return transport.Message{Op: OpReplicaRepair, Body: okHeader().B}, nil
}

// handleVNodeScan dumps the local rows belonging to one vnode, the bulk
// transfer behind replica recovery.
func (s *Server) handleVNodeScan(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	v := ring.VNodeID(d.U32())
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	r := s.mgr.Ring()
	if r == nil {
		return errorMsg(OpVNodeScan, ErrFailure), nil
	}
	type entry struct {
		key  string
		blob []byte
	}
	// Collect references only while Range holds each shard lock: stored
	// blobs are stable (the store replaces, never mutates, values), so the
	// copies happen outside the critical section, one bounded append per
	// entry into a pre-sized response buffer.
	var entries []entry
	total := 0
	s.store.Range(func(key string, it memstore.Item) bool {
		if r.VNodeFor(kv.Key(key)) == v {
			entries = append(entries, entry{key: key, blob: it.Value})
			total += 4 + len(key) + 4 + len(it.Value)
		}
		return true
	})
	e := okHeader()
	e.B = append(make([]byte, 0, len(e.B)+4+total), e.B...)
	e.U32(uint32(len(entries)))
	for _, en := range entries {
		e.Str(en.key)
		e.Bytes(en.blob)
	}
	return transport.Message{Op: OpVNodeScan, Body: e.B}, nil
}

// handleRingGet serves the node's assignment snapshot so clients can route
// zero-hop.
func (s *Server) handleRingGet(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	r := s.mgr.Ring()
	if r == nil {
		return errorMsg(OpRingGet, ErrFailure), nil
	}
	e := okHeader()
	e.Bytes(ring.EncodeRing(r))
	return transport.Message{Op: OpRingGet, Body: e.B}, nil
}

// handleObsStats serves the node's obs.Report as JSON — the stats surface
// behind `sedna-cli stats` and the ops-plane /statsz endpoint.
func (s *Server) handleObsStats(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	blob, err := json.Marshal(s.ObsReport())
	if err != nil {
		return errorMsg(OpObsStats, err), nil
	}
	e := okHeader()
	e.Bytes(blob)
	return transport.Message{Op: OpObsStats, Body: e.B}, nil
}

// handleStats serves the server counters (debugging and the benchmarks).
func (s *Server) handleStats(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	st := s.Stats()
	e := okHeader()
	e.U64(st.CoordWrites)
	e.U64(st.CoordReads)
	e.U64(st.ReplicaWrites)
	e.U64(st.ReplicaReads)
	e.U64(st.Repairs)
	e.U64(st.Recoveries)
	e.I64(st.Store.Items)
	e.I64(st.Store.Bytes)
	e.U64(st.Trigger.Fired)
	return transport.Message{Op: OpServerStats, Body: e.B}, nil
}
