package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/persist"
	"sedna/internal/trigger"
	"sedna/internal/wal"
)

func newCluster(t *testing.T, cfg bench.ClusterConfig) *bench.Cluster {
	t.Helper()
	c, err := bench.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitConverged(cfg.Nodes, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func newClient(t *testing.T, c *bench.Cluster) *client.Client {
	t.Helper()
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 1})
	cl := newClient(t, c)
	ctx := context.Background()

	key := kv.Join("ds", "tb", "hello")
	if err := cl.WriteLatest(ctx, key, []byte("world")); err != nil {
		t.Fatal(err)
	}
	val, ts, err := cl.ReadLatest(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "world" || ts.IsZero() {
		t.Fatalf("read = %q ts=%v", val, ts)
	}
}

func TestReadMissingKey(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 2})
	cl := newClient(t, c)
	if _, _, err := cl.ReadLatest(context.Background(), kv.Join("d", "t", "ghost")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 3})
	cl := newClient(t, c)
	ctx := context.Background()
	key := kv.Join("d", "t", "k")
	cl.WriteLatest(ctx, key, []byte("v1"))
	if err := cl.WriteLatest(ctx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	val, _, _ := cl.ReadLatest(ctx, key)
	if string(val) != "v2" {
		t.Fatalf("read = %q", val)
	}
	if err := cl.Delete(ctx, key); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.ReadLatest(ctx, key); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("read after delete = %v", err)
	}
}

func TestWriteAllValueLists(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 4})
	ctx := context.Background()
	key := kv.Join("d", "t", "shared")

	// Two clients with distinct sources write the same key.
	c1 := newClient(t, c)
	c2 := newClient(t, c)
	if err := c1.WriteAll(ctx, key, []byte("from-c1")); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteAll(ctx, key, []byte("from-c2")); err != nil {
		t.Fatal(err)
	}
	vals, err := c1.ReadAll(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("value list = %+v", vals)
	}
	seen := map[string]bool{}
	for _, v := range vals {
		seen[string(v.Data)] = true
	}
	if !seen["from-c1"] || !seen["from-c2"] {
		t.Fatalf("values = %+v", vals)
	}
	// Freshest first.
	if string(vals[0].Data) != "from-c2" {
		t.Fatalf("order = %+v", vals)
	}
}

func TestReplicationSurvivesNodeFailure(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 4, Seed: 5, SessionTimeout: 400 * time.Millisecond})
	cl := newClient(t, c)
	ctx := context.Background()

	const n = 40
	for i := 0; i < n; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%03d", i))
		if err := cl.WriteLatest(ctx, key, []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.KillNode(1)

	// Every key must remain readable (quorum of the survivors), though it
	// may take a moment for the routing to fail over.
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; i < n; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%03d", i))
		for {
			val, _, err := cl.ReadLatest(ctx, key)
			if err == nil {
				if string(val) != fmt.Sprintf("v%03d", i) {
					t.Fatalf("key %d = %q", i, val)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d unreadable after failure: %v", i, err)
			}
		}
	}
	// Writes keep working too.
	deadlineW := time.Now().Add(10 * time.Second)
	for {
		err := cl.WriteLatest(ctx, kv.Join("d", "t", "after-failure"), []byte("yes"))
		if err == nil {
			break
		}
		if time.Now().After(deadlineW) {
			t.Fatalf("write after failure: %v", err)
		}
	}
}

func TestFailedNodeEvictedAndDataRereplicated(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 4, Seed: 6, SessionTimeout: 300 * time.Millisecond})
	cl := newClient(t, c)
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%03d", i))
		if err := cl.WriteLatest(ctx, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.KillNode(2)
	// Survivors converge to 3 members.
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for i, s := range c.Servers {
			if i == 2 {
				continue
			}
			r := s.Ring()
			if r == nil || len(r.Nodes()) != 3 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never evicted the dead node")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// After recovery, every key is fully replicated on the survivors:
	// reading with one MORE node killed still succeeds only if the data
	// was re-replicated. Verify replica counts directly instead.
	deadline = time.Now().Add(15 * time.Second)
	for i := 0; i < 30; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%03d", i))
		for {
			val, _, err := cl.ReadLatest(ctx, key)
			if err == nil && string(val) == "v" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d lost after eviction: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestTriggerJobEndToEnd(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{
		Nodes:           3,
		Seed:            7,
		ScanEvery:       5 * time.Millisecond,
		TriggerInterval: 10 * time.Millisecond,
	})
	cl := newClient(t, c)
	ctx := context.Background()

	// Register an indexer-style job on EVERY node: each node only sees
	// dirty rows of replicas it stores, so cluster-wide jobs register
	// cluster-wide (the paper's Indexer example, §IV).
	var fired sync.Map
	for _, s := range c.Servers {
		_, err := s.Trigger().Register(trigger.Job{
			Name:  "indexer",
			Hooks: []trigger.Hook{trigger.TableHook("web", "pages")},
			Action: trigger.ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *trigger.Result) error {
				fired.Store(key, string(values[0]))
				res.Emit(kv.Join("web", "index", key.Name()), []byte("indexed:"+string(values[0])))
				return nil
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := cl.WriteLatest(ctx, kv.Join("web", "pages", "p1"), []byte("content")); err != nil {
		t.Fatal(err)
	}
	// The trigger fires on the replica holders and writes the index entry
	// back through the cluster.
	deadline := time.Now().Add(10 * time.Second)
	for {
		val, _, err := cl.ReadLatest(ctx, kv.Join("web", "index", "p1"))
		if err == nil && string(val) == "indexed:content" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("index entry never appeared: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := fired.Load(kv.Join("web", "pages", "p1")); !ok {
		t.Fatal("job never saw the page")
	}
}

func TestSubscriptionPush(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{
		Nodes:           3,
		Seed:            8,
		ScanEvery:       5 * time.Millisecond,
		TriggerInterval: 5 * time.Millisecond,
	})
	cl := newClient(t, c)
	ctx := context.Background()

	// Subscribe on every node: the event fires where replicas live.
	var subs []*client.Subscription
	for _, addr := range c.NodeAddrs {
		sub, err := cl.Subscribe(addr, []client.Hook{{Dataset: "feed", Table: "msgs"}}, client.SubscribeOptions{
			PollWait: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs = append(subs, sub)
	}

	key := kv.Join("feed", "msgs", "m1")
	if err := cl.WriteLatest(ctx, key, []byte("hello subscribers")); err != nil {
		t.Fatal(err)
	}
	merged := make(chan client.Event, 64)
	for _, sub := range subs {
		go func(sub *client.Subscription) {
			for ev := range sub.Events() {
				merged <- ev
			}
		}(sub)
	}
	select {
	case ev := <-merged:
		if ev.Key != key || string(ev.Value) != "hello subscribers" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no event pushed")
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := bench.ClusterConfig{
		Nodes: 3,
		Seed:  9,
		Persist: persist.Config{
			Dir:      dir,
			Strategy: persist.Hybrid,
			WALSync:  wal.SyncNever,
		},
	}
	c := newCluster(t, cfg)
	cl := newClient(t, c)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%02d", i))
		if err := cl.WriteLatest(ctx, key, []byte("persisted")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate full-cluster power loss: close everything, then reboot a
	// fresh cluster over the same persistence directories (§III-C: "we
	// can still recover the data from lost by the periodic data flushing"
	// — here via the WAL).
	c.Close()

	c2, err := bench.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.WaitConverged(3, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	cl2, err := c2.Client()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%02d", i))
		val, _, err := cl2.ReadLatest(ctx, key)
		if err != nil || string(val) != "persisted" {
			t.Fatalf("key %d after restart = %q, %v", i, val, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 10})
	ctx := context.Background()
	const workers = 6
	const per = 30
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		cl := newClient(t, c)
		wg.Add(1)
		go func(w int, cl *client.Client) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := kv.Join("d", "t", fmt.Sprintf("w%d-k%d", w, i))
				if err := cl.WriteLatest(ctx, key, []byte{byte(w), byte(i)}); err != nil {
					errCh <- err
					return
				}
				if _, _, err := cl.ReadLatest(ctx, key); err != nil {
					errCh <- err
					return
				}
			}
		}(w, cl)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestRingLeaseRouting(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 11})
	cl := newClient(t, c)
	ctx := context.Background()
	if err := cl.WriteLatest(ctx, kv.Join("d", "t", "k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if cl.RingVersion() == 0 {
		t.Fatal("client never leased the ring")
	}
}

func TestStatsPopulated(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 12})
	cl := newClient(t, c)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		cl.WriteLatest(ctx, kv.Join("d", "t", fmt.Sprintf("k%d", i)), []byte("v"))
		cl.ReadLatest(ctx, kv.Join("d", "t", fmt.Sprintf("k%d", i)))
	}
	var coordWrites, replicaWrites uint64
	for _, s := range c.Servers {
		st := s.Stats()
		coordWrites += st.CoordWrites
		replicaWrites += st.ReplicaWrites
	}
	if coordWrites < 10 {
		t.Fatalf("coord writes = %d", coordWrites)
	}
	// Every write lands on N=3 replicas.
	if replicaWrites < 30 {
		t.Fatalf("replica writes = %d, want >= 30", replicaWrites)
	}
}

func TestRebalanceMovesHotPrimaries(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 13})
	cl := newClient(t, c)
	ctx := context.Background()

	// Drive load so node 0's primaries run hot: write keys whose primary
	// is node 0, repeatedly.
	r := c.Servers[0].Ring()
	hot := 0
	for i := 0; hot < 200 && i < 20000; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%05d", i))
		if r.Primary(key) != c.Servers[0].Node() {
			continue
		}
		if err := cl.WriteLatest(ctx, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		hot++
	}
	if hot == 0 {
		t.Fatal("no keys landed on node 0")
	}
	moves, err := c.Servers[0].Rebalance(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no rebalance for a hot node")
	}
	for _, mv := range moves {
		if mv.From != c.Servers[0].Node() {
			t.Fatalf("unexpected donor in %v", mv)
		}
	}
	// The authoritative ring reflects the moves and data stays readable.
	deadline := time.Now().Add(10 * time.Second)
	for {
		nr := c.Servers[1].Ring()
		if nr != nil && nr.Version() > r.Version() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peers never observed the rebalanced ring")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%05d", i))
		if _, _, err := cl.ReadLatest(ctx, key); err != nil && !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("read after rebalance: %v", err)
		}
	}
}

func TestRebalanceQuietWhenBalanced(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 14})
	cl := newClient(t, c)
	ctx := context.Background()
	// Uniform load.
	for i := 0; i < 200; i++ {
		cl.WriteLatest(ctx, kv.Join("d", "t", fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	moves, err := c.Servers[0].Rebalance(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("balanced cluster rebalanced: %v", moves)
	}
}

func TestTombstoneGC(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 15})
	cl := newClient(t, c)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("gc%02d", i))
		if err := cl.WriteLatest(ctx, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := cl.Delete(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	// A live row that must survive.
	if err := cl.WriteLatest(ctx, kv.Join("d", "t", "alive"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let async replication settle

	var collected int
	for _, s := range c.Servers {
		// Horizon in the past relative to the tombstones: use a negative
		// horizon so "older than now+1s" covers everything.
		collected += s.CollectTombstones(-time.Second)
	}
	if collected == 0 {
		t.Fatal("no tombstones collected")
	}
	// The tombstoned keys are physically gone from every store...
	for _, s := range c.Servers {
		st := s.Stats()
		_ = st
	}
	// ...and semantics are unchanged: deleted keys read as missing, the
	// live key still reads.
	if _, _, err := cl.ReadLatest(ctx, kv.Join("d", "t", "gc00")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("gc'd key = %v", err)
	}
	val, _, err := cl.ReadLatest(ctx, kv.Join("d", "t", "alive"))
	if err != nil || string(val) != "v" {
		t.Fatalf("live key = %q, %v", val, err)
	}
}

func TestTombstoneGCKeepsFreshTombstones(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 16})
	cl := newClient(t, c)
	ctx := context.Background()
	key := kv.Join("d", "t", "fresh-del")
	cl.WriteLatest(ctx, key, []byte("v"))
	cl.Delete(ctx, key)
	time.Sleep(20 * time.Millisecond)
	for _, s := range c.Servers {
		if n := s.CollectTombstones(time.Hour); n != 0 {
			t.Fatalf("fresh tombstone collected (%d)", n)
		}
	}
}

func TestNodeRestartRejoins(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 17, SessionTimeout: 300 * time.Millisecond})
	cl := newClient(t, c)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := cl.WriteLatest(ctx, kv.Join("d", "t", fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Crash node 1: peers evict it.
	c.KillNode(1)
	deadline := time.Now().Add(15 * time.Second)
	for {
		r := c.Servers[0].Ring()
		if r != nil && len(r.Nodes()) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead node never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Restart it with the same identity: it must rejoin and reclaim a
	// share of the vnodes, copying their data back.
	if _, err := c.RestartNode(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := c.WaitConverged(3, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	r := c.Servers[1].Ring()
	if got := len(r.PrimaryVNodesOf(c.Servers[1].Node())); got == 0 {
		t.Fatal("restarted node reclaimed no vnodes")
	}
	// All data still readable; new writes land fine.
	for i := 0; i < 20; i++ {
		key := kv.Join("d", "t", fmt.Sprintf("k%02d", i))
		deadline := time.Now().Add(10 * time.Second)
		for {
			val, _, err := cl.ReadLatest(ctx, key)
			if err == nil && string(val) == "v" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d lost across restart: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := cl.WriteLatest(ctx, kv.Join("d", "t", "post-restart"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestSubscriptionIdleGC(t *testing.T) {
	cfg := bench.ClusterConfig{Nodes: 1, Seed: 18}
	c, err := bench.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	// Rebuild node 0 with a short sub idle timeout is not supported via
	// the harness; use a dedicated server instead.
	c.Close()

	net := c.Net
	_ = net
	c2, err := bench.NewCluster(bench.ClusterConfig{Nodes: 1, Seed: 19, SubIdleTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	if err := c2.WaitConverged(1, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	cl, err := c2.Client()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Subscribe(c2.NodeAddrs[0], []client.Hook{{Dataset: "d", Table: "t"}}, client.SubscribeOptions{PollWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	jobsBefore := len(c2.Servers[0].Trigger().Jobs())
	if jobsBefore == 0 {
		t.Fatal("subscription registered no job")
	}
	// Stop polling: close the pump but skip the server-side close, like a
	// crashed client.
	_ = sub
	// The pump keeps polling, so kill the client's network path instead.
	c2.Net.Partition(fmt.Sprintf("client-%d", 1), c2.NodeAddrs[0])
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(c2.Servers[0].Trigger().Jobs()) < jobsBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle subscription never garbage-collected")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
