package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/kv"
	"sedna/internal/persist"
	"sedna/internal/vfs"
	"sedna/internal/wal"
)

// TestDuplicateRetryMustNotAckWithoutDurability is the regression for the
// retry-dedup durability quirk: a replica write applies to the memstore,
// the WAL refuses the blob, and the coordinator's retry redelivers the same
// versioned value. The duplicate is recognised as already applied — but
// "the memstore holds it" is not "the log holds it", so the duplicate may
// only ack once the durability debt is settled. Before the fix the retry
// acked unconditionally, turning every write during an fsync brown-out into
// an acked-then-lost row.
func TestDuplicateRetryMustNotAckWithoutDurability(t *testing.T) {
	fsys := vfs.NewFault()
	c := newCluster(t, bench.ClusterConfig{
		Nodes: 1,
		Seed:  11,
		Persist: persist.Config{
			Dir:      "/data",
			Strategy: persist.WriteAhead,
			WALSync:  wal.SyncAlways,
			FS:       fsys,
		},
	})
	cl := newClient(t, c)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	key := kv.Join("dura", "t", "k")
	if err := cl.WriteLatest(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Sticky fsync fault: the first attempt applies to the memstore and
	// fails the WAL append; the engine's local retry then redelivers the
	// identical write, hitting the duplicate path while the key still owes
	// its log entry. That path must refuse to ack.
	fsys.FailFsync(errors.New("injected: medium error"))
	if err := cl.WriteLatest(ctx, key, []byte("v2")); err == nil {
		t.Fatal("write acked while the WAL refused the blob: the duplicate retry counted as applied without durability")
	}

	// Crash-restart onto the durable image: everything not fsynced — v2's
	// refused WAL record, any dying flush — is gone. Only acked writes may
	// be expected to survive, and v2 was never acked.
	img := fsys.CrashFS()
	c.Close()
	c2 := newCluster(t, bench.ClusterConfig{
		Nodes: 1,
		Seed:  11,
		Persist: persist.Config{
			Dir:      "/data",
			Strategy: persist.WriteAhead,
			WALSync:  wal.SyncAlways,
			FS:       img,
		},
	})
	cl2 := newClient(t, c2)
	val, _, err := cl2.ReadLatest(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "v1" {
		t.Fatalf("after crash restart read %q, want the last durably acked value %q", val, "v1")
	}
}
