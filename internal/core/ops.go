package core

import (
	"sedna/internal/opshttp"
	"sedna/internal/ring"
	"sedna/internal/transport"
)

// OpsConfig returns the ops-plane wiring for this data node: the cmd
// binaries and tests hand it to opshttp.Start so every embedding shares one
// set of endpoint semantics. addr is the HTTP listen address.
func (s *Server) OpsConfig(addr string) opshttp.Config {
	return opshttp.Config{
		Addr:   addr,
		Node:   string(s.cfg.Node),
		Report: s.ObsReport,
		Health: s.healthStatus,
		Ring: func() *ring.Ring {
			if s.mgr == nil {
				return nil
			}
			return s.mgr.Ring()
		},
		Imbalance:  s.localImbalance,
		VNodeLoads: s.vnodeLoads,
		Flight:     s.obs.FlightEvents,
		Logf:       s.cfg.Logf,
	}
}

// healthStatus summarises liveness for /healthz: the node is "ok" while it
// is serving; open breakers and pending hints are reported so an operator
// sees a partially dark cluster without grepping logs.
func (s *Server) healthStatus() opshttp.HealthStatus {
	h := opshttp.HealthStatus{Node: string(s.cfg.Node), OK: true}
	s.mu.Lock()
	if s.closed {
		h.OK = false
	}
	s.mu.Unlock()
	for addr, st := range s.health.States() {
		if st != transport.BreakerClosed {
			if h.Breakers == nil {
				h.Breakers = map[string]string{}
			}
			h.Breakers[addr] = st.String()
		}
	}
	h.HintsPending = s.healer.Pending()
	h.HintsDropped = s.healer.Dropped()
	h.SlowOps = s.obs.Counter("obs.slow_ops").Load()
	if s.pers != nil && s.pers.Degraded() {
		// A sticky WAL fsync failure: the node keeps serving reads but no
		// longer acknowledges durable writes, and must leave rotations.
		h.OK = false
		h.Durability = "degraded"
	}
	// The watchdog's currently-firing rules (breaker flap, fsync-wait
	// inflation, retry surges, vnode imbalance, degradation probes).
	h.DegradedReasons = s.watchdog.DegradedReasons()
	return h
}

// localImbalance folds this node's per-vnode counters into the imbalance
// table for the current ring (empty before the node joins).
func (s *Server) localImbalance() []ring.NodeImbalance {
	if s.mgr == nil {
		return nil
	}
	r := s.mgr.Ring()
	ls := s.LoadStats()
	if r == nil || ls == nil {
		return nil
	}
	return ring.Imbalance(r, ls.Snapshot())
}

// vnodeLoads returns the per-vnode counters (nil before the node joins).
func (s *Server) vnodeLoads() []ring.VNodeLoad {
	ls := s.LoadStats()
	if ls == nil {
		return nil
	}
	return ls.Snapshot()
}
