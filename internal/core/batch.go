package core

import (
	"context"
	"fmt"
	"time"

	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/quorum"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// This file is the core half of the multi-key batch path: the coordinator
// operations (CoordWriteBatch / CoordReadBatch), their RPC handlers, and
// the replica-side batch frames that let quorum.Engine ship one message per
// replica node instead of one per key.

// WriteItem is one key of a coordinated batch write.
type WriteItem struct {
	Key     kv.Key
	Value   []byte
	Mode    quorum.Mode
	Deleted bool
}

// CoordWriteBatch coordinates one quorum write per item from this node:
// every item is stamped with the node's hybrid clock and the W-of-N
// protocol runs per key over one frame per replica node. The returned
// slice aligns with items; a nil entry is a successful write, ErrOutdated
// and ErrFailure report per-key verdicts exactly as CoordWrite does.
// Failed replicas are reported as suspects once per batch.
func (s *Server) CoordWriteBatch(ctx context.Context, items []WriteItem, source string) []error {
	return s.coordWriteBatch(ctx, items, source, false)
}

// CoordWriteBatchCausal is CoordWriteBatch with dotted (DVV) writes: every
// item is stamped with a fresh causal event id, so concurrent writers to
// the same keys are retained as siblings instead of racing the timestamp
// rule. Batch writes are blind (no read context).
func (s *Server) CoordWriteBatchCausal(ctx context.Context, items []WriteItem, source string) []error {
	return s.coordWriteBatch(ctx, items, source, true)
}

func (s *Server) coordWriteBatch(ctx context.Context, items []WriteItem, source string, causal bool) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	s.nCoordWrites.Add(uint64(len(items)))
	start := time.Now()
	defer func() { s.hCoordWrite.Observe(time.Since(start)) }()
	if source == "" {
		source = string(s.cfg.Node)
	}
	batch := make([]quorum.BatchWrite, len(items))
	for i, it := range items {
		batch[i] = quorum.BatchWrite{
			Key:      it.Key,
			Replicas: s.replicasFor(it.Key),
			V:        kv.Versioned{Value: it.Value, TS: s.clock.Now(), Source: source, Deleted: it.Deleted},
			Mode:     it.Mode,
		}
		if causal {
			// Blind dotted writes take the mode-scoped coordinator context
			// (see blindCtx), so sequential batch traffic supersedes instead
			// of accumulating siblings.
			batch[i].V.Dot = s.mintDot(it.Key, source)
			batch[i].V.Ctx = s.blindCtx(it.Key, source, it.Mode, batch[i].V.Dot)
		}
	}
	obs.Mark(ctx, "coord.batch_route")
	res := s.engine.WriteBatch(ctx, batch)
	suspects := map[ring.NodeID]bool{}
	for i, r := range res {
		for _, n := range r.Failed {
			suspects[n] = true
		}
		switch {
		case r.Err != nil:
			errs[i] = fmt.Errorf("%w: %v", ErrFailure, r.Err)
		case r.Outdated:
			errs[i] = ErrOutdated
		}
	}
	s.suspectSet(suspects)
	return errs
}

// CoordReadBatch coordinates one quorum read per key and returns the merged
// rows aligned with keys (nil row iff the aligned error is non-nil). Keys
// whose quorum answered without some replica feed the merged row into the
// hint queue for the laggard, exactly as CoordRead does.
func (s *Server) CoordReadBatch(ctx context.Context, keys []kv.Key) ([]*kv.Row, []error) {
	rows := make([]*kv.Row, len(keys))
	errs := make([]error, len(keys))
	if len(keys) == 0 {
		return rows, errs
	}
	s.nCoordReads.Add(uint64(len(keys)))
	start := time.Now()
	defer func() { s.hCoordRead.Observe(time.Since(start)) }()
	batch := make([]quorum.BatchRead, len(keys))
	for i, k := range keys {
		batch[i] = quorum.BatchRead{Key: k, Replicas: s.replicasFor(k)}
	}
	obs.Mark(ctx, "coord.batch_route")
	res := s.engine.ReadBatch(ctx, batch)
	suspects := map[ring.NodeID]bool{}
	for i, r := range res {
		for _, n := range r.Failed {
			suspects[n] = true
		}
		if r.Err != nil {
			errs[i] = fmt.Errorf("%w: %v", ErrFailure, r.Err)
			continue
		}
		rows[i] = r.Row
		if len(r.Failed) > 0 && r.Row != nil && len(r.Row.Values) > 0 {
			// The quorum answered without the failed replicas; queue the
			// merged row so they catch up without another read.
			for _, n := range r.Failed {
				s.healer.Enqueue(n, keys[i], r.Row)
			}
		}
	}
	s.suspectSet(suspects)
	return rows, errs
}

// suspectSet verifies each failed replica once per batch.
func (s *Server) suspectSet(set map[ring.NodeID]bool) {
	if len(set) == 0 {
		return
	}
	failed := make([]ring.NodeID, 0, len(set))
	for n := range set {
		failed = append(failed, n)
	}
	s.suspectAll(failed)
}

// --- replica-side batch frames (quorum.BatchTransport) ---

// WriteReplicaBatch implements quorum.BatchTransport: local fast path for
// self, one OpReplicaWriteBatch frame for peers.
func (rt replicaRPC) WriteReplicaBatch(ctx context.Context, node ring.NodeID, items []quorum.NodeWrite) ([]quorum.WriteAck, error) {
	if node == rt.s.cfg.Node {
		obs.Mark(ctx, "replica.local_write_batch")
		acks := make([]quorum.WriteAck, len(items))
		for i, w := range items {
			st, err := rt.s.applyReplicaWrite(w.Key, w.V, w.Mode)
			acks[i] = quorum.WriteAck{Status: st, Err: err}
		}
		return acks, nil
	}
	start := time.Now()
	defer func() { rt.s.hReplicaFanout.Observe(time.Since(start)) }()
	var e wire.Enc
	e.U32(uint32(len(items)))
	for _, w := range items {
		e.Str(string(w.Key))
		EncodeVersioned(&e, w.V)
		e.U8(byte(w.Mode))
	}
	resp, err := rt.s.health.Call(ctx, string(node), transport.Message{
		Op: OpReplicaWriteBatch, Body: e.B, Trace: obs.WireContext(ctx, "rpc.write_replica_batch"),
	})
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if d.Err != nil {
		return nil, d.Err
	}
	if st != StOK {
		return nil, StatusErr(st, detail)
	}
	n := int(d.U32())
	if n != len(items) {
		return nil, fmt.Errorf("core: batch write ack count %d != %d items", n, len(items))
	}
	acks := make([]quorum.WriteAck, n)
	for i := 0; i < n; i++ {
		ist := d.U16()
		idetail := d.Str()
		if d.Err != nil {
			return nil, d.Err
		}
		switch ist {
		case StOK:
			acks[i] = quorum.WriteAck{Status: quorum.WriteOK}
		case StOutdated:
			acks[i] = quorum.WriteAck{Status: quorum.WriteOutdated}
		case StNotOwner:
			epoch := d.U64()
			rt.s.noteRemoteNotOwner(epoch)
			acks[i] = quorum.WriteAck{Err: NotOwnerWithEpoch(epoch)}
		default:
			acks[i] = quorum.WriteAck{Err: StatusErr(ist, idetail)}
		}
	}
	return acks, nil
}

// ReadReplicaBatch implements quorum.BatchTransport.
func (rt replicaRPC) ReadReplicaBatch(ctx context.Context, node ring.NodeID, keys []kv.Key) ([]quorum.ReadAck, error) {
	if node == rt.s.cfg.Node {
		obs.Mark(ctx, "replica.local_read_batch")
		acks := make([]quorum.ReadAck, len(keys))
		for i, k := range keys {
			row, err := rt.s.readReplicaRow(k)
			acks[i] = quorum.ReadAck{Row: row, Err: err}
		}
		return acks, nil
	}
	start := time.Now()
	defer func() { rt.s.hReplicaFanout.Observe(time.Since(start)) }()
	var e wire.Enc
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(string(k))
	}
	resp, err := rt.s.health.Call(ctx, string(node), transport.Message{
		Op: OpReplicaReadBatch, Body: e.B, Trace: obs.WireContext(ctx, "rpc.read_replica_batch"),
	})
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if d.Err != nil {
		return nil, d.Err
	}
	if st != StOK {
		return nil, StatusErr(st, detail)
	}
	n := int(d.U32())
	if n != len(keys) {
		return nil, fmt.Errorf("core: batch read ack count %d != %d keys", n, len(keys))
	}
	acks := make([]quorum.ReadAck, n)
	for i := 0; i < n; i++ {
		ist := d.U16()
		idetail := d.Str()
		// The response body is ours; decoded rows may alias it.
		blob := d.BytesView()
		if d.Err != nil {
			return nil, d.Err
		}
		if ist != StOK {
			acks[i] = quorum.ReadAck{Err: StatusErr(ist, idetail)}
			continue
		}
		row := &kv.Row{}
		if derr := kv.DecodeRowInto(row, blob); derr != nil {
			acks[i] = quorum.ReadAck{Err: derr}
			continue
		}
		acks[i] = quorum.ReadAck{Row: row}
	}
	return acks, nil
}

// --- RPC handlers ---

// handleCoordWriteBatch serves the client batch write path: body is the
// source, then a vector of (key, value, mode, deleted); the response is a
// per-key status vector aligned with the request.
func (s *Server) handleCoordWriteBatch(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	if tr := s.obs.ContinueTrace(req.Trace); tr != nil {
		tr.Mark("coord.recv")
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	source := d.Str()
	n := int(d.U32())
	if d.Err == nil && n > MaxBatchKeys {
		return errorMsg(OpCoordWriteBatch, fmt.Errorf("%w: batch of %d keys exceeds %d", ErrBadRequest, n, MaxBatchKeys)), nil
	}
	items := make([]WriteItem, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, WriteItem{
			Key:     kv.Key(d.Str()),
			Value:   d.Bytes(),
			Mode:    quorum.Mode(d.U8()),
			Deleted: d.Bool(),
		})
	}
	// Optional trailing causal flag (pre-DVV clients omit it).
	causal := false
	if d.Err == nil && d.Off < len(d.B) {
		causal = d.Bool()
	}
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	if source == "" {
		source = from
	}
	var errs []error
	if causal {
		errs = s.CoordWriteBatchCausal(ctx, items, source)
	} else {
		errs = s.CoordWriteBatch(ctx, items, source)
	}
	e := okHeader()
	e.U32(uint32(len(errs)))
	for _, err := range errs {
		st, detail := ErrStatus(err)
		e.U16(st)
		e.Str(detail)
	}
	return transport.Message{Op: OpCoordWriteBatch, Body: e.B}, nil
}

// handleCoordReadBatch serves the client batch read path; the response is a
// per-key (status, row) vector aligned with the request.
func (s *Server) handleCoordReadBatch(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	if tr := s.obs.ContinueTrace(req.Trace); tr != nil {
		tr.Mark("coord.recv")
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	n := int(d.U32())
	if d.Err == nil && n > MaxBatchKeys {
		return errorMsg(OpCoordReadBatch, fmt.Errorf("%w: batch of %d keys exceeds %d", ErrBadRequest, n, MaxBatchKeys)), nil
	}
	keys := make([]kv.Key, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, kv.Key(d.Str()))
	}
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	rows, errs := s.CoordReadBatch(ctx, keys)
	e := okHeader()
	e.U32(uint32(len(keys)))
	for i := range keys {
		st, detail := ErrStatus(errs[i])
		e.U16(st)
		e.Str(detail)
		if errs[i] == nil {
			e.Bytes(kv.EncodeRow(rows[i]))
		} else {
			e.Bytes(nil)
		}
	}
	return transport.Message{Op: OpCoordReadBatch, Body: e.B}, nil
}

// handleReplicaWriteBatch applies one frame of versioned values to the
// local replica and answers a per-item status vector.
func (s *Server) handleReplicaWriteBatch(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	tr := s.obs.ContinueTrace(req.Trace)
	if tr != nil {
		tr.Mark("replica.recv")
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	n := int(d.U32())
	if d.Err == nil && n > MaxBatchKeys {
		return errorMsg(OpReplicaWriteBatch, fmt.Errorf("%w: batch of %d keys exceeds %d", ErrBadRequest, n, MaxBatchKeys)), nil
	}
	type item struct {
		key  kv.Key
		v    kv.Versioned
		mode quorum.Mode
	}
	items := make([]item, 0, n)
	for i := 0; i < n; i++ {
		it := item{key: kv.Key(d.Str())}
		// View decode: values alias the pooled request frame; every item is
		// applied (and copied into its row blob) before this handler returns.
		it.v = DecodeVersionedView(d)
		it.mode = quorum.Mode(d.U8())
		items = append(items, it)
	}
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	e := okHeader()
	e.U32(uint32(len(items)))
	for _, it := range items {
		s.clock.Observe(it.v.TS)
		status, err := s.applyReplicaWrite(it.key, it.v, it.mode)
		switch {
		case err != nil:
			st, detail := ErrStatus(err)
			e.U16(st)
			e.Str(detail)
			if st == StNotOwner {
				epoch, _ := NotOwnerEpoch(err)
				e.U64(epoch)
			}
		case status == quorum.WriteOK:
			e.U16(StOK)
			e.Str("")
		default:
			e.U16(StOutdated)
			e.Str("")
		}
	}
	tr.Mark("replica.applied")
	return transport.Message{Op: OpReplicaWriteBatch, Body: e.B}, nil
}

// handleReplicaReadBatch fetches one frame of local rows and answers a
// per-key (status, row) vector.
func (s *Server) handleReplicaReadBatch(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	tr := s.obs.ContinueTrace(req.Trace)
	if tr != nil {
		tr.Mark("replica.recv")
		defer tr.Finish(s.obs)
	}
	d := wire.NewDec(req.Body)
	n := int(d.U32())
	if d.Err == nil && n > MaxBatchKeys {
		return errorMsg(OpReplicaReadBatch, fmt.Errorf("%w: batch of %d keys exceeds %d", ErrBadRequest, n, MaxBatchKeys)), nil
	}
	keys := make([]kv.Key, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, kv.Key(d.Str()))
	}
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	e := okHeader()
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		// The stored blob IS the wire encoding: copy it straight into the
		// response with no decode/re-encode round trip.
		e.U16(StOK)
		e.Str("")
		e.Bytes(s.readReplicaBlob(k))
	}
	tr.Mark("replica.read")
	return transport.Message{Op: OpReplicaReadBatch, Body: e.B}, nil
}
