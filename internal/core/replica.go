package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sedna/internal/heal"
	"sedna/internal/kv"
	"sedna/internal/memstore"
	"sedna/internal/obs"
	"sedna/internal/quorum"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// --- local replica storage ---

// rowScratchPool recycles decode-scratch rows for the replica apply paths.
// A pooled row may retain stale aliases into a previous blob until its next
// DecodeRowInto overwrites them, which is why scratch rows never escape the
// function that drew them from the pool.
var rowScratchPool = sync.Pool{New: func() any { return new(kv.Row) }}

// resetScratchRow prepares a pooled row for reuse, keeping slice capacity.
func resetScratchRow(r *kv.Row) {
	r.Dirty = false
	r.Values = r.Values[:0]
	r.Monitors = r.Monitors[:0]
	r.Clock = r.Clock[:0]
	r.Obs = 0
}

// applyReplicaWrite applies one versioned value to the local row under the
// store's per-key atomicity; it implements the replica-side rules of
// write_latest and write_all (§III-F.1).
//
// This is the zero-copy write path's final stage: the old blob is decoded
// into a pooled scratch row whose values ALIAS the blob (DecodeRowInto), the
// merged row is encoded once into a pre-sized buffer, and the store adopts
// that buffer via UpdateOwned — so v.Value (which may itself be a view into
// a pooled transport frame) is copied exactly once, by AppendRow.
func (s *Server) applyReplicaWrite(key kv.Key, v kv.Versioned, mode quorum.Mode) (quorum.WriteStatus, error) {
	s.nReplicaWrites.Inc()
	// Ownership gate: after a migration cutover the old and new quorums may
	// not overlap, so a replica that lost the vnode must reject instead of
	// acking a write the new owners will never see.
	if gerr := s.checkWriteOwnership(key); gerr != nil {
		return 0, gerr
	}
	status := quorum.WriteOK
	duplicate := false
	var newBlob, curBlob []byte
	row := rowScratchPool.Get().(*kv.Row)
	defer rowScratchPool.Put(row)
	err := s.store.UpdateOwned(string(key), func(old []byte, ok bool) ([]byte, bool) {
		resetScratchRow(row)
		if ok {
			if derr := kv.DecodeRowInto(row, old); derr != nil {
				resetScratchRow(row)
			}
		}
		var accepted bool
		switch {
		case !v.Dot.IsZero():
			// Dotted write: the DVV rules supersede exactly what the writer
			// read, retain concurrent siblings, and never answer "outdated".
			// A covered dot is a replay of an event this replica already
			// observed (a retry after a lost ack).
			accepted = row.ApplyCausal(v, mode == quorum.Latest, s.cfg.SiblingCap)
			duplicate = !accepted
		case mode == quorum.Latest:
			accepted = row.ApplyLatest(v)
		default:
			accepted = row.ApplyAll(v)
		}
		if !accepted {
			// An exact dotless duplicate means this value already landed (a
			// retry after a lost ack): answer "ok" without re-logging so the
			// re-send is idempotent. Anything else newer wins: "outdated".
			if v.Dot.IsZero() {
				if row.Contains(v) {
					duplicate = true
				} else {
					status = quorum.WriteOutdated
				}
			}
			if !ok {
				return nil, false
			}
			curBlob = old
			return old, true // same slice: UpdateOwned short-circuits
		}
		newBlob = kv.AppendRow(make([]byte, 0, kv.EncodedRowSize(row)), row)
		return newBlob, true
	})
	if err != nil {
		return 0, err
	}
	if status == quorum.WriteOK && !duplicate {
		if perr := s.pers.LogWrite(string(key), newBlob); perr != nil {
			// The memstore holds the row but the log refused it: remember the
			// debt so a retry of the same write cannot ack through the
			// duplicate path without durability.
			s.noteUndurable(key)
			return 0, perr
		}
		s.clearUndurable(key)
		s.markDirty(key)
		s.recordWrite(key, len(newBlob))
		// Dual-write window: while this vnode streams out, the accepted
		// value is also queued to the migration recipient.
		s.forwardDualWrite(key, v, mode == quorum.Latest)
	}
	if duplicate {
		// A duplicate only counts as applied if the first attempt was made
		// durable: when the key still owes a log write (the earlier apply
		// updated the memstore but the WAL refused the blob), the retry must
		// settle that debt before acking, or a sticky-fsync replica would
		// keep acking writes that vanish on restart.
		if perr := s.settleUndurable(key, curBlob); perr != nil {
			return 0, perr
		}
	}
	return status, nil
}

// noteUndurable records that key's stored row is ahead of the log; the
// fast path stays lock-free via the counter.
func (s *Server) noteUndurable(key kv.Key) {
	s.undurMu.Lock()
	if s.undurable == nil {
		s.undurable = map[kv.Key]struct{}{}
	}
	if _, ok := s.undurable[key]; !ok {
		s.undurable[key] = struct{}{}
		s.nUndurable.Add(1)
	}
	s.undurMu.Unlock()
}

// clearUndurable drops key's durability debt after a successful log write.
func (s *Server) clearUndurable(key kv.Key) {
	if s.nUndurable.Load() == 0 {
		return
	}
	s.undurMu.Lock()
	if _, ok := s.undurable[key]; ok {
		delete(s.undurable, key)
		s.nUndurable.Add(-1)
	}
	s.undurMu.Unlock()
}

// settleUndurable re-attempts the log write a previous apply of key left
// behind. blob is the stored row at duplicate-detection time (nil when the
// row vanished); returning an error refuses the duplicate ack.
func (s *Server) settleUndurable(key kv.Key, blob []byte) error {
	if s.nUndurable.Load() == 0 {
		return nil
	}
	s.undurMu.Lock()
	_, owed := s.undurable[key]
	s.undurMu.Unlock()
	if !owed || blob == nil {
		return nil
	}
	if perr := s.pers.LogWrite(string(key), blob); perr != nil {
		return perr
	}
	s.clearUndurable(key)
	return nil
}

// readReplicaRow returns a copy of the local row (empty when absent). Rows
// that escape to quorum merging or user code always go through this copying
// decode; the RPC read handlers use readReplicaBlob instead.
func (s *Server) readReplicaRow(key kv.Key) (*kv.Row, error) {
	s.nReplicaReads.Inc()
	it, ok := s.store.Get(string(key))
	s.recordRead(key, len(it.Value))
	if !ok {
		return &kv.Row{}, nil
	}
	row, err := kv.DecodeRow(it.Value)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt row %q: %w", key, err)
	}
	return row, nil
}

// emptyRowBlob is the canonical encoding of an absent row.
var emptyRowBlob = kv.EncodeRow(&kv.Row{})

// readReplicaBlob returns the local row's encoded blob without decoding it:
// the store's blob IS the wire encoding, so the read RPC handlers copy it
// straight into the response frame with no decode/re-encode round trip. The
// result aliases the store's copy — read-only and stable (the store
// replaces, never mutates, values) — and must not be written to.
func (s *Server) readReplicaBlob(key kv.Key) []byte {
	s.nReplicaReads.Inc()
	it, ok := s.store.Get(string(key))
	s.recordRead(key, len(it.Value))
	if !ok {
		return emptyRowBlob
	}
	return it.Value
}

// mergeReplicaRow folds a repair row into the local copy. Like
// applyReplicaWrite it decodes the old blob as a view and hands the store an
// owned re-encoding, so in's values are copied exactly once.
func (s *Server) mergeReplicaRow(key kv.Key, in *kv.Row) error {
	s.nRepairs.Inc()
	if gerr := s.checkWriteOwnership(key); gerr != nil {
		return gerr
	}
	changed := false
	var newBlob, curBlob []byte
	row := rowScratchPool.Get().(*kv.Row)
	defer rowScratchPool.Put(row)
	err := s.store.UpdateOwned(string(key), func(old []byte, ok bool) ([]byte, bool) {
		resetScratchRow(row)
		if ok {
			if derr := kv.DecodeRowInto(row, old); derr != nil {
				resetScratchRow(row)
			}
		}
		changed = row.Merge(in)
		if !changed {
			if !ok {
				return nil, false
			}
			curBlob = old
			return old, true // same slice: UpdateOwned short-circuits
		}
		newBlob = kv.AppendRow(make([]byte, 0, kv.EncodedRowSize(row)), row)
		return newBlob, true
	})
	if err != nil {
		return err
	}
	if !changed {
		// The row already holds everything this delivery carries — but "the
		// memstore holds it" is not "the log holds it". If a previous apply
		// left durability debt (its LogWrite failed after the memstore
		// accepted), this redelivery may only report success once the debt is
		// settled; otherwise a hint retires against a row a crash would lose.
		return s.settleUndurable(key, curBlob)
	}
	if perr := s.pers.LogWrite(string(key), newBlob); perr != nil {
		s.noteUndurable(key)
		return perr
	}
	s.clearUndurable(key)
	s.markDirty(key)
	s.recordWrite(key, len(newBlob))
	s.forwardDualRow(key, in)
	return nil
}

// recordWrite and recordRead attribute one replica-side op to the key's
// vnode (load stats) and to the key itself (hot-key sketch). Both run inline
// on the memstore hot path and must stay allocation-free.
func (s *Server) recordWrite(key kv.Key, bytes int) {
	s.mu.Lock()
	ls := s.loadStats
	s.mu.Unlock()
	if ls == nil {
		return
	}
	if r := s.mgr.Ring(); r != nil {
		vn := r.VNodeFor(key)
		ls.RecordWrite(vn)
		s.obs.RecordKey(ring.Hash64(key), int32(vn), true, bytes)
	}
}

func (s *Server) recordRead(key kv.Key, bytes int) {
	s.mu.Lock()
	ls := s.loadStats
	s.mu.Unlock()
	if ls == nil {
		return
	}
	if r := s.mgr.Ring(); r != nil {
		vn := r.VNodeFor(key)
		ls.RecordRead(vn)
		s.obs.RecordKey(ring.Hash64(key), int32(vn), false, bytes)
	}
}

// --- dirty queue feeding the trigger scanner ---

func (s *Server) markDirty(key kv.Key) {
	s.dirtyMu.Lock()
	if !s.dirtySet[key] {
		s.dirtySet[key] = true
		s.dirtyQ = append(s.dirtyQ, key)
	}
	s.dirtyMu.Unlock()
}

// dirtySource adapts the dirty queue to trigger.Source. The paper scans
// the store's Dirty column sequentially (§IV-C); keeping an explicit queue
// of dirtied keys implements the same contract without rescanning clean
// rows, and the Dirty bit in each row still round-trips through the codec.
type dirtySource struct{ s *Server }

// ScanDirty implements trigger.Source.
func (ds dirtySource) ScanDirty(limit int, fn func(kv.Key, *kv.Row)) int {
	s := ds.s
	s.dirtyMu.Lock()
	n := len(s.dirtyQ)
	if n > limit {
		n = limit
	}
	batch := make([]kv.Key, n)
	copy(batch, s.dirtyQ[:n])
	s.dirtyQ = s.dirtyQ[n:]
	for _, k := range batch {
		delete(s.dirtySet, k)
	}
	s.dirtyMu.Unlock()

	visited := 0
	for _, key := range batch {
		it, ok := s.store.Get(string(key))
		if !ok {
			continue
		}
		row, err := kv.DecodeRow(it.Value)
		if err != nil {
			continue
		}
		fn(key, row)
		visited++
	}
	return visited
}

// --- quorum transport over the replica RPCs ---

// replicaRPC implements quorum.Transport: local fast path for self, RPC for
// peers.
type replicaRPC struct{ s *Server }

// WriteReplica implements quorum.Transport.
func (rt replicaRPC) WriteReplica(ctx context.Context, node ring.NodeID, key kv.Key, v kv.Versioned, mode quorum.Mode) (quorum.WriteStatus, error) {
	if node == rt.s.cfg.Node {
		obs.Mark(ctx, "replica.local_write")
		return rt.s.applyReplicaWrite(key, v, mode)
	}
	start := time.Now()
	defer func() { rt.s.hReplicaFanout.Observe(time.Since(start)) }()
	var e wire.Enc
	e.Str(string(key))
	EncodeVersioned(&e, v)
	e.U8(byte(mode))
	resp, err := rt.s.health.Call(ctx, string(node), transport.Message{
		Op: OpReplicaWrite, Body: e.B, Trace: obs.WireContext(ctx, "rpc.write_replica"),
	})
	if err != nil {
		return 0, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if d.Err != nil {
		return 0, d.Err
	}
	switch st {
	case StOK:
		return quorum.WriteOK, nil
	case StOutdated:
		return quorum.WriteOutdated, nil
	case StNotOwner:
		// The error frame carries the responder's ring version so we can
		// tell a stale lease on our side from one on theirs.
		epoch := d.U64()
		rt.s.noteRemoteNotOwner(epoch)
		return 0, NotOwnerWithEpoch(epoch)
	default:
		return 0, StatusErr(st, detail)
	}
}

// ReadReplica implements quorum.Transport.
func (rt replicaRPC) ReadReplica(ctx context.Context, node ring.NodeID, key kv.Key) (*kv.Row, error) {
	if node == rt.s.cfg.Node {
		obs.Mark(ctx, "replica.local_read")
		return rt.s.readReplicaRow(key)
	}
	start := time.Now()
	defer func() { rt.s.hReplicaFanout.Observe(time.Since(start)) }()
	var e wire.Enc
	e.Str(string(key))
	resp, err := rt.s.health.Call(ctx, string(node), transport.Message{
		Op: OpReplicaRead, Body: e.B, Trace: obs.WireContext(ctx, "rpc.read_replica"),
	})
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if st == StNotOwner {
		epoch := d.U64()
		rt.s.noteRemoteNotOwner(epoch)
		return nil, NotOwnerWithEpoch(epoch)
	}
	if st != StOK {
		return nil, StatusErr(st, detail)
	}
	// The response body is ours (the transport hands Call's caller ownership
	// of it), so the decoded row may alias it instead of copying every value.
	blob := d.BytesView()
	if d.Err != nil {
		return nil, d.Err
	}
	row := &kv.Row{}
	if err := kv.DecodeRowInto(row, blob); err != nil {
		return nil, err
	}
	return row, nil
}

// RepairReplica implements quorum.Transport.
func (rt replicaRPC) RepairReplica(ctx context.Context, node ring.NodeID, key kv.Key, row *kv.Row) error {
	if node == rt.s.cfg.Node {
		return rt.s.mergeReplicaRow(key, row)
	}
	var e wire.Enc
	e.Str(string(key))
	e.Bytes(kv.EncodeRow(row))
	resp, err := rt.s.health.Call(ctx, string(node), transport.Message{
		Op: OpReplicaRepair, Body: e.B, Trace: obs.WireContext(ctx, "rpc.repair_replica"),
	})
	if err != nil {
		return err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if st == StNotOwner {
		epoch := d.U64()
		rt.s.noteRemoteNotOwner(epoch)
		return NotOwnerWithEpoch(epoch)
	}
	if st != StOK {
		return StatusErr(st, detail)
	}
	return nil
}

// --- coordinator operations (the paper's client-visible API) ---

// CoordWrite coordinates one quorum write of key from this node: it stamps
// the value with the node's hybrid clock and runs the W-of-N protocol.
// Failed replicas are reported as suspects, which — when the coordination
// service confirms the death — starts the recovery that re-replicates the
// node's vnodes (§III-C, §III-D).
func (s *Server) CoordWrite(ctx context.Context, key kv.Key, value []byte, mode quorum.Mode, deleted bool, source string) error {
	return s.coordWrite(ctx, key, value, mode, deleted, source, nil, false)
}

// CoordWriteCausal coordinates one dotted quorum write: the value carries a
// freshly minted causal event id plus cctx, the causal context the writer
// had read (nil for a blind write). Replicas supersede exactly the values
// cctx covers and retain everything concurrent as siblings, so a dotted
// write is never answered "outdated" — two racing writers both ack and both
// survive until a reader resolves them.
func (s *Server) CoordWriteCausal(ctx context.Context, key kv.Key, value []byte, mode quorum.Mode, deleted bool, source string, cctx kv.DVV) error {
	return s.coordWrite(ctx, key, value, mode, deleted, source, cctx, true)
}

func (s *Server) coordWrite(ctx context.Context, key kv.Key, value []byte, mode quorum.Mode, deleted bool, source string, cctx kv.DVV, causal bool) error {
	s.nCoordWrites.Inc()
	start := time.Now()
	// Reuse a trace continued from the wire (handler path) before sampling a
	// fresh one, so one client op stays one distributed trace.
	tr := obs.FromContext(ctx)
	if tr == nil {
		if tr = s.obs.SampleTrace("coord_write"); tr != nil {
			ctx = obs.WithTrace(ctx, tr)
			defer tr.Finish(s.obs)
		}
	}
	tenant := s.tenantFor(tr, key)
	outcome, failed := "ok", 0
	retargeted := false
	defer func() {
		d := time.Since(start)
		s.obs.ObserveOp(s.hCoordWrite, d, tr)
		s.finishCoordOp("coord_write", tr, key, tenant, d, outcome, failed, retargeted, true, len(value))
		if s.obs.IsSlow(d) {
			s.slowCoordOp("coord_write", tr, key, d, outcome, failed)
		}
	}()
	if source == "" {
		source = string(s.cfg.Node)
	}
	v := kv.Versioned{Value: value, TS: s.clock.Now(), Source: source, Deleted: deleted}
	if causal {
		v.Dot = s.mintDot(key, source)
		if cctx == nil {
			cctx = s.blindCtx(key, source, mode, v.Dot)
		}
		v.Ctx = cctx
	}
	replicas := s.replicasFor(key)
	if len(replicas) == 0 {
		outcome = "failure"
		return fmt.Errorf("%w: no replicas for %q", ErrFailure, key)
	}
	obs.Mark(ctx, "coord.route")
	res, err := s.engine.Write(ctx, replicas, key, v, mode)
	failed = len(res.Failed)
	// Hinted handoff happens at the engine layer (OnWriteError), which also
	// catches stragglers that fail after the quorum settled; here we only
	// report the failures the quorum saw as suspects.
	if len(res.Failed) > 0 {
		s.suspectAll(res.Failed)
	}
	if err != nil {
		// The owners may have moved mid-op (migration cutover): refresh the
		// lease once and retry against the new owner set.
		if again := s.retargetedReplicas(key, replicas); again != nil {
			obs.Mark(ctx, "coord.retarget")
			retargeted = true
			res, err = s.engine.Write(ctx, again, key, v, mode)
			failed += len(res.Failed)
			if len(res.Failed) > 0 {
				s.suspectAll(res.Failed)
			}
		}
	}
	if err != nil {
		outcome = "failure"
		return fmt.Errorf("%w: %v", ErrFailure, err)
	}
	if res.Outdated {
		outcome = "outdated"
		return ErrOutdated
	}
	return nil
}

// localRowClock returns the causal clock of the coordinator's local copy of
// key (nil when the key is absent or pre-DVV): the context stamped onto
// blind dotted writes.
func (s *Server) localRowClock(key kv.Key) kv.DVV {
	if it, ok := s.store.Get(string(key)); ok {
		if c, err := kv.DecodeRowClock(it.Value); err == nil {
			return c
		}
	}
	return nil
}

// blindCtx builds the causal context for a blind (no read context) dotted
// write by source for key, where d is the dot just minted for the write.
//
// Both modes cover the writer's OWN minted history 1..d.Counter-1 directly
// from the sequencer, not from the local row: under W<N quorums the
// coordinator's local apply can lag its own ack, and a context built only
// from the lagging row would leave the writer's previous — acked — write
// uncovered, turning a sequential overwrite (or delete) into a phantom
// concurrent sibling.
//
// latest mode additionally adopts the coordinator's full local row clock:
// healthy sequential traffic supersedes whatever the coordinator has seen
// from anyone, while genuinely concurrent writes it has NOT seen stay
// uncovered and survive as siblings.
//
// all mode must NOT ship the full clock. Replicas union a write's context
// into the row clock, and read-time Merge treats covered-and-absent as
// superseded with no notion of which source retired the dot — so a context
// claiming another source's events can poison a reordered replica's clock
// into silently discarding that source's acked value. A write_all context
// therefore covers only the writer's own events: the minted range above
// plus the dots of any same-source values the local row stores (an older
// actor id for this source, e.g. from a previous boot or coordinator).
func (s *Server) blindCtx(key kv.Key, source string, mode quorum.Mode, d kv.Dot) kv.DVV {
	var c kv.DVV
	if mode == quorum.Latest {
		c = s.localRowClock(key)
	} else if it, ok := s.store.Get(string(key)); ok {
		if row, err := kv.DecodeRow(it.Value); err == nil {
			for i := range row.Values {
				if row.Values[i].Source == source {
					c.Fold(row.Values[i].Dot)
				}
			}
		}
	}
	c.ExtendBase(d.Node, d.Counter-1)
	return c
}

// dotSeqMax bounds the per-(key, actor) dot sequencer map; past it, minting
// sweeps out entries whose counters the local row already covers (reseeding
// those from the row returns the same or a later counter, so eviction is
// safe).
const dotSeqMax = 1 << 17

// dotSeqKey addresses one writer's counter stream for one key.
type dotSeqKey struct {
	key   kv.Key
	actor uint32
}

// dotActor derives the causal actor id for one writing source at this boot:
// the boot-scoped node salt mixed with the source hash. Scoping actors per
// source guarantees a counter range is owned by exactly one writer, which is
// what makes it sound for a blind write's context to cover the writer's own
// earlier counters (blindCtx) — covering them can never retire another
// source's value.
func (s *Server) dotActor(source string) uint32 {
	return s.dotNode ^ uint32(ring.Hash64(kv.Key(source)))
}

// mintDot issues the next causal event id for key written by source: dots
// are contiguous per (actor, key), which is what lets DVV clocks compact the
// observed set into a base counter. The actor id is boot-scoped (see
// Server.dotNode): a restarted coordinator is a NEW actor whose counters
// restart at 1, so it can never re-mint a dot some replica's clock already
// covers — the fatal alternative, since a covered dot is dropped as a
// replay while the write is acked. The clock carries one small entry per
// actor that ever wrote the key; the lazy reseed from the local row's clock
// keeps counters resumable within a boot after sequencer eviction.
func (s *Server) mintDot(key kv.Key, source string) kv.Dot {
	self := s.dotActor(source)
	sk := dotSeqKey{key: key, actor: self}
	s.dotMu.Lock()
	n, ok := s.dotSeq[sk]
	if !ok {
		if it, found := s.store.Get(string(key)); found {
			if row, err := kv.DecodeRow(it.Value); err == nil {
				n = row.Clock.MaxCounter(self)
			}
		}
		if s.dotSeq == nil {
			s.dotSeq = map[dotSeqKey]uint64{}
		} else if len(s.dotSeq) >= dotSeqMax {
			s.evictDotSeqLocked()
		}
	}
	n++
	s.dotSeq[sk] = n
	s.dotMu.Unlock()
	return kv.Dot{Node: self, Counter: n}
}

// evictDotSeqLocked drops sequencer entries the local row's clock already
// covers — bounded work per overflow, called with dotMu held.
func (s *Server) evictDotSeqLocked() {
	checked := 0
	for sk, n := range s.dotSeq {
		if checked >= 4096 {
			return
		}
		checked++
		if it, ok := s.store.Get(string(sk.key)); ok {
			if row, err := kv.DecodeRow(it.Value); err == nil && row.Clock.MaxCounter(sk.actor) >= n {
				delete(s.dotSeq, sk)
			}
		}
	}
}

// slowCoordOp force-retains one slow coordinator op with the routing and
// healing context an operator needs to tell a hot vnode from a dark replica.
func (s *Server) slowCoordOp(op string, tr *obs.Trace, key kv.Key, d time.Duration, outcome string, failed int) {
	so := obs.SlowOp{Op: op, Dur: d, VNode: -1, KeyHash: ring.Hash64(key), Outcome: outcome}
	if tr != nil {
		so.TraceID = tr.ID
		so.Stages = tr.Snapshot().Stages
	}
	if r := s.mgr.Ring(); r != nil {
		so.VNode = int32(r.VNodeFor(key))
	}
	tags := map[string]string{}
	if failed > 0 {
		tags["failed_replicas"] = fmt.Sprint(failed)
	}
	open := 0
	for _, st := range s.health.States() {
		if st != transport.BreakerClosed {
			open++
		}
	}
	if open > 0 {
		tags["breakers_open"] = fmt.Sprint(open)
	}
	if p := s.healer.Pending(); p > 0 {
		tags["hints_pending"] = fmt.Sprint(p)
	}
	if len(tags) > 0 {
		so.Tags = tags
	}
	s.obs.RecordSlowOp(so)
}

// CoordRead coordinates one quorum read and returns the merged row.
func (s *Server) CoordRead(ctx context.Context, key kv.Key) (*kv.Row, error) {
	s.nCoordReads.Inc()
	start := time.Now()
	tr := obs.FromContext(ctx)
	if tr == nil {
		if tr = s.obs.SampleTrace("coord_read"); tr != nil {
			ctx = obs.WithTrace(ctx, tr)
			defer tr.Finish(s.obs)
		}
	}
	tenant := s.tenantFor(tr, key)
	outcome, failed := "ok", 0
	retargeted := false
	readBytes := 0
	defer func() {
		d := time.Since(start)
		s.obs.ObserveOp(s.hCoordRead, d, tr)
		s.finishCoordOp("coord_read", tr, key, tenant, d, outcome, failed, retargeted, false, readBytes)
		if s.obs.IsSlow(d) {
			s.slowCoordOp("coord_read", tr, key, d, outcome, failed)
		}
	}()
	replicas := s.replicasFor(key)
	if len(replicas) == 0 {
		outcome = "failure"
		return nil, fmt.Errorf("%w: no replicas for %q", ErrFailure, key)
	}
	obs.Mark(ctx, "coord.route")
	res, err := s.engine.Read(ctx, replicas, key)
	failed = len(res.Failed)
	if err != nil {
		// As in CoordWrite: absorb a migration cutover with one retargeted
		// retry before reporting failure.
		if again := s.retargetedReplicas(key, replicas); again != nil {
			obs.Mark(ctx, "coord.retarget")
			retargeted = true
			res, err = s.engine.Read(ctx, again, key)
			failed += len(res.Failed)
		}
	}
	if len(res.Failed) > 0 {
		if err == nil && res.Row != nil && len(res.Row.Values) > 0 {
			// The quorum answered without the failed replicas; queue the
			// merged row so they catch up without another read.
			for _, n := range res.Failed {
				s.healer.Enqueue(n, key, res.Row)
			}
		}
		s.suspectAll(res.Failed)
	}
	if err != nil {
		outcome = "failure"
		return nil, fmt.Errorf("%w: %v", ErrFailure, err)
	}
	if res.Row != nil {
		for _, v := range res.Row.Values {
			readBytes += len(v.Value)
		}
	}
	return res.Row, nil
}

// tenantFor resolves the op's tenant tag: a tag propagated with the trace
// context wins (the origin already attributed the op); otherwise the
// registry's key-prefix rule applies, and the result is stamped onto the
// trace so downstream replica spans stitch under it.
func (s *Server) tenantFor(tr *obs.Trace, key kv.Key) string {
	if tr != nil && tr.Tenant != "" {
		return tr.Tenant
	}
	tenant := s.obs.TenantOf(string(key))
	if tr != nil {
		tr.Tenant = tenant
	}
	return tenant
}

// finishCoordOp leaves the op's introspection record: one wide event in the
// always-on flight recorder plus the per-tenant attribution row. The
// breaker/hint lookups only run on failed ops so the happy path stays a few
// atomic stores.
func (s *Server) finishCoordOp(op string, tr *obs.Trace, key kv.Key, tenant string, d time.Duration, outcome string, failed int, retargeted, write bool, bytes int) {
	ev := obs.WideEvent{
		Op:      op,
		DurNs:   int64(d),
		VNode:   -1,
		KeyHash: ring.Hash64(key),
		Tenant:  tenant,
		Outcome: outcome,
		Retries: uint32(failed),
	}
	if r := s.mgr.Ring(); r != nil {
		ev.VNode = int32(r.VNodeFor(key))
	}
	if tr != nil {
		ev.TraceID = tr.ID
	}
	if retargeted {
		ev.Flags |= obs.FlagRetargeted
	}
	if failed > 0 {
		ev.Flags |= obs.FlagReplicaFailed
		for _, st := range s.health.States() {
			if st != transport.BreakerClosed {
				ev.Flags |= obs.FlagBreakerOpen
				break
			}
		}
		if s.healer.Pending() > 0 {
			ev.Flags |= obs.FlagHintsPending
		}
	}
	s.obs.RecordOp(ev)
	s.obs.RecordTenantOp(tenant, write, bytes, d, outcome == "failure")
}

func (s *Server) replicasFor(key kv.Key) []ring.NodeID {
	r := s.mgr.Ring()
	if r == nil {
		return nil
	}
	owners := r.OwnersForKey(key)
	out := make([]ring.NodeID, 0, len(owners))
	for _, o := range owners {
		if o != "" {
			out = append(out, o)
		}
	}
	return out
}

// suspectAll verifies failed replicas against the coordination service in
// the background; confirmed deaths trigger vnode redistribution.
func (s *Server) suspectAll(failed []ring.NodeID) {
	for _, n := range failed {
		n := n
		go func() {
			if err := s.mgr.ReportSuspect(n); err != nil {
				s.logf("suspect %s: %v", n, err)
			}
		}()
	}
}

// --- vnode recovery (data migration for gained vnodes) ---

// onMoves copies data for vnodes this node gained: it fetches the vnode's
// rows from a surviving owner and merges them locally (the asynchronous
// "data duplication task" of §III-C).
func (s *Server) onMoves(moves []ring.Move) {
	if len(moves) == 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for _, mv := range moves {
			select {
			case <-s.stopCh:
				return
			default:
			}
			if mv.To != s.cfg.Node {
				continue
			}
			if err := s.recoverVNode(mv.VNode); err != nil {
				s.logf("recover vnode %d: %v", mv.VNode, err)
			}
		}
	}()
}

// recoverVNode pulls one vnode's rows from any other healthy owner.
func (s *Server) recoverVNode(v ring.VNodeID) error {
	r := s.mgr.Ring()
	if r == nil {
		return errors.New("core: no ring")
	}
	var sources []ring.NodeID
	for _, o := range r.Owners(v) {
		if o != "" && o != s.cfg.Node {
			sources = append(sources, o)
		}
	}
	if len(sources) == 0 {
		return nil // nothing to copy from (fresh cluster)
	}
	var lastErr error
	for _, src := range sources {
		rows, err := s.fetchVNode(src, v)
		if err != nil {
			lastErr = err
			continue
		}
		for key, row := range rows {
			if err := s.mergeReplicaRow(key, row); err != nil {
				lastErr = err
			}
		}
		s.nRecoveries.Inc()
		return lastErr
	}
	return lastErr
}

func (s *Server) fetchVNode(src ring.NodeID, v ring.VNodeID) (map[kv.Key]*kv.Row, error) {
	var e wire.Enc
	e.U32(uint32(v))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := s.health.Call(ctx, string(src), transport.Message{Op: OpVNodeScan, Body: e.B})
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if st != StOK {
		return nil, StatusErr(st, detail)
	}
	n := int(d.U32())
	out := make(map[kv.Key]*kv.Row, n)
	for i := 0; i < n; i++ {
		key := kv.Key(d.Str())
		// Rows may alias the response body we own; merging copies them into
		// store-owned blobs.
		blob := d.BytesView()
		if d.Err != nil {
			return nil, d.Err
		}
		row := &kv.Row{}
		if err := kv.DecodeRowInto(row, blob); err != nil {
			return nil, err
		}
		out[key] = row
	}
	return out, nil
}

// --- anti-entropy sweep after confirmed deaths ---

// onDeaths receives every eviction this node's manager committed and marks
// the reassigned vnodes this node owns as dirty; the sweeper then re-merges
// them to the surviving owners at a low rate. This covers updates the dead
// node missed for which no hint survived (dropped by overflow, or the
// coordinator itself crashed).
func (s *Server) onDeaths(dead []ring.NodeID, moves []ring.Move) {
	r := s.mgr.Ring()
	if r == nil {
		return
	}
	seen := map[ring.VNodeID]bool{}
	var mine []ring.VNodeID
	for _, mv := range moves {
		if seen[mv.VNode] {
			continue
		}
		seen[mv.VNode] = true
		for _, o := range r.Owners(mv.VNode) {
			if o == s.cfg.Node {
				mine = append(mine, mv.VNode)
				break
			}
		}
	}
	if len(mine) > 0 {
		s.sweeper.MarkDirty(mine...)
		s.logf("eviction of %v dirtied %d vnodes for anti-entropy", dead, len(mine))
	}
}

// onOwnershipChange receives the vnodes whose owner set a newly adopted ring
// changed. Rows this node wrote (or quorum-acked) against the previous view
// may be invisible to the new owner set — a coordinator's lease can lag a
// join, leaving acked rows on replicas the fresh ring no longer consults —
// so every affected vnode goes through an anti-entropy re-merge.
func (s *Server) onOwnershipChange(changed []ring.VNodeID) {
	if s.sweeper == nil || len(changed) == 0 {
		return
	}
	s.sweeper.MarkDirty(changed...)
	s.logf("ring change dirtied %d vnodes for anti-entropy", len(changed))
}

// sweepVNode re-merges every local row of one vnode into the vnode's other
// current owners. Merges are idempotent, so sweeping a vnode that already
// converged is wasted bandwidth but never wrong. The vnode's ownership
// epoch is captured up front and re-checked periodically: when a migration
// cutover (or eviction) reassigns the vnode mid-sweep, the sweep stops and
// reports heal.ErrOwnershipChanged so the sweeper re-queues it against the
// new owner set instead of finishing a repair round targeted at stale peers.
func (s *Server) sweepVNode(v ring.VNodeID) error {
	r := s.mgr.Ring()
	if r == nil || s.engine == nil {
		return errors.New("core: not started")
	}
	epoch := r.EpochOf(v)
	var peers []ring.NodeID
	for _, o := range r.Owners(v) {
		if o != "" && o != s.cfg.Node {
			peers = append(peers, o)
		}
	}
	if len(peers) == 0 {
		return nil
	}
	type entry struct {
		key kv.Key
		row *kv.Row
	}
	var rows []entry
	s.store.Range(func(key string, it memstore.Item) bool {
		k := kv.Key(key)
		if r.VNodeFor(k) != v {
			return true
		}
		if row, err := kv.DecodeRow(it.Value); err == nil {
			rows = append(rows, entry{k, row})
		}
		return true
	})
	var firstErr error
	for i, e := range rows {
		if i%32 == 0 {
			if cur := s.mgr.Ring(); cur != nil && cur.EpochOf(v) != epoch {
				return heal.ErrOwnershipChanged
			}
		}
		if err := s.engine.Repair(context.Background(), peers, e.key, e.row); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CollectTombstones removes rows whose every value is a tombstone older
// than the horizon. Deletes in Sedna are replicated tombstones (so the
// timestamp rule keeps them monotone across replicas); once a tombstone has
// been stable for longer than any plausible repair window it can be
// physically reclaimed. Returns the number of rows collected.
func (s *Server) CollectTombstones(horizon time.Duration) int {
	cutoff := time.Now().Add(-horizon).UnixNano()
	var victims []string
	s.store.Range(func(key string, it memstore.Item) bool {
		row, err := kv.DecodeRow(it.Value)
		if err != nil {
			return true
		}
		if len(row.Values) == 0 {
			victims = append(victims, key)
			return true
		}
		for _, v := range row.Values {
			if !v.Deleted || v.TS.Wall >= cutoff {
				return true
			}
		}
		victims = append(victims, key)
		return true
	})
	collected := 0
	for _, key := range victims {
		err := s.store.Update(key, func(old []byte, ok bool) ([]byte, bool) {
			if !ok {
				return nil, false
			}
			row, err := kv.DecodeRow(old)
			if err != nil {
				return old, true
			}
			// Re-check under the shard lock: a concurrent write revives
			// the row and must win.
			for _, v := range row.Values {
				if !v.Deleted || v.TS.Wall >= cutoff {
					return old, true
				}
			}
			return nil, false
		})
		if err == nil {
			if _, ok := s.store.Get(key); !ok {
				collected++
				if perr := s.pers.LogWrite(key, nil); perr != nil {
					s.logf("tombstone gc log: %v", perr)
				}
			}
		}
	}
	if collected > 0 {
		s.logf("tombstone gc reclaimed %d rows", collected)
	}
	return collected
}
