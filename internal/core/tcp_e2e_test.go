package core_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sedna/internal/client"
	"sedna/internal/coord"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/trigger"
)

// TestTCPEndToEnd runs a full Sedna deployment over real TCP sockets — the
// exact code path of the cmd/ binaries — and exercises the client API, a
// trigger job and a subscription against it.
func TestTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	// Coordination member on a real socket.
	coordTr, err := transport.NewTCPListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coordAddr := coordTr.Addr()
	ensemble := coord.NewServer(coord.ServerConfig{
		ID:              0,
		Members:         []string{coordAddr},
		Transport:       coordTr,
		HeartbeatEvery:  20 * time.Millisecond,
		ElectionTimeout: 120 * time.Millisecond,
		RPCTimeout:      80 * time.Millisecond,
	})
	if err := ensemble.Start(); err != nil {
		t.Fatal(err)
	}
	defer ensemble.Close()

	// Three data nodes, each on its own ephemeral port; the bound address
	// doubles as the node identity exactly like sedna-server does.
	var servers []*core.Server
	var nodeAddrs []string
	for i := 0; i < 3; i++ {
		tr, err := transport.NewTCPListen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := tr.Addr()
		srv, err := core.NewServer(core.Config{
			Node:            ring.NodeID(addr),
			Transport:       tr,
			CoordServers:    []string{coordAddr},
			Bootstrap:       i == 0,
			VNodes:          24,
			ScanEvery:       5 * time.Millisecond,
			TriggerInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		nodeAddrs = append(nodeAddrs, addr)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, s := range servers {
			r := s.Ring()
			if r == nil || len(r.Nodes()) != 3 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TCP cluster never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cli, err := client.New(client.Config{
		Servers: nodeAddrs,
		Caller:  transport.NewTCP(""),
		Source:  "tcp-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Basic data path.
	for i := 0; i < 20; i++ {
		key := kv.Join("tcp", "t", fmt.Sprintf("k%02d", i))
		if err := cli.WriteLatest(ctx, key, []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		key := kv.Join("tcp", "t", fmt.Sprintf("k%02d", i))
		val, _, err := cli.ReadLatest(ctx, key)
		if err != nil || string(val) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("key %d = %q, %v", i, val, err)
		}
	}

	// A trigger job over TCP-backed write-backs.
	for _, s := range servers {
		if _, err := s.Trigger().Register(trigger.Job{
			Name:  "tcp-echo",
			Hooks: []trigger.Hook{trigger.TableHook("tcp", "in")},
			Action: trigger.ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *trigger.Result) error {
				res.Emit(kv.Join("tcp", "out", key.Name()), values[0])
				return nil
			}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.WriteLatest(ctx, kv.Join("tcp", "in", "x"), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		val, _, err := cli.ReadLatest(ctx, kv.Join("tcp", "out", "x"))
		if err == nil && string(val) == "ping" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trigger output never arrived: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A subscription over TCP long-polls.
	sub, err := cli.Subscribe(nodeAddrs[0], []client.Hook{{Dataset: "tcp", Table: "feed"}},
		client.SubscribeOptions{PollWait: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	go func() {
		for i := 0; i < 20; i++ {
			cli.WriteLatest(ctx, kv.Join("tcp", "feed", fmt.Sprintf("m%d", i)), []byte("event"))
			time.Sleep(5 * time.Millisecond)
		}
	}()
	select {
	case ev := <-sub.Events():
		if ev.Key.Dataset() != "tcp" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no TCP-pushed event")
	}

	// Graceful leave over TCP.
	if err := servers[2].Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		val, _, err := cli.ReadLatest(ctx, kv.Join("tcp", "t", "k00"))
		if err == nil && string(val) == "v00" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("data unreadable after graceful leave: %v", err)
		}
	}
}
