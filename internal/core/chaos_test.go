package core_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/kv"
)

// TestChaosRollingFailures drives continuous writes while nodes are killed
// and restarted one at a time, then audits the durability contract: every
// write the cluster ACKNOWLEDGED must be readable with its final value
// afterwards (writes that errored may or may not exist — the client is told
// to retry those).
func TestChaosRollingFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	c := newCluster(t, bench.ClusterConfig{
		Nodes:          5,
		Seed:           77,
		SessionTimeout: 300 * time.Millisecond,
	})
	ctx := context.Background()

	// acked records the last acknowledged value per key; ackedN counts every
	// acknowledged write, so the chaos schedule can wait for real writer
	// progress instead of sleeping a fixed interval.
	var mu sync.Mutex
	acked := map[kv.Key]string{}
	ackedN := 0
	ackedCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return ackedN
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		cl := newClient(t, c)
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				key := kv.Join("chaos", "t", fmt.Sprintf("w%d-k%03d", w, i%150))
				val := fmt.Sprintf("w%d-i%06d", w, i)
				wctx, cancel := context.WithTimeout(ctx, 3*time.Second)
				err := cl.WriteLatest(wctx, key, []byte(val))
				cancel()
				if err == nil {
					mu.Lock()
					acked[key] = val
					ackedN++
					mu.Unlock()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	// Rolling failures: kill and restart nodes 1..3 in sequence. Never
	// touch more than one node at a time, so the quorum always survives.
	// All waits poll observable state (writer progress, ring membership)
	// rather than sleeping fixed intervals: under -race with every package
	// testing in parallel the scheduler can starve the background loops for
	// tens of seconds, so wall-clock pauses both flake and over-wait.
	for round := 0; round < 3; round++ {
		victim := 1 + round
		// Let the writers make real progress against the current membership
		// before the next failure.
		progressFrom := ackedCount()
		waitUntil(t, 40*time.Second, fmt.Sprintf("round %d: writer progress", round), func() bool {
			return ackedCount() >= progressFrom+50
		})
		c.KillNode(victim)
		// Eviction must be visible to EVERY survivor, not just node 0 —
		// a laggard's stale ring would race the restart below.
		waitUntil(t, 40*time.Second, fmt.Sprintf("round %d: victim eviction", round), func() bool {
			for i, s := range c.Servers {
				if i == victim || s == nil {
					continue
				}
				r := s.Ring()
				if r == nil || len(r.Nodes()) != 4 {
					return false
				}
			}
			return true
		})
		if _, err := c.RestartNode(victim); err != nil {
			t.Fatalf("round %d: restart: %v", round, err)
		}
		if err := c.WaitConverged(5, 90*time.Second); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	writers.Wait()

	// Audit: every acknowledged key must hold a value at least as new as
	// the acked one. A later un-acked write by the same writer may have
	// landed (its error was a timeout, not a failure), so we accept any
	// value from the same writer with a HIGHER sequence too.
	auditor := newClient(t, c)
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged during the soak")
	}
	var missing, stale int
	for key, want := range acked {
		var got string
		deadline := time.Now().Add(10 * time.Second)
		for {
			val, _, err := auditor.ReadLatest(ctx, key)
			if err == nil {
				got = string(val)
				break
			}
			if time.Now().After(deadline) {
				missing++
				t.Errorf("acked key %s unreadable: %v", key, err)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if got == "" {
			continue
		}
		// Values are "w<writer>-i<seq>"; same writer, seq >= acked seq.
		var wWant, iWant, wGot, iGot int
		fmt.Sscanf(want, "w%d-i%d", &wWant, &iWant)
		fmt.Sscanf(got, "w%d-i%d", &wGot, &iGot)
		if wGot != wWant || iGot < iWant {
			stale++
			t.Errorf("key %s: acked %q but read %q", key, want, got)
		}
	}
	if missing > 0 || stale > 0 {
		t.Fatalf("durability audit failed: %d missing, %d stale of %d acked keys", missing, stale, len(acked))
	}
	t.Logf("audited %d acked keys across 3 kill/restart rounds", len(acked))
}
