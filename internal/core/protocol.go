// Package core assembles a complete Sedna server: the local memory store
// holding versioned rows, the quorum coordinator serving client reads and
// writes (§III-C, §III-F), the replica RPC surface, node membership and
// vnode recovery (§III-D), the trigger engine (§IV) and the persistency
// manager (Table I). One Server is one "real node" of the paper.
package core

import (
	"errors"

	"sedna/internal/kv"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// Data-plane opcodes (0x03xx; the coordination service owns 0x01xx/0x02xx).
const (
	// OpCoordWrite asks the receiving node to coordinate a quorum write.
	OpCoordWrite uint16 = 0x0301
	// OpCoordRead asks the receiving node to coordinate a quorum read.
	OpCoordRead uint16 = 0x0302
	// OpReplicaWrite applies one versioned value to the local replica.
	OpReplicaWrite uint16 = 0x0303
	// OpReplicaRead fetches the local replica's row.
	OpReplicaRead uint16 = 0x0304
	// OpReplicaRepair merges a row into the local replica.
	OpReplicaRepair uint16 = 0x0305
	// OpVNodeScan dumps the local rows of one virtual node (recovery).
	OpVNodeScan uint16 = 0x0306
	// OpRingGet returns the node's current ring snapshot (zero-hop
	// routing state for clients).
	OpRingGet uint16 = 0x0307
	// OpSubNew registers a push subscription; OpSubPoll long-polls its
	// event buffer; OpSubClose tears it down.
	OpSubNew   uint16 = 0x0308
	OpSubPoll  uint16 = 0x0309
	OpSubClose uint16 = 0x030a
	// OpServerStats returns the server's counters.
	OpServerStats uint16 = 0x030b
	// OpObsStats returns the node's full obs snapshot (JSON-encoded
	// counters, gauges and latency histograms) plus recent traces.
	OpObsStats uint16 = 0x030c
	// OpCoordWriteBatch coordinates one quorum write per carried key; the
	// response carries a per-key status vector.
	OpCoordWriteBatch uint16 = 0x030d
	// OpCoordReadBatch coordinates one quorum read per carried key; the
	// response carries a per-key status + row vector.
	OpCoordReadBatch uint16 = 0x030e
	// OpReplicaWriteBatch applies many versioned values to the local
	// replica in one frame (one frame per replica node per batch).
	OpReplicaWriteBatch uint16 = 0x030f
	// OpReplicaReadBatch fetches many local rows in one frame.
	OpReplicaReadBatch uint16 = 0x0310
	// OpMigrateStart arms one side of a vnode migration: the recipient is
	// told to accept rows for a vnode it does not own yet, the donor is
	// told to stream its rows out and dual-write incoming mutations.
	OpMigrateStart uint16 = 0x0311
	// OpMigrateRows carries one bounded batch of a migrating vnode's rows
	// from the donor to the recipient, which merges them idempotently.
	OpMigrateRows uint16 = 0x0312
	// OpMigrateStatus reports the donor-side streaming progress of one
	// vnode migration.
	OpMigrateStatus uint16 = 0x0313
	// OpMigrateFinish concludes a migration on either side: the donor runs
	// a final catch-up pass and drops the vnode, the recipient stops
	// special-casing it. An abort flag tears the state down instead.
	OpMigrateFinish uint16 = 0x0314
	// OpRebalanceJoin asks the receiving node to pull its fair share of
	// vnodes from the cluster via online migrations (elastic scale-out).
	OpRebalanceJoin uint16 = 0x0315
	// OpRebalanceDrain asks the receiving node to migrate every vnode it
	// holds to the other members (graceful scale-in).
	OpRebalanceDrain uint16 = 0x0316
	// OpRebalanceStatus reports the node's current or last rebalance
	// campaign as JSON.
	OpRebalanceStatus uint16 = 0x0317
)

// MaxBatchKeys bounds the keys one batch frame may carry; larger batches
// are split by the client and rejected by servers (StBadRequest), which
// keeps a malformed length prefix from allocating unbounded memory.
const MaxBatchKeys = 65536

// Response statuses.
const (
	StOK uint16 = iota
	// StOutdated is the paper's "outdated" write reply: the store holds
	// something newer (§III-F.1).
	StOutdated
	// StFailure is the paper's "failure" reply: the quorum could not be
	// reached and a recovery task was scheduled.
	StFailure
	// StNotFound reports a read of a key with no live value.
	StNotFound
	// StBadRequest reports a malformed request.
	StBadRequest
	// StNoSub reports an unknown subscription id.
	StNoSub
	// StNotOwner reports a replica operation sent to a node that no longer
	// (or does not yet) own the key's vnode. The error frame carries the
	// responder's current ring version after the detail string, so the
	// caller can retarget in one round trip instead of waiting for its
	// lease to expire.
	StNotOwner
	// StOverloaded reports that a pipeline stage on the responding node
	// shed the request before it ran (transport dispatch queue full, or a
	// coordinator refusing work). The node is healthy; callers retry with
	// backoff against the same ring view and never count it as a node
	// failure.
	StOverloaded
)

// Errors surfaced by the client-facing API.
var (
	// ErrOutdated corresponds to StOutdated.
	ErrOutdated = errors.New("sedna: write outdated")
	// ErrFailure corresponds to StFailure.
	ErrFailure = errors.New("sedna: quorum failure, recovery scheduled")
	// ErrNotFound corresponds to StNotFound.
	ErrNotFound = errors.New("sedna: not found")
	// ErrBadRequest corresponds to StBadRequest.
	ErrBadRequest = errors.New("sedna: bad request")
	// ErrNoSub corresponds to StNoSub.
	ErrNoSub = errors.New("sedna: unknown subscription")
	// ErrNotOwner corresponds to StNotOwner.
	ErrNotOwner = errors.New("sedna: not an owner of this vnode")
	// ErrOverloaded corresponds to StOverloaded: the serving node shed the
	// request under load. Retry with backoff; do not retarget or penalise
	// the node's breaker.
	ErrOverloaded = errors.New("sedna: server overloaded, retry with backoff")
)

// notOwnerError carries the rejecting node's ring version alongside
// ErrNotOwner so callers can tell whether their view is behind.
type notOwnerError struct{ epoch uint64 }

func (e *notOwnerError) Error() string { return ErrNotOwner.Error() }
func (e *notOwnerError) Unwrap() error { return ErrNotOwner }
func (e *notOwnerError) Epoch() uint64 { return e.epoch }

// NotOwnerWithEpoch builds an ErrNotOwner that carries the given ring
// version.
func NotOwnerWithEpoch(epoch uint64) error { return &notOwnerError{epoch: epoch} }

// NotOwnerEpoch extracts the ring version from an ErrNotOwner chain; ok is
// false when the error is not a NotOwner rejection.
func NotOwnerEpoch(err error) (epoch uint64, ok bool) {
	var noe *notOwnerError
	if errors.As(err, &noe) {
		return noe.epoch, true
	}
	if errors.Is(err, ErrNotOwner) {
		return 0, true
	}
	return 0, false
}

// StatusErr maps a wire status to an error (nil for StOK).
func StatusErr(st uint16, detail string) error {
	var base error
	switch st {
	case StOK:
		return nil
	case StOutdated:
		base = ErrOutdated
	case StFailure:
		base = ErrFailure
	case StNotFound:
		base = ErrNotFound
	case StBadRequest:
		base = ErrBadRequest
	case StNoSub:
		base = ErrNoSub
	case StNotOwner:
		base = ErrNotOwner
	case StOverloaded:
		base = ErrOverloaded
	default:
		base = errors.New("sedna: unknown status")
	}
	if detail == "" {
		return base
	}
	return errors.Join(base, errors.New(detail))
}

// ErrStatus maps an error to a wire status.
func ErrStatus(err error) (uint16, string) {
	switch {
	case err == nil:
		return StOK, ""
	case errors.Is(err, ErrOutdated):
		return StOutdated, ""
	case errors.Is(err, ErrNotFound):
		return StNotFound, ""
	case errors.Is(err, ErrBadRequest):
		return StBadRequest, err.Error()
	case errors.Is(err, ErrNoSub):
		return StNoSub, ""
	case errors.Is(err, ErrNotOwner):
		return StNotOwner, ""
	case errors.Is(err, ErrOverloaded), errors.Is(err, transport.ErrOverloaded):
		// Pushback from a downstream stage propagates as pushback, not as
		// a quorum failure: the client should back off, not fail over.
		return StOverloaded, ""
	default:
		return StFailure, err.Error()
	}
}

// EncodeVersioned appends a Versioned — including its causal dot and
// context, which replica-side apply consumes — to the buffer.
func EncodeVersioned(e *wire.Enc, v kv.Versioned) {
	e.Bytes(v.Value)
	e.I64(v.TS.Wall)
	e.U32(v.TS.Logical)
	e.U32(v.TS.Node)
	e.Str(v.Source)
	e.Bool(v.Deleted)
	e.U32(v.Dot.Node)
	e.U64(v.Dot.Counter)
	e.Bytes(kv.EncodeDVV(v.Ctx))
}

// DecodeVersioned reads a Versioned. The Value is copied out of the buffer,
// so the result outlives d.
func DecodeVersioned(d *wire.Dec) kv.Versioned {
	v := kv.Versioned{
		Value:   d.Bytes(),
		TS:      kv.Timestamp{Wall: d.I64(), Logical: d.U32(), Node: d.U32()},
		Source:  d.Str(),
		Deleted: d.Bool(),
	}
	v.Dot.Node = d.U32()
	v.Dot.Counter = d.U64()
	v.Ctx = decodeCtx(d)
	return v
}

// DecodeVersionedView reads a Versioned whose Value ALIASES d's buffer — the
// zero-copy variant for handlers that apply the value synchronously (the
// replica write path copies it exactly once, into the re-encoded row blob)
// before the transport recycles the frame. Use DecodeVersioned anywhere the
// value is retained past the handler's return (the coordinator path queues
// values in detached quorum writes and hints).
func DecodeVersionedView(d *wire.Dec) kv.Versioned {
	v := kv.Versioned{
		Value:   d.BytesView(),
		TS:      kv.Timestamp{Wall: d.I64(), Logical: d.U32(), Node: d.U32()},
		Source:  d.Str(),
		Deleted: d.Bool(),
	}
	v.Dot.Node = d.U32()
	v.Dot.Counter = d.U64()
	v.Ctx = decodeCtx(d)
	return v
}

// decodeCtx reads an encoded causal context; a malformed context poisons
// the decoder like any other framing error.
func decodeCtx(d *wire.Dec) kv.DVV {
	b := d.BytesView()
	if d.Err != nil || len(b) == 0 {
		return nil
	}
	c, err := kv.DecodeDVV(b)
	if err != nil && d.Err == nil {
		d.Err = err
	}
	return c
}
