package core_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/rebalance"
)

// TestElasticJoinDrainUnderLoad is the elasticity chaos proof: a 3-node
// cluster serves a continuous write workload while a fourth node joins
// passively, acquires its fair share of vnodes through a live migration
// campaign, and is then drained back out. The durability contract must hold
// throughout — every acknowledged write stays readable at (at least) its
// acked value — and after each cutover the ownership visible through the
// ring must match where the rows actually are.
func TestElasticJoinDrainUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	c := newCluster(t, bench.ClusterConfig{Nodes: 3, Seed: 99})
	ctx := context.Background()

	// Preload a data mass so the campaigns stream real rows rather than
	// cutting over empty vnodes.
	loader := newClient(t, c)
	for i := 0; i < 300; i++ {
		key := kv.Join("elastic", "pre", fmt.Sprintf("k%03d", i))
		if err := loader.WriteLatest(ctx, key, []byte(fmt.Sprintf("pre-%03d", i))); err != nil {
			t.Fatalf("preload %s: %v", key, err)
		}
	}

	var mu sync.Mutex
	acked := map[kv.Key]string{}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		cl := newClient(t, c)
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				key := kv.Join("elastic", "t", fmt.Sprintf("w%d-k%03d", w, i%120))
				val := fmt.Sprintf("w%d-i%06d", w, i)
				wctx, cancel := context.WithTimeout(ctx, 3*time.Second)
				err := cl.WriteLatest(wctx, key, []byte(val))
				cancel()
				if err == nil {
					mu.Lock()
					acked[key] = val
					mu.Unlock()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	clusterCounters := func() obs.Snapshot {
		var out obs.Snapshot
		for _, s := range c.Servers {
			if s != nil {
				out = out.Merge(s.ObsReport().Snapshot)
			}
		}
		return out
	}
	runCampaign := func(kind string, start func() error, srv *core.Server) rebalance.Campaign {
		t.Helper()
		if err := start(); err != nil {
			t.Fatalf("start %s: %v", kind, err)
		}
		var camp rebalance.Campaign
		waitUntil(t, 120*time.Second, kind+" campaign", func() bool {
			cur, ok := srv.Rebalancer().Status()
			if !ok || cur.State == rebalance.CampaignRunning {
				return false
			}
			camp = cur
			return true
		})
		if camp.State != rebalance.CampaignDone {
			t.Fatalf("%s campaign ended %s (error %q)", kind, camp.State, camp.Error)
		}
		if camp.Failed > 0 {
			t.Fatalf("%s campaign: %d failed moves", kind, camp.Failed)
		}
		return camp
	}

	// Join: boot a passive fourth node and stream it a fair share.
	_, joiner, err := c.AddPassiveNode()
	if err != nil {
		t.Fatalf("add passive node: %v", err)
	}
	before := clusterCounters()
	camp := runCampaign("join", joiner.Rebalancer().StartJoin, joiner)
	delta := clusterCounters().Delta(before)
	if got := delta.Counter("rebalance.rows_streamed"); got == 0 {
		t.Fatal("join streamed zero rows despite the preloaded data mass")
	}
	if got := delta.Counter("rebalance.cutovers"); got != uint64(camp.Completed) {
		t.Fatalf("rebalance.cutovers = %d, want one per completed move (%d)", got, camp.Completed)
	}
	t.Logf("join: %d moves, %d rows streamed, %d dual writes",
		camp.Completed, delta.Counter("rebalance.rows_streamed"), delta.Counter("rebalance.dual_writes"))

	// After the join every node's ring must list 4 members, and the joiner
	// must hold roughly a quarter of all slots — the planner targets the
	// fair share, minus moves skipped because ownership shifted mid-plan.
	if err := c.WaitConverged(4, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	snap := joiner.Ring()
	totalSlots := snap.NumVNodes() * snap.ReplicaFactor()
	fair := totalSlots / 4
	if got := len(snap.VNodesOf(joiner.Node())); got < fair/2 {
		t.Fatalf("joiner holds %d slots after join, want at least half the fair share (%d)", got, fair)
	}

	// Drain: stream everything back off and verify the node ends empty.
	before = clusterCounters()
	camp = runCampaign("drain", joiner.Rebalancer().StartDrain, joiner)
	delta = clusterCounters().Delta(before)
	t.Logf("drain: %d moves, %d rows streamed", camp.Completed, delta.Counter("rebalance.rows_streamed"))
	if err := c.WaitConverged(3, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(joiner.Ring().VNodesOf(joiner.Node())); got != 0 {
		t.Fatalf("drained node still holds %d slots", got)
	}

	close(stop)
	writers.Wait()

	// Audit: every acknowledged key must read back at least as new as its
	// acked value (a later un-acked write by the same writer may have
	// landed — its error was a timeout, not a failure).
	auditor := newClient(t, c)
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged during the campaigns")
	}
	var missing, stale int
	for key, want := range acked {
		var got string
		deadline := time.Now().Add(10 * time.Second)
		for {
			val, _, err := auditor.ReadLatest(ctx, key)
			if err == nil {
				got = string(val)
				break
			}
			if time.Now().After(deadline) {
				missing++
				t.Errorf("acked key %s unreadable: %v", key, err)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if got == "" {
			continue
		}
		var wWant, iWant, wGot, iGot int
		fmt.Sscanf(want, "w%d-i%d", &wWant, &iWant)
		fmt.Sscanf(got, "w%d-i%d", &wGot, &iGot)
		if wGot != wWant || iGot < iWant {
			stale++
			t.Errorf("key %s: acked %q but read %q", key, want, got)
		}
	}
	if missing > 0 || stale > 0 {
		t.Fatalf("durability audit failed: %d missing, %d stale of %d acked keys", missing, stale, len(acked))
	}
	t.Logf("audited %d acked keys across join+drain", len(acked))
}
