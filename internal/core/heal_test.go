package core_test

// The deterministic chaos campaign for the failure-healing pipeline: a
// replica dark behind a partition converges again from hint replay alone, a
// kill/restart cycle converges every replica with zero reads issued, and the
// per-node breakers keep client write latency below the replica timeout
// while a node is down.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/ring"
	"sedna/internal/transport"
)

// waitUntil polls cond until it holds, failing the test at the deadline.
// Deadlines are generous: under -race with every package testing in
// parallel, background loops can be starved for tens of seconds.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// healClient builds a client tuned for failure tests: short call timeout so
// dark coordinators are abandoned quickly, and a long breaker cooldown so an
// opened breaker stays open for the rest of the test.
func healClient(t *testing.T, c *bench.Cluster, name string) (*client.Client, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cl, err := client.New(client.Config{
		Servers:      c.NodeAddrs,
		Caller:       c.Net.Endpoint(name),
		Source:       name,
		CallTimeout:  250 * time.Millisecond,
		RetryBackoff: 2 * time.Millisecond,
		Breaker:      transport.BreakerConfig{OpenFor: time.Minute},
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, reg
}

func totalReads(c *bench.Cluster) uint64 {
	var n uint64
	for _, s := range c.Servers {
		if s != nil {
			st := s.Stats()
			n += st.CoordReads + st.ReplicaReads
		}
	}
	return n
}

func serverFor(c *bench.Cluster, n ring.NodeID) *core.Server {
	for i, addr := range c.NodeAddrs {
		if addr == string(n) {
			return c.Servers[i]
		}
	}
	return nil
}

// TestHealPartitionedReplicaConvergesWithoutReads: one replica goes dark
// behind a partition (its coordination session stays alive, so there is no
// eviction and no vnode recovery). W=2 writes succeed without it; once the
// partition heals, hint replay alone must deliver every missed write — the
// campaign asserts convergence with zero client or replica reads issued.
func TestHealPartitionedReplicaConvergesWithoutReads(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{
		Nodes:          3,
		Seed:           91,
		SessionTimeout: 5 * time.Second,
	})
	cl, _ := healClient(t, c, "heal-cli-1")
	ctx := context.Background()

	// Warm the ring lease while everyone is reachable.
	if err := cl.WriteLatest(ctx, kv.Join("healp", "t", "warm"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	readsBefore := totalReads(c)

	c.PartitionNode(2)
	dark := ring.NodeID(c.NodeAddrs[2])

	keys := map[kv.Key]string{}
	for i := 0; i < 20; i++ {
		key := kv.Join("healp", "t", fmt.Sprintf("k%02d", i))
		val := fmt.Sprintf("v%02d", i)
		wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := cl.WriteLatest(wctx, key, []byte(val))
		cancel()
		if err != nil {
			t.Fatalf("write %s during partition: %v", key, err)
		}
		keys[key] = val
	}

	// With 3 nodes and N=3 the dark node replicates every key, so each write
	// must have left a hint on its coordinator (hints appear once the replica
	// call times out, hence the poll).
	waitUntil(t, 30*time.Second, "hints queued for the dark node", func() bool {
		return c.Servers[0].Healer().PendingFor(dark)+c.Servers[1].Healer().PendingFor(dark) > 0
	})

	c.HealNode(2)

	// LocalRow audits the replica's store directly without touching any read
	// counter, so convergence here is attributable to replay alone.
	waitUntil(t, 90*time.Second, "dark replica to converge from hint replay", func() bool {
		for key, want := range keys {
			row, ok := c.Servers[2].LocalRow(key)
			if !ok {
				return false
			}
			if v, ok := row.Latest(); !ok || string(v.Value) != want {
				return false
			}
		}
		return true
	})
	waitUntil(t, 30*time.Second, "hint queues to drain", func() bool {
		return c.Servers[0].Healer().Pending()+c.Servers[1].Healer().Pending() == 0
	})

	if got := totalReads(c); got != readsBefore {
		t.Fatalf("healing issued reads: %d before, %d after", readsBefore, got)
	}
}

// TestHealBreakerCapsOutageWriteLatency: while one node is dark, writes keep
// succeeding through the other replicas, and once the per-node breakers open
// the dark node costs a fast-fail instead of a timeout — p99 client write
// latency during the outage must stay below the 500ms replica timeout.
func TestHealBreakerCapsOutageWriteLatency(t *testing.T) {
	c := newCluster(t, bench.ClusterConfig{
		Nodes:          3,
		Seed:           92,
		SessionTimeout: time.Minute, // the outage must not become an eviction
		Breaker:        transport.BreakerConfig{OpenFor: time.Minute},
	})
	cl, reg := healClient(t, c, "heal-cli-2")
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		if err := cl.WriteLatest(ctx, kv.Join("healb", "t", fmt.Sprintf("warm%d", i)), []byte("w")); err != nil {
			t.Fatal(err)
		}
	}

	c.PartitionNode(2)
	dark := c.NodeAddrs[2]

	// Outage onset: keep writing until the live coordinators' breakers for
	// the dark node — and the client's own — have all opened. These writes
	// eat the expensive timeouts so the measured phase below sees only the
	// steady state the breakers exist to provide.
	i := 0
	waitUntil(t, 60*time.Second, "breakers toward the dark node to open", func() bool {
		i++
		wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_ = cl.WriteLatest(wctx, kv.Join("healb", "t", fmt.Sprintf("trip%03d", i)), []byte("x"))
		cancel()
		return c.Servers[0].Health().State(dark) == transport.BreakerOpen &&
			c.Servers[1].Health().State(dark) == transport.BreakerOpen &&
			cl.Health().State(dark) == transport.BreakerOpen
	})

	before := reg.Histogram("client.write").Snapshot()
	for i := 0; i < 50; i++ {
		key := kv.Join("healb", "t", fmt.Sprintf("m%03d", i))
		if err := cl.WriteLatest(ctx, key, []byte("v")); err != nil {
			t.Fatalf("measured write %d: %v", i, err)
		}
	}
	delta := reg.Histogram("client.write").Snapshot().Delta(before)
	if p99 := time.Duration(delta.P99()); p99 >= 500*time.Millisecond {
		t.Fatalf("p99 write latency during one-node outage = %v, want < 500ms", p99)
	}
}

// TestHealKillRestartConvergesWithoutReads: a node dies for real (evicted),
// writes continue against the shrunken ring, the node restarts empty and
// rejoins. Vnode recovery, the anti-entropy sweep and hint replay together
// must converge every replica of every key — again with zero reads issued.
func TestHealKillRestartConvergesWithoutReads(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	c := newCluster(t, bench.ClusterConfig{
		Nodes:          4,
		Seed:           93,
		SessionTimeout: 300 * time.Millisecond,
	})
	cl, _ := healClient(t, c, "heal-cli-3")
	ctx := context.Background()

	keys := map[kv.Key]string{}
	write := func(name, val string) {
		t.Helper()
		key := kv.Join("healr", "t", name)
		wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := cl.WriteLatest(wctx, key, []byte(val)); err != nil {
			t.Fatalf("write %s: %v", key, err)
		}
		keys[key] = val
	}
	for i := 0; i < 25; i++ {
		write(fmt.Sprintf("pre%02d", i), fmt.Sprintf("p%02d", i))
	}

	readsBefore := map[string]uint64{}
	for i, s := range c.Servers {
		st := s.Stats()
		readsBefore[c.NodeAddrs[i]] = st.CoordReads + st.ReplicaReads
	}

	c.KillNode(3)
	waitUntil(t, 60*time.Second, "survivors to evict the dead node", func() bool {
		for i := 0; i < 3; i++ {
			r := c.Servers[i].Ring()
			if r == nil || len(r.Nodes()) != 3 {
				return false
			}
		}
		return true
	})
	for i := 0; i < 25; i++ {
		write(fmt.Sprintf("post%02d", i), fmt.Sprintf("q%02d", i))
	}

	if _, err := c.RestartNode(3); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(4, 90*time.Second); err != nil {
		t.Fatal(err)
	}

	waitUntil(t, 120*time.Second, "every replica of every key to converge", func() bool {
		r := c.Servers[0].Ring()
		if r == nil {
			return false
		}
		for key, want := range keys {
			for _, owner := range r.OwnersForKey(key) {
				s := serverFor(c, owner)
				if s == nil {
					return false
				}
				row, ok := s.LocalRow(key)
				if !ok {
					return false
				}
				if v, ok := row.Latest(); !ok || string(v.Value) != want {
					return false
				}
			}
		}
		return true
	})

	for i, s := range c.Servers {
		base := readsBefore[c.NodeAddrs[i]]
		if i == 3 {
			base = 0 // restarted with fresh counters
		}
		st := s.Stats()
		if got := st.CoordReads + st.ReplicaReads; got != base {
			t.Fatalf("node %d issued reads while healing (%d -> %d)", i, base, got)
		}
	}
}
