package opshttp_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/core"
	"sedna/internal/obs"
	"sedna/internal/opshttp"
	"sedna/internal/persist"
	"sedna/internal/ring"
	"sedna/internal/vfs"
	"sedna/internal/wal"
	"sedna/internal/workload"
)

// TestTopzRanksTrueHottestKey is the ISSUE's fidelity acceptance check: a
// zipf(1.1) write stream against a 3-node cluster with dataset tenant
// attribution, then /topz on a data node must rank the stream's true hottest
// key first and attribute the stream to its dataset tenant.
func TestTopzRanksTrueHottestKey(t *testing.T) {
	cl, err := bench.NewCluster(bench.ClusterConfig{Nodes: 3, TenantRule: "dataset"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}

	gen := workload.NewGenerator(workload.Spec{
		Keys:    256,
		Dist:    workload.Zipf,
		Seed:    7,
		Dataset: "hot",
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 2000; i++ {
		if err := cli.WriteLatest(ctx, gen.NextKey(), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	ops, err := opshttp.Start(cl.Servers[0].OpsConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()

	var topz struct {
		Node    string               `json:"node"`
		TopKeys []obs.TopKEntry      `json:"top_keys"`
		Tenants []obs.TenantSnapshot `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, "http://"+ops.Addr()+"/topz", 200)), &topz); err != nil {
		t.Fatalf("topz JSON: %v", err)
	}
	if len(topz.TopKeys) == 0 {
		t.Fatal("/topz has no hot keys after 2000 writes")
	}
	hot := ring.Hash64(gen.HottestKey())
	if topz.TopKeys[0].Hash != hot {
		t.Fatalf("/topz top entry hash %016x, want true hottest %016x (top: %+v)",
			topz.TopKeys[0].Hash, hot, topz.TopKeys[:min(3, len(topz.TopKeys))])
	}
	if topz.TopKeys[0].Writes == 0 || topz.TopKeys[0].Count == 0 {
		t.Fatalf("hot entry carries no write attribution: %+v", topz.TopKeys[0])
	}
	var tenant *obs.TenantSnapshot
	for i := range topz.Tenants {
		if topz.Tenants[i].Tenant == "hot" {
			tenant = &topz.Tenants[i]
		}
	}
	if tenant == nil || tenant.Writes == 0 {
		t.Fatalf("dataset tenant not attributed: %+v", topz.Tenants)
	}
}

// TestHealthzDegradedReasonsOnStickyFsync injects a sticky fsync fault into a
// durable node's filesystem and asserts the anomaly watchdog surfaces the
// persistence degradation on /healthz degraded_reasons — the ISSUE's watchdog
// acceptance check.
func TestHealthzDegradedReasonsOnStickyFsync(t *testing.T) {
	fsys := vfs.NewFault()
	cl, err := bench.NewCluster(bench.ClusterConfig{
		Nodes: 1,
		Persist: persist.Config{
			Dir:      "/data",
			Strategy: persist.WriteAhead,
			WALSync:  wal.SyncAlways,
			FS:       fsys,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	cli, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cli.WriteLatest(ctx, "ds/tb/pre-fault", []byte("v")); err != nil {
		t.Fatal(err)
	}

	ops, err := opshttp.Start(cl.Servers[0].OpsConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	base := "http://" + ops.Addr()

	var h opshttp.HealthStatus
	if err := json.Unmarshal([]byte(mustGet(t, base+"/healthz", 200)), &h); err != nil {
		t.Fatal(err)
	}
	for _, r := range h.DegradedReasons {
		if r == "wal_durability_degraded" {
			t.Fatalf("durability degraded before any fault: %v", h.DegradedReasons)
		}
	}

	// Sticky fsync failure: the next durable write latches the persistence
	// manager degraded. The client call itself may still ack — its retry is
	// deduplicated against the memstore row applied before the WAL refusal —
	// which is exactly why health must come from the watchdog, not write
	// errors.
	fsys.FailFsync(fmt.Errorf("medium error"))
	_ = cli.WriteLatest(ctx, "ds/tb/post-fault", []byte("v"))
	cl.Servers[0].Watchdog().Tick()

	// The degraded node now answers 503 (load balancers drain it) and names
	// the reason.
	if err := json.Unmarshal([]byte(mustGet(t, base+"/healthz", 503)), &h); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range h.DegradedReasons {
		if r == "wal_durability_degraded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded_reasons %v missing wal_durability_degraded", h.DegradedReasons)
	}
}
