// Package opshttp is Sedna's ops plane: a zero-dependency net/http server
// embedded in sedna-server and sedna-coord (off by default, enabled with
// --ops-addr) exposing the node's observability surfaces to standard
// tooling. Endpoints:
//
//	/metrics      Prometheus text exposition of the obs snapshot, with
//	              summary quantiles for latency histograms and per-vnode
//	              load / per-node imbalance gauges
//	/healthz      liveness plus breaker and lease state (503 when not ok)
//	/ring         the node's current assignment view as JSON
//	/imbalance    the imbalance table (§III-B) as JSON
//	/traces       recently sampled traces, stitched by trace ID;
//	              ?slow=1 selects the slow-op event log instead, newest
//	              first, trimmed by ?limit=N
//	/statsz       the full obs.Report (same shape as the OpObsStats RPC)
//	/topz         hot-key top-K ranking, per-tenant attribution table and
//	              recent watchdog anomalies (?limit=N trims the key list)
//	/flightz      the always-on flight recorder's wide events, newest
//	              first (?limit=N)
//	/debug/pprof  the standard Go profiler surface
//
// The package depends only on obs and ring, so every process that has a
// Registry can mount an ops plane; core and coord provide OpsConfig helpers
// with their wiring.
package opshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"sedna/internal/obs"
	"sedna/internal/ring"
)

// HealthStatus is the /healthz payload. OK false turns the endpoint into a
// 503 so load balancers and the CI smoke test need no JSON parsing.
type HealthStatus struct {
	Node string `json:"node"`
	OK   bool   `json:"ok"`
	// Breakers maps peer address to breaker state for every peer whose
	// breaker is not closed (an empty map means all peers look healthy).
	Breakers map[string]string `json:"breakers,omitempty"`
	// HintsPending and HintsDropped report the failure healer's queues.
	HintsPending int    `json:"hints_pending,omitempty"`
	HintsDropped uint64 `json:"hints_dropped,omitempty"`
	// Leader, IsLeader and Zxid report coordination-ensemble lease state
	// (coord servers only).
	Leader   string `json:"leader,omitempty"`
	IsLeader bool   `json:"is_leader,omitempty"`
	Zxid     uint64 `json:"zxid,omitempty"`
	// SlowOps is the lifetime count of force-retained slow operations.
	SlowOps uint64 `json:"slow_ops,omitempty"`
	// Durability is "degraded" when the node's WAL hit a sticky fsync
	// failure and durable writes are no longer acknowledged (data nodes
	// with persistence only). A degraded node also reports OK false.
	Durability string `json:"durability,omitempty"`
	// DegradedReasons lists the anomaly-watchdog rules currently firing
	// (breaker flap, fsync-wait inflation, quorum retry surge, vnode
	// imbalance, degradation probes). Informational: reasons do not force
	// OK false by themselves.
	DegradedReasons []string `json:"degraded_reasons,omitempty"`
}

// Config wires one ops-plane server. Every callback is optional: a missing
// one turns its endpoint into an empty-but-valid response, so the same
// server mounts on data nodes, coord members and test harnesses alike.
type Config struct {
	// Addr is the listen address; ":0" picks a free port (tests).
	Addr string
	// Node names the process in /metrics and /healthz.
	Node string
	// Report returns the full stats surface (snapshot, traces, slow ops).
	Report func() obs.Report
	// Health returns the /healthz payload.
	Health func() HealthStatus
	// Ring returns the current assignment view (nil when not joined yet).
	Ring func() *ring.Ring
	// Imbalance returns the imbalance table rows.
	Imbalance func() []ring.NodeImbalance
	// VNodeLoads returns the per-vnode load counters.
	VNodeLoads func() []ring.VNodeLoad
	// Flight returns up to limit flight-recorder wide events, newest first
	// (nil falls back to the Report's capped window).
	Flight func(limit int) []obs.WideEvent
	// Logf receives diagnostics; nil disables.
	Logf func(format string, args ...any)
}

// Server is a running ops plane.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// Start listens on cfg.Addr and serves the ops endpoints in the background.
func Start(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("opshttp: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/ring", s.handleRing)
	mux.HandleFunc("/imbalance", s.handleImbalance)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/topz", s.handleTopz)
	mux.HandleFunc("/flightz", s.handleFlightz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed && cfg.Logf != nil {
			cfg.Logf("opshttp: serve: %v", err)
		}
	}()
	if cfg.Logf != nil {
		cfg.Logf("opshttp: serving on %s", ln.Addr())
	}
	return s, nil
}

// Addr returns the bound listen address (resolves ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) report() obs.Report {
	if s.cfg.Report == nil {
		return obs.Report{Node: s.cfg.Node}
	}
	return s.cfg.Report()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := HealthStatus{Node: s.cfg.Node, OK: true}
	if s.cfg.Health != nil {
		h = s.cfg.Health()
	}
	status := http.StatusOK
	if !h.OK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.report())
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	rep := s.report()
	if r.URL.Query().Get("slow") != "" {
		// The report's slow-op log is oldest-first; an operator debugging an
		// incident wants the most recent events, so serve newest-first and
		// honor ?limit=N (DESIGN.md §8).
		slow := make([]obs.SlowOp, 0, len(rep.SlowOps))
		for i := len(rep.SlowOps) - 1; i >= 0; i-- {
			slow = append(slow, rep.SlowOps[i])
		}
		if limit := queryLimit(r); limit > 0 && len(slow) > limit {
			slow = slow[:limit]
		}
		writeJSON(w, http.StatusOK, slow)
		return
	}
	stitched := obs.StitchTraces(rep.Traces)
	if stitched == nil {
		stitched = []obs.StitchedTrace{}
	}
	writeJSON(w, http.StatusOK, stitched)
}

// queryLimit parses ?limit=N (0 when absent or malformed).
func queryLimit(r *http.Request) int {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// topzView is the /topz JSON shape: the node's hot-key ranking, per-tenant
// attribution table and recent watchdog anomalies in one screenful.
type topzView struct {
	Node      string               `json:"node"`
	TopKeys   []obs.TopKEntry      `json:"top_keys"`
	Tenants   []obs.TenantSnapshot `json:"tenants"`
	Anomalies []obs.Anomaly        `json:"anomalies"`
}

func (s *Server) handleTopz(w http.ResponseWriter, r *http.Request) {
	rep := s.report()
	v := topzView{
		Node:      rep.Node,
		TopKeys:   rep.TopKeys,
		Tenants:   rep.Tenants,
		Anomalies: rep.Anomalies,
	}
	if limit := queryLimit(r); limit > 0 && len(v.TopKeys) > limit {
		v.TopKeys = v.TopKeys[:limit]
	}
	if v.TopKeys == nil {
		v.TopKeys = []obs.TopKEntry{}
	}
	if v.Tenants == nil {
		v.Tenants = []obs.TenantSnapshot{}
	}
	if v.Anomalies == nil {
		v.Anomalies = []obs.Anomaly{}
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleFlightz(w http.ResponseWriter, r *http.Request) {
	limit := queryLimit(r)
	var evs []obs.WideEvent
	if s.cfg.Flight != nil {
		evs = s.cfg.Flight(limit)
	} else {
		evs = s.report().Flight
		if limit > 0 && len(evs) > limit {
			evs = evs[:limit]
		}
	}
	if evs == nil {
		evs = []obs.WideEvent{}
	}
	writeJSON(w, http.StatusOK, evs)
}

// ringView is the /ring JSON shape: one row per vnode with its owner list.
type ringView struct {
	Version uint64     `json:"version"`
	Nodes   []string   `json:"nodes"`
	VNodes  [][]string `json:"vnodes"`
}

func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	var rg *ring.Ring
	if s.cfg.Ring != nil {
		rg = s.cfg.Ring()
	}
	if rg == nil {
		writeJSON(w, http.StatusOK, ringView{Nodes: []string{}, VNodes: [][]string{}})
		return
	}
	view := ringView{Version: rg.Version()}
	for _, n := range rg.Nodes() {
		view.Nodes = append(view.Nodes, string(n))
	}
	for v := 0; v < rg.NumVNodes(); v++ {
		owners := rg.Owners(ring.VNodeID(v))
		row := make([]string, len(owners))
		for i, o := range owners {
			row[i] = string(o)
		}
		view.VNodes = append(view.VNodes, row)
	}
	writeJSON(w, http.StatusOK, view)
}

// imbalanceRow is the /imbalance JSON shape (stable lowercase field names).
type imbalanceRow struct {
	Node   string  `json:"node"`
	Load   float64 `json:"load"`
	Share  float64 `json:"share"`
	Ratio  float64 `json:"ratio"`
	VNodes int     `json:"vnodes"`
}

func (s *Server) handleImbalance(w http.ResponseWriter, r *http.Request) {
	rows := []imbalanceRow{}
	if s.cfg.Imbalance != nil {
		for _, e := range s.cfg.Imbalance() {
			rows = append(rows, imbalanceRow{
				Node: string(e.Node), Load: e.Load, Share: e.Share,
				Ratio: e.Ratio, VNodes: e.VNodes,
			})
		}
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.report()
	var loads []ring.VNodeLoad
	if s.cfg.VNodeLoads != nil {
		loads = s.cfg.VNodeLoads()
	}
	var imb []ring.NodeImbalance
	if s.cfg.Imbalance != nil {
		imb = s.cfg.Imbalance()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	WriteMetrics(&b, rep.Snapshot, loads, imb)
	w.Write([]byte(b.String()))
}

// sanitizeMetric maps an obs metric name onto the Prometheus name charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*) and prefixes the sedna namespace.
func sanitizeMetric(name string) string {
	var b strings.Builder
	b.WriteString("sedna_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeHeader emits the # HELP / # TYPE comment pair for one metric.
func writeHeader(b *strings.Builder, m, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", m, help, m, typ)
}

// WriteMetrics renders one obs snapshot (plus optional per-vnode loads and
// imbalance rows) in the Prometheus text exposition format: counters and
// gauges verbatim, histograms as summaries with 0.5/0.9/0.99 quantiles in
// seconds. Every series carries # HELP and # TYPE comments so strict
// scrapers and promtool lint accept the page. Exposed for tests and the CLI.
func WriteMetrics(b *strings.Builder, snap obs.Snapshot, loads []ring.VNodeLoad, imb []ring.NodeImbalance) {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := sanitizeMetric(n)
		writeHeader(b, m, "counter", "Sedna counter "+n+".")
		fmt.Fprintf(b, "%s %d\n", m, snap.Counters[n])
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := sanitizeMetric(n)
		writeHeader(b, m, "gauge", "Sedna gauge "+n+".")
		fmt.Fprintf(b, "%s %d\n", m, snap.Gauges[n])
	}

	names = names[:0]
	for n := range snap.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Hists[n]
		if h.Count == 0 {
			continue
		}
		m := sanitizeMetric(n)
		writeHeader(b, m, "summary", "Sedna latency summary "+n+" in seconds.")
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(b, "%s{quantile=%q} %g\n", m, fmt.Sprint(q), float64(h.Quantile(q))/1e9)
		}
		fmt.Fprintf(b, "%s_sum %g\n", m, float64(h.Sum)/1e9)
		fmt.Fprintf(b, "%s_count %d\n", m, h.Count)
	}

	wroteVNode := false
	for _, l := range loads {
		if l.Reads == 0 && l.Writes == 0 && l.Items == 0 && l.Bytes == 0 {
			continue // keep the exposition compact on mostly idle rings
		}
		if !wroteVNode {
			writeHeader(b, "sedna_vnode_reads", "gauge", "Reads served per virtual node.")
			writeHeader(b, "sedna_vnode_writes", "gauge", "Writes applied per virtual node.")
			writeHeader(b, "sedna_vnode_items", "gauge", "Items stored per virtual node.")
			writeHeader(b, "sedna_vnode_bytes", "gauge", "Bytes stored per virtual node.")
			wroteVNode = true
		}
		fmt.Fprintf(b, "sedna_vnode_reads{vnode=\"%d\"} %d\n", l.VNode, l.Reads)
		fmt.Fprintf(b, "sedna_vnode_writes{vnode=\"%d\"} %d\n", l.VNode, l.Writes)
		fmt.Fprintf(b, "sedna_vnode_items{vnode=\"%d\"} %d\n", l.VNode, l.Items)
		fmt.Fprintf(b, "sedna_vnode_bytes{vnode=\"%d\"} %d\n", l.VNode, l.Bytes)
	}

	if len(imb) > 0 {
		writeHeader(b, "sedna_node_load", "gauge", "Weighted load per node.")
		writeHeader(b, "sedna_node_share", "gauge", "Fraction of cluster load per node.")
		writeHeader(b, "sedna_node_imbalance_ratio", "gauge", "Node load relative to the cluster mean.")
		writeHeader(b, "sedna_node_primary_vnodes", "gauge", "Primary vnodes owned per node.")
		for _, e := range imb {
			fmt.Fprintf(b, "sedna_node_load{node=%q} %g\n", string(e.Node), e.Load)
			fmt.Fprintf(b, "sedna_node_share{node=%q} %g\n", string(e.Node), e.Share)
			fmt.Fprintf(b, "sedna_node_imbalance_ratio{node=%q} %g\n", string(e.Node), e.Ratio)
			fmt.Fprintf(b, "sedna_node_primary_vnodes{node=%q} %d\n", string(e.Node), e.VNodes)
		}
	}
}
