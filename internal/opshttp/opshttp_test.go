package opshttp_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/opshttp"
)

// --- minimal Prometheus text-format checker -------------------------------

var (
	promTypeRe = regexp.MustCompile(
		`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promSampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)` + // metric name
			`(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?` + // labels
			` (\S+)$`) // value
)

// checkPromExposition validates an exposition against a minimal reading of
// the Prometheus text format: every sample line must parse, its value must
// be a float, and its metric (or its summary's _sum/_count companion) must
// have been announced by a preceding # TYPE line.
func checkPromExposition(t *testing.T, text string) {
	t.Helper()
	if strings.TrimSpace(text) == "" {
		t.Fatal("empty metrics exposition")
	}
	typed := map[string]bool{}
	samples := 0
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			typed[m[1]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("metrics line %d unparseable: %q", i+1, line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("metrics line %d: bad value %q: %v", i+1, m[3], err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(m[1], "_count"), "_sum")
		if !typed[m[1]] && !typed[base] {
			t.Fatalf("metrics line %d: sample %q has no preceding # TYPE", i+1, m[1])
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("metrics exposition contains no samples")
	}
}

func mustGet(t *testing.T, url string, want int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d (want %d), body %s", url, resp.StatusCode, want, b)
	}
	if len(strings.TrimSpace(string(b))) == 0 {
		t.Fatalf("GET %s: empty body", url)
	}
	return string(b)
}

// --- unit coverage of the renderer and health mapping ---------------------

func TestWriteMetricsSanitizesNames(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("core.coord-write").Add(2)
	r.Gauge("mem.bytes").Set(7)
	h := r.Histogram("lat.op")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var b strings.Builder
	opshttp.WriteMetrics(&b, r.Snapshot(), nil, nil)
	out := b.String()
	checkPromExposition(t, out)
	for _, want := range []string{
		"sedna_core_coord_write 2",
		"sedna_mem_bytes 7",
		`sedna_lat_op{quantile="0.5"}`,
		"sedna_lat_op_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHealthzMapsNotOKTo503(t *testing.T) {
	s, err := opshttp.Start(opshttp.Config{
		Addr:   "127.0.0.1:0",
		Health: func() opshttp.HealthStatus { return opshttp.HealthStatus{Node: "sick", OK: false} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	body := mustGet(t, "http://"+s.Addr()+"/healthz", http.StatusServiceUnavailable)
	var h opshttp.HealthStatus
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if h.Node != "sick" || h.OK {
		t.Fatalf("healthz = %+v", h)
	}
}

// --- end-to-end over the simulated network --------------------------------

// TestOpsPlaneEndToEnd boots a 3-node cluster, performs one fully sampled
// client write, and asserts the ISSUE's acceptance criteria: the write
// yields exactly one causally-stitched distributed trace with spans from the
// client, the coordinator's quorum engine and at least two replica servers;
// the ops-plane endpoints answer with valid payloads; and the slow-op log
// force-retained the op.
func TestOpsPlaneEndToEnd(t *testing.T) {
	cl, err := bench.NewCluster(bench.ClusterConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	cli, reg, err := cl.ClientWithObs()
	if err != nil {
		t.Fatal(err)
	}
	reg.SetNode("client-0")
	reg.SetTraceSampling(1)                 // trace every op
	reg.SetSlowOpThreshold(time.Nanosecond) // every op is "slow": exercises the event log

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cli.WriteLatest(ctx, kv.Key("ds/tb/trace-key"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// The write returns after W=2 acks, so the straggler replica span can
	// land after the call: poll the cluster-wide span set until the stitched
	// trace is complete.
	var stitched obs.StitchedTrace
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := append([]obs.TraceSnapshot(nil), reg.Traces()...)
		for _, srv := range cl.Servers {
			spans = append(spans, srv.ObsReport().Traces...)
		}
		var found bool
		for _, st := range obs.StitchTraces(spans) {
			if st.Op == "client.write" && traceComplete(st) {
				stitched, found = st, true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no complete stitched trace; spans:\n%v", obs.StitchTraces(spans))
		}
		time.Sleep(25 * time.Millisecond)
	}
	if stitched.ID == 0 {
		t.Fatal("stitched trace has no ID")
	}
	if got := stitched.Nodes(); len(got) < 3 { // client + coordinator + ≥1 more replica
		t.Fatalf("trace spans only nodes %v", got)
	}

	// Ops plane on a data node.
	ops, err := opshttp.Start(cl.Servers[0].OpsConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	base := "http://" + ops.Addr()

	metrics := mustGet(t, base+"/metrics", http.StatusOK)
	checkPromExposition(t, metrics)
	if !strings.Contains(metrics, "sedna_") {
		t.Fatal("/metrics carries no sedna_ metrics")
	}
	// The elasticity counters register at server construction, so they are
	// scrapeable (at zero) before any campaign runs — dashboards and alerts
	// can reference them unconditionally.
	for _, name := range []string{
		"sedna_rebalance_rows_streamed",
		"sedna_rebalance_dual_writes",
		"sedna_rebalance_cutovers",
		"sedna_rebalance_aborts",
	} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}

	var h opshttp.HealthStatus
	if err := json.Unmarshal([]byte(mustGet(t, base+"/healthz", http.StatusOK)), &h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if h.Node != "sedna-0" || !h.OK {
		t.Fatalf("healthz = %+v", h)
	}

	var rv struct {
		Version uint64     `json:"version"`
		Nodes   []string   `json:"nodes"`
		VNodes  [][]string `json:"vnodes"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, base+"/ring", http.StatusOK)), &rv); err != nil {
		t.Fatalf("ring JSON: %v", err)
	}
	if len(rv.Nodes) != 3 || len(rv.VNodes) == 0 {
		t.Fatalf("ring view = %+v", rv)
	}

	var imb []map[string]any
	if err := json.Unmarshal([]byte(mustGet(t, base+"/imbalance", http.StatusOK)), &imb); err != nil {
		t.Fatalf("imbalance JSON: %v", err)
	}

	var stitchedRemote []obs.StitchedTrace
	if err := json.Unmarshal([]byte(mustGet(t, base+"/traces", http.StatusOK)), &stitchedRemote); err != nil {
		t.Fatalf("traces JSON: %v", err)
	}

	var rep obs.Report
	if err := json.Unmarshal([]byte(mustGet(t, base+"/statsz", http.StatusOK)), &rep); err != nil {
		t.Fatalf("statsz JSON: %v", err)
	}
	if rep.Node != "sedna-0" {
		t.Fatalf("statsz node = %q", rep.Node)
	}

	mustGet(t, base+"/debug/pprof/cmdline", http.StatusOK)

	// The generic Config mounts on any registry: serve the client's obs and
	// read its slow-op log (force-retained because of the 1ns threshold).
	cops, err := opshttp.Start(opshttp.Config{Addr: "127.0.0.1:0", Node: "client-0", Report: reg.Report})
	if err != nil {
		t.Fatal(err)
	}
	defer cops.Close()
	var slows []obs.SlowOp
	if err := json.Unmarshal([]byte(mustGet(t, "http://"+cops.Addr()+"/traces?slow=1", http.StatusOK)), &slows); err != nil {
		t.Fatalf("slow-op JSON: %v", err)
	}
	var slow *obs.SlowOp
	for i := range slows {
		if slows[i].Op == "client.write" {
			slow = &slows[i]
		}
	}
	if slow == nil {
		t.Fatalf("slow-op log missing the write: %+v", slows)
	}
	if slow.TraceID != stitched.ID {
		t.Fatalf("slow op trace id %x != stitched id %x", slow.TraceID, stitched.ID)
	}
	if slow.VNode < 0 || slow.KeyHash == 0 {
		t.Fatalf("slow op lost routing context: %+v", slow)
	}
}

// traceComplete reports whether a stitched trace shows the full causal path
// of one client write: an origin span that departed via client.send, a
// coordinator span that went through the quorum engine, and replica spans on
// at least two distinct nodes.
func traceComplete(st obs.StitchedTrace) bool {
	var origin, quorum bool
	replicas := map[string]bool{}
	for _, sp := range st.Spans {
		for _, stg := range sp.Stages {
			if sp.Parent == "" && stg.Name == "client.send" {
				origin = true
			}
			if strings.HasPrefix(stg.Name, "quorum.") {
				quorum = true
			}
		}
		if sp.Parent == "rpc.write_replica" && sp.Node != "" {
			replicas[sp.Node] = true
		}
	}
	return origin && quorum && len(replicas) >= 2
}
