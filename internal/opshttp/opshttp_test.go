package opshttp_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/opshttp"
)

// --- minimal Prometheus text-format checker -------------------------------

var (
	promTypeRe = regexp.MustCompile(
		`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promHelpRe = regexp.MustCompile(
		`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$`)
	promSampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)` + // metric name
			`(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?` + // labels
			` (\S+)$`) // value
)

// checkPromExposition validates an exposition against a minimal reading of
// the Prometheus text format: every sample line must parse with a name in the
// legal charset (unsanitized obs names with dots or dashes fail here), its
// value must be a float, and its metric (or its summary's _sum/_count
// companion) must have been announced by preceding # HELP and # TYPE lines.
func checkPromExposition(t *testing.T, text string) {
	t.Helper()
	if strings.TrimSpace(text) == "" {
		t.Fatal("empty metrics exposition")
	}
	typed := map[string]bool{}
	helped := map[string]bool{}
	samples := 0
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if m := promHelpRe.FindStringSubmatch(line); m != nil {
			helped[m[1]] = true
			continue
		}
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			if !helped[m[1]] {
				t.Fatalf("metrics line %d: # TYPE %s has no preceding # HELP", i+1, m[1])
			}
			typed[m[1]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("metrics line %d: malformed comment %q", i+1, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("metrics line %d unparseable: %q", i+1, line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("metrics line %d: bad value %q: %v", i+1, m[3], err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(m[1], "_count"), "_sum")
		if !typed[m[1]] && !typed[base] {
			t.Fatalf("metrics line %d: sample %q has no preceding # TYPE", i+1, m[1])
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("metrics exposition contains no samples")
	}
}

func mustGet(t *testing.T, url string, want int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d (want %d), body %s", url, resp.StatusCode, want, b)
	}
	if len(strings.TrimSpace(string(b))) == 0 {
		t.Fatalf("GET %s: empty body", url)
	}
	return string(b)
}

// --- unit coverage of the renderer and health mapping ---------------------

func TestWriteMetricsSanitizesNames(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("core.coord-write").Add(2)
	r.Gauge("mem.bytes").Set(7)
	h := r.Histogram("lat.op")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var b strings.Builder
	opshttp.WriteMetrics(&b, r.Snapshot(), nil, nil)
	out := b.String()
	checkPromExposition(t, out)
	for _, want := range []string{
		"# HELP sedna_core_coord_write ",
		"# TYPE sedna_core_coord_write counter",
		"sedna_core_coord_write 2",
		"# HELP sedna_mem_bytes ",
		"sedna_mem_bytes 7",
		"# HELP sedna_lat_op ",
		`sedna_lat_op{quantile="0.5"}`,
		"sedna_lat_op_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The raw obs names (dots, dashes) must never leak into sample lines —
	// only the free-form # HELP text may mention them.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, raw := range []string{"coord-write", "core.coord", "lat.op", "mem.bytes"} {
			if strings.Contains(line, raw) {
				t.Fatalf("sample line leaks unsanitized name %q: %q", raw, line)
			}
		}
	}
}

// TestCheckerRejectsUnsanitizedNames pins the checker itself: a sample or
// comment line carrying a raw obs metric name (dots, dashes, spaces) must not
// slip through as valid exposition.
func TestCheckerRejectsUnsanitizedNames(t *testing.T) {
	for _, line := range []string{
		"sedna_core.coord_write 2",
		"core-coord-write 1",
		"sedna core 3",
	} {
		if promSampleRe.MatchString(line) {
			t.Fatalf("sample regex accepts unsanitized line %q", line)
		}
	}
	if promTypeRe.MatchString("# TYPE sedna_core.coord counter") {
		t.Fatal("type regex accepts unsanitized name")
	}
	if promHelpRe.MatchString("# HELP sedna_core.coord help") {
		t.Fatal("help regex accepts unsanitized name")
	}
}

// --- introspection endpoints ----------------------------------------------

func TestTopzFlightzAndSlowTraces(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetNode("n0")
	for i := 0; i < 10; i++ {
		reg.RecordKey(uint64(100+i), int32(i), true, 8)
	}
	for i := 0; i < 5; i++ {
		reg.RecordKey(42, 1, false, 8) // hottest
	}
	reg.RecordTenantOp("ds", true, 8, time.Millisecond, false)
	reg.RecordAnomaly("breaker_flap", "test onset")
	for i := 0; i < 6; i++ {
		reg.RecordOp(obs.WideEvent{Op: "coord_write", DurNs: int64(i)})
		reg.RecordSlowOp(obs.SlowOp{Op: "coord_write", TraceID: uint64(i + 1), Wall: int64(i + 1), VNode: -1})
	}

	s, err := opshttp.Start(opshttp.Config{
		Addr: "127.0.0.1:0", Node: "n0",
		Report: reg.Report,
		Flight: reg.FlightEvents,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	var topz struct {
		Node      string               `json:"node"`
		TopKeys   []obs.TopKEntry      `json:"top_keys"`
		Tenants   []obs.TenantSnapshot `json:"tenants"`
		Anomalies []obs.Anomaly        `json:"anomalies"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, base+"/topz", http.StatusOK)), &topz); err != nil {
		t.Fatalf("topz JSON: %v", err)
	}
	if topz.Node != "n0" || len(topz.TopKeys) == 0 || topz.TopKeys[0].Hash != 42 {
		t.Fatalf("topz = %+v, want hash 42 hottest", topz)
	}
	if len(topz.Tenants) != 1 || topz.Tenants[0].Tenant != "ds" {
		t.Fatalf("topz tenants = %+v", topz.Tenants)
	}
	if len(topz.Anomalies) != 1 || topz.Anomalies[0].Kind != "breaker_flap" {
		t.Fatalf("topz anomalies = %+v", topz.Anomalies)
	}
	if err := json.Unmarshal([]byte(mustGet(t, base+"/topz?limit=2", http.StatusOK)), &topz); err != nil {
		t.Fatalf("topz JSON: %v", err)
	}
	if len(topz.TopKeys) != 2 {
		t.Fatalf("topz?limit=2 returned %d keys", len(topz.TopKeys))
	}

	var evs []obs.WideEvent
	if err := json.Unmarshal([]byte(mustGet(t, base+"/flightz?limit=3", http.StatusOK)), &evs); err != nil {
		t.Fatalf("flightz JSON: %v", err)
	}
	if len(evs) != 3 || evs[0].Op != "coord_write" || evs[0].DurNs != 5 {
		t.Fatalf("flightz = %+v, want 3 newest-first", evs)
	}

	// /traces?slow=1 serves newest-first and honors ?limit (DESIGN.md §8).
	var slows []obs.SlowOp
	if err := json.Unmarshal([]byte(mustGet(t, base+"/traces?slow=1&limit=2", http.StatusOK)), &slows); err != nil {
		t.Fatalf("slow JSON: %v", err)
	}
	if len(slows) != 2 || slows[0].TraceID != 6 || slows[1].TraceID != 5 {
		t.Fatalf("slow ops = %+v, want newest-first trace ids 6,5", slows)
	}
	if err := json.Unmarshal([]byte(mustGet(t, base+"/traces?slow=1", http.StatusOK)), &slows); err != nil {
		t.Fatalf("slow JSON: %v", err)
	}
	if len(slows) != 6 || slows[0].TraceID != 6 {
		t.Fatalf("unlimited slow ops = %d entries, first %+v", len(slows), slows[0])
	}
}

func TestHealthzMapsNotOKTo503(t *testing.T) {
	s, err := opshttp.Start(opshttp.Config{
		Addr:   "127.0.0.1:0",
		Health: func() opshttp.HealthStatus { return opshttp.HealthStatus{Node: "sick", OK: false} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	body := mustGet(t, "http://"+s.Addr()+"/healthz", http.StatusServiceUnavailable)
	var h opshttp.HealthStatus
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if h.Node != "sick" || h.OK {
		t.Fatalf("healthz = %+v", h)
	}
}

// --- end-to-end over the simulated network --------------------------------

// TestOpsPlaneEndToEnd boots a 3-node cluster, performs one fully sampled
// client write, and asserts the ISSUE's acceptance criteria: the write
// yields exactly one causally-stitched distributed trace with spans from the
// client, the coordinator's quorum engine and at least two replica servers;
// the ops-plane endpoints answer with valid payloads; and the slow-op log
// force-retained the op.
func TestOpsPlaneEndToEnd(t *testing.T) {
	cl, err := bench.NewCluster(bench.ClusterConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	cli, reg, err := cl.ClientWithObs()
	if err != nil {
		t.Fatal(err)
	}
	reg.SetNode("client-0")
	reg.SetTraceSampling(1)                 // trace every op
	reg.SetSlowOpThreshold(time.Nanosecond) // every op is "slow": exercises the event log

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cli.WriteLatest(ctx, kv.Key("ds/tb/trace-key"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// The write returns after W=2 acks, so the straggler replica span can
	// land after the call: poll the cluster-wide span set until the stitched
	// trace is complete.
	var stitched obs.StitchedTrace
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := append([]obs.TraceSnapshot(nil), reg.Traces()...)
		for _, srv := range cl.Servers {
			spans = append(spans, srv.ObsReport().Traces...)
		}
		var found bool
		for _, st := range obs.StitchTraces(spans) {
			if st.Op == "client.write" && traceComplete(st) {
				stitched, found = st, true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no complete stitched trace; spans:\n%v", obs.StitchTraces(spans))
		}
		time.Sleep(25 * time.Millisecond)
	}
	if stitched.ID == 0 {
		t.Fatal("stitched trace has no ID")
	}
	if got := stitched.Nodes(); len(got) < 3 { // client + coordinator + ≥1 more replica
		t.Fatalf("trace spans only nodes %v", got)
	}

	// Ops plane on a data node.
	ops, err := opshttp.Start(cl.Servers[0].OpsConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	base := "http://" + ops.Addr()

	metrics := mustGet(t, base+"/metrics", http.StatusOK)
	checkPromExposition(t, metrics)
	if !strings.Contains(metrics, "sedna_") {
		t.Fatal("/metrics carries no sedna_ metrics")
	}
	// The elasticity counters register at server construction, so they are
	// scrapeable (at zero) before any campaign runs — dashboards and alerts
	// can reference them unconditionally.
	for _, name := range []string{
		"sedna_rebalance_rows_streamed",
		"sedna_rebalance_dual_writes",
		"sedna_rebalance_cutovers",
		"sedna_rebalance_aborts",
	} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}

	var h opshttp.HealthStatus
	if err := json.Unmarshal([]byte(mustGet(t, base+"/healthz", http.StatusOK)), &h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if h.Node != "sedna-0" || !h.OK {
		t.Fatalf("healthz = %+v", h)
	}

	var rv struct {
		Version uint64     `json:"version"`
		Nodes   []string   `json:"nodes"`
		VNodes  [][]string `json:"vnodes"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, base+"/ring", http.StatusOK)), &rv); err != nil {
		t.Fatalf("ring JSON: %v", err)
	}
	if len(rv.Nodes) != 3 || len(rv.VNodes) == 0 {
		t.Fatalf("ring view = %+v", rv)
	}

	var imb []map[string]any
	if err := json.Unmarshal([]byte(mustGet(t, base+"/imbalance", http.StatusOK)), &imb); err != nil {
		t.Fatalf("imbalance JSON: %v", err)
	}

	var stitchedRemote []obs.StitchedTrace
	if err := json.Unmarshal([]byte(mustGet(t, base+"/traces", http.StatusOK)), &stitchedRemote); err != nil {
		t.Fatalf("traces JSON: %v", err)
	}

	var rep obs.Report
	if err := json.Unmarshal([]byte(mustGet(t, base+"/statsz", http.StatusOK)), &rep); err != nil {
		t.Fatalf("statsz JSON: %v", err)
	}
	if rep.Node != "sedna-0" {
		t.Fatalf("statsz node = %q", rep.Node)
	}

	mustGet(t, base+"/debug/pprof/cmdline", http.StatusOK)

	// The generic Config mounts on any registry: serve the client's obs and
	// read its slow-op log (force-retained because of the 1ns threshold).
	cops, err := opshttp.Start(opshttp.Config{Addr: "127.0.0.1:0", Node: "client-0", Report: reg.Report})
	if err != nil {
		t.Fatal(err)
	}
	defer cops.Close()
	var slows []obs.SlowOp
	if err := json.Unmarshal([]byte(mustGet(t, "http://"+cops.Addr()+"/traces?slow=1", http.StatusOK)), &slows); err != nil {
		t.Fatalf("slow-op JSON: %v", err)
	}
	var slow *obs.SlowOp
	for i := range slows {
		if slows[i].Op == "client.write" {
			slow = &slows[i]
		}
	}
	if slow == nil {
		t.Fatalf("slow-op log missing the write: %+v", slows)
	}
	if slow.TraceID != stitched.ID {
		t.Fatalf("slow op trace id %x != stitched id %x", slow.TraceID, stitched.ID)
	}
	if slow.VNode < 0 || slow.KeyHash == 0 {
		t.Fatalf("slow op lost routing context: %+v", slow)
	}
}

// traceComplete reports whether a stitched trace shows the full causal path
// of one client write: an origin span that departed via client.send, a
// coordinator span that went through the quorum engine, and replica spans on
// at least two distinct nodes.
func traceComplete(st obs.StitchedTrace) bool {
	var origin, quorum bool
	replicas := map[string]bool{}
	for _, sp := range st.Spans {
		for _, stg := range sp.Stages {
			if sp.Parent == "" && stg.Name == "client.send" {
				origin = true
			}
			if strings.HasPrefix(stg.Name, "quorum.") {
				quorum = true
			}
		}
		if sp.Parent == "rpc.write_replica" && sp.Node != "" {
			replicas[sp.Node] = true
		}
	}
	return origin && quorum && len(replicas) >= 2
}
