// Package workload generates the keys and values driving the paper's
// experiments (§VI-A): 20-byte sequential keys shaped like
// "test-00000000000000" with a constant 20-byte value, plus the uniform and
// zipfian variants used by the ablation benchmarks and a synthetic
// micro-blogging stream for the realtime use case (§V).
package workload

import (
	"fmt"
	"math/rand"

	"sedna/internal/kv"
)

// Dist selects the key access distribution.
type Dist int

const (
	// Sequential walks keys 0..Keys-1 in order, the paper's load.
	Sequential Dist = iota
	// Uniform picks keys uniformly at random.
	Uniform
	// Zipf skews accesses toward a hot head (s=1.1), the distribution
	// that exercises the imbalance table and the load balancer.
	Zipf
)

// String names the distribution.
func (d Dist) String() string {
	switch d {
	case Sequential:
		return "sequential"
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// Spec describes a workload.
type Spec struct {
	// Keys is the distinct key count.
	Keys int
	// ValueBytes sizes the constant value; zero selects the paper's 20.
	ValueBytes int
	// Dist selects the access pattern.
	Dist Dist
	// Seed makes Uniform and Zipf reproducible.
	Seed int64
	// Dataset and Table place the keys in Sedna's hierarchical key space;
	// empty selects "bench"/"kv".
	Dataset, Table string
	// Tenants > 1 shards keys across that many datasets ("<Dataset>-00",
	// "<Dataset>-01", ...) by key index, so a dataset-mode tenant rule
	// attributes the stream to distinct tenants. Zero or one keeps the
	// single flat dataset.
	Tenants int
}

// Paper returns the evaluation's exact workload shape: 20-byte keys
// ("test-" + 14 digits), 20-byte constant values, sequential access.
func Paper(keys int) Spec {
	return Spec{Keys: keys, ValueBytes: 20, Dist: Sequential}
}

// Generator produces keys and values for a Spec. It is not safe for
// concurrent use; give each client goroutine its own (Clone).
type Generator struct {
	spec  Spec
	value []byte
	rng   *rand.Rand
	zipf  *rand.Zipf
	next  int
}

// NewGenerator builds a generator.
func NewGenerator(spec Spec) *Generator {
	if spec.Keys <= 0 {
		spec.Keys = 1
	}
	if spec.ValueBytes <= 0 {
		spec.ValueBytes = 20
	}
	if spec.Dataset == "" {
		spec.Dataset = "bench"
	}
	if spec.Table == "" {
		spec.Table = "kv"
	}
	g := &Generator{spec: spec, value: make([]byte, spec.ValueBytes)}
	for i := range g.value {
		g.value[i] = 'v'
	}
	g.rng = rand.New(rand.NewSource(spec.Seed + 1))
	if spec.Dist == Zipf {
		g.zipf = rand.NewZipf(g.rng, 1.1, 1, uint64(spec.Keys-1))
	}
	return g
}

// Clone returns an independent generator with a derived seed.
func (g *Generator) Clone(offset int64) *Generator {
	spec := g.spec
	spec.Seed += offset
	ng := NewGenerator(spec)
	return ng
}

// Key returns the i-th key (i taken modulo the key count). The flat name
// follows the paper's "test-%014d" shape so the full key is 20 bytes plus
// the hierarchy prefix.
func (g *Generator) Key(i int) kv.Key {
	i %= g.spec.Keys
	if i < 0 {
		i += g.spec.Keys
	}
	ds := g.spec.Dataset
	if g.spec.Tenants > 1 {
		ds = fmt.Sprintf("%s-%02d", ds, i%g.spec.Tenants)
	}
	return kv.Join(ds, g.spec.Table, fmt.Sprintf("test-%014d", i))
}

// HottestKey returns the key a Zipf generator hits most often (index 0 — Go's
// rand.Zipf maps rank 0 to the largest mass). Introspection experiments
// compare it against the hot-key sketch's top entry.
func (g *Generator) HottestKey() kv.Key { return g.Key(0) }

// Value returns the constant value (shared storage: treat as read-only).
func (g *Generator) Value(int) []byte { return g.value }

// NextIndex draws the next key index per the distribution.
func (g *Generator) NextIndex() int {
	switch g.spec.Dist {
	case Uniform:
		return g.rng.Intn(g.spec.Keys)
	case Zipf:
		return int(g.zipf.Uint64())
	default:
		i := g.next
		g.next = (g.next + 1) % g.spec.Keys
		return i
	}
}

// NextKey draws the next key.
func (g *Generator) NextKey() kv.Key { return g.Key(g.NextIndex()) }

// Tweet is one synthetic micro-blog message for the §V use case.
type Tweet struct {
	ID       string
	Author   string
	Text     string
	Mentions []string
}

// TweetStream produces reproducible synthetic tweets from a fixed pool of
// authors, with occasional mentions creating social-graph edges.
type TweetStream struct {
	rng     *rand.Rand
	authors []string
	n       int
}

// NewTweetStream builds a stream over the given author count.
func NewTweetStream(authors int, seed int64) *TweetStream {
	ts := &TweetStream{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < authors; i++ {
		ts.authors = append(ts.authors, fmt.Sprintf("user%03d", i))
	}
	return ts
}

var tweetWords = []string{
	"realtime", "cloud", "storage", "sedna", "memory", "trigger", "cluster",
	"latency", "scale", "index", "search", "stream", "quorum", "replica",
}

// Next produces the next tweet.
func (ts *TweetStream) Next() Tweet {
	ts.n++
	author := ts.authors[ts.rng.Intn(len(ts.authors))]
	words := 3 + ts.rng.Intn(8)
	text := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			text += " "
		}
		text += tweetWords[ts.rng.Intn(len(tweetWords))]
	}
	t := Tweet{
		ID:     fmt.Sprintf("tweet-%08d", ts.n),
		Author: author,
		Text:   text,
	}
	if ts.rng.Float64() < 0.3 {
		m := ts.authors[ts.rng.Intn(len(ts.authors))]
		if m != author {
			t.Mentions = append(t.Mentions, m)
			t.Text += " @" + m
		}
	}
	return t
}
