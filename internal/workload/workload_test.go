package workload

import (
	"strings"
	"testing"
)

func TestPaperSpecShape(t *testing.T) {
	g := NewGenerator(Paper(1000))
	key := g.Key(1)
	// The paper: 20-byte keys like "test-00000000000001" and 20-byte
	// constant values. The flat name component carries the shape; the
	// hierarchy prefix is Sedna's extended key space.
	name := key.Name()
	if !strings.HasPrefix(name, "test-") || len(name) != 19 {
		t.Fatalf("key name = %q (len %d)", name, len(name))
	}
	if len(g.Value(0)) != 20 {
		t.Fatalf("value length = %d", len(g.Value(0)))
	}
	if string(g.Value(0)) != string(g.Value(999)) {
		t.Fatal("value not constant")
	}
}

func TestSequentialCoversAllKeys(t *testing.T) {
	g := NewGenerator(Spec{Keys: 50, Dist: Sequential})
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[g.NextIndex()] = true
	}
	if len(seen) != 50 {
		t.Fatalf("sequential covered %d of 50", len(seen))
	}
	// Wraps around.
	if g.NextIndex() != 0 {
		t.Fatal("sequential did not wrap")
	}
}

func TestKeyModularArithmetic(t *testing.T) {
	g := NewGenerator(Spec{Keys: 10})
	if g.Key(12) != g.Key(2) {
		t.Fatal("index not reduced modulo Keys")
	}
	if g.Key(-3) != g.Key(7) {
		t.Fatal("negative index mishandled")
	}
}

func TestUniformReproducible(t *testing.T) {
	a := NewGenerator(Spec{Keys: 100, Dist: Uniform, Seed: 5})
	b := NewGenerator(Spec{Keys: 100, Dist: Uniform, Seed: 5})
	for i := 0; i < 100; i++ {
		if a.NextIndex() != b.NextIndex() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewGenerator(Spec{Keys: 1000, Dist: Zipf, Seed: 9})
	counts := map[int]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[g.NextIndex()]++
	}
	// The head must be hot: key 0 should take a large share.
	if counts[0] < draws/20 {
		t.Fatalf("zipf head only drew %d of %d", counts[0], draws)
	}
	// And the draws must stay in range.
	for k := range counts {
		if k < 0 || k >= 1000 {
			t.Fatalf("zipf drew out-of-range key %d", k)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewGenerator(Spec{Keys: 100, Dist: Uniform, Seed: 1})
	c := g.Clone(7)
	same := true
	for i := 0; i < 20; i++ {
		if g.NextIndex() != c.NextIndex() {
			same = false
		}
	}
	if same {
		t.Fatal("clone with offset produced the identical stream")
	}
}

func TestHierarchyPlacement(t *testing.T) {
	g := NewGenerator(Spec{Keys: 10, Dataset: "web", Table: "pages"})
	k := g.Key(3)
	if k.Dataset() != "web" || k.Table() != "web/pages" {
		t.Fatalf("key hierarchy = %q", k)
	}
}

func TestTweetStream(t *testing.T) {
	ts := NewTweetStream(5, 3)
	ids := map[string]bool{}
	mentions := 0
	for i := 0; i < 200; i++ {
		tw := ts.Next()
		if ids[tw.ID] {
			t.Fatalf("duplicate tweet id %s", tw.ID)
		}
		ids[tw.ID] = true
		if tw.Author == "" || tw.Text == "" {
			t.Fatalf("malformed tweet %+v", tw)
		}
		if len(tw.Mentions) > 0 {
			mentions++
			if tw.Mentions[0] == tw.Author {
				t.Fatal("self-mention generated")
			}
			if !strings.Contains(tw.Text, "@"+tw.Mentions[0]) {
				t.Fatal("mention not reflected in text")
			}
		}
	}
	if mentions == 0 {
		t.Fatal("no mentions in 200 tweets")
	}
}

func TestTweetStreamReproducible(t *testing.T) {
	a, b := NewTweetStream(5, 42), NewTweetStream(5, 42)
	for i := 0; i < 50; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.ID != tb.ID || ta.Text != tb.Text || ta.Author != tb.Author {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDistString(t *testing.T) {
	if Sequential.String() != "sequential" || Uniform.String() != "uniform" || Zipf.String() != "zipf" {
		t.Fatal("Dist names wrong")
	}
}
