// Package trigger implements Sedna's trigger-based realtime APIs (§IV):
// jobs monitor data at key, table or dataset granularity, a filter predicate
// (the paper's assert(oldKey, oldValue, newKey, newValue)) decides which
// updates matter, and an action (the paper's action(key, values, result))
// processes them, emitting results back into the store through a Result.
//
// Dirty rows are discovered by scanner goroutines sweeping the store's
// Dirty column (§IV-C, Fig. 5) plus an optional fast-path notification from
// the write path. Flow control (§IV-B) coalesces updates per key within
// each job's trigger interval — "if value changes during this interval, it
// would be safe to discard them as the most fresh data matters most" — which
// bounds the ripple effect of trigger cycles to one firing per interval.
package trigger

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/kv"
	"sedna/internal/obs"
)

// Snapshot is one key's state at a point in time, as presented to filters.
type Snapshot struct {
	Key kv.Key
	// Value is the latest live value ([]byte(nil) when absent).
	Value []byte
	// TS is the timestamp of that value.
	TS kv.Timestamp
	// Exists reports whether the key held a live value.
	Exists bool
}

// Filter decides whether an update should fire a job, given the previous
// and current state of the key (the paper's four-argument assert).
type Filter interface {
	Assert(old, new Snapshot) bool
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(old, new Snapshot) bool

// Assert implements Filter.
func (f FilterFunc) Assert(old, new Snapshot) bool { return f(old, new) }

// Result collects an action's output writes; the engine applies them to the
// distributed store in parallel after the action returns ("a safe way for
// programmers to write processing results ... paralleled", §IV-D).
type Result struct {
	mu     sync.Mutex
	writes []WriteOp
}

// WriteOp is one buffered output write.
type WriteOp struct {
	Key   kv.Key
	Value []byte
}

// Emit buffers one output write. The value is copied (exactly once, into a
// pre-sized buffer), so actions may reuse their scratch.
func (r *Result) Emit(key kv.Key, value []byte) {
	var v []byte
	if len(value) > 0 {
		v = make([]byte, len(value))
		copy(v, value)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.writes = append(r.writes, WriteOp{Key: key, Value: v})
}

// resultPool recycles Result collectors across action firings: the writes
// slice keeps its capacity, so a hot trigger job stops allocating a
// collector plus slice growth on every firing. Only the slice headers are
// pooled — value buffers are freshly sized per Emit and handed to the write
// path, never reused.
var resultPool = sync.Pool{New: func() any { return new(Result) }}

func getResult() *Result { return resultPool.Get().(*Result) }

func putResult(r *Result) {
	clear(r.writes) // drop value refs so the pool pins no payloads
	r.writes = r.writes[:0]
	resultPool.Put(r)
}

// Action processes one fired event: the key, its live values (freshest
// first, the multi-source write_all list) and the output collector.
type Action interface {
	Act(ctx context.Context, key kv.Key, values [][]byte, res *Result) error
}

// ActionFunc adapts a function to the Action interface.
type ActionFunc func(ctx context.Context, key kv.Key, values [][]byte, res *Result) error

// Act implements Action.
func (f ActionFunc) Act(ctx context.Context, key kv.Key, values [][]byte, res *Result) error {
	return f(ctx, key, values, res)
}

// Hook names what a job monitors: a whole dataset, one table, or one exact
// key (§IV-C: "the least unit programs can monitor would be a key-value
// pair, and they also can monitor Tables ... or monitor a Dataset").
type Hook struct {
	Dataset string
	Table   string // empty: whole dataset
	Name    string // empty: whole table
}

// KeyHook monitors one exact key.
func KeyHook(k kv.Key) Hook {
	d, t, n := k.Split()
	return Hook{Dataset: d, Table: t, Name: n}
}

// TableHook monitors every key in dataset/table.
func TableHook(dataset, table string) Hook { return Hook{Dataset: dataset, Table: table} }

// DatasetHook monitors every key in the dataset.
func DatasetHook(dataset string) Hook { return Hook{Dataset: dataset} }

// Matches reports whether the hook covers key.
func (h Hook) Matches(key kv.Key) bool {
	d, t, n := key.Split()
	if h.Dataset != d {
		return false
	}
	if h.Table == "" {
		return true
	}
	if h.Table != t {
		return false
	}
	return h.Name == "" || h.Name == n
}

// Job is one registered trigger application.
type Job struct {
	// Name labels the job in stats and logs.
	Name string
	// Hooks select the monitored data; at least one is required.
	Hooks []Hook
	// Filter gates events; nil passes everything. Filters "should be as
	// simple as possible" (§IV-D) — they run inline on the scan path.
	Filter Filter
	// Action runs for each fired event.
	Action Action
	// Interval is the flow-control window: at most one firing per key per
	// interval, intermediate values are discarded keeping the freshest.
	// Zero selects the engine default.
	Interval time.Duration
	// ActionTimeout bounds one action invocation; zero selects 5s.
	ActionTimeout time.Duration
	// Deadline unregisters the job after this lifetime ("Programmers
	// should give a job a timeout measurement to avoid infinite
	// execution", §IV-D). Zero means no deadline.
	Deadline time.Duration
}

// Source exposes the local store's dirty rows to the scanner.
type Source interface {
	// ScanDirty visits up to limit dirty rows, clearing their Dirty flag,
	// and returns how many it visited. fn receives the key and a private
	// copy of the row.
	ScanDirty(limit int, fn func(key kv.Key, row *kv.Row)) int
}

// Config parameterises an Engine.
type Config struct {
	// Source feeds the scanner. Required.
	Source Source
	// Write applies one Result output to the distributed store. Required
	// if any action emits results.
	Write func(ctx context.Context, key kv.Key, value []byte) error
	// ScanEvery is the dirty-scan period; zero selects 10ms.
	ScanEvery time.Duration
	// ScanBatch bounds one sweep; zero selects 1024 rows.
	ScanBatch int
	// Workers sizes the action worker pool; zero selects 4.
	Workers int
	// DefaultInterval is the flow-control window for jobs that do not set
	// one; zero selects 100ms.
	DefaultInterval time.Duration
	// Obs receives the engine's metrics; nil disables (at no cost — the
	// handles stay nil-safe no-ops).
	Obs *obs.Registry
	// Logf receives diagnostics; nil disables.
	Logf func(format string, args ...any)
}

// Stats counts engine activity.
type Stats struct {
	// Scanned is the number of dirty rows swept.
	Scanned uint64
	// Matched counts (row, job) pairs whose hooks matched.
	Matched uint64
	// Filtered counts events rejected by a filter.
	Filtered uint64
	// Coalesced counts events merged into a pending firing by flow
	// control (the ripple-effect suppression).
	Coalesced uint64
	// Fired counts action invocations.
	Fired uint64
	// ActionErrors counts failed or timed-out actions.
	ActionErrors uint64
	// ResultWrites counts output writes applied.
	ResultWrites uint64
}

// Engine runs trigger jobs against one node's store.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[uint64]*jobState
	nextID  uint64
	started bool
	closed  bool

	fireCh chan firing
	stop   chan struct{}
	wg     sync.WaitGroup

	scanned      atomic.Uint64
	matched      atomic.Uint64
	filtered     atomic.Uint64
	coalesced    atomic.Uint64
	fired        atomic.Uint64
	actionErrors atomic.Uint64
	resultWrites atomic.Uint64

	hScan, hFilter, hAction *obs.Histogram
	nScans                  *obs.Counter
}

type jobState struct {
	id  uint64
	job Job
	// lastSeen is the previous dispatched snapshot per key (the "old"
	// side of the filter).
	lastSeen map[kv.Key]Snapshot
	// pending holds the freshest un-fired event per key.
	pending map[kv.Key]*event
	// lastFired is the flow-control clock per key.
	lastFired map[kv.Key]time.Time
	// expires is the job deadline (zero time: none).
	expires time.Time
}

type event struct {
	key    kv.Key
	new    Snapshot
	values [][]byte
}

type firing struct {
	js *jobState
	ev *event
}

// NewEngine validates the config and returns a stopped engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Source == nil {
		return nil, errors.New("trigger: Source required")
	}
	if cfg.ScanEvery <= 0 {
		cfg.ScanEvery = 10 * time.Millisecond
	}
	if cfg.ScanBatch <= 0 {
		cfg.ScanBatch = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.DefaultInterval <= 0 {
		cfg.DefaultInterval = 100 * time.Millisecond
	}
	return &Engine{
		cfg:     cfg,
		jobs:    map[uint64]*jobState{},
		fireCh:  make(chan firing, 256),
		stop:    make(chan struct{}),
		hScan:   cfg.Obs.Histogram("trigger.scan"),
		hFilter: cfg.Obs.Histogram("trigger.filter"),
		hAction: cfg.Obs.Histogram("trigger.action"),
		nScans:  cfg.Obs.Counter("trigger.scans"),
	}, nil
}

// PublishObs mirrors the engine's cumulative counters into the registry so
// trigger activity shows up next to the rest of the node's metrics. A nil
// registry makes this a no-op.
func (e *Engine) PublishObs() {
	r := e.cfg.Obs
	if r == nil {
		return
	}
	st := e.Stats()
	r.Gauge("trigger.scanned").Set(int64(st.Scanned))
	r.Gauge("trigger.matched").Set(int64(st.Matched))
	r.Gauge("trigger.filtered").Set(int64(st.Filtered))
	r.Gauge("trigger.coalesced").Set(int64(st.Coalesced))
	r.Gauge("trigger.fired").Set(int64(st.Fired))
	r.Gauge("trigger.action_errors").Set(int64(st.ActionErrors))
	r.Gauge("trigger.result_writes").Set(int64(st.ResultWrites))
	e.mu.Lock()
	jobs := len(e.jobs)
	pending := 0
	for _, js := range e.jobs {
		pending += len(js.pending)
	}
	e.mu.Unlock()
	r.Gauge("trigger.jobs").Set(int64(jobs))
	r.Gauge("trigger.pending_events").Set(int64(pending))
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf("trigger: "+format, args...)
	}
}

// Register installs a job and returns its id. The engine may be running.
func (e *Engine) Register(job Job) (uint64, error) {
	if len(job.Hooks) == 0 {
		return 0, errors.New("trigger: job needs at least one hook")
	}
	if job.Action == nil {
		return 0, errors.New("trigger: job needs an action")
	}
	if job.Interval <= 0 {
		job.Interval = e.cfg.DefaultInterval
	}
	if job.ActionTimeout <= 0 {
		job.ActionTimeout = 5 * time.Second
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, errors.New("trigger: engine closed")
	}
	e.nextID++
	id := e.nextID
	js := &jobState{
		id:        id,
		job:       job,
		lastSeen:  map[kv.Key]Snapshot{},
		pending:   map[kv.Key]*event{},
		lastFired: map[kv.Key]time.Time{},
	}
	if job.Deadline > 0 {
		js.expires = time.Now().Add(job.Deadline)
	}
	e.jobs[id] = js
	return id, nil
}

// Unregister removes a job; in-flight actions complete.
func (e *Engine) Unregister(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.jobs, id)
}

// Jobs returns the ids of registered jobs.
func (e *Engine) Jobs() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]uint64, 0, len(e.jobs))
	for id := range e.jobs {
		out = append(out, id)
	}
	return out
}

// Start launches the scanner and the worker pool.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started || e.closed {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	e.wg.Add(1)
	go e.scanLoop()
}

// Close stops the engine and waits for in-flight actions.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	started := e.started
	e.mu.Unlock()
	if started {
		close(e.stop)
		e.wg.Wait()
	}
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Scanned:      e.scanned.Load(),
		Matched:      e.matched.Load(),
		Filtered:     e.filtered.Load(),
		Coalesced:    e.coalesced.Load(),
		Fired:        e.fired.Load(),
		ActionErrors: e.actionErrors.Load(),
		ResultWrites: e.resultWrites.Load(),
	}
}

func (e *Engine) scanLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.ScanEvery)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
		}
		scanStart := time.Now()
		n := e.cfg.Source.ScanDirty(e.cfg.ScanBatch, e.Offer)
		e.hScan.Observe(time.Since(scanStart))
		e.nScans.Inc()
		e.scanned.Add(uint64(n))
		e.dispatchDue()
		e.expireJobs()
	}
}

// Offer presents one changed row to the engine; the write path may call it
// directly as a fast path instead of waiting for the next sweep.
func (e *Engine) Offer(key kv.Key, row *kv.Row) {
	snap := Snapshot{Key: key}
	if v, ok := row.Latest(); ok {
		snap.Value = v.Value
		snap.TS = v.TS
		snap.Exists = true
	}
	live := row.Live()
	values := make([][]byte, len(live))
	for i, v := range live {
		values[i] = v.Value
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	for _, js := range e.jobs {
		if !matchesAny(js.job.Hooks, key) {
			continue
		}
		e.matched.Add(1)
		old := js.lastSeen[key]
		old.Key = key
		if js.job.Filter != nil {
			filterStart := time.Now()
			pass := js.job.Filter.Assert(old, snap)
			e.hFilter.Observe(time.Since(filterStart))
			if !pass {
				e.filtered.Add(1)
				continue
			}
		}
		if _, dup := js.pending[key]; dup {
			e.coalesced.Add(1)
		}
		// Freshest wins: later offers replace pending ones (§IV-B).
		js.pending[key] = &event{key: key, new: snap, values: values}
	}
}

func matchesAny(hooks []Hook, key kv.Key) bool {
	for _, h := range hooks {
		if h.Matches(key) {
			return true
		}
	}
	return false
}

// dispatchDue moves pending events whose flow-control window has elapsed to
// the worker pool.
func (e *Engine) dispatchDue() {
	now := time.Now()
	var due []firing
	e.mu.Lock()
	for _, js := range e.jobs {
		for key, ev := range js.pending {
			if now.Sub(js.lastFired[key]) < js.job.Interval {
				continue // still inside the window; keep coalescing
			}
			js.lastFired[key] = now
			js.lastSeen[key] = ev.new
			delete(js.pending, key)
			due = append(due, firing{js: js, ev: ev})
		}
	}
	e.mu.Unlock()
	for _, f := range due {
		select {
		case e.fireCh <- f:
		case <-e.stop:
			return
		}
	}
}

func (e *Engine) expireJobs() {
	now := time.Now()
	e.mu.Lock()
	for id, js := range e.jobs {
		if !js.expires.IsZero() && now.After(js.expires) {
			delete(e.jobs, id)
			e.logf("job %q (%d) reached its deadline", js.job.Name, id)
		}
	}
	e.mu.Unlock()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case f := <-e.fireCh:
			e.runAction(f)
		}
	}
}

func (e *Engine) runAction(f firing) {
	e.fired.Add(1)
	actionStart := time.Now()
	defer func() { e.hAction.Observe(time.Since(actionStart)) }()
	ctx, cancel := context.WithTimeout(context.Background(), f.js.job.ActionTimeout)
	defer cancel()
	res := getResult()
	defer putResult(res)
	if err := f.js.job.Action.Act(ctx, f.ev.key, f.ev.values, res); err != nil {
		e.actionErrors.Add(1)
		e.logf("job %q action on %q: %v", f.js.job.Name, f.ev.key, err)
		return
	}
	if len(res.writes) == 0 {
		return
	}
	if e.cfg.Write == nil {
		e.actionErrors.Add(1)
		e.logf("job %q emitted %d writes but the engine has no writer", f.js.job.Name, len(res.writes))
		return
	}
	// Apply outputs in parallel (§IV-D).
	var wg sync.WaitGroup
	for _, w := range res.writes {
		wg.Add(1)
		go func(w WriteOp) {
			defer wg.Done()
			if err := e.cfg.Write(ctx, w.Key, w.Value); err != nil {
				e.actionErrors.Add(1)
				e.logf("job %q result write %q: %v", f.js.job.Name, w.Key, err)
				return
			}
			e.resultWrites.Add(1)
		}(w)
	}
	wg.Wait()
}

// String renders a hook for logs.
func (h Hook) String() string {
	switch {
	case h.Table == "":
		return fmt.Sprintf("dataset(%s)", h.Dataset)
	case h.Name == "":
		return fmt.Sprintf("table(%s/%s)", h.Dataset, h.Table)
	default:
		return fmt.Sprintf("key(%s/%s/%s)", h.Dataset, h.Table, h.Name)
	}
}
