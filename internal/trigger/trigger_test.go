package trigger

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sedna/internal/kv"
)

// memSource is a Source backed by a map of rows with explicit dirty marks.
type memSource struct {
	mu    sync.Mutex
	rows  map[kv.Key]*kv.Row
	dirty []kv.Key
}

func newMemSource() *memSource { return &memSource{rows: map[kv.Key]*kv.Row{}} }

func (s *memSource) write(key kv.Key, val string, wall int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	row := s.rows[key]
	if row == nil {
		row = &kv.Row{}
		s.rows[key] = row
	}
	row.ApplyLatest(kv.Versioned{Value: []byte(val), TS: kv.Timestamp{Wall: wall}, Source: "test"})
	s.dirty = append(s.dirty, key)
}

func (s *memSource) ScanDirty(limit int, fn func(kv.Key, *kv.Row)) int {
	s.mu.Lock()
	batch := s.dirty
	if len(batch) > limit {
		batch = batch[:limit]
		s.dirty = s.dirty[limit:]
	} else {
		s.dirty = nil
	}
	rows := make([]*kv.Row, len(batch))
	for i, k := range batch {
		rows[i] = s.rows[k].Clone()
	}
	s.mu.Unlock()
	for i, k := range batch {
		fn(k, rows[i])
	}
	return len(batch)
}

// collector is an Action recording its invocations.
type collector struct {
	mu    sync.Mutex
	calls []call
	ch    chan call
}

type call struct {
	key    kv.Key
	values []string
}

func newCollector() *collector { return &collector{ch: make(chan call, 128)} }

func (c *collector) Act(ctx context.Context, key kv.Key, values [][]byte, res *Result) error {
	vals := make([]string, len(values))
	for i, v := range values {
		vals[i] = string(v)
	}
	cl := call{key: key, values: vals}
	c.mu.Lock()
	c.calls = append(c.calls, cl)
	c.mu.Unlock()
	c.ch <- cl
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.calls)
}

func (c *collector) wait(t *testing.T, timeout time.Duration) call {
	t.Helper()
	select {
	case cl := <-c.ch:
		return cl
	case <-time.After(timeout):
		t.Fatal("action never fired")
		return call{}
	}
}

func startEngine(t *testing.T, src *memSource, writes *sync.Map) *Engine {
	t.Helper()
	cfg := Config{
		Source:          src,
		ScanEvery:       2 * time.Millisecond,
		DefaultInterval: 5 * time.Millisecond,
		Workers:         4,
	}
	if writes != nil {
		cfg.Write = func(ctx context.Context, key kv.Key, value []byte) error {
			writes.Store(key, string(value))
			return nil
		}
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(e.Close)
	return e
}

func TestHookMatching(t *testing.T) {
	key := kv.Join("web", "pages", "url1")
	cases := []struct {
		hook Hook
		want bool
	}{
		{KeyHook(key), true},
		{KeyHook(kv.Join("web", "pages", "url2")), false},
		{TableHook("web", "pages"), true},
		{TableHook("web", "users"), false},
		{DatasetHook("web"), true},
		{DatasetHook("other"), false},
	}
	for _, c := range cases {
		if got := c.hook.Matches(key); got != c.want {
			t.Errorf("%v.Matches(%q) = %v, want %v", c.hook, key, got, c.want)
		}
	}
}

func TestBasicTriggerFires(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	if _, err := e.Register(Job{
		Name:   "basic",
		Hooks:  []Hook{TableHook("ds", "tb")},
		Action: col,
	}); err != nil {
		t.Fatal(err)
	}
	src.write(kv.Join("ds", "tb", "k1"), "hello", 1)
	cl := col.wait(t, 2*time.Second)
	if cl.key != kv.Join("ds", "tb", "k1") || len(cl.values) != 1 || cl.values[0] != "hello" {
		t.Fatalf("call = %+v", cl)
	}
	if st := e.Stats(); st.Fired != 1 || st.Scanned == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTriggerIgnoresUnmatchedKeys(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	e.Register(Job{Name: "scoped", Hooks: []Hook{TableHook("ds", "tb")}, Action: col})
	src.write(kv.Join("other", "tb", "k"), "x", 1)
	src.write(kv.Join("ds", "other", "k"), "x", 1)
	time.Sleep(50 * time.Millisecond)
	if col.count() != 0 {
		t.Fatalf("fired %d times for unmatched keys", col.count())
	}
}

func TestFilterGatesEvents(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	// Only fire when the value grows (a stop-condition-style filter).
	e.Register(Job{
		Name:  "filtered",
		Hooks: []Hook{TableHook("ds", "tb")},
		Filter: FilterFunc(func(old, new Snapshot) bool {
			return len(new.Value) > len(old.Value)
		}),
		Action: col,
	})
	src.write(kv.Join("ds", "tb", "k"), "aa", 1)
	col.wait(t, 2*time.Second)
	// Shrinking value: filtered out.
	src.write(kv.Join("ds", "tb", "k"), "b", 2)
	time.Sleep(50 * time.Millisecond)
	if col.count() != 1 {
		t.Fatalf("fired %d times; filter leaked", col.count())
	}
	if st := e.Stats(); st.Filtered == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFilterSeesOldAndNew(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	var mu sync.Mutex
	var transitions []string
	e.Register(Job{
		Name:  "oldnew",
		Hooks: []Hook{KeyHook(kv.Join("d", "t", "k"))},
		Filter: FilterFunc(func(old, new Snapshot) bool {
			mu.Lock()
			transitions = append(transitions, string(old.Value)+"->"+string(new.Value))
			mu.Unlock()
			return true
		}),
		Action:   col,
		Interval: time.Millisecond,
	})
	src.write(kv.Join("d", "t", "k"), "v1", 1)
	col.wait(t, 2*time.Second)
	src.write(kv.Join("d", "t", "k"), "v2", 2)
	col.wait(t, 2*time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) < 2 || transitions[0] != "->v1" {
		t.Fatalf("transitions = %v", transitions)
	}
	// The old side of the second transition is the previously fired value.
	last := transitions[len(transitions)-1]
	if last != "v1->v2" {
		t.Fatalf("last transition = %q, want v1->v2", last)
	}
}

func TestFlowControlCoalesces(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	e.Register(Job{
		Name:     "burst",
		Hooks:    []Hook{KeyHook(kv.Join("d", "t", "hot"))},
		Action:   col,
		Interval: 80 * time.Millisecond,
	})
	// Burst of 50 writes inside one window.
	for i := 0; i < 50; i++ {
		src.write(kv.Join("d", "t", "hot"), "v", int64(i+1))
	}
	first := col.wait(t, 2*time.Second)
	_ = first
	time.Sleep(200 * time.Millisecond)
	// One firing for the initial event plus at most a couple for the
	// tail of the burst — far fewer than 50.
	if n := col.count(); n > 3 {
		t.Fatalf("fired %d times for a 50-write burst", n)
	}
	if st := e.Stats(); st.Coalesced == 0 {
		t.Fatalf("stats = %+v, expected coalescing", st)
	}
}

func TestFlowControlKeepsFreshest(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	e.Register(Job{
		Name:     "fresh",
		Hooks:    []Hook{KeyHook(kv.Join("d", "t", "k"))},
		Action:   col,
		Interval: 60 * time.Millisecond,
	})
	src.write(kv.Join("d", "t", "k"), "first", 1)
	col.wait(t, 2*time.Second)
	// Three quick updates inside the window; only the freshest fires.
	src.write(kv.Join("d", "t", "k"), "a", 2)
	src.write(kv.Join("d", "t", "k"), "b", 3)
	src.write(kv.Join("d", "t", "k"), "final", 4)
	cl := col.wait(t, 2*time.Second)
	if cl.values[0] != "final" {
		t.Fatalf("fired with %q, want the freshest value", cl.values[0])
	}
}

func TestRippleSuppressionBoundsLoop(t *testing.T) {
	// A self-feeding trigger (the paper's Fig. 4 circle) must be bounded
	// by the interval, not flood the engine.
	src := newMemSource()
	var writes sync.Map
	cfg := Config{
		Source:          src,
		ScanEvery:       2 * time.Millisecond,
		DefaultInterval: 30 * time.Millisecond,
		Workers:         2,
		Write: func(ctx context.Context, key kv.Key, value []byte) error {
			writes.Store(key, string(value))
			// Feed the loop: every output dirties the monitored key.
			src.write(key, string(value)+"+", time.Now().UnixNano())
			return nil
		},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Close()
	loopKey := kv.Join("d", "t", "loop")
	e.Register(Job{
		Name:  "looper",
		Hooks: []Hook{KeyHook(loopKey)},
		Action: ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *Result) error {
			res.Emit(loopKey, values[0])
			return nil
		}),
	})
	src.write(loopKey, "seed", 1)
	time.Sleep(300 * time.Millisecond)
	st := e.Stats()
	// 300ms / 30ms interval => ~10 firings; allow slack but reject a storm.
	if st.Fired > 15 {
		t.Fatalf("loop fired %d times in 300ms with a 30ms interval", st.Fired)
	}
	if st.Fired < 3 {
		t.Fatalf("loop barely ran: %+v", st)
	}
}

func TestStopConditionFilterTerminatesLoop(t *testing.T) {
	// The paper's iterative-task pattern: a filter compares old and new
	// values and stops the loop at a fixed point.
	src := newMemSource()
	cfg := Config{
		Source:          src,
		ScanEvery:       2 * time.Millisecond,
		DefaultInterval: 5 * time.Millisecond,
		Workers:         2,
	}
	var engine *Engine
	var err error
	cfg.Write = func(ctx context.Context, key kv.Key, value []byte) error {
		src.write(key, string(value), time.Now().UnixNano())
		return nil
	}
	engine, err = NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()
	defer engine.Close()

	loopKey := kv.Join("d", "t", "count")
	engine.Register(Job{
		Name:  "incr-until-5",
		Hooks: []Hook{KeyHook(loopKey)},
		Filter: FilterFunc(func(old, new Snapshot) bool {
			return len(new.Value) < 5 // stop once the value is 5 bytes
		}),
		Action: ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *Result) error {
			res.Emit(key, append(values[0], 'x'))
			return nil
		}),
	})
	src.write(loopKey, "x", 1)
	deadline := time.Now().Add(3 * time.Second)
	for {
		src.mu.Lock()
		row := src.rows[loopKey]
		var val string
		if row != nil {
			if v, ok := row.Latest(); ok {
				val = string(v.Value)
			}
		}
		src.mu.Unlock()
		if val == "xxxxx" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loop stuck at %q", val)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let any stragglers run; the value must not grow past the stop point.
	time.Sleep(100 * time.Millisecond)
	src.mu.Lock()
	v, _ := src.rows[loopKey].Latest()
	src.mu.Unlock()
	if string(v.Value) != "xxxxx" {
		t.Fatalf("loop overshot the stop condition: %q", v.Value)
	}
}

func TestResultWritesApplied(t *testing.T) {
	src := newMemSource()
	var writes sync.Map
	e := startEngine(t, src, &writes)
	done := make(chan struct{}, 1)
	e.Register(Job{
		Name:  "emitter",
		Hooks: []Hook{TableHook("in", "t")},
		Action: ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *Result) error {
			res.Emit(kv.Join("out", "t", key.Name()), []byte("processed:"+string(values[0])))
			res.Emit(kv.Join("out", "t", key.Name()+"-copy"), values[0])
			done <- struct{}{}
			return nil
		}),
	})
	src.write(kv.Join("in", "t", "k1"), "data", 1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("action never ran")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		v1, ok1 := writes.Load(kv.Join("out", "t", "k1"))
		_, ok2 := writes.Load(kv.Join("out", "t", "k1-copy"))
		if ok1 && ok2 {
			if v1.(string) != "processed:data" {
				t.Fatalf("output = %q", v1)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("result writes never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := e.Stats(); st.ResultWrites != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestActionErrorCounted(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	fired := make(chan struct{}, 1)
	e.Register(Job{
		Name:  "bad",
		Hooks: []Hook{TableHook("d", "t")},
		Action: ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *Result) error {
			fired <- struct{}{}
			return errors.New("boom")
		}),
	})
	src.write(kv.Join("d", "t", "k"), "x", 1)
	<-fired
	deadline := time.Now().Add(time.Second)
	for e.Stats().ActionErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("action error not counted")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestActionTimeout(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	done := make(chan struct{}, 1)
	e.Register(Job{
		Name:          "slow",
		Hooks:         []Hook{TableHook("d", "t")},
		ActionTimeout: 20 * time.Millisecond,
		Action: ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *Result) error {
			<-ctx.Done()
			done <- struct{}{}
			return ctx.Err()
		}),
	})
	src.write(kv.Join("d", "t", "k"), "x", 1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("action context never expired")
	}
}

func TestJobDeadlineUnregisters(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	id, _ := e.Register(Job{
		Name:     "mortal",
		Hooks:    []Hook{TableHook("d", "t")},
		Action:   col,
		Deadline: 30 * time.Millisecond,
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		found := false
		for _, j := range e.Jobs() {
			if j == id {
				found = true
			}
		}
		if !found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job survived its deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Events after expiry do nothing.
	src.write(kv.Join("d", "t", "k"), "x", 1)
	time.Sleep(50 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("expired job fired")
	}
}

func TestUnregisterStopsJob(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	id, _ := e.Register(Job{Name: "u", Hooks: []Hook{TableHook("d", "t")}, Action: col})
	src.write(kv.Join("d", "t", "k"), "x", 1)
	col.wait(t, 2*time.Second)
	e.Unregister(id)
	src.write(kv.Join("d", "t", "k"), "y", 2)
	time.Sleep(50 * time.Millisecond)
	if col.count() != 1 {
		t.Fatalf("fired %d times after unregister", col.count())
	}
}

func TestMultipleJobsSameKey(t *testing.T) {
	src := newMemSource()
	e := startEngine(t, src, nil)
	c1, c2 := newCollector(), newCollector()
	e.Register(Job{Name: "j1", Hooks: []Hook{TableHook("d", "t")}, Action: c1})
	e.Register(Job{Name: "j2", Hooks: []Hook{DatasetHook("d")}, Action: c2})
	src.write(kv.Join("d", "t", "k"), "x", 1)
	c1.wait(t, 2*time.Second)
	c2.wait(t, 2*time.Second)
}

func TestRegisterValidation(t *testing.T) {
	e, err := NewEngine(Config{Source: newMemSource()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Register(Job{Action: newCollector()}); err == nil {
		t.Fatal("job without hooks accepted")
	}
	if _, err := e.Register(Job{Hooks: []Hook{DatasetHook("d")}}); err == nil {
		t.Fatal("job without action accepted")
	}
}

func TestValueListDelivered(t *testing.T) {
	// write_all value lists reach the action in freshest-first order.
	src := newMemSource()
	e := startEngine(t, src, nil)
	col := newCollector()
	e.Register(Job{Name: "vl", Hooks: []Hook{KeyHook(kv.Join("d", "t", "k"))}, Action: col, Interval: time.Millisecond})

	src.mu.Lock()
	row := &kv.Row{}
	row.ApplyAll(kv.Versioned{Value: []byte("old"), TS: kv.Timestamp{Wall: 1}, Source: "a"})
	row.ApplyAll(kv.Versioned{Value: []byte("new"), TS: kv.Timestamp{Wall: 2}, Source: "b"})
	src.rows[kv.Join("d", "t", "k")] = row
	src.dirty = append(src.dirty, kv.Join("d", "t", "k"))
	src.mu.Unlock()

	cl := col.wait(t, 2*time.Second)
	if len(cl.values) != 2 || cl.values[0] != "new" || cl.values[1] != "old" {
		t.Fatalf("values = %v", cl.values)
	}
}
