package quorum

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sedna/internal/kv"
	"sedna/internal/ring"
)

// fakeCluster is an in-memory Transport with per-node failure injection.
type fakeCluster struct {
	mu    sync.Mutex
	rows  map[ring.NodeID]map[kv.Key]*kv.Row
	dead  map[ring.NodeID]bool
	slow  map[ring.NodeID]time.Duration
	calls map[string]int
}

func newFakeCluster(nodes ...ring.NodeID) *fakeCluster {
	fc := &fakeCluster{
		rows:  map[ring.NodeID]map[kv.Key]*kv.Row{},
		dead:  map[ring.NodeID]bool{},
		slow:  map[ring.NodeID]time.Duration{},
		calls: map[string]int{},
	}
	for _, n := range nodes {
		fc.rows[n] = map[kv.Key]*kv.Row{}
	}
	return fc
}

func (fc *fakeCluster) kill(n ring.NodeID)   { fc.mu.Lock(); fc.dead[n] = true; fc.mu.Unlock() }
func (fc *fakeCluster) revive(n ring.NodeID) { fc.mu.Lock(); delete(fc.dead, n); fc.mu.Unlock() }

func (fc *fakeCluster) row(n ring.NodeID, key kv.Key) *kv.Row {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	r := fc.rows[n][key]
	if r == nil {
		return &kv.Row{}
	}
	return r.Clone()
}

func (fc *fakeCluster) setRow(n ring.NodeID, key kv.Key, r *kv.Row) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.rows[n][key] = r.Clone()
}

func (fc *fakeCluster) checkUp(ctx context.Context, n ring.NodeID) error {
	fc.mu.Lock()
	dead := fc.dead[n]
	delay := fc.slow[n]
	fc.mu.Unlock()
	if dead {
		return errors.New("node down")
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return ctx.Err()
}

func (fc *fakeCluster) WriteReplica(ctx context.Context, n ring.NodeID, key kv.Key, v kv.Versioned, mode Mode) (WriteStatus, error) {
	if err := fc.checkUp(ctx, n); err != nil {
		return 0, err
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.calls["write"]++
	row := fc.rows[n][key]
	if row == nil {
		row = &kv.Row{}
		fc.rows[n][key] = row
	}
	if !v.Dot.IsZero() {
		// Dotted writes take the causal path, like the real replica: a
		// replayed event is idempotent, never outdated.
		row.ApplyCausal(v.Clone(), mode == Latest, 0)
		return WriteOK, nil
	}
	var ok bool
	if mode == Latest {
		ok = row.ApplyLatest(v)
	} else {
		ok = row.ApplyAll(v)
	}
	if !ok {
		return WriteOutdated, nil
	}
	return WriteOK, nil
}

func (fc *fakeCluster) ReadReplica(ctx context.Context, n ring.NodeID, key kv.Key) (*kv.Row, error) {
	if err := fc.checkUp(ctx, n); err != nil {
		return nil, err
	}
	fc.mu.Lock()
	fc.calls["read"]++
	fc.mu.Unlock()
	return fc.row(n, key), nil
}

func (fc *fakeCluster) RepairReplica(ctx context.Context, n ring.NodeID, key kv.Key, row *kv.Row) error {
	if err := fc.checkUp(ctx, n); err != nil {
		return err
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.calls["repair"]++
	cur := fc.rows[n][key]
	if cur == nil {
		cur = &kv.Row{}
		fc.rows[n][key] = cur
	}
	cur.Merge(row)
	return nil
}

var nodes3 = []ring.NodeID{"r1", "r2", "r3"}

func newEngine(t *testing.T, fc *fakeCluster) *Engine {
	t.Helper()
	e, err := NewEngine(Config{N: 3, R: 2, W: 2, Timeout: 300 * time.Millisecond}, fc)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ver(val string, wall int64, src string) kv.Versioned {
	return kv.Versioned{Value: []byte(val), TS: kv.Timestamp{Wall: wall}, Source: src}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{N: 3, R: 2, W: 2}, true},
		{Config{N: 3, R: 1, W: 3}, true},
		{Config{N: 1, R: 1, W: 1}, true},
		{Config{N: 5, R: 2, W: 4}, true},
		{Config{N: 3, R: 1, W: 2}, false}, // R+W == N
		{Config{N: 3, R: 3, W: 1}, false}, // W <= N/2
		{Config{N: 4, R: 3, W: 2}, false}, // W == N/2
		{Config{N: 3, R: 0, W: 2}, false},
		{Config{N: 3, R: 4, W: 2}, false}, // R > N
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReachesAllReplicas(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	res, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked < 2 || res.Outdated {
		t.Fatalf("result = %+v", res)
	}
	// Give stragglers a moment (quorum returns after W acks).
	deadline := time.Now().Add(time.Second)
	for {
		all := true
		for _, n := range nodes3 {
			if v, ok := fc.row(n, "k").Latest(); !ok || string(v.Value) != "v" {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write never reached all replicas")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteSucceedsWithOneDeadReplica(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	fc.kill("r3")
	e := newEngine(t, fc)
	res, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked != 2 {
		t.Fatalf("acked = %d", res.Acked)
	}
	// The dead replica's failure may or may not have been collected before
	// the quorum completed; when it was, it must be r3.
	for _, n := range res.Failed {
		if n != "r3" {
			t.Fatalf("failed = %v", res.Failed)
		}
	}
}

func TestWriteFailsWithTwoDeadReplicas(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	fc.kill("r2")
	fc.kill("r3")
	e := newEngine(t, fc)
	_, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest)
	if !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteOutdatedVerdict(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	if _, err := e.Write(context.Background(), nodes3, "k", ver("new", 10, "s"), Latest); err != nil {
		t.Fatal(err)
	}
	// Let the write land everywhere before racing the stale one.
	time.Sleep(10 * time.Millisecond)
	res, err := e.Write(context.Background(), nodes3, "k", ver("old", 5, "s"), Latest)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outdated {
		t.Fatalf("stale write not reported outdated: %+v", res)
	}
	// Data unchanged.
	read, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := read.Row.Latest(); !ok || string(v.Value) != "new" {
		t.Fatalf("row = %+v", read.Row)
	}
}

func TestWriteAllPerSource(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	if _, err := e.Write(context.Background(), nodes3, "k", ver("a1", 5, "srcA"), All); err != nil {
		t.Fatal(err)
	}
	// Older global timestamp but different source: must be accepted.
	res, err := e.Write(context.Background(), nodes3, "k", ver("b1", 3, "srcB"), All)
	if err != nil || res.Outdated {
		t.Fatalf("cross-source write_all = %+v, %v", res, err)
	}
	read, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if live := read.Row.Live(); len(live) != 2 {
		t.Fatalf("value list = %+v", live)
	}
}

func TestReadConsistent(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest)
	time.Sleep(5 * time.Millisecond)
	res, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent || len(res.Stale) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if v, ok := res.Row.Latest(); !ok || string(v.Value) != "v" {
		t.Fatalf("row = %+v", res.Row)
	}
}

func TestReadMissingKeyIsEmptyRow(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	res, err := e.Read(context.Background(), nodes3, "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Row.Latest(); ok {
		t.Fatal("missing key produced a value")
	}
	if !res.Consistent {
		t.Fatal("three empty rows should be consistent")
	}
}

func TestReadRepairsStaleReplica(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	// r1, r2 hold the new value; r3 holds an old one.
	fresh := &kv.Row{}
	fresh.ApplyLatest(ver("new", 10, "s"))
	stale := &kv.Row{}
	stale.ApplyLatest(ver("old", 1, "s"))
	fc.setRow("r1", "k", fresh)
	fc.setRow("r2", "k", fresh)
	fc.setRow("r3", "k", stale)
	// Slow one fresh replica so the read necessarily observes the stale
	// copy before reaching its quorum (otherwise the early exit may
	// legitimately skip r3 and repair nothing).
	fc.mu.Lock()
	fc.slow["r1"] = 20 * time.Millisecond
	fc.mu.Unlock()

	res, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Row.Latest(); string(v.Value) != "new" {
		t.Fatalf("read returned %q", v.Value)
	}
	// r3 must be repaired asynchronously.
	deadline := time.Now().Add(time.Second)
	for {
		if v, ok := fc.row("r3", "k").Latest(); ok && string(v.Value) == "new" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale replica never repaired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadQuorumWithOneDeadReplica(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest)
	time.Sleep(5 * time.Millisecond)
	fc.kill("r2")
	// Slow r3 so the collector necessarily processes r2's failure before
	// the quorum completes; otherwise the early exit may return before the
	// dead replica is even noticed (which is fine for the protocol but
	// makes the assertion racy).
	fc.mu.Lock()
	fc.slow["r3"] = 20 * time.Millisecond
	fc.mu.Unlock()
	res, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Row.Latest(); !ok || string(v.Value) != "v" {
		t.Fatalf("row = %+v", res.Row)
	}
	if len(res.Failed) != 1 || res.Failed[0] != "r2" {
		t.Fatalf("failed = %v", res.Failed)
	}
}

func TestReadFailsBelowQuorum(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	fc.kill("r1")
	fc.kill("r2")
	e := newEngine(t, fc)
	_, err := e.Read(context.Background(), nodes3, "k")
	if !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadMergesDivergentSources(t *testing.T) {
	// Two concurrent write_all writers each reached a different pair of
	// replicas; a read must merge both contributions.
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	rowA := &kv.Row{}
	rowA.ApplyAll(ver("a", 5, "srcA"))
	rowB := &kv.Row{}
	rowB.ApplyAll(ver("b", 6, "srcB"))
	both := rowA.Clone()
	both.Merge(rowB)
	fc.setRow("r1", "k", rowA)
	fc.setRow("r2", "k", both)
	fc.setRow("r3", "k", rowB)

	res, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if live := res.Row.Live(); len(live) != 2 {
		t.Fatalf("merged = %+v", live)
	}
	// All three replicas converge via repair.
	deadline := time.Now().Add(time.Second)
	for {
		converged := true
		for _, n := range nodes3 {
			if len(fc.row(n, "k").Live()) != 2 {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteParallelNotSequential(t *testing.T) {
	// The paper's headline property (Fig. 7a): Sedna's three replica
	// writes are issued in parallel. With each replica taking ~40ms, a
	// quorum write must complete in ~1 RTT, not 2-3.
	fc := newFakeCluster(nodes3...)
	for _, n := range nodes3 {
		fc.slow[n] = 40 * time.Millisecond
	}
	e := newEngine(t, fc)
	start := time.Now()
	if _, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 90*time.Millisecond {
		t.Fatalf("write took %v; replicas appear sequential", d)
	}
}

func TestWriteQuorumReturnsBeforeSlowStraggler(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	fc.slow["r3"] = 200 * time.Millisecond
	e := newEngine(t, fc)
	start := time.Now()
	res, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("write waited for straggler: %v", d)
	}
	if res.Acked < 2 {
		t.Fatalf("acked = %d", res.Acked)
	}
}

func TestRepairSynchronous(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	row := &kv.Row{}
	row.ApplyLatest(ver("v", 3, "s"))
	if err := e.Repair(context.Background(), nodes3, "k", row); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes3 {
		if v, ok := fc.row(n, "k").Latest(); !ok || string(v.Value) != "v" {
			t.Fatalf("node %s not repaired", n)
		}
	}
	fc.kill("r1")
	if err := e.Repair(context.Background(), nodes3, "k", row); err == nil {
		t.Fatal("repair with dead node reported success")
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	// Lock-free parallel writes on the same key from different sources
	// (§III-F: "allows writes on the same key parallel from different
	// sources without lock mechanism").
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	var wg sync.WaitGroup
	clock := kv.NewClock(1)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v := kv.Versioned{Value: []byte{byte(w), byte(i)}, TS: clock.Now(), Source: "s"}
				e.Write(context.Background(), nodes3, "k", v, Latest)
			}
		}(w)
	}
	wg.Wait()
	// A final read repairs any divergence; afterwards all replicas agree.
	if _, err := e.Read(context.Background(), nodes3, "k"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		a, b, c := fc.row("r1", "k"), fc.row("r2", "k"), fc.row("r3", "k")
		if a.Equal(b) && b.Equal(c) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas diverged:\n r1=%+v\n r2=%+v\n r3=%+v", a.Values, b.Values, c.Values)
		}
		e.Read(context.Background(), nodes3, "k")
		time.Sleep(5 * time.Millisecond)
	}
}
