package quorum

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/ring"
)

// This file implements the multi-key batch operations: ReadBatch and
// WriteBatch take many keys at once, group them by replica node, ship one
// frame per node carrying all of that node's keys, and settle the quorum
// PER KEY as replies arrive. A batch is therefore never all-or-nothing: a
// dark replica fails exactly the keys it owns, and those keys flow through
// the same read-repair and hint hooks as single-key operations.

// NodeWrite is one key's write as shipped to one replica node inside a
// batch frame.
type NodeWrite struct {
	Key  kv.Key
	V    kv.Versioned
	Mode Mode
}

// WriteAck is one replica's per-key verdict inside a batch frame.
type WriteAck struct {
	Status WriteStatus
	Err    error
}

// ReadAck is one replica's per-key row inside a batch frame. A missing row
// is an empty Row; Err marks a per-key replica failure (e.g. a corrupt row).
type ReadAck struct {
	Row *kv.Row
	Err error
}

// BatchTransport is the optional batch extension of Transport: one frame
// carries every key of the batch that one replica node holds. A frame-level
// error fails every key in the frame; otherwise the acks align index-for-
// index with the request slice. The engine falls back to per-key Transport
// calls when the transport does not implement this interface, so batch
// semantics never depend on the transport generation.
type BatchTransport interface {
	WriteReplicaBatch(ctx context.Context, node ring.NodeID, items []NodeWrite) ([]WriteAck, error)
	ReadReplicaBatch(ctx context.Context, node ring.NodeID, keys []kv.Key) ([]ReadAck, error)
}

// BatchWrite is one key of a WriteBatch call.
type BatchWrite struct {
	Key      kv.Key
	Replicas []ring.NodeID
	V        kv.Versioned
	Mode     Mode
}

// BatchRead is one key of a ReadBatch call.
type BatchRead struct {
	Key      kv.Key
	Replicas []ring.NodeID
}

// KeyWriteResult is the per-key outcome of a WriteBatch: the usual quorum
// write summary plus a per-key error (quorum not reached). Outdated is a
// verdict, not an error, exactly as in the single-key Write.
type KeyWriteResult struct {
	WriteResult
	Err error
}

// KeyReadResult is the per-key outcome of a ReadBatch.
type KeyReadResult struct {
	ReadResult
	Err error
}

// writeNodeBatch ships one write frame to a node, falling back to per-key
// calls when the transport has no batch support.
func (e *Engine) writeNodeBatch(ctx context.Context, node ring.NodeID, frame []NodeWrite) ([]WriteAck, error) {
	if bt, ok := e.rt.(BatchTransport); ok {
		return bt.WriteReplicaBatch(ctx, node, frame)
	}
	acks := make([]WriteAck, len(frame))
	for j, w := range frame {
		st, err := e.rt.WriteReplica(ctx, node, w.Key, w.V, w.Mode)
		acks[j] = WriteAck{Status: st, Err: err}
	}
	return acks, nil
}

// readNodeBatch ships one read frame to a node, with the same fallback.
func (e *Engine) readNodeBatch(ctx context.Context, node ring.NodeID, keys []kv.Key) ([]ReadAck, error) {
	if bt, ok := e.rt.(BatchTransport); ok {
		return bt.ReadReplicaBatch(ctx, node, keys)
	}
	acks := make([]ReadAck, len(keys))
	for j, k := range keys {
		row, err := e.rt.ReadReplica(ctx, node, k)
		acks[j] = ReadAck{Row: row, Err: err}
	}
	return acks, nil
}

// groupByNode inverts the per-key replica sets into one frame per node; the
// returned map holds indices into the batch.
func groupByNode(n int, replicasOf func(i int) []ring.NodeID) map[ring.NodeID][]int {
	groups := map[ring.NodeID][]int{}
	for i := 0; i < n; i++ {
		for _, node := range replicasOf(i) {
			groups[node] = append(groups[node], i)
		}
	}
	return groups
}

// --- pooled batch scratch ---
//
// Every batch call used to allocate a fresh per-key status vector plus one
// frame slice per replica node; at batch rates that is the dominant source
// of collector garbage, so the vectors are pooled. Pooled state never
// escapes: anything handed to the caller (Failed lists) is either copied or
// freshly appended per batch, and the per-node frame slices die inside the
// detached fan-out goroutines that return them.

// writeKeyState tracks one key's quorum settling inside WriteBatch.
type writeKeyState struct {
	need, total     int
	acked, outdated int
	answered        int
	failed          []ring.NodeID
	firstErr        error
	done            bool
}

// readKeyGot is one replica's row for one key inside ReadBatch.
type readKeyGot struct {
	node ring.NodeID
	row  *kv.Row
}

// readKeyState tracks one key's quorum settling inside ReadBatch.
type readKeyState struct {
	need, total int
	answered    int
	rows        []readKeyGot
	failed      []ring.NodeID
	done        bool
}

var (
	writeStatePool = sync.Pool{New: func() any { return new([]writeKeyState) }}
	readStatePool  = sync.Pool{New: func() any { return new([]readKeyState) }}
	nodeWritePool  = sync.Pool{New: func() any { return new([]NodeWrite) }}
	nodeKeysPool   = sync.Pool{New: func() any { return new([]kv.Key) }}
)

func getWriteStates(n int) *[]writeKeyState {
	sp := writeStatePool.Get().(*[]writeKeyState)
	if cap(*sp) < n {
		*sp = make([]writeKeyState, n)
	} else {
		*sp = (*sp)[:n]
		clear(*sp)
	}
	return sp
}

func getReadStates(n int) *[]readKeyState {
	sp := readStatePool.Get().(*[]readKeyState)
	if cap(*sp) < n {
		*sp = make([]readKeyState, n)
	} else {
		*sp = (*sp)[:n]
		clear(*sp)
	}
	return sp
}

func getNodeWrites(n int) *[]NodeWrite {
	sp := nodeWritePool.Get().(*[]NodeWrite)
	if cap(*sp) < n {
		*sp = make([]NodeWrite, n)
	} else {
		*sp = (*sp)[:n]
	}
	return sp
}

// putNodeWrites clears the frame before pooling so the pool does not pin
// value bytes or keys until the next reuse.
func putNodeWrites(sp *[]NodeWrite) {
	clear(*sp)
	nodeWritePool.Put(sp)
}

func getNodeKeys(n int) *[]kv.Key {
	sp := nodeKeysPool.Get().(*[]kv.Key)
	if cap(*sp) < n {
		*sp = make([]kv.Key, n)
	} else {
		*sp = (*sp)[:n]
	}
	return sp
}

func putNodeKeys(sp *[]kv.Key) {
	clear(*sp)
	nodeKeysPool.Put(sp)
}

// WriteBatch sends every item's value to its replicas using one frame per
// distinct node and settles the W-of-N quorum independently per key. The
// result slice aligns with items. Failed replica writes — including
// stragglers that miss a key's early settle — feed the OnWriteError hook,
// so hinted handoff works exactly as for single-key writes.
func (e *Engine) WriteBatch(ctx context.Context, items []BatchWrite) []KeyWriteResult {
	out := make([]KeyWriteResult, len(items))
	if len(items) == 0 {
		return out
	}
	start := time.Now()
	defer func() {
		e.hBatchWriteWait.Observe(time.Since(start))
		obs.Mark(ctx, "quorum.batch_write_done")
	}()
	e.nBatchKeys.Add(uint64(len(items)))
	obs.Mark(ctx, "quorum.batch_fanout")

	stp := getWriteStates(len(items))
	defer writeStatePool.Put(stp)
	st := *stp
	undecided := 0
	for i, it := range items {
		if len(it.Replicas) == 0 {
			out[i].Err = fmt.Errorf("%w: no replicas for key %q", ErrQuorumFailed, it.Key)
			st[i].done = true
			continue
		}
		need := e.cfg.W
		if need > len(it.Replicas) {
			need = len(it.Replicas)
		}
		st[i] = writeKeyState{need: need, total: len(it.Replicas)}
		undecided++
	}
	if undecided == 0 {
		return out
	}
	groups := groupByNode(len(items), func(i int) []ring.NodeID {
		if st[i].done {
			return nil
		}
		return items[i].Replicas
	})

	type nodeReply struct {
		node ring.NodeID
		idxs []int
		acks []WriteAck
		err  error
	}
	ch := make(chan nodeReply, len(groups))
	budget := int32(e.cfg.RetryBudget)
	for node, idxs := range groups {
		go func(node ring.NodeID, idxs []int) {
			// As in the single-key path, each frame gets the full timeout
			// detached from the collector: a key settling early must not
			// abort the frame still in flight to a straggler, and a frame
			// that ultimately fails must still feed the hint hook.
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), e.cfg.Timeout)
			defer cancel()
			framep := getNodeWrites(len(idxs))
			defer putNodeWrites(framep)
			frame := *framep
			for j, i := range idxs {
				frame[j] = NodeWrite{Key: items[i].Key, V: items[i].V, Mode: items[i].Mode}
			}
			e.nBatchFrames.Inc()
			acks, err := e.writeNodeBatch(cctx, node, frame)
			for attempt := 0; err != nil && e.retry(cctx, &budget, attempt, err); attempt++ {
				acks, err = e.writeNodeBatch(cctx, node, frame)
			}
			for j, i := range idxs {
				if err != nil || acks[j].Err != nil {
					e.writeFailed(node, items[i].Key, items[i].V, items[i].Mode)
				}
			}
			ch <- nodeReply{node: node, idxs: idxs, acks: acks, err: err}
		}(node, idxs)
	}

	decided := 0
	for replies := 0; decided < undecided && replies < len(groups); replies++ {
		r := <-ch
		for j, i := range r.idxs {
			s := &st[i]
			if s.done {
				continue
			}
			s.answered++
			status, ackErr := WriteOK, r.err
			if r.err == nil {
				status, ackErr = r.acks[j].Status, r.acks[j].Err
			}
			switch {
			case ackErr != nil:
				if s.firstErr == nil {
					s.firstErr = ackErr
				}
				s.failed = append(s.failed, r.node)
			case status == WriteOK:
				s.acked++
			default:
				s.outdated++
			}
			// Per-key settle, same rules as the single-key Write: a quorum
			// of acks wins, a quorum of outdated (or a settled split with
			// any outdated) reports the raced write, and only once every
			// replica answered short of the quorum does the key fail.
			switch {
			case s.acked >= s.need:
				s.done = true
			case s.outdated >= s.need, s.acked+s.outdated >= s.need && s.outdated > 0:
				s.done = true
				out[i].Outdated = true
			case s.answered == s.total:
				s.done = true
				if s.firstErr != nil {
					out[i].Err = fmt.Errorf("%w: %d/%d acks for key %q (first error: %v)",
						ErrQuorumFailed, s.acked, s.need, items[i].Key, s.firstErr)
				} else {
					out[i].Err = fmt.Errorf("%w: %d/%d acks for key %q",
						ErrQuorumFailed, s.acked, s.need, items[i].Key)
				}
			}
			if s.done {
				decided++
				out[i].Acked = s.acked
				out[i].Failed = append([]ring.NodeID(nil), s.failed...)
				if out[i].Outdated {
					e.nConflicts.Inc()
				}
				if out[i].Err != nil {
					e.nBatchKeyFailures.Inc()
				}
			}
		}
	}
	return out
}

// ReadBatch fetches every key's row from its replicas using one frame per
// distinct node and settles the R-of-N quorum independently per key: a key
// is decided as soon as R equal copies are in hand, or once every replica
// answered — merging what arrived (eventual consistency) and repairing the
// laggards, exactly as the single-key Read does. The result slice aligns
// with items.
func (e *Engine) ReadBatch(ctx context.Context, items []BatchRead) []KeyReadResult {
	out := make([]KeyReadResult, len(items))
	if len(items) == 0 {
		return out
	}
	start := time.Now()
	defer func() {
		e.hBatchReadWait.Observe(time.Since(start))
		obs.Mark(ctx, "quorum.batch_read_done")
	}()
	e.nBatchKeys.Add(uint64(len(items)))
	obs.Mark(ctx, "quorum.batch_fanout")

	stp := getReadStates(len(items))
	defer readStatePool.Put(stp)
	st := *stp
	undecided := 0
	for i, it := range items {
		if len(it.Replicas) == 0 {
			out[i].Err = fmt.Errorf("%w: no replicas for key %q", ErrQuorumFailed, it.Key)
			st[i].done = true
			continue
		}
		need := e.cfg.R
		if need > len(it.Replicas) {
			need = len(it.Replicas)
		}
		st[i] = readKeyState{need: need, total: len(it.Replicas)}
		undecided++
	}
	if undecided == 0 {
		return out
	}
	groups := groupByNode(len(items), func(i int) []ring.NodeID {
		if st[i].done {
			return nil
		}
		return items[i].Replicas
	})

	type nodeReply struct {
		node ring.NodeID
		idxs []int
		acks []ReadAck
		err  error
	}
	ch := make(chan nodeReply, len(groups))
	budget := int32(e.cfg.RetryBudget)
	for node, idxs := range groups {
		go func(node ring.NodeID, idxs []int) {
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), e.cfg.Timeout)
			defer cancel()
			keysp := getNodeKeys(len(idxs))
			defer putNodeKeys(keysp)
			keys := *keysp
			for j, i := range idxs {
				keys[j] = items[i].Key
			}
			e.nBatchFrames.Inc()
			acks, err := e.readNodeBatch(cctx, node, keys)
			for attempt := 0; err != nil && e.retry(cctx, &budget, attempt, err); attempt++ {
				acks, err = e.readNodeBatch(cctx, node, keys)
			}
			ch <- nodeReply{node: node, idxs: idxs, acks: acks, err: err}
		}(node, idxs)
	}

	// rowsScratch is reused across settle calls and early-exit checks; only
	// the collector loop (single goroutine) touches it.
	var rowsScratch []*kv.Row

	// settle finalises one decided key: merge what arrived, flag
	// inconsistency, and push the merged row to the laggards.
	settle := func(i int, s *readKeyState) {
		merged := &kv.Row{}
		for _, g := range s.rows {
			merged.Merge(g.row)
		}
		merged.Dirty = false
		res := ReadResult{Row: merged, Failed: s.failed}
		var stale []ring.NodeID
		equal := 0
		for _, g := range s.rows {
			if g.row.Equal(merged) {
				equal++
			} else {
				stale = append(stale, g.node)
			}
		}
		res.Consistent = equal >= s.need
		res.Stale = stale
		if !res.Consistent {
			e.nInconsistent.Inc()
		}
		if len(stale) > 0 {
			e.nReadRepairs.Add(uint64(len(stale)))
			e.repairAsync(items[i].Replicas, items[i].Key, merged, stale)
		}
		out[i].ReadResult = res
	}

	decided := 0
	for replies := 0; decided < undecided && replies < len(groups); replies++ {
		r := <-ch
		for j, i := range r.idxs {
			s := &st[i]
			if s.done {
				continue
			}
			s.answered++
			ackErr := r.err
			var row *kv.Row
			if r.err == nil {
				row, ackErr = r.acks[j].Row, r.acks[j].Err
			}
			if ackErr != nil {
				s.failed = append(s.failed, r.node)
			} else {
				if row == nil {
					row = &kv.Row{}
				}
				s.rows = append(s.rows, readKeyGot{node: r.node, row: row})
			}
			// Early exit per key: R equal rows already in hand.
			if !s.done && len(s.rows) >= s.need {
				rowsScratch = rowsScratch[:0]
				for _, g := range s.rows {
					rowsScratch = append(rowsScratch, g.row)
				}
				if maxEqualGroup(rowsScratch) >= s.need {
					s.done = true
				}
			}
			if !s.done && s.answered == s.total {
				s.done = true
				if len(s.rows) < s.need {
					out[i].Err = fmt.Errorf("%w: %d/%d replies for key %q",
						ErrQuorumFailed, len(s.rows), s.need, items[i].Key)
					out[i].Failed = append([]ring.NodeID(nil), s.failed...)
					e.nBatchKeyFailures.Inc()
				}
			}
			if s.done {
				decided++
				if out[i].Err == nil {
					settle(i, s)
				}
			}
		}
	}
	return out
}
