// Package quorum implements Sedna's replication protocol (§III-C): N
// replicas per datum, eventually consistent under the quorum constraints
//
//	R + W > N   and   W > N/2,
//
// lock-free timestamped writes in two flavours (write_latest overwrites the
// whole value, write_all only the element from the same source), reads that
// wait for R equal copies, and read repair that pushes the merged freshest
// state back to stale or recovering replicas.
//
// The engine is transport-agnostic: internal/core wires it to the replica
// RPCs, tests wire it to an in-memory fake with injected failures.
package quorum

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/ring"
	"sedna/internal/transport"
)

// Mode selects the replica-side conflict rule.
type Mode int

const (
	// Latest is write_latest: a newer timestamp replaces the whole row.
	Latest Mode = iota
	// All is write_all: only the element from the same source is
	// compared and replaced.
	All
)

// String names the mode.
func (m Mode) String() string {
	if m == Latest {
		return "latest"
	}
	return "all"
}

// WriteStatus is a replica's verdict on one write.
type WriteStatus int

const (
	// WriteOK means the replica accepted the write ("ok").
	WriteOK WriteStatus = iota
	// WriteOutdated means the replica holds something newer ("outdated").
	WriteOutdated
)

// Transport issues replica-level operations. Implementations must honour
// ctx; an error return means the replica is unreachable or failed (a
// protocol-level "outdated" is a WriteStatus, not an error).
type Transport interface {
	// WriteReplica applies one versioned value to the row at key on node.
	WriteReplica(ctx context.Context, node ring.NodeID, key kv.Key, v kv.Versioned, mode Mode) (WriteStatus, error)
	// ReadReplica fetches the row at key from node; a missing row comes
	// back as an empty Row, not an error.
	ReadReplica(ctx context.Context, node ring.NodeID, key kv.Key) (*kv.Row, error)
	// RepairReplica merges the given row into node's copy (anti-entropy).
	RepairReplica(ctx context.Context, node ring.NodeID, key kv.Key, row *kv.Row) error
}

// Config fixes the quorum parameters.
type Config struct {
	// N is the replication degree; the paper uses 3.
	N int
	// R and W are the read and write quorums; the paper's example uses
	// R = W = 2 with N = 3.
	R int
	W int
	// Timeout bounds one replica operation; zero selects 500ms.
	Timeout time.Duration
	// RetryBudget bounds the total re-sends one quorum op may issue across
	// all its replicas. Every replica op here is idempotent — reads,
	// repairs, and timestamped writes whose exact duplicate is recognised
	// as already applied — so re-sending is safe. Zero disables retries.
	RetryBudget int
	// RetryBackoff is the base delay before a re-send, doubled per attempt
	// and jittered; zero selects 10ms.
	RetryBackoff time.Duration
}

// DefaultConfig returns the paper's N=3, R=2, W=2.
func DefaultConfig() Config {
	return Config{N: 3, R: 2, W: 2, Timeout: 500 * time.Millisecond,
		RetryBudget: 2, RetryBackoff: 10 * time.Millisecond}
}

// Validate enforces the paper's two constraints.
func (c Config) Validate() error {
	if c.N <= 0 || c.R <= 0 || c.W <= 0 {
		return errors.New("quorum: N, R, W must be positive")
	}
	if c.R+c.W <= c.N {
		return fmt.Errorf("quorum: need R+W > N, got R=%d W=%d N=%d", c.R, c.W, c.N)
	}
	if 2*c.W <= c.N {
		return fmt.Errorf("quorum: need W > N/2, got W=%d N=%d", c.W, c.N)
	}
	if c.R > c.N || c.W > c.N {
		return fmt.Errorf("quorum: R and W cannot exceed N (R=%d W=%d N=%d)", c.R, c.W, c.N)
	}
	return nil
}

// ErrQuorumFailed reports too few reachable replicas.
var ErrQuorumFailed = errors.New("quorum: not enough replicas reachable")

// WriteResult summarises one quorum write.
type WriteResult struct {
	// Acked counts replicas that accepted the write.
	Acked int
	// Outdated reports that the quorum judged the write stale: the caller
	// receives the paper's "outdated" reply.
	Outdated bool
	// Failed lists replicas that did not respond; the caller schedules
	// recovery for them (§III-C).
	Failed []ring.NodeID
}

// ReadResult summarises one quorum read.
type ReadResult struct {
	// Row is the merged row (never nil; may hold no values).
	Row *kv.Row
	// Consistent reports that at least R replicas returned equal rows.
	Consistent bool
	// Stale lists replicas whose copies lagged and were repaired.
	Stale []ring.NodeID
	// Failed lists unreachable replicas.
	Failed []ring.NodeID
}

// Engine executes quorum operations over a Transport.
type Engine struct {
	cfg Config
	rt  Transport

	// onRepairError, when set, observes every failed repair delivery with
	// the row that should have landed; core feeds it into the hint queue.
	onRepairError atomic.Pointer[func(node ring.NodeID, key kv.Key, row *kv.Row)]
	// onWriteError observes every replica write that ultimately failed.
	// It fires from the write goroutine itself, so failures are captured
	// even when the quorum already settled and Write returned — the
	// straggler's miss must not be lost just because the caller moved on.
	onWriteError atomic.Pointer[func(node ring.NodeID, key kv.Key, v kv.Versioned, mode Mode)]

	hWriteWait, hReadWait           *obs.Histogram
	hBatchWriteWait, hBatchReadWait *obs.Histogram
	nConflicts                      *obs.Counter
	nReadRepairs                    *obs.Counter
	nInconsistent                   *obs.Counter
	nRepairErrors                   *obs.Counter
	nRetries                        *obs.Counter
	nOverload                       *obs.Counter
	nBatchKeys                      *obs.Counter
	nBatchFrames                    *obs.Counter
	nBatchKeyFailures               *obs.Counter
}

// NewEngine validates the config and returns an engine.
func NewEngine(cfg Config, rt Transport) (*Engine, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, rt: rt}, nil
}

// Instrument wires the engine into an obs registry: quorum wait histograms
// (time from fan-out to quorum decision) and counters for write conflicts,
// read repairs and inconsistent reads. Nil handles stay no-ops, so an
// uninstrumented engine pays nothing.
func (e *Engine) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	e.hWriteWait = r.Histogram("quorum.write.wait")
	e.hReadWait = r.Histogram("quorum.read.wait")
	e.nConflicts = r.Counter("quorum.conflicts")
	e.nReadRepairs = r.Counter("quorum.read_repairs")
	e.nInconsistent = r.Counter("quorum.inconsistent_reads")
	e.nRepairErrors = r.Counter("quorum.repair_errors")
	e.nRetries = r.Counter("quorum.retries")
	e.nOverload = r.Counter("quorum.overload_pushback")
	e.hBatchWriteWait = r.Histogram("quorum.batch.write.wait")
	e.hBatchReadWait = r.Histogram("quorum.batch.read.wait")
	e.nBatchKeys = r.Counter("quorum.batch.keys")
	e.nBatchFrames = r.Counter("quorum.batch.frames")
	e.nBatchKeyFailures = r.Counter("quorum.batch.key_failures")
}

// OnRepairError installs fn to observe every failed repair delivery (both
// the asynchronous read-repair path and synchronous Repair). The row passed
// to fn is a private clone. Safe to call concurrently with operations.
func (e *Engine) OnRepairError(fn func(node ring.NodeID, key kv.Key, row *kv.Row)) {
	e.onRepairError.Store(&fn)
}

// OnWriteError installs fn to observe every replica write that failed after
// retries, with the versioned value that should have landed and the write
// mode it carried (hint construction is mode-dependent). Unlike the
// WriteResult.Failed list — which only covers replies that arrived before
// the quorum settled — this hook sees stragglers too.
func (e *Engine) OnWriteError(fn func(node ring.NodeID, key kv.Key, v kv.Versioned, mode Mode)) {
	e.onWriteError.Store(&fn)
}

// writeFailed records one ultimately-failed replica write.
func (e *Engine) writeFailed(node ring.NodeID, key kv.Key, v kv.Versioned, mode Mode) {
	if fn := e.onWriteError.Load(); fn != nil {
		(*fn)(node, key, v, mode)
	}
}

// repairFailed records one failed repair delivery.
func (e *Engine) repairFailed(node ring.NodeID, key kv.Key, row *kv.Row) {
	e.nRepairErrors.Inc()
	if fn := e.onRepairError.Load(); fn != nil {
		(*fn)(node, key, row.Clone())
	}
}

// retryable classifies an error for re-send purposes: remote handler
// verdicts mean the node answered, caller cancellations are not the node's
// fault, and an open breaker means re-sending would only fast-fail again.
// transport.ErrOverloaded (a shed, not a death) deliberately stays
// retryable: the jittered backoff below is exactly the pushback response
// the staged transport asks for.
func retryable(err error) bool {
	if err == nil || transport.IsRemote(err) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, transport.ErrBreakerOpen) {
		return false
	}
	return true
}

// retry reports whether a failed replica op should be re-sent, consuming
// one unit of the op's shared budget and sleeping the jittered exponential
// backoff (bounded by ctx) before returning true.
func (e *Engine) retry(ctx context.Context, budget *int32, attempt int, err error) bool {
	if e.cfg.RetryBudget <= 0 || !retryable(err) {
		return false
	}
	if errors.Is(err, transport.ErrOverloaded) {
		e.nOverload.Inc()
	}
	if atomic.AddInt32(budget, -1) < 0 {
		return false
	}
	base := e.cfg.RetryBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	// Clamp the exponent BEFORE shifting: a large attempt count would
	// overflow base << attempt to a non-positive duration, skip the d > max
	// clamp, and fire the timer immediately — a hot retry loop.
	shift := attempt
	if shift > 3 {
		shift = 3 // cap matches the 8*base backoff ceiling
	}
	d := base << shift
	if max := 8 * base; d > max || d <= 0 {
		d = max
	}
	d += time.Duration(rand.Int63n(int64(base)/2 + 1))
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
		return false
	case <-t.C:
	}
	e.nRetries.Inc()
	return true
}

// Config returns the engine's quorum parameters.
func (e *Engine) Config() Config { return e.cfg }

// Write sends v to every replica in parallel and succeeds once W replicas
// acked (§III-C: "if more than W nodes return the same version number then
// the write is considered success"). It does not wait for stragglers beyond
// the quorum; a straggler that later fails is reported through the
// OnWriteError hook, not the returned Failed list.
func (e *Engine) Write(ctx context.Context, replicas []ring.NodeID, key kv.Key, v kv.Versioned, mode Mode) (result WriteResult, err error) {
	if len(replicas) == 0 {
		return WriteResult{}, fmt.Errorf("%w: no replicas for key %q", ErrQuorumFailed, key)
	}
	start := time.Now()
	defer func() {
		e.hWriteWait.Observe(time.Since(start))
		if result.Outdated {
			e.nConflicts.Inc()
		}
		obs.Mark(ctx, "quorum.write_done")
	}()
	obs.Mark(ctx, "quorum.fanout")
	type reply struct {
		node   ring.NodeID
		status WriteStatus
		err    error
	}
	ch := make(chan reply, len(replicas))
	budget := int32(e.cfg.RetryBudget)
	for _, node := range replicas {
		go func(node ring.NodeID) {
			// Each replica write gets the full timeout, detached from the
			// collector: returning after W acks must not abort the write
			// still in flight to the straggler (the replica would silently
			// miss the update and stay stale until read repair).
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), e.cfg.Timeout)
			defer cancel()
			st, err := e.rt.WriteReplica(cctx, node, key, v, mode)
			// Timestamped writes are idempotent (an exact duplicate is
			// recognised as applied), so transient failures are re-sent
			// within the replica's timeout window.
			for attempt := 0; err != nil && e.retry(cctx, &budget, attempt, err); attempt++ {
				st, err = e.rt.WriteReplica(cctx, node, key, v, mode)
			}
			if err != nil {
				e.writeFailed(node, key, v, mode)
			}
			ch <- reply{node: node, status: st, err: err}
		}(node)
	}

	need := e.cfg.W
	if need > len(replicas) {
		need = len(replicas)
	}
	var res WriteResult
	outdated := 0
	responded := 0
	var firstErr error
	for i := 0; i < len(replicas); i++ {
		r := <-ch
		responded++
		switch {
		case r.err != nil:
			if firstErr == nil {
				firstErr = r.err
			}
			res.Failed = append(res.Failed, r.node)
		case r.status == WriteOK:
			res.Acked++
		default:
			outdated++
		}
		if res.Acked >= need {
			return res, nil
		}
		if outdated >= need {
			res.Outdated = true
			return res, nil
		}
		// Even a split verdict (some ok, some outdated) settles once a
		// quorum of replicas has answered: the freshest data wins
		// eventually via read repair, and the caller learns it raced.
		if res.Acked+outdated >= need && outdated > 0 {
			res.Outdated = true
			return res, nil
		}
	}
	if res.Acked >= need {
		return res, nil
	}
	if firstErr != nil {
		return res, fmt.Errorf("%w: %d/%d acks for key %q (first error: %v)", ErrQuorumFailed, res.Acked, need, key, firstErr)
	}
	return res, fmt.Errorf("%w: %d/%d acks for key %q", ErrQuorumFailed, res.Acked, need, key)
}

// Read fetches the row from every replica, waits for R equal copies, and
// returns the merged freshest row. Divergent or unreachable replicas are
// reported for repair; when no R copies agree the engine merges what it has
// (eventual consistency) and flags the result inconsistent after repairing
// the laggards.
func (e *Engine) Read(ctx context.Context, replicas []ring.NodeID, key kv.Key) (ReadResult, error) {
	if len(replicas) == 0 {
		return ReadResult{}, fmt.Errorf("%w: no replicas for key %q", ErrQuorumFailed, key)
	}
	start := time.Now()
	defer func() {
		e.hReadWait.Observe(time.Since(start))
		obs.Mark(ctx, "quorum.read_done")
	}()
	obs.Mark(ctx, "quorum.fanout")
	type reply struct {
		node ring.NodeID
		row  *kv.Row
		err  error
	}
	ch := make(chan reply, len(replicas))
	budget := int32(e.cfg.RetryBudget)
	for _, node := range replicas {
		go func(node ring.NodeID) {
			cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), e.cfg.Timeout)
			defer cancel()
			row, err := e.rt.ReadReplica(cctx, node, key)
			for attempt := 0; err != nil && e.retry(cctx, &budget, attempt, err); attempt++ {
				row, err = e.rt.ReadReplica(cctx, node, key)
			}
			ch <- reply{node: node, row: row, err: err}
		}(node)
	}

	need := e.cfg.R
	if need > len(replicas) {
		need = len(replicas)
	}
	var got []reply
	var failed []ring.NodeID
	for i := 0; i < len(replicas); i++ {
		r := <-ch
		if r.err != nil {
			failed = append(failed, r.node)
			continue
		}
		if r.row == nil {
			r.row = &kv.Row{}
		}
		got = append(got, r)
		// Early exit: R equal rows already in hand.
		if len(got) >= need {
			rows := make([]*kv.Row, len(got))
			for j, g := range got {
				rows[j] = g.row
			}
			if maxEqualGroup(rows) >= need {
				break
			}
		}
	}
	if len(got) < need {
		return ReadResult{Failed: failed}, fmt.Errorf("%w: %d/%d replies for key %q", ErrQuorumFailed, len(got), need, key)
	}

	// Merge everything we saw; the merge is the CRDT union, so it is the
	// freshest combined state.
	merged := &kv.Row{}
	for _, r := range got {
		merged.Merge(r.row)
	}
	merged.Dirty = false

	res := ReadResult{Row: merged, Failed: failed}
	var stale []ring.NodeID
	equal := 0
	for _, r := range got {
		if r.row.Equal(merged) {
			equal++
		} else {
			stale = append(stale, r.node)
		}
	}
	res.Consistent = equal >= need
	res.Stale = stale
	if !res.Consistent {
		e.nInconsistent.Inc()
	}

	// Read repair: push the merged row to stale replicas asynchronously
	// (§III-C's "data duplication task ... asynchronously").
	if len(stale) > 0 {
		e.nReadRepairs.Add(uint64(len(stale)))
		e.repairAsync(replicas, key, merged, stale)
	}
	return res, nil
}

// maxEqualGroup returns the size of the largest set of pairwise-equal rows.
func maxEqualGroup(rows []*kv.Row) int {
	best := 0
	for i := range rows {
		n := 0
		for j := range rows {
			if rows[i].Equal(rows[j]) {
				n++
			}
		}
		if n > best {
			best = n
		}
	}
	return best
}

func (e *Engine) repairAsync(replicas []ring.NodeID, key kv.Key, row *kv.Row, stale []ring.NodeID) {
	clone := row.Clone()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), e.cfg.Timeout)
		defer cancel()
		var wg sync.WaitGroup
		for _, node := range stale {
			wg.Add(1)
			go func(node ring.NodeID) {
				defer wg.Done()
				if err := e.rt.RepairReplica(ctx, node, key, clone); err != nil {
					// No in-place retry: the hint queue owns redelivery.
					e.repairFailed(node, key, clone)
				}
			}(node)
		}
		wg.Wait()
	}()
}

// Repair synchronously merges row into every listed replica, used by
// recovery tasks re-building a lost node.
func (e *Engine) Repair(ctx context.Context, nodes []ring.NodeID, key kv.Key, row *kv.Row) error {
	ctx, cancel := context.WithTimeout(ctx, e.cfg.Timeout)
	defer cancel()
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	budget := int32(e.cfg.RetryBudget)
	for _, node := range nodes {
		wg.Add(1)
		go func(node ring.NodeID) {
			defer wg.Done()
			err := e.rt.RepairReplica(ctx, node, key, row)
			for attempt := 0; err != nil && e.retry(ctx, &budget, attempt, err); attempt++ {
				err = e.rt.RepairReplica(ctx, node, key, row)
			}
			if err != nil {
				e.repairFailed(node, key, row)
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(node)
	}
	wg.Wait()
	return firstErr
}
