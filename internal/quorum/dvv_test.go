package quorum

import (
	"context"
	"testing"
	"time"

	"sedna/internal/kv"
)

func dottedVer(val string, wall int64, src string, dot kv.Dot, ctx kv.DVV) kv.Versioned {
	return kv.Versioned{
		Value:  []byte(val),
		TS:     kv.Timestamp{Wall: wall, Node: dot.Node},
		Source: src,
		Dot:    dot,
		Ctx:    ctx,
	}
}

// TestReadMergesConcurrentSiblings: two writers raced to different replicas;
// a quorum read must surface BOTH values (the causal merge), not silently
// pick a timestamp winner.
func TestReadMergesConcurrentSiblings(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	a := &kv.Row{}
	a.ApplyCausal(dottedVer("from-a", 5, "sA", kv.Dot{Node: 1, Counter: 1}, nil), true, 0)
	b := &kv.Row{}
	b.ApplyCausal(dottedVer("from-b", 6, "sB", kv.Dot{Node: 2, Counter: 1}, nil), true, 0)
	fc.setRow("r1", "k", a)
	fc.setRow("r2", "k", b)
	fc.setRow("r3", "k", a)
	// Slow one a-holder: two equal rows would satisfy R=2 via the early
	// exit without ever observing b's sibling.
	fc.mu.Lock()
	fc.slow["r3"] = 20 * time.Millisecond
	fc.mu.Unlock()

	res, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Row.Live()); n != 2 {
		t.Fatalf("merged read has %d live values, want both siblings: %+v", n, res.Row.Values)
	}
	if v, ok := res.Row.Latest(); !ok || string(v.Value) != "from-b" {
		t.Fatalf("merged winner = %+v, %v", v, ok)
	}
}

// TestDottedWriteReplayNotOutdated: redelivering the same dotted write (a
// coordinator retry) is idempotent — never WriteOutdated, one stored value.
func TestDottedWriteReplayNotOutdated(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	v := dottedVer("x", 3, "s1", kv.Dot{Node: 1, Counter: 1}, nil)
	for i := 0; i < 2; i++ {
		res, err := e.Write(context.Background(), nodes3, "k", v, Latest)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outdated {
			t.Fatalf("attempt %d reported outdated", i)
		}
	}
	if got := fc.row("r1", "k"); len(got.Values) != 1 {
		t.Fatalf("replay duplicated the value: %+v", got.Values)
	}
}

// TestReadRepairShipsCausalRow: the repair payload is the merged causal row —
// delivering it must retire the stale replica's superseded sibling (its dot
// is covered by the merged clock and no longer held), not duplicate values.
func TestReadRepairShipsCausalRow(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	old := dottedVer("old", 1, "s1", kv.Dot{Node: 1, Counter: 1}, nil)
	stale := &kv.Row{}
	stale.ApplyCausal(old.Clone(), true, 0)
	var ctx kv.DVV
	ctx.Fold(old.Dot)
	fresh := stale.Clone()
	fresh.ApplyCausal(dottedVer("new", 2, "s2", kv.Dot{Node: 2, Counter: 1}, ctx), true, 0)
	fc.setRow("r1", "k", fresh)
	fc.setRow("r2", "k", fresh)
	fc.setRow("r3", "k", stale)
	fc.mu.Lock()
	fc.slow["r1"] = 20 * time.Millisecond
	fc.mu.Unlock()

	res, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Row.Values) != 1 || string(res.Row.Values[0].Value) != "new" {
		t.Fatalf("merged row = %+v", res.Row.Values)
	}
	deadline := time.Now().Add(time.Second)
	for {
		got := fc.row("r3", "k")
		if got.Equal(res.Row) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale replica not causally repaired: %+v", got.Values)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReadRepairRowNotAliased is the aliasing regression for the async
// read-repair path: the row handed back to the caller must not share memory
// with the row the detached repair goroutine is still delivering. The caller
// mutates its result immediately while a slowed repair is in flight; run
// under -race this flags any sharing.
func TestReadRepairRowNotAliased(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e := newEngine(t, fc)
	fresh := &kv.Row{}
	fresh.ApplyCausal(dottedVer("new-value", 10, "s1", kv.Dot{Node: 1, Counter: 2}, nil), true, 0)
	stale := &kv.Row{}
	stale.ApplyCausal(dottedVer("old-value", 1, "s1", kv.Dot{Node: 1, Counter: 1}, nil), true, 0)
	fc.setRow("r1", "k", fresh)
	fc.setRow("r2", "k", fresh)
	fc.setRow("r3", "k", stale)
	// Slow one fresh replica so the read observes the stale copy and must
	// schedule a repair. The race detector works on happens-before, not wall
	// time: if the detached repair shares memory with the returned row, the
	// scribble below is flagged no matter how the deliveries interleave.
	fc.mu.Lock()
	fc.slow["r1"] = 20 * time.Millisecond
	fc.mu.Unlock()

	res, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatal(err)
	}
	// Scribble over everything the caller can reach while the repair to r3
	// is still being delivered.
	for i := range res.Row.Values {
		for j := range res.Row.Values[i].Value {
			res.Row.Values[i].Value[j] = 'X'
		}
		res.Row.Values[i].Source = "mutated"
	}
	res.Row.Clock.Fold(kv.Dot{Node: 99, Counter: 99})
	res.Row.Values = nil

	deadline := time.Now().Add(time.Second)
	for {
		got := fc.row("r3", "k")
		if v, ok := got.Latest(); ok && string(v.Value) == "new-value" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("repair never delivered the fresh value")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
