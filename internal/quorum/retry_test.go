package quorum

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/ring"
	"sedna/internal/transport"
)

// blinkCluster wraps fakeCluster so a node fails its first failuresLeft
// calls and then recovers (a transient blip, the retry target).
type blinkCluster struct {
	*fakeCluster
	mu           sync.Mutex
	failuresLeft map[ring.NodeID]int
	attempts     map[ring.NodeID]int
}

func newBlinkCluster(nodes ...ring.NodeID) *blinkCluster {
	return &blinkCluster{
		fakeCluster:  newFakeCluster(nodes...),
		failuresLeft: map[ring.NodeID]int{},
		attempts:     map[ring.NodeID]int{},
	}
}

func (bc *blinkCluster) blip(n ring.NodeID, failures int) {
	bc.mu.Lock()
	bc.failuresLeft[n] = failures
	bc.mu.Unlock()
}

func (bc *blinkCluster) failNow(n ring.NodeID) bool {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	bc.attempts[n]++
	if bc.failuresLeft[n] > 0 {
		bc.failuresLeft[n]--
		return true
	}
	return false
}

func (bc *blinkCluster) tries(n ring.NodeID) int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.attempts[n]
}

func (bc *blinkCluster) WriteReplica(ctx context.Context, n ring.NodeID, key kv.Key, v kv.Versioned, mode Mode) (WriteStatus, error) {
	if bc.failNow(n) {
		return 0, errors.New("transient blip")
	}
	return bc.fakeCluster.WriteReplica(ctx, n, key, v, mode)
}

func (bc *blinkCluster) ReadReplica(ctx context.Context, n ring.NodeID, key kv.Key) (*kv.Row, error) {
	if bc.failNow(n) {
		return nil, errors.New("transient blip")
	}
	return bc.fakeCluster.ReadReplica(ctx, n, key)
}

func (bc *blinkCluster) RepairReplica(ctx context.Context, n ring.NodeID, key kv.Key, row *kv.Row) error {
	if bc.failNow(n) {
		return errors.New("transient blip")
	}
	return bc.fakeCluster.RepairReplica(ctx, n, key, row)
}

func retryEngine(t *testing.T, rt Transport, budget int) (*Engine, *obs.Registry) {
	t.Helper()
	e, err := NewEngine(Config{
		N: 3, R: 2, W: 2,
		Timeout:      300 * time.Millisecond,
		RetryBudget:  budget,
		RetryBackoff: time.Millisecond,
	}, rt)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.Instrument(reg)
	return e, reg
}

func TestWriteRetriesTransientFailure(t *testing.T) {
	bc := newBlinkCluster(nodes3...)
	// Two replicas blip once each; without retries the write would reach
	// only W-1 acks and fail.
	bc.blip("r1", 1)
	bc.blip("r2", 1)
	bc.kill("r3")
	e, reg := retryEngine(t, bc, 4)

	res, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest)
	if err != nil {
		t.Fatalf("write with transient blips failed: %v", err)
	}
	if res.Acked < 2 {
		t.Fatalf("acked = %d, want >= 2", res.Acked)
	}
	if got := reg.Snapshot().Counter("quorum.retries"); got < 2 {
		t.Fatalf("quorum.retries = %d, want >= 2", got)
	}
}

func TestReadRetriesTransientFailure(t *testing.T) {
	bc := newBlinkCluster(nodes3...)
	e, _ := retryEngine(t, bc, 4)
	if _, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	bc.blip("r1", 1)
	bc.blip("r2", 1)
	bc.kill("r3")
	res, err := e.Read(context.Background(), nodes3, "k")
	if err != nil {
		t.Fatalf("read with transient blips failed: %v", err)
	}
	if v, ok := res.Row.Latest(); !ok || string(v.Value) != "v" {
		t.Fatalf("row = %+v", res.Row)
	}
}

func TestRetryBudgetBoundsResends(t *testing.T) {
	bc := newBlinkCluster(nodes3...)
	// Every replica fails persistently within the retryable class; the op
	// must stop after budget re-sends, not hammer until the timeout.
	for _, n := range nodes3 {
		bc.blip(n, 1000)
	}
	e, reg := retryEngine(t, bc, 3)
	_, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest)
	if !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("err = %v, want quorum failure", err)
	}
	total := bc.tries("r1") + bc.tries("r2") + bc.tries("r3")
	// 3 first attempts + at most 3 budgeted re-sends.
	if total > 6 {
		t.Fatalf("replica attempts = %d, want <= 6 (budget exhausted)", total)
	}
	if got := reg.Snapshot().Counter("quorum.retries"); got > 3 {
		t.Fatalf("quorum.retries = %d, want <= 3", got)
	}
}

// overloadCluster sheds a node's first failuresLeft calls with the staged
// transport's pushback error, then serves normally.
type overloadCluster struct {
	*blinkCluster
}

func (oc overloadCluster) WriteReplica(ctx context.Context, n ring.NodeID, key kv.Key, v kv.Versioned, mode Mode) (WriteStatus, error) {
	if oc.failNow(n) {
		return 0, fmt.Errorf("%w: test shed", transport.ErrOverloaded)
	}
	return oc.fakeCluster.WriteReplica(ctx, n, key, v, mode)
}

func TestWriteRetriesOverloadPushback(t *testing.T) {
	oc := overloadCluster{newBlinkCluster(nodes3...)}
	// Two replicas shed once each: without backoff-retry the write would
	// reach only W-1 acks.
	oc.blip("r1", 1)
	oc.blip("r2", 1)
	oc.kill("r3")
	e, reg := retryEngine(t, oc, 4)

	if _, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest); err != nil {
		t.Fatalf("write through shed pushback failed: %v", err)
	}
	if got := reg.Snapshot().Counter("quorum.overload_pushback"); got < 2 {
		t.Fatalf("quorum.overload_pushback = %d, want >= 2", got)
	}
	if !retryable(transport.ErrOverloaded) {
		t.Fatal("overload pushback classified non-retryable; sheds would become quorum failures")
	}
}

func TestNoRetryOnBreakerOpenOrRemote(t *testing.T) {
	if retryable(transport.ErrBreakerOpen) {
		t.Fatal("breaker-open classified retryable; re-sending would only fast-fail again")
	}
	if retryable(&transport.RemoteError{Msg: "outdated"}) {
		t.Fatal("remote verdict classified retryable")
	}
	if retryable(context.Canceled) {
		t.Fatal("caller cancellation classified retryable")
	}
	if !retryable(errors.New("dial tcp: connection refused")) {
		t.Fatal("dial failure not classified retryable")
	}
	if !retryable(context.DeadlineExceeded) {
		t.Fatal("deadline expiry not classified retryable")
	}
}

func TestRepairErrorsCountedAndHooked(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e, reg := retryEngine(t, fc, 0)

	var mu sync.Mutex
	hooked := map[ring.NodeID]kv.Key{}
	e.OnRepairError(func(node ring.NodeID, key kv.Key, row *kv.Row) {
		mu.Lock()
		hooked[node] = key
		mu.Unlock()
	})

	fc.kill("r3")
	row := &kv.Row{}
	row.ApplyLatest(ver("v", 3, "s"))
	if err := e.Repair(context.Background(), nodes3, "k", row); err == nil {
		t.Fatal("repair with dead node reported success")
	}
	if got := reg.Snapshot().Counter("quorum.repair_errors"); got != 1 {
		t.Fatalf("quorum.repair_errors = %d, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if hooked["r3"] != "k" {
		t.Fatalf("hook saw %v, want r3 -> k", hooked)
	}
}

// stragglerCluster delays one node's replica writes past the quorum decision
// and then fails them, modelling a dark node behind a hanging link.
type stragglerCluster struct {
	*fakeCluster
	node  ring.NodeID
	delay time.Duration
}

func (sc stragglerCluster) WriteReplica(ctx context.Context, n ring.NodeID, key kv.Key, v kv.Versioned, mode Mode) (WriteStatus, error) {
	if n == sc.node {
		select {
		case <-time.After(sc.delay):
		case <-ctx.Done():
		}
		return 0, errors.New("straggler died")
	}
	return sc.fakeCluster.WriteReplica(ctx, n, key, v, mode)
}

func TestWriteStragglerFeedsWriteErrorHook(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e, _ := retryEngine(t, stragglerCluster{fakeCluster: fc, node: "r3", delay: 30 * time.Millisecond}, 0)
	var mu sync.Mutex
	var hookedKey kv.Key
	var hookedVal string
	e.OnWriteError(func(node ring.NodeID, key kv.Key, v kv.Versioned, _ Mode) {
		if node != "r3" {
			return
		}
		mu.Lock()
		hookedKey, hookedVal = key, string(v.Value)
		mu.Unlock()
	})

	// The quorum settles on r1+r2 long before r3's write fails; the hook
	// must still see the straggler's miss (Failed cannot — Write already
	// returned).
	if _, err := e.Write(context.Background(), nodes3, "k", ver("v", 1, "s"), Latest); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		key, val := hookedKey, hookedVal
		mu.Unlock()
		if key != "" {
			if key != "k" || val != "v" {
				t.Fatalf("hook saw %q=%q, want k=v", key, val)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("straggler write failure never fired the hook")
		}
		time.Sleep(time.Millisecond)
	}
}

// repairFailCluster serves reads and writes normally but fails every repair
// delivery, isolating the read-repair error path.
type repairFailCluster struct{ *fakeCluster }

func (rc repairFailCluster) RepairReplica(ctx context.Context, n ring.NodeID, key kv.Key, row *kv.Row) error {
	return errors.New("repair target down")
}

func TestReadRepairFailureFeedsHook(t *testing.T) {
	fc := newFakeCluster(nodes3...)
	e, reg := retryEngine(t, repairFailCluster{fc}, 0)
	var mu sync.Mutex
	hooked := map[ring.NodeID]kv.Key{}
	e.OnRepairError(func(node ring.NodeID, key kv.Key, row *kv.Row) {
		mu.Lock()
		hooked[node] = key
		mu.Unlock()
	})

	// r1, r2 fresh; r3 stale: the read triggers an async repair of r3 which
	// fails and must surface through the counter and the hook.
	fresh := &kv.Row{}
	fresh.ApplyLatest(ver("new", 10, "s"))
	stale := &kv.Row{}
	stale.ApplyLatest(ver("old", 1, "s"))
	fc.setRow("r1", "k", fresh)
	fc.setRow("r2", "k", fresh)
	fc.setRow("r3", "k", stale)
	fc.mu.Lock()
	fc.slow["r1"] = 20 * time.Millisecond
	fc.mu.Unlock()

	if _, err := e.Read(context.Background(), nodes3, "k"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		key, ok := hooked["r3"]
		mu.Unlock()
		if ok {
			if key != "k" {
				t.Fatalf("hook saw key %q, want k", key)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failed read repair never fired the hook")
		}
		time.Sleep(time.Millisecond)
	}
	if got := reg.Snapshot().Counter("quorum.repair_errors"); got < 1 {
		t.Fatalf("quorum.repair_errors = %d, want >= 1", got)
	}
}
