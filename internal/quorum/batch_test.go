package quorum

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sedna/internal/kv"
	"sedna/internal/ring"
)

// frameCluster wraps fakeCluster with real BatchTransport support and counts
// the frames each node received, so tests can assert one frame per node.
type frameCluster struct {
	*fakeCluster
	mu     sync.Mutex
	frames map[ring.NodeID]int
}

func newFrameCluster(nodes ...ring.NodeID) *frameCluster {
	return &frameCluster{fakeCluster: newFakeCluster(nodes...), frames: map[ring.NodeID]int{}}
}

func (fc *frameCluster) frameCount(n ring.NodeID) int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.frames[n]
}

func (fc *frameCluster) WriteReplicaBatch(ctx context.Context, n ring.NodeID, items []NodeWrite) ([]WriteAck, error) {
	fc.mu.Lock()
	fc.frames[n]++
	fc.mu.Unlock()
	acks := make([]WriteAck, len(items))
	for i, w := range items {
		st, err := fc.fakeCluster.WriteReplica(ctx, n, w.Key, w.V, w.Mode)
		if err != nil {
			return nil, err // frame-level failure, as a dead node would answer
		}
		acks[i] = WriteAck{Status: st}
	}
	return acks, nil
}

func (fc *frameCluster) ReadReplicaBatch(ctx context.Context, n ring.NodeID, keys []kv.Key) ([]ReadAck, error) {
	fc.mu.Lock()
	fc.frames[n]++
	fc.mu.Unlock()
	acks := make([]ReadAck, len(keys))
	for i, k := range keys {
		row, err := fc.fakeCluster.ReadReplica(ctx, n, k)
		if err != nil {
			return nil, err
		}
		acks[i] = ReadAck{Row: row}
	}
	return acks, nil
}

func batchKeys(n int) []kv.Key {
	keys := make([]kv.Key, n)
	for i := range keys {
		keys[i] = kv.Key(fmt.Sprintf("batch/k/%02d", i))
	}
	return keys
}

func TestWriteBatchOneFramePerNode(t *testing.T) {
	fc := newFrameCluster(nodes3...)
	e, reg := retryEngine(t, fc, 0)
	keys := batchKeys(16)
	items := make([]BatchWrite, len(keys))
	for i, k := range keys {
		items[i] = BatchWrite{Key: k, Replicas: nodes3, V: ver("v", int64(i+1), "s"), Mode: Latest}
	}
	res := e.WriteBatch(context.Background(), items)
	for i, r := range res {
		if r.Err != nil || r.Outdated {
			t.Fatalf("key %d: err=%v outdated=%v", i, r.Err, r.Outdated)
		}
		if r.Acked < 2 {
			t.Fatalf("key %d: acked=%d, want >= 2", i, r.Acked)
		}
	}
	// 16 keys on 3 replicas must cost exactly one frame per node, not 48
	// per-key RPCs. The batch settles after W node replies, so the last
	// frame may still be in flight; wait for it rather than racing it.
	waitFrames(t, fc, 1)
	snap := reg.Snapshot()
	if got := snap.Counter("quorum.batch.keys"); got != 16 {
		t.Fatalf("quorum.batch.keys = %d, want 16", got)
	}
	if got := snap.Counter("quorum.batch.frames"); got != 3 {
		t.Fatalf("quorum.batch.frames = %d, want 3", got)
	}
	// Every replica eventually holds every key (the straggler node's frame
	// finishes applying after the quorum settled).
	deadline := time.Now().Add(2 * time.Second)
	for _, n := range nodes3 {
		for _, k := range keys {
			for {
				if v, ok := fc.row(n, k).Latest(); ok && string(v.Value) == "v" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("node %s key %s missing after batch write", n, k)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}

func TestWriteBatchDeadReplicaDegradesPerKey(t *testing.T) {
	fc := newFrameCluster(nodes3...)
	fc.kill("r3")
	e, _ := retryEngine(t, fc, 0)
	var mu sync.Mutex
	hinted := map[kv.Key]bool{}
	e.OnWriteError(func(node ring.NodeID, key kv.Key, v kv.Versioned, _ Mode) {
		if node == "r3" {
			mu.Lock()
			hinted[key] = true
			mu.Unlock()
		}
	})
	keys := batchKeys(8)
	items := make([]BatchWrite, len(keys))
	for i, k := range keys {
		items[i] = BatchWrite{Key: k, Replicas: nodes3, V: ver("v", 1, "s"), Mode: Latest}
	}
	res := e.WriteBatch(context.Background(), items)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("key %d failed despite a live W quorum: %v", i, r.Err)
		}
	}
	// Every key's miss on the dead node must reach the hint hook, exactly as
	// single-key writes feed hinted handoff.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(hinted)
		mu.Unlock()
		if n == len(keys) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d failed keys reached OnWriteError", n, len(keys))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteBatchSettlesPerKeyNotPerBatch(t *testing.T) {
	// r2 and r3 dead: keys replicated on all three miss their W=2 quorum,
	// while a key whose replica set is just r1 (need clamps to 1) succeeds.
	// The batch must report both verdicts, not fail wholesale.
	fc := newFrameCluster(nodes3...)
	fc.kill("r2")
	fc.kill("r3")
	e, reg := retryEngine(t, fc, 0)
	items := []BatchWrite{
		{Key: "wide", Replicas: nodes3, V: ver("v", 1, "s"), Mode: Latest},
		{Key: "narrow", Replicas: []ring.NodeID{"r1"}, V: ver("v", 1, "s"), Mode: Latest},
	}
	res := e.WriteBatch(context.Background(), items)
	if !errors.Is(res[0].Err, ErrQuorumFailed) {
		t.Fatalf("wide key err = %v, want quorum failure", res[0].Err)
	}
	if res[1].Err != nil {
		t.Fatalf("narrow key err = %v, want success", res[1].Err)
	}
	if got := reg.Snapshot().Counter("quorum.batch.key_failures"); got != 1 {
		t.Fatalf("quorum.batch.key_failures = %d, want 1", got)
	}
}

func TestWriteBatchOutdatedVerdictPerKey(t *testing.T) {
	fc := newFrameCluster(nodes3...)
	e, _ := retryEngine(t, fc, 0)
	// Pre-store a newer value for one key only.
	newer := &kv.Row{}
	newer.ApplyLatest(ver("new", 100, "s"))
	for _, n := range nodes3 {
		fc.setRow(n, "stale", newer)
	}
	items := []BatchWrite{
		{Key: "stale", Replicas: nodes3, V: ver("old", 1, "s"), Mode: Latest},
		{Key: "fresh", Replicas: nodes3, V: ver("v", 1, "s"), Mode: Latest},
	}
	res := e.WriteBatch(context.Background(), items)
	if !res[0].Outdated || res[0].Err != nil {
		t.Fatalf("stale key: outdated=%v err=%v, want outdated verdict", res[0].Outdated, res[0].Err)
	}
	if res[1].Outdated || res[1].Err != nil {
		t.Fatalf("fresh key: outdated=%v err=%v, want clean ack", res[1].Outdated, res[1].Err)
	}
}

func TestReadBatchMixedHitMiss(t *testing.T) {
	fc := newFrameCluster(nodes3...)
	e, _ := retryEngine(t, fc, 0)
	row := &kv.Row{}
	row.ApplyLatest(ver("hello", 5, "s"))
	for _, n := range nodes3 {
		fc.setRow(n, "present", row)
	}
	items := []BatchRead{
		{Key: "present", Replicas: nodes3},
		{Key: "absent", Replicas: nodes3},
	}
	res := e.ReadBatch(context.Background(), items)
	if res[0].Err != nil {
		t.Fatalf("present key err = %v", res[0].Err)
	}
	if v, ok := res[0].Row.Latest(); !ok || string(v.Value) != "hello" {
		t.Fatalf("present key row = %+v", res[0].Row)
	}
	if res[1].Err != nil {
		t.Fatalf("absent key err = %v, want clean empty row", res[1].Err)
	}
	if _, ok := res[1].Row.Latest(); ok {
		t.Fatalf("absent key returned a value: %+v", res[1].Row)
	}
	waitFrames(t, fc, 1)
}

// waitFrames waits until every node received exactly want frames (the
// quorum settles before stragglers' frames land, so counts trail briefly).
func waitFrames(t *testing.T, fc *frameCluster, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		done := true
		for _, n := range nodes3 {
			if got := fc.frameCount(n); got > want {
				t.Fatalf("node %s received %d frames, want %d", n, got, want)
			} else if got < want {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes3 {
				t.Logf("node %s: %d frames", n, fc.frameCount(n))
			}
			t.Fatalf("frame counts never reached %d per node", want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadBatchRepairsStaleReplicaPerKey(t *testing.T) {
	fc := newFrameCluster(nodes3...)
	e, reg := retryEngine(t, fc, 0)
	fresh := &kv.Row{}
	fresh.ApplyLatest(ver("new", 10, "s"))
	stale := &kv.Row{}
	stale.ApplyLatest(ver("old", 1, "s"))
	fc.setRow("r1", "k0", fresh)
	fc.setRow("r2", "k0", fresh)
	fc.setRow("r3", "k0", stale)
	// Slow the fresh replicas so the stale copy is in hand before settle.
	fc.fakeCluster.mu.Lock()
	fc.fakeCluster.slow["r1"] = 10 * time.Millisecond
	fc.fakeCluster.slow["r2"] = 10 * time.Millisecond
	fc.fakeCluster.mu.Unlock()

	res := e.ReadBatch(context.Background(), []BatchRead{{Key: "k0", Replicas: nodes3}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if v, ok := res[0].Row.Latest(); !ok || string(v.Value) != "new" {
		t.Fatalf("merged row = %+v, want freshest value", res[0].Row)
	}
	// The async repair must converge r3 to the merged row.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := fc.row("r3", "k0").Latest(); ok && string(v.Value) == "new" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale replica never repaired after batch read")
		}
		time.Sleep(time.Millisecond)
	}
	if got := reg.Snapshot().Counter("quorum.read_repairs"); got < 1 {
		t.Fatalf("quorum.read_repairs = %d, want >= 1", got)
	}
}

func TestReadBatchDeadReplicaStillSettles(t *testing.T) {
	fc := newFrameCluster(nodes3...)
	e, _ := retryEngine(t, fc, 0)
	row := &kv.Row{}
	row.ApplyLatest(ver("v", 3, "s"))
	for _, n := range nodes3 {
		fc.setRow(n, "k", row)
	}
	fc.kill("r3")
	res := e.ReadBatch(context.Background(), []BatchRead{{Key: "k", Replicas: nodes3}})
	if res[0].Err != nil {
		t.Fatalf("read with one dead replica failed: %v", res[0].Err)
	}
	if v, ok := res[0].Row.Latest(); !ok || string(v.Value) != "v" {
		t.Fatalf("row = %+v", res[0].Row)
	}
}

func TestBatchFallsBackToPerKeyTransport(t *testing.T) {
	// fakeCluster implements only the single-key Transport: the batch ops
	// must still work via per-key fallback.
	fc := newFakeCluster(nodes3...)
	e, _ := retryEngine(t, fc, 0)
	items := []BatchWrite{
		{Key: "a", Replicas: nodes3, V: ver("1", 1, "s"), Mode: Latest},
		{Key: "b", Replicas: nodes3, V: ver("2", 1, "s"), Mode: Latest},
	}
	for i, r := range e.WriteBatch(context.Background(), items) {
		if r.Err != nil {
			t.Fatalf("fallback write %d: %v", i, r.Err)
		}
	}
	res := e.ReadBatch(context.Background(), []BatchRead{
		{Key: "a", Replicas: nodes3},
		{Key: "b", Replicas: nodes3},
	})
	if v, ok := res[0].Row.Latest(); !ok || string(v.Value) != "1" {
		t.Fatalf("fallback read a = %+v", res[0].Row)
	}
	if v, ok := res[1].Row.Latest(); !ok || string(v.Value) != "2" {
		t.Fatalf("fallback read b = %+v", res[1].Row)
	}
}

func TestBatchConcurrentWithSingleKeyOps(t *testing.T) {
	// Batch and single-key operations interleave on the same engine and keys;
	// under -race this doubles as a data-race check on the shared settle
	// paths and hooks.
	fc := newFrameCluster(nodes3...)
	e, _ := retryEngine(t, fc, 0)
	e.OnWriteError(func(ring.NodeID, kv.Key, kv.Versioned, Mode) {})
	keys := batchKeys(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				ts := int64(w*1000 + iter + 1)
				if w%2 == 0 {
					items := make([]BatchWrite, len(keys))
					for i, k := range keys {
						items[i] = BatchWrite{Key: k, Replicas: nodes3, V: ver("b", ts, "s"), Mode: Latest}
					}
					e.WriteBatch(context.Background(), items)
					e.ReadBatch(context.Background(), []BatchRead{{Key: keys[0], Replicas: nodes3}})
				} else {
					for _, k := range keys[:2] {
						e.Write(context.Background(), nodes3, k, ver("s", ts, "s"), Latest)
						e.Read(context.Background(), nodes3, k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Convergence sanity: every key readable with a quorum afterwards.
	res := e.ReadBatch(context.Background(), func() []BatchRead {
		items := make([]BatchRead, len(keys))
		for i, k := range keys {
			items[i] = BatchRead{Key: k, Replicas: nodes3}
		}
		return items
	}())
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("post-interleave read %d: %v", i, r.Err)
		}
	}
}

func TestRetryBackoffSurvivesHighAttemptCount(t *testing.T) {
	// Regression: base << attempt with a large attempt overflowed int64
	// negative, skipped the d > max clamp, and armed a zero-duration timer —
	// a hot retry loop burning the whole budget instantly. The exponent is
	// now clamped, so even attempt 80 must sleep at least the 8x ceiling.
	e, _ := retryEngine(t, newFakeCluster(nodes3...), 1000)
	for _, attempt := range []int{62, 63, 80, 1 << 20} {
		budget := int32(1)
		start := time.Now()
		ok := e.retry(context.Background(), &budget, attempt, errors.New("transient"))
		elapsed := time.Since(start)
		if !ok {
			t.Fatalf("attempt %d: retry refused with budget available", attempt)
		}
		// Backoff base is 1ms (retryEngine), ceiling 8ms; the overflow bug
		// produced ~0s sleeps here.
		if elapsed < 8*time.Millisecond {
			t.Fatalf("attempt %d: slept %v, want >= 8ms (overflow skipped the clamp)", attempt, elapsed)
		}
	}
}
