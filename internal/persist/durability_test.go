package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sedna/internal/obs"
	"sedna/internal/vfs"
	"sedna/internal/wal"
)

// kvSource is a Source with point reads (KeyReader), so Hybrid snapshots
// can go incremental. It doubles as the model the harness checks against.
type kvSource struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newKVSource() *kvSource { return &kvSource{m: map[string][]byte{}} }

func (s *kvSource) set(k string, v []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = append([]byte(nil), v...)
}

func (s *kvSource) del(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, k)
}

func (s *kvSource) SnapshotRange(emit func(key string, blob []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.m {
		emit(k, v)
	}
}

func (s *kvSource) ReadKey(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

func (s *kvSource) snapshot() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.m))
	for k, v := range s.m {
		out[k] = string(v)
	}
	return out
}

// harnessOp is one step of the deterministic crash workload: a set, a
// delete, or a snapshot.
type harnessOp struct {
	key  string
	val  string // "" with del=true deletes
	del  bool
	snap bool
}

// harnessWorkload is the fixed op sequence the crash harness replays for
// every crash point. Values embed the op index so successive states are
// distinguishable; snapshots are sprinkled mid-stream so crash points land
// inside snapshot writes, manifest commits and WAL truncations too.
func harnessWorkload() []harnessOp {
	var ops []harnessOp
	for i := 0; i < 40; i++ {
		switch {
		case i%13 == 7:
			ops = append(ops, harnessOp{snap: true})
		case i%7 == 3:
			ops = append(ops, harnessOp{key: fmt.Sprintf("k%d", i%5), del: true})
		default:
			ops = append(ops, harnessOp{key: fmt.Sprintf("k%d", i%5), val: fmt.Sprintf("v%d", i)})
		}
	}
	ops = append(ops, harnessOp{snap: true})
	for i := 40; i < 50; i++ {
		ops = append(ops, harnessOp{key: fmt.Sprintf("k%d", i%5), val: fmt.Sprintf("v%d", i)})
	}
	return ops
}

// runHarnessWorkload executes the workload against a Manager over fsys,
// mirroring the core ordering (store mutation before LogWrite). It returns
// the index of the last acked op (-1 if none). Errors after the crash point
// fires are expected and ignored.
func runHarnessWorkload(m *Manager, src *kvSource, ops []harnessOp) int {
	lastAcked := -1
	for i, op := range ops {
		if op.snap {
			m.SnapshotNow()
			continue
		}
		if op.del {
			src.del(op.key)
			if m.LogWrite(op.key, nil) == nil {
				lastAcked = i
			}
		} else {
			src.set(op.key, []byte(op.val))
			if m.LogWrite(op.key, []byte(op.val)) == nil {
				lastAcked = i
			}
		}
	}
	return lastAcked
}

// prefixStates returns the model state after every prefix of ops (index p
// holds the state after applying ops[:p]; snapshot ops do not change it).
func prefixStates(ops []harnessOp) []map[string]string {
	states := make([]map[string]string, 0, len(ops)+1)
	cur := map[string]string{}
	copyState := func() map[string]string {
		out := make(map[string]string, len(cur))
		for k, v := range cur {
			out[k] = v
		}
		return out
	}
	states = append(states, copyState())
	for _, op := range ops {
		switch {
		case op.snap:
		case op.del:
			delete(cur, op.key)
		default:
			cur[op.key] = op.val
		}
		states = append(states, copyState())
	}
	return states
}

func statesEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func recoverImage(t *testing.T, fsys vfs.FS, cfg Config) map[string]string {
	t.Helper()
	cfg.FS = fsys
	m, err := NewManager(cfg, newKVSource())
	if err != nil {
		t.Fatalf("open for recovery: %v", err)
	}
	defer m.Close()
	got := map[string]string{}
	if err := m.Recover(func(key string, blob []byte) error {
		if blob == nil {
			delete(got, key)
		} else {
			got[key] = string(blob)
		}
		return nil
	}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	return got
}

// TestCrashHarnessZeroAckedWriteLoss is the tentpole invariant: for EVERY
// injected crash point in the workload — mid-append, mid-fsync, mid
// snapshot write, between manifest rename and WAL truncation, everywhere —
// recovery from the crash image yields a state that (a) is exactly the
// model after some prefix of the workload, and (b) that prefix contains
// every acknowledged write.
func TestCrashHarnessZeroAckedWriteLoss(t *testing.T) {
	ops := harnessWorkload()
	states := prefixStates(ops)
	for _, strategy := range []Strategy{WriteAhead, Hybrid} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			baseCfg := Config{
				Dir:             "/data",
				Strategy:        strategy,
				WALSync:         wal.SyncAlways,
				WALSegmentBytes: 512, // force rotations under the harness
			}

			// Clean run to count the crash points.
			probe := vfs.NewFault()
			cfg := baseCfg
			cfg.FS = probe
			src := newKVSource()
			m, err := NewManager(cfg, src)
			if err != nil {
				t.Fatal(err)
			}
			runHarnessWorkload(m, src, ops)
			m.Close()
			total := probe.MutatingOps()
			if total < 50 {
				t.Fatalf("suspiciously few crash points: %d", total)
			}
			t.Logf("%d crash points", total)

			for k := int64(0); k <= total; k++ {
				fsys := vfs.NewFault()
				cfg := baseCfg
				cfg.FS = fsys
				src := newKVSource()
				m, err := NewManager(cfg, src)
				if err != nil {
					t.Fatal(err)
				}
				fsys.SetCrashAfterOps(k)
				lastAcked := runHarnessWorkload(m, src, ops)
				m.Close()

				got := recoverImage(t, fsys.CrashFS(), baseCfg)
				matched := false
				for p := lastAcked + 1; p < len(states); p++ {
					if statesEqual(states[p], got) {
						matched = true
						break
					}
				}
				if !matched {
					// Diagnose: does it at least match an earlier prefix
					// (acked-write loss) or no prefix at all (corruption)?
					anyPrefix := -1
					for p := range states {
						if statesEqual(states[p], got) {
							anyPrefix = p
							break
						}
					}
					if anyPrefix >= 0 {
						t.Fatalf("crash point %d: recovered prefix %d but last acked op is %d — acked-write loss", k, anyPrefix, lastAcked)
					}
					t.Fatalf("crash point %d: recovered state matches no workload prefix: %v", k, got)
				}
			}
		})
	}
}

// TestConfigMatrixRecoveryEquivalence sweeps the durability configuration
// space (go-nutt style): every {Strategy} × {SyncPolicy} × {SegmentBytes,
// FlushInterval} cell runs the same workload through a clean shutdown and
// must recover the identical image.
func TestConfigMatrixRecoveryEquivalence(t *testing.T) {
	strategies := []Strategy{Periodic, WriteAhead, Hybrid}
	policies := []wal.SyncPolicy{wal.SyncNever, wal.SyncInterval, wal.SyncAlways}
	segments := []int64{128, 64 << 10}
	intervals := []time.Duration{time.Millisecond, time.Hour}

	ops := harnessWorkload()
	want := prefixStates(ops)[len(ops)]

	for _, strategy := range strategies {
		for _, policy := range policies {
			if strategy == Periodic && policy != wal.SyncNever {
				continue // Periodic has no WAL; one policy cell is enough
			}
			for _, segBytes := range segments {
				for _, interval := range intervals {
					name := fmt.Sprintf("%s/%s/seg%d/flush%s", strategy, policy, segBytes, interval)
					t.Run(name, func(t *testing.T) {
						dir := t.TempDir()
						cfg := Config{
							Dir:             dir,
							Strategy:        strategy,
							WALSync:         policy,
							WALSegmentBytes: segBytes,
							FlushInterval:   interval,
						}
						src := newKVSource()
						m, err := NewManager(cfg, src)
						if err != nil {
							t.Fatal(err)
						}
						m.Start()
						if lastAcked := runHarnessWorkload(m, src, ops); lastAcked < 0 && strategy != Periodic {
							t.Fatal("no write was acked")
						}
						// Periodic persists only what a snapshot saw: take a
						// final one so the full image is on disk.
						if err := m.SnapshotNow(); err != nil {
							t.Fatal(err)
						}
						if err := m.Close(); err != nil {
							t.Fatal(err)
						}
						got := recoverImage(t, nil, cfg)
						if !statesEqual(want, got) {
							t.Fatalf("recovered %v, want %v", got, want)
						}
					})
				}
			}
		}
	}
}

// TestHybridDeltaSnapshots checks the incremental chain: after the full
// base, snapshots containing only dirtied keys are layered on via the
// manifest, deletions travel as tombstones, and a full snapshot re-bases
// the chain after FullEvery deltas.
func TestHybridDeltaSnapshots(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Strategy: Hybrid, WALSync: wal.SyncAlways, FullEvery: 3}
	src := newKVSource()
	m, err := NewManager(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	write := func(k, v string) {
		src.set(k, []byte(v))
		if err := m.LogWrite(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	del := func(k string) {
		src.del(k)
		if err := m.LogWrite(k, nil); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 10; i++ {
		write(fmt.Sprintf("base%d", i), fmt.Sprintf("v%d", i))
	}
	if err := m.SnapshotNow(); err != nil { // full base
		t.Fatal(err)
	}
	write("hot", "1")
	del("base3")
	if err := m.SnapshotNow(); err != nil { // delta 1
		t.Fatal(err)
	}
	write("hot", "2")
	if err := m.SnapshotNow(); err != nil { // delta 2
		t.Fatal(err)
	}

	man, ok, err := ReadManifest(vfs.OS, dir)
	if err != nil || !ok {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	if len(man.Chain) != 3 {
		t.Fatalf("chain = %v, want base + 2 deltas", man.Chain)
	}
	// Deltas must be small — only the dirtied keys, not the whole image.
	baseInfo, _ := os.Stat(filepath.Join(dir, man.Chain[0]))
	deltaInfo, err := os.Stat(filepath.Join(dir, man.Chain[1]))
	if err != nil {
		t.Fatal(err)
	}
	if deltaInfo.Size() >= baseInfo.Size() {
		t.Fatalf("delta (%d bytes) not smaller than base (%d bytes)", deltaInfo.Size(), baseInfo.Size())
	}
	m.Close()

	got := recoverImage(t, nil, cfg)
	if got["hot"] != "2" {
		t.Fatalf("hot = %q", got["hot"])
	}
	if _, exists := got["base3"]; exists {
		t.Fatal("tombstoned key base3 resurrected")
	}
	if len(got) != 10 {
		t.Fatalf("recovered %d keys, want 10", len(got))
	}

	// Reopen and push past FullEvery: the chain re-bases to one full file.
	m2, err := NewManager(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for i := 0; i < 3; i++ {
		src.set("spin", []byte(fmt.Sprintf("s%d", i)))
		if err := m2.LogWrite("spin", []byte(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := m2.SnapshotNow(); err != nil {
			t.Fatal(err)
		}
	}
	man2, _, err := ReadManifest(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man2.Chain) >= len(man.Chain)+3 {
		t.Fatalf("chain after FullEvery = %v, never re-based", man2.Chain)
	}
	if man2.Chain[0] == man.Chain[0] {
		t.Fatalf("base %s survived past FullEvery deltas", man2.Chain[0])
	}
}

// TestDegradedAfterStickyFsyncError: a sticky fsync failure flips the
// manager to degraded and every later durable write is refused.
func TestDegradedAfterStickyFsyncError(t *testing.T) {
	fsys := vfs.NewFault()
	reg := obs.NewRegistry()
	cfg := Config{Dir: "/data", Strategy: WriteAhead, WALSync: wal.SyncAlways, FS: fsys, Obs: reg}
	m, err := NewManager(cfg, newKVSource())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.LogWrite("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if m.Degraded() {
		t.Fatal("degraded before any fault")
	}
	fsys.FailFsync(fmt.Errorf("medium error"))
	if err := m.LogWrite("b", []byte("2")); err == nil {
		t.Fatal("durable write acked during fsync failure")
	}
	if !m.Degraded() {
		t.Fatal("not degraded after sticky fsync error")
	}
	if err := m.LogWrite("c", []byte("3")); err == nil {
		t.Fatal("durable write acked while degraded")
	}
	if reg.Counter("wal.fsync_errors").Load() == 0 {
		t.Fatal("wal.fsync_errors not exported")
	}
}

// TestParallelRecoveryMatchesSerial replays the same image with 1 and 8
// recovery workers and expects identical results (per-key order holds
// because keys shard deterministically).
func TestParallelRecoveryMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Strategy: Hybrid, WALSync: wal.SyncNever}
	src := newKVSource()
	m, err := NewManager(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i%97)
		v := []byte(fmt.Sprintf("v%d", i))
		src.set(k, v)
		if err := m.LogWrite(k, v); err != nil {
			t.Fatal(err)
		}
		if i == 250 {
			if err := m.SnapshotNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	serial := recoverImage(t, nil, cfg)

	cfgPar := cfg
	cfgPar.RecoveryWorkers = 8
	mp, err := NewManager(cfgPar, newKVSource())
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	var mu sync.Mutex
	parallel := map[string]string{}
	if err := mp.Recover(func(key string, blob []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if blob == nil {
			delete(parallel, key)
		} else {
			parallel[key] = string(blob)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !statesEqual(serial, parallel) {
		t.Fatalf("parallel recovery diverged: %d vs %d keys", len(parallel), len(serial))
	}
	if len(serial) != 97 {
		t.Fatalf("recovered %d keys, want 97", len(serial))
	}
}

// TestRecoverQuarantinesCorruptMidLog: a flipped byte mid-log no longer
// kills recovery — the damaged segment is quarantined, later segments are
// salvaged, and the loss is counted.
func TestRecoverQuarantinesCorruptMidLog(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	cfg := Config{Dir: dir, Strategy: WriteAhead, WALSync: wal.SyncAlways, WALSegmentBytes: 256}
	src := newKVSource()
	m, err := NewManager(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%d", i)
		src.set(k, []byte("0123456789abcdef"))
		if err := m.LogWrite(k, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()

	// Flip a payload byte in the second WAL segment.
	walDir := filepath.Join(dir, "wal")
	entries, err := os.ReadDir(walDir)
	if err != nil || len(entries) < 3 {
		t.Fatalf("segments = %d err=%v", len(entries), err)
	}
	path := filepath.Join(walDir, entries[1].Name())
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)

	cfg.Obs = reg
	got := recoverImage(t, nil, cfg)
	if len(got) == 0 || len(got) >= 30 {
		t.Fatalf("salvaged %d keys, want partial recovery", len(got))
	}
	if reg.Counter("wal.records_quarantined").Load() == 0 {
		t.Fatal("wal.records_quarantined not counted")
	}
	// The last keys (after the damaged segment) must have been salvaged.
	if _, ok := got["k29"]; !ok {
		t.Fatal("records after the corrupt segment were not salvaged")
	}
}
