// Package persist implements Sedna's persistency strategies (§III, Table I:
// "periodically flush or write-ahead logs according users' needs"): binary
// snapshots of the full memory image, a manager that combines snapshots with
// the write-ahead log in internal/wal, and crash recovery that reloads the
// newest snapshot and replays the log suffix. The paper motivates this as
// the backstop for whole-cluster power loss (§III-C): replicas protect
// against individual node failures, periodic flushing against losing all
// three replicas at once.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file format (little endian):
//
//	8  magic "SEDNASNP"
//	u8 version
//	u64 WAL watermark (next sequence at capture time)
//	u64 entry count
//	per entry: u32 key length, key, u32 blob length, blob
//	u32 CRC32 over everything above
//
// Files are written to a temp name and renamed into place so a crash during
// flush never destroys the previous snapshot.

var snapMagic = [8]byte{'S', 'E', 'D', 'N', 'A', 'S', 'N', 'P'}

const snapVersion = 1

// ErrCorruptSnapshot reports a snapshot that failed validation.
var ErrCorruptSnapshot = errors.New("persist: corrupt snapshot")

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func snapName(watermark uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, watermark, snapSuffix)
}

// WriteSnapshot captures the entries supplied by iterate into a snapshot
// file in dir, tagged with the WAL watermark, and returns its path. iterate
// must call emit once per entry and return nil.
func WriteSnapshot(dir string, watermark uint64, iterate func(emit func(key string, blob []byte)) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, snapMagic[:]...)
	buf = append(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, watermark)
	countAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // patched below
	var count uint64
	err := iterate(func(key string, blob []byte) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
		buf = append(buf, key...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
		count++
	})
	if err != nil {
		return "", err
	}
	binary.LittleEndian.PutUint64(buf[countAt:], count)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	final := filepath.Join(dir, snapName(watermark))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return "", err
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	return final, nil
}

// ReadSnapshot loads the snapshot at path, invoking apply per entry, and
// returns the WAL watermark recorded at capture time.
func ReadSnapshot(path string, apply func(key string, blob []byte) error) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(snapMagic)+1+8+8+4 {
		return 0, fmt.Errorf("%w: too short", ErrCorruptSnapshot)
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return 0, fmt.Errorf("%w: bad checksum", ErrCorruptSnapshot)
	}
	off := 0
	if string(body[:8]) != string(snapMagic[:]) {
		return 0, fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	off += 8
	if body[off] != snapVersion {
		return 0, fmt.Errorf("%w: unknown version %d", ErrCorruptSnapshot, body[off])
	}
	off++
	watermark := binary.LittleEndian.Uint64(body[off:])
	off += 8
	count := binary.LittleEndian.Uint64(body[off:])
	off += 8
	for i := uint64(0); i < count; i++ {
		if len(body)-off < 4 {
			return 0, fmt.Errorf("%w: truncated entry %d", ErrCorruptSnapshot, i)
		}
		kl := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if len(body)-off < kl+4 {
			return 0, fmt.Errorf("%w: truncated key %d", ErrCorruptSnapshot, i)
		}
		key := string(body[off : off+kl])
		off += kl
		bl := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if len(body)-off < bl {
			return 0, fmt.Errorf("%w: truncated blob %d", ErrCorruptSnapshot, i)
		}
		blob := append([]byte(nil), body[off:off+bl]...)
		off += bl
		if err := apply(key, blob); err != nil {
			return 0, err
		}
	}
	if off != len(body) {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, len(body)-off)
	}
	return watermark, nil
}

// LatestSnapshot returns the path and watermark of the newest valid-looking
// snapshot file in dir, or ok=false when none exists.
func LatestSnapshot(dir string) (path string, watermark uint64, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", 0, false, nil
		}
		return "", 0, false, err
	}
	var marks []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if perr != nil {
			continue
		}
		marks = append(marks, n)
	}
	if len(marks) == 0 {
		return "", 0, false, nil
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
	w := marks[len(marks)-1]
	return filepath.Join(dir, snapName(w)), w, true, nil
}

// PruneSnapshots removes every snapshot older than the newest.
func PruneSnapshots(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	_, newest, ok, err := LatestSnapshot(dir)
	if err != nil || !ok {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if perr != nil || n == newest {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
