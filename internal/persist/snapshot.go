// Package persist implements Sedna's persistency strategies (§III, Table I:
// "periodically flush or write-ahead logs according users' needs"): binary
// snapshots of the memory image — full bases plus incremental deltas chained
// by a manifest — a manager that combines snapshots with the write-ahead log
// in internal/wal, and crash recovery that reloads the manifest chain and
// replays the log suffix. The paper motivates this as the backstop for
// whole-cluster power loss (§III-C): replicas protect against individual
// node failures, periodic flushing against losing all three replicas at
// once.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sedna/internal/vfs"
)

// Snapshot file format (little endian):
//
//	8  magic "SEDNASNP"
//	u8 version (1 legacy full, 2 current)
//	u64 WAL watermark (next sequence at capture time)
//	u64 entry count
//	v1 entry: u32 key length, key, u32 blob length, blob
//	v2 entry: u32 key length, key, u8 flags (bit0 tombstone), u32 blob
//	          length, blob
//	u32 CRC32 over everything above
//
// v2 adds the explicit tombstone flag so incremental (delta) snapshots can
// record deletions — an empty blob is a legal stored value, so absence of
// bytes cannot encode one. Files are written to a temp name, fsynced,
// renamed into place, and the directory is fsynced so the new name survives
// a crash.

var snapMagic = [8]byte{'S', 'E', 'D', 'N', 'A', 'S', 'N', 'P'}

const (
	snapVersion1 = 1
	snapVersion2 = 2

	flagTombstone = 1
)

// ErrCorruptSnapshot reports a snapshot that failed validation.
var ErrCorruptSnapshot = errors.New("persist: corrupt snapshot")

const (
	snapPrefix  = "snap-"
	deltaPrefix = "delta-"
	snapSuffix  = ".snap"
)

func snapName(watermark uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, watermark, snapSuffix)
}

func deltaName(watermark uint64) string {
	return fmt.Sprintf("%s%020d%s", deltaPrefix, watermark, snapSuffix)
}

// WriteSnapshot captures the entries supplied by iterate into a full
// snapshot file in dir, tagged with the WAL watermark, and returns its
// path. iterate must call emit once per entry and return nil.
func WriteSnapshot(dir string, watermark uint64, iterate func(emit func(key string, blob []byte)) error) (string, error) {
	return WriteSnapshotFS(vfs.OS, dir, snapName(watermark), watermark, func(emit func(key string, blob []byte, tombstone bool)) error {
		return iterate(func(key string, blob []byte) { emit(key, blob, false) })
	})
}

// WriteSnapshotFS writes one snapshot file (full or delta — the caller
// picks the name) through fsys with full crash discipline: temp file,
// fsync, rename, directory fsync.
func WriteSnapshotFS(fsys vfs.FS, dir, name string, watermark uint64, iterate func(emit func(key string, blob []byte, tombstone bool)) error) (string, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, snapMagic[:]...)
	buf = append(buf, snapVersion2)
	buf = binary.LittleEndian.AppendUint64(buf, watermark)
	countAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // patched below
	var count uint64
	err := iterate(func(key string, blob []byte, tombstone bool) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
		buf = append(buf, key...)
		var flags byte
		if tombstone {
			flags |= flagTombstone
			blob = nil
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
		count++
	})
	if err != nil {
		return "", err
	}
	binary.LittleEndian.PutUint64(buf[countAt:], count)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	final := filepath.Join(dir, name)
	if err := writeDurable(fsys, dir, final, buf); err != nil {
		return "", err
	}
	return final, nil
}

// writeDurable lands data at final so that after a crash either the old
// content or the complete new content is visible: write a temp, fsync it,
// rename over final, fsync the directory.
func writeDurable(fsys vfs.FS, dir, final string, data []byte) error {
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// ReadSnapshot loads the snapshot at path, invoking apply per entry, and
// returns the WAL watermark recorded at capture time. A nil blob reports a
// tombstone (v2 deltas); a present-but-empty value arrives as a non-nil
// empty slice.
func ReadSnapshot(path string, apply func(key string, blob []byte) error) (uint64, error) {
	return ReadSnapshotFS(vfs.OS, path, apply)
}

// ReadSnapshotFS is ReadSnapshot over an injectable filesystem.
func ReadSnapshotFS(fsys vfs.FS, path string, apply func(key string, blob []byte) error) (uint64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(snapMagic)+1+8+8+4 {
		return 0, fmt.Errorf("%w: too short", ErrCorruptSnapshot)
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return 0, fmt.Errorf("%w: bad checksum", ErrCorruptSnapshot)
	}
	off := 0
	if string(body[:8]) != string(snapMagic[:]) {
		return 0, fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	off += 8
	version := body[off]
	if version != snapVersion1 && version != snapVersion2 {
		return 0, fmt.Errorf("%w: unknown version %d", ErrCorruptSnapshot, version)
	}
	off++
	watermark := binary.LittleEndian.Uint64(body[off:])
	off += 8
	count := binary.LittleEndian.Uint64(body[off:])
	off += 8
	for i := uint64(0); i < count; i++ {
		if len(body)-off < 4 {
			return 0, fmt.Errorf("%w: truncated entry %d", ErrCorruptSnapshot, i)
		}
		kl := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if len(body)-off < kl {
			return 0, fmt.Errorf("%w: truncated key %d", ErrCorruptSnapshot, i)
		}
		key := string(body[off : off+kl])
		off += kl
		var flags byte
		if version >= snapVersion2 {
			if len(body)-off < 1 {
				return 0, fmt.Errorf("%w: truncated flags %d", ErrCorruptSnapshot, i)
			}
			flags = body[off]
			off++
		}
		if len(body)-off < 4 {
			return 0, fmt.Errorf("%w: truncated blob length %d", ErrCorruptSnapshot, i)
		}
		bl := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if len(body)-off < bl {
			return 0, fmt.Errorf("%w: truncated blob %d", ErrCorruptSnapshot, i)
		}
		var blob []byte
		if flags&flagTombstone == 0 {
			blob = make([]byte, bl)
			copy(blob, body[off:off+bl])
		}
		off += bl
		if err := apply(key, blob); err != nil {
			return 0, err
		}
	}
	if off != len(body) {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, len(body)-off)
	}
	return watermark, nil
}

// Manifest pins the snapshot chain: the full base plus the deltas layered
// on it, in application order, and the WAL watermark recovery resumes from.
// WAL truncation is driven only by a committed manifest — a snapshot that
// crashed before its manifest rename simply never happened.
type Manifest struct {
	Version   int      `json:"version"`
	Watermark uint64   `json:"watermark"`
	Chain     []string `json:"chain"`
	CRC       uint32   `json:"crc"`
}

const manifestName = "MANIFEST"

func manifestCRC(m Manifest) uint32 {
	m.CRC = 0
	b, _ := json.Marshal(m)
	return crc32.ChecksumIEEE(b)
}

// WriteManifest commits m atomically (temp + rename + dir fsync).
func WriteManifest(fsys vfs.FS, dir string, m Manifest) error {
	m.Version = 1
	m.CRC = manifestCRC(m)
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeDurable(fsys, dir, filepath.Join(dir, manifestName), b)
}

// ReadManifest loads the committed manifest; ok is false when none exists.
func ReadManifest(fsys vfs.FS, dir string) (Manifest, bool, error) {
	var m Manifest
	b, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return m, false, nil
		}
		return m, false, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, false, fmt.Errorf("persist: corrupt manifest: %w", err)
	}
	if manifestCRC(m) != m.CRC {
		return m, false, fmt.Errorf("persist: corrupt manifest: bad crc")
	}
	return m, true, nil
}

// listSnapFiles returns every snapshot/delta file name in dir.
func listSnapFiles(fsys vfs.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		if strings.HasPrefix(name, snapPrefix) || strings.HasPrefix(name, deltaPrefix) {
			out = append(out, name)
		}
	}
	return out, nil
}

// pruneToChain removes snapshot files that are not part of the committed
// chain, making the removals durable with a directory fsync.
func pruneToChain(fsys vfs.FS, dir string, chain []string) error {
	keep := map[string]bool{}
	for _, name := range chain {
		keep[name] = true
	}
	files, err := listSnapFiles(fsys, dir)
	if err != nil {
		return err
	}
	removed := false
	for _, name := range files {
		if keep[name] {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return fsys.SyncDir(dir)
	}
	return nil
}

// LatestSnapshot returns the path and watermark of the newest valid-looking
// full snapshot file in dir, or ok=false when none exists. It predates the
// manifest and remains for pre-manifest directories.
func LatestSnapshot(dir string) (path string, watermark uint64, ok bool, err error) {
	return latestSnapshotFS(vfs.OS, dir)
}

func latestSnapshotFS(fsys vfs.FS, dir string) (path string, watermark uint64, ok bool, err error) {
	names, err := listSnapFiles(fsys, dir)
	if err != nil {
		return "", 0, false, err
	}
	var marks []uint64
	for _, name := range names {
		if !strings.HasPrefix(name, snapPrefix) {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if perr != nil {
			continue
		}
		marks = append(marks, n)
	}
	if len(marks) == 0 {
		return "", 0, false, nil
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
	w := marks[len(marks)-1]
	return filepath.Join(dir, snapName(w)), w, true, nil
}

// PruneSnapshots removes every full snapshot older than the newest. It
// predates the manifest (which prunes to the committed chain) and remains
// for pre-manifest directories.
func PruneSnapshots(dir string) error {
	_, newest, ok, err := LatestSnapshot(dir)
	if err != nil || !ok {
		return err
	}
	names, err := listSnapFiles(vfs.OS, dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if !strings.HasPrefix(name, snapPrefix) {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if perr != nil || n == newest {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
