package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"
	"time"

	"sedna/internal/obs"
	"sedna/internal/vfs"
	"sedna/internal/wal"
)

// Strategy selects the durability mode, the paper's user-facing trade-off
// between speed and availability (Table I).
type Strategy int

const (
	// None keeps data in memory only; replicas are the sole protection.
	None Strategy = iota
	// Periodic flushes a full snapshot on an interval.
	Periodic
	// WriteAhead logs every mutation before acknowledging it.
	WriteAhead
	// Hybrid combines the write-ahead log with periodic snapshots that
	// truncate it.
	Hybrid
)

// String names the strategy for logs and flags.
func (s Strategy) String() string {
	switch s {
	case None:
		return "none"
	case Periodic:
		return "periodic"
	case WriteAhead:
		return "wal"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config parameterises a Manager.
type Config struct {
	// Dir is the node's persistence root; snapshots live in Dir and the
	// WAL in Dir/wal.
	Dir string
	// Strategy selects the durability mode.
	Strategy Strategy
	// FlushInterval is the snapshot period for Periodic and Hybrid; zero
	// selects 30s.
	FlushInterval time.Duration
	// WALSync is the log's sync policy for WriteAhead and Hybrid.
	WALSync wal.SyncPolicy
	// WALSegmentBytes overrides the log's segment size; zero keeps the
	// log's default.
	WALSegmentBytes int64
	// WALGroupWindow is the group-commit dwell passed to the log.
	WALGroupWindow time.Duration
	// WALNoGroupCommit disables fsync coalescing (benchmark baseline).
	WALNoGroupCommit bool
	// FullEvery writes a full snapshot after this many incremental deltas
	// under Hybrid; zero selects 8.
	FullEvery int
	// RecoveryWorkers shards Recover's apply across this many goroutines
	// (same key always lands on the same shard, preserving per-key
	// order). Values below 2 recover serially; parallel recovery requires
	// an apply callback that is safe for concurrent use.
	RecoveryWorkers int
	// FS is the filesystem; nil selects the real one. The crash harness
	// injects vfs.Fault.
	FS vfs.FS
	// Obs receives persistence metrics (persist.snapshots,
	// persist.recovery_ms, wal.records_quarantined and the wal.* family);
	// nil disables.
	Obs *obs.Registry
}

// Source provides the memory image for snapshots.
type Source interface {
	// SnapshotRange must invoke emit once per live entry.
	SnapshotRange(emit func(key string, blob []byte))
}

// KeyReader is an optional Source extension: point lookups let the manager
// write incremental snapshots containing only the keys dirtied since the
// previous one. Without it every snapshot is a full image.
type KeyReader interface {
	// ReadKey returns the live blob for key, or ok=false when the key no
	// longer exists (the delta records a tombstone).
	ReadKey(key string) (blob []byte, ok bool)
}

// Manager drives a node's persistence according to the configured strategy.
type Manager struct {
	cfg  Config
	src  Source
	log  *wal.Log
	fsys vfs.FS

	// dirtyMu guards the dirty-key set AND spans sequence assignment in
	// LogWrite, so a snapshot's (watermark, dirty-set) capture is atomic:
	// every record below the watermark has its key in the captured set.
	dirtyMu sync.Mutex
	dirty   map[string]struct{}

	// snapMu serialises snapshots and guards the chain state.
	snapMu sync.Mutex
	chain  []string
	deltas int // deltas since the last full snapshot

	mu     sync.Mutex
	closed bool

	stop chan struct{}
	done chan struct{}

	nSnapshots   *obs.Counter
	nQuarantined *obs.Counter
	gRecoveryMs  *obs.Gauge
}

// NewManager opens (or creates) the persistence state in cfg.Dir. Call
// Recover before serving traffic, then Start to begin periodic flushing.
func NewManager(cfg Config, src Source) (*Manager, error) {
	if cfg.Strategy != None && cfg.Dir == "" {
		return nil, errors.New("persist: Dir required")
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 30 * time.Second
	}
	if cfg.FullEvery <= 0 {
		cfg.FullEvery = 8
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS
	}
	m := &Manager{
		cfg: cfg, src: src, fsys: cfg.FS,
		dirty:        map[string]struct{}{},
		nSnapshots:   cfg.Obs.Counter("persist.snapshots"),
		nQuarantined: cfg.Obs.Counter("wal.records_quarantined"),
		gRecoveryMs:  cfg.Obs.Gauge("persist.recovery_ms"),
	}
	if cfg.Strategy == WriteAhead || cfg.Strategy == Hybrid {
		l, err := wal.Open(wal.Options{
			Dir:           m.walDir(),
			Sync:          cfg.WALSync,
			SegmentBytes:  cfg.WALSegmentBytes,
			GroupWindow:   cfg.WALGroupWindow,
			NoGroupCommit: cfg.WALNoGroupCommit,
			FS:            cfg.FS,
			Obs:           cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		m.log = l
	}
	if cfg.Strategy != None {
		if man, ok, err := ReadManifest(m.fsys, cfg.Dir); err != nil {
			return nil, err
		} else if ok {
			m.chain = man.Chain
			m.deltas = len(man.Chain) - 1
		}
	}
	return m, nil
}

func (m *Manager) walDir() string { return filepath.Join(m.cfg.Dir, "wal") }

// Degraded reports whether durability is lost: the WAL hit a sticky fsync
// failure and no longer acknowledges writes. The node should stop acking
// durable writes and report itself unhealthy.
func (m *Manager) Degraded() bool {
	return m.log != nil && m.log.Failed() != nil
}

// Mutation record payload: u32 key length, key, blob. An empty blob encodes
// a deletion.
func encodeMutation(key string, blob []byte) []byte {
	b := make([]byte, 0, 4+len(key)+len(blob))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	b = append(b, blob...)
	return b
}

func decodeMutation(p []byte) (key string, blob []byte, err error) {
	if len(p) < 4 {
		return "", nil, errors.New("persist: short mutation record")
	}
	kl := int(binary.LittleEndian.Uint32(p))
	if len(p) < 4+kl {
		return "", nil, errors.New("persist: truncated mutation key")
	}
	return string(p[4 : 4+kl]), p[4+kl:], nil
}

// LogWrite records a row mutation. Under None and Periodic it is a no-op;
// under WriteAhead and Hybrid it appends to the log and returns only after
// the configured sync policy is satisfied. A nil blob logs a deletion.
// Callers must apply the mutation to the store BEFORE logging it, so the
// snapshot source is never behind the dirty-key set.
func (m *Manager) LogWrite(key string, blob []byte) error {
	if m.log == nil {
		return nil
	}
	// Sequence assignment and dirty-marking are atomic with respect to the
	// snapshot capture (see SnapshotNow); the durability wait happens
	// outside the lock so writers still share group-commit fsyncs.
	m.dirtyMu.Lock()
	seq, err := m.log.AppendNoWait(encodeMutation(key, blob))
	if err == nil {
		m.dirty[key] = struct{}{}
	}
	m.dirtyMu.Unlock()
	if err != nil {
		return err
	}
	if m.cfg.WALSync == wal.SyncAlways {
		return m.log.WaitDurable(seq)
	}
	return nil
}

// Recover rebuilds the memory image: the manifest's snapshot chain (full
// base, then deltas) and then the WAL suffix past the manifest watermark.
// apply receives entries in recovery order (later entries supersede earlier
// ones); a nil blob means deletion. Mid-log corruption quarantines the
// damaged segment and salvages the rest (counted in
// wal.records_quarantined). With cfg.RecoveryWorkers > 1, apply is invoked
// from that many goroutines — same-key calls stay ordered — and must be
// safe for concurrent use.
func (m *Manager) Recover(apply func(key string, blob []byte) error) error {
	if m.cfg.Strategy == None {
		return nil
	}
	start := time.Now()
	emit, finish := m.applier(apply)
	err := m.recoverInto(emit)
	if ferr := finish(); err == nil {
		err = ferr
	}
	if err == nil {
		m.gRecoveryMs.Set(time.Since(start).Milliseconds())
	}
	return err
}

func (m *Manager) recoverInto(emit func(key string, blob []byte) error) error {
	var from uint64
	man, ok, err := ReadManifest(m.fsys, m.cfg.Dir)
	if err != nil {
		return err
	}
	if ok {
		for _, name := range man.Chain {
			if _, err := ReadSnapshotFS(m.fsys, filepath.Join(m.cfg.Dir, name), emit); err != nil {
				return err
			}
		}
		from = man.Watermark
	} else {
		// Pre-manifest directory: newest full snapshot, if any.
		path, watermark, found, err := latestSnapshotFS(m.fsys, m.cfg.Dir)
		if err != nil {
			return err
		}
		if found {
			if _, err := ReadSnapshotFS(m.fsys, path, emit); err != nil {
				return err
			}
			from = watermark
		}
	}
	if m.cfg.Strategy == Periodic {
		return nil
	}
	stats, err := wal.ReplayWith(wal.ReplayOptions{FS: m.fsys, Dir: m.walDir(), From: from, Quarantine: true}, func(r wal.Record) error {
		key, blob, derr := decodeMutation(r.Payload)
		if derr != nil {
			return derr
		}
		if len(blob) == 0 {
			return emit(key, nil)
		}
		return emit(key, blob)
	})
	m.nQuarantined.Add(stats.RecordsQuarantined)
	return err
}

// applier wraps apply for recovery: serial by default; with
// RecoveryWorkers > 1 it shards by key hash across worker goroutines so
// per-vnode replay proceeds in parallel while same-key order is preserved
// (same key, same shard, FIFO).
func (m *Manager) applier(apply func(key string, blob []byte) error) (emit func(string, []byte) error, finish func() error) {
	workers := m.cfg.RecoveryWorkers
	if workers < 2 {
		return apply, func() error { return nil }
	}
	type pair struct {
		key  string
		blob []byte
	}
	chans := make([]chan pair, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan pair, 256)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for p := range chans[i] {
				if errs[i] != nil {
					continue // drain after first failure
				}
				errs[i] = apply(p.key, p.blob)
			}
		}(i)
	}
	emit = func(key string, blob []byte) error {
		h := fnv.New32a()
		h.Write([]byte(key))
		chans[h.Sum32()%uint32(workers)] <- pair{key: key, blob: blob}
		return nil
	}
	finish = func() error {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	return emit, finish
}

// SnapshotNow captures a snapshot immediately — a full image, or under
// Hybrid an incremental delta of the keys dirtied since the last one when
// the source supports point reads — commits it to the manifest, prunes
// files outside the chain and truncates the covered WAL prefix.
func (m *Manager) SnapshotNow() error {
	if m.cfg.Strategy == None || m.cfg.Strategy == WriteAhead {
		return nil
	}
	m.snapMu.Lock()
	defer m.snapMu.Unlock()

	// Atomic capture: after this block every WAL record below watermark
	// has its key either in captured (this snapshot covers it) or in the
	// live dirty set of a later snapshot — never silently truncated.
	m.dirtyMu.Lock()
	var watermark uint64 = 1
	if m.log != nil {
		watermark = m.log.NextSeq()
	}
	captured := m.dirty
	m.dirty = map[string]struct{}{}
	m.dirtyMu.Unlock()
	restoreDirty := func() {
		m.dirtyMu.Lock()
		for k := range captured {
			m.dirty[k] = struct{}{}
		}
		m.dirtyMu.Unlock()
	}

	// The records the snapshot supersedes must be durable before the
	// manifest watermark commits past them.
	if m.log != nil {
		if err := m.log.Sync(); err != nil {
			restoreDirty()
			return err
		}
	}

	kr, canDelta := m.src.(KeyReader)
	delta := m.cfg.Strategy == Hybrid && canDelta && len(m.chain) > 0 && m.deltas < m.cfg.FullEvery
	if delta && len(captured) == 0 {
		return nil // nothing changed since the last snapshot
	}

	var name string
	var err error
	if delta {
		name = deltaName(watermark)
		_, err = WriteSnapshotFS(m.fsys, m.cfg.Dir, name, watermark, func(emit func(key string, blob []byte, tombstone bool)) error {
			for key := range captured {
				blob, ok := kr.ReadKey(key)
				emit(key, blob, !ok)
			}
			return nil
		})
	} else {
		name = snapName(watermark)
		_, err = WriteSnapshotFS(m.fsys, m.cfg.Dir, name, watermark, func(emit func(key string, blob []byte, tombstone bool)) error {
			m.src.SnapshotRange(func(key string, blob []byte) { emit(key, blob, false) })
			return nil
		})
	}
	if err != nil {
		restoreDirty()
		return err
	}

	var chain []string
	if delta {
		chain = append(append([]string(nil), m.chain...), name)
	} else {
		chain = []string{name}
	}
	if err := WriteManifest(m.fsys, m.cfg.Dir, Manifest{Watermark: watermark, Chain: chain}); err != nil {
		restoreDirty()
		return err
	}
	m.chain = chain
	if delta {
		m.deltas++
	} else {
		m.deltas = 0
	}
	m.nSnapshots.Inc()

	if err := pruneToChain(m.fsys, m.cfg.Dir, m.chain); err != nil {
		return err
	}
	if m.log != nil {
		return wal.TruncateFS(m.fsys, m.walDir(), watermark)
	}
	return nil
}

// Start launches the periodic flush loop when the strategy calls for one.
func (m *Manager) Start() {
	if m.cfg.Strategy != Periodic && m.cfg.Strategy != Hybrid {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil || m.closed {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(m.cfg.FlushInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.SnapshotNow()
			case <-stop:
				return
			}
		}
	}(m.stop, m.done)
}

// Close stops the flush loop and closes the WAL. It does not take a final
// snapshot; callers wanting one should SnapshotNow first.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if m.log != nil {
		return m.log.Close()
	}
	return nil
}
