package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"sedna/internal/wal"
)

// Strategy selects the durability mode, the paper's user-facing trade-off
// between speed and availability (Table I).
type Strategy int

const (
	// None keeps data in memory only; replicas are the sole protection.
	None Strategy = iota
	// Periodic flushes a full snapshot on an interval.
	Periodic
	// WriteAhead logs every mutation before acknowledging it.
	WriteAhead
	// Hybrid combines the write-ahead log with periodic snapshots that
	// truncate it.
	Hybrid
)

// String names the strategy for logs and flags.
func (s Strategy) String() string {
	switch s {
	case None:
		return "none"
	case Periodic:
		return "periodic"
	case WriteAhead:
		return "wal"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config parameterises a Manager.
type Config struct {
	// Dir is the node's persistence root; snapshots live in Dir and the
	// WAL in Dir/wal.
	Dir string
	// Strategy selects the durability mode.
	Strategy Strategy
	// FlushInterval is the snapshot period for Periodic and Hybrid; zero
	// selects 30s.
	FlushInterval time.Duration
	// WALSync is the log's sync policy for WriteAhead and Hybrid.
	WALSync wal.SyncPolicy
}

// Source provides the memory image for snapshots.
type Source interface {
	// SnapshotRange must invoke emit once per live entry.
	SnapshotRange(emit func(key string, blob []byte))
}

// Manager drives a node's persistence according to the configured strategy.
type Manager struct {
	cfg Config
	src Source
	log *wal.Log

	mu     sync.Mutex
	closed bool

	stop chan struct{}
	done chan struct{}
}

// NewManager opens (or creates) the persistence state in cfg.Dir. Call
// Recover before serving traffic, then Start to begin periodic flushing.
func NewManager(cfg Config, src Source) (*Manager, error) {
	if cfg.Strategy != None && cfg.Dir == "" {
		return nil, errors.New("persist: Dir required")
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 30 * time.Second
	}
	m := &Manager{cfg: cfg, src: src}
	if cfg.Strategy == WriteAhead || cfg.Strategy == Hybrid {
		l, err := wal.Open(wal.Options{Dir: m.walDir(), Sync: cfg.WALSync})
		if err != nil {
			return nil, err
		}
		m.log = l
	}
	return m, nil
}

func (m *Manager) walDir() string { return filepath.Join(m.cfg.Dir, "wal") }

// Mutation record payload: u32 key length, key, blob. An empty blob encodes
// a deletion.
func encodeMutation(key string, blob []byte) []byte {
	b := make([]byte, 0, 4+len(key)+len(blob))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	b = append(b, blob...)
	return b
}

func decodeMutation(p []byte) (key string, blob []byte, err error) {
	if len(p) < 4 {
		return "", nil, errors.New("persist: short mutation record")
	}
	kl := int(binary.LittleEndian.Uint32(p))
	if len(p) < 4+kl {
		return "", nil, errors.New("persist: truncated mutation key")
	}
	return string(p[4 : 4+kl]), p[4+kl:], nil
}

// LogWrite records a row mutation. Under None and Periodic it is a no-op;
// under WriteAhead and Hybrid it appends to the log and returns only after
// the configured sync policy is satisfied. A nil blob logs a deletion.
func (m *Manager) LogWrite(key string, blob []byte) error {
	if m.log == nil {
		return nil
	}
	_, err := m.log.Append(encodeMutation(key, blob))
	return err
}

// Recover rebuilds the memory image: newest snapshot first, then the WAL
// suffix past the snapshot's watermark. apply receives entries in recovery
// order (later entries supersede earlier ones); a nil blob means deletion.
func (m *Manager) Recover(apply func(key string, blob []byte) error) error {
	if m.cfg.Strategy == None {
		return nil
	}
	var from uint64
	path, watermark, ok, err := LatestSnapshot(m.cfg.Dir)
	if err != nil {
		return err
	}
	if ok {
		if _, err := ReadSnapshot(path, apply); err != nil {
			return err
		}
		from = watermark
	}
	if m.cfg.Strategy == Periodic {
		return nil
	}
	return wal.Replay(m.walDir(), from, func(r wal.Record) error {
		key, blob, err := decodeMutation(r.Payload)
		if err != nil {
			return err
		}
		if len(blob) == 0 {
			return apply(key, nil)
		}
		return apply(key, blob)
	})
}

// SnapshotNow captures a snapshot immediately, prunes older snapshots and —
// under Hybrid — truncates the covered WAL prefix.
func (m *Manager) SnapshotNow() error {
	if m.cfg.Strategy == None || m.cfg.Strategy == WriteAhead {
		return nil
	}
	var watermark uint64 = 1
	if m.log != nil {
		if err := m.log.Sync(); err != nil {
			return err
		}
		watermark = m.log.NextSeq()
	}
	_, err := WriteSnapshot(m.cfg.Dir, watermark, func(emit func(key string, blob []byte)) error {
		m.src.SnapshotRange(emit)
		return nil
	})
	if err != nil {
		return err
	}
	if err := PruneSnapshots(m.cfg.Dir); err != nil {
		return err
	}
	if m.log != nil {
		return wal.Truncate(m.walDir(), watermark)
	}
	return nil
}

// Start launches the periodic flush loop when the strategy calls for one.
func (m *Manager) Start() {
	if m.cfg.Strategy != Periodic && m.cfg.Strategy != Hybrid {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil || m.closed {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(m.cfg.FlushInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.SnapshotNow()
			case <-stop:
				return
			}
		}
	}(m.stop, m.done)
}

// Close stops the flush loop and closes the WAL. It does not take a final
// snapshot; callers wanting one should SnapshotNow first.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if m.log != nil {
		return m.log.Close()
	}
	return nil
}
