package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sedna/internal/wal"
)

// mapSource is an in-memory Source for tests.
type mapSource struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapSource() *mapSource { return &mapSource{m: map[string][]byte{}} }

func (s *mapSource) set(k string, v []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = append([]byte(nil), v...)
}

func (s *mapSource) del(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, k)
}

func (s *mapSource) SnapshotRange(emit func(key string, blob []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.m {
		emit(k, v)
	}
}

func recoverInto(t *testing.T, m *Manager) map[string][]byte {
	t.Helper()
	got := map[string][]byte{}
	err := m.Recover(func(key string, blob []byte) error {
		if blob == nil {
			delete(got, key)
		} else {
			got[key] = append([]byte(nil), blob...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	entries := map[string][]byte{"a": []byte("1"), "b": []byte("22"), "empty": nil}
	path, err := WriteSnapshot(dir, 42, func(emit func(string, []byte)) error {
		for k, v := range entries {
			emit(k, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]byte{}
	watermark, err := ReadSnapshot(path, func(key string, blob []byte) error {
		got[key] = blob
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if watermark != 42 {
		t.Fatalf("watermark = %d", watermark)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries", len(got))
	}
	for k, v := range entries {
		if string(got[k]) != string(v) {
			t.Fatalf("entry %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteSnapshot(dir, 1, func(emit func(string, []byte)) error {
		emit("k", []byte("v"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, err := ReadSnapshot(path, func(string, []byte) error { return nil }); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v", err)
	}
}

func TestLatestSnapshotPicksNewest(t *testing.T) {
	dir := t.TempDir()
	for _, w := range []uint64{5, 50, 20} {
		if _, err := WriteSnapshot(dir, w, func(emit func(string, []byte)) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	path, watermark, ok, err := LatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if watermark != 50 || filepath.Base(path) != snapName(50) {
		t.Fatalf("latest = %q (%d)", path, watermark)
	}
}

func TestLatestSnapshotEmptyDir(t *testing.T) {
	_, _, ok, err := LatestSnapshot(t.TempDir())
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	_, _, ok, err = LatestSnapshot(filepath.Join(t.TempDir(), "missing"))
	if err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}

func TestPruneSnapshots(t *testing.T) {
	dir := t.TempDir()
	for _, w := range []uint64{1, 2, 3} {
		WriteSnapshot(dir, w, func(emit func(string, []byte)) error { return nil })
	}
	if err := PruneSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != snapName(3) {
		t.Fatalf("entries after prune = %v", entries)
	}
}

func TestStrategyNoneIsNoOp(t *testing.T) {
	m, err := NewManager(Config{Strategy: None}, newMapSource())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.LogWrite("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if got := recoverInto(t, m); len(got) != 0 {
		t.Fatalf("recovered %v under None", got)
	}
}

func TestWriteAheadRecovery(t *testing.T) {
	dir := t.TempDir()
	src := newMapSource()
	m, err := NewManager(Config{Dir: dir, Strategy: WriteAhead, WALSync: wal.SyncAlways}, src)
	if err != nil {
		t.Fatal(err)
	}
	m.LogWrite("a", []byte("1"))
	m.LogWrite("b", []byte("2"))
	m.LogWrite("a", []byte("3")) // overwrite
	m.LogWrite("b", nil)         // delete
	m.Close()

	m2, err := NewManager(Config{Dir: dir, Strategy: WriteAhead}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got := recoverInto(t, m2)
	if len(got) != 1 || string(got["a"]) != "3" {
		t.Fatalf("recovered = %v", got)
	}
}

func TestPeriodicRecovery(t *testing.T) {
	dir := t.TempDir()
	src := newMapSource()
	src.set("x", []byte("10"))
	src.set("y", []byte("20"))
	m, err := NewManager(Config{Dir: dir, Strategy: Periodic}, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	// Mutations after the snapshot are lost under Periodic — that is the
	// documented trade-off.
	src.set("z", []byte("30"))

	m2, _ := NewManager(Config{Dir: dir, Strategy: Periodic}, newMapSource())
	defer m2.Close()
	got := recoverInto(t, m2)
	if len(got) != 2 || string(got["x"]) != "10" || string(got["y"]) != "20" {
		t.Fatalf("recovered = %v", got)
	}
}

func TestHybridSnapshotPlusLogSuffix(t *testing.T) {
	dir := t.TempDir()
	src := newMapSource()
	m, err := NewManager(Config{Dir: dir, Strategy: Hybrid, WALSync: wal.SyncAlways}, src)
	if err != nil {
		t.Fatal(err)
	}
	src.set("a", []byte("1"))
	m.LogWrite("a", []byte("1"))
	src.set("b", []byte("2"))
	m.LogWrite("b", []byte("2"))
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations land only in the log.
	m.LogWrite("c", []byte("3"))
	m.LogWrite("a", nil)
	m.Close()

	m2, err := NewManager(Config{Dir: dir, Strategy: Hybrid}, newMapSource())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got := recoverInto(t, m2)
	if len(got) != 2 || string(got["b"]) != "2" || string(got["c"]) != "3" {
		t.Fatalf("recovered = %v", got)
	}
}

func TestHybridTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	src := newMapSource()
	m, err := NewManager(Config{Dir: dir, Strategy: Hybrid, WALSync: wal.SyncAlways}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	big := make([]byte, 1024)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		src.set(key, big)
		m.LogWrite(key, big)
	}
	walDir := filepath.Join(dir, "wal")
	before, _ := os.ReadDir(walDir)
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// More writes to open a fresh segment boundary check.
	for i := 0; i < 10; i++ {
		m.LogWrite("later", big)
	}
	after, _ := os.ReadDir(walDir)
	if len(before) > 1 && len(after) >= len(before) {
		t.Fatalf("wal segments not truncated: %d -> %d", len(before), len(after))
	}
}

func TestPeriodicFlushLoop(t *testing.T) {
	dir := t.TempDir()
	src := newMapSource()
	src.set("k", []byte("v"))
	m, err := NewManager(Config{Dir: dir, Strategy: Periodic, FlushInterval: 10 * time.Millisecond}, src)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, ok, _ := LatestSnapshot(dir); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flush loop never produced a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Close()
}

func TestManagerCloseIdempotent(t *testing.T) {
	m, err := NewManager(Config{Dir: t.TempDir(), Strategy: Hybrid}, newMapSource())
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMutationCodec(t *testing.T) {
	for _, tc := range []struct {
		key  string
		blob []byte
	}{
		{"k", []byte("v")},
		{"", nil},
		{"long-key-with/slashes", make([]byte, 4096)},
	} {
		key, blob, err := decodeMutation(encodeMutation(tc.key, tc.blob))
		if err != nil {
			t.Fatal(err)
		}
		if key != tc.key || string(blob) != string(tc.blob) {
			t.Fatalf("round trip failed for %q", tc.key)
		}
	}
	if _, _, err := decodeMutation([]byte{1, 2}); err == nil {
		t.Fatal("short record accepted")
	}
	if _, _, err := decodeMutation([]byte{10, 0, 0, 0, 'x'}); err == nil {
		t.Fatal("truncated key accepted")
	}
}
