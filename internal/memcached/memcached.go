// Package memcached implements the paper's baseline (§VI): a
// memcached-style cache — a plain network front-end over the slab/LRU store
// in internal/memstore, with no replication, no coordination and no quorum
// — plus a client that shards keys across servers with ketama-style
// consistent hashing, exactly the "some MemCached clients support a
// distributed way to write data" setup the evaluation compares against.
//
// The client supports the two modes of Fig. 7: Replicas=1 writes each key
// once (Fig. 7b); Replicas=3 issues the three writes/reads SEQUENTIALLY to
// three distinct servers (Fig. 7a) — sequential because a standard
// memcached client has no server-side replication and must do each copy as
// an separate round trip, which is precisely the behaviour Sedna's parallel
// quorum writes beat.
package memcached

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"sedna/internal/kv"
	"sedna/internal/memstore"
	"sedna/internal/obs"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// Opcodes (0x04xx).
const (
	OpGet    uint16 = 0x0401
	OpSet    uint16 = 0x0402
	OpDelete uint16 = 0x0403
	OpStats  uint16 = 0x0404
)

// Statuses.
const (
	stOK uint16 = iota
	stMiss
	stError
)

// ErrMiss reports a cache miss.
var ErrMiss = errors.New("memcached: miss")

// Server is one cache node.
type Server struct {
	store *memstore.Store
	tr    transport.Transport
}

// NewServer builds a cache server over the given transport.
func NewServer(tr transport.Transport, memoryLimit int64) *Server {
	return &Server{
		store: memstore.New(memstore.Config{MemoryLimit: memoryLimit}),
		tr:    tr,
	}
}

// Start begins serving.
func (s *Server) Start() error {
	mux := transport.NewMux()
	mux.HandleFunc(OpGet, s.handleGet)
	mux.HandleFunc(OpSet, s.handleSet)
	mux.HandleFunc(OpDelete, s.handleDelete)
	mux.HandleFunc(OpStats, s.handleStats)
	s.registerExtended(mux)
	return s.tr.Serve(mux.Handle)
}

// Close stops the server.
func (s *Server) Close() { s.tr.Close() }

// Store exposes the backing store (tests).
func (s *Server) Store() *memstore.Store { return s.store }

func (s *Server) handleGet(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	key := d.Str()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	it, ok := s.store.Get(key)
	var e wire.Enc
	if !ok {
		e.U16(stMiss)
		return transport.Message{Op: OpGet, Body: e.B}, nil
	}
	e.U16(stOK)
	e.Bytes(it.Value)
	e.U32(it.Flags)
	return transport.Message{Op: OpGet, Body: e.B}, nil
}

func (s *Server) handleSet(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	key := d.Str()
	value := d.Bytes()
	flags := d.U32()
	ttlMs := d.U32()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	var ttl time.Duration
	if ttlMs > 0 {
		ttl = time.Duration(ttlMs) * time.Millisecond
	}
	var e wire.Enc
	// value is already our own copy (d.Bytes), so the store adopts it
	// instead of copying a second time.
	if err := s.store.SetOwned(key, value, flags, ttl); err != nil {
		e.U16(stError)
		e.Str(err.Error())
		return transport.Message{Op: OpSet, Body: e.B}, nil
	}
	e.U16(stOK)
	return transport.Message{Op: OpSet, Body: e.B}, nil
}

func (s *Server) handleDelete(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	key := d.Str()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	var e wire.Enc
	if s.store.Delete(key) {
		e.U16(stOK)
	} else {
		e.U16(stMiss)
	}
	return transport.Message{Op: OpDelete, Body: e.B}, nil
}

func (s *Server) handleStats(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	st := s.store.Stats()
	var e wire.Enc
	e.U16(stOK)
	e.I64(st.Items)
	e.I64(st.Bytes)
	e.U64(st.Hits)
	e.U64(st.Misses)
	e.U64(st.Sets)
	e.U64(st.Evictions)
	return transport.Message{Op: OpStats, Body: e.B}, nil
}

// ClientConfig parameterises a sharding client.
type ClientConfig struct {
	// Servers lists the cache nodes.
	Servers []string
	// Caller issues RPCs.
	Caller transport.Caller
	// Replicas is how many distinct servers each key is written to and
	// read from, sequentially. 1 reproduces plain memcached; 3 reproduces
	// the paper's "write every data three times" comparison (Fig. 7a).
	Replicas int
	// PointsPerServer sizes the ketama ring; zero selects 160.
	PointsPerServer int
	// CallTimeout bounds one RPC; zero selects 2s.
	CallTimeout time.Duration
	// Obs receives mc.op.set / mc.op.get latency histograms so the
	// baseline's figures come off the same measurement path as Sedna's;
	// nil disables.
	Obs *obs.Registry
}

// Client shards keys over cache servers with consistent hashing.
type Client struct {
	cfg    ClientConfig
	points []ketamaPoint

	hSet, hGet *obs.Histogram
	hGetMulti  *obs.Histogram
}

type ketamaPoint struct {
	hash   uint64
	server string
}

// NewClient validates the config and builds the hash ring.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Servers) == 0 {
		return nil, errors.New("memcached: Servers required")
	}
	if cfg.Caller == nil {
		return nil, errors.New("memcached: Caller required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(cfg.Servers) {
		return nil, fmt.Errorf("memcached: %d replicas but only %d servers", cfg.Replicas, len(cfg.Servers))
	}
	if cfg.PointsPerServer <= 0 {
		cfg.PointsPerServer = 160
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	c := &Client{
		cfg:       cfg,
		hSet:      cfg.Obs.Histogram("mc.op.set"),
		hGet:      cfg.Obs.Histogram("mc.op.get"),
		hGetMulti: cfg.Obs.Histogram("mc.op.get_multi"),
	}
	for _, srv := range cfg.Servers {
		for i := 0; i < cfg.PointsPerServer; i++ {
			h := ring.Hash64(kv.Key(fmt.Sprintf("%s#%d", srv, i)))
			c.points = append(c.points, ketamaPoint{hash: h, server: srv})
		}
	}
	sort.Slice(c.points, func(i, j int) bool { return c.points[i].hash < c.points[j].hash })
	return c, nil
}

// serversFor walks the ring clockwise from the key's hash, collecting n
// distinct servers.
func (c *Client) serversFor(key string, n int) []string {
	h := ring.Hash64(kv.Key(key))
	idx := sort.Search(len(c.points), func(i int) bool { return c.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; len(out) < n && i < len(c.points); i++ {
		p := c.points[(idx+i)%len(c.points)]
		if !seen[p.server] {
			seen[p.server] = true
			out = append(out, p.server)
		}
	}
	return out
}

// Set writes the key to Replicas distinct servers, one after the other —
// the sequential client-side replication the paper compares against.
func (c *Client) Set(ctx context.Context, key string, value []byte) error {
	start := time.Now()
	defer func() { c.hSet.Observe(time.Since(start)) }()
	var e wire.Enc
	e.Str(key)
	e.Bytes(value)
	e.U32(0)
	e.U32(0)
	for _, srv := range c.serversFor(key, c.cfg.Replicas) {
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		resp, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: OpSet, Body: e.B})
		cancel()
		if err != nil {
			return err
		}
		d := wire.NewDec(resp.Body)
		if st := d.U16(); st != stOK {
			return fmt.Errorf("memcached: set failed: %s", d.Str())
		}
	}
	return nil
}

// Get reads the key from Replicas distinct servers sequentially (matching
// the paper's three-read comparison) and returns the last hit; with
// Replicas=1 it is a plain sharded get. A miss on every server returns
// ErrMiss.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	start := time.Now()
	defer func() { c.hGet.Observe(time.Since(start)) }()
	var e wire.Enc
	e.Str(key)
	var value []byte
	hit := false
	for _, srv := range c.serversFor(key, c.cfg.Replicas) {
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		resp, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: OpGet, Body: e.B})
		cancel()
		if err != nil {
			return nil, err
		}
		d := wire.NewDec(resp.Body)
		if st := d.U16(); st == stOK {
			value = d.Bytes()
			hit = true
		}
	}
	if !hit {
		return nil, ErrMiss
	}
	return value, nil
}

// Delete removes the key from its replica servers.
func (c *Client) Delete(ctx context.Context, key string) error {
	var e wire.Enc
	e.Str(key)
	for _, srv := range c.serversFor(key, c.cfg.Replicas) {
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		_, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: OpDelete, Body: e.B})
		cancel()
		if err != nil {
			return err
		}
	}
	return nil
}

// Extended protocol ops beyond get/set/delete, mirroring the memcached
// text-protocol command set so the baseline is a usable cache in its own
// right.
const (
	OpAdd      uint16 = 0x0405
	OpReplace  uint16 = 0x0406
	OpCAS      uint16 = 0x0407
	OpTouch    uint16 = 0x0408
	OpFlush    uint16 = 0x0409
	OpIncr     uint16 = 0x040a
	OpGetCAS   uint16 = 0x040b
	OpGetMulti uint16 = 0x040c
)

// Extended statuses.
const (
	stExists uint16 = iota + 3 // add on present / cas conflict
	stNotStored
	// stClientError mirrors memcached's CLIENT_ERROR replies: the request
	// was well-formed at the wire level but invalid for the stored data
	// (e.g. incr on a non-numeric value).
	stClientError
)

// Protocol errors for the extended ops.
var (
	// ErrExists reports Add on a present key or a CAS conflict.
	ErrExists = errors.New("memcached: exists")
	// ErrNotStored reports Replace/Touch/Incr on an absent key.
	ErrNotStored = errors.New("memcached: not stored")
	// ErrClientError reports incr/decr on a value that is not an unsigned
	// decimal number, matching memcached's "CLIENT_ERROR cannot increment
	// or decrement non-numeric value".
	ErrClientError = errors.New("memcached: cannot increment or decrement non-numeric value")
)

func (s *Server) registerExtended(mux *transport.Mux) {
	mux.HandleFunc(OpAdd, s.handleAdd)
	mux.HandleFunc(OpReplace, s.handleReplace)
	mux.HandleFunc(OpCAS, s.handleCAS)
	mux.HandleFunc(OpTouch, s.handleTouch)
	mux.HandleFunc(OpFlush, s.handleFlush)
	mux.HandleFunc(OpIncr, s.handleIncr)
	mux.HandleFunc(OpGetCAS, s.handleGetCAS)
	mux.HandleFunc(OpGetMulti, s.handleGetMulti)
}

// maxMultiKeys bounds one get-multi frame so a malformed length prefix
// cannot allocate unbounded memory.
const maxMultiKeys = 65536

// handleGetMulti is Get over many keys in one frame ("get k1 k2 ..." in the
// text protocol): the response carries a per-key hit/miss vector aligned
// with the request.
func (s *Server) handleGetMulti(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	n := int(d.U32())
	var e wire.Enc
	if d.Err == nil && n > maxMultiKeys {
		e.U16(stError)
		e.Str(fmt.Sprintf("batch of %d keys exceeds %d", n, maxMultiKeys))
		return transport.Message{Op: OpGetMulti, Body: e.B}, nil
	}
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, d.Str())
	}
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	e.U16(stOK)
	e.U32(uint32(len(keys)))
	for _, key := range keys {
		it, ok := s.store.Get(key)
		if !ok {
			e.U16(stMiss)
			e.Bytes(nil)
			e.U32(0)
			continue
		}
		e.U16(stOK)
		e.Bytes(it.Value)
		e.U32(it.Flags)
	}
	return transport.Message{Op: OpGetMulti, Body: e.B}, nil
}

// handleGetCAS is Get plus the CAS token ("gets" in the text protocol).
func (s *Server) handleGetCAS(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	key := d.Str()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	it, ok := s.store.Get(key)
	var e wire.Enc
	if !ok {
		e.U16(stMiss)
		return transport.Message{Op: OpGetCAS, Body: e.B}, nil
	}
	e.U16(stOK)
	e.Bytes(it.Value)
	e.U32(it.Flags)
	e.U64(it.CAS)
	return transport.Message{Op: OpGetCAS, Body: e.B}, nil
}

func decodeStoreReq(body []byte) (key string, value []byte, flags, ttlMs uint32, cas uint64, err error) {
	d := wire.NewDec(body)
	key = d.Str()
	value = d.Bytes()
	flags = d.U32()
	ttlMs = d.U32()
	cas = d.U64()
	return key, value, flags, ttlMs, cas, d.Err
}

func ttlOf(ttlMs uint32) time.Duration {
	if ttlMs == 0 {
		return 0
	}
	return time.Duration(ttlMs) * time.Millisecond
}

func storeReply(op uint16, err error) (transport.Message, error) {
	var e wire.Enc
	switch {
	case err == nil:
		e.U16(stOK)
	case errors.Is(err, memstore.ErrExists), errors.Is(err, memstore.ErrCASMismatch):
		e.U16(stExists)
	case errors.Is(err, memstore.ErrNotFound):
		e.U16(stNotStored)
	default:
		e.U16(stError)
		e.Str(err.Error())
	}
	return transport.Message{Op: op, Body: e.B}, nil
}

func (s *Server) handleAdd(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	key, value, flags, ttlMs, _, err := decodeStoreReq(req.Body)
	if err != nil {
		return transport.Message{}, err
	}
	return storeReply(OpAdd, s.store.Add(key, value, flags, ttlOf(ttlMs)))
}

func (s *Server) handleReplace(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	key, value, flags, ttlMs, _, err := decodeStoreReq(req.Body)
	if err != nil {
		return transport.Message{}, err
	}
	return storeReply(OpReplace, s.store.Replace(key, value, flags, ttlOf(ttlMs)))
}

func (s *Server) handleCAS(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	key, value, flags, ttlMs, cas, err := decodeStoreReq(req.Body)
	if err != nil {
		return transport.Message{}, err
	}
	return storeReply(OpCAS, s.store.CompareAndSwap(key, value, flags, ttlOf(ttlMs), cas))
}

func (s *Server) handleTouch(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	key := d.Str()
	ttlMs := d.U32()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	var e wire.Enc
	if s.store.Touch(key, ttlOf(ttlMs)) {
		e.U16(stOK)
	} else {
		e.U16(stNotStored)
	}
	return transport.Message{Op: OpTouch, Body: e.B}, nil
}

func (s *Server) handleFlush(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	s.store.FlushAll()
	var e wire.Enc
	e.U16(stOK)
	return transport.Message{Op: OpFlush, Body: e.B}, nil
}

// handleIncr atomically adds a delta to a decimal counter value, memcached's
// incr/decr (decrement = negative delta, floored at zero like memcached).
func (s *Server) handleIncr(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := wire.NewDec(req.Body)
	key := d.Str()
	delta := d.I64()
	if d.Err != nil {
		return transport.Message{}, d.Err
	}
	var result uint64
	found := false
	numeric := true
	err := s.store.Update(key, func(old []byte, ok bool) ([]byte, bool) {
		if !ok {
			return nil, false // incr on absent key is NOT_FOUND in memcached
		}
		found = true
		cur, perr := strconv.ParseUint(string(old), 10, 64)
		if perr != nil {
			// Memcached refuses to coerce: incr/decr on a non-numeric value
			// is CLIENT_ERROR, never a silent reset to zero.
			numeric = false
			return old, true
		}
		if delta >= 0 {
			cur += uint64(delta) // wraps at 2^64, like memcached's incr
		} else {
			// Magnitude of the decrement without negating delta directly:
			// -MinInt64 overflows back to itself, which would turn the
			// largest decrement into the floor test's blind spot.
			mag := uint64(-(delta + 1)) + 1
			if mag > cur {
				cur = 0 // decr floors at zero
			} else {
				cur -= mag
			}
		}
		result = cur
		return []byte(strconv.FormatUint(cur, 10)), true
	})
	var e wire.Enc
	switch {
	case err != nil:
		e.U16(stError)
		e.Str(err.Error())
	case !found:
		e.U16(stNotStored)
	case !numeric:
		e.U16(stClientError)
		e.Str(ErrClientError.Error())
	default:
		e.U16(stOK)
		e.U64(result)
	}
	return transport.Message{Op: OpIncr, Body: e.B}, nil
}

// --- extended client methods (first replica server only: these commands
// are cache-local operations, not the replication comparison path) ---

func (c *Client) storeOp(ctx context.Context, op uint16, key string, value []byte, flags, ttlMs uint32, cas uint64) error {
	var e wire.Enc
	e.Str(key)
	e.Bytes(value)
	e.U32(flags)
	e.U32(ttlMs)
	e.U64(cas)
	srv := c.serversFor(key, 1)[0]
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: op, Body: e.B})
	if err != nil {
		return err
	}
	d := wire.NewDec(resp.Body)
	switch d.U16() {
	case stOK:
		return nil
	case stExists:
		return ErrExists
	case stNotStored:
		return ErrNotStored
	default:
		return fmt.Errorf("memcached: %s", d.Str())
	}
}

// Add stores only when absent.
func (c *Client) Add(ctx context.Context, key string, value []byte) error {
	return c.storeOp(ctx, OpAdd, key, value, 0, 0, 0)
}

// Replace stores only when present.
func (c *Client) Replace(ctx context.Context, key string, value []byte) error {
	return c.storeOp(ctx, OpReplace, key, value, 0, 0, 0)
}

// GetWithCAS reads the value plus its CAS token.
func (c *Client) GetWithCAS(ctx context.Context, key string) ([]byte, uint64, error) {
	var e wire.Enc
	e.Str(key)
	srv := c.serversFor(key, 1)[0]
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: OpGetCAS, Body: e.B})
	if err != nil {
		return nil, 0, err
	}
	d := wire.NewDec(resp.Body)
	if st := d.U16(); st != stOK {
		return nil, 0, ErrMiss
	}
	value := d.Bytes()
	_ = d.U32() // flags
	cas := d.U64()
	return value, cas, d.Err
}

// CompareAndSwap stores only when the CAS token still matches.
func (c *Client) CompareAndSwap(ctx context.Context, key string, value []byte, cas uint64) error {
	return c.storeOp(ctx, OpCAS, key, value, 0, 0, cas)
}

// Touch refreshes a key's TTL.
func (c *Client) Touch(ctx context.Context, key string, ttl time.Duration) error {
	var e wire.Enc
	e.Str(key)
	e.U32(uint32(ttl / time.Millisecond))
	srv := c.serversFor(key, 1)[0]
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: OpTouch, Body: e.B})
	if err != nil {
		return err
	}
	d := wire.NewDec(resp.Body)
	if d.U16() != stOK {
		return ErrNotStored
	}
	return nil
}

// Incr atomically adjusts a decimal counter on its shard; delta may be
// negative (floored at zero). It returns the new value.
func (c *Client) Incr(ctx context.Context, key string, delta int64) (uint64, error) {
	var e wire.Enc
	e.Str(key)
	e.I64(delta)
	srv := c.serversFor(key, 1)[0]
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: OpIncr, Body: e.B})
	if err != nil {
		return 0, err
	}
	d := wire.NewDec(resp.Body)
	switch d.U16() {
	case stOK:
		return d.U64(), d.Err
	case stNotStored:
		return 0, ErrNotStored
	case stClientError:
		return 0, ErrClientError
	default:
		return 0, fmt.Errorf("memcached: %s", d.Str())
	}
}

// GetMulti reads many keys in one frame per shard server: keys group by
// their first replica server, each group travels as one OpGetMulti request,
// and the merged map holds every hit (missing keys are simply absent, as in
// memcached's multi-key "get").
func (c *Client) GetMulti(ctx context.Context, keys []string) (map[string][]byte, error) {
	start := time.Now()
	defer func() { c.hGetMulti.Observe(time.Since(start)) }()
	groups := map[string][]string{}
	for _, key := range keys {
		srv := c.serversFor(key, 1)[0]
		groups[srv] = append(groups[srv], key)
	}
	out := make(map[string][]byte, len(keys))
	for srv, group := range groups {
		var e wire.Enc
		e.U32(uint32(len(group)))
		for _, key := range group {
			e.Str(key)
		}
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		resp, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: OpGetMulti, Body: e.B})
		cancel()
		if err != nil {
			return nil, err
		}
		d := wire.NewDec(resp.Body)
		if st := d.U16(); st != stOK {
			return nil, fmt.Errorf("memcached: get multi failed: %s", d.Str())
		}
		n := int(d.U32())
		if d.Err != nil || n != len(group) {
			return nil, fmt.Errorf("memcached: get multi answered %d of %d keys", n, len(group))
		}
		for _, key := range group {
			st := d.U16()
			value := d.Bytes()
			_ = d.U32() // flags
			if d.Err != nil {
				return nil, d.Err
			}
			if st == stOK {
				out[key] = value
			}
		}
	}
	return out, nil
}

// FlushAll clears every server.
func (c *Client) FlushAll(ctx context.Context) error {
	for _, srv := range c.cfg.Servers {
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		_, err := c.cfg.Caller.Call(callCtx, srv, transport.Message{Op: OpFlush})
		cancel()
		if err != nil {
			return err
		}
	}
	return nil
}
