package memcached

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sedna/internal/netsim"
)

func startCluster(t *testing.T, n int) (*netsim.Network, []string) {
	t.Helper()
	net := netsim.NewNetwork(netsim.Loopback(), 3)
	var addrs []string
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mc-%d", i)
		srv := NewServer(net.Endpoint(addr), 0)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		addrs = append(addrs, addr)
	}
	return net, addrs
}

func TestSetGetSingleReplica(t *testing.T) {
	net, addrs := startCluster(t, 3)
	c, err := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Set(ctx, "key", []byte("value")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "key")
	if err != nil || string(got) != "value" {
		t.Fatalf("get = %q, %v", got, err)
	}
	if _, err := c.Get(ctx, "missing"); !errors.Is(err, ErrMiss) {
		t.Fatalf("miss = %v", err)
	}
}

func TestTripleReplicaPlacement(t *testing.T) {
	net, addrs := startCluster(t, 5)
	c, err := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Set(ctx, "replicated", []byte("v")); err != nil {
		t.Fatal(err)
	}
	srvs := c.serversFor("replicated", 3)
	if len(srvs) != 3 {
		t.Fatalf("servers = %v", srvs)
	}
	seen := map[string]bool{}
	for _, s := range srvs {
		if seen[s] {
			t.Fatalf("duplicate replica server %s", s)
		}
		seen[s] = true
	}
	// Stable placement.
	again := c.serversFor("replicated", 3)
	for i := range srvs {
		if srvs[i] != again[i] {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestShardingSpreadsKeys(t *testing.T) {
	net, addrs := startCluster(t, 4)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[c.serversFor(fmt.Sprintf("test-%016d", i), 1)[0]]++
	}
	for srv, n := range counts {
		if n < 500 || n > 2000 {
			t.Fatalf("server %s got %d of 4000 keys", srv, n)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d servers used", len(counts))
	}
}

func TestDelete(t *testing.T) {
	net, addrs := startCluster(t, 3)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 3})
	ctx := context.Background()
	c.Set(ctx, "k", []byte("v"))
	if err := c.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "k"); !errors.Is(err, ErrMiss) {
		t.Fatalf("get after delete = %v", err)
	}
}

func TestSequentialReplicationTiming(t *testing.T) {
	// The defining contrast with Sedna (Fig. 7a): three replica writes
	// from a memcached client are sequential, so with a ~10ms one-way
	// link the set takes >= 3 round trips.
	net := netsim.NewNetwork(netsim.Profile{Latency: 10 * time.Millisecond}, 1)
	var addrs []string
	for i := 0; i < 3; i++ {
		addr := fmt.Sprintf("mc-%d", i)
		srv := NewServer(net.Endpoint(addr), 0)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		addrs = append(addrs, addr)
	}
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 3})
	start := time.Now()
	if err := c.Set(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 55*time.Millisecond {
		t.Fatalf("triple set took %v; expected >= 3 sequential RTTs (~60ms)", d)
	}
}

func TestReplicasExceedServers(t *testing.T) {
	net, addrs := startCluster(t, 2)
	if _, err := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 3}); err == nil {
		t.Fatal("accepted more replicas than servers")
	}
}

func TestValuesDoNotLeakAcrossKeys(t *testing.T) {
	net, addrs := startCluster(t, 3)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := c.Set(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := c.Get(ctx, fmt.Sprintf("k%d", i))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q, %v", i, got, err)
		}
	}
}

func TestExtendedAddReplace(t *testing.T) {
	net, addrs := startCluster(t, 3)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	ctx := context.Background()
	if err := c.Replace(ctx, "k", []byte("x")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("replace absent = %v", err)
	}
	if err := c.Add(ctx, "k", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(ctx, "k", []byte("b")); !errors.Is(err, ErrExists) {
		t.Fatalf("add present = %v", err)
	}
	if err := c.Replace(ctx, "k", []byte("c")); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get(ctx, "k")
	if string(got) != "c" {
		t.Fatalf("value = %q", got)
	}
}

func TestExtendedCAS(t *testing.T) {
	net, addrs := startCluster(t, 3)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	ctx := context.Background()
	c.Set(ctx, "k", []byte("v1"))
	_, cas, err := c.GetWithCAS(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompareAndSwap(ctx, "k", []byte("v2"), cas); err != nil {
		t.Fatal(err)
	}
	if err := c.CompareAndSwap(ctx, "k", []byte("v3"), cas); !errors.Is(err, ErrExists) {
		t.Fatalf("stale cas = %v", err)
	}
	got, _ := c.Get(ctx, "k")
	if string(got) != "v2" {
		t.Fatalf("value = %q", got)
	}
}

func TestExtendedIncr(t *testing.T) {
	net, addrs := startCluster(t, 3)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	ctx := context.Background()
	if _, err := c.Incr(ctx, "counter", 1); !errors.Is(err, ErrNotStored) {
		t.Fatalf("incr absent = %v", err)
	}
	c.Set(ctx, "counter", []byte("10"))
	n, err := c.Incr(ctx, "counter", 5)
	if err != nil || n != 15 {
		t.Fatalf("incr = %d, %v", n, err)
	}
	n, err = c.Incr(ctx, "counter", -20)
	if err != nil || n != 0 {
		t.Fatalf("decr floor = %d, %v", n, err)
	}
}

func TestExtendedTouchAndFlush(t *testing.T) {
	net, addrs := startCluster(t, 2)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	ctx := context.Background()
	c.Set(ctx, "k", []byte("v"))
	if err := c.Touch(ctx, "k", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Touch(ctx, "ghost", time.Minute); !errors.Is(err, ErrNotStored) {
		t.Fatalf("touch absent = %v", err)
	}
	if err := c.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "k"); !errors.Is(err, ErrMiss) {
		t.Fatalf("get after flush = %v", err)
	}
}
