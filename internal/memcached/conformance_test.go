package memcached

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"testing"
	"time"
)

// TestIncrDecrConformance pins the extended-op semantics against real
// memcached behaviour: counters are unsigned 64-bit decimals, incr wraps at
// 2^64, decr floors at zero, a non-numeric value is CLIENT_ERROR (never
// silently coerced to zero), and the most negative delta decrements by its
// full magnitude instead of overflowing past the floor test.
func TestIncrDecrConformance(t *testing.T) {
	net, addrs := startCluster(t, 1)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	ctx := context.Background()

	cases := []struct {
		name    string
		stored  string
		delta   int64
		want    uint64
		wantErr error
	}{
		{name: "simple incr", stored: "10", delta: 5, want: 15},
		{name: "simple decr", stored: "10", delta: -4, want: 6},
		{name: "decr floors at zero", stored: "3", delta: -10, want: 0},
		{name: "decr to exactly zero", stored: "7", delta: -7, want: 0},
		{name: "incr wraps at 2^64", stored: strconv.FormatUint(math.MaxUint64, 10), delta: 1, want: 0},
		{name: "incr wraps past 2^64", stored: strconv.FormatUint(math.MaxUint64-1, 10), delta: 5, want: 3},
		{name: "large counter incr", stored: strconv.FormatUint(math.MaxUint64-10, 10), delta: 4, want: math.MaxUint64 - 6},
		{name: "min-int64 delta floors small counter", stored: "42", delta: math.MinInt64, want: 0},
		{name: "min-int64 delta from above its magnitude", stored: strconv.FormatUint(1<<63+5, 10), delta: math.MinInt64, want: 5},
		{name: "non-numeric value", stored: "hello", delta: 1, wantErr: ErrClientError},
		{name: "non-numeric decr", stored: "12abc", delta: -1, wantErr: ErrClientError},
		{name: "negative stored value", stored: "-5", delta: 1, wantErr: ErrClientError},
		{name: "empty stored value", stored: "", delta: 1, wantErr: ErrClientError},
	}
	for i, tc := range cases {
		key := fmt.Sprintf("ctr-%d", i)
		if err := c.Set(ctx, key, []byte(tc.stored)); err != nil {
			t.Fatalf("%s: set: %v", tc.name, err)
		}
		got, err := c.Incr(ctx, key, tc.delta)
		if tc.wantErr != nil {
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
			}
			// CLIENT_ERROR must leave the stored value untouched.
			if v, gerr := c.Get(ctx, key); gerr != nil || string(v) != tc.stored {
				t.Fatalf("%s: value after refused incr = %q (%v), want %q unchanged", tc.name, v, gerr, tc.stored)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: incr: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: incr = %d, want %d", tc.name, got, tc.want)
		}
		// The stored representation must match the returned value.
		if v, gerr := c.Get(ctx, key); gerr != nil || string(v) != strconv.FormatUint(tc.want, 10) {
			t.Fatalf("%s: stored value = %q (%v), want %d", tc.name, v, gerr, tc.want)
		}
	}

	if _, err := c.Incr(ctx, "never-set", 1); !errors.Is(err, ErrNotStored) {
		t.Fatalf("incr on absent key = %v, want ErrNotStored", err)
	}
}

// TestExtendedOpConformance is the presence/absence table for the other
// extended ops: add refuses present keys, replace and touch refuse absent
// keys, CAS refuses a stale token.
func TestExtendedOpConformance(t *testing.T) {
	net, addrs := startCluster(t, 2)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	ctx := context.Background()

	if err := c.Set(ctx, "present", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		op      func() error
		wantErr error
	}{
		{"add on absent stores", func() error { return c.Add(ctx, "fresh", []byte("a")) }, nil},
		{"add on present refuses", func() error { return c.Add(ctx, "present", []byte("a")) }, ErrExists},
		{"replace on present stores", func() error { return c.Replace(ctx, "present", []byte("r")) }, nil},
		{"replace on absent refuses", func() error { return c.Replace(ctx, "ghost", []byte("r")) }, ErrNotStored},
		{"touch on present refreshes", func() error { return c.Touch(ctx, "present", time.Minute) }, nil},
		{"touch on absent refuses", func() error { return c.Touch(ctx, "ghost", time.Minute) }, ErrNotStored},
	}
	for _, tc := range cases {
		err := tc.op()
		if tc.wantErr == nil && err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
	}
	// Add on a present key must not clobber the stored value.
	if v, err := c.Get(ctx, "present"); err != nil || string(v) != "r" {
		t.Fatalf("present = %q (%v), want the replaced value", v, err)
	}

	_, cas, err := c.GetWithCAS(ctx, "present")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompareAndSwap(ctx, "present", []byte("swapped"), cas); err != nil {
		t.Fatalf("cas with fresh token: %v", err)
	}
	if err := c.CompareAndSwap(ctx, "present", []byte("late"), cas); !errors.Is(err, ErrExists) {
		t.Fatalf("cas with stale token = %v, want ErrExists", err)
	}
}

// TestGetMulti covers the batched read path: keys spread over shards come
// back in one map, misses are simply absent, and the answers survive shard
// grouping (every hit maps to its own value, not a neighbour's).
func TestGetMulti(t *testing.T) {
	net, addrs := startCluster(t, 3)
	c, _ := NewClient(ClientConfig{Servers: addrs, Caller: net.Endpoint("cli"), Replicas: 1})
	ctx := context.Background()

	var keys []string
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("multi-%02d", i)
		keys = append(keys, key)
		if i%2 == 0 {
			if err := c.Set(ctx, key, []byte("val-"+key)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := c.GetMulti(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("hits = %d, want 10", len(got))
	}
	for i, key := range keys {
		v, ok := got[key]
		if i%2 == 0 {
			if !ok || string(v) != "val-"+key {
				t.Fatalf("key %s = %q (present=%v), want val-%s", key, v, ok, key)
			}
		} else if ok {
			t.Fatalf("miss key %s present with %q", key, v)
		}
	}
	// All-miss and empty batches are clean no-ops.
	if got, err := c.GetMulti(ctx, []string{"ghost-a", "ghost-b"}); err != nil || len(got) != 0 {
		t.Fatalf("all-miss multi = %v, %v", got, err)
	}
	if got, err := c.GetMulti(ctx, nil); err != nil || len(got) != 0 {
		t.Fatalf("empty multi = %v, %v", got, err)
	}
}
