// Package client implements the Sedna client library: the paper's data
// access APIs — write_latest, write_all, read_latest, read_all (§III-F) —
// plus the realtime subscription API that pushes recently changed data to
// the client (§II-B). The client leases the ring snapshot from any server
// and routes each request directly to the primary of the key's virtual node
// (the zero-hop DHT property, §VII), falling back to other replicas when
// the primary is unreachable.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/quorum"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// Config parameterises a Client.
type Config struct {
	// Servers lists at least one Sedna node address used to bootstrap
	// the ring lease and as routing fallbacks.
	Servers []string
	// Caller issues RPCs.
	Caller transport.Caller
	// Source identifies this writer for write_all value lists; empty
	// selects "client".
	Source string
	// RingLease is how long a leased ring snapshot is trusted; zero
	// selects 1s.
	RingLease time.Duration
	// CallTimeout bounds one RPC; zero selects 2s.
	CallTimeout time.Duration
	// RetryBudget bounds the total attempts one keyed op makes across
	// targets and ring refreshes; zero selects 6.
	RetryBudget int
	// RetryBackoff is the base jittered delay between attempts after a
	// transport failure (doubled per attempt, capped at 8x); zero selects
	// 10ms. Breaker fast-fails skip the backoff entirely.
	RetryBackoff time.Duration
	// Breaker tunes the client's per-server circuit breakers, so requests
	// fail over to healthy replicas without burning CallTimeout on a node
	// already known dead; zero fields select the transport defaults.
	Breaker transport.BreakerConfig
	// Obs receives client.* metrics (end-to-end op latency, zero-hop vs
	// re-routed requests, ring refreshes); nil disables.
	Obs *obs.Registry
	// SlowOpThreshold is the end-to-end latency above which client ops are
	// force-retained in Obs's slow-op log; zero selects 250ms, negative
	// disables. Ignored when Obs is nil.
	SlowOpThreshold time.Duration
	// TenantRule derives a tenant tag from each key for per-tenant
	// attribution and trace propagation: "" (disabled), "dataset", "table",
	// or "prefix:N" (see obs.ParseTenantRule). Ignored when Obs is nil.
	TenantRule string
	// DisableDVV reverts writes to the pre-DVV last-writer-wins protocol:
	// no causal event ids, concurrent writers silently overwrite each other
	// by timestamp. The default (false) sends dotted writes, under which a
	// racing writer's value survives as a sibling instead of being dropped.
	// Exists for mixed-version rollouts and the lost-update benchmark.
	DisableDVV bool
}

// Client talks to a Sedna cluster.
type Client struct {
	cfg    Config
	health *transport.HealthCaller

	mu          sync.Mutex
	ringSnap    *ring.Ring
	ringExpires time.Time
	cur         int

	hWrite, hRead           *obs.Histogram
	hBatchWrite, hBatchRead *obs.Histogram
	nZeroHop                *obs.Counter
	nReroutes               *obs.Counter
	nRingRefresh            *obs.Counter
	nRetries                *obs.Counter
	nRetargets              *obs.Counter
	nOverloaded             *obs.Counter
	nBatchKeys              *obs.Counter
	nBatchFrames            *obs.Counter
	nBatchFallbacks         *obs.Counter
}

// New validates the config and returns a client; the first request fetches
// the ring lease lazily.
func New(cfg Config) (*Client, error) {
	if len(cfg.Servers) == 0 {
		return nil, errors.New("client: Servers required")
	}
	if cfg.Caller == nil {
		return nil, errors.New("client: Caller required")
	}
	if cfg.Source == "" {
		cfg.Source = "client"
	}
	if cfg.RingLease <= 0 {
		cfg.RingLease = time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 6
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	// Every RPC — keyed ops, ring fetches, subscriptions — goes through the
	// per-server breaker layer, so a dead node costs one fast-fail instead
	// of a CallTimeout once its breaker opens.
	health := transport.NewHealthCaller(cfg.Caller, cfg.Breaker)
	health.Instrument(cfg.Obs)
	cfg.Caller = health
	switch {
	case cfg.SlowOpThreshold == 0:
		cfg.Obs.SetSlowOpThreshold(250 * time.Millisecond)
	case cfg.SlowOpThreshold > 0:
		cfg.Obs.SetSlowOpThreshold(cfg.SlowOpThreshold)
	}
	tenantRule, err := obs.ParseTenantRule(cfg.TenantRule)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	cfg.Obs.SetTenantRule(tenantRule)
	return &Client{
		cfg:             cfg,
		health:          health,
		hWrite:          cfg.Obs.Histogram("client.write"),
		hRead:           cfg.Obs.Histogram("client.read"),
		hBatchWrite:     cfg.Obs.Histogram("client.batch.write"),
		hBatchRead:      cfg.Obs.Histogram("client.batch.read"),
		nZeroHop:        cfg.Obs.Counter("client.zero_hop"),
		nReroutes:       cfg.Obs.Counter("client.reroute"),
		nRingRefresh:    cfg.Obs.Counter("client.ring_refresh"),
		nRetries:        cfg.Obs.Counter("client.retries"),
		nRetargets:      cfg.Obs.Counter("client.retargets"),
		nOverloaded:     cfg.Obs.Counter("client.overloaded"),
		nBatchKeys:      cfg.Obs.Counter("client.batch.keys"),
		nBatchFrames:    cfg.Obs.Counter("client.batch.frames"),
		nBatchFallbacks: cfg.Obs.Counter("client.batch.fallbacks"),
	}, nil
}

// Health exposes the client's per-server breaker layer (diagnostics and
// tests).
func (c *Client) Health() *transport.HealthCaller { return c.health }

// WriteLatest stores value under key with read_latest/write_latest
// semantics; it returns nil ("ok"), core.ErrOutdated ("outdated", legacy
// mode only) or core.ErrFailure. By default the write is dotted (DVV): a
// blind write supersedes what its coordinator has already seen and anything
// genuinely concurrent survives as a sibling — it is never silently
// dropped, and never answered "outdated". Read-modify-write callers that
// must supersede exactly what they read use WriteLatestCtx instead.
func (c *Client) WriteLatest(ctx context.Context, key kv.Key, value []byte) error {
	return c.write(ctx, key, value, quorum.Latest, false, !c.cfg.DisableDVV, false, nil)
}

// WriteLatestCtx is WriteLatest carrying a causal context from a previous
// ReadSiblings: the write supersedes exactly the values that read observed
// and leaves anything concurrent intact as a sibling. This is the safe
// read-modify-write primitive — two racing updates both survive until a
// reader resolves them, instead of the loser being silently dropped.
func (c *Client) WriteLatestCtx(ctx context.Context, key kv.Key, value []byte, wctx Context) error {
	return c.write(ctx, key, value, quorum.Latest, false, true, true, wctx)
}

// WriteAll stores value in the key's per-source value list (§III-F.1): each
// source keeps its own newest value.
func (c *Client) WriteAll(ctx context.Context, key kv.Key, value []byte) error {
	return c.write(ctx, key, value, quorum.All, false, !c.cfg.DisableDVV, false, nil)
}

// Delete writes a tombstone over the whole row. It deliberately stays on
// the legacy (dotless) protocol regardless of DisableDVV: a plain delete
// means "drop everything here now", truncating the row across sources,
// which is exactly the cross-writer semantics existing callers rely on.
// Causal deletes that must not clobber concurrent updates use DeleteCtx.
func (c *Client) Delete(ctx context.Context, key kv.Key) error {
	return c.write(ctx, key, nil, quorum.Latest, true, false, false, nil)
}

// DeleteCtx writes a dotted tombstone carrying a causal context from a
// previous ReadSiblings: it deletes exactly the values that read observed,
// while a concurrent writer's value survives the race as a sibling instead
// of being silently destroyed.
func (c *Client) DeleteCtx(ctx context.Context, key kv.Key, wctx Context) error {
	return c.write(ctx, key, nil, quorum.Latest, true, true, true, wctx)
}

func (c *Client) write(ctx context.Context, key kv.Key, value []byte, mode quorum.Mode, deleted, causal, explicit bool, wctx Context) (err error) {
	start := time.Now()
	tr := c.cfg.Obs.SampleTrace("client.write")
	if tr != nil {
		// Attribute the trace before it crosses the wire, so coordinator and
		// replica spans stitch under the same tenant.
		tr.Tenant = c.cfg.Obs.TenantOf(string(key))
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish(c.cfg.Obs)
	}
	var meta keyedMeta
	defer func() {
		d := time.Since(start)
		c.cfg.Obs.ObserveOp(c.hWrite, d, tr)
		c.recordOp(tr, "client.write", key, d, err, meta, true, len(value))
		c.recordSlow(ctx, "client.write", key, d, err)
	}()
	var e wire.Enc
	e.Str(string(key))
	e.Bytes(value)
	e.U8(byte(mode))
	e.Bool(deleted)
	e.Str(c.cfg.Source)
	if causal {
		// Trailing causal fields; legacy frames end at the source, so old
		// servers are only ever sent old-format bodies (causal=false). The
		// explicit flag separates "no context: coordinator, stamp your own"
		// (blind WriteLatest) from "THIS context, even if empty" (a *Ctx
		// call whose read observed nothing — a true race that must leave
		// siblings, not adopt the coordinator's state).
		e.Bool(true)
		e.Bool(explicit)
		if explicit {
			e.Bytes(wctx)
		}
	}
	_, meta, err = c.doKeyedMeta(ctx, key, core.OpCoordWrite, e.B)
	return err
}

// ReadLatest returns the freshest value for key ("no matter it was written
// by which node", §III-F.2); core.ErrNotFound when the key has no live
// value.
func (c *Client) ReadLatest(ctx context.Context, key kv.Key) ([]byte, kv.Timestamp, error) {
	row, err := c.readRow(ctx, key)
	if err != nil {
		return nil, kv.Timestamp{}, err
	}
	v, ok := row.Latest()
	if !ok {
		return nil, kv.Timestamp{}, core.ErrNotFound
	}
	return v.Value, v.TS, nil
}

// Value is one element of a read_all result.
type Value struct {
	Data   []byte
	TS     kv.Timestamp
	Source string
}

// ReadAll returns every live value in the key's list, freshest first.
func (c *Client) ReadAll(ctx context.Context, key kv.Key) ([]Value, error) {
	row, err := c.readRow(ctx, key)
	if err != nil {
		return nil, err
	}
	live := row.Live()
	if len(live) == 0 {
		return nil, core.ErrNotFound
	}
	out := make([]Value, len(live))
	for i, v := range live {
		out[i] = Value{Data: v.Value, TS: v.TS, Source: v.Source}
	}
	return out, nil
}

// Context is the opaque causal token a ReadSiblings returns: it names every
// version that read observed. Passing it back through WriteLatestCtx or
// DeleteCtx supersedes exactly those versions and nothing written since.
type Context []byte

// Siblings is a causal read result: the concurrent live values the cluster
// currently retains for one key, plus the context that supersedes them.
type Siblings struct {
	// Values holds every retained concurrent value, freshest first. Empty
	// when the key has no live value (missing, or deleted).
	Values []Value
	// Context supersedes exactly the versions this read observed when passed
	// to WriteLatestCtx or DeleteCtx.
	Context Context
	// Evicted counts siblings the bounded retention cap has ever dropped
	// from this row. Zero means the row has never been truncated; non-zero
	// tells a resolver its merge input may be incomplete. Truncation is
	// deliberate but never silent.
	Evicted uint32
}

// ReadSiblings returns the key's concurrent value set and causal context —
// the read half of the safe read-modify-write cycle. Unlike ReadLatest it
// does not collapse concurrency: when two writers raced, both values come
// back and the caller resolves them (pick one, merge, or surface the
// conflict), then writes the resolution with WriteLatestCtx. A missing key
// is not an error here — an empty Values with the returned Context is how a
// create-if-absent starts.
func (c *Client) ReadSiblings(ctx context.Context, key kv.Key) (Siblings, error) {
	row, err := c.readRow(ctx, key)
	if err != nil {
		return Siblings{}, err
	}
	s := Siblings{Evicted: row.Obs}
	if !row.Clock.IsEmpty() {
		s.Context = kv.EncodeDVV(row.Clock)
	}
	for _, v := range row.Live() {
		s.Values = append(s.Values, Value{Data: v.Value, TS: v.TS, Source: v.Source})
	}
	return s, nil
}

func (c *Client) readRow(ctx context.Context, key kv.Key) (row *kv.Row, err error) {
	start := time.Now()
	tr := c.cfg.Obs.SampleTrace("client.read")
	if tr != nil {
		tr.Tenant = c.cfg.Obs.TenantOf(string(key))
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish(c.cfg.Obs)
	}
	var meta keyedMeta
	readBytes := 0
	defer func() {
		d := time.Since(start)
		c.cfg.Obs.ObserveOp(c.hRead, d, tr)
		c.recordOp(tr, "client.read", key, d, err, meta, false, readBytes)
		c.recordSlow(ctx, "client.read", key, d, err)
	}()
	var e wire.Enc
	e.Str(string(key))
	d, meta, err := c.doKeyedMeta(ctx, key, core.OpCoordRead, e.B)
	if err != nil {
		return nil, err
	}
	blob := d.Bytes()
	if d.Err != nil {
		return nil, d.Err
	}
	readBytes = len(blob)
	return kv.DecodeRow(blob)
}

// outcomeOf classifies a client op result for the stats surfaces.
func outcomeOf(err error) string {
	switch {
	case errors.Is(err, core.ErrOutdated):
		return "outdated"
	case errors.Is(err, core.ErrNotFound):
		return "not_found"
	case err != nil:
		return "failure"
	}
	return "ok"
}

// recordOp leaves the op's wide event in the flight recorder plus its
// per-tenant attribution row. Like recordSlow it only consults the leased
// ring — a defer must not touch the network.
func (c *Client) recordOp(tr *obs.Trace, op string, key kv.Key, d time.Duration, err error, meta keyedMeta, write bool, bytes int) {
	tenant := c.cfg.Obs.TenantOf(string(key))
	ev := obs.WideEvent{
		Op:      op,
		DurNs:   int64(d),
		VNode:   -1,
		KeyHash: ring.Hash64(key),
		Tenant:  tenant,
		Outcome: outcomeOf(err),
		Retries: uint32(meta.retries),
	}
	if tr != nil {
		ev.TraceID = tr.ID
	}
	if meta.retargeted {
		ev.Flags |= obs.FlagRetargeted
	}
	c.mu.Lock()
	r := c.ringSnap
	c.mu.Unlock()
	if r != nil {
		ev.VNode = int32(r.VNodeFor(key))
	}
	c.cfg.Obs.RecordOp(ev)
	failed := err != nil && !errors.Is(err, core.ErrNotFound)
	c.cfg.Obs.RecordTenantOp(tenant, write, bytes, d, failed)
}

// recordSlow force-retains one slow client op in the slow-op log, stamped
// with the key's vnode under the leased ring (no refresh: a defer must not
// touch the network).
func (c *Client) recordSlow(ctx context.Context, op string, key kv.Key, d time.Duration, err error) {
	if !c.cfg.Obs.IsSlow(d) {
		return
	}
	so := obs.SlowOp{Op: op, Dur: d, VNode: -1, KeyHash: ring.Hash64(key), Outcome: outcomeOf(err)}
	if tr := obs.FromContext(ctx); tr != nil {
		so.TraceID = tr.ID
		so.Stages = tr.Snapshot().Stages
	}
	c.mu.Lock()
	r := c.ringSnap
	c.mu.Unlock()
	if r != nil {
		so.VNode = int32(r.VNodeFor(key))
	}
	c.cfg.Obs.RecordSlowOp(so)
}

// --- routing ---

// targetsFor orders servers for a keyed request: replica owners first
// (primary leading), then the configured fallbacks.
func (c *Client) targetsFor(key kv.Key) []string {
	var targets []string
	seen := map[string]bool{}
	if r := c.leasedRing(); r != nil {
		for _, o := range r.OwnersForKey(key) {
			if o != "" && !seen[string(o)] {
				seen[string(o)] = true
				targets = append(targets, string(o))
			}
		}
	}
	c.mu.Lock()
	start := c.cur
	c.mu.Unlock()
	for i := range c.cfg.Servers {
		s := c.cfg.Servers[(start+i)%len(c.cfg.Servers)]
		if !seen[s] {
			seen[s] = true
			targets = append(targets, s)
		}
	}
	return targets
}

// doKeyed issues op against the key's owners with fallback. Domain errors
// (outdated, not found) come back immediately; transport failures invalidate
// the ring lease and retry against targets recomputed from the refreshed
// ring, so owners promoted mid-op are reached instead of the stale list.
// Attempts are capped by RetryBudget and paced with jittered backoff, except
// after breaker fast-fails, which cost nothing and skip straight to the next
// target.
func (c *Client) doKeyed(ctx context.Context, key kv.Key, op uint16, body []byte) (*wire.Dec, error) {
	d, _, err := c.doKeyedMeta(ctx, key, op, body)
	return d, err
}

// keyedMeta summarises how one keyed op travelled: extra attempts consumed
// from the retry budget and whether a NotOwner rejection retargeted it.
type keyedMeta struct {
	retries    int
	retargeted bool
}

func (c *Client) doKeyedMeta(ctx context.Context, key kv.Key, op uint16, body []byte) (*wire.Dec, keyedMeta, error) {
	var meta keyedMeta
	var lastErr error
	tried := map[string]bool{}
	for attempt := 0; attempt < c.cfg.RetryBudget; attempt++ {
		// Recompute targets every attempt: after an invalidation the ring
		// lease refreshes, and the new snapshot may name owners the stale
		// list never held.
		addr := ""
		for _, t := range c.targetsFor(key) {
			if !tried[t] {
				addr = t
				break
			}
		}
		if addr == "" {
			break // every reachable target exhausted
		}
		tried[addr] = true
		if attempt > 0 {
			c.nRetries.Inc()
			meta.retries++
		}
		callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		resp, err := c.cfg.Caller.Call(callCtx, addr, transport.Message{
			Op: op, Body: body, Trace: obs.WireContext(ctx, "client.send"),
		})
		cancel()
		if err != nil {
			lastErr = err
			if errors.Is(err, transport.ErrBreakerOpen) {
				// The breaker already knows this node is dark; the fast-fail
				// carries no new routing information, so keep the lease and
				// move on immediately.
				continue
			}
			if errors.Is(err, transport.ErrOverloaded) {
				// The node shed the request at a saturated stage: it is
				// healthy and still the right target, so keep the ring lease
				// and this target eligible, back off, and try again.
				c.nOverloaded.Inc()
				delete(tried, addr)
				if !c.retrySleep(ctx, attempt) {
					break
				}
				continue
			}
			c.invalidateRing()
			if !c.retrySleep(ctx, attempt) {
				break
			}
			continue
		}
		d := wire.NewDec(resp.Body)
		st := d.U16()
		detail := d.Str()
		if d.Err != nil {
			return nil, meta, d.Err
		}
		if st == core.StNotOwner {
			// The node no longer coordinates this key's vnode (it migrated,
			// or an eviction reassigned it). The rejection carries the
			// responder's ring version: refresh the lease to at least that
			// version and retry the NEW owners in the same op — retargeting
			// costs one extra round trip instead of a failed call. The
			// tried set resets because the refreshed ring may legitimately
			// route back to a node we already visited in another role.
			lastErr = core.StatusErr(st, detail)
			c.nRetargets.Inc()
			meta.retargeted = true
			c.refreshRingAtLeast(d.U64())
			clear(tried)
			continue
		}
		if st == core.StFailure {
			// The coordinator could not reach a quorum; another replica
			// may still succeed (e.g. the primary is partitioned).
			lastErr = core.StatusErr(st, detail)
			continue
		}
		if st == core.StOverloaded {
			// Same pushback as transport.ErrOverloaded, surfaced one level
			// up: the coordinator itself refused the work. Back off and
			// retry the same routing.
			lastErr = core.StatusErr(st, detail)
			c.nOverloaded.Inc()
			delete(tried, addr)
			if !c.retrySleep(ctx, attempt) {
				break
			}
			continue
		}
		if st != core.StOK {
			return nil, meta, core.StatusErr(st, detail)
		}
		if attempt == 0 {
			c.nZeroHop.Inc() // the primary answered: the zero-hop fast path
		} else {
			c.nReroutes.Inc()
		}
		return d, meta, nil
	}
	if lastErr == nil {
		lastErr = transport.ErrUnreachable
	}
	return nil, meta, fmt.Errorf("%w: %v", core.ErrFailure, lastErr)
}

// retrySleep pauses between attempts — exponential from RetryBackoff, capped
// at 8x, with jitter so concurrent clients spread out — and reports false
// when ctx expired instead.
func (c *Client) retrySleep(ctx context.Context, attempt int) bool {
	// Clamp the exponent before shifting: with a large RetryBudget the shift
	// would overflow negative, skip the cap, and spin without backoff.
	shift := attempt
	if shift > 3 {
		shift = 3 // cap matches the 8x backoff ceiling
	}
	d := c.cfg.RetryBackoff << shift
	if max := 8 * c.cfg.RetryBackoff; d > max || d <= 0 {
		d = max
	}
	d += time.Duration(rand.Int63n(int64(c.cfg.RetryBackoff)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// leasedRing returns the cached ring, refreshing it when the lease expired.
func (c *Client) leasedRing() *ring.Ring {
	c.mu.Lock()
	if c.ringSnap != nil && time.Now().Before(c.ringExpires) {
		r := c.ringSnap
		c.mu.Unlock()
		return r
	}
	c.mu.Unlock()
	c.nRingRefresh.Inc()
	r := c.fetchRing()
	if r == nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.ringSnap // serve stale rather than nothing
	}
	c.mu.Lock()
	c.ringSnap = r
	c.ringExpires = time.Now().Add(c.cfg.RingLease)
	c.mu.Unlock()
	return r
}

func (c *Client) fetchRing() *ring.Ring {
	for i := range c.cfg.Servers {
		c.mu.Lock()
		addr := c.cfg.Servers[(c.cur+i)%len(c.cfg.Servers)]
		c.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		resp, err := c.cfg.Caller.Call(ctx, addr, transport.Message{Op: core.OpRingGet})
		cancel()
		if err != nil {
			c.rotate()
			continue
		}
		d := wire.NewDec(resp.Body)
		if st := d.U16(); st != core.StOK {
			continue
		}
		d.Str()
		blob := d.Bytes()
		if d.Err != nil {
			continue
		}
		r, err := ring.DecodeRing(blob)
		if err != nil {
			continue
		}
		return r
	}
	return nil
}

// refreshRingAtLeast drops the ring lease and refetches unless the leased
// snapshot is already at or past the given version (a NotOwner rejection
// names the responder's ring version; an older or equal lease is what
// misrouted us).
func (c *Client) refreshRingAtLeast(version uint64) {
	c.mu.Lock()
	if c.ringSnap != nil && version > 0 && c.ringSnap.Version() >= version {
		c.mu.Unlock()
		return
	}
	c.ringExpires = time.Time{}
	c.mu.Unlock()
	c.leasedRing()
}

func (c *Client) invalidateRing() {
	c.mu.Lock()
	c.ringExpires = time.Time{}
	c.mu.Unlock()
	c.rotate()
}

func (c *Client) rotate() {
	c.mu.Lock()
	c.cur++
	c.mu.Unlock()
}

// NodeStats is one data node's observability report — metric snapshot,
// sampled traces and the slow-op log — as served by the OpObsStats RPC. It
// is the same obs.Report shape the ops-plane HTTP endpoints serve, so field
// names agree across every stats surface.
type NodeStats = obs.Report

// FetchStats pulls the obs report (snapshot, traces, slow ops) from one data
// node. Cluster-wide totals come from merging the per-node snapshots:
//
//	total := obs.Snapshot{}
//	for _, addr := range nodes { st, _ := c.FetchStats(ctx, addr); total = total.Merge(st.Snapshot) }
func (c *Client) FetchStats(ctx context.Context, addr string) (NodeStats, error) {
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.cfg.Caller.Call(callCtx, addr, transport.Message{Op: core.OpObsStats})
	if err != nil {
		return NodeStats{}, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if d.Err != nil {
		return NodeStats{}, d.Err
	}
	if st != core.StOK {
		return NodeStats{}, core.StatusErr(st, detail)
	}
	blob := d.Bytes()
	if d.Err != nil {
		return NodeStats{}, d.Err
	}
	var ns NodeStats
	if err := json.Unmarshal(blob, &ns); err != nil {
		return NodeStats{}, fmt.Errorf("client: decode stats: %w", err)
	}
	return ns, nil
}

// RingVersion returns the leased ring's version (0 before the first fetch),
// exposed for tests and diagnostics.
func (c *Client) RingVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ringSnap == nil {
		return 0
	}
	return c.ringSnap.Version()
}
