package client_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/kv"
)

func batchTestKeys(n int) []kv.Key {
	keys := make([]kv.Key, n)
	for i := range keys {
		keys[i] = kv.Join("d", "batch", fmt.Sprintf("k%02d", i))
	}
	return keys
}

func TestMSetMGetRoundTrip(t *testing.T) {
	c := testCluster(t, 3, 41)
	cl, reg, err := c.ClientWithObs()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	keys := batchTestKeys(16)

	items := make([]client.MSetItem, len(keys))
	for i, k := range keys {
		items[i] = client.MSetItem{Key: k, Value: []byte("v-" + string(k))}
	}
	for i, err := range cl.MSet(ctx, items) {
		if err != nil {
			t.Fatalf("mset key %d: %v", i, err)
		}
	}

	// Mixed hit/miss: interleave the written keys with absent ones.
	var mixed []kv.Key
	for i, k := range keys {
		mixed = append(mixed, k)
		if i%4 == 0 {
			mixed = append(mixed, kv.Join("d", "batch", fmt.Sprintf("ghost%02d", i)))
		}
	}
	res := cl.MGet(ctx, mixed)
	if len(res) != len(mixed) {
		t.Fatalf("mget returned %d results for %d keys", len(res), len(mixed))
	}
	for _, r := range res {
		if r.Key[:9] == "d/batch/g" { // ghost keys
			if !errors.Is(r.Err, core.ErrNotFound) {
				t.Fatalf("ghost key %s: err = %v, want not found", r.Key, r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("key %s: %v", r.Key, r.Err)
		}
		if string(r.Value) != "v-"+string(r.Key) {
			t.Fatalf("key %s = %q", r.Key, r.Value)
		}
	}

	// The batch must have travelled as per-primary frames, far fewer than
	// one RPC per key.
	snap := reg.Snapshot()
	if got := snap.Counter("client.batch.keys"); got != uint64(len(keys)+len(mixed)) {
		t.Fatalf("client.batch.keys = %d, want %d", got, len(keys)+len(mixed))
	}
	frames := snap.Counter("client.batch.frames")
	if frames == 0 || frames > uint64(2*len(c.Servers)+2) {
		t.Fatalf("client.batch.frames = %d for 2 batches on %d nodes", frames, len(c.Servers))
	}
}

func TestMSetPartitionedReplicaDegradesPerKey(t *testing.T) {
	c := testCluster(t, 3, 42)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	keys := batchTestKeys(16)

	// Warm the ring lease so batches group by primary, then cut one node's
	// data endpoint (its session stays alive: no eviction, no ring change —
	// exactly the hinted-handoff scenario).
	if err := cl.WriteLatest(ctx, kv.Join("d", "warm", "k"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	c.PartitionNode(2)
	defer c.HealNode(2)

	items := make([]client.MSetItem, len(keys))
	for i, k := range keys {
		items[i] = client.MSetItem{Key: k, Value: []byte("p-" + string(k))}
	}
	errs := cl.MSet(ctx, items)
	// N=3, W=2: every key still has a live write quorum, so the batch must
	// succeed per key — not fail wholesale because one replica is dark.
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mset key %d with one partitioned replica: %v", i, err)
		}
	}

	// The dark replica's misses must surface as hints on the coordinators.
	deadline := time.Now().Add(10 * time.Second)
	for {
		pending := 0
		for i, s := range c.Servers {
			if i == 2 {
				continue
			}
			pending += s.Healer().Pending()
		}
		if pending > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no hints enqueued for the partitioned replica")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Reads still settle with R=2 while the node is dark.
	for _, r := range cl.MGet(ctx, keys) {
		if r.Err != nil {
			t.Fatalf("mget key %s during partition: %v", r.Key, r.Err)
		}
		if string(r.Value) != "p-"+string(r.Key) {
			t.Fatalf("mget key %s = %q during partition", r.Key, r.Value)
		}
	}

	// Heal and wait for hint replay to converge the dark replica.
	c.HealNode(2)
	deadline = time.Now().Add(15 * time.Second)
	for {
		healed := 0
		for _, k := range keys {
			if row, ok := c.Servers[2].LocalRow(k); ok {
				if v, live := row.Latest(); live && string(v.Value) == "p-"+string(k) {
					healed++
				}
			}
		}
		if healed == len(keys) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partitioned node healed only %d/%d batch keys", healed, len(keys))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBatchAndSingleKeyOpsInterleave(t *testing.T) {
	// Batched and single-key operations race on the same keys through real
	// coordinators; under -race this exercises the shared quorum, healer and
	// obs paths for data races. Values are per-writer timestamped by the
	// cluster, so any settled value is correct — the assertions only require
	// every op to succeed and the final batch read to see some live value.
	c := testCluster(t, 3, 43)
	ctx := context.Background()
	keys := batchTestKeys(8)

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 3; w++ {
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, cl *client.Client) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				if w == 0 {
					items := make([]client.MSetItem, len(keys))
					for i, k := range keys {
						items[i] = client.MSetItem{Key: k, Value: []byte(fmt.Sprintf("b%d-%d", w, iter))}
					}
					for _, err := range cl.MSet(ctx, items) {
						if err != nil && !errors.Is(err, core.ErrOutdated) {
							errCh <- fmt.Errorf("writer %d mset: %w", w, err)
							return
						}
					}
				} else {
					for _, k := range keys[:2] {
						err := cl.WriteLatest(ctx, k, []byte(fmt.Sprintf("s%d-%d", w, iter)))
						if err != nil && !errors.Is(err, core.ErrOutdated) {
							errCh <- fmt.Errorf("writer %d write: %w", w, err)
							return
						}
						if _, _, err := cl.ReadLatest(ctx, k); err != nil && !errors.Is(err, core.ErrNotFound) {
							errCh <- fmt.Errorf("writer %d read: %w", w, err)
							return
						}
					}
				}
				for _, r := range cl.MGet(ctx, keys) {
					if r.Err != nil && !errors.Is(r.Err, core.ErrNotFound) {
						errCh <- fmt.Errorf("writer %d mget %s: %w", w, r.Key, r.Err)
						return
					}
				}
			}
		}(w, cl)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cl.MGet(ctx, keys) {
		if r.Err != nil {
			t.Fatalf("final mget %s: %v", r.Key, r.Err)
		}
		if len(r.Value) == 0 {
			t.Fatalf("final mget %s returned empty value", r.Key)
		}
	}
}
