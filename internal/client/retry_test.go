package client_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/ring"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// scriptedCaller is a transport.Caller stub: it serves OpRingGet from a
// swappable ring snapshot and answers keyed ops per-address (transport error
// or StOK), recording the coordinator each keyed op reached.
type scriptedCaller struct {
	mu       sync.Mutex
	rings    []*ring.Ring // served in order; the last one repeats
	fetch    int
	fail     map[string]bool   // addrs whose keyed ops fail at the transport
	notOwner map[string]uint64 // addrs that reject keyed ops with StNotOwner + this epoch
	overload map[string]int    // addrs that shed this many keyed ops before serving
	coord    []string          // addrs that received a keyed op, in order
}

func (s *scriptedCaller) Call(ctx context.Context, addr string, msg transport.Message) (transport.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch msg.Op {
	case core.OpRingGet:
		if len(s.rings) == 0 {
			return transport.Message{}, transport.ErrUnreachable
		}
		i := s.fetch
		if i >= len(s.rings) {
			i = len(s.rings) - 1
		}
		s.fetch++
		var e wire.Enc
		e.U16(core.StOK)
		e.Str("")
		e.Bytes(ring.EncodeRing(s.rings[i]))
		return transport.Message{Op: msg.Op, Body: e.B}, nil
	default:
		s.coord = append(s.coord, addr)
		if s.fail[addr] {
			return transport.Message{}, transport.ErrUnreachable
		}
		if s.overload[addr] > 0 {
			s.overload[addr]--
			return transport.Message{}, transport.ErrOverloaded
		}
		if epoch, ok := s.notOwner[addr]; ok {
			var e wire.Enc
			e.U16(core.StNotOwner)
			e.Str("not owner")
			e.U64(epoch)
			return transport.Message{Op: msg.Op, Body: e.B}, nil
		}
		var e wire.Enc
		e.U16(core.StOK)
		e.Str("")
		return transport.Message{Op: msg.Op, Body: e.B}, nil
	}
}

func (s *scriptedCaller) coords() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.coord...)
}

func singleNodeRing(t *testing.T, node string) *ring.Ring {
	t.Helper()
	tab := ring.NewTable(8, 1)
	tab.AddNode(ring.NodeID(node))
	return tab.Snapshot()
}

// TestDoKeyedRetargetsAfterRingInvalidation is the stale-target-list
// regression test: the first leased ring names only "stale" (which fails at
// the transport), and the refreshed ring names only "fresh". A client that
// kept iterating the first target list would never reach "fresh", because it
// is neither in the original owner list nor in Servers.
func TestDoKeyedRetargetsAfterRingInvalidation(t *testing.T) {
	sc := &scriptedCaller{
		rings: []*ring.Ring{singleNodeRing(t, "stale"), singleNodeRing(t, "fresh")},
		fail:  map[string]bool{"stale": true, "boot": true},
	}
	cl, err := client.New(client.Config{
		Servers:      []string{"boot"},
		Caller:       sc,
		RingLease:    time.Minute, // only invalidation may refresh the lease
		CallTimeout:  time.Second,
		RetryBudget:  4,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteLatest(context.Background(), kv.Join("d", "t", "k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got := sc.coords()
	if len(got) < 2 || got[0] != "stale" || got[len(got)-1] != "fresh" {
		t.Fatalf("coordinator order = %v, want stale ... fresh", got)
	}
}

// TestDoKeyedRetargetsOnNotOwner: a replica that lost the key's vnode to a
// migration rejects with StNotOwner carrying its ring version. The client
// must refresh its lease to at least that version and reach the new owner in
// the SAME op — exactly one extra keyed round trip, no backoff loop.
func TestDoKeyedRetargetsOnNotOwner(t *testing.T) {
	// One table mutated in place so the second snapshot's version is
	// strictly newer: "old" owns everything in v1, "new" in v2.
	tab := ring.NewTable(8, 1)
	tab.AddNode("old")
	ring1 := tab.Snapshot()
	tab.AddNode("new")
	tab.RemoveNode("old")
	ring2 := tab.Snapshot()
	if ring2.Version() <= ring1.Version() {
		t.Fatalf("ring versions not monotonic: %d then %d", ring1.Version(), ring2.Version())
	}
	sc := &scriptedCaller{
		rings:    []*ring.Ring{ring1, ring2},
		notOwner: map[string]uint64{"old": ring2.Version()},
	}
	reg := obs.NewRegistry()
	cl, err := client.New(client.Config{
		Servers:      []string{"old"},
		Caller:       sc,
		RingLease:    time.Minute, // only the NotOwner path may refresh the lease
		CallTimeout:  time.Second,
		RetryBudget:  4,
		RetryBackoff: time.Millisecond,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteLatest(context.Background(), kv.Join("d", "t", "k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := sc.coords(); len(got) != 2 || got[0] != "old" || got[1] != "new" {
		t.Fatalf("coordinator order = %v, want [old new]", got)
	}
	if got := reg.Counter("client.retargets").Load(); got != 1 {
		t.Fatalf("client.retargets = %d, want 1", got)
	}
	if got := cl.RingVersion(); got != ring2.Version() {
		t.Fatalf("leased ring version = %d, want %d", got, ring2.Version())
	}
}

// TestDoKeyedOverloadBacksOffSameTarget: a shed (transport.ErrOverloaded)
// means the node is healthy but saturated. The client must back off and
// retry the SAME coordinator — no failover to a non-owner, no ring-lease
// invalidation (the routing was correct) — and count the pushback.
func TestDoKeyedOverloadBacksOffSameTarget(t *testing.T) {
	sc := &scriptedCaller{
		rings:    []*ring.Ring{singleNodeRing(t, "busy")},
		overload: map[string]int{"busy": 2},
	}
	reg := obs.NewRegistry()
	cl, err := client.New(client.Config{
		Servers:      []string{"busy"},
		Caller:       sc,
		RingLease:    time.Minute, // an invalidation would re-fetch; sc.fetch pins it below
		CallTimeout:  time.Second,
		RetryBudget:  4,
		RetryBackoff: time.Millisecond,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteLatest(context.Background(), kv.Join("d", "t", "k"), []byte("v")); err != nil {
		t.Fatalf("write after sheds = %v, want success", err)
	}
	if got := sc.coords(); len(got) != 3 || got[0] != "busy" || got[1] != "busy" || got[2] != "busy" {
		t.Fatalf("coordinator order = %v, want [busy busy busy]", got)
	}
	if got := reg.Counter("client.overloaded").Load(); got != 2 {
		t.Fatalf("client.overloaded = %d, want 2", got)
	}
	sc.mu.Lock()
	fetches := sc.fetch
	sc.mu.Unlock()
	if fetches != 1 {
		t.Fatalf("ring fetches = %d, want 1 (shed must not invalidate the lease)", fetches)
	}
}

// TestDoKeyedRetryBudgetCapsAttempts: with every target failing and more
// targets than budget, exactly RetryBudget attempts are made.
func TestDoKeyedRetryBudgetCapsAttempts(t *testing.T) {
	servers := []string{"g1", "g2", "g3", "g4", "g5", "g6", "g7", "g8"}
	fail := map[string]bool{}
	for _, s := range servers {
		fail[s] = true
	}
	sc := &scriptedCaller{fail: fail}
	cl, err := client.New(client.Config{
		Servers:      servers,
		Caller:       sc,
		CallTimeout:  time.Second,
		RetryBudget:  3,
		RetryBackoff: time.Millisecond,
		// Keep the breakers out of the way so every attempt reaches the
		// stub and the count below is exact.
		Breaker: transport.BreakerConfig{FailureThreshold: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.WriteLatest(context.Background(), kv.Join("d", "t", "k"), []byte("v"))
	if !errors.Is(err, core.ErrFailure) {
		t.Fatalf("write = %v, want ErrFailure", err)
	}
	if got := sc.coords(); len(got) != 3 {
		t.Fatalf("attempts = %v, want exactly 3", got)
	}
}

// TestDoKeyedStopsWhenTargetsExhausted: fewer distinct targets than budget
// means the op fails after trying each once, not budget times.
func TestDoKeyedStopsWhenTargetsExhausted(t *testing.T) {
	sc := &scriptedCaller{fail: map[string]bool{"g1": true, "g2": true}}
	cl, err := client.New(client.Config{
		Servers:      []string{"g1", "g2"},
		Caller:       sc,
		CallTimeout:  time.Second,
		RetryBudget:  6,
		RetryBackoff: time.Millisecond,
		Breaker:      transport.BreakerConfig{FailureThreshold: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.WriteLatest(context.Background(), kv.Join("d", "t", "k"), []byte("v"))
	if !errors.Is(err, core.ErrFailure) {
		t.Fatalf("write = %v, want ErrFailure", err)
	}
	if got := sc.coords(); len(got) != 2 {
		t.Fatalf("attempts = %v, want each target tried once", got)
	}
}

// TestDoKeyedBreakerFastFails: once a server's breaker opens, keyed ops stop
// reaching the transport for that server at all — the client fails over on a
// fast-fail instead of burning CallTimeout.
func TestDoKeyedBreakerFastFails(t *testing.T) {
	sc := &scriptedCaller{fail: map[string]bool{"g1": true, "g2": true}}
	cl, err := client.New(client.Config{
		Servers:      []string{"g1", "g2"},
		Caller:       sc,
		CallTimeout:  time.Second,
		RetryBudget:  4,
		RetryBackoff: time.Millisecond,
		Breaker:      transport.BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := kv.Join("d", "t", "k")
	// First op trips both breakers (one transport failure each).
	if err := cl.WriteLatest(ctx, key, []byte("v")); !errors.Is(err, core.ErrFailure) {
		t.Fatalf("write = %v, want ErrFailure", err)
	}
	before := len(sc.coords())
	if st := cl.Health().State("g1"); st != transport.BreakerOpen {
		t.Fatalf("g1 breaker = %v, want open", st)
	}
	// Second op must fail without a single keyed op reaching the stub.
	if err := cl.WriteLatest(ctx, key, []byte("v")); !errors.Is(err, core.ErrFailure) {
		t.Fatalf("write = %v, want ErrFailure", err)
	}
	if got := len(sc.coords()); got != before {
		t.Fatalf("breaker-open ops still reached the transport (%d -> %d)", before, got)
	}
}
