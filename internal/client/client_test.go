package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"sedna/internal/bench"
	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/netsim"
	"sedna/internal/transport"
)

func testCluster(t *testing.T, nodes int, seed int64) *bench.Cluster {
	t.Helper()
	c, err := bench.NewCluster(bench.ClusterConfig{
		Nodes:           nodes,
		Seed:            seed,
		ScanEvery:       5 * time.Millisecond,
		TriggerInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.WaitConverged(nodes, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := client.New(client.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := client.New(client.Config{Servers: []string{"x"}}); err == nil {
		t.Fatal("missing caller accepted")
	}
	net := netsim.NewNetwork(netsim.Loopback(), 1)
	if _, err := client.New(client.Config{Servers: []string{"x"}, Caller: net.Endpoint("c")}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingPrefersPrimary(t *testing.T) {
	c := testCluster(t, 3, 31)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm the ring lease.
	key := kv.Join("d", "t", "routed")
	if err := cl.WriteLatest(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// After the lease, writes land on the key's primary as coordinator:
	// exactly one server's CoordWrites advances per write.
	before := make([]uint64, len(c.Servers))
	for i, s := range c.Servers {
		before[i] = s.Stats().CoordWrites
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := cl.WriteLatest(ctx, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	moved := 0
	for i, s := range c.Servers {
		delta := s.Stats().CoordWrites - before[i]
		if delta >= n {
			moved++
		}
	}
	if moved != 1 {
		t.Fatalf("writes were not routed to a single primary coordinator (%d)", moved)
	}
}

func TestFailoverToReplica(t *testing.T) {
	c := testCluster(t, 4, 32)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := kv.Join("d", "t", "failover")
	if err := cl.WriteLatest(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Kill the key's primary; the client must fail over to a replica
	// coordinator and still read the value.
	primary := string(c.Servers[0].Ring().Primary(key))
	for i, addr := range c.NodeAddrs {
		if addr == primary {
			c.KillNode(i)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		val, _, err := cl.ReadLatest(ctx, key)
		if err == nil && string(val) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("read never failed over: %v", err)
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	c := testCluster(t, 3, 33)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// With R=W=2 and R+W>N, a client that writes then reads must observe
	// its own write (the quorums overlap).
	for i := 0; i < 50; i++ {
		key := kv.Join("d", "t", "ryw")
		want := []byte{byte(i)}
		if err := cl.WriteLatest(ctx, key, want); err != nil {
			t.Fatal(err)
		}
		got, _, err := cl.ReadLatest(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want[0] {
			t.Fatalf("iteration %d: read %d after writing %d", i, got[0], want[0])
		}
	}
}

func TestDeleteThenWriteAllRevives(t *testing.T) {
	c := testCluster(t, 3, 34)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := kv.Join("d", "t", "revive")
	if err := cl.WriteAll(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(ctx, key); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadAll(ctx, key); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("read after delete = %v", err)
	}
	if err := cl.WriteAll(ctx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.ReadAll(ctx, key)
	if err != nil || len(vals) != 1 || string(vals[0].Data) != "v2" {
		t.Fatalf("revived read = %+v, %v", vals, err)
	}
}

func TestStaleWriteReportsOutdated(t *testing.T) {
	c := testCluster(t, 3, 35)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := kv.Join("d", "t", "race")
	// Two rapid writes through different coordinators can race; the API
	// surfaces ErrOutdated rather than silently losing the newer value.
	// Force the situation with a manual stale timestamp through the
	// replica protocol: write, then verify a direct re-write of the same
	// value succeeds (newer clock) while reads stay consistent.
	if err := cl.WriteLatest(ctx, key, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteLatest(ctx, key, []byte("b")); err != nil {
		t.Fatal(err)
	}
	val, _, err := cl.ReadLatest(ctx, key)
	if err != nil || string(val) != "b" {
		t.Fatalf("read = %q, %v", val, err)
	}
}

func TestSubscriptionLifecycle(t *testing.T) {
	c := testCluster(t, 3, 36)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sub, err := cl.Subscribe(c.NodeAddrs[0], []client.Hook{{Dataset: "d", Table: "t"}},
		client.SubscribeOptions{PollWait: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Writes flow as events (this node holds some replicas of d/t keys).
	go func() {
		for i := 0; i < 30; i++ {
			cl.WriteLatest(ctx, kv.Join("d", "t", string(rune('a'+i%26))), []byte{byte(i)})
			time.Sleep(2 * time.Millisecond)
		}
	}()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatalf("events closed early: %v", sub.Err())
		}
		if ev.Key.Dataset() != "d" {
			t.Fatalf("event key = %q", ev.Key)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no events")
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	// Channel drains and closes after Close.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := <-sub.Events(); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("events channel never closed")
		}
	}
	// Double close is fine.
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeValidation(t *testing.T) {
	c := testCluster(t, 1, 37)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe(c.NodeAddrs[0], nil, client.SubscribeOptions{}); err == nil {
		t.Fatal("empty hooks accepted")
	}
}

func TestAllServersDown(t *testing.T) {
	net := netsim.NewNetwork(netsim.Loopback(), 1)
	cl, err := client.New(client.Config{
		Servers:     []string{"ghost-1", "ghost-2"},
		Caller:      net.Endpoint("cli"),
		CallTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cl.WriteLatest(ctx, kv.Join("d", "t", "k"), []byte("v")); !errors.Is(err, core.ErrFailure) {
		t.Fatalf("write to dead cluster = %v", err)
	}
	if _, _, err := cl.ReadLatest(ctx, kv.Join("d", "t", "k")); !errors.Is(err, core.ErrFailure) {
		t.Fatalf("read from dead cluster = %v", err)
	}
}

var _ transport.Caller = (*netsim.Endpoint)(nil)
