package client

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/obs"
	"sedna/internal/quorum"
	"sedna/internal/wire"
)

// Multi-key batch path: MGet/MSet group keys by the primary owner under the
// leased ring and ship one coordinator frame per primary, so a 16-key batch
// on a 3-node cluster costs ~3 RPCs instead of 16. Results are always
// per-key — a frame that fails falls back to the single-key path for its
// keys rather than failing the whole batch.

// MGetResult is one key's outcome in an MGet batch.
type MGetResult struct {
	Key   kv.Key
	Value []byte
	TS    kv.Timestamp
	// Err is nil on a hit, core.ErrNotFound on a clean miss, and a
	// quorum/transport error when the key could not be read.
	Err error
}

// MSetItem is one key of an MSet batch.
type MSetItem struct {
	Key   kv.Key
	Value []byte
}

// MGet reads many keys with read_latest semantics in one round of batched
// RPCs. The returned slice aligns with keys; every entry carries either a
// value or a per-key error (misses are core.ErrNotFound, exactly as
// ReadLatest reports them).
func (c *Client) MGet(ctx context.Context, keys []kv.Key) []MGetResult {
	out := make([]MGetResult, len(keys))
	for i, k := range keys {
		out[i].Key = k
	}
	if len(keys) == 0 {
		return out
	}
	start := time.Now()
	if tr := c.cfg.Obs.SampleTrace("client.mget"); tr != nil {
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish(c.cfg.Obs)
	}
	defer func() { c.hBatchRead.Observe(time.Since(start)) }()
	c.nBatchKeys.Add(uint64(len(keys)))

	groups := c.groupByPrimary(len(keys), func(i int) kv.Key { return keys[i] })
	var wg sync.WaitGroup
	for _, idxs := range groups {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			c.mgetGroup(ctx, keys, idxs, out)
		}(idxs)
	}
	wg.Wait()
	return out
}

// mgetGroup reads one primary's keys over a single OpCoordReadBatch frame,
// falling back to per-key reads when the frame itself fails.
func (c *Client) mgetGroup(ctx context.Context, keys []kv.Key, idxs []int, out []MGetResult) {
	c.nBatchFrames.Inc()
	var e wire.Enc
	e.U32(uint32(len(idxs)))
	for _, i := range idxs {
		e.Str(string(keys[i]))
	}
	d, err := c.doKeyed(ctx, keys[idxs[0]], core.OpCoordReadBatch, e.B)
	if err != nil {
		c.mgetFallback(ctx, keys, idxs, out)
		return
	}
	n := int(d.U32())
	if d.Err != nil || n != len(idxs) {
		c.mgetFallback(ctx, keys, idxs, out)
		return
	}
	for _, i := range idxs {
		st := d.U16()
		detail := d.Str()
		blob := d.Bytes()
		if d.Err != nil {
			c.mgetFallback(ctx, keys, idxs, out)
			return
		}
		if kerr := core.StatusErr(st, detail); kerr != nil {
			out[i].Err = kerr
			continue
		}
		row, derr := kv.DecodeRow(blob)
		if derr != nil {
			out[i].Err = derr
			continue
		}
		v, ok := row.Latest()
		if !ok {
			out[i].Err = core.ErrNotFound
			continue
		}
		out[i].Value, out[i].TS = v.Value, v.TS
	}
}

// mgetFallback degrades one group to the single-key path so a broken batch
// frame never fails keys that individual reads could still serve.
func (c *Client) mgetFallback(ctx context.Context, keys []kv.Key, idxs []int, out []MGetResult) {
	c.nBatchFallbacks.Inc()
	for _, i := range idxs {
		v, ts, err := c.ReadLatest(ctx, keys[i])
		out[i].Value, out[i].TS, out[i].Err = v, ts, err
	}
}

// MSet writes many keys with write_latest semantics in one round of batched
// RPCs. The returned slice aligns with items: nil for a successful write,
// core.ErrOutdated / core.ErrFailure per key otherwise. A frame that fails
// falls back to single-key writes for its keys, so one dark primary
// degrades only its own keys.
func (c *Client) MSet(ctx context.Context, items []MSetItem) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	start := time.Now()
	if tr := c.cfg.Obs.SampleTrace("client.mset"); tr != nil {
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish(c.cfg.Obs)
	}
	defer func() { c.hBatchWrite.Observe(time.Since(start)) }()
	c.nBatchKeys.Add(uint64(len(items)))

	groups := c.groupByPrimary(len(items), func(i int) kv.Key { return items[i].Key })
	var wg sync.WaitGroup
	for _, idxs := range groups {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			c.msetGroup(ctx, items, idxs, errs)
		}(idxs)
	}
	wg.Wait()
	return errs
}

// msetGroup writes one primary's items over a single OpCoordWriteBatch
// frame, falling back to per-key writes when the frame itself fails.
func (c *Client) msetGroup(ctx context.Context, items []MSetItem, idxs []int, errs []error) {
	c.nBatchFrames.Inc()
	var e wire.Enc
	e.Str(c.cfg.Source)
	e.U32(uint32(len(idxs)))
	for _, i := range idxs {
		e.Str(string(items[i].Key))
		e.Bytes(items[i].Value)
		e.U8(byte(quorum.Latest))
		e.Bool(false)
	}
	if !c.cfg.DisableDVV {
		// Trailing causal flag: dotted (blind) writes for the whole frame.
		// Legacy frames end at the last item, so old servers never see it.
		e.Bool(true)
	}
	d, err := c.doKeyed(ctx, items[idxs[0]].Key, core.OpCoordWriteBatch, e.B)
	if err != nil {
		c.msetFallback(ctx, items, idxs, errs)
		return
	}
	n := int(d.U32())
	if d.Err != nil || n != len(idxs) {
		c.msetFallback(ctx, items, idxs, errs)
		return
	}
	for _, i := range idxs {
		st := d.U16()
		detail := d.Str()
		if d.Err != nil {
			c.msetFallback(ctx, items, idxs, errs)
			return
		}
		errs[i] = core.StatusErr(st, detail)
	}
}

func (c *Client) msetFallback(ctx context.Context, items []MSetItem, idxs []int, errs []error) {
	c.nBatchFallbacks.Inc()
	for _, i := range idxs {
		errs[i] = c.WriteLatest(ctx, items[i].Key, items[i].Value)
	}
}

// groupByPrimary splits the batch's indices by the primary owner of each
// key under the leased ring, preserving request order inside each group so
// frames and responses stay aligned. Without a ring every key lands in one
// group routed through the fallback server list, and groups never exceed
// core.MaxBatchKeys.
func (c *Client) groupByPrimary(n int, keyAt func(i int) kv.Key) map[string][]int {
	r := c.leasedRing()
	groups := map[string][]int{}
	for i := 0; i < n; i++ {
		primary := ""
		if r != nil {
			if owners := r.OwnersForKey(keyAt(i)); len(owners) > 0 {
				primary = string(owners[0])
			}
		}
		groups[primary] = append(groups[primary], i)
	}
	// Split oversized groups so no frame exceeds the servers' batch cap.
	for node, idxs := range groups {
		if len(idxs) <= core.MaxBatchKeys {
			continue
		}
		delete(groups, node)
		for part := 0; len(idxs) > 0; part++ {
			take := core.MaxBatchKeys
			if take > len(idxs) {
				take = len(idxs)
			}
			groups[fmt.Sprintf("%s#%d", node, part)] = idxs[:take]
			idxs = idxs[take:]
		}
	}
	return groups
}
