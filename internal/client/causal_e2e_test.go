package client_test

import (
	"context"
	"errors"
	"testing"

	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/kv"
)

// TestConcurrentWritersKeepSiblings is the tentpole behavior end to end:
// two clients write the same key with contexts that do not include each
// other's write — neither update may be silently dropped. A later write
// whose context covers both collapses the siblings.
func TestConcurrentWritersKeepSiblings(t *testing.T) {
	c := testCluster(t, 3, 41)
	clA, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	clB, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := kv.Join("causal", "t", "race")

	// Both writers hold the same (empty) causal context: a true race.
	if err := clA.WriteLatestCtx(ctx, key, []byte("from-a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := clB.WriteLatestCtx(ctx, key, []byte("from-b"), nil); err != nil {
		t.Fatal(err)
	}

	sib, err := clA.ReadSiblings(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(sib.Values) != 2 {
		t.Fatalf("concurrent write dropped: siblings = %+v", sib.Values)
	}
	seen := map[string]bool{}
	for _, v := range sib.Values {
		seen[string(v.Data)] = true
	}
	if !seen["from-a"] || !seen["from-b"] {
		t.Fatalf("sibling payloads = %v", seen)
	}
	// The default read still returns one deterministic winner.
	if _, _, err := clA.ReadLatest(ctx, key); err != nil {
		t.Fatal(err)
	}

	// Read-modify-write with the merged context collapses the siblings.
	if err := clA.WriteLatestCtx(ctx, key, []byte("merged"), sib.Context); err != nil {
		t.Fatal(err)
	}
	after, err := clB.ReadSiblings(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Values) != 1 || string(after.Values[0].Data) != "merged" {
		t.Fatalf("context write did not supersede both siblings: %+v", after.Values)
	}
}

// TestBlindWritesCarryProgramOrder: sequential context-free WriteLatest
// calls must not pile up as siblings — the coordinator stamps each blind
// write with the causal state it has already accepted.
func TestBlindWritesCarryProgramOrder(t *testing.T) {
	c := testCluster(t, 3, 42)
	cl, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := kv.Join("causal", "t", "seq")
	for i, val := range []string{"v1", "v2", "v3"} {
		if err := cl.WriteLatest(ctx, key, []byte(val)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	sib, err := cl.ReadSiblings(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(sib.Values) != 1 || string(sib.Values[0].Data) != "v3" {
		t.Fatalf("sequential blind writes left siblings: %+v", sib.Values)
	}
}

// TestDeleteCtxSupersedesSiblings: a delete carrying the read context
// retires every sibling it observed.
func TestDeleteCtxSupersedesSiblings(t *testing.T) {
	c := testCluster(t, 3, 43)
	clA, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	clB, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := kv.Join("causal", "t", "del")
	if err := clA.WriteLatestCtx(ctx, key, []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := clB.WriteLatestCtx(ctx, key, []byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	sib, err := clA.ReadSiblings(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(sib.Values) != 2 {
		t.Fatalf("setup: want 2 siblings, got %+v", sib.Values)
	}
	if err := clA.DeleteCtx(ctx, key, sib.Context); err != nil {
		t.Fatal(err)
	}
	if _, _, err := clB.ReadLatest(ctx, key); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("read after contextual delete = %v, want ErrNotFound", err)
	}
}

// TestDisableDVVMixedClients: a legacy client (no causal fields on the
// wire) and a DVV client interoperate on the same key — old frames still
// decode, and the timestamp bridge orders legacy writes against dotted
// ones.
func TestDisableDVVMixedClients(t *testing.T) {
	c := testCluster(t, 3, 44)
	modern, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := client.New(client.Config{
		Servers:    c.NodeAddrs,
		Caller:     c.Net.Endpoint("legacy-client"),
		Source:     "legacy-client",
		DisableDVV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := kv.Join("causal", "t", "mixed")

	if err := legacy.WriteLatest(ctx, key, []byte("old-era")); err != nil {
		t.Fatal(err)
	}
	val, _, err := modern.ReadLatest(ctx, key)
	if err != nil || string(val) != "old-era" {
		t.Fatalf("modern read of legacy write = %q, %v", val, err)
	}
	if err := modern.WriteLatest(ctx, key, []byte("new-era")); err != nil {
		t.Fatal(err)
	}
	val, _, err = legacy.ReadLatest(ctx, key)
	if err != nil || string(val) != "new-era" {
		t.Fatalf("legacy read of dotted write = %q, %v", val, err)
	}
	// The legacy client keeps writing; its dotless newer-timestamp write
	// must win reads (per-source legacy rule), not be shadowed.
	if err := legacy.WriteLatest(ctx, key, []byte("old-era-2")); err != nil {
		t.Fatal(err)
	}
	val, _, err = modern.ReadLatest(ctx, key)
	if err != nil || string(val) != "old-era-2" {
		t.Fatalf("read after mixed-era writes = %q, %v", val, err)
	}
}
