package client

import (
	"context"
	"errors"
	"sync"
	"time"

	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// Hook names monitored data for a subscription, mirroring trigger.Hook: an
// empty Table monitors the whole dataset, an empty Name the whole table.
type Hook struct {
	Dataset string
	Table   string
	Name    string
}

// SubscribeOptions tunes a subscription.
type SubscribeOptions struct {
	// ChangedOnly suppresses events whose value did not change.
	ChangedOnly bool
	// Interval is the server-side flow-control window; zero selects the
	// server default.
	Interval time.Duration
	// PollMax bounds events per poll; zero selects 256.
	PollMax int
	// PollWait is the long-poll duration; zero selects 5s.
	PollWait time.Duration
}

// Event is one pushed change.
type Event struct {
	Key     kv.Key
	Value   []byte
	TS      kv.Timestamp
	Deleted bool
}

// Subscription streams changed data from one Sedna node. Close it when
// done; the server garbage-collects abandoned subscriptions after an idle
// timeout.
type Subscription struct {
	c      *Client
	addr   string
	id     uint64
	opts   SubscribeOptions
	events chan Event

	mu     sync.Mutex
	err    error
	closed bool
	cancel context.CancelFunc
	done   chan struct{}
}

// Subscribe registers hooks on the given server (subscriptions are served
// by the node holding the monitored primaries in a real deployment; any
// node that stores matching rows works) and starts the long-poll pump.
func (c *Client) Subscribe(server string, hooks []Hook, opts SubscribeOptions) (*Subscription, error) {
	if len(hooks) == 0 {
		return nil, errors.New("client: at least one hook required")
	}
	if opts.PollMax <= 0 {
		opts.PollMax = 256
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 5 * time.Second
	}
	var e wire.Enc
	e.U32(uint32(len(hooks)))
	for _, h := range hooks {
		e.Str(h.Dataset)
		e.Str(h.Table)
		e.Str(h.Name)
	}
	e.Bool(opts.ChangedOnly)
	e.U32(uint32(opts.Interval / time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	resp, err := c.cfg.Caller.Call(ctx, server, transport.Message{Op: core.OpSubNew, Body: e.B})
	cancel()
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if st != core.StOK {
		return nil, core.StatusErr(st, detail)
	}
	id := d.U64()
	if d.Err != nil {
		return nil, d.Err
	}

	pumpCtx, pumpCancel := context.WithCancel(context.Background())
	s := &Subscription{
		c:      c,
		addr:   server,
		id:     id,
		opts:   opts,
		events: make(chan Event, 256),
		cancel: pumpCancel,
		done:   make(chan struct{}),
	}
	go s.pump(pumpCtx)
	return s, nil
}

// Events delivers pushed changes; the channel closes when the subscription
// ends (check Err for the reason).
func (s *Subscription) Events() <-chan Event { return s.events }

// Err reports why the subscription ended (nil after a clean Close).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the pump and releases the server-side subscription.
func (s *Subscription) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	<-s.done
	var e wire.Enc
	e.U64(s.id)
	ctx, cancel := context.WithTimeout(context.Background(), s.c.cfg.CallTimeout)
	defer cancel()
	s.c.cfg.Caller.Call(ctx, s.addr, transport.Message{Op: core.OpSubClose, Body: e.B})
	return nil
}

func (s *Subscription) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *Subscription) pump(ctx context.Context) {
	defer close(s.done)
	defer close(s.events)
	for {
		if ctx.Err() != nil {
			return
		}
		events, err := s.pollOnce(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			s.fail(err)
			return
		}
		for _, ev := range events {
			select {
			case s.events <- ev:
			case <-ctx.Done():
				return
			}
		}
	}
}

func (s *Subscription) pollOnce(ctx context.Context) ([]Event, error) {
	var e wire.Enc
	e.U64(s.id)
	e.U32(uint32(s.opts.PollMax))
	e.U32(uint32(s.opts.PollWait / time.Millisecond))
	callCtx, cancel := context.WithTimeout(ctx, s.opts.PollWait+s.c.cfg.CallTimeout)
	defer cancel()
	resp, err := s.c.cfg.Caller.Call(callCtx, s.addr, transport.Message{Op: core.OpSubPoll, Body: e.B})
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	st := d.U16()
	detail := d.Str()
	if st != core.StOK {
		return nil, core.StatusErr(st, detail)
	}
	n := int(d.U32())
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Event{
			Key:     kv.Key(d.Str()),
			Value:   d.Bytes(),
			TS:      kv.Timestamp{Wall: d.I64(), Logical: d.U32(), Node: d.U32()},
			Deleted: d.Bool(),
		})
	}
	if d.Err != nil {
		return nil, d.Err
	}
	return out, nil
}
