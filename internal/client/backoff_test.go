package client

import (
	"context"
	"testing"
	"time"
)

// TestRetrySleepSurvivesHighAttemptCount is the regression for the backoff
// shift overflow: RetryBackoff << attempt with a large attempt (possible
// with a high RetryBudget) went negative, skipped the 8x clamp, and armed a
// zero-duration timer — retries spun hot instead of backing off. The shift
// exponent is now clamped, so every attempt sleeps at least the ceiling.
func TestRetrySleepSurvivesHighAttemptCount(t *testing.T) {
	c := &Client{cfg: Config{RetryBackoff: time.Millisecond}}
	for _, attempt := range []int{62, 63, 80, 1 << 20} {
		start := time.Now()
		if !c.retrySleep(context.Background(), attempt) {
			t.Fatalf("attempt %d: retrySleep reported cancellation on a live ctx", attempt)
		}
		if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
			t.Fatalf("attempt %d: slept %v, want >= 8ms (overflow skipped the clamp)", attempt, elapsed)
		}
	}
}

// TestRetrySleepHonoursCancellation pins the other exit: an expired context
// must stop the backoff immediately rather than sleeping it out.
func TestRetrySleepHonoursCancellation(t *testing.T) {
	c := &Client{cfg: Config{RetryBackoff: time.Second}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if c.retrySleep(ctx, 3) {
		t.Fatal("retrySleep ignored a cancelled ctx")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancelled retrySleep still slept %v", elapsed)
	}
}
