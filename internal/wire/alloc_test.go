//go:build !race

package wire

// Allocation budgets for the codec primitives: BytesView must be free where
// Bytes pays its copy. Excluded under -race (instrumentation allocates); the
// view semantics are covered by TestBytesView in wire_test-style tests that
// do run under it.

import "testing"

func TestBytesViewAllocBudget(t *testing.T) {
	var e Enc
	e.Bytes(make([]byte, 256))
	buf := e.B

	if n := testing.AllocsPerRun(200, func() {
		d := NewDec(buf)
		if len(d.BytesView()) != 256 || d.Err != nil {
			t.Fatal("bad view")
		}
	}); n > 1 { // the decoder itself may escape; the view must not add a copy
		t.Errorf("BytesView allocates %.1f/op, want <= 1", n)
	}

	d := &Dec{}
	if n := testing.AllocsPerRun(200, func() {
		d.B, d.Off, d.Err = buf, 0, nil
		if len(d.BytesView()) != 256 || d.Err != nil {
			t.Fatal("bad view")
		}
	}); n > 0 {
		t.Errorf("BytesView with reused decoder allocates %.1f/op, want 0", n)
	}
}
