package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	var e Enc
	e.U8(7)
	e.U16(300)
	e.U32(70000)
	e.U64(1 << 40)
	e.I64(-42)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.Bytes([]byte{1, 2, 3})
	e.Str("")
	e.Bytes(nil)

	d := NewDec(e.B)
	if d.U8() != 7 || d.U16() != 300 || d.U32() != 70000 || d.U64() != 1<<40 {
		t.Fatal("unsigned round trip failed")
	}
	if d.I64() != -42 {
		t.Fatal("i64 round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round trip failed")
	}
	if d.Str() != "hello" || !bytes.Equal(d.Bytes(), []byte{1, 2, 3}) {
		t.Fatal("string/bytes round trip failed")
	}
	if d.Str() != "" || len(d.Bytes()) != 0 {
		t.Fatal("empty round trip failed")
	}
	if d.Err != nil {
		t.Fatal(d.Err)
	}
	if d.Off != len(e.B) {
		t.Fatalf("cursor at %d of %d", d.Off, len(e.B))
	}
}

func TestShortReadsStick(t *testing.T) {
	d := NewDec([]byte{1})
	d.U32()
	if d.Err == nil {
		t.Fatal("short u32 accepted")
	}
	// Once failed, everything returns zero values.
	if d.U64() != 0 || d.Str() != "" || d.Bool() {
		t.Fatal("post-error reads returned data")
	}
}

func TestTruncatedString(t *testing.T) {
	var e Enc
	e.U32(100) // claims 100 bytes
	e.B = append(e.B, "short"...)
	d := NewDec(e.B)
	if s := d.Str(); s != "" || d.Err == nil {
		t.Fatalf("truncated string = %q, err = %v", s, d.Err)
	}
}

func TestBytesNeverAlias(t *testing.T) {
	var e Enc
	e.Bytes([]byte("abc"))
	buf := e.B
	d := NewDec(buf)
	got := d.Bytes()
	buf[4] = 'z'
	if string(got) != "abc" {
		t.Fatal("decoded bytes alias the input")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d64 uint64, s string, p []byte, flag bool) bool {
		var e Enc
		e.U8(a)
		e.U16(b)
		e.U32(c)
		e.U64(d64)
		e.Str(s)
		e.Bytes(p)
		e.Bool(flag)
		d := NewDec(e.B)
		ok := d.U8() == a && d.U16() == b && d.U32() == c && d.U64() == d64 &&
			d.Str() == s && bytes.Equal(d.Bytes(), p) && d.Bool() == flag
		return ok && d.Err == nil && d.Off == len(e.B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesViewAliases(t *testing.T) {
	var e Enc
	e.Bytes([]byte("abc"))
	buf := e.B
	d := NewDec(buf)
	got := d.BytesView()
	if string(got) != "abc" || d.Err != nil || d.Off != len(buf) {
		t.Fatalf("view = %q, err = %v, off = %d", got, d.Err, d.Off)
	}
	buf[4] = 'z'
	if string(got) != "zbc" {
		t.Fatal("BytesView copied instead of aliasing the input")
	}
	// The view is capped at its own length: appending must not clobber the
	// decoder's remaining input.
	var e2 Enc
	e2.Bytes([]byte("ab"))
	e2.U32(7)
	d2 := NewDec(e2.B)
	v := d2.BytesView()
	_ = append(v, 0xff)
	if got := d2.U32(); got != 7 || d2.Err != nil {
		t.Fatalf("append through view clobbered the stream: u32 = %d, err = %v", got, d2.Err)
	}
}

func TestBytesViewTruncated(t *testing.T) {
	var e Enc
	e.U32(100)
	e.B = append(e.B, "short"...)
	d := NewDec(e.B)
	if v := d.BytesView(); v != nil || d.Err == nil {
		t.Fatalf("truncated view = %q, err = %v", v, d.Err)
	}
}

func BenchmarkBytesCopy(b *testing.B) {
	var e Enc
	e.Bytes(make([]byte, 512))
	buf := e.B
	var d Dec
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.B, d.Off, d.Err = buf, 0, nil
		if len(d.Bytes()) != 512 {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkBytesView(b *testing.B) {
	var e Enc
	e.Bytes(make([]byte, 512))
	buf := e.B
	var d Dec
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.B, d.Off, d.Err = buf, 0, nil
		if len(d.BytesView()) != 512 {
			b.Fatal("bad decode")
		}
	}
}
