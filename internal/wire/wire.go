// Package wire provides the little-endian append/cursor codec helpers used
// by Sedna's data-plane RPC bodies. Every message owner composes its format
// from these primitives; there is no reflection on any hot path.
package wire

import (
	"encoding/binary"
	"errors"
)

// Enc is an append-style binary writer; the zero value is ready to use.
type Enc struct{ B []byte }

// U8 appends one byte.
func (e *Enc) U8(v byte) { e.B = append(e.B, v) }

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) { e.B = binary.LittleEndian.AppendUint16(e.B, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a boolean byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) { e.U32(uint32(len(s))); e.B = append(e.B, s...) }

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(p []byte) { e.U32(uint32(len(p))); e.B = append(e.B, p...) }

// ErrShort reports a truncated message.
var ErrShort = errors.New("wire: short message")

// Dec is a cursor-style binary reader; the first failure sticks in Err.
type Dec struct {
	B   []byte
	Off int
	Err error
}

// NewDec wraps a buffer.
func NewDec(b []byte) *Dec { return &Dec{B: b} }

func (d *Dec) need(n int) bool {
	if d.Err != nil {
		return false
	}
	if len(d.B)-d.Off < n {
		d.Err = ErrShort
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Dec) U8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.B[d.Off]
	d.Off++
	return v
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.B[d.Off:])
	d.Off += 2
	return v
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.B[d.Off:])
	d.Off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.B[d.Off:])
	d.Off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Bool reads a boolean byte.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := int(d.U32())
	if !d.need(n) {
		return ""
	}
	s := string(d.B[d.Off : d.Off+n])
	d.Off += n
	return s
}

// Bytes reads a length-prefixed byte slice (copied, never aliased).
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	if !d.need(n) {
		return nil
	}
	p := append([]byte(nil), d.B[d.Off:d.Off+n]...)
	d.Off += n
	return p
}

// BytesView reads a length-prefixed byte slice WITHOUT copying: the result
// aliases the decoder's buffer and is only valid while that buffer is. It is
// the zero-copy hot-path accessor; callers that retain the bytes past the
// buffer's lifetime (pooled transport frames are recycled once the RPC
// handler returns) must use Bytes or copy explicitly. A short message
// returns nil and sticks ErrShort, exactly like Bytes.
func (d *Dec) BytesView() []byte {
	n := int(d.U32())
	if !d.need(n) {
		return nil
	}
	p := d.B[d.Off : d.Off+n : d.Off+n]
	d.Off += n
	return p
}
