// Package cluster implements Sedna's node management (§III-D): nodes join
// by registering an ephemeral znode and claiming virtual nodes, the
// authoritative assignment lives in the coordination service and is updated
// with compare-and-swap, failures are detected through ephemeral-znode loss,
// and every surviving node can safely run the reconciliation that
// redistributes a dead node's vnodes (CAS makes the janitor work idempotent).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sedna/internal/coord"
	"sedna/internal/ring"
)

// Layout fixes the znode paths Sedna uses.
type Layout struct {
	// Root is the base path, "/sedna" by default.
	Root string
}

// DefaultLayout returns the standard layout.
func DefaultLayout() Layout { return Layout{Root: "/sedna"} }

// NodesPath is the parent of the per-node ephemerals.
func (l Layout) NodesPath() string { return l.Root + "/realnodes" }

// NodePath is one node's ephemeral znode.
func (l Layout) NodePath(n ring.NodeID) string { return l.NodesPath() + "/" + string(n) }

// RingPath holds the encoded assignment table.
func (l Layout) RingPath() string { return l.Root + "/ring" }

// ImbalancePath is the parent of per-node imbalance reports.
func (l Layout) ImbalancePath() string { return l.Root + "/imbalance" }

// ImbalanceNodePath is one node's imbalance report.
func (l Layout) ImbalanceNodePath(n ring.NodeID) string {
	return l.ImbalancePath() + "/" + string(n)
}

// RebalancePath is the parent of the per-vnode migration guards.
func (l Layout) RebalancePath() string { return l.Root + "/rebalance" }

// RebalanceVNodePath is the ephemeral guard a migration orchestrator holds
// while one vnode is in flight; it serialises concurrent campaigns.
func (l Layout) RebalanceVNodePath(v ring.VNodeID) string {
	return fmt.Sprintf("%s/vnode-%d", l.RebalancePath(), v)
}

// ErrNotBootstrapped reports a join against an uninitialised layout.
var ErrNotBootstrapped = errors.New("cluster: coordination layout not bootstrapped")

// Bootstrap initialises the coordination layout for a fresh cluster: the
// base znodes plus an empty assignment table with the configured virtual
// node count (fixed for the cluster's lifetime, §III-D). It is idempotent;
// concurrent bootstrappers race benignly on ErrNodeExists.
func Bootstrap(c *coord.Client, l Layout, vnodes, replicas int) error {
	if vnodes <= 0 || replicas <= 0 {
		return fmt.Errorf("cluster: bad bootstrap parameters vnodes=%d replicas=%d", vnodes, replicas)
	}
	if err := c.EnsurePath(l.NodesPath()); err != nil {
		return err
	}
	if err := c.EnsurePath(l.ImbalancePath()); err != nil {
		return err
	}
	table := ring.NewTable(vnodes, replicas)
	blob := ring.EncodeRing(table.Snapshot())
	_, err := c.Create(l.RingPath(), blob, coord.CreateOpts{})
	if errors.Is(err, coord.ErrNodeExists) {
		return nil
	}
	return err
}

// Config parameterises a Manager.
type Config struct {
	// Node is this server's identity in the ring (its data address).
	Node ring.NodeID
	// Client is the coordination session; its ephemerals carry the
	// node's liveness.
	Client *coord.Client
	// Cache, when set, serves ring reads through the adaptive lease cache
	// so the coordination service stays off the data path.
	Cache *coord.CachedClient
	// Layout selects the znode paths.
	Layout Layout
	// ReconcileEvery is the membership reconciliation period; zero
	// selects 500ms.
	ReconcileEvery time.Duration
	// OnMoves receives assignment moves this node must act on (vnodes it
	// gained, for data migration). May be nil.
	OnMoves func([]ring.Move)
	// OnDeaths fires after this node evicts confirmed-dead members, with
	// the dead nodes and every move the eviction produced (not just this
	// node's). Anti-entropy uses it to re-merge the affected vnodes. May
	// be nil.
	OnDeaths func(dead []ring.NodeID, moves []ring.Move)
	// OnOwnershipChange fires when adopting a newer assignment reveals
	// vnodes whose owner set changed and that this node owns (under either
	// view). Rows written against the old view may never have reached the
	// new owners — the write quorum settles on whatever replica set the
	// coordinator's lease showed — so the hook hands them to anti-entropy
	// for re-merging. May be nil.
	OnOwnershipChange func(changed []ring.VNodeID)
	// Logf receives diagnostics; nil disables.
	Logf func(format string, args ...any)
}

// Manager runs one node's membership lifecycle.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	table  *ring.Table
	joined bool

	stop chan struct{}
	done chan struct{}
}

// NewManager returns an unjoined manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Node == "" {
		return nil, errors.New("cluster: Node required")
	}
	if cfg.Client == nil {
		return nil, errors.New("cluster: Client required")
	}
	if cfg.Layout.Root == "" {
		cfg.Layout = DefaultLayout()
	}
	if cfg.ReconcileEvery <= 0 {
		cfg.ReconcileEvery = 500 * time.Millisecond
	}
	return &Manager{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf("cluster[%s]: "+format, append([]any{m.cfg.Node}, args...)...)
	}
}

// Join registers the node and claims its share of virtual nodes: it creates
// the ephemeral liveness znode, then CAS-updates the assignment table until
// its AddNode lands (§III-D's start-up procedure). The returned moves are
// the vnodes this node received (all with empty From on a fresh cluster).
func (m *Manager) Join() ([]ring.Move, error) {
	l := m.cfg.Layout
	if _, _, err := m.cfg.Client.Get(l.RingPath()); err != nil {
		if errors.Is(err, coord.ErrNoNode) {
			return nil, ErrNotBootstrapped
		}
		return nil, err
	}
	// Liveness first: reconcilers must see us alive before we appear in
	// the ring, or they would immediately evict us.
	if err := m.registerLiveness(); err != nil {
		return nil, err
	}

	var ourMoves []ring.Move
	err := m.updateRing(func(t *ring.Table) []ring.Move {
		ourMoves = t.AddNode(m.cfg.Node)
		return ourMoves
	})
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.joined = true
	m.mu.Unlock()
	go m.reconcileLoop()
	m.logf("joined with %d moves", len(ourMoves))
	return ourMoves, nil
}

// JoinPassive registers the node's liveness WITHOUT claiming any vnodes: the
// node serves RPCs and coordinates quorum traffic but owns nothing until an
// elastic rebalance streams vnodes to it (`coordctl join`). This is how a
// scale-out node enters the cluster — data moves later, under flow control,
// instead of in one synchronous join.
func (m *Manager) JoinPassive() error {
	l := m.cfg.Layout
	if _, _, err := m.cfg.Client.Get(l.RingPath()); err != nil {
		if errors.Is(err, coord.ErrNoNode) {
			return ErrNotBootstrapped
		}
		return err
	}
	if err := m.registerLiveness(); err != nil {
		return err
	}
	// Adopt the current assignment without mutating it.
	if err := m.updateRing(func(t *ring.Table) []ring.Move { return nil }); err != nil {
		return err
	}
	m.mu.Lock()
	m.joined = true
	m.mu.Unlock()
	go m.reconcileLoop()
	m.logf("joined passively (no vnodes claimed)")
	return nil
}

// registerLiveness creates the node's ephemeral liveness znode. If the path
// already exists it belongs to a previous incarnation's session (a fast
// restart beats the old session's expiry): silently adopting it would let
// that expiry delete a LIVE node's liveness later and get it evicted, so
// the path is deleted and re-created to re-home it to our session.
func (m *Manager) registerLiveness() error {
	path := m.cfg.Layout.NodePath(m.cfg.Node)
	stamp := []byte(time.Now().UTC().Format(time.RFC3339))
	_, err := m.cfg.Client.Create(path, stamp, coord.CreateOpts{Ephemeral: true})
	if errors.Is(err, coord.ErrNodeExists) {
		m.logf("taking over leftover liveness znode %s", path)
		if derr := m.cfg.Client.Delete(path, -1); derr != nil && !errors.Is(derr, coord.ErrNoNode) {
			return fmt.Errorf("cluster: take over liveness: %w", derr)
		}
		_, err = m.cfg.Client.Create(path, stamp, coord.CreateOpts{Ephemeral: true})
	}
	if err != nil && !errors.Is(err, coord.ErrNodeExists) {
		return fmt.Errorf("cluster: register liveness: %w", err)
	}
	return nil
}

// updateRing runs a CAS loop: read table, mutate, write back with the
// version check; on ErrBadVersion the mutation is retried against the fresh
// state. A mutation returning no moves commits nothing.
func (m *Manager) updateRing(mutate func(*ring.Table) []ring.Move) error {
	l := m.cfg.Layout
	for attempt := 0; attempt < 16; attempt++ {
		blob, stat, err := m.cfg.Client.Get(l.RingPath())
		if err != nil {
			return err
		}
		snap, err := ring.DecodeRing(blob)
		if err != nil {
			return fmt.Errorf("cluster: corrupt ring znode: %w", err)
		}
		table := ring.NewTable(snap.NumVNodes(), snap.ReplicaFactor())
		if err := table.ApplySnapshot(snap); err != nil {
			return err
		}
		moves := mutate(table)
		if len(moves) == 0 {
			m.adoptTable(table)
			return nil
		}
		newBlob := ring.EncodeRing(table.Snapshot())
		_, err = m.cfg.Client.Set(l.RingPath(), newBlob, stat.Version)
		if errors.Is(err, coord.ErrBadVersion) {
			continue // lost the race; retry on fresh state
		}
		if err != nil {
			return err
		}
		m.adoptTable(table)
		if m.cfg.Cache != nil {
			m.cfg.Cache.Invalidate(l.RingPath())
		}
		return nil
	}
	return errors.New("cluster: ring CAS contention, giving up")
}

func (m *Manager) adoptTable(t *ring.Table) {
	m.mu.Lock()
	prev := m.table
	m.table = t
	var changed []ring.VNodeID
	if m.cfg.OnOwnershipChange != nil && prev != nil {
		changed = ownershipDiff(prev.Snapshot(), t.Snapshot(), m.cfg.Node)
	}
	m.mu.Unlock()
	// Outside the lock: the hook may read Ring() or call back into the
	// manager.
	if len(changed) > 0 {
		m.cfg.OnOwnershipChange(changed)
	}
}

// ownershipDiff lists the vnodes whose owner set differs between prev and
// next, restricted to vnodes `self` owns in at least one of the two views
// (only an owner holds rows worth re-merging).
func ownershipDiff(prev, next *ring.Ring, self ring.NodeID) []ring.VNodeID {
	if prev.Version() == next.Version() || prev.NumVNodes() != next.NumVNodes() {
		return nil
	}
	var changed []ring.VNodeID
	for v := 0; v < next.NumVNodes(); v++ {
		vn := ring.VNodeID(v)
		po, no := prev.Owners(vn), next.Owners(vn)
		mine, same := false, len(po) == len(no)
		for i, o := range no {
			if same && po[i] != o {
				same = false
			}
			if o == self {
				mine = true
			}
		}
		if !mine {
			for _, o := range po {
				if o == self {
					mine = true
					break
				}
			}
		}
		if mine && !same {
			changed = append(changed, vn)
		}
	}
	return changed
}

// Ring returns the node's current view of the assignment (refreshed by the
// reconcile loop); nil before Join.
func (m *Manager) Ring() *ring.Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.table == nil {
		return nil
	}
	return m.table.Snapshot()
}

// RefreshRing re-reads the authoritative assignment (bypassing the lease
// cache), adopts it locally and returns the fresh snapshot. Ownership gates
// call it before rejecting a write whose vnode this node does not appear to
// own — the authoritative answer distinguishes "my lease is stale" from
// "the key really moved".
func (m *Manager) RefreshRing() (*ring.Ring, error) {
	blob, _, err := m.cfg.Client.Get(m.cfg.Layout.RingPath())
	if err != nil {
		return nil, err
	}
	snap, err := ring.DecodeRing(blob)
	if err != nil {
		return nil, err
	}
	table := ring.NewTable(snap.NumVNodes(), snap.ReplicaFactor())
	if err := table.ApplySnapshot(snap); err != nil {
		return nil, err
	}
	m.adoptTable(table)
	if m.cfg.Cache != nil {
		m.cfg.Cache.Invalidate(m.cfg.Layout.RingPath())
	}
	return snap, nil
}

// CommitMoveSlot commits one migration cutover to the authoritative
// assignment with the usual CAS loop: vnode v's slot moves from `from` to
// `to`, bumping the vnode's ownership epoch and the ring version in one
// atomic publish. ring.ErrStaleMove reports that the slot's occupant changed
// since the migration was planned (a concurrent eviction won); the caller
// abandons the move and replans.
func (m *Manager) CommitMoveSlot(v ring.VNodeID, slot int, from, to ring.NodeID) error {
	l := m.cfg.Layout
	for attempt := 0; attempt < 16; attempt++ {
		blob, stat, err := m.cfg.Client.Get(l.RingPath())
		if err != nil {
			return err
		}
		snap, err := ring.DecodeRing(blob)
		if err != nil {
			return fmt.Errorf("cluster: corrupt ring znode: %w", err)
		}
		table := ring.NewTable(snap.NumVNodes(), snap.ReplicaFactor())
		if err := table.ApplySnapshot(snap); err != nil {
			return err
		}
		if err := table.MoveSlot(v, slot, from, to); err != nil {
			return err
		}
		_, err = m.cfg.Client.Set(l.RingPath(), ring.EncodeRing(table.Snapshot()), stat.Version)
		if errors.Is(err, coord.ErrBadVersion) {
			continue
		}
		if err != nil {
			return err
		}
		m.adoptTable(table)
		if m.cfg.Cache != nil {
			m.cfg.Cache.Invalidate(l.RingPath())
		}
		return nil
	}
	return errors.New("cluster: ring CAS contention, giving up")
}

// AcquireMigrationGuard takes the per-vnode migration lock: an ephemeral
// znode that dies with this node's session, so a crashed orchestrator never
// wedges the vnode. The release func is idempotent. ErrGuardHeld reports
// that another campaign is migrating the vnode right now.
func (m *Manager) AcquireMigrationGuard(v ring.VNodeID) (release func(), err error) {
	l := m.cfg.Layout
	if err := m.cfg.Client.EnsurePath(l.RebalancePath()); err != nil {
		return nil, err
	}
	path := l.RebalanceVNodePath(v)
	_, err = m.cfg.Client.Create(path, []byte(m.cfg.Node), coord.CreateOpts{Ephemeral: true})
	if errors.Is(err, coord.ErrNodeExists) {
		return nil, fmt.Errorf("%w: vnode %d", ErrGuardHeld, v)
	}
	if err != nil {
		return nil, err
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if derr := m.cfg.Client.Delete(path, -1); derr != nil && !errors.Is(derr, coord.ErrNoNode) {
				m.logf("release migration guard %d: %v", v, derr)
			}
		})
	}, nil
}

// ErrGuardHeld reports a migration guard owned by another campaign.
var ErrGuardHeld = errors.New("cluster: vnode migration guard held")

// Leave gracefully removes the node: its vnodes are redistributed and the
// ephemeral vanishes with the session.
func (m *Manager) Leave() error {
	m.Close()
	err := m.updateRing(func(t *ring.Table) []ring.Move {
		return t.RemoveNode(m.cfg.Node)
	})
	if err != nil {
		return err
	}
	derr := m.cfg.Client.Delete(m.cfg.Layout.NodePath(m.cfg.Node), -1)
	if derr != nil && !errors.Is(derr, coord.ErrNoNode) {
		return derr
	}
	return nil
}

// Close stops the reconcile loop without leaving the ring (crash-like
// shutdown; peers will evict us when the ephemeral expires).
func (m *Manager) Close() {
	m.mu.Lock()
	if !m.joined {
		m.mu.Unlock()
		return
	}
	m.joined = false
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}

func (m *Manager) reconcileLoop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.ReconcileEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		if err := m.Reconcile(); err != nil {
			m.logf("reconcile: %v", err)
		}
	}
}

// Reconcile folds the coordination state into the local view: it refreshes
// the assignment table and evicts ring members whose liveness ephemeral is
// gone (§III-D: heartbeat loss makes ZooKeeper aware of the node's death;
// recovery redistributes its vnodes). Safe to call from any node — the CAS
// write makes concurrent janitors idempotent.
func (m *Manager) Reconcile() error {
	alive, err := m.listAlive()
	if err != nil {
		return err
	}
	// Refresh the local table (cheap read, usually through the cache).
	blob, _, err := m.readRing()
	if err != nil {
		return err
	}
	snap, err := ring.DecodeRing(blob)
	if err != nil {
		return err
	}
	// Self-heal before judging others: if our own liveness znode is gone
	// (session expired under load, or a restart race deleted it), peers are
	// about to evict a live node. Re-register and carry on.
	if !alive[m.cfg.Node] {
		_, ok, err := m.cfg.Client.Exists(m.cfg.Layout.NodePath(m.cfg.Node))
		if err == nil && !ok {
			m.logf("own liveness znode missing; re-registering")
			if rerr := m.registerLiveness(); rerr != nil {
				m.logf("re-register liveness: %v", rerr)
			} else {
				alive[m.cfg.Node] = true
			}
		} else if err == nil {
			alive[m.cfg.Node] = true // children cache merely stale
		}
	}
	var dead []ring.NodeID
	var confirmErr error
	for _, n := range snap.Nodes() {
		if alive[n] {
			continue
		}
		// The cached children listing can lag the ring znode (they
		// invalidate independently), so a node that just joined may appear
		// in the ring before its liveness shows up here. Like ReportSuspect,
		// confirm against the authoritative store before evicting. A failed
		// confirmation leaves the candidate in place for a later round —
		// it must not block adopting the assignment table below.
		_, ok, err := m.cfg.Client.Exists(m.cfg.Layout.NodePath(n))
		if err != nil {
			confirmErr = err
			continue
		}
		if !ok {
			dead = append(dead, n)
		}
	}
	if len(dead) == 0 {
		table := ring.NewTable(snap.NumVNodes(), snap.ReplicaFactor())
		if err := table.ApplySnapshot(snap); err != nil {
			return err
		}
		m.adoptTable(table)
		return confirmErr
	}
	m.logf("evicting dead nodes %v", dead)
	var allMoves []ring.Move
	err = m.updateRing(func(t *ring.Table) []ring.Move {
		allMoves = allMoves[:0]
		for _, n := range dead {
			allMoves = append(allMoves, t.RemoveNode(n)...)
		}
		return allMoves
	})
	if err != nil {
		return err
	}
	m.deliverMoves(allMoves)
	if m.cfg.OnDeaths != nil {
		m.cfg.OnDeaths(dead, allMoves)
	}
	return nil
}

func (m *Manager) readRing() ([]byte, coord.Stat, error) {
	l := m.cfg.Layout
	if m.cfg.Cache != nil {
		return m.cfg.Cache.Get(l.RingPath())
	}
	return m.cfg.Client.Get(l.RingPath())
}

func (m *Manager) listAlive() (map[ring.NodeID]bool, error) {
	l := m.cfg.Layout
	var names []string
	var err error
	if m.cfg.Cache != nil {
		names, err = m.cfg.Cache.Children(l.NodesPath())
	} else {
		names, err = m.cfg.Client.Children(l.NodesPath())
	}
	if err != nil {
		return nil, err
	}
	alive := make(map[ring.NodeID]bool, len(names))
	for _, n := range names {
		alive[ring.NodeID(n)] = true
	}
	return alive, nil
}

// deliverMoves forwards the moves relevant to this node (vnodes it gained).
func (m *Manager) deliverMoves(moves []ring.Move) {
	if m.cfg.OnMoves == nil {
		return
	}
	var mine []ring.Move
	for _, mv := range moves {
		if mv.To == m.cfg.Node {
			mine = append(mine, mv)
		}
	}
	if len(mine) > 0 {
		m.cfg.OnMoves(mine)
	}
}

// ReportSuspect verifies a peer suspected dead (a replica timed out or
// refused, §III-C) against the coordination service and, when the ephemeral
// is truly gone, runs the eviction immediately instead of waiting for the
// next reconcile tick.
func (m *Manager) ReportSuspect(n ring.NodeID) error {
	if n == m.cfg.Node {
		return nil
	}
	// Bypass the cache: suspicion needs the authoritative answer.
	_, ok, err := m.cfg.Client.Exists(m.cfg.Layout.NodePath(n))
	if err != nil {
		return err
	}
	if ok {
		return nil // just slow, not dead
	}
	var moves []ring.Move
	err = m.updateRing(func(t *ring.Table) []ring.Move {
		moves = t.RemoveNode(n)
		return moves
	})
	if err != nil {
		return err
	}
	m.logf("suspect %s confirmed dead, %d moves", n, len(moves))
	m.deliverMoves(moves)
	if m.cfg.OnDeaths != nil {
		m.cfg.OnDeaths([]ring.NodeID{n}, moves)
	}
	return nil
}

// PublishImbalance writes this node's imbalance row for the balancer; the
// paper keeps per-vnode statistics local and pushes only the small
// per-real-node summary (§III-B).
func (m *Manager) PublishImbalance(load ring.NodeImbalance) error {
	l := m.cfg.Layout
	path := l.ImbalanceNodePath(m.cfg.Node)
	data := encodeImbalance(load)
	_, err := m.cfg.Client.Set(path, data, -1)
	if errors.Is(err, coord.ErrNoNode) {
		_, cerr := m.cfg.Client.Create(path, data, coord.CreateOpts{Ephemeral: true})
		if errors.Is(cerr, coord.ErrNodeExists) {
			_, cerr = m.cfg.Client.Set(path, data, -1)
		}
		return cerr
	}
	return err
}

// ClusterImbalance reads every node's published imbalance row.
func (m *Manager) ClusterImbalance() ([]ring.NodeImbalance, error) {
	l := m.cfg.Layout
	names, err := m.cfg.Client.Children(l.ImbalancePath())
	if err != nil {
		return nil, err
	}
	out := make([]ring.NodeImbalance, 0, len(names))
	for _, n := range names {
		data, _, err := m.cfg.Client.Get(l.ImbalancePath() + "/" + n)
		if err != nil {
			continue // node vanished between list and read
		}
		imb, err := decodeImbalance(data)
		if err != nil {
			continue
		}
		out = append(out, imb)
	}
	return out, nil
}

// ApplyPlan commits a load-rebalance plan (primary moves produced by
// ring.PlanLoadRebalance) to the authoritative assignment with the usual
// CAS loop, then delivers this node's share of the moves for data copy.
// Moves whose source assignment changed since planning are skipped — the
// balancer replans on its next round.
func (m *Manager) ApplyPlan(plan []ring.Move) error {
	if len(plan) == 0 {
		return nil
	}
	var applied []ring.Move
	err := m.updateRing(func(t *ring.Table) []ring.Move {
		applied = applied[:0]
		snap := t.Snapshot()
		for _, mv := range plan {
			owners := snap.Owners(mv.VNode)
			if len(owners) == 0 || owners[0] != mv.From {
				continue // stale plan entry
			}
			got, err := t.MovePrimary(mv.VNode, mv.To)
			if err != nil {
				continue
			}
			applied = append(applied, got...)
		}
		return applied
	})
	if err != nil {
		return err
	}
	m.deliverMoves(applied)
	return nil
}
