package cluster

import (
	"math"
	"sort"
	"testing"

	"sedna/internal/ring"
)

func TestImbalanceRowRoundTrip(t *testing.T) {
	rows := []ring.NodeImbalance{
		{Node: "node-a:7101", Load: 1234.5, Share: 0.41, Ratio: 1.23, VNodes: 7},
		{Node: "b", Load: 0, Share: 0, Ratio: 0, VNodes: 0},
		{Node: "", Load: math.MaxFloat64, Share: 1, Ratio: 3, VNodes: 1 << 20},
	}
	for _, want := range rows {
		got, err := decodeImbalance(encodeImbalance(want))
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestImbalanceRowCorrupt(t *testing.T) {
	good := encodeImbalance(ring.NodeImbalance{Node: "n", Load: 1, VNodes: 2})
	cases := [][]byte{
		nil,
		{0x01},                               // shorter than the length prefix
		good[:len(good)-1],                   // truncated payload
		append(append([]byte{}, good...), 0), // trailing garbage
	}
	for i, b := range cases {
		if _, err := decodeImbalance(b); err == nil {
			t.Fatalf("case %d: corrupt row decoded without error", i)
		}
	}
}

// buildRing assembles a 3-node, 2-replica assignment the way the cluster
// does: through Table.AddNode.
func buildRing(t *testing.T) *ring.Ring {
	t.Helper()
	tab := ring.NewTable(12, 2)
	for _, n := range []ring.NodeID{"a", "b", "c"} {
		tab.AddNode(n)
	}
	r := tab.Snapshot()
	if err := r.Validate(); err != nil {
		t.Fatalf("ring invalid: %v", err)
	}
	return r
}

// loadPrimaries returns loads where every vnode whose primary is node gets
// the given read count and all other vnodes are idle.
func loadPrimaries(r *ring.Ring, node ring.NodeID, reads uint64) []ring.VNodeLoad {
	loads := make([]ring.VNodeLoad, r.NumVNodes())
	for v := range loads {
		loads[v] = ring.VNodeLoad{VNode: ring.VNodeID(v)}
		if r.Owners(ring.VNodeID(v))[0] == node {
			loads[v].Reads = reads
		}
	}
	return loads
}

func TestImbalanceTableOrderingAndShares(t *testing.T) {
	r := buildRing(t)
	// a's primaries are hot, the rest idle.
	table := ring.Imbalance(r, loadPrimaries(r, "a", 100))

	if len(table) != 3 {
		t.Fatalf("table rows = %d, want 3", len(table))
	}
	if !sort.SliceIsSorted(table, func(i, j int) bool { return table[i].Node < table[j].Node }) {
		t.Fatalf("table not sorted by node: %+v", table)
	}
	var shareSum float64
	for _, e := range table {
		shareSum += e.Share
		if got := len(r.PrimaryVNodesOf(e.Node)); e.VNodes != got {
			t.Fatalf("node %s: VNodes=%d, ring says %d", e.Node, e.VNodes, got)
		}
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", shareSum)
	}
	// All load sits on a: its ratio is #nodes (3x the fair share), the
	// others are at zero, and MaxRatio reports the hot node.
	for _, e := range table {
		switch e.Node {
		case "a":
			if math.Abs(e.Ratio-3) > 1e-9 || math.Abs(e.Share-1) > 1e-9 {
				t.Fatalf("hot node row: %+v", e)
			}
		default:
			if e.Ratio != 0 || e.Load != 0 {
				t.Fatalf("idle node row: %+v", e)
			}
		}
	}
	if got := ring.MaxRatio(table); math.Abs(got-3) > 1e-9 {
		t.Fatalf("MaxRatio = %v, want 3", got)
	}
	if got := ring.MaxRatio(nil); got != 0 {
		t.Fatalf("MaxRatio(nil) = %v, want 0", got)
	}
}

func TestPlanLoadRebalanceCandidateSelection(t *testing.T) {
	r := buildRing(t)
	loads := loadPrimaries(r, "a", 100)
	moves := ring.PlanLoadRebalance(r, loads, 1.2)
	if len(moves) == 0 {
		t.Fatal("no moves planned for a fully skewed cluster")
	}
	weightOf := func(v ring.VNodeID) float64 { return loads[v].Weight() }
	prev := math.Inf(1)
	for _, m := range moves {
		// Only primary slots of the hot donor move, never back onto it.
		if m.From != "a" || m.Slot != 0 {
			t.Fatalf("unexpected move %v", m)
		}
		if m.To == "a" || m.To == "" {
			t.Fatalf("bad destination in %v", m)
		}
		if r.Owners(m.VNode)[0] != "a" {
			t.Fatalf("move %v shifts a vnode a doesn't primary", m)
		}
		// The planner prefers promoting an existing replica holder:
		// with 2 replicas the vnode's other owner must be the target.
		if other := r.Owners(m.VNode)[1]; other != "" && m.To != other {
			t.Fatalf("move %v ignores replica holder %s", m, other)
		}
		// Hottest vnodes are shed first.
		if w := weightOf(m.VNode); w > prev {
			t.Fatalf("moves not hottest-first: %v after weight %v", m, prev)
		} else {
			prev = w
		}
	}
}

func TestPlanLoadRebalanceBalancedClusterIsStable(t *testing.T) {
	r := buildRing(t)
	// Uniform load: every vnode equally busy, no node above threshold.
	loads := make([]ring.VNodeLoad, r.NumVNodes())
	for v := range loads {
		loads[v] = ring.VNodeLoad{VNode: ring.VNodeID(v), Reads: 10}
	}
	if moves := ring.PlanLoadRebalance(r, loads, 1.5); len(moves) != 0 {
		t.Fatalf("balanced cluster planned moves: %v", moves)
	}
	// An idle cluster plans nothing either.
	if moves := ring.PlanLoadRebalance(r, make([]ring.VNodeLoad, r.NumVNodes()), 1.2); len(moves) != 0 {
		t.Fatalf("idle cluster planned moves: %v", moves)
	}
}
