package cluster

import (
	"encoding/binary"
	"errors"
	"math"

	"sedna/internal/ring"
)

// Imbalance row wire format (little endian): the per-real-node summary
// pushed to the coordination service — deliberately tiny compared with the
// per-vnode statistics kept locally (§III-B).
//
//	u16 node name length, name
//	f64 load, f64 share, f64 ratio
//	u32 primary vnode count

var errBadImbalance = errors.New("cluster: corrupt imbalance row")

func encodeImbalance(v ring.NodeImbalance) []byte {
	b := make([]byte, 0, 2+len(v.Node)+8*3+4)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(v.Node)))
	b = append(b, v.Node...)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Load))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Share))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Ratio))
	b = binary.LittleEndian.AppendUint32(b, uint32(v.VNodes))
	return b
}

func decodeImbalance(b []byte) (ring.NodeImbalance, error) {
	if len(b) < 2 {
		return ring.NodeImbalance{}, errBadImbalance
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) != n+8*3+4 {
		return ring.NodeImbalance{}, errBadImbalance
	}
	out := ring.NodeImbalance{Node: ring.NodeID(b[:n])}
	b = b[n:]
	out.Load = math.Float64frombits(binary.LittleEndian.Uint64(b))
	out.Share = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	out.Ratio = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
	out.VNodes = int(binary.LittleEndian.Uint32(b[24:]))
	return out, nil
}
