package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sedna/internal/coord"
	"sedna/internal/netsim"
	"sedna/internal/ring"
)

// harness runs a single-member coordination ensemble and hands out clients.
type harness struct {
	net   *netsim.Network
	srv   *coord.Server
	addrs []string
	t     *testing.T
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	net := netsim.NewNetwork(netsim.Loopback(), 7)
	addrs := []string{"coord-0"}
	srv := coord.NewServer(coord.ServerConfig{
		ID:              0,
		Members:         addrs,
		Transport:       net.Endpoint(addrs[0]),
		HeartbeatEvery:  10 * time.Millisecond,
		ElectionTimeout: 60 * time.Millisecond,
		RPCTimeout:      40 * time.Millisecond,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	deadline := time.Now().Add(3 * time.Second)
	for !srv.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return &harness{net: net, srv: srv, addrs: addrs, t: t}
}

func (h *harness) client(name string, sessionTO time.Duration) *coord.Client {
	h.t.Helper()
	if sessionTO == 0 {
		sessionTO = 2 * time.Second
	}
	c, err := coord.Dial(coord.ClientConfig{
		Servers:        h.addrs,
		Caller:         h.net.Endpoint(name),
		SessionTimeout: sessionTO,
		CallTimeout:    500 * time.Millisecond,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { c.Close() })
	return c
}

func (h *harness) manager(t *testing.T, node ring.NodeID, sessionTO time.Duration) *Manager {
	t.Helper()
	c := h.client("sess-"+string(node), sessionTO)
	m, err := NewManager(Config{
		Node:           node,
		Client:         c,
		ReconcileEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestBootstrapIdempotent(t *testing.T) {
	h := newHarness(t)
	c := h.client("boot", 0)
	if err := Bootstrap(c, DefaultLayout(), 64, 3); err != nil {
		t.Fatal(err)
	}
	if err := Bootstrap(c, DefaultLayout(), 64, 3); err != nil {
		t.Fatal(err)
	}
	blob, _, err := c.Get(DefaultLayout().RingPath())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ring.DecodeRing(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumVNodes() != 64 || snap.ReplicaFactor() != 3 {
		t.Fatalf("snapshot = %d vnodes, %d replicas", snap.NumVNodes(), snap.ReplicaFactor())
	}
}

func TestJoinWithoutBootstrapFails(t *testing.T) {
	h := newHarness(t)
	m := h.manager(t, "n1", 0)
	if _, err := m.Join(); !errors.Is(err, ErrNotBootstrapped) {
		t.Fatalf("join = %v", err)
	}
}

func TestJoinClaimsVNodes(t *testing.T) {
	h := newHarness(t)
	c := h.client("boot", 0)
	if err := Bootstrap(c, DefaultLayout(), 30, 3); err != nil {
		t.Fatal(err)
	}
	m1 := h.manager(t, "n1", 0)
	moves, err := m1.Join()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 30 {
		t.Fatalf("first joiner got %d moves, want 30", len(moves))
	}
	r := m1.Ring()
	if got := len(r.PrimaryVNodesOf("n1")); got != 30 {
		t.Fatalf("n1 primaries = %d", got)
	}
	// Ephemeral liveness registered.
	if _, ok, _ := c.Exists(DefaultLayout().NodePath("n1")); !ok {
		t.Fatal("liveness ephemeral missing")
	}

	// Second joiner takes roughly half of slot 0 and shares slot 1.
	m2 := h.manager(t, "n2", 0)
	moves2, err := m2.Join()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves2) == 0 {
		t.Fatal("second joiner received nothing")
	}
	r2 := m2.Ring()
	if got := len(r2.PrimaryVNodesOf("n2")); got < 10 {
		t.Fatalf("n2 primaries = %d, want ~15", got)
	}
	for _, mv := range moves2 {
		// Steals must flow to the joiner; fills of the newly activated
		// replica slot (From == "") may land on either member.
		if mv.From != "" && mv.To != "n2" {
			t.Fatalf("join churned %v", mv)
		}
	}
}

func TestGracefulLeaveRedistributes(t *testing.T) {
	h := newHarness(t)
	c := h.client("boot", 0)
	Bootstrap(c, DefaultLayout(), 20, 2)
	m1 := h.manager(t, "n1", 0)
	m2 := h.manager(t, "n2", 0)
	if _, err := m1.Join(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Join(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Leave(); err != nil {
		t.Fatal(err)
	}
	blob, _, _ := c.Get(DefaultLayout().RingPath())
	snap, _ := ring.DecodeRing(blob)
	for _, n := range snap.Nodes() {
		if n == "n2" {
			t.Fatal("left node still in ring")
		}
	}
	if _, ok, _ := c.Exists(DefaultLayout().NodePath("n2")); ok {
		t.Fatal("left node ephemeral remains")
	}
	// n1 owns everything again.
	if got := len(snap.PrimaryVNodesOf("n1")); got != 20 {
		t.Fatalf("n1 primaries after leave = %d", got)
	}
}

func TestCrashEvictionViaReconcile(t *testing.T) {
	h := newHarness(t)
	c := h.client("boot", 0)
	Bootstrap(c, DefaultLayout(), 20, 2)

	m1 := h.manager(t, "n1", 0)
	if _, err := m1.Join(); err != nil {
		t.Fatal(err)
	}
	m2 := h.manager(t, "n2", 0)
	if _, err := m2.Join(); err != nil {
		t.Fatal(err)
	}
	var gained []ring.Move
	gainedCh := make(chan struct{}, 8)

	// n3 joins with a short session, then "crashes" (network isolation).
	// With three members and two replicas the survivors must take over
	// the dead node's vnodes, so real moves flow to them.
	crashClient := h.client("sess-n3", 150*time.Millisecond)
	m3, err := NewManager(Config{Node: "n3", Client: crashClient, ReconcileEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m3.Close)
	if _, err := m3.Join(); err != nil {
		t.Fatal(err)
	}

	// Rebuild m1 with an OnMoves hook (hook set post-join via config is
	// fixed here by creating a fresh watcher manager on n1's behalf).
	watcher, err := NewManager(Config{
		Node:           "n1",
		Client:         h.client("sess-n1b", 0),
		ReconcileEvery: 40 * time.Millisecond,
		OnMoves: func(mv []ring.Move) {
			gained = append(gained, mv...)
			gainedCh <- struct{}{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	h.net.Isolate("sess-n3") // n3 stops pinging; session expires

	// Run reconciliation until n3 is evicted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := watcher.Reconcile(); err == nil {
			r := watcher.Ring()
			found := false
			for _, n := range r.Nodes() {
				if n == "n3" {
					found = true
				}
			}
			if !found {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("crashed node never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	select {
	case <-gainedCh:
	default:
		t.Fatal("no moves delivered to the survivor")
	}
	for _, mv := range gained {
		if mv.To != "n1" {
			t.Fatalf("unexpected move %v", mv)
		}
	}
}

func TestReportSuspect(t *testing.T) {
	h := newHarness(t)
	c := h.client("boot", 0)
	Bootstrap(c, DefaultLayout(), 10, 2)
	m1 := h.manager(t, "n1", 0)
	m1.Join()
	m2 := h.manager(t, "n2", 0)
	m2.Join()
	// Refresh m1's local view so it includes n2.
	if err := m1.Reconcile(); err != nil {
		t.Fatal(err)
	}

	// A live suspect is left alone.
	if err := m1.ReportSuspect("n2"); err != nil {
		t.Fatal(err)
	}
	r := m1.Ring()
	alive := false
	for _, n := range r.Nodes() {
		if n == "n2" {
			alive = true
		}
	}
	if !alive {
		t.Fatal("live suspect was evicted")
	}

	// Remove the ephemeral (simulates expiry) and re-report.
	if err := c.Delete(DefaultLayout().NodePath("n2"), -1); err != nil {
		t.Fatal(err)
	}
	if err := m1.ReportSuspect("n2"); err != nil {
		t.Fatal(err)
	}
	r = m1.Ring()
	for _, n := range r.Nodes() {
		if n == "n2" {
			t.Fatal("dead suspect survived")
		}
	}
}

func TestConcurrentJoinsCAS(t *testing.T) {
	h := newHarness(t)
	c := h.client("boot", 0)
	Bootstrap(c, DefaultLayout(), 40, 3)
	const n = 4
	managers := make([]*Manager, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		managers[i] = h.manager(t, ring.NodeID(fmt.Sprintf("n%d", i)), 0)
	}
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := managers[i].Join()
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	blob, _, _ := c.Get(DefaultLayout().RingPath())
	snap, err := ring.DecodeRing(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Nodes()); got != n {
		t.Fatalf("ring has %d nodes, want %d", got, n)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every vnode fully replicated (4 nodes >= 3 replicas).
	for v := 0; v < 40; v++ {
		owners := snap.Owners(ring.VNodeID(v))
		for slot := 0; slot < 3; slot++ {
			if owners[slot] == "" {
				t.Fatalf("vnode %d slot %d empty", v, slot)
			}
		}
	}
}

func TestPublishAndReadImbalance(t *testing.T) {
	h := newHarness(t)
	c := h.client("boot", 0)
	Bootstrap(c, DefaultLayout(), 10, 2)
	m := h.manager(t, "n1", 0)
	m.Join()
	row := ring.NodeImbalance{Node: "n1", Load: 123.5, Share: 0.75, Ratio: 1.5, VNodes: 10}
	if err := m.PublishImbalance(row); err != nil {
		t.Fatal(err)
	}
	// Publishing again overwrites.
	row.Load = 200
	if err := m.PublishImbalance(row); err != nil {
		t.Fatal(err)
	}
	got, err := m.ClusterImbalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Node != "n1" || got[0].Load != 200 || got[0].VNodes != 10 {
		t.Fatalf("imbalance = %+v", got)
	}
}

func TestImbalanceCodecProperty(t *testing.T) {
	f := func(node string, load, share, ratio float64, vnodes uint16) bool {
		if len(node) > 60000 {
			return true
		}
		in := ring.NodeImbalance{Node: ring.NodeID(node), Load: load, Share: share, Ratio: ratio, VNodes: int(vnodes)}
		out, err := decodeImbalance(encodeImbalance(in))
		if err != nil {
			return false
		}
		// NaN != NaN; compare bit patterns via re-encode.
		return string(encodeImbalance(out)) == string(encodeImbalance(in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeImbalance([]byte{1}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := decodeImbalance([]byte{5, 0, 'a', 'b'}); err == nil {
		t.Fatal("truncated row accepted")
	}
}

func TestOwnershipChangeHookFiresOnAdoptedRingChange(t *testing.T) {
	h := newHarness(t)
	c := h.client("boot", 0)
	Bootstrap(c, DefaultLayout(), 20, 2)

	var mu sync.Mutex
	var changed []ring.VNodeID
	m1, err := NewManager(Config{
		Node:           "n1",
		Client:         h.client("sess-n1", 0),
		ReconcileEvery: 25 * time.Millisecond,
		OnOwnershipChange: func(vs []ring.VNodeID) {
			mu.Lock()
			changed = append(changed, vs...)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m1.Close)
	if _, err := m1.Join(); err != nil {
		t.Fatal(err)
	}

	// n1's steady state must not re-fire the hook: same ring version, no diff.
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	changed = changed[:0]
	mu.Unlock()

	// A second member's join rewrites the assignment; n1's reconcile adopts
	// the new table and must surface every vnode whose owner set changed —
	// rows n1 quorum-acked against the old view need an anti-entropy pass
	// before reads through the new view can rely on them.
	m2 := h.manager(t, "n2", 0)
	if _, err := m2.Join(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		n := len(changed)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ownership-change hook never fired after a join changed the ring")
		}
		time.Sleep(10 * time.Millisecond)
	}
	r := m1.Ring()
	mu.Lock()
	defer mu.Unlock()
	seen := map[ring.VNodeID]bool{}
	for _, v := range changed {
		if v < 0 || int(v) >= r.NumVNodes() {
			t.Fatalf("hook reported out-of-range vnode %d", v)
		}
		if seen[v] {
			t.Fatalf("hook reported vnode %d twice in one adoption burst", v)
		}
		seen[v] = true
	}
	// Every reported vnode is one n1 owns under the adopted view or owned
	// before; with two members and RF=2 n1 still owns everything, so the
	// stronger check holds directly.
	for v := range seen {
		owns := false
		for _, o := range r.Owners(v) {
			if o == "n1" {
				owns = true
			}
		}
		if !owns {
			t.Fatalf("hook reported vnode %d that n1 does not own", v)
		}
	}
}
