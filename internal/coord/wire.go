package coord

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Transport opcodes used by the coordination service. Client-facing ops
// occupy 0x01xx, ensemble-internal ops 0x02xx.
const (
	OpCreate uint16 = 0x0101
	OpGet    uint16 = 0x0102
	OpSet    uint16 = 0x0103
	OpDelete uint16 = 0x0104
	OpChildr uint16 = 0x0105
	OpExists uint16 = 0x0106
	OpPing   uint16 = 0x0107
	OpStart  uint16 = 0x0108 // start session
	OpEnd    uint16 = 0x0109 // end session
	OpAwait  uint16 = 0x010a // long-poll watch
	OpChange uint16 = 0x010b // change log since zxid
	OpStatus uint16 = 0x010c // server status (leader, epoch, zxid)
	// OpObsStats is the znode-free admin path to a member's obs snapshot:
	// it reads only soft state, so it works even without a leader.
	OpObsStats uint16 = 0x010d

	OpPropose   uint16 = 0x0201
	OpCommit    uint16 = 0x0202
	OpSync      uint16 = 0x0203 // snapshot fetch for (re)joining members
	OpElect     uint16 = 0x0204 // epoch announcement
	OpHeartbeat uint16 = 0x0205
	OpForward   uint16 = 0x0206 // write forwarded to the leader
)

// Status codes carried in responses; domain failures are statuses rather
// than transport errors so callers can distinguish them from dead servers.
const (
	stOK uint16 = iota
	stNoNode
	stNodeExists
	stBadVersion
	stNotEmpty
	stNoParent
	stBadPath
	stEphemeralChildren
	stNotLeader
	stNoQuorum
	stSessionExpired
	stResync
	stStaleEpoch
	stInternal
)

// ErrNotLeader reports a write sent to a non-leader that could not forward.
var ErrNotLeader = errors.New("coord: not leader")

// ErrNoQuorum reports that the leader cannot reach a majority.
var ErrNoQuorum = errors.New("coord: no quorum")

// ErrSessionExpired reports an operation under an expired session.
var ErrSessionExpired = errors.New("coord: session expired")

// ErrResync tells a change-log consumer that its cursor predates the
// retained window and a full refresh is required.
var ErrResync = errors.New("coord: change log truncated, resync")

func statusErr(st uint16, detail string) error {
	var base error
	switch st {
	case stOK:
		return nil
	case stNoNode:
		base = ErrNoNode
	case stNodeExists:
		base = ErrNodeExists
	case stBadVersion:
		base = ErrBadVersion
	case stNotEmpty:
		base = ErrNotEmpty
	case stNoParent:
		base = ErrNoParent
	case stBadPath:
		base = ErrBadPath
	case stEphemeralChildren:
		base = ErrEphemeralChildren
	case stNotLeader:
		base = ErrNotLeader
	case stNoQuorum:
		base = ErrNoQuorum
	case stSessionExpired:
		base = ErrSessionExpired
	case stResync:
		base = ErrResync
	case stStaleEpoch:
		base = errors.New("coord: stale epoch")
	default:
		base = errors.New("coord: internal error")
	}
	if detail == "" {
		return base
	}
	return fmt.Errorf("%w (%s)", base, detail)
}

func errStatus(err error) (uint16, string) {
	switch {
	case err == nil:
		return stOK, ""
	case errors.Is(err, ErrNoNode):
		return stNoNode, err.Error()
	case errors.Is(err, ErrNodeExists):
		return stNodeExists, err.Error()
	case errors.Is(err, ErrBadVersion):
		return stBadVersion, err.Error()
	case errors.Is(err, ErrNotEmpty):
		return stNotEmpty, err.Error()
	case errors.Is(err, ErrNoParent):
		return stNoParent, err.Error()
	case errors.Is(err, ErrBadPath):
		return stBadPath, err.Error()
	case errors.Is(err, ErrEphemeralChildren):
		return stEphemeralChildren, err.Error()
	case errors.Is(err, ErrNotLeader):
		return stNotLeader, err.Error()
	case errors.Is(err, ErrNoQuorum):
		return stNoQuorum, err.Error()
	case errors.Is(err, ErrSessionExpired):
		return stSessionExpired, err.Error()
	case errors.Is(err, ErrResync):
		return stResync, err.Error()
	default:
		return stInternal, err.Error()
	}
}

// enc is an append-style binary writer.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string)   { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *enc) bytes(p []byte) { e.u32(uint32(len(p))); e.b = append(e.b, p...) }

// dec is a cursor-style binary reader; the first failure sticks.
type dec struct {
	b   []byte
	off int
	err error
}

var errShort = errors.New("coord: short message")

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.off < n {
		d.err = errShort
		return false
	}
	return true
}

func (d *dec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if !d.need(n) {
		return nil
	}
	p := append([]byte(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return p
}

func encodeStat(e *enc, s Stat) {
	e.i64(s.Version)
	e.i64(s.CVersion)
	e.u64(s.EphemeralOwner)
	e.u64(s.Czxid)
	e.u64(s.Mzxid)
	e.u32(uint32(s.NumChildren))
}

func decodeStat(d *dec) Stat {
	return Stat{
		Version:        d.i64(),
		CVersion:       d.i64(),
		EphemeralOwner: d.u64(),
		Czxid:          d.u64(),
		Mzxid:          d.u64(),
		NumChildren:    int(d.u32()),
	}
}
