package coord

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sedna/internal/transport"
)

// --- quorum write path ---
//
// The leader serialises writes: each proposal is acked by a majority before
// the leader applies and answers; the commit (carrying the full txn) is then
// broadcast so followers apply the same sequence. Followers that miss a
// commit detect the zxid gap — on the next commit or heartbeat — and fetch a
// full snapshot from the leader. Reads are served locally by every member,
// which is exactly the "much more preferable for read than write-intensive
// operations" profile the paper relies on (§III-E).

// propose runs the quorum write protocol for txn. Leader only.
func (s *Server) propose(txn *Txn) (txnResult, error) {
	s.nProposals.Inc()
	s.proposMu.Lock()
	defer s.proposMu.Unlock()

	s.mu.Lock()
	if s.leader != s.cfg.ID {
		s.mu.Unlock()
		return txnResult{}, ErrNotLeader
	}
	txn.Epoch = s.epoch
	txn.Zxid = s.zxid + 1
	s.mu.Unlock()

	var e enc
	encodeTxn(&e, txn)
	body := e.b

	acks := 1 // self
	var mu sync.Mutex
	var wg sync.WaitGroup
	sawNewerEpoch := false
	for i, addr := range s.cfg.Members {
		if i == s.cfg.ID {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RPCTimeout)
			defer cancel()
			resp, err := s.cfg.Transport.Call(ctx, addr, transport.Message{Op: OpPropose, Body: body})
			if err != nil {
				return
			}
			d := dec{b: resp.Body}
			switch d.u16() {
			case stOK:
				mu.Lock()
				acks++
				mu.Unlock()
			case stStaleEpoch:
				mu.Lock()
				sawNewerEpoch = true
				mu.Unlock()
			}
		}(addr)
	}
	wg.Wait()

	if sawNewerEpoch || acks < s.quorum() {
		// Lost the cluster: step down and let the election sort it out.
		s.mu.Lock()
		if s.leader == s.cfg.ID {
			s.leader = -1
		}
		s.mu.Unlock()
		s.logf("proposal zxid=%d failed (acks=%d), stepping down", txn.Zxid, acks)
		return txnResult{}, ErrNoQuorum
	}

	res := s.applyCommitted(*txn)
	// Commit broadcast is asynchronous; stragglers catch up via heartbeat
	// zxid comparison.
	for i, addr := range s.cfg.Members {
		if i == s.cfg.ID {
			continue
		}
		go func(addr string) {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RPCTimeout)
			defer cancel()
			s.cfg.Transport.Call(ctx, addr, transport.Message{Op: OpCommit, Body: body})
		}(addr)
	}
	return res, nil
}

func (s *Server) handlePropose(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	txn := decodeTxn(&d)
	if d.err != nil {
		return transport.Message{}, d.err
	}
	var e enc
	s.mu.Lock()
	switch {
	case txn.Epoch < s.epoch:
		e.u16(stStaleEpoch)
	default:
		if txn.Epoch > s.epoch {
			s.epoch = txn.Epoch
		}
		s.lastHB = time.Now()
		e.u16(stOK)
	}
	s.mu.Unlock()
	return transport.Message{Op: OpPropose, Body: e.b}, nil
}

func (s *Server) handleCommit(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	txn := decodeTxn(&d)
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	applied, gap := s.zxid, false
	if txn.Epoch < s.epoch {
		s.mu.Unlock()
		var e enc
		e.u16(stStaleEpoch)
		return transport.Message{Op: OpCommit, Body: e.b}, nil
	}
	if txn.Zxid == applied+1 {
		s.mu.Unlock()
		s.applyCommitted(txn)
	} else if txn.Zxid > applied+1 {
		gap = true
		leader := s.leader
		s.mu.Unlock()
		if leader >= 0 && leader != s.cfg.ID {
			go s.syncFrom(s.cfg.Members[leader])
		}
	} else {
		s.mu.Unlock() // duplicate; already applied
	}
	var e enc
	if gap {
		e.u16(stResync)
	} else {
		e.u16(stOK)
	}
	return transport.Message{Op: OpCommit, Body: e.b}, nil
}

// applyCommitted applies txn to the replicated state, records the change
// log and wakes watchers. It is idempotent against duplicates.
func (s *Server) applyCommitted(txn Txn) txnResult {
	s.mu.Lock()
	if txn.Zxid <= s.zxid {
		s.mu.Unlock()
		return txnResult{err: fmt.Errorf("coord: duplicate zxid %d", txn.Zxid)}
	}
	res, touched := applyTxn(s.tree, s.sessions, &txn)
	s.zxid = txn.Zxid
	if txn.Kind == TxnStartSession {
		s.lastPing[txn.Session] = time.Now()
	}
	if txn.Kind == TxnEndSession || txn.Kind == TxnExpireSession {
		delete(s.lastPing, txn.Session)
	}
	var wake []chan struct{}
	seen := map[string]bool{}
	for _, p := range touched {
		if seen[p] {
			continue
		}
		seen[p] = true
		s.touch[p] = txn.Zxid
		s.changes = append(s.changes, changeEntry{zxid: txn.Zxid, path: p})
		wake = append(wake, s.waiters[p]...)
		delete(s.waiters, p)
	}
	// Bound the change ring; consumers whose cursor predates the floor
	// must resync.
	for len(s.changes) > s.cfg.ChangeLogSize {
		s.changesFloor = s.changes[0].zxid
		s.changes = s.changes[1:]
	}
	s.mu.Unlock()
	for _, ch := range wake {
		close(ch)
	}
	return res
}

// changesFloorLocked returns the newest zxid NOT guaranteed to be covered
// by the retained ring. Callers must hold s.mu.
func (s *Server) changesFloorLocked() uint64 { return s.changesFloor }

// --- client write path ---

// handleClientWrite parses a client mutation, routes it to the leader
// (directly when we lead, via OpForward otherwise) and encodes the reply.
func (s *Server) handleClientWrite(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	s.mu.Lock()
	leader := s.leader
	s.mu.Unlock()
	switch {
	case leader == s.cfg.ID:
		resp, _, err := s.leaderWrite(req)
		return resp, err
	case leader >= 0:
		// Forward the original request wholesale.
		var e enc
		e.u16(req.Op)
		e.bytes(req.Body)
		fctx, cancel := context.WithTimeout(ctx, 4*s.cfg.RPCTimeout)
		defer cancel()
		resp, err := s.cfg.Transport.Call(fctx, s.cfg.Members[leader], transport.Message{Op: OpForward, Body: e.b})
		if err != nil {
			return errorReply(req.Op, ErrNotLeader), nil
		}
		// The forward response wraps the client reply with the committed
		// txn; apply it locally before answering so the client observes
		// its own write on this member (ZooKeeper's read-your-writes).
		d := dec{b: resp.Body}
		clientResp := d.bytes()
		committed := d.bool()
		if d.err != nil {
			return transport.Message{}, d.err
		}
		if committed {
			txn := decodeTxn(&d)
			if d.err != nil {
				return transport.Message{}, d.err
			}
			s.ensureApplied(fctx, txn)
		}
		return transport.Message{Op: req.Op, Body: clientResp}, nil
	default:
		return errorReply(req.Op, ErrNoQuorum), nil
	}
}

// ensureApplied blocks until the member has applied txn (directly when it
// is the next in sequence, via the commit broadcast, or by snapshot sync).
func (s *Server) ensureApplied(ctx context.Context, txn Txn) {
	for i := 0; ; i++ {
		s.mu.Lock()
		applied := s.zxid
		leader := s.leader
		s.mu.Unlock()
		if applied >= txn.Zxid {
			return
		}
		if applied+1 == txn.Zxid {
			s.applyCommitted(txn)
			return
		}
		if i >= 3 && leader >= 0 && leader != s.cfg.ID {
			s.syncFrom(s.cfg.Members[leader])
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

func (s *Server) handleForward(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	op := d.u16()
	body := d.bytes()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	resp, txn, err := s.leaderWrite(transport.Message{Op: op, Body: body})
	if err != nil {
		return transport.Message{}, err
	}
	var e enc
	e.bytes(resp.Body)
	if txn != nil {
		e.bool(true)
		encodeTxn(&e, txn)
	} else {
		e.bool(false)
	}
	return transport.Message{Op: OpForward, Body: e.b}, nil
}

// leaderWrite executes one client mutation on the leader. It returns the
// client-facing reply plus the committed txn (nil when nothing committed)
// so forwarding members can apply it before relaying the reply.
func (s *Server) leaderWrite(req transport.Message) (transport.Message, *Txn, error) {
	d := dec{b: req.Body}
	var txn Txn
	switch req.Op {
	case OpCreate:
		txn = Txn{
			Kind:       TxnCreate,
			Path:       d.str(),
			Data:       d.bytes(),
			Ephemeral:  d.bool(),
			Sequential: d.bool(),
			Session:    d.u64(),
		}
	case OpSet:
		txn = Txn{Kind: TxnSet, Path: d.str(), Data: d.bytes(), Version: d.i64()}
	case OpDelete:
		txn = Txn{Kind: TxnDelete, Path: d.str(), Version: d.i64()}
	case OpStart:
		txn = Txn{Kind: TxnStartSession, SessionTimeoutMs: d.u32()}
		s.mu.Lock()
		s.sessSeq++
		txn.Session = s.epoch<<24 | s.sessSeq
		s.mu.Unlock()
	case OpEnd:
		txn = Txn{Kind: TxnEndSession, Session: d.u64()}
	default:
		return transport.Message{}, nil, fmt.Errorf("coord: bad write op %d", req.Op)
	}
	if d.err != nil {
		return transport.Message{}, nil, d.err
	}
	// Ephemeral creates require a live session.
	if txn.Kind == TxnCreate && txn.Ephemeral {
		s.mu.Lock()
		_, ok := s.sessions[txn.Session]
		s.mu.Unlock()
		if !ok {
			return errorReply(req.Op, ErrSessionExpired), nil, nil
		}
	}
	res, err := s.propose(&txn)
	if err != nil {
		return errorReply(req.Op, err), nil, nil
	}
	if res.err != nil {
		// The txn committed (deterministically failing); forwarders still
		// apply it to stay in sequence.
		return errorReply(req.Op, res.err), &txn, nil
	}
	var e enc
	e.u16(stOK)
	e.str("")
	switch req.Op {
	case OpCreate:
		e.str(res.path)
		encodeStat(&e, res.stat)
	case OpSet:
		encodeStat(&e, res.stat)
	case OpStart:
		e.u64(txn.Session)
	}
	return transport.Message{Op: req.Op, Body: e.b}, &txn, nil
}

func errorReply(op uint16, err error) transport.Message {
	st, detail := errStatus(err)
	var e enc
	e.u16(st)
	e.str(detail)
	return transport.Message{Op: op, Body: e.b}
}

// --- client read path (served locally) ---

func (s *Server) handleGet(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	path := d.str()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	data, stat, err := s.tree.Get(path)
	zxid := s.zxid
	s.mu.Unlock()
	if err != nil {
		return errorReply(OpGet, err), nil
	}
	var e enc
	e.u16(stOK)
	e.str("")
	e.bytes(data)
	encodeStat(&e, stat)
	e.u64(zxid)
	return transport.Message{Op: OpGet, Body: e.b}, nil
}

func (s *Server) handleChildren(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	path := d.str()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	kids, err := s.tree.Children(path)
	zxid := s.zxid
	s.mu.Unlock()
	if err != nil {
		return errorReply(OpChildr, err), nil
	}
	var e enc
	e.u16(stOK)
	e.str("")
	e.u32(uint32(len(kids)))
	for _, k := range kids {
		e.str(k)
	}
	e.u64(zxid)
	return transport.Message{Op: OpChildr, Body: e.b}, nil
}

func (s *Server) handleExists(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	path := d.str()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	stat, ok := s.tree.Exists(path)
	zxid := s.zxid
	s.mu.Unlock()
	var e enc
	e.u16(stOK)
	e.str("")
	e.bool(ok)
	encodeStat(&e, stat)
	e.u64(zxid)
	return transport.Message{Op: OpExists, Body: e.b}, nil
}

func (s *Server) handleStatus(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	s.mu.Lock()
	epoch, leader, zxid := s.epoch, s.leader, s.zxid
	s.mu.Unlock()
	var e enc
	e.u16(stOK)
	e.str("")
	e.u64(epoch)
	e.u32(uint32(int32(leader)))
	e.u64(zxid)
	return transport.Message{Op: OpStatus, Body: e.b}, nil
}

// handlePing keeps a session alive; non-leaders relay to the leader, which
// owns liveness soft-state.
func (s *Server) handlePing(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	session := d.u64()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	leader := s.leader
	s.mu.Unlock()
	if leader != s.cfg.ID {
		if leader < 0 {
			return errorReply(OpPing, ErrNoQuorum), nil
		}
		fctx, cancel := context.WithTimeout(ctx, 2*s.cfg.RPCTimeout)
		defer cancel()
		resp, err := s.cfg.Transport.Call(fctx, s.cfg.Members[leader], req)
		if err != nil {
			return errorReply(OpPing, ErrNotLeader), nil
		}
		return resp, nil
	}
	s.mu.Lock()
	_, ok := s.sessions[session]
	if ok {
		s.lastPing[session] = time.Now()
	}
	s.mu.Unlock()
	s.nPings.Inc()
	if !ok {
		return errorReply(OpPing, ErrSessionExpired), nil
	}
	var e enc
	e.u16(stOK)
	e.str("")
	return transport.Message{Op: OpPing, Body: e.b}, nil
}

// handleAwait implements the long-poll watch: it returns once any txn newer
// than sinceZxid touches path, or when the caller's deadline expires (the
// response then reports the unchanged zxid).
func (s *Server) handleAwait(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	path := d.str()
	since := d.u64()
	waitMs := d.u32()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	last := s.touch[path]
	var ch chan struct{}
	if last <= since && waitMs > 0 {
		ch = make(chan struct{})
		s.waiters[path] = append(s.waiters[path], ch)
	}
	s.mu.Unlock()

	changed := last > since
	if ch != nil {
		timer := time.NewTimer(time.Duration(waitMs) * time.Millisecond)
		select {
		case <-ch:
			changed = true
		case <-timer.C:
		case <-ctx.Done():
		case <-s.stopCh:
		}
		timer.Stop()
	}
	s.mu.Lock()
	last = s.touch[path]
	s.mu.Unlock()
	if changed || last > since {
		s.nWatchDelivered.Inc()
	}
	var e enc
	e.u16(stOK)
	e.str("")
	e.bool(changed || last > since)
	e.u64(last)
	return transport.Message{Op: OpAwait, Body: e.b}, nil
}

// handleChanges returns the paths modified since the given zxid, the feed
// behind Sedna's lease cache: "whenever updates in ZooKeeper, it will be
// recorded ... as Sedna only refreshes modified data" (§III-E).
func (s *Server) handleChanges(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	since := d.u64()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if since < s.changesFloorLocked() {
		return errorReply(OpChange, ErrResync), nil
	}
	seen := map[string]bool{}
	var paths []string
	for _, c := range s.changes {
		if c.zxid > since && !seen[c.path] {
			seen[c.path] = true
			paths = append(paths, c.path)
		}
	}
	var e enc
	e.u16(stOK)
	e.str("")
	e.u64(s.zxid)
	e.u32(uint32(len(paths)))
	for _, p := range paths {
		e.str(p)
	}
	return transport.Message{Op: OpChange, Body: e.b}, nil
}
