package coord

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"sedna/internal/obs"
	"sedna/internal/transport"
)

// ServerConfig parameterises one ensemble member.
type ServerConfig struct {
	// ID is this member's index into Members.
	ID int
	// Members lists the transport addresses of the whole ensemble, in a
	// fixed order shared by every member. Sedna runs a small, static
	// coordination sub-cluster (§III-A), so membership does not change at
	// runtime.
	Members []string
	// Transport carries both client and ensemble traffic.
	Transport transport.Transport
	// HeartbeatEvery is the leader's heartbeat period; zero selects 50ms.
	HeartbeatEvery time.Duration
	// ElectionTimeout is how long a follower tolerates heartbeat silence
	// before electing; zero selects 250ms.
	ElectionTimeout time.Duration
	// RPCTimeout bounds intra-ensemble calls; zero selects 150ms.
	RPCTimeout time.Duration
	// ChangeLogSize bounds the in-memory change ring consumed by lease
	// caches; zero selects 8192.
	ChangeLogSize int
	// Obs receives the member's metrics; nil creates a private registry so
	// the OpObsStats admin path always has something to serve.
	Obs *obs.Registry
	// Logf receives diagnostic messages; nil disables logging.
	Logf func(format string, args ...any)
}

type changeEntry struct {
	zxid uint64
	path string
}

// Server is one member of the coordination ensemble.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	tree     *Tree
	sessions map[uint64]uint32 // session id -> timeout ms (replicated)
	lastPing map[uint64]time.Time
	zxid     uint64 // last applied
	epoch    uint64
	leader   int // index into Members, -1 when unknown
	lastHB   time.Time
	sessSeq  uint64

	changes      []changeEntry
	changesFloor uint64
	touch        map[string]uint64
	waiters      map[string][]chan struct{}
	closed       bool
	stopCh       chan struct{}
	done         sync.WaitGroup
	proposMu     sync.Mutex // serialises leader proposals

	obs             *obs.Registry
	nPings          *obs.Counter
	nSessionExpired *obs.Counter
	nWatchDelivered *obs.Counter
	nProposals      *obs.Counter
	nElections      *obs.Counter
}

// NewServer constructs a member; call Start to begin serving.
func NewServer(cfg ServerConfig) *Server {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 50 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 250 * time.Millisecond
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 150 * time.Millisecond
	}
	if cfg.ChangeLogSize <= 0 {
		cfg.ChangeLogSize = 8192
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.ID >= 0 && cfg.ID < len(cfg.Members) {
		cfg.Obs.SetNode(cfg.Members[cfg.ID])
	}
	return &Server{
		cfg:      cfg,
		tree:     NewTree(),
		sessions: map[uint64]uint32{},
		lastPing: map[uint64]time.Time{},
		leader:   -1,
		touch:    map[string]uint64{},
		waiters:  map[string][]chan struct{}{},
		stopCh:   make(chan struct{}),

		obs:             cfg.Obs,
		nPings:          cfg.Obs.Counter("coord.session.pings"),
		nSessionExpired: cfg.Obs.Counter("coord.session.expired"),
		nWatchDelivered: cfg.Obs.Counter("coord.watch.delivered"),
		nProposals:      cfg.Obs.Counter("coord.proposals"),
		nElections:      cfg.Obs.Counter("coord.elections"),
	}
}

// Obs returns the member's metric registry.
func (s *Server) Obs() *obs.Registry { return s.obs }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("coord[%d]: "+format, append([]any{s.cfg.ID}, args...)...)
	}
}

// Start registers the RPC handlers and launches the background loops.
func (s *Server) Start() error {
	mux := transport.NewMux()
	for op, h := range map[uint16]transport.Handler{
		OpCreate:    s.handleClientWrite,
		OpSet:       s.handleClientWrite,
		OpDelete:    s.handleClientWrite,
		OpStart:     s.handleClientWrite,
		OpEnd:       s.handleClientWrite,
		OpGet:       s.handleGet,
		OpChildr:    s.handleChildren,
		OpExists:    s.handleExists,
		OpPing:      s.handlePing,
		OpAwait:     s.handleAwait,
		OpChange:    s.handleChanges,
		OpStatus:    s.handleStatus,
		OpObsStats:  s.handleObsStats,
		OpPropose:   s.handlePropose,
		OpCommit:    s.handleCommit,
		OpSync:      s.handleSync,
		OpElect:     s.handleElect,
		OpHeartbeat: s.handleHeartbeat,
		OpForward:   s.handleForward,
	} {
		mux.HandleFunc(op, h)
	}
	if err := s.cfg.Transport.Serve(mux.Handle); err != nil {
		return err
	}
	s.done.Add(1)
	go s.tickLoop()
	return nil
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	s.done.Wait()
	s.cfg.Transport.Close()
}

// Addr returns the member's transport address.
func (s *Server) Addr() string { return s.cfg.Members[s.cfg.ID] }

// IsLeader reports whether this member currently believes it leads.
func (s *Server) IsLeader() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leader == s.cfg.ID
}

// LeaderAddr returns the current leader's address, or "" when unknown.
func (s *Server) LeaderAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leader < 0 {
		return ""
	}
	return s.cfg.Members[s.leader]
}

// Zxid returns the last applied transaction id.
func (s *Server) Zxid() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.zxid
}

func (s *Server) quorum() int { return len(s.cfg.Members)/2 + 1 }

// --- background loops ---

func (s *Server) tickLoop() {
	defer s.done.Done()
	tick := time.NewTicker(s.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		amLeader := s.leader == s.cfg.ID
		noLeader := s.leader < 0 || (!amLeader && time.Since(s.lastHB) > s.cfg.ElectionTimeout)
		s.mu.Unlock()
		switch {
		case amLeader:
			s.sendHeartbeats()
			s.expireSessions()
		case noLeader:
			s.tryElect()
		}
	}
}

func (s *Server) sendHeartbeats() {
	s.mu.Lock()
	epoch, zxid := s.epoch, s.zxid
	s.mu.Unlock()
	var e enc
	e.u64(epoch)
	e.u32(uint32(s.cfg.ID))
	e.u64(zxid)
	body := e.b
	for i, addr := range s.cfg.Members {
		if i == s.cfg.ID {
			continue
		}
		go func(addr string) {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RPCTimeout)
			defer cancel()
			s.cfg.Transport.Call(ctx, addr, transport.Message{Op: OpHeartbeat, Body: body})
		}(addr)
	}
}

func (s *Server) handleHeartbeat(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	epoch := d.u64()
	leaderID := int(d.u32())
	leaderZxid := d.u64()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	if epoch >= s.epoch {
		s.epoch = epoch
		s.leader = leaderID
		s.lastHB = time.Now()
	}
	behind := s.zxid < leaderZxid
	s.mu.Unlock()
	if behind {
		// We missed commits (e.g. rejoined after a partition); catch up.
		go s.syncFrom(s.cfg.Members[leaderID])
	}
	return transport.Message{Op: OpHeartbeat}, nil
}

// tryElect runs the "lowest reachable id wins" election. The winner bumps
// the epoch, adopts the freshest state reachable, and announces itself.
func (s *Server) tryElect() {
	// Probe every member for liveness and state.
	type probe struct {
		id    int
		epoch uint64
		zxid  uint64
		ok    bool
	}
	results := make([]probe, len(s.cfg.Members))
	var wg sync.WaitGroup
	for i, addr := range s.cfg.Members {
		if i == s.cfg.ID {
			s.mu.Lock()
			results[i] = probe{id: i, epoch: s.epoch, zxid: s.zxid, ok: true}
			s.mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RPCTimeout)
			defer cancel()
			resp, err := s.cfg.Transport.Call(ctx, addr, transport.Message{Op: OpStatus})
			if err != nil {
				return
			}
			d := dec{b: resp.Body}
			st := d.u16()
			_ = d.str()
			epoch := d.u64()
			_ = d.u32() // leader id
			zxid := d.u64()
			if d.err == nil && st == stOK {
				results[i] = probe{id: i, epoch: epoch, zxid: zxid, ok: true}
			}
		}(i, addr)
	}
	wg.Wait()

	alive := 0
	lowest := -1
	var maxEpoch, maxZxid uint64
	freshest := s.cfg.ID
	for _, p := range results {
		if !p.ok {
			continue
		}
		alive++
		if lowest == -1 {
			lowest = p.id
		}
		if p.epoch > maxEpoch {
			maxEpoch = p.epoch
		}
		if p.zxid > maxZxid {
			maxZxid = p.zxid
			freshest = p.id
		}
	}
	if alive < s.quorum() || lowest != s.cfg.ID {
		return // not our turn, or no quorum: stay leaderless
	}

	// Adopt the freshest reachable state before leading.
	if freshest != s.cfg.ID {
		if !s.syncFrom(s.cfg.Members[freshest]) {
			return
		}
	}
	s.mu.Lock()
	s.epoch = maxEpoch + 1
	s.leader = s.cfg.ID
	s.lastHB = time.Now()
	now := time.Now()
	for id := range s.sessions {
		s.lastPing[id] = now // grace period after takeover
	}
	epoch, zxid := s.epoch, s.zxid
	s.mu.Unlock()
	s.nElections.Inc()
	s.logf("elected leader epoch=%d zxid=%d", epoch, zxid)

	// Announce to everyone.
	var e enc
	e.u64(epoch)
	e.u32(uint32(s.cfg.ID))
	e.u64(zxid)
	for i, addr := range s.cfg.Members {
		if i == s.cfg.ID {
			continue
		}
		go func(addr string) {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RPCTimeout)
			defer cancel()
			s.cfg.Transport.Call(ctx, addr, transport.Message{Op: OpElect, Body: e.b})
		}(addr)
	}
}

func (s *Server) handleElect(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	d := dec{b: req.Body}
	epoch := d.u64()
	leaderID := int(d.u32())
	leaderZxid := d.u64()
	if d.err != nil {
		return transport.Message{}, d.err
	}
	s.mu.Lock()
	if epoch < s.epoch {
		s.mu.Unlock()
		var e enc
		e.u16(stStaleEpoch)
		return transport.Message{Op: OpElect, Body: e.b}, nil
	}
	s.epoch = epoch
	s.leader = leaderID
	s.lastHB = time.Now()
	behind := s.zxid < leaderZxid
	s.mu.Unlock()
	if behind {
		go s.syncFrom(s.cfg.Members[leaderID])
	}
	var e enc
	e.u16(stOK)
	return transport.Message{Op: OpElect, Body: e.b}, nil
}

// --- state sync ---

// handleSync serialises the full replicated state.
func (s *Server) handleSync(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var e enc
	e.u16(stOK)
	e.u64(s.epoch)
	e.u64(s.zxid)
	// Sessions.
	e.u32(uint32(len(s.sessions)))
	for id, to := range s.sessions {
		e.u64(id)
		e.u32(to)
	}
	e.u64(s.sessSeq)
	// Tree, pre-order so parents precede children.
	var count uint32
	countAt := len(e.b)
	e.u32(0)
	s.tree.walk(func(path string, n *znode) {
		if path == "/" {
			return
		}
		e.str(path)
		e.bytes(n.data)
		e.i64(n.stat.Version)
		e.i64(n.stat.CVersion)
		e.u64(n.stat.EphemeralOwner)
		e.u64(n.stat.Czxid)
		e.u64(n.stat.Mzxid)
		e.u64(n.seqCounter)
		count++
	})
	// Root's sequence counter travels separately.
	e.u64(s.tree.root.seqCounter)
	putU32(e.b[countAt:], count)
	return transport.Message{Op: OpSync, Body: e.b}, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// syncFrom replaces local state with addr's snapshot; reports success.
func (s *Server) syncFrom(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 4*s.cfg.RPCTimeout)
	defer cancel()
	resp, err := s.cfg.Transport.Call(ctx, addr, transport.Message{Op: OpSync})
	if err != nil {
		return false
	}
	d := dec{b: resp.Body}
	if d.u16() != stOK {
		return false
	}
	epoch := d.u64()
	zxid := d.u64()
	nSess := int(d.u32())
	sessions := make(map[uint64]uint32, nSess)
	for i := 0; i < nSess; i++ {
		id := d.u64()
		sessions[id] = d.u32()
	}
	sessSeq := d.u64()
	nNodes := int(d.u32())
	tree := NewTree()
	type nodeFix struct {
		path string
		stat Stat
		seq  uint64
	}
	fixes := make([]nodeFix, 0, nNodes)
	for i := 0; i < nNodes; i++ {
		path := d.str()
		data := d.bytes()
		st := Stat{
			Version:        d.i64(),
			CVersion:       d.i64(),
			EphemeralOwner: d.u64(),
			Czxid:          d.u64(),
			Mzxid:          d.u64(),
		}
		seq := d.u64()
		if d.err != nil {
			return false
		}
		if _, err := tree.Create(path, data, st.EphemeralOwner != 0, false, st.EphemeralOwner, st.Czxid); err != nil {
			return false
		}
		fixes = append(fixes, nodeFix{path: path, stat: st, seq: seq})
	}
	rootSeq := d.u64()
	if d.err != nil {
		return false
	}
	// Restore exact stats and sequence counters.
	for _, f := range fixes {
		n := tree.lookup(f.path)
		n.stat.Version = f.stat.Version
		n.stat.CVersion = f.stat.CVersion
		n.stat.Mzxid = f.stat.Mzxid
		n.seqCounter = f.seq
	}
	tree.root.seqCounter = rootSeq

	s.mu.Lock()
	defer s.mu.Unlock()
	if zxid < s.zxid {
		return true // we advanced past the snapshot meanwhile
	}
	s.tree = tree
	s.sessions = sessions
	s.sessSeq = sessSeq
	s.zxid = zxid
	if epoch > s.epoch {
		s.epoch = epoch
	}
	now := time.Now()
	for id := range sessions {
		s.lastPing[id] = now
	}
	s.logf("synced from %s zxid=%d", addr, zxid)
	return true
}

// --- session expiry (leader only) ---

func (s *Server) expireSessions() {
	s.mu.Lock()
	var expired []uint64
	now := time.Now()
	for id, toMs := range s.sessions {
		last, ok := s.lastPing[id]
		if !ok {
			s.lastPing[id] = now
			continue
		}
		if now.Sub(last) > time.Duration(toMs)*time.Millisecond {
			expired = append(expired, id)
		}
	}
	s.mu.Unlock()
	for _, id := range expired {
		s.logf("expiring session %d", id)
		s.nSessionExpired.Inc()
		s.propose(&Txn{Kind: TxnExpireSession, Session: id})
	}
}

// handleObsStats serves the member's obs.Report over the admin path (the
// same shape the data nodes and the ops-plane /statsz endpoint serve). The
// soft-state gauges (sessions, znodes, leadership) are published right
// before the snapshot so they are always current.
func (s *Server) handleObsStats(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	s.mu.Lock()
	s.obs.Gauge("coord.sessions").Set(int64(len(s.sessions)))
	s.obs.Gauge("coord.zxid").Set(int64(s.zxid))
	s.obs.Gauge("coord.epoch").Set(int64(s.epoch))
	isLeader := int64(0)
	if s.leader == s.cfg.ID {
		isLeader = 1
	}
	s.obs.Gauge("coord.is_leader").Set(isLeader)
	s.obs.Gauge("coord.changelog_len").Set(int64(len(s.changes)))
	s.mu.Unlock()
	var e enc
	e.u16(stOK)
	e.str("")
	blob, err := json.Marshal(s.obs.Report())
	if err != nil {
		blob = []byte("{}")
	}
	e.bytes(blob)
	return transport.Message{Op: OpObsStats, Body: e.b}, nil
}
