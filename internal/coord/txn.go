package coord

import "fmt"

// TxnKind enumerates the replicated operations. Everything that mutates the
// ensemble's state — tree writes and session lifecycle — is a Txn committed
// through the leader's quorum protocol, so every member applies the same
// deterministic sequence.
type TxnKind uint8

const (
	TxnCreate TxnKind = iota + 1
	TxnSet
	TxnDelete
	TxnStartSession
	TxnEndSession
	TxnExpireSession
)

// Txn is one replicated mutation.
type Txn struct {
	Zxid  uint64
	Epoch uint64
	Kind  TxnKind
	// Path, Data, Version parameterise tree operations.
	Path    string
	Data    []byte
	Version int64
	// Ephemeral and Sequential apply to TxnCreate.
	Ephemeral  bool
	Sequential bool
	// Session identifies the issuing or affected session.
	Session uint64
	// SessionTimeoutMs carries the timeout for TxnStartSession.
	SessionTimeoutMs uint32
}

func encodeTxn(e *enc, t *Txn) {
	e.u64(t.Zxid)
	e.u64(t.Epoch)
	e.u8(byte(t.Kind))
	e.str(t.Path)
	e.bytes(t.Data)
	e.i64(t.Version)
	e.bool(t.Ephemeral)
	e.bool(t.Sequential)
	e.u64(t.Session)
	e.u32(t.SessionTimeoutMs)
}

func decodeTxn(d *dec) Txn {
	return Txn{
		Zxid:             d.u64(),
		Epoch:            d.u64(),
		Kind:             TxnKind(d.u8()),
		Path:             d.str(),
		Data:             d.bytes(),
		Version:          d.i64(),
		Ephemeral:        d.bool(),
		Sequential:       d.bool(),
		Session:          d.u64(),
		SessionTimeoutMs: d.u32(),
	}
}

// txnResult is what applying a txn yields: the effective path (sequential
// creates rename), the new stat, and the per-txn error (which is itself
// deterministic and replicated — a failed create fails identically on every
// member).
type txnResult struct {
	path string
	stat Stat
	err  error
}

// applyTxn mutates the tree and session table. It must be deterministic:
// every member applies the identical sequence and reaches identical state.
// touched returns the set of paths whose watchers should fire.
func applyTxn(tree *Tree, sessions map[uint64]uint32, t *Txn) (res txnResult, touched []string) {
	switch t.Kind {
	case TxnCreate:
		path, err := tree.Create(t.Path, t.Data, t.Ephemeral, t.Sequential, t.Session, t.Zxid)
		if err != nil {
			return txnResult{err: err}, nil
		}
		st, _ := tree.Exists(path)
		return txnResult{path: path, stat: st}, []string{path, parentPath(path)}
	case TxnSet:
		st, err := tree.Set(t.Path, t.Data, t.Version, t.Zxid)
		if err != nil {
			return txnResult{err: err}, nil
		}
		return txnResult{path: t.Path, stat: st}, []string{t.Path}
	case TxnDelete:
		if err := tree.Delete(t.Path, t.Version); err != nil {
			return txnResult{err: err}, nil
		}
		return txnResult{path: t.Path}, []string{t.Path, parentPath(t.Path)}
	case TxnStartSession:
		sessions[t.Session] = t.SessionTimeoutMs
		return txnResult{}, nil
	case TxnEndSession, TxnExpireSession:
		paths := tree.EphemeralsOf(t.Session)
		// Deepest first so parents empty out before deletion.
		for i := len(paths) - 1; i >= 0; i-- {
			if err := tree.Delete(paths[i], -1); err == nil {
				touched = append(touched, paths[i], parentPath(paths[i]))
			}
		}
		delete(sessions, t.Session)
		return txnResult{}, touched
	default:
		return txnResult{err: fmt.Errorf("coord: unknown txn kind %d", t.Kind)}, nil
	}
}
