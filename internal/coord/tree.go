// Package coord implements Sedna's coordination service: a from-scratch
// ZooKeeper-like ensemble (§III-A, §III-E). Sedna keeps its cluster-wide
// consistent state — the virtual-node assignment, real-node liveness, the
// imbalance table — in a small sub-cluster of coordination servers so that
// the data path never routes through a single master. The package provides:
//
//   - a hierarchical znode tree with versions, ephemeral and sequential
//     nodes (tree.go);
//   - a replicated ensemble: leader-based quorum commit of every write,
//     local reads, heartbeat-driven re-election (server.go);
//   - client sessions with timeouts; ephemerals die with their session
//     (sessions are part of the replicated state);
//   - one-shot watches, served by the member a client is connected to;
//   - a change log ("Changes since zxid") that Sedna's lease cache uses to
//     refresh only modified data, the paper's third read-scaling strategy
//     (§III-E);
//   - a client with failover and an adaptive-lease read cache (client.go,
//     cache.go).
package coord

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Tree errors, mirroring the ZooKeeper error model.
var (
	// ErrNoNode reports an operation on a path that does not exist.
	ErrNoNode = errors.New("coord: no node")
	// ErrNodeExists reports Create on an existing path.
	ErrNodeExists = errors.New("coord: node exists")
	// ErrBadVersion reports a Set/Delete whose expected version is stale.
	ErrBadVersion = errors.New("coord: bad version")
	// ErrNotEmpty reports Delete on a node with children.
	ErrNotEmpty = errors.New("coord: node has children")
	// ErrNoParent reports Create under a missing parent.
	ErrNoParent = errors.New("coord: no parent")
	// ErrBadPath reports a malformed path.
	ErrBadPath = errors.New("coord: bad path")
	// ErrEphemeralChildren reports Create under an ephemeral node.
	ErrEphemeralChildren = errors.New("coord: ephemerals cannot have children")
)

// Stat describes one znode, the metadata returned alongside reads.
type Stat struct {
	// Version counts data changes.
	Version int64
	// CVersion counts child list changes.
	CVersion int64
	// EphemeralOwner is the owning session for ephemeral nodes, 0
	// otherwise.
	EphemeralOwner uint64
	// Czxid and Mzxid are the transaction ids of creation and last
	// modification.
	Czxid uint64
	Mzxid uint64
	// NumChildren is the current child count.
	NumChildren int
}

type znode struct {
	data     []byte
	stat     Stat
	children map[string]*znode
	// seqCounter feeds sequential child names.
	seqCounter uint64
}

// Tree is the in-memory znode store replicated by the ensemble. It is not
// itself goroutine-safe: the owning server serialises access (reads take the
// server lock, writes are applied in zxid order).
type Tree struct {
	root *znode
	// ephemeral indexes ephemeral paths by owning session for O(1)
	// session expiry.
	ephemeral map[uint64]map[string]bool
}

// NewTree returns a tree holding only the root node "/".
func NewTree() *Tree {
	return &Tree{
		root:      &znode{children: map[string]*znode{}},
		ephemeral: map[uint64]map[string]bool{},
	}
}

// ValidatePath checks the syntax Sedna uses: absolute, no empty or dot
// segments, no trailing slash (except the root itself).
func ValidatePath(path string) error {
	if path == "/" {
		return nil
	}
	if path == "" || path[0] != '/' || strings.HasSuffix(path, "/") {
		return fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	for _, seg := range strings.Split(path[1:], "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return nil
}

func splitPath(path string) []string {
	if path == "/" {
		return nil
	}
	return strings.Split(path[1:], "/")
}

func (t *Tree) lookup(path string) *znode {
	n := t.root
	for _, seg := range splitPath(path) {
		n = n.children[seg]
		if n == nil {
			return nil
		}
	}
	return n
}

func parentPath(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// Create inserts a node. For sequential nodes the final path has a
// 10-digit counter appended; the actual path is returned. zxid stamps the
// creation; session owns the node when ephemeral.
func (t *Tree) Create(path string, data []byte, ephemeral bool, sequential bool, session uint64, zxid uint64) (string, error) {
	if err := ValidatePath(path); err != nil {
		return "", err
	}
	if path == "/" {
		return "", ErrNodeExists
	}
	parent := t.lookup(parentPath(path))
	if parent == nil {
		return "", fmt.Errorf("%w: %s", ErrNoParent, parentPath(path))
	}
	if parent.stat.EphemeralOwner != 0 {
		return "", ErrEphemeralChildren
	}
	name := path[strings.LastIndexByte(path, '/')+1:]
	if sequential {
		name = fmt.Sprintf("%s%010d", name, parent.seqCounter)
		parent.seqCounter++
		path = parentPath(path) + "/" + name
		if parentPath(path) == "/" {
			path = "/" + name
		}
	}
	if _, ok := parent.children[name]; ok {
		return "", fmt.Errorf("%w: %s", ErrNodeExists, path)
	}
	n := &znode{
		data:     append([]byte(nil), data...),
		children: map[string]*znode{},
		stat:     Stat{Czxid: zxid, Mzxid: zxid},
	}
	if ephemeral {
		n.stat.EphemeralOwner = session
		set := t.ephemeral[session]
		if set == nil {
			set = map[string]bool{}
			t.ephemeral[session] = set
		}
		set[path] = true
	}
	parent.children[name] = n
	parent.stat.CVersion++
	parent.stat.NumChildren = len(parent.children)
	return path, nil
}

// Get returns a copy of the node's data and its stat.
func (t *Tree) Get(path string) ([]byte, Stat, error) {
	if err := ValidatePath(path); err != nil {
		return nil, Stat{}, err
	}
	n := t.lookup(path)
	if n == nil {
		return nil, Stat{}, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	return append([]byte(nil), n.data...), n.stat, nil
}

// Exists reports whether path exists, returning its stat when it does.
func (t *Tree) Exists(path string) (Stat, bool) {
	if ValidatePath(path) != nil {
		return Stat{}, false
	}
	n := t.lookup(path)
	if n == nil {
		return Stat{}, false
	}
	return n.stat, true
}

// Set replaces the node's data. version must match the current version, or
// be -1 to bypass the check (ZooKeeper semantics).
func (t *Tree) Set(path string, data []byte, version int64, zxid uint64) (Stat, error) {
	if err := ValidatePath(path); err != nil {
		return Stat{}, err
	}
	n := t.lookup(path)
	if n == nil {
		return Stat{}, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if version != -1 && version != n.stat.Version {
		return Stat{}, fmt.Errorf("%w: have %d, want %d", ErrBadVersion, n.stat.Version, version)
	}
	n.data = append([]byte(nil), data...)
	n.stat.Version++
	n.stat.Mzxid = zxid
	return n.stat, nil
}

// Delete removes a leaf node, honouring the version check like Set.
func (t *Tree) Delete(path string, version int64) error {
	if err := ValidatePath(path); err != nil {
		return err
	}
	if path == "/" {
		return ErrBadPath
	}
	n := t.lookup(path)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if version != -1 && version != n.stat.Version {
		return fmt.Errorf("%w: have %d, want %d", ErrBadVersion, n.stat.Version, version)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	parent := t.lookup(parentPath(path))
	name := path[strings.LastIndexByte(path, '/')+1:]
	delete(parent.children, name)
	parent.stat.CVersion++
	parent.stat.NumChildren = len(parent.children)
	if owner := n.stat.EphemeralOwner; owner != 0 {
		if set := t.ephemeral[owner]; set != nil {
			delete(set, path)
			if len(set) == 0 {
				delete(t.ephemeral, owner)
			}
		}
	}
	return nil
}

// Children returns the sorted child names of path.
func (t *Tree) Children(path string) ([]string, error) {
	if err := ValidatePath(path); err != nil {
		return nil, err
	}
	n := t.lookup(path)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// EphemeralsOf returns the paths owned by a session, sorted; used when the
// session expires.
func (t *Tree) EphemeralsOf(session uint64) []string {
	set := t.ephemeral[session]
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// walk visits every node pre-order with its full path.
func (t *Tree) walk(fn func(path string, n *znode)) {
	var rec func(prefix string, n *znode)
	rec = func(prefix string, n *znode) {
		fn(prefix, n)
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			childPath := prefix + "/" + name
			if prefix == "/" {
				childPath = "/" + name
			}
			rec(childPath, n.children[name])
		}
	}
	rec("/", t.root)
}
