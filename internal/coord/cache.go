package coord

import (
	"errors"
	"sync"
	"time"

	"sedna/internal/obs"
)

// CacheConfig parameterises the adaptive lease cache.
type CacheConfig struct {
	// InitialLease is the starting refresh period; zero selects 200ms.
	InitialLease time.Duration
	// MinLease and MaxLease clamp the adaptation; zero selects 25ms and
	// 5s.
	MinLease time.Duration
	MaxLease time.Duration
	// ManyThreshold is how many changed paths in one lease period count
	// as "lots of changes" and halve the lease; zero selects 4.
	ManyThreshold int
	// Now is injectable time for tests; nil selects the real clock.
	Now func() time.Time
	// Obs receives coord.cache.* counters and the lease gauge; nil
	// disables.
	Obs *obs.Registry
}

// CacheStats counts cache behaviour, consumed by the ZooKeeper-bottleneck
// experiment (E5).
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Refreshes uint64
	Resyncs   uint64
	// Invalidated counts entries dropped by the change feed.
	Invalidated uint64
}

// CachedClient implements the paper's three strategies for keeping the
// coordination service off the read path (§III-E): (1) a local cache
// serving reads; (2) a lease that halves when the last period saw many
// changes and doubles when it saw none; (3) refresh via the change log, so
// only modified znodes are refetched. It deliberately does NOT use watches:
// "if there are many nodes watching the same znode, any change will result
// in an uncontrollable network storm".
type CachedClient struct {
	c   *Client
	cfg CacheConfig

	mu       sync.Mutex
	data     map[string]cacheEntry
	children map[string]childEntry
	cursor   uint64
	lease    time.Duration
	nextRef  time.Time
	stats    CacheStats

	nHits, nMisses, nRefreshes *obs.Counter
	nResyncs, nInvalidated     *obs.Counter
	gLease                     *obs.Gauge
}

type cacheEntry struct {
	data   []byte
	stat   Stat
	exists bool
}

type childEntry struct {
	names []string
}

// NewCachedClient wraps an existing client. The cursor starts at the
// serving member's current zxid.
func NewCachedClient(c *Client, cfg CacheConfig) (*CachedClient, error) {
	if cfg.InitialLease <= 0 {
		cfg.InitialLease = 200 * time.Millisecond
	}
	if cfg.MinLease <= 0 {
		cfg.MinLease = 25 * time.Millisecond
	}
	if cfg.MaxLease <= 0 {
		cfg.MaxLease = 5 * time.Second
	}
	if cfg.ManyThreshold <= 0 {
		cfg.ManyThreshold = 4
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	cursor, err := c.Cursor()
	if err != nil {
		return nil, err
	}
	return &CachedClient{
		c:        c,
		cfg:      cfg,
		data:     map[string]cacheEntry{},
		children: map[string]childEntry{},
		cursor:   cursor,
		lease:    cfg.InitialLease,
		nextRef:  cfg.Now().Add(cfg.InitialLease),

		nHits:        cfg.Obs.Counter("coord.cache.hits"),
		nMisses:      cfg.Obs.Counter("coord.cache.misses"),
		nRefreshes:   cfg.Obs.Counter("coord.cache.refreshes"),
		nResyncs:     cfg.Obs.Counter("coord.cache.resyncs"),
		nInvalidated: cfg.Obs.Counter("coord.cache.invalidated"),
		gLease:       cfg.Obs.Gauge("coord.cache.lease_ns"),
	}, nil
}

// Lease returns the current adaptive lease period.
func (cc *CachedClient) Lease() time.Duration {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.lease
}

// Stats returns a snapshot of the counters.
func (cc *CachedClient) Stats() CacheStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.stats
}

// maybeRefreshLocked consumes the change feed when the lease has elapsed,
// invalidating modified paths and adapting the lease.
func (cc *CachedClient) maybeRefreshLocked() {
	now := cc.cfg.Now()
	if now.Before(cc.nextRef) {
		return
	}
	cc.stats.Refreshes++
	cc.nRefreshes.Inc()
	cursor, paths, err := cc.c.Changes(cc.cursor)
	if errors.Is(err, ErrResync) {
		// Window exceeded: drop everything and restart the cursor.
		cc.stats.Resyncs++
		cc.nResyncs.Inc()
		cc.data = map[string]cacheEntry{}
		cc.children = map[string]childEntry{}
		if cur, cerr := cc.c.Cursor(); cerr == nil {
			cc.cursor = cur
		}
		cc.lease = cc.cfg.InitialLease
		cc.nextRef = now.Add(cc.lease)
		return
	}
	if err != nil {
		// Keep serving cached data; retry after a minimal lease.
		cc.nextRef = now.Add(cc.cfg.MinLease)
		return
	}
	for _, p := range paths {
		if _, ok := cc.data[p]; ok {
			delete(cc.data, p)
			cc.stats.Invalidated++
			cc.nInvalidated.Inc()
		}
		if _, ok := cc.children[p]; ok {
			delete(cc.children, p)
			cc.stats.Invalidated++
			cc.nInvalidated.Inc()
		}
	}
	cc.cursor = cursor
	// Adapt the lease: halve under churn, double when quiet (§III-E).
	switch {
	case len(paths) >= cc.cfg.ManyThreshold:
		cc.lease /= 2
		if cc.lease < cc.cfg.MinLease {
			cc.lease = cc.cfg.MinLease
		}
	case len(paths) == 0:
		cc.lease *= 2
		if cc.lease > cc.cfg.MaxLease {
			cc.lease = cc.cfg.MaxLease
		}
	}
	cc.nextRef = now.Add(cc.lease)
	cc.gLease.Set(int64(cc.lease))
}

// Get serves path from the cache, fetching on miss. Missing znodes are
// negatively cached until invalidated.
func (cc *CachedClient) Get(path string) ([]byte, Stat, error) {
	cc.mu.Lock()
	cc.maybeRefreshLocked()
	if e, ok := cc.data[path]; ok {
		cc.stats.Hits++
		cc.mu.Unlock()
		cc.nHits.Inc()
		if !e.exists {
			return nil, Stat{}, ErrNoNode
		}
		return e.data, e.stat, nil
	}
	cc.stats.Misses++
	cc.mu.Unlock()
	cc.nMisses.Inc()

	data, stat, err := cc.c.Get(path)
	switch {
	case err == nil:
		cc.mu.Lock()
		cc.data[path] = cacheEntry{data: data, stat: stat, exists: true}
		cc.mu.Unlock()
		return data, stat, nil
	case errors.Is(err, ErrNoNode):
		cc.mu.Lock()
		cc.data[path] = cacheEntry{}
		cc.mu.Unlock()
		return nil, Stat{}, err
	default:
		return nil, Stat{}, err
	}
}

// Children serves a child listing from the cache, fetching on miss.
func (cc *CachedClient) Children(path string) ([]string, error) {
	cc.mu.Lock()
	cc.maybeRefreshLocked()
	if e, ok := cc.children[path]; ok {
		cc.stats.Hits++
		cc.mu.Unlock()
		cc.nHits.Inc()
		return e.names, nil
	}
	cc.stats.Misses++
	cc.mu.Unlock()
	cc.nMisses.Inc()

	names, err := cc.c.Children(path)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	cc.children[path] = childEntry{names: names}
	cc.mu.Unlock()
	return names, nil
}

// Invalidate drops path from the cache, forcing the next Get to refetch;
// Sedna calls this when a node it routed to answers "reject" or times out,
// the paper's cache-invalid signal (§III-E).
func (cc *CachedClient) Invalidate(path string) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	delete(cc.data, path)
	delete(cc.children, path)
}

// ForceRefresh runs the change-feed refresh immediately, regardless of the
// lease; tests and recovery paths use it.
func (cc *CachedClient) ForceRefresh() {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.nextRef = cc.cfg.Now()
	cc.maybeRefreshLocked()
}
