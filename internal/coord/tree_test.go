package coord

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestTreeCreateGet(t *testing.T) {
	tr := NewTree()
	path, err := tr.Create("/a", []byte("x"), false, false, 0, 1)
	if err != nil || path != "/a" {
		t.Fatalf("create = %q, %v", path, err)
	}
	data, stat, err := tr.Get("/a")
	if err != nil || string(data) != "x" {
		t.Fatalf("get = %q, %v", data, err)
	}
	if stat.Czxid != 1 || stat.Mzxid != 1 || stat.Version != 0 {
		t.Fatalf("stat = %+v", stat)
	}
}

func TestTreeCreateNested(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Create("/a/b", nil, false, false, 0, 1); !errors.Is(err, ErrNoParent) {
		t.Fatalf("create without parent = %v", err)
	}
	tr.Create("/a", nil, false, false, 0, 1)
	if _, err := tr.Create("/a/b", nil, false, false, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create("/a", nil, false, false, 0, 3); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate create = %v", err)
	}
	kids, err := tr.Children("/a")
	if err != nil || len(kids) != 1 || kids[0] != "b" {
		t.Fatalf("children = %v, %v", kids, err)
	}
}

func TestTreeBadPaths(t *testing.T) {
	tr := NewTree()
	for _, p := range []string{"", "a", "/a/", "//", "/a//b", "/a/./b", "/../x"} {
		if _, err := tr.Create(p, nil, false, false, 0, 1); !errors.Is(err, ErrBadPath) {
			t.Errorf("Create(%q) = %v, want ErrBadPath", p, err)
		}
	}
	if err := ValidatePath("/"); err != nil {
		t.Error("root path rejected")
	}
}

func TestTreeSetVersioning(t *testing.T) {
	tr := NewTree()
	tr.Create("/a", []byte("v0"), false, false, 0, 1)
	stat, err := tr.Set("/a", []byte("v1"), 0, 2)
	if err != nil || stat.Version != 1 {
		t.Fatalf("set = %+v, %v", stat, err)
	}
	if _, err := tr.Set("/a", []byte("v2"), 0, 3); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale set = %v", err)
	}
	if _, err := tr.Set("/a", []byte("v2"), -1, 3); err != nil {
		t.Fatalf("unversioned set = %v", err)
	}
	if _, err := tr.Set("/missing", nil, -1, 4); !errors.Is(err, ErrNoNode) {
		t.Fatalf("set missing = %v", err)
	}
}

func TestTreeDelete(t *testing.T) {
	tr := NewTree()
	tr.Create("/a", nil, false, false, 0, 1)
	tr.Create("/a/b", nil, false, false, 0, 2)
	if err := tr.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty = %v", err)
	}
	if err := tr.Delete("/a/b", 5); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("delete bad version = %v", err)
	}
	if err := tr.Delete("/a/b", 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete("/a", -1); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Exists("/a"); ok {
		t.Fatal("deleted node exists")
	}
	if err := tr.Delete("/a", -1); !errors.Is(err, ErrNoNode) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestTreeSequentialNodes(t *testing.T) {
	tr := NewTree()
	tr.Create("/q", nil, false, false, 0, 1)
	var paths []string
	for i := 0; i < 3; i++ {
		p, err := tr.Create("/q/item-", nil, false, true, 0, uint64(i+2))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	want := []string{"/q/item-0000000000", "/q/item-0000000001", "/q/item-0000000002"}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("sequential paths = %v", paths)
		}
	}
	// Counter survives deletion of earlier members.
	tr.Delete(paths[0], -1)
	p, _ := tr.Create("/q/item-", nil, false, true, 0, 9)
	if p != "/q/item-0000000003" {
		t.Fatalf("counter reused: %s", p)
	}
}

func TestTreeSequentialAtRoot(t *testing.T) {
	tr := NewTree()
	p, err := tr.Create("/seq-", nil, false, true, 0, 1)
	if err != nil || p != "/seq-0000000000" {
		t.Fatalf("root sequential = %q, %v", p, err)
	}
	if _, _, err := tr.Get(p); err != nil {
		t.Fatal(err)
	}
}

func TestTreeEphemerals(t *testing.T) {
	tr := NewTree()
	tr.Create("/live", nil, false, false, 0, 1)
	tr.Create("/live/a", []byte("1"), true, false, 77, 2)
	tr.Create("/live/b", []byte("2"), true, false, 77, 3)
	tr.Create("/live/c", []byte("3"), true, false, 88, 4)

	if _, err := tr.Create("/live/a/child", nil, false, false, 0, 5); !errors.Is(err, ErrEphemeralChildren) {
		t.Fatalf("child of ephemeral = %v", err)
	}
	got := tr.EphemeralsOf(77)
	if len(got) != 2 || got[0] != "/live/a" || got[1] != "/live/b" {
		t.Fatalf("ephemerals of 77 = %v", got)
	}
	// Deleting one keeps the index consistent.
	tr.Delete("/live/a", -1)
	if got := tr.EphemeralsOf(77); len(got) != 1 || got[0] != "/live/b" {
		t.Fatalf("after delete = %v", got)
	}
	stat, ok := tr.Exists("/live/c")
	if !ok || stat.EphemeralOwner != 88 {
		t.Fatalf("stat = %+v", stat)
	}
}

func TestTreeCVersionAndChildCount(t *testing.T) {
	tr := NewTree()
	tr.Create("/p", nil, false, false, 0, 1)
	_, st, _ := tr.Get("/p")
	if st.CVersion != 0 || st.NumChildren != 0 {
		t.Fatalf("initial stat = %+v", st)
	}
	tr.Create("/p/a", nil, false, false, 0, 2)
	tr.Create("/p/b", nil, false, false, 0, 3)
	tr.Delete("/p/a", -1)
	_, st, _ = tr.Get("/p")
	if st.CVersion != 3 || st.NumChildren != 1 {
		t.Fatalf("stat after churn = %+v", st)
	}
}

func TestTreeWalkOrder(t *testing.T) {
	tr := NewTree()
	tr.Create("/b", nil, false, false, 0, 1)
	tr.Create("/a", nil, false, false, 0, 2)
	tr.Create("/a/x", nil, false, false, 0, 3)
	var paths []string
	tr.walk(func(p string, n *znode) { paths = append(paths, p) })
	want := []string{"/", "/a", "/a/x", "/b"}
	if len(paths) != len(want) {
		t.Fatalf("walk = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("walk = %v, want %v", paths, want)
		}
	}
}

func TestApplyTxnDeterministic(t *testing.T) {
	// Applying the same txn sequence to two trees yields identical walks —
	// the property the replication protocol depends on.
	txns := []Txn{
		{Zxid: 1, Kind: TxnCreate, Path: "/a"},
		{Zxid: 2, Kind: TxnStartSession, Session: 9, SessionTimeoutMs: 1000},
		{Zxid: 3, Kind: TxnCreate, Path: "/a/e", Ephemeral: true, Session: 9},
		{Zxid: 4, Kind: TxnCreate, Path: "/a/seq-", Sequential: true},
		{Zxid: 5, Kind: TxnSet, Path: "/a", Data: []byte("d"), Version: -1},
		{Zxid: 6, Kind: TxnCreate, Path: "/a", Data: nil}, // deterministic failure
		{Zxid: 7, Kind: TxnExpireSession, Session: 9},
	}
	run := func() []string {
		tree := NewTree()
		sessions := map[uint64]uint32{}
		var log []string
		for i := range txns {
			res, touched := applyTxn(tree, sessions, &txns[i])
			log = append(log, fmt.Sprintf("%v|%v|%v", res.path, res.err != nil, touched))
		}
		tree.walk(func(p string, n *znode) {
			log = append(log, fmt.Sprintf("%s=%s", p, n.data))
		})
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// The ephemeral from the expired session must be gone.
	tree := NewTree()
	sessions := map[uint64]uint32{}
	for i := range txns {
		applyTxn(tree, sessions, &txns[i])
	}
	if _, ok := tree.Exists("/a/e"); ok {
		t.Fatal("ephemeral survived session expiry")
	}
	if len(sessions) != 0 {
		t.Fatal("session survived expiry")
	}
}

func TestTxnCodecRoundTrip(t *testing.T) {
	f := func(zxid, epoch uint64, kind uint8, path string, data []byte, version int64, eph, seq bool, session uint64, toMs uint32) bool {
		in := Txn{
			Zxid: zxid, Epoch: epoch, Kind: TxnKind(kind), Path: path, Data: data,
			Version: version, Ephemeral: eph, Sequential: seq, Session: session, SessionTimeoutMs: toMs,
		}
		var e enc
		encodeTxn(&e, &in)
		d := dec{b: e.b}
		out := decodeTxn(&d)
		if d.err != nil {
			return false
		}
		return out.Zxid == in.Zxid && out.Epoch == in.Epoch && out.Kind == in.Kind &&
			out.Path == in.Path && string(out.Data) == string(in.Data) &&
			out.Version == in.Version && out.Ephemeral == in.Ephemeral &&
			out.Sequential == in.Sequential && out.Session == in.Session &&
			out.SessionTimeoutMs == in.SessionTimeoutMs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWireDecShortInputs(t *testing.T) {
	d := dec{b: []byte{1, 2}}
	d.u64()
	if d.err == nil {
		t.Fatal("short u64 accepted")
	}
	d2 := dec{b: []byte{5, 0, 0, 0, 'a'}}
	if s := d2.str(); s != "" || d2.err == nil {
		t.Fatalf("truncated string = %q, err=%v", s, d2.err)
	}
}

func TestStatusErrMapping(t *testing.T) {
	for _, base := range []error{
		ErrNoNode, ErrNodeExists, ErrBadVersion, ErrNotEmpty, ErrNoParent,
		ErrBadPath, ErrEphemeralChildren, ErrNotLeader, ErrNoQuorum,
		ErrSessionExpired, ErrResync,
	} {
		st, detail := errStatus(fmt.Errorf("wrapped: %w", base))
		back := statusErr(st, detail)
		if !errors.Is(back, base) {
			t.Errorf("round trip lost %v (status %d -> %v)", base, st, back)
		}
	}
	if st, _ := errStatus(nil); st != stOK {
		t.Fatal("nil error not OK")
	}
	if err := statusErr(stOK, ""); err != nil {
		t.Fatal("stOK produced error")
	}
}
