package coord

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the cache deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func newCachePair(t *testing.T) (*testEnsemble, *Client, *CachedClient, *fakeClock) {
	t.Helper()
	te := startEnsemble(t, 1)
	c := te.client(t, 0)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	cc, err := NewCachedClient(c, CacheConfig{
		InitialLease:  100 * time.Millisecond,
		MinLease:      10 * time.Millisecond,
		MaxLease:      time.Second,
		ManyThreshold: 4,
		Now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return te, c, cc, clk
}

func TestCacheServesFromCache(t *testing.T) {
	_, c, cc, _ := newCachePair(t)
	c.Create("/k", []byte("v"), CreateOpts{})
	if _, _, err := cc.Get("/k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		data, _, err := cc.Get("/k")
		if err != nil || string(data) != "v" {
			t.Fatalf("cached get = %q, %v", data, err)
		}
	}
	st := cc.Stats()
	if st.Misses != 1 || st.Hits != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheNegativeCaching(t *testing.T) {
	_, _, cc, _ := newCachePair(t)
	if _, _, err := cc.Get("/ghost"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("first get = %v", err)
	}
	if _, _, err := cc.Get("/ghost"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("second get = %v", err)
	}
	if st := cc.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheInvalidatesChangedPaths(t *testing.T) {
	_, c, cc, clk := newCachePair(t)
	c.Create("/k", []byte("v0"), CreateOpts{})
	cc.Get("/k")
	// Write behind the cache's back.
	if _, err := c.Set("/k", []byte("v1"), -1); err != nil {
		t.Fatal(err)
	}
	// Within the lease the stale value is served (the documented window).
	data, _, _ := cc.Get("/k")
	if string(data) != "v0" {
		t.Fatalf("pre-lease read = %q (expected stale v0)", data)
	}
	// After the lease the change feed invalidates /k.
	clk.Advance(200 * time.Millisecond)
	data, _, err := cc.Get("/k")
	if err != nil || string(data) != "v1" {
		t.Fatalf("post-lease read = %q, %v", data, err)
	}
	if st := cc.Stats(); st.Invalidated == 0 || st.Refreshes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheChildrenInvalidation(t *testing.T) {
	_, c, cc, clk := newCachePair(t)
	c.Create("/dir", nil, CreateOpts{})
	kids, err := cc.Children("/dir")
	if err != nil || len(kids) != 0 {
		t.Fatalf("children = %v, %v", kids, err)
	}
	c.Create("/dir/a", nil, CreateOpts{})
	clk.Advance(200 * time.Millisecond)
	kids, err = cc.Children("/dir")
	if err != nil || len(kids) != 1 || kids[0] != "a" {
		t.Fatalf("children after change = %v, %v", kids, err)
	}
}

func TestCacheLeaseDoublesWhenQuiet(t *testing.T) {
	_, _, cc, clk := newCachePair(t)
	start := cc.Lease()
	for i := 0; i < 3; i++ {
		clk.Advance(cc.Lease() + time.Millisecond)
		cc.Get("/whatever") // triggers refresh
	}
	if cc.Lease() != start*8 {
		t.Fatalf("lease = %v, want %v", cc.Lease(), start*8)
	}
}

func TestCacheLeaseClampedAtMax(t *testing.T) {
	_, _, cc, clk := newCachePair(t)
	for i := 0; i < 20; i++ {
		clk.Advance(cc.Lease() + time.Millisecond)
		cc.Get("/x")
	}
	if cc.Lease() != time.Second {
		t.Fatalf("lease = %v, want clamp at 1s", cc.Lease())
	}
}

func TestCacheLeaseHalvesUnderChurn(t *testing.T) {
	_, c, cc, clk := newCachePair(t)
	before := cc.Lease()
	// Generate "lots of changes" (>= ManyThreshold paths).
	c.Create("/c1", nil, CreateOpts{})
	c.Create("/c2", nil, CreateOpts{})
	c.Create("/c3", nil, CreateOpts{})
	c.Create("/c4", nil, CreateOpts{})
	clk.Advance(before + time.Millisecond)
	cc.Get("/c1")
	if cc.Lease() >= before {
		t.Fatalf("lease did not shrink: %v -> %v", before, cc.Lease())
	}
}

func TestCacheResyncAfterOverflow(t *testing.T) {
	te := startEnsemble(t, 1)
	// Rebuild a server with a tiny change log? The ensemble helper uses
	// the default size, so force overflow with a dedicated server.
	_ = te
	net := te.net
	c, err := Dial(ClientConfig{Servers: te.addrs[:1], Caller: net.Endpoint("cc-cli"), NoSession: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clk := &fakeClock{now: time.Unix(0, 0)}
	cc, err := NewCachedClient(c, CacheConfig{InitialLease: 50 * time.Millisecond, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	c.Create("/r", []byte("v"), CreateOpts{})
	cc.Get("/r")
	// Force the cursor far behind the floor.
	cc.mu.Lock()
	cc.cursor = 0
	cc.mu.Unlock()
	// Overflow the (8192) ring is expensive; instead simulate the floor by
	// direct server manipulation.
	te.servers[0].mu.Lock()
	te.servers[0].changesFloor = te.servers[0].zxid
	te.servers[0].changes = nil
	te.servers[0].mu.Unlock()

	clk.Advance(time.Minute)
	cc.ForceRefresh()
	if st := cc.Stats(); st.Resyncs != 1 {
		t.Fatalf("stats = %+v, want one resync", st)
	}
	// Cache still works after the resync.
	data, _, err := cc.Get("/r")
	if err != nil || string(data) != "v" {
		t.Fatalf("post-resync get = %q, %v", data, err)
	}
}

func TestCacheManualInvalidate(t *testing.T) {
	_, c, cc, _ := newCachePair(t)
	c.Create("/k", []byte("v0"), CreateOpts{})
	cc.Get("/k")
	c.Set("/k", []byte("v1"), -1)
	cc.Invalidate("/k")
	data, _, err := cc.Get("/k")
	if err != nil || string(data) != "v1" {
		t.Fatalf("get after invalidate = %q, %v", data, err)
	}
}
