package coord

import (
	"sedna/internal/opshttp"
)

// OpsConfig returns the ops-plane wiring for this ensemble member: metrics
// come from the member's registry, /healthz reports the lease view (who
// leads, whether it is this member, the last applied zxid). Ring and
// imbalance callbacks stay nil — the ensemble stores the layout but does not
// serve data.
func (s *Server) OpsConfig(addr string) opshttp.Config {
	node := s.memberAddr()
	return opshttp.Config{
		Addr:   addr,
		Node:   node,
		Report: s.obs.Report,
		Health: func() opshttp.HealthStatus {
			leader := s.LeaderAddr()
			return opshttp.HealthStatus{
				Node: node,
				// A member with no elected leader cannot serve writes:
				// surface that as unhealthy so orchestration waits it out.
				OK:       leader != "",
				Leader:   leader,
				IsLeader: s.IsLeader(),
				Zxid:     s.Zxid(),
			}
		},
		Logf: s.cfg.Logf,
	}
}

// memberAddr names this member for the ops plane.
func (s *Server) memberAddr() string {
	if s.cfg.ID >= 0 && s.cfg.ID < len(s.cfg.Members) {
		return s.cfg.Members[s.cfg.ID]
	}
	return ""
}
