package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"sedna/internal/obs"
	"sedna/internal/transport"
)

// ClientConfig parameterises a coordination client.
type ClientConfig struct {
	// Servers lists ensemble member addresses; the client fails over
	// between them.
	Servers []string
	// Caller issues the RPCs (a netsim endpoint or a TCP transport).
	Caller transport.Caller
	// SessionTimeout is the server-side session expiry; zero selects 5s.
	SessionTimeout time.Duration
	// CallTimeout bounds one RPC attempt; zero selects 1s.
	CallTimeout time.Duration
	// NoSession skips session creation: the client can only read and
	// create non-ephemeral nodes. Sedna's lease caches use this mode.
	NoSession bool
}

// Client talks to the coordination ensemble: it owns one session, keeps it
// alive with pings, fails over between members, and exposes the znode API.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	cur     int // preferred server index
	session uint64
	expired chan struct{}
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// CreateOpts modifies Create.
type CreateOpts struct {
	// Ephemeral nodes vanish when the creating session ends.
	Ephemeral bool
	// Sequential appends a unique 10-digit counter to the name.
	Sequential bool
}

// Dial starts a session against the ensemble and begins pinging.
func Dial(cfg ClientConfig) (*Client, error) {
	if len(cfg.Servers) == 0 {
		return nil, errors.New("coord: no servers")
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = 5 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = time.Second
	}
	c := &Client{
		cfg:     cfg,
		expired: make(chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.NoSession {
		close(c.done)
		return c, nil
	}
	var e enc
	e.u32(uint32(cfg.SessionTimeout / time.Millisecond))
	d, err := c.do(context.Background(), OpStart, e.b)
	if err != nil {
		return nil, fmt.Errorf("coord: session start: %w", err)
	}
	c.session = d.u64()
	if d.err != nil {
		return nil, d.err
	}
	go c.pingLoop()
	return c, nil
}

// Session returns the client's session id (0 in NoSession mode).
func (c *Client) Session() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Expired is closed when the server reports the session expired; ephemeral
// nodes owned by the client are gone and the client must be re-dialled.
func (c *Client) Expired() <-chan struct{} { return c.expired }

func (c *Client) pingLoop() {
	defer close(c.done)
	interval := c.cfg.SessionTimeout / 3
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		var e enc
		e.u64(c.Session())
		_, err := c.do(context.Background(), OpPing, e.b)
		if errors.Is(err, ErrSessionExpired) {
			c.mu.Lock()
			select {
			case <-c.expired:
			default:
				close(c.expired)
			}
			c.mu.Unlock()
			return
		}
	}
}

// Close ends the session and stops the ping loop.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	session := c.session
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	if session != 0 {
		var e enc
		e.u64(session)
		c.do(context.Background(), OpEnd, e.b)
	}
	return nil
}

// do issues one request with failover and leader-retry. It returns a
// decoder positioned after the status header.
func (c *Client) do(ctx context.Context, op uint16, body []byte) (*dec, error) {
	var lastErr error
	attempts := len(c.cfg.Servers)*2 + 2
	for a := 0; a < attempts; a++ {
		c.mu.Lock()
		if c.closed && op != OpEnd {
			c.mu.Unlock()
			return nil, errors.New("coord: client closed")
		}
		addr := c.cfg.Servers[c.cur%len(c.cfg.Servers)]
		c.mu.Unlock()

		callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
		resp, err := c.cfg.Caller.Call(callCtx, addr, transport.Message{Op: op, Body: body})
		cancel()
		if err != nil {
			lastErr = err
			c.rotate()
			continue
		}
		d := &dec{b: resp.Body}
		st := d.u16()
		detail := d.str()
		if d.err != nil {
			return nil, d.err
		}
		switch st {
		case stOK:
			return d, nil
		case stNotLeader, stNoQuorum:
			// The cluster is electing; back off briefly and retry.
			lastErr = statusErr(st, detail)
			c.rotate()
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		default:
			return nil, statusErr(st, detail)
		}
	}
	return nil, fmt.Errorf("coord: all servers failed: %w", lastErr)
}

func (c *Client) rotate() {
	c.mu.Lock()
	c.cur++
	c.mu.Unlock()
}

// Create makes a znode and returns its effective path (which differs from
// the requested one for sequential nodes).
func (c *Client) Create(path string, data []byte, opts CreateOpts) (string, error) {
	var e enc
	e.str(path)
	e.bytes(data)
	e.bool(opts.Ephemeral)
	e.bool(opts.Sequential)
	e.u64(c.Session())
	d, err := c.do(context.Background(), OpCreate, e.b)
	if err != nil {
		return "", err
	}
	p := d.str()
	_ = decodeStat(d)
	return p, d.err
}

// Get reads a znode's data and stat; the trailing zxid is the serving
// member's applied transaction id.
func (c *Client) Get(path string) ([]byte, Stat, error) {
	var e enc
	e.str(path)
	d, err := c.do(context.Background(), OpGet, e.b)
	if err != nil {
		return nil, Stat{}, err
	}
	data := d.bytes()
	stat := decodeStat(d)
	_ = d.u64()
	return data, stat, d.err
}

// Set writes a znode's data; version -1 bypasses the version check.
func (c *Client) Set(path string, data []byte, version int64) (Stat, error) {
	var e enc
	e.str(path)
	e.bytes(data)
	e.i64(version)
	d, err := c.do(context.Background(), OpSet, e.b)
	if err != nil {
		return Stat{}, err
	}
	stat := decodeStat(d)
	return stat, d.err
}

// Delete removes a leaf znode; version -1 bypasses the version check.
func (c *Client) Delete(path string, version int64) error {
	var e enc
	e.str(path)
	e.i64(version)
	_, err := c.do(context.Background(), OpDelete, e.b)
	return err
}

// Children lists a znode's children, sorted.
func (c *Client) Children(path string) ([]string, error) {
	var e enc
	e.str(path)
	d, err := c.do(context.Background(), OpChildr, e.b)
	if err != nil {
		return nil, err
	}
	n := int(d.u32())
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.str())
	}
	_ = d.u64()
	return out, d.err
}

// Exists reports whether path exists, with its stat when it does.
func (c *Client) Exists(path string) (Stat, bool, error) {
	var e enc
	e.str(path)
	d, err := c.do(context.Background(), OpExists, e.b)
	if err != nil {
		return Stat{}, false, err
	}
	ok := d.bool()
	stat := decodeStat(d)
	_ = d.u64()
	return stat, ok, d.err
}

// EnsurePath creates every missing ancestor of path plus path itself (all
// persistent, empty); existing nodes are left untouched.
func (c *Client) EnsurePath(path string) error {
	if err := ValidatePath(path); err != nil {
		return err
	}
	if path == "/" {
		return nil
	}
	segs := splitPath(path)
	cur := ""
	for _, seg := range segs {
		cur += "/" + seg
		_, err := c.Create(cur, nil, CreateOpts{})
		if err != nil && !errors.Is(err, ErrNodeExists) {
			return err
		}
	}
	return nil
}

// Await blocks until path is touched by a transaction newer than sinceZxid
// or ctx expires; it reports whether a change was observed and the zxid of
// the newest touch. This is the long-poll equivalent of a ZooKeeper watch.
// The server-side wait is bounded slightly under the ctx deadline so the
// "no change" answer still makes it back to the caller.
func (c *Client) Await(ctx context.Context, path string, sinceZxid uint64) (bool, uint64, error) {
	wait := 30 * time.Second
	if dl, ok := ctx.Deadline(); ok {
		wait = time.Until(dl) - c.cfg.CallTimeout/4
		if wait < 0 {
			wait = 0
		}
	}
	var e enc
	e.str(path)
	e.u64(sinceZxid)
	e.u32(uint32(wait / time.Millisecond))
	c.mu.Lock()
	addr := c.cfg.Servers[c.cur%len(c.cfg.Servers)]
	c.mu.Unlock()
	resp, err := c.cfg.Caller.Call(ctx, addr, transport.Message{Op: OpAwait, Body: e.b})
	if err != nil {
		return false, 0, err
	}
	d := &dec{b: resp.Body}
	if st := d.u16(); st != stOK {
		return false, 0, statusErr(st, d.str())
	}
	d.str()
	changed := d.bool()
	zxid := d.u64()
	return changed, zxid, d.err
}

// Changes returns the paths modified since the given zxid along with the
// new cursor. ErrResync means the window was exceeded: refetch everything
// and restart from Cursor().
func (c *Client) Changes(since uint64) (uint64, []string, error) {
	var e enc
	e.u64(since)
	d, err := c.do(context.Background(), OpChange, e.b)
	if err != nil {
		return 0, nil, err
	}
	zxid := d.u64()
	n := int(d.u32())
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		paths = append(paths, d.str())
	}
	return zxid, paths, d.err
}

// ObsStats fetches a member's obs.Report (metric snapshot, traces, slow
// ops) over the znode-free admin path. An empty addr asks whichever member
// the client currently prefers; otherwise the named member is dialled
// directly (per-member debugging).
func (c *Client) ObsStats(addr string) (obs.Report, error) {
	if addr == "" {
		d, err := c.do(context.Background(), OpObsStats, nil)
		if err != nil {
			return obs.Report{}, err
		}
		return decodeReport(d)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.cfg.Caller.Call(ctx, addr, transport.Message{Op: OpObsStats})
	if err != nil {
		return obs.Report{}, err
	}
	d := &dec{b: resp.Body}
	st := d.u16()
	detail := d.str()
	if d.err != nil {
		return obs.Report{}, d.err
	}
	if st != stOK {
		return obs.Report{}, statusErr(st, detail)
	}
	return decodeReport(d)
}

func decodeReport(d *dec) (obs.Report, error) {
	blob := d.bytes()
	if d.err != nil {
		return obs.Report{}, d.err
	}
	var rep obs.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return obs.Report{}, fmt.Errorf("coord: decode report: %w", err)
	}
	return rep, nil
}

// Cursor returns the serving member's applied zxid, the starting point for
// a Changes feed.
func (c *Client) Cursor() (uint64, error) {
	d, err := c.do(context.Background(), OpStatus, nil)
	if err != nil {
		return 0, err
	}
	_ = d.u64() // epoch
	_ = d.u32() // leader
	zxid := d.u64()
	return zxid, d.err
}
