package coord

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sedna/internal/netsim"
	"sedna/internal/transport"
)

// testEnsemble spins up n members over a simulated loopback network with
// fast timeouts and waits for a leader.
type testEnsemble struct {
	servers []*Server
	net     *netsim.Network
	addrs   []string
}

func startEnsemble(t testing.TB, n int) *testEnsemble {
	t.Helper()
	net := netsim.NewNetwork(netsim.Loopback(), 42)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("coord-%d", i)
	}
	te := &testEnsemble{net: net, addrs: addrs}
	for i := 0; i < n; i++ {
		s := NewServer(ServerConfig{
			ID:              i,
			Members:         addrs,
			Transport:       net.Endpoint(addrs[i]),
			HeartbeatEvery:  10 * time.Millisecond,
			ElectionTimeout: 60 * time.Millisecond,
			RPCTimeout:      40 * time.Millisecond,
		})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		te.servers = append(te.servers, s)
	}
	t.Cleanup(func() {
		for _, s := range te.servers {
			s.Close()
		}
	})
	te.waitLeader(t)
	return te
}

func (te *testEnsemble) waitLeader(t testing.TB) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i, s := range te.servers {
			if s.IsLeader() {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return -1
}

func (te *testEnsemble) client(t testing.TB, via int) *Client {
	t.Helper()
	c, err := Dial(ClientConfig{
		Servers:        []string{te.addrs[via]},
		Caller:         te.net.Endpoint(fmt.Sprintf("cli-%d-%d", via, time.Now().UnixNano())),
		SessionTimeout: 300 * time.Millisecond,
		CallTimeout:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEnsembleElectsLowestID(t *testing.T) {
	te := startEnsemble(t, 3)
	if !te.servers[0].IsLeader() {
		t.Fatalf("leader is not member 0")
	}
	for _, s := range te.servers[1:] {
		if s.IsLeader() {
			t.Fatal("multiple leaders")
		}
		if s.LeaderAddr() != te.addrs[0] {
			t.Fatalf("follower sees leader %q", s.LeaderAddr())
		}
	}
}

func TestEnsembleBasicCRUD(t *testing.T) {
	te := startEnsemble(t, 3)
	c := te.client(t, 1) // talk to a follower: writes forward to the leader

	if _, err := c.Create("/sedna", []byte("root"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	path, err := c.Create("/sedna/node", []byte("v0"), CreateOpts{})
	if err != nil || path != "/sedna/node" {
		t.Fatalf("create = %q, %v", path, err)
	}
	data, stat, err := c.Get("/sedna/node")
	if err != nil || string(data) != "v0" || stat.Version != 0 {
		t.Fatalf("get = %q %+v %v", data, stat, err)
	}
	if _, err := c.Set("/sedna/node", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Set("/sedna/node", []byte("v2"), 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale set = %v", err)
	}
	kids, err := c.Children("/sedna")
	if err != nil || len(kids) != 1 || kids[0] != "node" {
		t.Fatalf("children = %v, %v", kids, err)
	}
	if err := c.Delete("/sedna/node", -1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Exists("/sedna/node"); ok {
		t.Fatal("deleted node exists")
	}
}

func TestEnsembleReadsVisibleOnFollowers(t *testing.T) {
	te := startEnsemble(t, 3)
	c0 := te.client(t, 0)
	if _, err := c0.Create("/x", []byte("data"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// Commits broadcast asynchronously; poll each follower's local read.
	for via := 1; via < 3; via++ {
		c := te.client(t, via)
		deadline := time.Now().Add(2 * time.Second)
		for {
			data, _, err := c.Get("/x")
			if err == nil && string(data) == "data" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower %d never saw the write: %v", via, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestEnsembleSequentialCreateViaClient(t *testing.T) {
	te := startEnsemble(t, 3)
	c := te.client(t, 2)
	c.Create("/q", nil, CreateOpts{})
	p1, err := c.Create("/q/n-", nil, CreateOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := c.Create("/q/n-", nil, CreateOpts{Sequential: true})
	if p1 != "/q/n-0000000000" || p2 != "/q/n-0000000001" {
		t.Fatalf("sequential paths = %q, %q", p1, p2)
	}
}

func TestEnsembleEphemeralDiesWithSession(t *testing.T) {
	te := startEnsemble(t, 3)
	c1 := te.client(t, 0)
	c2 := te.client(t, 1)
	c1.Create("/nodes", nil, CreateOpts{})
	if _, err := c1.Create("/nodes/me", []byte("alive"), CreateOpts{Ephemeral: true}); err != nil {
		t.Fatal(err)
	}
	// Visible to the other client.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, _ := c2.Exists("/nodes/me"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ephemeral never visible")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Graceful close removes it.
	c1.Close()
	deadline = time.Now().Add(2 * time.Second)
	for {
		if _, ok, _ := c2.Exists("/nodes/me"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ephemeral survived session end")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEnsembleSessionExpiryByHeartbeatLoss(t *testing.T) {
	te := startEnsemble(t, 3)
	watcher := te.client(t, 1)
	watcher.Create("/nodes", nil, CreateOpts{})

	// A session whose client is partitioned away stops pinging; the leader
	// must expire it and delete its ephemerals (paper §III-D: heartbeat
	// loss makes ZooKeeper aware of the real node's death).
	lostAddr := "cli-lost"
	lost, err := Dial(ClientConfig{
		Servers:        te.addrs,
		Caller:         te.net.Endpoint(lostAddr),
		SessionTimeout: 150 * time.Millisecond,
		CallTimeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lost.Close()
	if _, err := lost.Create("/nodes/lost", nil, CreateOpts{Ephemeral: true}); err != nil {
		t.Fatal(err)
	}
	te.net.Isolate(lostAddr)

	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok, _ := watcher.Exists("/nodes/lost"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ephemeral survived heartbeat loss")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEnsembleEphemeralRequiresSession(t *testing.T) {
	te := startEnsemble(t, 3)
	c, err := Dial(ClientConfig{
		Servers:   te.addrs,
		Caller:    te.net.Endpoint("nosess"),
		NoSession: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create("/e", nil, CreateOpts{Ephemeral: true}); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("ephemeral without session = %v", err)
	}
}

func TestEnsembleLeaderFailover(t *testing.T) {
	te := startEnsemble(t, 3)
	c := te.client(t, 2)
	if _, err := c.Create("/before", []byte("1"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// Kill the leader; member 1 should take over.
	te.net.Isolate(te.addrs[0])
	deadline := time.Now().Add(5 * time.Second)
	for !te.servers[1].IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("no failover to member 1")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Writes work again through the new leader; old data survives.
	if _, err := c.Create("/after", []byte("2"), CreateOpts{}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	data, _, err := c.Get("/before")
	if err != nil || string(data) != "1" {
		t.Fatalf("pre-failover data lost: %q, %v", data, err)
	}

	// Heal: the old leader rejoins as a follower and catches up.
	te.net.HealAll()
	deadline = time.Now().Add(5 * time.Second)
	for {
		te.servers[0].mu.Lock()
		caught := te.servers[0].zxid >= te.servers[1].Zxid() && te.servers[0].leader == 1
		te.servers[0].mu.Unlock()
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("old leader never rejoined")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEnsembleMinorityCannotWrite(t *testing.T) {
	te := startEnsemble(t, 3)
	// Isolate members 1 and 2 from 0 AND from each other is overkill; cut
	// 0 off so it is a minority of one.
	te.net.Isolate(te.addrs[0])
	// Wait for the majority side to elect member 1.
	deadline := time.Now().Add(5 * time.Second)
	for !te.servers[1].IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("majority never elected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A client pinned to the minority member cannot write.
	c, err := Dial(ClientConfig{
		Servers:     []string{te.addrs[0]},
		Caller:      te.net.Endpoint("cli-minority"),
		CallTimeout: 150 * time.Millisecond,
		NoSession:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The client endpoint reaches member 0 (only inter-member links were
	// cut by Isolate? Isolate cuts every link touching addrs[0], including
	// the client's). So instead verify from the server's own view: member
	// 0 must have stepped down or failed proposals.
	deadline = time.Now().Add(3 * time.Second)
	for te.servers[0].IsLeader() {
		// Any write attempt from the stale leader must fail.
		if _, err := te.servers[0].propose(&Txn{Kind: TxnCreate, Path: "/minority"}); err == nil {
			t.Fatal("minority leader committed a write")
		}
		if time.Now().After(deadline) {
			t.Fatal("minority member still believes it leads")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEnsembleAwaitWatch(t *testing.T) {
	te := startEnsemble(t, 3)
	c := te.client(t, 1)
	c.Create("/watched", []byte("v0"), CreateOpts{})

	start := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		cursor, err := c.Cursor()
		if err != nil {
			result <- err
			return
		}
		close(start)
		changed, _, err := c.Await(ctx, "/watched", cursor)
		if err != nil {
			result <- err
			return
		}
		if !changed {
			result <- errors.New("await returned without change")
			return
		}
		result <- nil
	}()
	<-start
	time.Sleep(20 * time.Millisecond) // let Await register
	if _, err := c.Set("/watched", []byte("v1"), -1); err != nil {
		t.Fatal(err)
	}
	if err := <-result; err != nil {
		t.Fatal(err)
	}
}

func TestEnsembleAwaitTimeoutNoChange(t *testing.T) {
	te := startEnsemble(t, 1)
	c := te.client(t, 0)
	c.Create("/quiet", nil, CreateOpts{})
	cursor, _ := c.Cursor()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	changed, _, err := c.Await(ctx, "/quiet", cursor)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("await reported a change on a quiet node")
	}
}

func TestEnsembleChangesFeed(t *testing.T) {
	te := startEnsemble(t, 1)
	c := te.client(t, 0)
	cursor, err := c.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	c.Create("/a", nil, CreateOpts{})
	c.Create("/a/b", nil, CreateOpts{})
	c.Set("/a", []byte("x"), -1)

	newCursor, paths, err := c.Changes(cursor)
	if err != nil {
		t.Fatal(err)
	}
	if newCursor <= cursor {
		t.Fatalf("cursor did not advance: %d -> %d", cursor, newCursor)
	}
	want := map[string]bool{"/a": true, "/a/b": true, "/": true}
	for _, p := range paths {
		if !want[p] {
			t.Fatalf("unexpected change path %q (all: %v)", p, paths)
		}
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("missing change paths: %v", want)
	}
	// No further changes.
	_, paths, err = c.Changes(newCursor)
	if err != nil || len(paths) != 0 {
		t.Fatalf("idle changes = %v, %v", paths, err)
	}
}

func TestEnsembleChangesResyncAfterOverflow(t *testing.T) {
	net := netsim.NewNetwork(netsim.Loopback(), 1)
	s := NewServer(ServerConfig{
		ID:              0,
		Members:         []string{"solo"},
		Transport:       net.Endpoint("solo"),
		HeartbeatEvery:  10 * time.Millisecond,
		ElectionTimeout: 50 * time.Millisecond,
		RPCTimeout:      40 * time.Millisecond,
		ChangeLogSize:   8,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	deadline := time.Now().Add(3 * time.Second)
	for !s.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c, err := Dial(ClientConfig{Servers: []string{"solo"}, Caller: net.Endpoint("cli"), NoSession: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cursor, _ := c.Cursor()
	for i := 0; i < 20; i++ {
		if _, err := c.Create(fmt.Sprintf("/n%02d", i), nil, CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Changes(cursor); !errors.Is(err, ErrResync) {
		t.Fatalf("overflowed cursor = %v, want ErrResync", err)
	}
}

func TestEnsembleEnsurePath(t *testing.T) {
	te := startEnsemble(t, 1)
	c := te.client(t, 0)
	if err := c.EnsurePath("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Exists("/a/b/c"); !ok {
		t.Fatal("path not created")
	}
	// Idempotent.
	if err := c.EnsurePath("/a/b/c"); err != nil {
		t.Fatal(err)
	}
}

func TestEnsembleClientFailover(t *testing.T) {
	te := startEnsemble(t, 3)
	c, err := Dial(ClientConfig{
		Servers:     te.addrs,
		Caller:      te.net.Endpoint("cli-fo"),
		CallTimeout: 150 * time.Millisecond,
		NoSession:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create("/fo", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// Cut the client's preferred (first) server; reads must fail over.
	te.net.Partition("cli-fo", te.addrs[0])
	deadline := time.Now().Add(3 * time.Second)
	for {
		data, _, err := c.Get("/fo")
		if err == nil && string(data) == "x" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover read never succeeded: %v", err)
		}
	}
}

func TestSyncSnapshotEquivalence(t *testing.T) {
	// After a follower catches up via syncFrom, its full replicated state
	// (tree, stats, sequence counters, sessions) must be byte-identical to
	// the leader's — the property that makes snapshot catch-up safe.
	te := startEnsemble(t, 3)
	c := te.client(t, 0)

	// Build interesting state: nested nodes, versions, sequential
	// counters with gaps, ephemerals.
	c.Create("/app", []byte("root"), CreateOpts{})
	c.Create("/app/cfg", []byte("v0"), CreateOpts{})
	c.Set("/app/cfg", []byte("v1"), 0)
	c.Set("/app/cfg", []byte("v2"), 1)
	c.Create("/app/q", nil, CreateOpts{})
	p1, _ := c.Create("/app/q/item-", nil, CreateOpts{Sequential: true})
	c.Create("/app/q/item-", nil, CreateOpts{Sequential: true})
	c.Delete(p1, -1)
	c.Create("/app/live", []byte("eph"), CreateOpts{Ephemeral: true})

	// Force member 2 to resync from scratch.
	if !te.servers[2].syncFrom(te.addrs[0]) {
		t.Fatal("syncFrom failed")
	}
	// Compare the two members' own sync snapshots.
	ctxBg := context.Background()
	snap := func(s *Server) []byte {
		resp, err := s.handleSync(ctxBg, "", transport.Message{})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Body
	}
	a, b := snap(te.servers[0]), snap(te.servers[2])
	if string(a) != string(b) {
		t.Fatalf("sync snapshots differ (%d vs %d bytes)", len(a), len(b))
	}
	// The synced member continues correctly: a sequential create through
	// the cluster picks up the counter where the leader left it.
	p3, err := c.Create("/app/q/item-", nil, CreateOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if p3 != "/app/q/item-0000000002" {
		t.Fatalf("sequential after sync = %q", p3)
	}
}
