package memstore

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/obs"
)

// Errors returned by Store operations.
var (
	// ErrNotFound reports a missing key where one was required.
	ErrNotFound = errors.New("memstore: not found")
	// ErrExists reports Add on a key that is already present.
	ErrExists = errors.New("memstore: already exists")
	// ErrCASMismatch reports a CompareAndSwap that lost the race.
	ErrCASMismatch = errors.New("memstore: cas mismatch")
	// ErrTooLarge reports an item bigger than a slab page.
	ErrTooLarge = errors.New("memstore: item exceeds page size")
	// ErrOutOfMemory reports that the item cannot fit even after evicting
	// everything in its slab class.
	ErrOutOfMemory = errors.New("memstore: out of memory")
)

// Config parameterises a Store.
type Config struct {
	// MemoryLimit is the byte budget for item storage, served from a
	// store-wide slab arena (like memcached's). Zero selects 64 MiB; the
	// paper configures each server with 4 GB.
	MemoryLimit int64
	// Shards is the number of independently locked partitions; it is
	// rounded up to a power of two. Zero selects 16.
	Shards int
	// Now supplies time in unix nanoseconds; nil selects the real clock.
	// Tests inject a fake clock to exercise expiry deterministically.
	Now func() int64
}

// Item is the public view of a stored entry.
type Item struct {
	// Value is the stored payload. It must be treated as read-only: the
	// store replaces, never mutates, values, so a returned slice is
	// stable, but writing into it corrupts the store.
	Value []byte
	// Flags is opaque caller metadata, as in the memcached protocol.
	Flags uint32
	// CAS is the compare-and-swap version of the entry.
	CAS uint64
	// Expire is the unix-nanosecond expiry, 0 when the entry never
	// expires.
	Expire int64
}

// Stats aggregates the store's counters.
type Stats struct {
	Items       int64
	Bytes       int64
	Hits        uint64
	Misses      uint64
	Sets        uint64
	Deletes     uint64
	Evictions   uint64
	Expired     uint64
	CASHits     uint64
	CASMisses   uint64
	OwnedSets   uint64
	BudgetBytes int64
}

// Store is a sharded in-memory key-value store with memcached semantics:
// slab-class memory accounting, per-class LRU eviction, TTLs and CAS. All
// methods are safe for concurrent use.
type Store struct {
	shards []*shard
	arena  *slabArena
	mask   uint64
	now    func() int64
	casSeq atomic.Uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	sets      atomic.Uint64
	deletes   atomic.Uint64
	evictions atomic.Uint64
	expired   atomic.Uint64
	casHits   atomic.Uint64
	casMisses atomic.Uint64
	ownedSets atomic.Uint64
	budget    int64
}

type shard struct {
	mu    sync.Mutex
	store *Store
	table *hashTable
	lru   []lruList
	bytes int64
}

type lruList struct {
	head *item // most recently used
	tail *item // eviction candidate
}

// New creates a Store.
func New(cfg Config) *Store {
	if cfg.MemoryLimit <= 0 {
		cfg.MemoryLimit = 64 << 20
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	now := cfg.Now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	budget := cfg.MemoryLimit
	if budget < PageSize {
		budget = PageSize
	}
	s := &Store{shards: make([]*shard, n), mask: uint64(n - 1), now: now, budget: cfg.MemoryLimit}
	s.arena = newSlabArena(budget)
	nClasses := len(chunkClasses())
	for i := range s.shards {
		s.shards[i] = &shard{
			store: s,
			table: newHashTable(),
			lru:   make([]lruList, nClasses),
		}
	}
	return s
}

func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

func (s *Store) shardFor(hash uint64) *shard { return s.shards[hash&s.mask] }

// Get returns the item stored under key. Expired entries count as misses
// and are reclaimed lazily.
func (s *Store) Get(key string) (Item, bool) {
	h := hashKey(key)
	sh := s.shardFor(h)
	sh.mu.Lock()
	it := sh.table.lookup(h, key)
	if it == nil {
		sh.mu.Unlock()
		s.misses.Add(1)
		return Item{}, false
	}
	if s.expiredLocked(sh, it) {
		sh.mu.Unlock()
		s.misses.Add(1)
		s.expired.Add(1)
		return Item{}, false
	}
	sh.touchLRU(it)
	out := Item{Value: it.value, Flags: it.flags, CAS: it.cas, Expire: it.expire}
	sh.mu.Unlock()
	s.hits.Add(1)
	return out, true
}

// expiredLocked reclaims it if expired and reports whether it did.
func (s *Store) expiredLocked(sh *shard, it *item) bool {
	if it.expire == 0 || it.expire > s.now() {
		return false
	}
	sh.dropLocked(it)
	return true
}

// Set stores value under key unconditionally. ttl of zero means no expiry.
// The value is copied; the caller keeps ownership of its slice.
func (s *Store) Set(key string, value []byte, flags uint32, ttl time.Duration) error {
	return s.store(key, value, flags, ttl, storeSet, 0, false)
}

// SetOwned stores value under key unconditionally, taking ownership of the
// value slice: the store retains it WITHOUT a defensive copy. The caller
// must not write into the slice afterwards (reading is safe — the store
// replaces, never mutates, values). This is the final hand-off of the
// zero-copy write path: wire frame → encoded row → store, one copy total.
func (s *Store) SetOwned(key string, value []byte, flags uint32, ttl time.Duration) error {
	return s.store(key, value, flags, ttl, storeSet, 0, true)
}

// Add stores value only when key is absent.
func (s *Store) Add(key string, value []byte, flags uint32, ttl time.Duration) error {
	return s.store(key, value, flags, ttl, storeAdd, 0, false)
}

// Replace stores value only when key is present.
func (s *Store) Replace(key string, value []byte, flags uint32, ttl time.Duration) error {
	return s.store(key, value, flags, ttl, storeReplace, 0, false)
}

// CompareAndSwap stores value only when the entry's CAS matches cas.
func (s *Store) CompareAndSwap(key string, value []byte, flags uint32, ttl time.Duration, cas uint64) error {
	return s.store(key, value, flags, ttl, storeCAS, cas, false)
}

type storeMode int

const (
	storeSet storeMode = iota
	storeAdd
	storeReplace
	storeCAS
)

// cloneUnlessOwned copies value unless the caller has transferred ownership
// of the slice to the store.
func cloneUnlessOwned(value []byte, owned bool) []byte {
	if owned {
		return value
	}
	return append([]byte(nil), value...)
}

// sameSlice reports whether a and b are the identical slice (same backing
// array, same length), so replacing one with the other is a no-op.
func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func (s *Store) store(key string, value []byte, flags uint32, ttl time.Duration, mode storeMode, cas uint64, owned bool) error {
	need := len(key) + len(value) + itemOverhead
	h := hashKey(key)
	sh := s.shardFor(h)
	class := s.arena.classFor(need)
	if class < 0 {
		return ErrTooLarge
	}
	var expire int64
	if ttl > 0 {
		expire = s.now() + int64(ttl)
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()

	old := sh.table.lookup(h, key)
	if old != nil && s.expiredLocked(sh, old) {
		s.expired.Add(1)
		old = nil
	}
	switch mode {
	case storeAdd:
		if old != nil {
			return ErrExists
		}
	case storeReplace:
		if old == nil {
			return ErrNotFound
		}
	case storeCAS:
		if old == nil {
			s.casMisses.Add(1)
			return ErrNotFound
		}
		if old.cas != cas {
			s.casMisses.Add(1)
			return ErrCASMismatch
		}
		s.casHits.Add(1)
	}

	// Replace in place when the new value fits the same slab class.
	if old != nil && old.class == class {
		sh.bytes += int64(need - old.size())
		old.value = cloneUnlessOwned(value, owned)
		old.flags = flags
		old.expire = expire
		old.cas = s.casSeq.Add(1)
		sh.touchLRU(old)
		s.sets.Add(1)
		if owned {
			s.ownedSets.Add(1)
		}
		return nil
	}
	if old != nil {
		sh.dropLocked(old)
	}
	if err := s.reserveLocked(sh, class); err != nil {
		return err
	}
	it := &item{
		key:    key,
		value:  cloneUnlessOwned(value, owned),
		flags:  flags,
		expire: expire,
		cas:    s.casSeq.Add(1),
		class:  class,
		hash:   h,
	}
	sh.table.insert(it)
	sh.pushLRU(it)
	sh.bytes += int64(it.size())
	s.sets.Add(1)
	if owned {
		s.ownedSets.Add(1)
	}
	return nil
}

// reserveLocked obtains a chunk of the class, evicting this shard's LRU
// items of the same class as needed (memcached's policy; with the global
// arena, another shard's items of the class are out of reach by design —
// lock ordering forbids cross-shard eviction).
func (s *Store) reserveLocked(sh *shard, class int) error {
	for {
		if s.arena.reserve(class) {
			return nil
		}
		victim := sh.lru[class].tail
		if victim == nil {
			return ErrOutOfMemory
		}
		if victim.expire != 0 && victim.expire <= s.now() {
			s.expired.Add(1)
		} else {
			s.evictions.Add(1)
		}
		sh.dropLocked(victim)
	}
}

// Delete removes key and reports whether it was present.
func (s *Store) Delete(key string) bool {
	h := hashKey(key)
	sh := s.shardFor(h)
	sh.mu.Lock()
	it := sh.table.lookup(h, key)
	if it == nil || s.expiredLocked(sh, it) {
		sh.mu.Unlock()
		return false
	}
	sh.dropLocked(it)
	sh.mu.Unlock()
	s.deletes.Add(1)
	return true
}

// Touch refreshes the expiry of key and reports whether it was present.
func (s *Store) Touch(key string, ttl time.Duration) bool {
	h := hashKey(key)
	sh := s.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it := sh.table.lookup(h, key)
	if it == nil || s.expiredLocked(sh, it) {
		return false
	}
	if ttl > 0 {
		it.expire = s.now() + int64(ttl)
	} else {
		it.expire = 0
	}
	sh.touchLRU(it)
	return true
}

// Update atomically transforms the value under key: fn receives the current
// value (nil, false when absent) and returns the replacement; returning ok
// false deletes the key (a no-op when it was absent). The value passed to fn
// must not be retained or modified; the returned slice is copied. Update is
// the primitive Sedna's replica path uses to apply row mutations atomically.
//
// Returning the old slice unchanged is recognised and short-circuits to a
// pure no-op: no copy, no CAS bump, no set counted.
func (s *Store) Update(key string, fn func(old []byte, ok bool) (next []byte, keep bool)) error {
	return s.update(key, fn, false)
}

// UpdateOwned is Update with ownership transfer: the slice fn returns is
// retained by the store WITHOUT a defensive copy (unless it is the old value
// itself, which short-circuits to a no-op). fn must hand back either the old
// slice or a freshly built buffer it will never write to again; the same
// read-only aliasing rules as SetOwned apply.
func (s *Store) UpdateOwned(key string, fn func(old []byte, ok bool) (next []byte, keep bool)) error {
	return s.update(key, fn, true)
}

func (s *Store) update(key string, fn func(old []byte, ok bool) (next []byte, keep bool), owned bool) error {
	h := hashKey(key)
	sh := s.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	it := sh.table.lookup(h, key)
	if it != nil && s.expiredLocked(sh, it) {
		s.expired.Add(1)
		it = nil
	}
	var cur []byte
	if it != nil {
		cur = it.value
	}
	next, keep := fn(cur, it != nil)
	if !keep {
		if it != nil {
			sh.dropLocked(it)
			s.deletes.Add(1)
		}
		return nil
	}
	if it != nil && sameSlice(next, it.value) {
		sh.touchLRU(it)
		return nil
	}
	need := len(key) + len(next) + itemOverhead
	class := s.arena.classFor(need)
	if class < 0 {
		return ErrTooLarge
	}
	if it != nil && it.class == class {
		sh.bytes += int64(need - it.size())
		it.value = cloneUnlessOwned(next, owned)
		it.cas = s.casSeq.Add(1)
		sh.touchLRU(it)
		s.sets.Add(1)
		if owned {
			s.ownedSets.Add(1)
		}
		return nil
	}
	var flags uint32
	var expire int64
	if it != nil {
		flags, expire = it.flags, it.expire
		sh.dropLocked(it)
	}
	if err := s.reserveLocked(sh, class); err != nil {
		return err
	}
	ni := &item{
		key:    key,
		value:  cloneUnlessOwned(next, owned),
		flags:  flags,
		expire: expire,
		cas:    s.casSeq.Add(1),
		class:  class,
		hash:   h,
	}
	sh.table.insert(ni)
	sh.pushLRU(ni)
	sh.bytes += int64(ni.size())
	s.sets.Add(1)
	if owned {
		s.ownedSets.Add(1)
	}
	return nil
}

// FlushAll discards every entry.
func (s *Store) FlushAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		nClasses := len(sh.lru)
		sh.table = newHashTable()
		sh.lru = make([]lruList, nClasses)
		sh.bytes = 0
		sh.mu.Unlock()
	}
	s.arena.mu.Lock()
	s.arena.pagesBytes = 0
	for i := range s.arena.classes {
		s.arena.classes[i].totalChunks = 0
		s.arena.classes[i].usedChunks = 0
	}
	s.arena.mu.Unlock()
}

// Len returns the number of stored items, including not-yet-reclaimed
// expired entries.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.table.count
		sh.mu.Unlock()
	}
	return n
}

// BytesUsed returns the charged byte footprint of live items.
func (s *Store) BytesUsed() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Sets:        s.sets.Load(),
		Deletes:     s.deletes.Load(),
		Evictions:   s.evictions.Load(),
		Expired:     s.expired.Load(),
		CASHits:     s.casHits.Load(),
		CASMisses:   s.casMisses.Load(),
		OwnedSets:   s.ownedSets.Load(),
		BudgetBytes: s.budget,
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Items += int64(sh.table.count)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// SlabStats returns the per-class slab accounting.
func (s *Store) SlabStats() []ClassStats { return s.arena.stats() }

// PublishObs mirrors the store's counters and slab occupancy into an obs
// registry under the memstore.* namespace. The store keeps its own atomic
// counters as the source of truth; callers invoke PublishObs right before
// snapshotting the registry so the exported values are current.
func (s *Store) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	st := s.Stats()
	r.Gauge("memstore.items").Set(st.Items)
	r.Gauge("memstore.bytes").Set(st.Bytes)
	r.Gauge("memstore.budget_bytes").Set(st.BudgetBytes)
	r.Gauge("memstore.hits").Set(int64(st.Hits))
	r.Gauge("memstore.misses").Set(int64(st.Misses))
	r.Gauge("memstore.sets").Set(int64(st.Sets))
	r.Gauge("memstore.deletes").Set(int64(st.Deletes))
	r.Gauge("memstore.evictions").Set(int64(st.Evictions))
	r.Gauge("memstore.expired").Set(int64(st.Expired))
	r.Gauge("memstore.cas_hits").Set(int64(st.CASHits))
	r.Gauge("memstore.cas_misses").Set(int64(st.CASMisses))
	r.Gauge("memstore.owned_sets").Set(int64(st.OwnedSets))
	var total, used int64
	for _, cs := range s.SlabStats() {
		total += int64(cs.TotalChunks)
		used += int64(cs.UsedChunks)
	}
	r.Gauge("memstore.slab.total_chunks").Set(total)
	r.Gauge("memstore.slab.used_chunks").Set(used)
}

// Range calls fn for every live item. Each shard is visited under its lock,
// so fn must be fast and must not call back into the Store. Iteration stops
// when fn returns false. Entries expired at visit time are skipped (but not
// reclaimed). The value slice passed to fn must not be modified; it may be
// retained for reading — the store replaces, never mutates, values, so the
// slice stays stable even after the entry is overwritten or dropped.
func (s *Store) Range(fn func(key string, it Item) bool) {
	now := s.now()
	for _, sh := range s.shards {
		stop := false
		sh.mu.Lock()
		sh.table.forEach(func(it *item) bool {
			if it.expire != 0 && it.expire <= now {
				return true
			}
			if !fn(it.key, Item{Value: it.value, Flags: it.flags, CAS: it.cas, Expire: it.expire}) {
				stop = true
				return false
			}
			return true
		})
		sh.mu.Unlock()
		if stop {
			return
		}
	}
}

// --- shard helpers (callers hold sh.mu) ---

// dropLocked removes the item from the table, the LRU and the slab arena.
func (sh *shard) dropLocked(it *item) {
	sh.table.remove(it.hash, it.key)
	sh.unlinkLRU(it)
	sh.store.arena.release(it.class)
	sh.bytes -= int64(it.size())
}

func (sh *shard) pushLRU(it *item) {
	l := &sh.lru[it.class]
	it.lruPrev = nil
	it.lruNext = l.head
	if l.head != nil {
		l.head.lruPrev = it
	}
	l.head = it
	if l.tail == nil {
		l.tail = it
	}
}

func (sh *shard) unlinkLRU(it *item) {
	l := &sh.lru[it.class]
	if it.lruPrev != nil {
		it.lruPrev.lruNext = it.lruNext
	} else {
		l.head = it.lruNext
	}
	if it.lruNext != nil {
		it.lruNext.lruPrev = it.lruPrev
	} else {
		l.tail = it.lruPrev
	}
	it.lruPrev, it.lruNext = nil, nil
}

func (sh *shard) touchLRU(it *item) {
	if sh.lru[it.class].head == it {
		return
	}
	sh.unlinkLRU(it)
	sh.pushLRU(it)
}
