// Package memstore implements Sedna's local memory storage, a from-scratch
// memcached-style engine (the paper uses "modified Memcached" as each
// server's local store, §VI): a slab-class allocator with per-class LRU
// eviction, a resizable hash table with incremental rehashing, item TTLs,
// CAS, and the statistics counters the rest of Sedna consumes.
package memstore

import (
	"fmt"
	"sync"
)

// Slab sizing mirrors memcached's defaults: chunk classes start at a small
// minimum and grow geometrically up to the page size; an item occupies one
// chunk of the smallest class that fits it, and memory is acquired from a
// global budget one page at a time. We reproduce the accounting (and thus
// the eviction behaviour) without doing raw pointer arithmetic: Go owns the
// bytes, the slab layer owns the budget.
const (
	// PageSize is the allocation unit requested from the global budget.
	PageSize = 1 << 20 // 1 MiB
	// minChunk is the smallest chunk class.
	minChunk = 96
	// growthFactor is the ratio between consecutive chunk classes,
	// memcached's default 1.25.
	growthNum, growthDen = 5, 4
)

// chunkClasses computes the chunk size ladder.
func chunkClasses() []int {
	var sizes []int
	for size := minChunk; size < PageSize; size = size * growthNum / growthDen {
		// Align to 8 bytes like memcached does.
		aligned := (size + 7) &^ 7
		if len(sizes) > 0 && aligned == sizes[len(sizes)-1] {
			aligned += 8
		}
		sizes = append(sizes, aligned)
	}
	sizes = append(sizes, PageSize)
	return sizes
}

// slabArena tracks page and chunk accounting for the whole store, shared
// by every shard like memcached's global slab allocator. Its mutex is
// always acquired after a shard lock, never before.
type slabArena struct {
	mu      sync.Mutex
	sizes   []int
	classes []slabClass
	// budget is the maximum bytes of pages this arena may hold.
	budget int64
	// pagesBytes is the bytes currently held in pages.
	pagesBytes int64
}

type slabClass struct {
	chunkSize   int
	perPage     int
	totalChunks int // chunks available across all pages of this class
	usedChunks  int
}

// newSlabArena creates an arena with the given byte budget.
func newSlabArena(budget int64) *slabArena {
	sizes := chunkClasses()
	a := &slabArena{sizes: sizes, budget: budget}
	a.classes = make([]slabClass, len(sizes))
	for i, s := range sizes {
		a.classes[i] = slabClass{chunkSize: s, perPage: PageSize / s}
	}
	return a
}

// classFor returns the index of the smallest class whose chunk fits n bytes,
// or -1 when the item is larger than a page (memcached rejects those).
func (a *slabArena) classFor(n int) int {
	// Binary search over the sorted ladder.
	lo, hi := 0, len(a.sizes)-1
	if n > a.sizes[hi] {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if a.sizes[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// reserve acquires one chunk of class c. It returns true on success and
// false when the class is full and the arena budget cannot supply another
// page — the caller must then evict from class c and retry.
func (a *slabArena) reserve(c int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	cl := &a.classes[c]
	if cl.usedChunks < cl.totalChunks {
		cl.usedChunks++
		return true
	}
	if a.pagesBytes+PageSize > a.budget {
		return false
	}
	a.pagesBytes += PageSize
	cl.totalChunks += cl.perPage
	cl.usedChunks++
	return true
}

// release returns one chunk of class c to its free list.
func (a *slabArena) release(c int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cl := &a.classes[c]
	if cl.usedChunks == 0 {
		panic(fmt.Sprintf("memstore: release on empty class %d", c))
	}
	cl.usedChunks--
}

// ClassStats describes one slab class for the stats endpoint.
type ClassStats struct {
	ChunkSize   int
	TotalChunks int
	UsedChunks  int
}

func (a *slabArena) stats() []ClassStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ClassStats, 0, len(a.classes))
	for _, cl := range a.classes {
		if cl.totalChunks == 0 {
			continue
		}
		out = append(out, ClassStats{ChunkSize: cl.chunkSize, TotalChunks: cl.totalChunks, UsedChunks: cl.usedChunks})
	}
	return out
}
