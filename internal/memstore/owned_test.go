package memstore

import (
	"bytes"
	"sync"
	"testing"
)

// TestOwnedAliasing exercises the ownership-transfer contract (SetOwned /
// UpdateOwned): adopted slices are served back by Get, the same-slice
// short-circuit really is a no-op, and concurrent owned writers with readers
// stay race-free (this test is the -race coverage for the path).
func TestOwnedAliasing(t *testing.T) {
	s := New(Config{})

	v1 := []byte("first-owned-value")
	if err := s.SetOwned("k", v1, 7, 0); err != nil {
		t.Fatal(err)
	}
	it, ok := s.Get("k")
	if !ok || !bytes.Equal(it.Value, v1) || it.Flags != 7 {
		t.Fatalf("got %q flags %d", it.Value, it.Flags)
	}
	if &it.Value[0] != &v1[0] {
		t.Error("SetOwned copied the value instead of adopting it")
	}

	// Same-slice return short-circuits: CAS unchanged, no set counted.
	before := s.Stats()
	casBefore := it.CAS
	err := s.UpdateOwned("k", func(old []byte, ok bool) ([]byte, bool) { return old, true })
	if err != nil {
		t.Fatal(err)
	}
	it2, _ := s.Get("k")
	if it2.CAS != casBefore {
		t.Error("no-op update bumped CAS")
	}
	if after := s.Stats(); after.Sets != before.Sets {
		t.Error("no-op update counted as a set")
	}

	// Replacement via UpdateOwned adopts the new slice.
	v2 := []byte("second-owned-value")
	err = s.UpdateOwned("k", func(old []byte, ok bool) ([]byte, bool) { return v2, true })
	if err != nil {
		t.Fatal(err)
	}
	it3, _ := s.Get("k")
	if &it3.Value[0] != &v2[0] {
		t.Error("UpdateOwned copied the value instead of adopting it")
	}

	// Concurrent owned writers and readers: values are replaced, never
	// mutated, so readers always observe a complete value.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				buf := bytes.Repeat([]byte{byte('a' + w)}, 32)
				if err := s.SetOwned("race", buf, 0, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if it, ok := s.Get("race"); ok {
					c := it.Value[0]
					for _, b := range it.Value {
						if b != c {
							t.Error("torn value observed")
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
