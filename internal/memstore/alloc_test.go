//go:build !race

package memstore

// Allocation budgets for the hot path. These pin the zero-copy work so a
// later change cannot silently regress it: Get and the owned write paths
// must stay allocation-free, and an unowned Set pays exactly its one
// defensive copy. Excluded under -race because instrumentation adds
// allocations; the aliasing semantics themselves are covered by
// TestOwnedAliasing (which does run under -race).

import "testing"

func TestAllocBudgets(t *testing.T) {
	s := New(Config{})
	key := "alloc/budget/key"
	val := make([]byte, 64)
	if err := s.Set(key, val, 0, 0); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		if _, ok := s.Get(key); !ok {
			t.Fatal("missing")
		}
	}); n > 0 {
		t.Errorf("Get allocates %.1f/op, want 0", n)
	}

	// Same-class overwrite: exactly the one defensive copy.
	if n := testing.AllocsPerRun(200, func() {
		if err := s.Set(key, val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("Set allocates %.1f/op, want <= 1", n)
	}

	// Ownership transfer: the caller's buffer is adopted, nothing is copied.
	owned := make([]byte, 64)
	if n := testing.AllocsPerRun(200, func() {
		if err := s.SetOwned(key, owned, 0, 0); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("SetOwned allocates %.1f/op, want 0", n)
	}

	// A rejected update (fn hands the old slice back) short-circuits to a
	// pure no-op.
	if n := testing.AllocsPerRun(200, func() {
		err := s.UpdateOwned(key, func(old []byte, ok bool) ([]byte, bool) {
			return old, true
		})
		if err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("UpdateOwned no-op allocates %.1f/op, want 0", n)
	}

	if st := s.Stats(); st.OwnedSets == 0 {
		t.Error("owned sets not counted")
	}
}
