package memstore

// hashTable is a chained hash table with incremental rehashing, modelled on
// memcached's assoc table: when the load factor crosses 1.5 the bucket array
// doubles and items migrate a few buckets per operation, so no single
// request pays the full rehash cost.

type item struct {
	key     string
	value   []byte
	flags   uint32
	expire  int64 // unix nanoseconds; 0 means no expiry
	cas     uint64
	class   int // slab class index
	hash    uint64
	hnext   *item // hash chain
	lruPrev *item
	lruNext *item
}

// size returns the byte footprint charged to the slab layer: key + value +
// a fixed per-item overhead approximating the metadata above.
func (it *item) size() int { return len(it.key) + len(it.value) + itemOverhead }

const itemOverhead = 56

type hashTable struct {
	buckets []*item
	// old is the pre-resize bucket array while a migration is in flight.
	old []*item
	// migrated counts how many old buckets have been drained.
	migrated int
	count    int
}

const (
	initialBuckets  = 1 << 10
	migrationStride = 16
)

func newHashTable() *hashTable {
	return &hashTable{buckets: make([]*item, initialBuckets)}
}

// lookup returns the item for key or nil.
func (h *hashTable) lookup(hash uint64, key string) *item {
	h.step()
	if h.old != nil {
		if it := scanChain(h.old[hash&uint64(len(h.old)-1)], hash, key); it != nil {
			return it
		}
	}
	return scanChain(h.buckets[hash&uint64(len(h.buckets)-1)], hash, key)
}

func scanChain(it *item, hash uint64, key string) *item {
	for ; it != nil; it = it.hnext {
		if it.hash == hash && it.key == key {
			return it
		}
	}
	return nil
}

// insert adds a new item; the caller guarantees the key is absent.
func (h *hashTable) insert(it *item) {
	h.step()
	b := it.hash & uint64(len(h.buckets)-1)
	it.hnext = h.buckets[b]
	h.buckets[b] = it
	h.count++
	if h.old == nil && h.count > len(h.buckets)*3/2 {
		h.beginResize()
	}
}

// remove unlinks the item for key and returns it, or nil when absent.
func (h *hashTable) remove(hash uint64, key string) *item {
	h.step()
	if h.old != nil {
		if it := removeFrom(h.old, hash, key); it != nil {
			h.count--
			return it
		}
	}
	if it := removeFrom(h.buckets, hash, key); it != nil {
		h.count--
		return it
	}
	return nil
}

func removeFrom(buckets []*item, hash uint64, key string) *item {
	b := hash & uint64(len(buckets)-1)
	var prev *item
	for it := buckets[b]; it != nil; it = it.hnext {
		if it.hash == hash && it.key == key {
			if prev == nil {
				buckets[b] = it.hnext
			} else {
				prev.hnext = it.hnext
			}
			it.hnext = nil
			return it
		}
		prev = it
	}
	return nil
}

func (h *hashTable) beginResize() {
	h.old = h.buckets
	h.buckets = make([]*item, len(h.old)*2)
	h.migrated = 0
}

// step migrates a few buckets of an in-flight resize.
func (h *hashTable) step() {
	if h.old == nil {
		return
	}
	for n := 0; n < migrationStride && h.migrated < len(h.old); n++ {
		it := h.old[h.migrated]
		for it != nil {
			next := it.hnext
			b := it.hash & uint64(len(h.buckets)-1)
			it.hnext = h.buckets[b]
			h.buckets[b] = it
			it = next
		}
		h.old[h.migrated] = nil
		h.migrated++
	}
	if h.migrated == len(h.old) {
		h.old = nil
	}
}

// forEach visits every item. The callback must not mutate the table.
func (h *hashTable) forEach(fn func(*item) bool) {
	if h.old != nil {
		for i := h.migrated; i < len(h.old); i++ {
			for it := h.old[i]; it != nil; it = it.hnext {
				if !fn(it) {
					return
				}
			}
		}
	}
	for _, head := range h.buckets {
		for it := head; it != nil; it = it.hnext {
			if !fn(it) {
				return
			}
		}
	}
}
