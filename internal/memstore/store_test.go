package memstore

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTest(limit int64) *Store {
	return New(Config{MemoryLimit: limit, Shards: 4})
}

func TestSetGet(t *testing.T) {
	s := newTest(0)
	if err := s.Set("k", []byte("v"), 7, 0); err != nil {
		t.Fatal(err)
	}
	it, ok := s.Get("k")
	if !ok || string(it.Value) != "v" || it.Flags != 7 {
		t.Fatalf("Get = %+v, %v", it, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestSetOverwrite(t *testing.T) {
	s := newTest(0)
	s.Set("k", []byte("v1"), 0, 0)
	s.Set("k", []byte("v2"), 0, 0)
	it, _ := s.Get("k")
	if string(it.Value) != "v2" {
		t.Fatalf("value = %q", it.Value)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestAddReplaceSemantics(t *testing.T) {
	s := newTest(0)
	if err := s.Replace("k", []byte("x"), 0, 0); err != ErrNotFound {
		t.Fatalf("Replace on absent = %v", err)
	}
	if err := s.Add("k", []byte("a"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("k", []byte("b"), 0, 0); err != ErrExists {
		t.Fatalf("Add on present = %v", err)
	}
	if err := s.Replace("k", []byte("c"), 0, 0); err != nil {
		t.Fatal(err)
	}
	it, _ := s.Get("k")
	if string(it.Value) != "c" {
		t.Fatalf("value = %q", it.Value)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := newTest(0)
	if err := s.CompareAndSwap("k", []byte("x"), 0, 0, 1); err != ErrNotFound {
		t.Fatalf("CAS on absent = %v", err)
	}
	s.Set("k", []byte("v1"), 0, 0)
	it, _ := s.Get("k")
	if err := s.CompareAndSwap("k", []byte("v2"), 0, 0, it.CAS); err != nil {
		t.Fatal(err)
	}
	// Old CAS token now stale.
	if err := s.CompareAndSwap("k", []byte("v3"), 0, 0, it.CAS); err != ErrCASMismatch {
		t.Fatalf("stale CAS = %v", err)
	}
	got, _ := s.Get("k")
	if string(got.Value) != "v2" {
		t.Fatalf("value = %q", got.Value)
	}
	st := s.Stats()
	if st.CASHits != 1 || st.CASMisses != 2 {
		t.Fatalf("cas stats = %d/%d", st.CASHits, st.CASMisses)
	}
}

func TestCASChangesOnEveryWrite(t *testing.T) {
	s := newTest(0)
	s.Set("k", []byte("a"), 0, 0)
	a, _ := s.Get("k")
	s.Set("k", []byte("b"), 0, 0)
	b, _ := s.Get("k")
	if a.CAS == b.CAS {
		t.Fatal("CAS did not change across writes")
	}
}

func TestDelete(t *testing.T) {
	s := newTest(0)
	s.Set("k", []byte("v"), 0, 0)
	if !s.Delete("k") {
		t.Fatal("delete reported absent")
	}
	if s.Delete("k") {
		t.Fatal("second delete reported present")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key readable")
	}
	if s.Len() != 0 || s.BytesUsed() != 0 {
		t.Fatalf("Len=%d Bytes=%d after delete", s.Len(), s.BytesUsed())
	}
}

func TestTTLExpiry(t *testing.T) {
	var now int64 = 1000
	s := New(Config{Shards: 1, Now: func() int64 { return now }})
	s.Set("k", []byte("v"), 0, time.Duration(50))
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh key missing")
	}
	now = 1051
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired key readable")
	}
	if st := s.Stats(); st.Expired == 0 {
		t.Fatal("expiry not counted")
	}
}

func TestTouchExtendsTTL(t *testing.T) {
	var now int64 = 0
	s := New(Config{Shards: 1, Now: func() int64 { return now }})
	s.Set("k", []byte("v"), 0, time.Duration(100))
	now = 90
	if !s.Touch("k", time.Duration(100)) {
		t.Fatal("touch failed")
	}
	now = 150
	if _, ok := s.Get("k"); !ok {
		t.Fatal("touched key expired early")
	}
	now = 191
	if _, ok := s.Get("k"); ok {
		t.Fatal("key outlived touched TTL")
	}
	if s.Touch("gone", time.Duration(10)) {
		t.Fatal("touch on absent key succeeded")
	}
}

func TestSetOnExpiredKeyActsAsInsert(t *testing.T) {
	var now int64 = 0
	s := New(Config{Shards: 1, Now: func() int64 { return now }})
	s.Set("k", []byte("v"), 0, time.Duration(10))
	now = 11
	if err := s.Add("k", []byte("w"), 0, 0); err != nil {
		t.Fatalf("Add after expiry = %v", err)
	}
	it, ok := s.Get("k")
	if !ok || string(it.Value) != "w" {
		t.Fatalf("value = %q, %v", it.Value, ok)
	}
}

func TestUpdateInsertModifyDelete(t *testing.T) {
	s := newTest(0)
	// Insert via Update.
	err := s.Update("k", func(old []byte, ok bool) ([]byte, bool) {
		if ok {
			t.Fatal("unexpected existing value")
		}
		return []byte("v1"), true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Modify.
	err = s.Update("k", func(old []byte, ok bool) ([]byte, bool) {
		if !ok || string(old) != "v1" {
			t.Fatalf("old = %q, %v", old, ok)
		}
		return append(append([]byte(nil), old...), '2'), true
	})
	if err != nil {
		t.Fatal(err)
	}
	it, _ := s.Get("k")
	if string(it.Value) != "v12" {
		t.Fatalf("value = %q", it.Value)
	}
	// Delete via keep=false.
	if err := s.Update("k", func([]byte, bool) ([]byte, bool) { return nil, false }); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("key survived Update delete")
	}
	// Delete of absent key is a no-op.
	if err := s.Update("k", func([]byte, bool) ([]byte, bool) { return nil, false }); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateGrowsAcrossSlabClasses(t *testing.T) {
	s := newTest(0)
	s.Set("k", []byte("small"), 3, 0)
	big := make([]byte, 4096)
	if err := s.Update("k", func([]byte, bool) ([]byte, bool) { return big, true }); err != nil {
		t.Fatal(err)
	}
	it, ok := s.Get("k")
	if !ok || len(it.Value) != 4096 {
		t.Fatalf("len = %d, ok=%v", len(it.Value), ok)
	}
	if it.Flags != 3 {
		t.Fatal("flags lost across class migration")
	}
}

func TestTooLargeRejected(t *testing.T) {
	s := newTest(0)
	if err := s.Set("k", make([]byte, PageSize+1), 0, 0); err != ErrTooLarge {
		t.Fatalf("oversized set = %v", err)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	// One shard with a budget of exactly one page; small equal-size items
	// land in one class so the LRU within the class decides eviction.
	s := New(Config{MemoryLimit: PageSize, Shards: 1})
	val := make([]byte, 80) // class fits (80 + key + overhead)
	perPage := PageSize / chunkClasses()[newSlabArena(PageSize).classFor(80+8+itemOverhead)]
	n := perPage + 10
	for i := 0; i < n; i++ {
		if err := s.Set(fmt.Sprintf("key-%04d", i), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != uint64(n-perPage) {
		t.Fatalf("evictions = %d, want %d", st.Evictions, n-perPage)
	}
	// The oldest keys were evicted; the newest remain.
	if _, ok := s.Get("key-0000"); ok {
		t.Fatal("oldest key survived")
	}
	if _, ok := s.Get(fmt.Sprintf("key-%04d", n-1)); !ok {
		t.Fatal("newest key evicted")
	}
}

func TestEvictionRespectsRecentUse(t *testing.T) {
	s := New(Config{MemoryLimit: PageSize, Shards: 1})
	val := make([]byte, 80)
	perPage := PageSize / chunkClasses()[newSlabArena(PageSize).classFor(80+8+itemOverhead)]
	for i := 0; i < perPage; i++ {
		s.Set(fmt.Sprintf("key-%04d", i), val, 0, 0)
	}
	// Touch key-0000 so it becomes MRU, then overflow by one.
	if _, ok := s.Get("key-0000"); !ok {
		t.Fatal("setup failed")
	}
	s.Set("overflow", val, 0, 0)
	if _, ok := s.Get("key-0000"); !ok {
		t.Fatal("recently used key was evicted")
	}
	if _, ok := s.Get("key-0001"); ok {
		t.Fatal("LRU key survived overflow")
	}
}

func TestFlushAll(t *testing.T) {
	s := newTest(0)
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, 0)
	}
	s.FlushAll()
	if s.Len() != 0 || s.BytesUsed() != 0 {
		t.Fatalf("after flush: Len=%d Bytes=%d", s.Len(), s.BytesUsed())
	}
	if _, ok := s.Get("k0"); ok {
		t.Fatal("flushed key readable")
	}
	// Store remains usable.
	if err := s.Set("new", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRangeVisitsLiveItems(t *testing.T) {
	var now int64 = 0
	s := New(Config{Shards: 4, Now: func() int64 { return now }})
	for i := 0; i < 50; i++ {
		s.Set(fmt.Sprintf("k%02d", i), []byte{byte(i)}, 0, 0)
	}
	s.Set("dying", []byte("x"), 0, time.Duration(5))
	now = 6
	seen := map[string]bool{}
	s.Range(func(key string, it Item) bool {
		seen[key] = true
		return true
	})
	if len(seen) != 50 {
		t.Fatalf("visited %d items, want 50", len(seen))
	}
	if seen["dying"] {
		t.Fatal("expired item visited")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := newTest(0)
	for i := 0; i < 50; i++ {
		s.Set(fmt.Sprintf("k%02d", i), []byte("v"), 0, 0)
	}
	n := 0
	s.Range(func(string, Item) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
}

func TestStatsCounters(t *testing.T) {
	s := newTest(0)
	s.Set("a", []byte("1"), 0, 0)
	s.Get("a")
	s.Get("b")
	s.Delete("a")
	st := s.Stats()
	if st.Sets != 1 || st.Hits != 1 || st.Misses != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BudgetBytes != 64<<20 {
		t.Fatalf("budget = %d", st.BudgetBytes)
	}
}

func TestSlabClassFor(t *testing.T) {
	a := newSlabArena(PageSize)
	if c := a.classFor(1); c != 0 {
		t.Fatalf("classFor(1) = %d", c)
	}
	if c := a.classFor(minChunk); c != 0 {
		t.Fatalf("classFor(min) = %d", c)
	}
	if c := a.classFor(PageSize); c != len(a.sizes)-1 {
		t.Fatalf("classFor(page) = %d", c)
	}
	if c := a.classFor(PageSize + 1); c != -1 {
		t.Fatalf("classFor(page+1) = %d", c)
	}
	// Every size maps to the smallest class that fits.
	for n := 1; n <= PageSize; n += 911 {
		c := a.classFor(n)
		if a.sizes[c] < n {
			t.Fatalf("class %d (%d) too small for %d", c, a.sizes[c], n)
		}
		if c > 0 && a.sizes[c-1] >= n {
			t.Fatalf("class %d not minimal for %d", c, n)
		}
	}
}

func TestSlabClassLadderMonotone(t *testing.T) {
	sizes := chunkClasses()
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("ladder not strictly increasing at %d: %d then %d", i, sizes[i-1], sizes[i])
		}
		if sizes[i]%8 != 0 {
			t.Fatalf("size %d not 8-aligned", sizes[i])
		}
	}
	if sizes[len(sizes)-1] != PageSize {
		t.Fatal("ladder does not end at page size")
	}
}

func TestSlabReserveRelease(t *testing.T) {
	a := newSlabArena(PageSize) // exactly one page
	c := a.classFor(100)
	per := a.classes[c].perPage
	for i := 0; i < per; i++ {
		if !a.reserve(c) {
			t.Fatalf("reserve %d/%d failed", i, per)
		}
	}
	if a.reserve(c) {
		t.Fatal("reserve beyond budget succeeded")
	}
	a.release(c)
	if !a.reserve(c) {
		t.Fatal("reserve after release failed")
	}
}

func TestHashTableResizeKeepsItems(t *testing.T) {
	h := newHashTable()
	const n = 20000 // forces several resizes
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		h.insert(&item{key: key, hash: hashKey(key)})
	}
	if h.count != n {
		t.Fatalf("count = %d", h.count)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if h.lookup(hashKey(key), key) == nil {
			t.Fatalf("key %q lost after resize", key)
		}
	}
	// Remove half, confirm the rest.
	for i := 0; i < n; i += 2 {
		key := fmt.Sprintf("key-%d", i)
		if h.remove(hashKey(key), key) == nil {
			t.Fatalf("remove %q failed", key)
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		got := h.lookup(hashKey(key), key)
		if (i%2 == 0) != (got == nil) {
			t.Fatalf("key %q presence wrong after removals", key)
		}
	}
}

func TestStoreModelProperty(t *testing.T) {
	// Model-based property test: a sequence of random ops applied to the
	// Store and to a plain map must agree (no TTLs, generous memory so no
	// evictions).
	type op struct {
		Kind uint8
		Key  uint8
		Val  []byte
	}
	f := func(ops []op) bool {
		s := New(Config{MemoryLimit: 256 << 20, Shards: 2})
		model := map[string][]byte{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%32)
			switch o.Kind % 4 {
			case 0: // set
				if len(o.Val) > 1<<16 {
					continue
				}
				if err := s.Set(key, o.Val, 0, 0); err != nil {
					return false
				}
				model[key] = append([]byte(nil), o.Val...)
			case 1: // get
				it, ok := s.Get(key)
				want, wok := model[key]
				if ok != wok {
					return false
				}
				if ok && string(it.Value) != string(want) {
					return false
				}
			case 2: // delete
				got := s.Delete(key)
				_, want := model[key]
				if got != want {
					return false
				}
				delete(model, key)
			case 3: // update (append a byte)
				err := s.Update(key, func(old []byte, ok bool) ([]byte, bool) {
					return append(append([]byte(nil), old...), 0x7), true
				})
				if err != nil {
					return false
				}
				model[key] = append(model[key], 0x7)
			}
		}
		if s.Len() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	s := New(Config{MemoryLimit: 16 << 20, Shards: 8})
	const workers = 8
	const per = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("k%d", (w*per+i)%500)
				switch i % 5 {
				case 0, 1:
					s.Set(key, []byte(key), 0, 0)
				case 2:
					s.Get(key)
				case 3:
					s.Update(key, func(old []byte, ok bool) ([]byte, bool) {
						return append(append([]byte(nil), old...), byte(i)), true
					})
				case 4:
					s.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
	// Post-condition: store is still coherent.
	n := 0
	s.Range(func(string, Item) bool { n++; return true })
	if n != s.Len() {
		t.Fatalf("Range saw %d items, Len = %d", n, s.Len())
	}
}

func TestBytesAccountingInvariant(t *testing.T) {
	s := New(Config{MemoryLimit: 32 << 20, Shards: 2})
	keys := map[string]int{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%03d", i%100)
		val := make([]byte, (i*37)%2048)
		s.Set(key, val, 0, 0)
		keys[key] = len(key) + len(val) + itemOverhead
	}
	var want int64
	for _, sz := range keys {
		want += int64(sz)
	}
	if got := s.BytesUsed(); got != want {
		t.Fatalf("BytesUsed = %d, want %d", got, want)
	}
}

func BenchmarkStoreSet(b *testing.B) {
	s := New(Config{MemoryLimit: 256 << 20})
	val := make([]byte, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(fmt.Sprintf("test-%016d", i%100000), val, 0, 0)
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := New(Config{MemoryLimit: 256 << 20})
	val := make([]byte, 20)
	for i := 0; i < 100000; i++ {
		s.Set(fmt.Sprintf("test-%016d", i), val, 0, 0)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("test-%016d", i%100000))
	}
}

func BenchmarkStoreGetParallel(b *testing.B) {
	s := New(Config{MemoryLimit: 256 << 20, Shards: 32})
	val := make([]byte, 20)
	for i := 0; i < 100000; i++ {
		s.Set(fmt.Sprintf("test-%016d", i), val, 0, 0)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Get(fmt.Sprintf("test-%016d", i%100000))
			i++
		}
	})
}

func TestManySizeClassesWithinBudget(t *testing.T) {
	// Regression: with per-shard arenas, a workload whose rows grow
	// through many slab classes exhausted the per-shard page budget and
	// returned ErrOutOfMemory long before the store was full. The global
	// arena must absorb ~40 distinct classes within a 64 MiB budget.
	s := New(Config{MemoryLimit: 64 << 20, Shards: 16})
	sizes := chunkClasses()
	for i, size := range sizes {
		if size > 512<<10 {
			break // stay well under the budget in total
		}
		val := make([]byte, size-8-itemOverhead-10)
		if err := s.Set(fmt.Sprintf("class-%02d", i), val, 0, 0); err != nil {
			t.Fatalf("class %d (%d bytes): %v", i, size, err)
		}
	}
	// Everything is readable.
	for i, size := range sizes {
		if size > 512<<10 {
			break
		}
		if _, ok := s.Get(fmt.Sprintf("class-%02d", i)); !ok {
			t.Fatalf("class %d lost", i)
		}
	}
}

func TestGrowingValueMigratesClassesWithoutLeak(t *testing.T) {
	// A single hot key rewritten with growing values walks the class
	// ladder; chunks of abandoned classes must be released (usedChunks
	// returns to zero), even though pages are never returned.
	s := New(Config{MemoryLimit: 32 << 20, Shards: 1})
	for size := 16; size <= 64<<10; size *= 2 {
		if err := s.Set("grow", make([]byte, size), 0, 0); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
	used := 0
	for _, cs := range s.SlabStats() {
		used += cs.UsedChunks
	}
	if used != 1 {
		t.Fatalf("used chunks = %d, want exactly 1 (the final value)", used)
	}
}

func BenchmarkStoreSetOwned(b *testing.B) {
	s := New(Config{MemoryLimit: 256 << 20})
	val := make([]byte, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SetOwned(fmt.Sprintf("test-%016d", i%100000), val, 0, 0)
	}
}
