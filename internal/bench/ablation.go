package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"sedna/internal/coord"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/netsim"
	"sedna/internal/quorum"
	"sedna/internal/ring"
	"sedna/internal/trigger"
	"sedna/internal/workload"
)

// Table is a small result table for the ablation experiments (E4/E5 in
// DESIGN.md), the quantified version of the paper's Table I.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Render formats the table as TSV with a title line.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Name)
	b.WriteString(strings.Join(t.Header, "\t") + "\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t") + "\n")
	}
	return b.String()
}

// RunQuorumAblation measures per-op write and read latency under different
// quorum configurations on the same cluster size: the cost of the paper's
// R+W>N consistency versus weaker and stronger settings.
func RunQuorumAblation(nodes, ops int, profile netsim.Profile, seed int64) (Table, error) {
	if nodes <= 0 {
		nodes = 5
	}
	if ops <= 0 {
		ops = 2000
	}
	if profile == (netsim.Profile{}) {
		profile = netsim.GigabitLAN()
	}
	configs := []quorum.Config{
		{N: 1, R: 1, W: 1, Timeout: 2 * time.Second},
		{N: 3, R: 1, W: 3, Timeout: 2 * time.Second},
		{N: 3, R: 2, W: 2, Timeout: 2 * time.Second}, // the paper's choice
		{N: 3, R: 3, W: 2, Timeout: 2 * time.Second},
	}
	table := Table{
		Name:   "quorum ablation: per-op latency by N/R/W",
		Header: []string{"config", "write-us/op", "read-us/op"},
	}
	ctx := context.Background()
	for ci, qc := range configs {
		c, err := NewCluster(ClusterConfig{
			Nodes:       nodes,
			Quorum:      qc,
			Profile:     profile,
			Seed:        seed + int64(ci),
			MemoryLimit: 128 << 20,
		})
		if err != nil {
			return table, err
		}
		if err := c.WaitConverged(nodes, 30*time.Second); err != nil {
			c.Close()
			return table, err
		}
		cl, err := c.Client()
		if err != nil {
			c.Close()
			return table, err
		}
		gen := workload.NewGenerator(workload.Spec{Keys: ops})
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := cl.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
				c.Close()
				return table, err
			}
		}
		writeUs := float64(time.Since(start).Microseconds()) / float64(ops)
		start = time.Now()
		for i := 0; i < ops; i++ {
			if _, _, err := cl.ReadLatest(ctx, gen.Key(i)); err != nil {
				c.Close()
				return table, err
			}
		}
		readUs := float64(time.Since(start).Microseconds()) / float64(ops)
		c.Close()
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("N%d/R%d/W%d", qc.N, qc.R, qc.W),
			fmt.Sprintf("%.1f", writeUs),
			fmt.Sprintf("%.1f", readUs),
		})
	}
	return table, nil
}

// RunCoordCacheAblation quantifies §III-E: reads of coordination state with
// and without the adaptive lease cache, under background churn. The cached
// column shows why "a ZooKeeper like service will not obstruct Sedna's
// read and write efficiency".
func RunCoordCacheAblation(reads int, profile netsim.Profile, seed int64) (Table, error) {
	if reads <= 0 {
		reads = 5000
	}
	if profile == (netsim.Profile{}) {
		profile = netsim.GigabitLAN()
	}
	net := netsim.NewNetwork(profile, seed)
	addrs := []string{"coord-0", "coord-1", "coord-2"}
	var servers []*coord.Server
	for i := range addrs {
		s := coord.NewServer(coord.ServerConfig{
			ID:              i,
			Members:         addrs,
			Transport:       net.Endpoint(addrs[i]),
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 120 * time.Millisecond,
			RPCTimeout:      80 * time.Millisecond,
		})
		if err := s.Start(); err != nil {
			return Table{}, err
		}
		servers = append(servers, s)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := false
		for _, s := range servers {
			if s.IsLeader() {
				ok = true
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return Table{}, fmt.Errorf("bench: no coordination leader")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cli, err := coord.Dial(coord.ClientConfig{
		Servers:   addrs,
		Caller:    net.Endpoint("abl-client"),
		NoSession: true,
	})
	if err != nil {
		return Table{}, err
	}
	defer cli.Close()
	if _, err := cli.Create("/ring", []byte("assignment-blob"), coord.CreateOpts{}); err != nil {
		return Table{}, err
	}
	cached, err := coord.NewCachedClient(cli, coord.CacheConfig{InitialLease: 100 * time.Millisecond})
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Name:   "coordination read ablation: direct vs lease cache",
		Header: []string{"mode", "reads", "total-ms", "us/read"},
	}
	measure := func(mode string, read func() error) error {
		start := time.Now()
		for i := 0; i < reads; i++ {
			if err := read(); err != nil {
				return err
			}
		}
		total := time.Since(start)
		table.Rows = append(table.Rows, []string{
			mode,
			fmt.Sprintf("%d", reads),
			fmt.Sprintf("%.1f", ms(total)),
			fmt.Sprintf("%.2f", float64(total.Microseconds())/float64(reads)),
		})
		return nil
	}
	if err := measure("direct", func() error {
		_, _, err := cli.Get("/ring")
		return err
	}); err != nil {
		return table, err
	}
	if err := measure("cached", func() error {
		_, _, err := cached.Get("/ring")
		return err
	}); err != nil {
		return table, err
	}
	st := cached.Stats()
	table.Rows = append(table.Rows, []string{
		"cached-stats",
		fmt.Sprintf("hits=%d", st.Hits),
		fmt.Sprintf("misses=%d", st.Misses),
		fmt.Sprintf("refreshes=%d", st.Refreshes),
	})
	return table, nil
}

// RunLeaseAdaptationAblation traces the adaptive lease (§III-E: halve under
// churn, double when quiet) through a churn phase and a quiet phase.
func RunLeaseAdaptationAblation(seed int64) (Table, error) {
	net := netsim.NewNetwork(netsim.Loopback(), seed)
	addr := "coord-solo"
	s := coord.NewServer(coord.ServerConfig{
		ID:              0,
		Members:         []string{addr},
		Transport:       net.Endpoint(addr),
		HeartbeatEvery:  10 * time.Millisecond,
		ElectionTimeout: 60 * time.Millisecond,
		RPCTimeout:      40 * time.Millisecond,
	})
	if err := s.Start(); err != nil {
		return Table{}, err
	}
	defer s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !s.IsLeader() {
		if time.Now().After(deadline) {
			return Table{}, fmt.Errorf("bench: no leader")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cli, err := coord.Dial(coord.ClientConfig{Servers: []string{addr}, Caller: net.Endpoint("lease-cli"), NoSession: true})
	if err != nil {
		return Table{}, err
	}
	defer cli.Close()
	cached, err := coord.NewCachedClient(cli, coord.CacheConfig{
		InitialLease: 80 * time.Millisecond,
		MinLease:     10 * time.Millisecond,
		MaxLease:     640 * time.Millisecond,
	})
	if err != nil {
		return Table{}, err
	}

	table := Table{
		Name:   "lease adaptation: churn halves, quiet doubles",
		Header: []string{"phase", "round", "lease-ms"},
	}
	// Churn phase: many znode changes per lease window.
	for round := 0; round < 4; round++ {
		for i := 0; i < 6; i++ {
			cli.Create(fmt.Sprintf("/churn-%d-%d", round, i), nil, coord.CreateOpts{})
		}
		time.Sleep(cached.Lease() + 5*time.Millisecond)
		cached.ForceRefresh()
		table.Rows = append(table.Rows, []string{"churn", fmt.Sprintf("%d", round), fmt.Sprintf("%.0f", float64(cached.Lease().Microseconds())/1000)})
	}
	// Quiet phase: no changes.
	for round := 0; round < 5; round++ {
		time.Sleep(cached.Lease() + 5*time.Millisecond)
		cached.ForceRefresh()
		table.Rows = append(table.Rows, []string{"quiet", fmt.Sprintf("%d", round), fmt.Sprintf("%.0f", float64(cached.Lease().Microseconds())/1000)})
	}
	return table, nil
}

// RunFlowControlAblation quantifies §IV-B: action firings for a burst of
// updates with flow control nearly off versus the default interval. The
// bounded column is the ripple-effect suppression at work.
func RunFlowControlAblation(burst int) (Table, error) {
	if burst <= 0 {
		burst = 500
	}
	table := Table{
		Name:   "trigger flow control: firings for one hot key",
		Header: []string{"interval", "updates", "firings", "coalesced"},
	}
	for _, interval := range []time.Duration{time.Millisecond, 100 * time.Millisecond} {
		src := &burstSource{}
		eng, err := trigger.NewEngine(trigger.Config{
			Source:          src,
			ScanEvery:       time.Millisecond,
			DefaultInterval: interval,
			Workers:         2,
		})
		if err != nil {
			return table, err
		}
		eng.Start()
		_, err = eng.Register(trigger.Job{
			Name:  "hot",
			Hooks: []trigger.Hook{trigger.KeyHook(kv.Join("d", "t", "hot"))},
			Action: trigger.ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *trigger.Result) error {
				return nil
			}),
		})
		if err != nil {
			eng.Close()
			return table, err
		}
		for i := 0; i < burst; i++ {
			src.add(kv.Join("d", "t", "hot"), fmt.Sprintf("v%d", i), int64(i+1))
			time.Sleep(200 * time.Microsecond)
		}
		time.Sleep(3 * interval)
		st := eng.Stats()
		eng.Close()
		table.Rows = append(table.Rows, []string{
			interval.String(),
			fmt.Sprintf("%d", burst),
			fmt.Sprintf("%d", st.Fired),
			fmt.Sprintf("%d", st.Coalesced),
		})
	}
	return table, nil
}

// RunVNodeBalanceAblation quantifies §III-B's virtual-node strategy: the
// primary-ownership spread after incremental joins, by vnodes-per-node.
// More vnodes buy smoother balance at the cost of bigger assignment state.
func RunVNodeBalanceAblation(nodes int) (Table, error) {
	if nodes <= 0 {
		nodes = 9
	}
	table := Table{
		Name:   "vnode balance: primary spread after incremental joins",
		Header: []string{"vnodes/node", "total-vnodes", "min-primaries", "max-primaries", "spread-pct", "state-bytes"},
	}
	for _, per := range []int{10, 50, 100, 400} {
		total := per * nodes
		tb := ring.NewTable(total, 3)
		for i := 0; i < nodes; i++ {
			tb.AddNode(ring.NodeID(fmt.Sprintf("n%d", i)))
		}
		snap := tb.Snapshot()
		min, max := total, 0
		for i := 0; i < nodes; i++ {
			n := len(snap.PrimaryVNodesOf(ring.NodeID(fmt.Sprintf("n%d", i))))
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		spread := 0.0
		if min > 0 {
			spread = 100 * float64(max-min) / float64(min)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", per),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", min),
			fmt.Sprintf("%d", max),
			fmt.Sprintf("%.1f", spread),
			fmt.Sprintf("%d", len(ring.EncodeRing(snap))),
		})
	}
	return table, nil
}

// burstSource is a minimal trigger.Source for the flow-control ablation.
type burstSource struct {
	mu    sync.Mutex
	rows  map[kv.Key]*kv.Row
	dirty []kv.Key
}

func (s *burstSource) add(key kv.Key, val string, wall int64) {
	s.mu.Lock()
	if s.rows == nil {
		s.rows = map[kv.Key]*kv.Row{}
	}
	row := s.rows[key]
	if row == nil {
		row = &kv.Row{}
		s.rows[key] = row
	}
	row.ApplyLatest(kv.Versioned{Value: []byte(val), TS: kv.Timestamp{Wall: wall}, Source: "b"})
	s.dirty = append(s.dirty, key)
	s.mu.Unlock()
}

// ScanDirty implements trigger.Source.
func (s *burstSource) ScanDirty(limit int, fn func(kv.Key, *kv.Row)) int {
	s.mu.Lock()
	batch := s.dirty
	if len(batch) > limit {
		batch = batch[:limit]
		s.dirty = s.dirty[limit:]
	} else {
		s.dirty = nil
	}
	rows := make([]*kv.Row, len(batch))
	for i, k := range batch {
		rows[i] = s.rows[k].Clone()
	}
	s.mu.Unlock()
	for i, k := range batch {
		fn(k, rows[i])
	}
	return len(batch)
}
