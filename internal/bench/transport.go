package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/transport"
)

// The transport figure (E13) answers the fan-in question directly at the
// RPC layer, with no cluster on top: how do the goroutine-per-request
// ("spawn") and staged pipelines behave as concurrent connections sweep
// from 100 to 10k, and what does saturation look like once offered load
// exceeds worker capacity? The host's file-descriptor ceiling usually
// cannot hold 10k client sockets AND 10k accepted sockets in one process,
// so large steps re-exec the binary as worker subprocesses that own the
// client side (see TransportWorkerMain); the server under test always runs
// in this process, where its goroutine count is sampled.

// TransportConfig parameterises the connection-scaling sweep.
type TransportConfig struct {
	// ConnSteps is the connection-count sweep; nil selects 100, 1000, 10000.
	ConnSteps []int
	// OpsPerConn is the closed-loop request count per connection; zero
	// selects 20.
	OpsPerConn int
	// Body is the request/response body size in bytes; zero selects 128.
	Body int
	// OverloadWorkers is the staged worker-pool size for the overload
	// phase; zero selects 4.
	OverloadWorkers int
	// OverloadQueue is the dispatch depth for the overload phase; zero
	// selects 128.
	OverloadQueue int
	// OverloadFactor scales offered concurrency relative to pipeline
	// capacity (workers+queue); zero selects 2.
	OverloadFactor int
	// OverloadOps is the per-connection op count in the overload phase;
	// zero selects 40.
	OverloadOps int
	// ServiceTime is the simulated handler cost in the overload phase;
	// zero selects 2ms.
	ServiceTime time.Duration
}

func (c *TransportConfig) defaults() {
	if len(c.ConnSteps) == 0 {
		c.ConnSteps = []int{100, 1000, 10000}
	}
	if c.OpsPerConn <= 0 {
		c.OpsPerConn = 20
	}
	if c.Body <= 0 {
		c.Body = 128
	}
	if c.OverloadWorkers <= 0 {
		c.OverloadWorkers = 4
	}
	if c.OverloadQueue <= 0 {
		c.OverloadQueue = 128
	}
	if c.OverloadFactor <= 0 {
		c.OverloadFactor = 2
	}
	if c.OverloadOps <= 0 {
		c.OverloadOps = 40
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 2 * time.Millisecond
	}
}

// TransportStep is one (mode, conns) point of the scaling sweep.
type TransportStep struct {
	Mode  string `json:"mode"`
	Conns int    `json:"conns"`
	Ops   int    `json:"ops"`
	// Errors counts failed calls; Subprocs is how many worker processes
	// carried the client side (0 = in-process).
	Errors   int     `json:"errors"`
	Subprocs int     `json:"subprocs"`
	Millis   float64 `json:"millis"`
	OpsPerS  float64 `json:"ops_per_s"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// GoroutinePeak is the highest server-side goroutine count sampled
	// during the step; for the staged mode GoroutineBound is the pipeline's
	// structural ceiling (accept+readers+workers+writers), which the peak
	// must stay under no matter how many requests are in flight.
	GoroutinePeak  int64 `json:"goroutine_peak"`
	GoroutineBound int64 `json:"goroutine_bound,omitempty"`
}

// TransportOverload is the saturation phase: offered load ~OverloadFactor x
// pipeline capacity against a deliberately small staged pipeline.
type TransportOverload struct {
	Mode        string  `json:"mode"`
	Conns       int     `json:"conns"`
	Ops         int     `json:"ops"`
	Served      int     `json:"served"`
	Sheds       int     `json:"sheds"`
	Errors      int     `json:"errors"`
	ServedP50Ms float64 `json:"served_p50_ms"`
	ServedP99Ms float64 `json:"served_p99_ms"`
	ShedP50Ms   float64 `json:"shed_p50_ms"`
	ShedP99Ms   float64 `json:"shed_p99_ms"`
	// BreakerTrips must stay 0: pushback is not a node death.
	BreakerTrips  int64 `json:"breaker_trips"`
	GoroutinePeak int64 `json:"goroutine_peak"`
}

// TransportReport is the BENCH_fig_transport.json artifact.
type TransportReport struct {
	Figure   string              `json:"figure"`
	Scaling  []TransportStep     `json:"scaling"`
	Overload []TransportOverload `json:"overload"`
}

// WriteTransportJSON writes the artifact.
func WriteTransportJSON(path string, rep TransportReport) error {
	rep.Figure = "transport"
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// benchStageConfig is the staged pipeline used for the scaling sweep: wide
// enough that a healthy sweep never sheds, so the comparison against spawn
// mode is apples-to-apples.
func benchStageConfig(spawn bool) transport.StageConfig {
	return transport.StageConfig{
		Spawn:         spawn,
		AcceptShards:  2,
		Workers:       256,
		DispatchDepth: 1 << 15,
		MaxConns:      1 << 17,
	}
}

// RunFigTransport runs the scaling sweep for both modes and the overload
// phase for the staged mode.
func RunFigTransport(cfg TransportConfig) (TransportReport, error) {
	cfg.defaults()
	var rep TransportReport
	raiseFDLimit()

	for _, conns := range cfg.ConnSteps {
		for _, mode := range []string{"spawn", "staged"} {
			// In-process steps are cheap and scheduler-noisy (the client
			// shares the host with the server under test), so run three
			// trials and pin the median by p99 — symmetrically for both
			// modes. Subprocess steps are one trial: dial-heavy, and their
			// headline metric is the goroutine bound, not the tail.
			trials := 1
			if fdBudgetFits(2*conns + 512) {
				trials = 3
			}
			var runs []TransportStep
			for t := 0; t < trials; t++ {
				step, err := runTransportStep(cfg, mode, conns)
				if err != nil {
					return rep, fmt.Errorf("%s@%d conns: %w", mode, conns, err)
				}
				runs = append(runs, step)
			}
			rep.Scaling = append(rep.Scaling, medianByP99(runs))
		}
	}

	ov, err := runTransportOverload(cfg)
	if err != nil {
		return rep, fmt.Errorf("overload: %w", err)
	}
	rep.Overload = append(rep.Overload, ov)
	return rep, nil
}

// medianByP99 picks the middle trial by p99 latency; the peak goroutine
// count is taken across all trials since the bound must hold for every run.
func medianByP99(runs []TransportStep) TransportStep {
	var peak int64
	for _, r := range runs {
		if r.GoroutinePeak > peak {
			peak = r.GoroutinePeak
		}
	}
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j].P99Ms < runs[j-1].P99Ms; j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}
	med := runs[len(runs)/2]
	med.GoroutinePeak = peak
	return med
}

// goroutineSampler polls the server-side goroutine count while a step runs.
type goroutineSampler struct {
	peak atomic.Int64
	stop chan struct{}
	done chan struct{}
}

func sampleGoroutines(tr *transport.TCPTransport) *goroutineSampler {
	s := &goroutineSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				if g := tr.ServerGoroutines(); g > s.peak.Load() {
					s.peak.Store(g)
				}
			}
		}
	}()
	return s
}

func (s *goroutineSampler) finish() int64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// opsForConns keeps every step long enough to measure steady state: small
// connection counts get proportionally more ops per connection so warmup
// (dial handshakes, cold buffer pools, scheduler ramp) stops dominating the
// percentiles, while the 10k step stays bounded.
func (c TransportConfig) opsForConns(conns int) int {
	ops := c.OpsPerConn
	if floor := 40000 / conns; floor > ops {
		ops = floor
	}
	return ops
}

func runTransportStep(cfg TransportConfig, mode string, conns int) (TransportStep, error) {
	ops := cfg.opsForConns(conns)
	step := TransportStep{Mode: mode, Conns: conns, Ops: conns * ops}
	stage := benchStageConfig(mode == "spawn")

	srv, err := transport.NewTCPListen("127.0.0.1:0")
	if err != nil {
		return step, err
	}
	defer srv.Close()
	srv.SetStages(stage)
	respBody := make([]byte, cfg.Body)
	if err := srv.Serve(func(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
		return transport.Message{Op: req.Op, Body: respBody}, nil
	}); err != nil {
		return step, err
	}
	if mode == "staged" {
		step.GoroutineBound = stage.GoroutineBound(conns)
	}

	// The client side needs one socket per connection and the server one
	// more: past the descriptor budget, client sockets move to worker
	// subprocesses.
	var lats []time.Duration
	var errs int
	sampler := sampleGoroutines(srv)
	start := time.Now()
	if fdBudgetFits(2*conns + 512) {
		lats, errs, err = runConnsInProcess(srv.Addr(), conns, ops, cfg.Body)
	} else {
		lats, errs, step.Subprocs, err = runConnsSubprocs(srv.Addr(), conns, ops, cfg.Body)
	}
	wall := time.Since(start)
	step.GoroutinePeak = sampler.finish()
	if err != nil {
		return step, err
	}
	step.Errors = errs
	step.Millis = float64(wall.Nanoseconds()) / 1e6
	if wall > 0 {
		step.OpsPerS = float64(len(lats)) / wall.Seconds()
	}
	step.P50Ms = percentileMs(lats, 0.50)
	step.P99Ms = percentileMs(lats, 0.99)
	return step, nil
}

// runConnsInProcess drives conns independent client connections (one
// TCPTransport each — the transport pools by address) closed-loop.
func runConnsInProcess(addr string, conns, ops, body int) ([]time.Duration, int, error) {
	clients := make([]*transport.TCPTransport, conns)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	// Establish every connection (bounded dial parallelism) before the
	// measured window so the sweep times steady-state RPCs, not dials.
	sem := make(chan struct{}, 64)
	var dialWG sync.WaitGroup
	var dialErr atomic.Value
	reqBody := make([]byte, body)
	for i := range clients {
		clients[i] = transport.NewTCP("")
		dialWG.Add(1)
		go func(c *transport.TCPTransport) {
			defer dialWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := c.Call(ctx, addr, transport.Message{Op: 1, Body: reqBody}); err != nil {
				dialErr.Store(err)
			}
		}(clients[i])
	}
	dialWG.Wait()
	if err, _ := dialErr.Load().(error); err != nil {
		return nil, 0, fmt.Errorf("warmup: %w", err)
	}

	lats := make([]time.Duration, 0, conns*ops)
	var mu sync.Mutex
	var errs atomic.Int64
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *transport.TCPTransport) {
			defer wg.Done()
			local := make([]time.Duration, 0, ops)
			for i := 0; i < ops; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				t0 := time.Now()
				_, err := c.Call(ctx, addr, transport.Message{Op: 1, Body: reqBody})
				cancel()
				if err != nil {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return lats, int(errs.Load()), nil
}

// Worker subprocess protocol: the parent re-execs itself with SEDNA_TW_*
// set; the child opens its share of the connections, prints READY, waits
// for GO on stdin (so every worker starts the measured window together),
// runs the closed loop and emits one JSON result object.
type twResult struct {
	LatUS  []int64 `json:"lat_us"`
	Errors int     `json:"errors"`
}

const twConnsPerProc = 2000

func runConnsSubprocs(addr string, conns, ops, body int) ([]time.Duration, int, int, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, 0, 0, err
	}
	type worker struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Reader
	}
	var workers []*worker
	defer func() {
		for _, w := range workers {
			if w.cmd.Process != nil {
				w.cmd.Process.Kill()
			}
			w.cmd.Wait()
		}
	}()
	for left := conns; left > 0; left -= twConnsPerProc {
		share := left
		if share > twConnsPerProc {
			share = twConnsPerProc
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"SEDNA_TW_ADDR="+addr,
			"SEDNA_TW_CONNS="+strconv.Itoa(share),
			"SEDNA_TW_OPS="+strconv.Itoa(ops),
			"SEDNA_TW_BODY="+strconv.Itoa(body),
		)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, 0, 0, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, 0, 0, err
		}
		if err := cmd.Start(); err != nil {
			return nil, 0, 0, err
		}
		workers = append(workers, &worker{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)})
	}
	// Wait for every worker to finish dialing, then release them together.
	for _, w := range workers {
		line, err := w.out.ReadString('\n')
		if err != nil || line != "READY\n" {
			return nil, 0, 0, fmt.Errorf("worker handshake: %q, %v", line, err)
		}
	}
	for _, w := range workers {
		if _, err := io.WriteString(w.stdin, "GO\n"); err != nil {
			return nil, 0, 0, err
		}
	}
	var lats []time.Duration
	var errs int
	for _, w := range workers {
		var res twResult
		if err := json.NewDecoder(w.out).Decode(&res); err != nil {
			return nil, 0, 0, fmt.Errorf("worker result: %w", err)
		}
		for _, us := range res.LatUS {
			lats = append(lats, time.Duration(us)*time.Microsecond)
		}
		errs += res.Errors
	}
	for _, w := range workers {
		w.stdin.Close()
		w.cmd.Wait()
		w.cmd.Process = nil
	}
	return lats, errs, len(workers), nil
}

// TransportWorkerMain is the child side of the subprocess protocol; the
// sedna-bench binary calls it (and exits) when SEDNA_TW_ADDR is set.
func TransportWorkerMain() {
	addr := os.Getenv("SEDNA_TW_ADDR")
	conns, _ := strconv.Atoi(os.Getenv("SEDNA_TW_CONNS"))
	ops, _ := strconv.Atoi(os.Getenv("SEDNA_TW_OPS"))
	body, _ := strconv.Atoi(os.Getenv("SEDNA_TW_BODY"))
	if addr == "" || conns <= 0 || ops <= 0 {
		fmt.Fprintln(os.Stderr, "transport worker: bad SEDNA_TW_* env")
		os.Exit(2)
	}
	raiseFDLimit()

	clients := make([]*transport.TCPTransport, conns)
	reqBody := make([]byte, body)
	sem := make(chan struct{}, 64)
	var dialWG sync.WaitGroup
	var dialFailed atomic.Bool
	for i := range clients {
		clients[i] = transport.NewTCP("")
		dialWG.Add(1)
		go func(c *transport.TCPTransport) {
			defer dialWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if _, err := c.Call(ctx, addr, transport.Message{Op: 1, Body: reqBody}); err != nil {
				fmt.Fprintf(os.Stderr, "transport worker: warmup: %v\n", err)
				dialFailed.Store(true)
			}
		}(clients[i])
	}
	dialWG.Wait()
	if dialFailed.Load() {
		os.Exit(1)
	}

	fmt.Println("READY")
	if line, err := bufio.NewReader(os.Stdin).ReadString('\n'); err != nil || line != "GO\n" {
		fmt.Fprintf(os.Stderr, "transport worker: no GO: %q, %v\n", line, err)
		os.Exit(1)
	}

	res := twResult{LatUS: make([]int64, 0, conns*ops)}
	var mu sync.Mutex
	var errs atomic.Int64
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *transport.TCPTransport) {
			defer wg.Done()
			local := make([]int64, 0, ops)
			for i := 0; i < ops; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				t0 := time.Now()
				_, err := c.Call(ctx, addr, transport.Message{Op: 1, Body: reqBody})
				cancel()
				if err != nil {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0).Microseconds())
			}
			mu.Lock()
			res.LatUS = append(res.LatUS, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	res.Errors = int(errs.Load())
	blob, _ := json.Marshal(res)
	os.Stdout.Write(append(blob, '\n'))
	for _, c := range clients {
		c.Close()
	}
	os.Exit(0)
}

// runTransportOverload saturates a deliberately small staged pipeline at
// ~OverloadFactor x its capacity and splits latencies into served vs shed.
// The paper-level claim: sheds come back faster than served ops (pushback
// in one writer hop), and none of them trip a breaker.
func runTransportOverload(cfg TransportConfig) (TransportOverload, error) {
	capacity := cfg.OverloadWorkers + cfg.OverloadQueue
	conns := cfg.OverloadFactor * capacity
	ov := TransportOverload{Mode: "staged", Conns: conns, Ops: conns * cfg.OverloadOps}

	srv, err := transport.NewTCPListen("127.0.0.1:0")
	if err != nil {
		return ov, err
	}
	defer srv.Close()
	srv.SetStages(transport.StageConfig{
		AcceptShards:  1,
		Readers:       1,
		Workers:       cfg.OverloadWorkers,
		DispatchDepth: cfg.OverloadQueue,
	})
	respBody := make([]byte, cfg.Body)
	if err := srv.Serve(func(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
		time.Sleep(cfg.ServiceTime) // simulated handler cost occupying a worker
		return transport.Message{Op: req.Op, Body: respBody}, nil
	}); err != nil {
		return ov, err
	}
	addr := srv.Addr()

	var trips atomic.Int64
	reqBody := make([]byte, cfg.Body)
	var mu sync.Mutex
	var served, sheds []time.Duration
	var wg sync.WaitGroup
	sampler := sampleGoroutines(srv)
	for i := 0; i < conns; i++ {
		cli := transport.NewTCP("")
		defer cli.Close()
		health := transport.NewHealthCaller(cli, transport.BreakerConfig{})
		health.OnStateChange = func(addr string, from, to transport.BreakerState) {
			if to == transport.BreakerOpen {
				trips.Add(1)
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			localServed := make([]time.Duration, 0, cfg.OverloadOps)
			localSheds := make([]time.Duration, 0, cfg.OverloadOps)
			var localErrs int
			for op := 0; op < cfg.OverloadOps; op++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				t0 := time.Now()
				_, err := health.Call(ctx, addr, transport.Message{Op: 1, Body: reqBody})
				cancel()
				d := time.Since(t0)
				switch {
				case err == nil:
					localServed = append(localServed, d)
				case errorsIsOverloaded(err):
					localSheds = append(localSheds, d)
				default:
					localErrs++
				}
			}
			mu.Lock()
			served = append(served, localServed...)
			sheds = append(sheds, localSheds...)
			ov.Errors += localErrs
			mu.Unlock()
		}()
	}
	wg.Wait()
	ov.GoroutinePeak = sampler.finish()
	ov.Served = len(served)
	ov.Sheds = len(sheds)
	ov.BreakerTrips = trips.Load()
	ov.ServedP50Ms = percentileMs(served, 0.50)
	ov.ServedP99Ms = percentileMs(served, 0.99)
	ov.ShedP50Ms = percentileMs(sheds, 0.50)
	ov.ShedP99Ms = percentileMs(sheds, 0.99)
	return ov, nil
}

func errorsIsOverloaded(err error) bool {
	return errors.Is(err, transport.ErrOverloaded)
}
