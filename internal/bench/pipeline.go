package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sedna/internal/kv"
	"sedna/internal/netsim"
	"sedna/internal/trigger"
	"sedna/internal/workload"
)

// RunPipelineBench quantifies the paper's §V headline: the interval between
// a message being crawled (step 1 of Fig. 6) and becoming searchable (step
// 7), which the paper budgets at "less than several minutes". It boots a
// cluster, installs an indexer trigger on every node, streams synthetic
// tweets and measures the crawl-to-searchable latency of a sample, plus
// ingest throughput.
func RunPipelineBench(tweets int, profile netsim.Profile, seed int64) (Table, error) {
	if tweets <= 0 {
		tweets = 200
	}
	if profile == (netsim.Profile{}) {
		profile = netsim.GigabitLAN()
	}
	c, err := NewCluster(ClusterConfig{
		Nodes:           3,
		Profile:         profile,
		Seed:            seed,
		MemoryLimit:     128 << 20,
		ScanEvery:       2 * time.Millisecond,
		TriggerInterval: 5 * time.Millisecond,
	})
	if err != nil {
		return Table{}, err
	}
	defer c.Close()
	if err := c.WaitConverged(3, 30*time.Second); err != nil {
		return Table{}, err
	}

	// Indexer: each node publishes its first-token postings via write_all
	// under its own source (the microblog example's scheme, condensed).
	type nodeIndex struct {
		mu       sync.Mutex
		postings map[string]map[string]bool
	}
	for _, srv := range c.Servers {
		srv := srv
		idx := &nodeIndex{postings: map[string]map[string]bool{}}
		nodeCli, err := c.Client()
		if err != nil {
			return Table{}, err
		}
		_, err = srv.Trigger().Register(trigger.Job{
			Name:  "bench-indexer",
			Hooks: []trigger.Hook{trigger.TableHook("social", "messages")},
			Action: trigger.ActionFunc(func(ctx context.Context, key kv.Key, values [][]byte, res *trigger.Result) error {
				parts := strings.SplitN(string(values[0]), " ", 2)
				term := parts[0]
				idx.mu.Lock()
				set := idx.postings[term]
				if set == nil {
					set = map[string]bool{}
					idx.postings[term] = set
				}
				var blob []byte
				if !set[key.Name()] {
					set[key.Name()] = true
					ids := make([]string, 0, len(set))
					for id := range set {
						ids = append(ids, id)
					}
					sort.Strings(ids)
					blob = []byte(strings.Join(ids, ","))
				}
				idx.mu.Unlock()
				if blob != nil {
					return nodeCli.WriteAll(ctx, kv.Join("search", "index", term), blob)
				}
				return nil
			}),
		})
		if err != nil {
			return Table{}, err
		}
	}

	crawler, err := c.Client()
	if err != nil {
		return Table{}, err
	}
	ctx := context.Background()
	stream := workload.NewTweetStream(20, seed)

	searchable := func(term, id string) bool {
		vals, err := crawler.ReadAll(ctx, kv.Join("search", "index", term))
		if err != nil {
			return false
		}
		for _, v := range vals {
			for _, got := range strings.Split(string(v.Data), ",") {
				if got == id {
					return true
				}
			}
		}
		return false
	}

	var latencies []time.Duration
	ingestStart := time.Now()
	for i := 0; i < tweets; i++ {
		tw := stream.Next()
		key := kv.Join("social", "messages", tw.ID)
		wrote := time.Now()
		if err := crawler.WriteAll(ctx, key, []byte(tw.Text)); err != nil {
			return Table{}, fmt.Errorf("crawl %d: %w", i, err)
		}
		// Sample every 10th tweet for the step-1-to-7 latency.
		if i%10 != 0 {
			continue
		}
		term := strings.SplitN(tw.Text, " ", 2)[0]
		deadline := time.Now().Add(30 * time.Second)
		for !searchable(term, tw.ID) {
			if time.Now().After(deadline) {
				return Table{}, fmt.Errorf("tweet %s never searchable", tw.ID)
			}
			time.Sleep(time.Millisecond)
		}
		latencies = append(latencies, time.Since(wrote))
	}
	ingest := time.Since(ingestStart)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	table := Table{
		Name:   "E6 realtime pipeline: crawl-to-searchable latency (paper budget: minutes)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"tweets", fmt.Sprintf("%d", tweets)},
			{"ingest-total-ms", fmt.Sprintf("%.1f", ms(ingest))},
			{"latency-p50-ms", fmt.Sprintf("%.1f", ms(pct(0.50)))},
			{"latency-p95-ms", fmt.Sprintf("%.1f", ms(pct(0.95)))},
			{"latency-max-ms", fmt.Sprintf("%.1f", ms(latencies[len(latencies)-1]))},
		},
	}
	return table, nil
}
