//go:build linux || darwin

package bench

import "syscall"

// raiseFDLimit lifts the soft file-descriptor limit to the hard limit so
// the connection sweep can hold its sockets; best-effort, errors ignored.
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}

// fdBudgetFits reports whether this process may open n more descriptors
// under its soft limit.
func fdBudgetFits(n int) bool {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return true
	}
	return uint64(n) <= rl.Cur
}
