package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"sedna/internal/kv"
	"sedna/internal/memstore"
	"sedna/internal/transport"
	"sedna/internal/wire"
)

// HotpathConfig parameterises the E8 micro-benchmark figure: per-op time and
// allocations on the memory hot path, with the copying path and its
// zero-copy/pooled replacement measured side by side.
type HotpathConfig struct {
	// Iters is the measured iteration count per benchmark (scaled by the
	// driver's -scale flag). Allocation counts use a capped subset.
	Iters int
	// ValueSize is the payload size; 512 B sits between the memcached-style
	// small-object regime and the row-blob regime.
	ValueSize int
}

func (c *HotpathConfig) defaults() {
	if c.Iters <= 0 {
		c.Iters = 200000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 512
	}
}

// hotpathCase is one measured operation; fn must perform exactly one op.
type hotpathCase struct {
	label string
	fn    func()
}

// measure times Iters runs of fn and counts steady-state allocations over a
// capped sample, returning both as one single-point series.
func measure(c hotpathCase, iters int) Series {
	// Warm pools, grow maps, and let lazily-sized scratch reach steady
	// state before either measurement.
	for i := 0; i < 100; i++ {
		c.fn()
	}
	allocIters := iters
	if allocIters > 2000 {
		allocIters = 2000
	}
	allocs := allocsPerRunSerial(allocIters, c.fn)
	start := time.Now()
	for i := 0; i < iters; i++ {
		c.fn()
	}
	elapsed := time.Since(start)
	return Series{Label: c.label, Points: []Point{{
		Ops:         iters,
		Millis:      float64(elapsed.Nanoseconds()) / 1e6,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: allocs,
	}}}
}

// allocsPerRunSerial mirrors testing.AllocsPerRun (mallocs delta per run)
// without importing package testing into non-test code.
func allocsPerRunSerial(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // one warm-up run, as testing.AllocsPerRun does
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// RunFigHotpath measures the hot-path memory discipline work (E8): for each
// layer it benchmarks the pre-existing copying path against the zero-copy or
// pooled path that the write/read pipeline now uses, plus one end-to-end
// pooled TCP RPC round trip. Every series is a single point carrying ns/op
// and allocs/op.
func RunFigHotpath(cfg HotpathConfig) ([]Series, error) {
	cfg.defaults()
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = byte(i)
	}

	var out []Series

	// memstore: read, copying write, ownership-transfer write.
	st := memstore.New(memstore.Config{})
	if err := st.Set("bench/key", value, 0, 0); err != nil {
		return nil, err
	}
	out = append(out, measure(hotpathCase{"memstore get", func() {
		if _, ok := st.Get("bench/key"); !ok {
			panic("missing key")
		}
	}}, cfg.Iters))
	out = append(out, measure(hotpathCase{"memstore set (copying)", func() {
		if err := st.Set("bench/key", value, 0, 0); err != nil {
			panic(err)
		}
	}}, cfg.Iters))
	owned := make([]byte, len(value))
	copy(owned, value)
	out = append(out, measure(hotpathCase{"memstore set (owned)", func() {
		if err := st.SetOwned("bench/key", owned, 0, 0); err != nil {
			panic(err)
		}
	}}, cfg.Iters))

	// kv codec: copying encode/decode vs scratch-reusing zero-copy forms.
	row := &kv.Row{}
	row.ApplyAll(kv.Versioned{Value: value, TS: kv.Timestamp{Wall: 10, Node: 1}, Source: "node-a"})
	row.ApplyAll(kv.Versioned{Value: value, TS: kv.Timestamp{Wall: 20, Node: 2}, Source: "node-b"})
	blob := kv.EncodeRow(row)
	out = append(out, measure(hotpathCase{"kv encode (fresh buffer)", func() {
		if len(kv.EncodeRow(row)) == 0 {
			panic("empty encode")
		}
	}}, cfg.Iters))
	scratch := make([]byte, 0, kv.EncodedRowSize(row))
	out = append(out, measure(hotpathCase{"kv encode (scratch append)", func() {
		scratch = kv.AppendRow(scratch[:0], row)
	}}, cfg.Iters))
	out = append(out, measure(hotpathCase{"kv decode (copying)", func() {
		if _, err := kv.DecodeRow(blob); err != nil {
			panic(err)
		}
	}}, cfg.Iters))
	var rowScratch kv.Row
	out = append(out, measure(hotpathCase{"kv decode (zero-copy into)", func() {
		if err := kv.DecodeRowInto(&rowScratch, blob); err != nil {
			panic(err)
		}
	}}, cfg.Iters))

	// wire: length-delimited bytes, copy vs view.
	var enc wire.Enc
	enc.Bytes(value)
	wbuf := enc.B
	var dec wire.Dec
	out = append(out, measure(hotpathCase{"wire bytes (copying)", func() {
		dec.B, dec.Off, dec.Err = wbuf, 0, nil
		if len(dec.Bytes()) != len(value) {
			panic("bad decode")
		}
	}}, cfg.Iters))
	out = append(out, measure(hotpathCase{"wire bytes (view)", func() {
		dec.B, dec.Off, dec.Err = wbuf, 0, nil
		if len(dec.BytesView()) != len(value) {
			panic("bad decode")
		}
	}}, cfg.Iters))

	// transport: one pooled-frame TCP RPC round trip over loopback. This
	// exercises the frame pool, the coalescing writer, and the handler-side
	// pooled read buffer end to end; the response blob comes straight from
	// the store the way readReplicaBlob serves it.
	srv, err := transport.NewTCPListen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	resp := kv.EncodeRow(row)
	go srv.Serve(func(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
		return transport.Message{Op: req.Op, Body: resp}, nil
	})
	cli := transport.NewTCP("")
	defer cli.Close()
	ctx := context.Background()
	addr := srv.Addr()
	rpcIters := cfg.Iters / 10
	if rpcIters < 10 {
		rpcIters = 10
	}
	out = append(out, measure(hotpathCase{"transport rpc round trip (pooled)", func() {
		m, err := cli.Call(ctx, addr, transport.Message{Op: 0x0101, Body: value})
		if err != nil {
			panic(err)
		}
		if len(m.Body) != len(resp) {
			panic(fmt.Sprintf("bad body: %d", len(m.Body)))
		}
	}}, rpcIters))

	return out, nil
}

// HotpathTSV renders the hotpath series as label, ns/op, allocs/op rows
// (the figure has one point per series, so the ops-sweep TSV shape does not
// fit).
func HotpathTSV(series []Series) string {
	s := "case\tns_per_op\tallocs_per_op\n"
	for _, se := range series {
		for _, p := range se.Points {
			s += fmt.Sprintf("%s\t%.1f\t%.2f\n", se.Label, p.NsPerOp, p.AllocsPerOp)
		}
	}
	return s
}
