package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"sedna/internal/core"
	"sedna/internal/netsim"
	"sedna/internal/obs"
	"sedna/internal/ring"
	"sedna/internal/workload"
)

// IntrospectConfig parameterises E11: the cost and fidelity of the workload
// introspection plane under a skewed stream.
type IntrospectConfig struct {
	// Nodes is the data-node count (default 3, the acceptance topology).
	Nodes int
	// Ops is the write count per phase (default 30000, scaled by -scale).
	Ops int
	// Keys is the distinct key count of the zipf(1.1) stream (default 2000).
	Keys int
	// Tenants shards the stream across that many datasets (default 4).
	Tenants int
	// Profile simulates the links; zero selects GigabitLAN.
	Profile netsim.Profile
	// Seed fixes the simulation and the zipf draw.
	Seed int64
}

func (c *IntrospectConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Ops <= 0 {
		c.Ops = 30000
	}
	if c.Keys <= 0 {
		c.Keys = 2000
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Profile == (netsim.Profile{}) {
		c.Profile = netsim.GigabitLAN()
	}
}

// IntrospectResult is the E11 artifact (BENCH_fig_introspect.json): the same
// zipf write stream measured with the introspection plane recording and with
// it disabled, plus the fidelity checks the ISSUE's acceptance criteria name.
type IntrospectResult struct {
	Ops     int `json:"ops"`
	Nodes   int `json:"nodes"`
	Keys    int `json:"keys"`
	Tenants int `json:"tenants"`
	// Enabled/Disabled throughput and client-side latency.
	OpsPerSecEnabled  float64 `json:"ops_per_sec_enabled"`
	OpsPerSecDisabled float64 `json:"ops_per_sec_disabled"`
	// OverheadPct is the throughput cost of recording: positive means the
	// enabled run was slower. The E11 target is < 5%.
	OverheadPct   float64 `json:"overhead_pct"`
	P50MsEnabled  float64 `json:"p50_ms_enabled"`
	P99MsEnabled  float64 `json:"p99_ms_enabled"`
	P50MsDisabled float64 `json:"p50_ms_disabled"`
	P99MsDisabled float64 `json:"p99_ms_disabled"`
	// HottestRankedFirst reports whether the cluster-merged top-K put the
	// stream's true hottest key (zipf rank 0) in first place.
	HottestRankedFirst bool `json:"hottest_ranked_first"`
	// ExemplarsTotal/Resolved count histogram-bucket exemplars across every
	// node and how many resolved to a retained trace in the same report.
	ExemplarsTotal    int `json:"exemplars_total"`
	ExemplarsResolved int `json:"exemplars_resolved"`
	// TopKeys and TenantRows summarise what the plane attributed.
	TopKeys    []obs.TopKEntry      `json:"top_keys"`
	TenantRows []obs.TenantSnapshot `json:"tenants_attributed"`
}

// RunFigIntrospect measures E11. One cluster serves both phases — first with
// the introspection plane recording (the default), then with every registry's
// plane disabled — so the comparison isolates the recording cost from cluster
// assembly noise. The enabled phase also grades fidelity: the merged hot-key
// ranking against the known zipf head, and exemplar→trace resolution.
func RunFigIntrospect(cfg IntrospectConfig) (*IntrospectResult, error) {
	cfg.defaults()
	cl, err := NewCluster(ClusterConfig{
		Nodes:       cfg.Nodes,
		Profile:     cfg.Profile,
		Seed:        cfg.Seed,
		MemoryLimit: 256 << 20,
		TenantRule:  "dataset",
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.WaitConverged(cfg.Nodes, 30*time.Second); err != nil {
		return nil, err
	}
	cli, reg, err := cl.ClientWithObs()
	if err != nil {
		return nil, err
	}
	reg.SetNode("bench-client")
	reg.SetTraceSampling(64) // sampled traces feed the exemplar check

	res := &IntrospectResult{Ops: cfg.Ops, Nodes: cfg.Nodes, Keys: cfg.Keys, Tenants: cfg.Tenants}
	ctx := context.Background()

	phase := func(label string, seedOff int64) (float64, obs.Snapshot, error) {
		gen := workload.NewGenerator(workload.Spec{
			Keys:    cfg.Keys,
			Dist:    workload.Zipf,
			Seed:    cfg.Seed + seedOff,
			Dataset: "e11",
			Tenants: cfg.Tenants,
		})
		prev := reg.Snapshot()
		start := time.Now()
		for i := 0; i < cfg.Ops; i++ {
			k := gen.NextKey()
			if err := cli.WriteLatest(ctx, k, gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
				return 0, obs.Snapshot{}, fmt.Errorf("introspect %s write %d: %w", label, i, err)
			}
		}
		elapsed := time.Since(start)
		return float64(cfg.Ops) / elapsed.Seconds(), reg.Snapshot().Delta(prev), nil
	}

	// Phase 1: plane recording (the default state).
	opsEnabled, delta, err := phase("enabled", 0)
	if err != nil {
		return nil, err
	}
	res.OpsPerSecEnabled = opsEnabled
	if h := delta.Hist("client.write"); h.Count > 0 {
		res.P50MsEnabled = float64(h.P50()) / 1e6
		res.P99MsEnabled = float64(h.P99()) / 1e6
	}

	// Fidelity: merge every node's sketch and tenant table cluster-wide.
	gen := workload.NewGenerator(workload.Spec{Keys: cfg.Keys, Dist: workload.Zipf, Dataset: "e11", Tenants: cfg.Tenants})
	hotHash := ring.Hash64(gen.HottestKey())
	var keyLists [][]obs.TopKEntry
	var tenantLists [][]obs.TenantSnapshot
	for _, srv := range cl.Servers {
		rep := srv.ObsReport()
		keyLists = append(keyLists, rep.TopKeys)
		tenantLists = append(tenantLists, rep.Tenants)
		total, resolved := exemplarResolution(rep)
		res.ExemplarsTotal += total
		res.ExemplarsResolved += resolved
	}
	clientRep := reg.Report()
	total, resolved := exemplarResolution(clientRep)
	res.ExemplarsTotal += total
	res.ExemplarsResolved += resolved
	res.TopKeys = obs.MergeTopK(10, keyLists...)
	res.TenantRows = obs.MergeTenants(tenantLists...)
	res.HottestRankedFirst = len(res.TopKeys) > 0 && res.TopKeys[0].Hash == hotHash

	// Phase 2: plane disabled on every registry that records it.
	for _, srv := range cl.Servers {
		srv.Obs().SetIntrospection(false)
	}
	reg.SetIntrospection(false)
	opsDisabled, delta, err := phase("disabled", 1)
	if err != nil {
		return nil, err
	}
	res.OpsPerSecDisabled = opsDisabled
	if h := delta.Hist("client.write"); h.Count > 0 {
		res.P50MsDisabled = float64(h.P50()) / 1e6
		res.P99MsDisabled = float64(h.P99()) / 1e6
	}
	for _, srv := range cl.Servers {
		srv.Obs().SetIntrospection(true)
	}
	reg.SetIntrospection(true)

	if res.OpsPerSecDisabled > 0 {
		res.OverheadPct = (res.OpsPerSecDisabled - res.OpsPerSecEnabled) / res.OpsPerSecDisabled * 100
	}
	return res, nil
}

// exemplarResolution counts one report's histogram-bucket exemplars and how
// many of their trace ids resolve to a span retained in the same report.
func exemplarResolution(rep obs.Report) (total, resolved int) {
	retained := map[uint64]bool{}
	for _, ts := range rep.Traces {
		retained[ts.ID] = true
	}
	for _, h := range rep.Snapshot.Hists {
		for _, id := range h.Exemplars {
			total++
			if retained[id] {
				resolved++
			}
		}
	}
	return total, resolved
}

// WriteIntrospectJSON writes the E11 artifact at path.
func WriteIntrospectJSON(path string, res *IntrospectResult) error {
	blob, err := json.MarshalIndent(struct {
		Figure string            `json:"figure"`
		Result *IntrospectResult `json:"result"`
	}{"introspect", res}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
