package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/memcached"
	"sedna/internal/netsim"
	"sedna/internal/obs"
	"sedna/internal/workload"
)

// Point is one measurement: total wall-clock milliseconds to complete Ops
// operations, matching the paper's "Time Spend(ms)" over "W/R Operations"
// axes, plus the per-op latency distribution of that step as recorded by
// the client-side obs histograms (client.write / client.read for Sedna,
// mc.op.set / mc.op.get for the baseline). The latency fields are zero
// when no histogram covered the step.
type Point struct {
	Ops    int     `json:"ops"`
	Millis float64 `json:"millis"`
	MeanMs float64 `json:"mean_ms,omitempty"`
	P50Ms  float64 `json:"p50_ms,omitempty"`
	P99Ms  float64 `json:"p99_ms,omitempty"`
	// Slow counts the ops of this step that crossed the client's slow-op
	// threshold — the tail the percentiles summarise, as an absolute count.
	Slow uint64 `json:"slow_ops,omitempty"`
	// NsPerOp and AllocsPerOp carry micro-benchmark results (the hotpath
	// figure); they are zero for the cluster-level sweeps.
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Series is one line of a figure.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// latencyPoint builds a Point from a step's wall time and the obs snapshot
// delta that covered exactly that step: hist names the latency histogram,
// and the step's slow-op count rides along from the obs.slow_ops counter.
func latencyPoint(ops int, millis float64, delta obs.Snapshot, hist string) Point {
	p := Point{Ops: ops, Millis: millis, Slow: delta.Counter("obs.slow_ops")}
	if h := delta.Hist(hist); h.Count > 0 {
		p.MeanMs = h.Mean() / 1e6
		p.P50Ms = float64(h.P50()) / 1e6
		p.P99Ms = float64(h.P99()) / 1e6
	}
	return p
}

// TSV renders series as tab-separated columns: ops, then one column per
// series.
func TSV(series []Series) string {
	var b strings.Builder
	b.WriteString("ops")
	for _, s := range series {
		b.WriteString("\t" + s.Label)
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%d", series[0].Points[i].Ops)
		for _, s := range series {
			fmt.Fprintf(&b, "\t%.1f", s.Points[i].Millis)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig7Config parameterises the Fig. 7 reproduction: one client sweeping
// write/read counts against Sedna and against a memcached cluster of the
// same size.
type Fig7Config struct {
	// Nodes is the server count; the paper uses 9.
	Nodes int
	// OpsSteps lists the x-axis points; the paper sweeps 10k..60k.
	OpsSteps []int
	// MCReplicas is the memcached client's sequential replication factor:
	// 3 reproduces Fig. 7(a), 1 reproduces Fig. 7(b).
	MCReplicas int
	// Profile simulates the testbed links; zero selects GigabitLAN.
	Profile netsim.Profile
	// Seed fixes the simulation.
	Seed int64
}

func (c *Fig7Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 9
	}
	if len(c.OpsSteps) == 0 {
		c.OpsSteps = []int{10000, 20000, 30000, 40000, 50000, 60000}
	}
	if c.MCReplicas <= 0 {
		c.MCReplicas = 3
	}
	if c.Profile == (netsim.Profile{}) {
		c.Profile = netsim.GigabitLAN()
	}
}

// RunFig7 reproduces Fig. 7: it returns four series — Sedna write, Sedna
// read, Memcached write, Memcached read — where every Sedna write is a
// parallel 3-replica quorum write and every memcached write is MCReplicas
// sequential writes.
func RunFig7(cfg Fig7Config) ([]Series, error) {
	cfg.defaults()

	// Sedna cluster.
	sc, err := NewCluster(ClusterConfig{
		Nodes:   cfg.Nodes,
		Profile: cfg.Profile,
		Seed:    cfg.Seed,
		// Plenty of memory: the paper sizes the store to hold the data.
		MemoryLimit: 256 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	if err := sc.WaitConverged(cfg.Nodes, 30*time.Second); err != nil {
		return nil, err
	}
	scl, sreg, err := sc.ClientWithObs()
	if err != nil {
		return nil, err
	}

	// Memcached cluster on its own identical network.
	mnet := netsim.NewNetwork(cfg.Profile, cfg.Seed+1)
	var mcAddrs []string
	var mcServers []*memcached.Server
	for i := 0; i < cfg.Nodes; i++ {
		addr := fmt.Sprintf("mc-%d", i)
		srv := memcached.NewServer(mnet.Endpoint(addr), 256<<20)
		if err := srv.Start(); err != nil {
			return nil, err
		}
		defer srv.Close()
		mcServers = append(mcServers, srv)
		mcAddrs = append(mcAddrs, addr)
	}
	mreg := obs.NewRegistry()
	mcl, err := memcached.NewClient(memcached.ClientConfig{
		Servers:  mcAddrs,
		Caller:   mnet.Endpoint("mc-client"),
		Replicas: cfg.MCReplicas,
		Obs:      mreg,
	})
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	out := []Series{
		{Label: "sedna-write"}, {Label: "sedna-read"},
		{Label: fmt.Sprintf("memcached%d-write", cfg.MCReplicas)},
		{Label: fmt.Sprintf("memcached%d-read", cfg.MCReplicas)},
	}
	for step, ops := range cfg.OpsSteps {
		gen := workload.NewGenerator(workload.Spec{
			Keys:    ops,
			Dataset: "bench",
			Table:   fmt.Sprintf("f7s%d", step),
		})
		// Sedna writes. ErrOutdated is a legitimate reply of the paper's
		// API (a raced retry lost to a newer timestamp carrying the same
		// payload), not a failure; the sweep counts it as a completed op.
		prev := sreg.Snapshot()
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := scl.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
				return nil, fmt.Errorf("sedna write %d: %w", i, err)
			}
		}
		wall := ms(time.Since(start))
		out[0].Points = append(out[0].Points, latencyPoint(ops, wall, sreg.Snapshot().Delta(prev), "client.write"))
		// Sedna reads.
		prev = sreg.Snapshot()
		start = time.Now()
		for i := 0; i < ops; i++ {
			if _, _, err := scl.ReadLatest(ctx, gen.Key(i)); err != nil {
				return nil, fmt.Errorf("sedna read %d: %w", i, err)
			}
		}
		wall = ms(time.Since(start))
		out[1].Points = append(out[1].Points, latencyPoint(ops, wall, sreg.Snapshot().Delta(prev), "client.read"))
		// Memcached writes.
		prev = mreg.Snapshot()
		start = time.Now()
		for i := 0; i < ops; i++ {
			if err := mcl.Set(ctx, string(gen.Key(i)), gen.Value(i)); err != nil {
				return nil, fmt.Errorf("memcached set %d: %w", i, err)
			}
		}
		wall = ms(time.Since(start))
		out[2].Points = append(out[2].Points, latencyPoint(ops, wall, mreg.Snapshot().Delta(prev), "mc.op.set"))
		// Memcached reads.
		prev = mreg.Snapshot()
		start = time.Now()
		for i := 0; i < ops; i++ {
			if _, err := mcl.Get(ctx, string(gen.Key(i))); err != nil {
				return nil, fmt.Errorf("memcached get %d: %w", i, err)
			}
		}
		wall = ms(time.Since(start))
		out[3].Points = append(out[3].Points, latencyPoint(ops, wall, mreg.Snapshot().Delta(prev), "mc.op.get"))
	}
	return out, nil
}

// Fig8Config parameterises the Fig. 8 reproduction: per-client sweep time
// with one client versus Clients concurrent clients.
type Fig8Config struct {
	Nodes    int
	Clients  int
	OpsSteps []int
	Profile  netsim.Profile
	Seed     int64
}

func (c *Fig8Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 9
	}
	if c.Clients <= 0 {
		c.Clients = 9
	}
	if len(c.OpsSteps) == 0 {
		c.OpsSteps = []int{10000, 20000, 30000, 40000, 50000, 60000}
	}
	if c.Profile == (netsim.Profile{}) {
		c.Profile = netsim.GigabitLAN()
	}
}

// RunFig8 reproduces Fig. 8: four series — one-client write/read and
// N-client write/read, where the multi-client number is the wall time for
// all clients each completing Ops operations concurrently.
func RunFig8(cfg Fig8Config) ([]Series, error) {
	cfg.defaults()
	sc, err := NewCluster(ClusterConfig{
		Nodes:       cfg.Nodes,
		Profile:     cfg.Profile,
		Seed:        cfg.Seed,
		MemoryLimit: 256 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	if err := sc.WaitConverged(cfg.Nodes, 30*time.Second); err != nil {
		return nil, err
	}
	one, oneReg, err := sc.ClientWithObs()
	if err != nil {
		return nil, err
	}
	many := make([]*clientGen, cfg.Clients)
	for i := range many {
		cl, reg, err := sc.ClientWithObs()
		if err != nil {
			return nil, err
		}
		many[i] = &clientGen{cl: cl, reg: reg}
	}

	ctx := context.Background()
	out := []Series{
		{Label: "one-client-write"}, {Label: "one-client-read"},
		{Label: fmt.Sprintf("%d-clients-write", cfg.Clients)},
		{Label: fmt.Sprintf("%d-clients-read", cfg.Clients)},
	}
	for step, ops := range cfg.OpsSteps {
		gen := workload.NewGenerator(workload.Spec{
			Keys:    ops,
			Dataset: "bench",
			Table:   fmt.Sprintf("f8one%d", step),
		})
		prev := oneReg.Snapshot()
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := one.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
				return nil, err
			}
		}
		wall := ms(time.Since(start))
		out[0].Points = append(out[0].Points, latencyPoint(ops, wall, oneReg.Snapshot().Delta(prev), "client.write"))
		prev = oneReg.Snapshot()
		start = time.Now()
		for i := 0; i < ops; i++ {
			if _, _, err := one.ReadLatest(ctx, gen.Key(i)); err != nil {
				return nil, err
			}
		}
		wall = ms(time.Since(start))
		out[1].Points = append(out[1].Points, latencyPoint(ops, wall, oneReg.Snapshot().Delta(prev), "client.read"))

		// Concurrent clients: each writes (then reads) its own key range.
		// The fleet-wide latency distribution is the merge of the
		// per-client histogram deltas — Merge is associative, so the fold
		// order doesn't matter.
		prev = mergedSnap(many)
		writeMs, err := runParallel(ctx, many, ops, step, true)
		if err != nil {
			return nil, err
		}
		out[2].Points = append(out[2].Points, latencyPoint(ops, writeMs, mergedSnap(many).Delta(prev), "client.write"))
		prev = mergedSnap(many)
		readMs, err := runParallel(ctx, many, ops, step, false)
		if err != nil {
			return nil, err
		}
		out[3].Points = append(out[3].Points, latencyPoint(ops, readMs, mergedSnap(many).Delta(prev), "client.read"))
	}
	return out, nil
}

type clientGen struct {
	cl  *client.Client
	reg *obs.Registry
}

// mergedSnap folds the fleet's per-client registries into one snapshot.
func mergedSnap(gens []*clientGen) obs.Snapshot {
	var s obs.Snapshot
	for _, g := range gens {
		s = s.Merge(g.reg.Snapshot())
	}
	return s
}

func runParallel(ctx context.Context, clients []*clientGen, ops, step int, write bool) (float64, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, len(clients))
	start := time.Now()
	for ci, cg := range clients {
		wg.Add(1)
		go func(ci int, cg *clientGen) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Spec{
				Keys:    ops,
				Dataset: "bench",
				Table:   fmt.Sprintf("f8m%dc%d", step, ci),
			})
			for i := 0; i < ops; i++ {
				if write {
					if err := cg.cl.WriteLatest(ctx, gen.Key(i), gen.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
						errCh <- err
						return
					}
				} else {
					if _, _, err := cg.cl.ReadLatest(ctx, gen.Key(i)); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(ci, cg)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return ms(time.Since(start)), nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Artifact is the on-disk form of one reproduced figure (BENCH_*.json).
type Artifact struct {
	Figure string   `json:"figure"`
	Series []Series `json:"series"`
}

// WriteJSON writes a figure's series — wall time plus the obs-histogram
// latency percentiles — as an indented JSON artifact at path.
func WriteJSON(path, figure string, series []Series) error {
	blob, err := json.MarshalIndent(Artifact{Figure: figure, Series: series}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
