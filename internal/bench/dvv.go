package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/netsim"
	"sedna/internal/workload"
)

// DVVConfig parameterises E12: the silent-lost-update experiment. The same
// concurrent read-modify-write stream runs twice — once over the legacy
// last-writer-wins protocol, once over the dotted-version-vector protocol —
// and the figure reports how many acknowledged updates each one actually
// kept, plus the latency cost of carrying causal metadata.
type DVVConfig struct {
	// Nodes is the data-node count (default 3, the acceptance topology).
	Nodes int
	// Writers is the number of concurrent read-modify-write clients
	// (default 4; keep it under the sibling cap).
	Writers int
	// OpsPerWriter is each writer's update count per phase (default 500).
	OpsPerWriter int
	// Keys is the distinct key count of the zipf(1.1) stream (default 48 —
	// small and skewed, so writers genuinely collide).
	Keys int
	// Profile simulates the links; zero selects GigabitLAN.
	Profile netsim.Profile
	// Seed fixes the simulation and the zipf draws.
	Seed int64
}

func (c *DVVConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.OpsPerWriter <= 0 {
		c.OpsPerWriter = 500
	}
	if c.Keys <= 0 {
		c.Keys = 48
	}
	if c.Profile == (netsim.Profile{}) {
		c.Profile = netsim.GigabitLAN()
	}
}

// DVVPhase is one protocol's half of the E12 artifact.
type DVVPhase struct {
	// Acked counts updates the cluster acknowledged; Refused counts writes
	// the legacy protocol answered "outdated" (the DVV protocol never
	// refuses a write).
	Acked   int `json:"acked"`
	Refused int `json:"refused"`
	// Dropped counts acknowledged updates whose token is absent from the
	// final merged read: writes the cluster confirmed and then silently
	// lost. The whole point of the figure is LWW > 0, DVV = 0.
	Dropped    int     `json:"dropped"`
	DroppedPct float64 `json:"dropped_pct"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// MaxSiblings is the widest concurrent value set any read observed
	// (always 1 under LWW; bounded by the sibling cap under DVV).
	MaxSiblings int `json:"max_siblings"`
}

// DVVResult is the E12 artifact (BENCH_fig_dvv.json).
type DVVResult struct {
	Figure       string   `json:"figure"`
	Nodes        int      `json:"nodes"`
	Writers      int      `json:"writers"`
	OpsPerWriter int      `json:"ops_per_writer"`
	Keys         int      `json:"keys"`
	LWW          DVVPhase `json:"lww"`
	DVV          DVVPhase `json:"dvv"`
	// WriteOverheadPctP50/P99 is the relative latency cost of the causal
	// read-context write path versus the legacy one.
	WriteOverheadPctP50 float64 `json:"write_overhead_pct_p50"`
	WriteOverheadPctP99 float64 `json:"write_overhead_pct_p99"`
}

// WriteDVVJSON writes the E12 artifact.
func WriteDVVJSON(path string, rep *DVVResult) error {
	rep.Figure = "dvv"
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// tokenSet is the register the writers contend on: a comma-joined sorted
// set of update tokens. Read-modify-write appends a token to whatever set
// the read returned — any token missing from the final merged set is an
// update the cluster acknowledged and then lost.
func decodeTokens(b []byte) map[string]bool {
	set := map[string]bool{}
	for _, t := range strings.Split(string(b), ",") {
		if t != "" {
			set[t] = true
		}
	}
	return set
}

func encodeTokens(set map[string]bool) []byte {
	toks := make([]string, 0, len(set))
	for t := range set {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	return []byte(strings.Join(toks, ","))
}

func percentileMs(durs []time.Duration, q float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	i := int(q * float64(len(durs)-1))
	return float64(durs[i]) / 1e6
}

// RunFigDVV measures E12 on one cluster: phase 1 replays the contended
// stream over the legacy LWW protocol (DisableDVV clients, blind writes),
// phase 2 over the causal protocol (ReadSiblings + WriteLatestCtx). Each
// phase audits itself by a final merged read per key.
func RunFigDVV(cfg DVVConfig) (*DVVResult, error) {
	cfg.defaults()
	cl, err := NewCluster(ClusterConfig{
		Nodes:       cfg.Nodes,
		Profile:     cfg.Profile,
		Seed:        cfg.Seed,
		MemoryLimit: 256 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.WaitConverged(cfg.Nodes, 30*time.Second); err != nil {
		return nil, err
	}
	res := &DVVResult{Nodes: cfg.Nodes, Writers: cfg.Writers, OpsPerWriter: cfg.OpsPerWriter, Keys: cfg.Keys}
	ctx := context.Background()

	type phaseOut struct {
		acked   map[kv.Key]map[string]bool
		refused int
		durs    []time.Duration
		maxSib  int
	}
	runPhase := func(dataset string, dvv bool) (*phaseOut, error) {
		out := &phaseOut{acked: map[kv.Key]map[string]bool{}}
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make(chan error, cfg.Writers)
		for w := 0; w < cfg.Writers; w++ {
			cli, err := cl.Client()
			if err != nil {
				return nil, err
			}
			if !dvv {
				// The LWW phase uses the pre-DVV wire protocol end to end.
				cli, err = client.New(client.Config{
					Servers:    cl.NodeAddrs,
					Caller:     cl.Net.Endpoint(fmt.Sprintf("lww-%s-%d", dataset, w)),
					Source:     fmt.Sprintf("lww-%d", w),
					DisableDVV: true,
				})
				if err != nil {
					return nil, err
				}
			}
			gen := workload.NewGenerator(workload.Spec{
				Keys:    cfg.Keys,
				Dist:    workload.Zipf,
				Seed:    cfg.Seed + int64(w)*101,
				Dataset: dataset,
			})
			wg.Add(1)
			go func(w int, cli *client.Client, gen *workload.Generator) {
				defer wg.Done()
				for i := 0; i < cfg.OpsPerWriter; i++ {
					key := gen.NextKey()
					token := fmt.Sprintf("w%d-%06d", w, i)
					var werr error
					var start time.Time
					if dvv {
						sib, rerr := cli.ReadSiblings(ctx, key)
						if rerr != nil {
							continue
						}
						set := map[string]bool{}
						for _, v := range sib.Values {
							for t := range decodeTokens(v.Data) {
								set[t] = true
							}
						}
						set[token] = true
						mu.Lock()
						if len(sib.Values) > out.maxSib {
							out.maxSib = len(sib.Values)
						}
						mu.Unlock()
						start = time.Now()
						werr = cli.WriteLatestCtx(ctx, key, encodeTokens(set), sib.Context)
					} else {
						set := map[string]bool{}
						if val, _, rerr := cli.ReadLatest(ctx, key); rerr == nil {
							set = decodeTokens(val)
						} else if !errors.Is(rerr, core.ErrNotFound) {
							continue
						}
						set[token] = true
						start = time.Now()
						werr = cli.WriteLatest(ctx, key, encodeTokens(set))
					}
					d := time.Since(start)
					mu.Lock()
					switch {
					case werr == nil:
						out.durs = append(out.durs, d)
						if out.acked[key] == nil {
							out.acked[key] = map[string]bool{}
						}
						out.acked[key][token] = true
					case errors.Is(werr, core.ErrOutdated):
						out.refused++
					default:
						errs <- fmt.Errorf("writer %d: %w", w, werr)
						mu.Unlock()
						return
					}
					mu.Unlock()
				}
			}(w, cli, gen)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return nil, err
		default:
		}
		return out, nil
	}

	audit := func(out *phaseOut, dvv bool) (DVVPhase, error) {
		var ph DVVPhase
		ph.Refused = out.refused
		ph.MaxSiblings = out.maxSib
		if !dvv {
			ph.MaxSiblings = 1
		}
		auditor, err := cl.Client()
		if err != nil {
			return ph, err
		}
		for key, toks := range out.acked {
			ph.Acked += len(toks)
			present := map[string]bool{}
			if dvv {
				sib, err := auditor.ReadSiblings(ctx, key)
				if err != nil {
					return ph, fmt.Errorf("audit %s: %w", key, err)
				}
				for _, v := range sib.Values {
					for t := range decodeTokens(v.Data) {
						present[t] = true
					}
				}
			} else {
				val, _, err := auditor.ReadLatest(ctx, key)
				if err != nil && !errors.Is(err, core.ErrNotFound) {
					return ph, fmt.Errorf("audit %s: %w", key, err)
				}
				present = decodeTokens(val)
			}
			for t := range toks {
				if !present[t] {
					ph.Dropped++
				}
			}
		}
		if ph.Acked > 0 {
			ph.DroppedPct = float64(ph.Dropped) / float64(ph.Acked) * 100
		}
		ph.P50Ms = percentileMs(out.durs, 0.50)
		ph.P99Ms = percentileMs(out.durs, 0.99)
		return ph, nil
	}

	lwwOut, err := runPhase("e12lww", false)
	if err != nil {
		return nil, err
	}
	if res.LWW, err = audit(lwwOut, false); err != nil {
		return nil, err
	}
	dvvOut, err := runPhase("e12dvv", true)
	if err != nil {
		return nil, err
	}
	if res.DVV, err = audit(dvvOut, true); err != nil {
		return nil, err
	}

	if res.LWW.P50Ms > 0 {
		res.WriteOverheadPctP50 = (res.DVV.P50Ms - res.LWW.P50Ms) / res.LWW.P50Ms * 100
	}
	if res.LWW.P99Ms > 0 {
		res.WriteOverheadPctP99 = (res.DVV.P99Ms - res.LWW.P99Ms) / res.LWW.P99Ms * 100
	}
	return res, nil
}
