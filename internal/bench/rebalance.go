package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/netsim"
	"sedna/internal/obs"
	"sedna/internal/rebalance"
	"sedna/internal/ring"
)

// RebalanceConfig parameterises the elasticity benchmark: a steady workload
// runs against a 3-node cluster while a 4th node joins (vnodes stream TO
// it) and then drains back out (vnodes stream OFF it), proving online
// migration with zero lost acks and bounded tail latency.
type RebalanceConfig struct {
	// Keys is the preloaded keyspace size; zero selects 1200.
	Keys int
	// Writers is the background writer count; zero selects 2.
	Writers int
	// Profile simulates the links; zero selects GigabitLAN.
	Profile netsim.Profile
	// Seed fixes the simulation.
	Seed int64
}

func (c *RebalanceConfig) defaults() {
	if c.Keys <= 0 {
		c.Keys = 1200
	}
	if c.Writers <= 0 {
		c.Writers = 2
	}
	if c.Profile == (netsim.Profile{}) {
		c.Profile = netsim.GigabitLAN()
	}
}

// RebalancePhase is the workload's view of one benchmark window: ops acked
// and their latency distribution while the named thing was happening.
type RebalancePhase struct {
	Name   string  `json:"name"`
	Acked  int     `json:"acked"`
	Failed int     `json:"failed"`
	Millis float64 `json:"millis"`
	MeanMs float64 `json:"mean_ms,omitempty"`
	P50Ms  float64 `json:"p50_ms,omitempty"`
	P99Ms  float64 `json:"p99_ms,omitempty"`
}

// RebalanceCampaign is the migration-side view of one join or drain: how
// much data moved, at what rate, and how that compares with the minimal
// (ASURA-style) movement the plan implies.
type RebalanceCampaign struct {
	Kind    string  `json:"kind"`
	Millis  float64 `json:"millis"`
	Moves   int     `json:"moves"`
	Skipped int     `json:"skipped"`
	Failed  int     `json:"failed"`
	// RowsStreamed counts every row sent over the wire, INCLUDING the
	// final catch-up pass each donor runs before dropping its copy — wire
	// overhead, roughly 2x the data that relocates.
	RowsStreamed uint64  `json:"rows_streamed"`
	DualWrites   uint64  `json:"dual_writes"`
	Cutovers     uint64  `json:"cutovers"`
	Aborts       uint64  `json:"aborts"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	// RowsMoved counts replica copies that changed location (rows the
	// donors dropped once the recipient owned them) — the quantity ASURA's
	// movement bound speaks about.
	RowsMoved uint64 `json:"rows_moved"`
	// RowsBefore counts every replica copy stored cluster-wide when the
	// campaign started; MovementRatio = RowsMoved / RowsBefore.
	RowsBefore    int64   `json:"rows_before"`
	MovementRatio float64 `json:"movement_ratio"`
	// IdealRatio is the minimal movement fraction: slots that MUST move
	// over total slots (the ASURA bound — a joiner's fair share, or every
	// slot the drained node holds). RatioVsIdeal = MovementRatio/IdealRatio
	// and should stay under ~2 (catch-up passes re-send some rows).
	IdealRatio   float64 `json:"ideal_ratio"`
	RatioVsIdeal float64 `json:"ratio_vs_ideal"`
}

// RebalanceReport is the BENCH_fig_rebalance.json artifact.
type RebalanceReport struct {
	Figure      string            `json:"figure"`
	Phases      []RebalancePhase  `json:"phases"`
	Join        RebalanceCampaign `json:"join"`
	Drain       RebalanceCampaign `json:"drain"`
	LostAcks    int               `json:"lost_acks"`
	AuditedKeys int               `json:"audited_keys"`
}

// WriteRebalanceJSON writes the artifact.
func WriteRebalanceJSON(path string, rep RebalanceReport) error {
	rep.Figure = "rebalance"
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// RunFigRebalance drives the elasticity proof: preload a 3-node cluster,
// run a steady write workload, join a passive 4th node (online vnode
// migration TO it), then drain it (migration OFF it), and audit that every
// acknowledged write is still readable afterwards.
func RunFigRebalance(cfg RebalanceConfig) (RebalanceReport, error) {
	cfg.defaults()
	var rep RebalanceReport

	c, err := NewCluster(ClusterConfig{Nodes: 3, Profile: cfg.Profile, Seed: cfg.Seed})
	if err != nil {
		return rep, err
	}
	defer c.Close()
	if err := c.WaitConverged(3, 15*time.Second); err != nil {
		return rep, err
	}
	ctx := context.Background()

	// Preload.
	loader, err := c.Client()
	if err != nil {
		return rep, err
	}
	for i := 0; i < cfg.Keys; i++ {
		key := kv.Join("elastic", "t", fmt.Sprintf("k%05d", i))
		if err := loader.WriteLatest(ctx, key, []byte(fmt.Sprintf("seed-%05d", i))); err != nil {
			return rep, fmt.Errorf("preload: %w", err)
		}
	}

	// Background workload: writers update the preloaded keyspace and record
	// the last acked value per key for the final audit.
	var mu sync.Mutex
	acked := map[kv.Key]string{}
	ackedN, failedN := 0, 0
	var regs []*obs.Registry
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		cl, reg, err := c.ClientWithObs()
		if err != nil {
			return rep, err
		}
		regs = append(regs, reg)
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				key := kv.Join("elastic", "t", fmt.Sprintf("k%05d", (w*7919+i)%cfg.Keys))
				val := fmt.Sprintf("w%d-i%06d", w, i)
				wctx, cancel := context.WithTimeout(ctx, 3*time.Second)
				err := cl.WriteLatest(wctx, key, []byte(val))
				cancel()
				mu.Lock()
				if err == nil {
					acked[key] = val
					ackedN++
				} else {
					failedN++
				}
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}
	counts := func() (int, int) {
		mu.Lock()
		defer mu.Unlock()
		return ackedN, failedN
	}
	phase := func(name string, run func() error) (RebalancePhase, error) {
		a0, f0 := counts()
		prev := mergedRegs(regs)
		start := time.Now()
		err := run()
		wall := float64(time.Since(start).Nanoseconds()) / 1e6
		a1, f1 := counts()
		p := RebalancePhase{Name: name, Acked: a1 - a0, Failed: f1 - f0, Millis: wall}
		if h := mergedRegs(regs).Delta(prev).Hist("client.write"); h.Count > 0 {
			p.MeanMs = h.Mean() / 1e6
			p.P50Ms = float64(h.P50()) / 1e6
			p.P99Ms = float64(h.P99()) / 1e6
		}
		return p, err
	}

	// Baseline window: workload alone.
	base, err := phase("baseline", func() error {
		time.Sleep(1500 * time.Millisecond)
		return nil
	})
	if err != nil {
		return rep, err
	}
	rep.Phases = append(rep.Phases, base)

	// Join: boot a passive 4th node and stream its fair share to it.
	_, joiner, err := c.AddPassiveNode()
	if err != nil {
		return rep, fmt.Errorf("add passive node: %w", err)
	}
	joinStats, joinPhase, err := runCampaign(c, joiner, "join", phase)
	if err != nil {
		return rep, err
	}
	rep.Join = joinStats
	rep.Phases = append(rep.Phases, joinPhase)

	// Drain: stream every vnode back off the node we just added.
	drainStats, drainPhase, err := runCampaign(c, joiner, "drain", phase)
	if err != nil {
		return rep, err
	}
	rep.Drain = drainStats
	rep.Phases = append(rep.Phases, drainPhase)

	close(stop)
	writers.Wait()

	// Audit: every acked write must still be readable with a value at least
	// as new as the acked one (a later write by the same writer may have
	// landed after the ack we recorded).
	auditor, err := c.Client()
	if err != nil {
		return rep, err
	}
	mu.Lock()
	defer mu.Unlock()
	rep.AuditedKeys = len(acked)
	for key, want := range acked {
		var got string
		deadline := time.Now().Add(10 * time.Second)
		for {
			val, _, rerr := auditor.ReadLatest(ctx, key)
			if rerr == nil {
				got = string(val)
				break
			}
			if time.Now().After(deadline) {
				rep.LostAcks++
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if got == "" {
			continue
		}
		var wWant, iWant, wGot, iGot int
		fmt.Sscanf(want, "w%d-i%d", &wWant, &iWant)
		if n, _ := fmt.Sscanf(got, "w%d-i%d", &wGot, &iGot); n == 2 {
			if wGot != wWant || iGot < iWant {
				rep.LostAcks++
			}
		} else if got != want {
			// Still the preload value (or foreign): the acked update is gone.
			rep.LostAcks++
		}
	}
	return rep, nil
}

// runCampaign starts one join/drain campaign on node srv, waits for it to
// finish while the workload keeps running, and returns both the migration
// counters and the workload's latency view of the window.
func runCampaign(c *Cluster, srv *core.Server, kind string,
	phase func(string, func() error) (RebalancePhase, error)) (RebalanceCampaign, RebalancePhase, error) {

	stats := RebalanceCampaign{Kind: kind}
	snap := clusterRing(c)
	if snap == nil {
		return stats, RebalancePhase{}, fmt.Errorf("%s: no ring", kind)
	}
	totalSlots := snap.NumVNodes() * snap.ReplicaFactor()
	switch kind {
	case "join":
		// A joiner's fair share of all slots (it becomes the N+1th member).
		stats.IdealRatio = 1 / float64(len(snap.Nodes())+1)
	case "drain":
		// Every slot the node holds must move; nothing less is possible.
		stats.IdealRatio = float64(len(snap.VNodesOf(srv.Node()))) / float64(totalSlots)
	}
	for _, s := range c.Servers {
		if s != nil {
			stats.RowsBefore += s.Stats().Store.Items
		}
	}
	before := clusterObs(c)

	var camp rebalance.Campaign
	p, err := phase(kind, func() error {
		var serr error
		if kind == "join" {
			serr = srv.Rebalancer().StartJoin()
		} else {
			serr = srv.Rebalancer().StartDrain()
		}
		if serr != nil {
			return fmt.Errorf("start %s: %w", kind, serr)
		}
		deadline := time.Now().Add(120 * time.Second)
		for {
			cur, ok := srv.Rebalancer().Status()
			if ok && cur.State != rebalance.CampaignRunning {
				camp = cur
				if cur.State == rebalance.CampaignFailed {
					return fmt.Errorf("%s campaign failed: %s", kind, cur.Error)
				}
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s campaign did not finish", kind)
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
	if err != nil {
		return stats, p, err
	}
	delta := clusterObs(c).Delta(before)
	stats.Millis = p.Millis
	stats.Moves = camp.Completed
	stats.Skipped = camp.Skipped
	stats.Failed = camp.Failed
	stats.RowsStreamed = delta.Counter("rebalance.rows_streamed")
	stats.DualWrites = delta.Counter("rebalance.dual_writes")
	stats.Cutovers = delta.Counter("rebalance.cutovers")
	stats.Aborts = delta.Counter("rebalance.aborts")
	stats.RowsMoved = delta.Counter("rebalance.rows_dropped")
	if stats.Millis > 0 {
		stats.RowsPerSec = float64(stats.RowsStreamed) / (stats.Millis / 1e3)
	}
	if stats.RowsBefore > 0 {
		stats.MovementRatio = float64(stats.RowsMoved) / float64(stats.RowsBefore)
	}
	if stats.IdealRatio > 0 {
		stats.RatioVsIdeal = stats.MovementRatio / stats.IdealRatio
	}
	return stats, p, nil
}

func clusterRing(c *Cluster) *ring.Ring {
	for _, s := range c.Servers {
		if s != nil {
			if r := s.Ring(); r != nil {
				return r
			}
		}
	}
	return nil
}

// clusterObs merges every server's metric snapshot.
func clusterObs(c *Cluster) obs.Snapshot {
	var out obs.Snapshot
	for _, s := range c.Servers {
		if s != nil {
			out = out.Merge(s.ObsReport().Snapshot)
		}
	}
	return out
}

func mergedRegs(regs []*obs.Registry) obs.Snapshot {
	var out obs.Snapshot
	for _, r := range regs {
		out = out.Merge(r.Snapshot())
	}
	return out
}
