//go:build !linux && !darwin

package bench

// Non-unix stubs: assume the descriptor budget is ample.
func raiseFDLimit()         {}
func fdBudgetFits(int) bool { return true }
