package bench

import (
	"strings"
	"testing"
	"time"

	"sedna/internal/netsim"
)

// These are functional smoke tests of the experiment runners at tiny scale;
// cmd/sedna-bench runs them at paper scale.

func TestRunFig7Small(t *testing.T) {
	series, err := RunFig7(Fig7Config{
		Nodes:      3,
		OpsSteps:   []int{20, 40},
		MCReplicas: 3,
		Profile:    netsim.Profile{Latency: 50 * time.Microsecond},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Millis <= 0 {
				t.Fatalf("series %q has non-positive time", s.Label)
			}
		}
		// More ops must take longer.
		if s.Points[1].Millis <= s.Points[0].Millis {
			t.Fatalf("series %q not increasing: %+v", s.Label, s.Points)
		}
	}
	tsv := TSV(series)
	if !strings.Contains(tsv, "sedna-write") || !strings.Contains(tsv, "memcached3-write") {
		t.Fatalf("tsv = %q", tsv)
	}
}

func TestRunFig8Small(t *testing.T) {
	series, err := RunFig8(Fig8Config{
		Nodes:    3,
		Clients:  3,
		OpsSteps: []int{20},
		Profile:  netsim.Profile{Latency: 50 * time.Microsecond},
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 || len(series[0].Points) != 1 {
		t.Fatalf("series = %+v", series)
	}
}

func TestRunQuorumAblationSmall(t *testing.T) {
	table, err := RunQuorumAblation(3, 30, netsim.Profile{Latency: 50 * time.Microsecond}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %v", table.Rows)
	}
}

func TestRunFlowControlAblationSmall(t *testing.T) {
	table, err := RunFlowControlAblation(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %v", table.Rows)
	}
}

func TestRunVNodeBalanceAblationSmall(t *testing.T) {
	table, err := RunVNodeBalanceAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %v", table.Rows)
	}
	if !strings.Contains(table.Render(), "vnodes/node") {
		t.Fatal("render missing header")
	}
}

func TestRunCoordCacheAblationSmall(t *testing.T) {
	table, err := RunCoordCacheAblation(200, netsim.Profile{Latency: 50 * time.Microsecond}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 2 {
		t.Fatalf("rows = %v", table.Rows)
	}
}

func TestRunLeaseAdaptationAblationSmall(t *testing.T) {
	table, err := RunLeaseAdaptationAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %v", table.Rows)
	}
}

func TestRunWatchStormAblationSmall(t *testing.T) {
	table, err := RunWatchStormAblation(10, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %v", table.Rows)
	}
}

func TestRunPersistenceAblationSmall(t *testing.T) {
	table, err := RunPersistenceAblation(t.TempDir(), 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %v", table.Rows)
	}
}

func TestRunPipelineBenchSmall(t *testing.T) {
	table, err := RunPipelineBench(40, netsim.Profile{Latency: 50 * time.Microsecond}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %v", table.Rows)
	}
}
