// Package bench assembles full in-process Sedna clusters over the
// simulated network and drives the workloads that reproduce the paper's
// evaluation (§VI): the one-client and nine-client read/write sweeps
// against the Memcached baseline (Figs. 7a, 7b, 8) plus the ablation
// experiments in DESIGN.md. The same harness backs the integration tests
// and cmd/sedna-bench.
package bench

import (
	"fmt"
	"time"

	"sedna/internal/client"
	"sedna/internal/coord"
	"sedna/internal/core"
	"sedna/internal/netsim"
	"sedna/internal/obs"
	"sedna/internal/persist"
	"sedna/internal/quorum"
	"sedna/internal/ring"
	"sedna/internal/transport"
)

// ClusterConfig sizes an in-process cluster.
type ClusterConfig struct {
	// Nodes is the number of Sedna data nodes; the paper uses 9.
	Nodes int
	// CoordMembers is the coordination sub-cluster size; zero selects 1
	// (3 reproduces the paper's deployment).
	CoordMembers int
	// VNodes fixes the virtual node count; zero selects 16 per node.
	VNodes int
	// Quorum overrides N/R/W; zero value selects 3/2/2 (clamped to the
	// node count when the cluster is smaller).
	Quorum quorum.Config
	// Profile is the simulated link; zero value selects loopback. Use
	// netsim.GigabitLAN() for paper-like timing.
	Profile netsim.Profile
	// Seed makes the network reproducible.
	Seed int64
	// MemoryLimit per node; zero selects 64 MiB.
	MemoryLimit int64
	// Persist selects each node's durability config (Dir gets a per-node
	// suffix); zero value disables persistence.
	Persist persist.Config
	// TriggerInterval tunes flow control on every node.
	TriggerInterval time.Duration
	// ScanEvery tunes the trigger scanner.
	ScanEvery time.Duration
	// SessionTimeout tunes liveness detection; zero selects 1s.
	SessionTimeout time.Duration
	// Breaker tunes every node's per-peer circuit breakers; zero fields
	// select the transport defaults.
	Breaker transport.BreakerConfig
	// SubIdleTimeout tunes subscription garbage collection.
	SubIdleTimeout time.Duration
	// TenantRule enables per-tenant attribution on every node and client
	// ("dataset", "table", "prefix:N"); empty disables.
	TenantRule string
	// WatchdogEvery paces every node's anomaly watchdog; zero selects the
	// core default, negative disables the watchdog.
	WatchdogEvery time.Duration
	// Logf receives diagnostics from every component; nil disables.
	Logf func(format string, args ...any)
}

// Cluster is a running in-process Sedna deployment.
type Cluster struct {
	cfg     ClusterConfig
	Net     *netsim.Network
	Coord   []*coord.Server
	Servers []*core.Server
	// CoordAddrs and NodeAddrs list the simulated addresses.
	CoordAddrs []string
	NodeAddrs  []string
	nextClient int
}

// NewCluster boots the coordination ensemble and all data nodes, waiting
// until the cluster is fully formed.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("bench: need at least one node")
	}
	if cfg.CoordMembers <= 0 {
		cfg.CoordMembers = 1
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 16 * cfg.Nodes
	}
	if cfg.Quorum.N == 0 {
		cfg.Quorum = quorum.DefaultConfig()
	}
	if cfg.Quorum.N > cfg.Nodes {
		// Clamp to a legal configuration for tiny clusters.
		cfg.Quorum.N = cfg.Nodes
		cfg.Quorum.W = cfg.Nodes/2 + 1
		cfg.Quorum.R = cfg.Nodes + 1 - cfg.Quorum.W
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = time.Second
	}

	c := &Cluster{
		cfg: cfg,
		Net: netsim.NewNetwork(cfg.Profile, cfg.Seed),
	}

	// Coordination ensemble.
	for i := 0; i < cfg.CoordMembers; i++ {
		c.CoordAddrs = append(c.CoordAddrs, fmt.Sprintf("coord-%d", i))
	}
	for i := 0; i < cfg.CoordMembers; i++ {
		s := coord.NewServer(coord.ServerConfig{
			ID:              i,
			Members:         c.CoordAddrs,
			Transport:       c.Net.Endpoint(c.CoordAddrs[i]),
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 120 * time.Millisecond,
			RPCTimeout:      80 * time.Millisecond,
			Logf:            cfg.Logf,
		})
		if err := s.Start(); err != nil {
			c.Close()
			return nil, err
		}
		c.Coord = append(c.Coord, s)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		leader := false
		for _, s := range c.Coord {
			if s.IsLeader() {
				leader = true
			}
		}
		if leader {
			break
		}
		if time.Now().After(deadline) {
			c.Close()
			return nil, fmt.Errorf("bench: coordination ensemble never elected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Data nodes.
	for i := 0; i < cfg.Nodes; i++ {
		c.NodeAddrs = append(c.NodeAddrs, fmt.Sprintf("sedna-%d", i))
	}
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := c.AddNode(i); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// RestartNode simulates a process restart of data node i: the old server is
// shut down, its endpoints are replaced, and a fresh server with the same
// identity (and persistence directory) boots and rejoins.
func (c *Cluster) RestartNode(i int) (*core.Server, error) {
	if i < len(c.Servers) && c.Servers[i] != nil {
		c.Servers[i].Close()
		c.Servers[i] = nil
	}
	c.Net.Reset(c.NodeAddrs[i])
	c.Net.Reset(c.NodeAddrs[i] + "-coordcli")
	c.Net.HealAll()
	return c.AddNode(i)
}

// AddNode boots data node i.
func (c *Cluster) AddNode(i int) (*core.Server, error) {
	return c.addNode(i, false)
}

// AddPassiveNode grows the cluster by one node that joins WITHOUT claiming
// vnodes (the scale-out entry point): data streams to it later, when a
// rebalance campaign runs. It returns the new node's index.
func (c *Cluster) AddPassiveNode() (int, *core.Server, error) {
	i := len(c.NodeAddrs)
	c.NodeAddrs = append(c.NodeAddrs, fmt.Sprintf("sedna-%d", i))
	srv, err := c.addNode(i, true)
	return i, srv, err
}

func (c *Cluster) addNode(i int, passive bool) (*core.Server, error) {
	addr := c.NodeAddrs[i]
	pcfg := c.cfg.Persist
	if pcfg.Strategy != persist.None && pcfg.Dir != "" {
		pcfg.Dir = fmt.Sprintf("%s/node-%d", c.cfg.Persist.Dir, i)
	}
	srv, err := core.NewServer(core.Config{
		Node:            ring.NodeID(addr),
		Transport:       c.Net.Endpoint(addr),
		CoordServers:    c.CoordAddrs,
		CoordCaller:     c.Net.Endpoint(addr + "-coordcli"),
		SessionTimeout:  c.cfg.SessionTimeout,
		Quorum:          c.cfg.Quorum,
		Breaker:         c.cfg.Breaker,
		MemoryLimit:     c.cfg.MemoryLimit,
		Persist:         pcfg,
		Bootstrap:       i == 0,
		Passive:         passive,
		VNodes:          c.cfg.VNodes,
		ScanEvery:       c.cfg.ScanEvery,
		TriggerInterval: c.cfg.TriggerInterval,
		SubIdleTimeout:  c.cfg.SubIdleTimeout,
		TenantRule:      c.cfg.TenantRule,
		WatchdogEvery:   c.cfg.WatchdogEvery,
		ReconcileEvery:  200 * time.Millisecond,
		Logf:            c.cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	for len(c.Servers) <= i {
		c.Servers = append(c.Servers, nil)
	}
	c.Servers[i] = srv
	return srv, nil
}

// Client returns a fresh client with its own endpoint.
func (c *Cluster) Client() (*client.Client, error) {
	cl, _, err := c.ClientWithObs()
	return cl, err
}

// ClientWithObs returns a fresh client plus the registry collecting its
// client.* metrics; the figure reproductions read per-step latency
// percentiles from it and merge the per-client registries into fleet
// totals.
func (c *Cluster) ClientWithObs() (*client.Client, *obs.Registry, error) {
	c.nextClient++
	ep := c.Net.Endpoint(fmt.Sprintf("client-%d", c.nextClient))
	reg := obs.NewRegistry()
	cl, err := client.New(client.Config{
		Servers:    c.NodeAddrs,
		Caller:     ep,
		Source:     ep.Addr(),
		Obs:        reg,
		TenantRule: c.cfg.TenantRule,
	})
	return cl, reg, err
}

// KillNode isolates node i (crash-like failure: the process runs but the
// network is gone, so its session expires and peers evict it).
func (c *Cluster) KillNode(i int) {
	c.Net.Isolate(c.NodeAddrs[i])
	c.Net.Isolate(c.NodeAddrs[i] + "-coordcli")
}

// PartitionNode cuts node i's data endpoint from the network while leaving
// its coordination-client endpoint reachable: the node keeps its session
// alive (no eviction) but replica traffic to it fails — the scenario hinted
// handoff is built for.
func (c *Cluster) PartitionNode(i int) {
	c.Net.Isolate(c.NodeAddrs[i])
}

// HealNode undoes PartitionNode (and the data half of KillNode) for node i.
func (c *Cluster) HealNode(i int) {
	c.Net.HealEndpoint(c.NodeAddrs[i])
	c.Net.HealEndpoint(c.NodeAddrs[i] + "-coordcli")
}

// Close shuts everything down.
func (c *Cluster) Close() {
	for _, s := range c.Servers {
		if s != nil {
			s.Close()
		}
	}
	for _, s := range c.Coord {
		s.Close()
	}
}

// WaitConverged blocks until every node's ring view contains exactly the
// given member count.
func (c *Cluster) WaitConverged(members int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, s := range c.Servers {
			if s == nil {
				continue
			}
			r := s.Ring()
			if r == nil || len(r.Nodes()) != members {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: cluster never converged to %d members", members)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// DefaultProfile returns the paper-like gigabit LAN profile used by the
// figure reproductions.
func DefaultProfile() netsim.Profile { return netsim.GigabitLAN() }
