package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"sedna/internal/obs"
	"sedna/internal/persist"
	"sedna/internal/wal"
)

// DurabilityConfig parameterises E10: what group commit buys over
// per-append fsyncs, what each sync policy costs, and how fast a restart
// gets back to serving.
type DurabilityConfig struct {
	// Dir is scratch space on a real filesystem (fsync latency is the
	// whole point); the caller owns cleanup.
	Dir string
	// Ops is the append count per throughput cell; zero selects 2000.
	Ops int
	// Writers is the concurrent writer count for the group-commit cells;
	// zero selects 8.
	Writers int
	// ValueBytes sizes each logged value; zero selects 256.
	ValueBytes int
	// RecoveryKeys sizes the recovery image; zero selects 20000.
	RecoveryKeys int
}

func (c *DurabilityConfig) defaults() {
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if c.Writers <= 0 {
		c.Writers = 8
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 256
	}
	if c.RecoveryKeys <= 0 {
		c.RecoveryKeys = 20000
	}
}

// DurabilityCell is one throughput measurement: a sync policy under a
// writer count, with the fsync accounting that explains the number.
type DurabilityCell struct {
	Policy       string  `json:"policy"`
	Writers      int     `json:"writers"`
	Ops          int     `json:"ops"`
	Millis       float64 `json:"millis"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	FsyncBatches uint64  `json:"fsync_batches"`
	// OpsPerFsync is the group-commit coalescing factor (1.0 means every
	// append paid its own fsync).
	OpsPerFsync float64 `json:"ops_per_fsync,omitempty"`
	// MeanWaitMs is the mean time an appender spent waiting for its
	// covering fsync (SyncAlways cells only).
	MeanWaitMs float64 `json:"mean_wait_ms,omitempty"`
}

// DurabilityRecovery is one restart-to-serving measurement.
type DurabilityRecovery struct {
	Workers int     `json:"workers"`
	Keys    int     `json:"keys"`
	Bytes   int64   `json:"bytes"`
	Millis  float64 `json:"millis"`
	KeysSec float64 `json:"keys_per_sec"`
}

// DurabilityReport is the BENCH_fig_durability.json artifact.
type DurabilityReport struct {
	Figure     string               `json:"figure"`
	ValueBytes int                  `json:"value_bytes"`
	Throughput []DurabilityCell     `json:"throughput"`
	Recovery   []DurabilityRecovery `json:"recovery"`
}

// WriteDurabilityJSON writes the artifact.
func WriteDurabilityJSON(path string, rep DurabilityReport) error {
	rep.Figure = "durability"
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// RunFigDurability produces E10. Throughput: the same append workload under
// SyncNever, SyncInterval, SyncAlways with group commit (concurrent
// writers coalescing into shared fsyncs) and SyncAlways without it (one
// fsync per append — the pre-group-commit baseline). Recovery: a Hybrid
// image (snapshot chain + WAL tail) replayed serially and with parallel
// sharded appliers, timing restart-to-serving.
func RunFigDurability(cfg DurabilityConfig) (DurabilityReport, error) {
	cfg.defaults()
	var rep DurabilityReport
	rep.ValueBytes = cfg.ValueBytes

	cells := []struct {
		name    string
		policy  wal.SyncPolicy
		writers int
		noGroup bool
		window  time.Duration
	}{
		{"never", wal.SyncNever, 1, false, 0},
		{"interval", wal.SyncInterval, 1, false, 0},
		{"always+group", wal.SyncAlways, cfg.Writers, false, 0},
		{"always+group+window", wal.SyncAlways, cfg.Writers, false, time.Millisecond},
		{"always-nogroup", wal.SyncAlways, 1, true, 0},
	}
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	for i, cell := range cells {
		dir := fmt.Sprintf("%s/tput-%d", cfg.Dir, i)
		reg := obs.NewRegistry()
		l, err := wal.Open(wal.Options{
			Dir: dir, Sync: cell.policy, NoGroupCommit: cell.noGroup,
			GroupWindow: cell.window, Obs: reg,
		})
		if err != nil {
			return rep, err
		}
		// The no-group baseline pays one fsync per op; cap its op count so
		// the cell finishes in reasonable time on spinning media.
		ops := cfg.Ops
		if cell.noGroup && ops > 500 {
			ops = 500
		}
		perWriter := ops / cell.writers
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, cell.writers)
		for w := 0; w < cell.writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					if _, err := l.Append(value); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		if err := l.Close(); err != nil {
			return rep, err
		}
		select {
		case err := <-errCh:
			return rep, fmt.Errorf("cell %s: %w", cell.name, err)
		default:
		}
		done := perWriter * cell.writers
		c := DurabilityCell{
			Policy:       cell.name,
			Writers:      cell.writers,
			Ops:          done,
			Millis:       float64(wall.Nanoseconds()) / 1e6,
			OpsPerSec:    float64(done) / wall.Seconds(),
			FsyncBatches: reg.Counter("wal.fsync_batches").Load(),
		}
		if c.FsyncBatches > 0 && cell.policy == wal.SyncAlways {
			c.OpsPerFsync = float64(done) / float64(c.FsyncBatches)
		}
		if waitNs := reg.Counter("wal.fsync_wait_ns").Load(); waitNs > 0 && done > 0 {
			c.MeanWaitMs = float64(waitNs) / float64(done) / 1e6
		}
		rep.Throughput = append(rep.Throughput, c)
		if err := os.RemoveAll(dir); err != nil {
			return rep, err
		}
	}

	// Recovery image: Hybrid with a mid-stream snapshot so restart loads a
	// snapshot chain AND replays a WAL tail — the realistic shape.
	imgDir := cfg.Dir + "/recovery-img"
	src := &benchSource{m: map[string][]byte{}}
	m, err := persist.NewManager(persist.Config{Dir: imgDir, Strategy: persist.Hybrid, WALSync: wal.SyncNever}, src)
	if err != nil {
		return rep, err
	}
	var imageBytes int64
	for i := 0; i < cfg.RecoveryKeys; i++ {
		key := fmt.Sprintf("user:%08d", i)
		src.m[key] = value
		if err := m.LogWrite(key, value); err != nil {
			return rep, err
		}
		imageBytes += int64(len(key) + len(value))
		if i == cfg.RecoveryKeys/2 {
			if err := m.SnapshotNow(); err != nil {
				return rep, err
			}
		}
	}
	if err := m.Close(); err != nil {
		return rep, err
	}

	// On a single-core host GOMAXPROCS(0) is 1; floor the parallel cell at 4
	// so the sharded-applier path is still exercised and measured.
	para := runtime.GOMAXPROCS(0)
	if para < 4 {
		para = 4
	}
	for _, workers := range []int{1, para} {
		mr, err := persist.NewManager(persist.Config{
			Dir: imgDir, Strategy: persist.Hybrid, RecoveryWorkers: workers,
		}, &benchSource{m: map[string][]byte{}})
		if err != nil {
			return rep, err
		}
		var mu sync.Mutex
		n := 0
		start := time.Now()
		err = mr.Recover(func(key string, blob []byte) error {
			mu.Lock()
			n++
			mu.Unlock()
			return nil
		})
		wall := time.Since(start)
		mr.Close()
		if err != nil {
			return rep, err
		}
		rec := DurabilityRecovery{
			Workers: workers,
			Keys:    n,
			Bytes:   imageBytes,
			Millis:  float64(wall.Nanoseconds()) / 1e6,
		}
		if wall > 0 {
			rec.KeysSec = float64(n) / wall.Seconds()
		}
		rep.Recovery = append(rep.Recovery, rec)
	}
	return rep, os.RemoveAll(imgDir)
}

// benchSource is a minimal persist.Source for the benchmark.
type benchSource struct{ m map[string][]byte }

func (s *benchSource) SnapshotRange(emit func(key string, blob []byte)) {
	for k, v := range s.m {
		emit(k, v)
	}
}

func (s *benchSource) ReadKey(key string) ([]byte, bool) {
	v, ok := s.m[key]
	return v, ok
}
