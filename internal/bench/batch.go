package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sedna/internal/client"
	"sedna/internal/core"
	"sedna/internal/kv"
	"sedna/internal/netsim"
	"sedna/internal/workload"
)

// BatchConfig parameterises the batched-vs-unbatched comparison: the same
// key population is accessed in groups of BatchSize, once through MGet/MSet
// (one coordinator frame per primary, one replica frame per node) and once
// through the equivalent per-key ReadLatest/WriteLatest loop. Each Steps
// entry is a number of groups; the figure's percentiles are per-group
// latencies, so the two modes are directly comparable: "fetch these 16 keys"
// as one batch versus as 16 round trips.
type BatchConfig struct {
	// Nodes is the cluster size; the batch acceptance scenario uses 3.
	Nodes int
	// BatchSize is the keys per group; zero selects 16.
	BatchSize int
	// Steps lists group counts for the sweep's x-axis points.
	Steps []int
	// Profile simulates the testbed links; zero selects GigabitLAN.
	Profile netsim.Profile
	// Seed fixes the simulation.
	Seed int64
}

func (c *BatchConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if len(c.Steps) == 0 {
		c.Steps = []int{25, 50, 100}
	}
	if c.Profile == (netsim.Profile{}) {
		c.Profile = netsim.GigabitLAN()
	}
}

// RunFigBatch measures the multi-key path: four series — batched MSet,
// per-key write loop, batched MGet, per-key read loop — where every point's
// P50Ms/P99Ms is the distribution of per-group (BatchSize keys) wall times
// and Millis is the whole step. Batching wins when one frame per replica
// node beats BatchSize sequential quorum round trips.
func RunFigBatch(cfg BatchConfig) ([]Series, error) {
	cfg.defaults()
	sc, err := NewCluster(ClusterConfig{
		Nodes:       cfg.Nodes,
		Profile:     cfg.Profile,
		Seed:        cfg.Seed,
		MemoryLimit: 256 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	if err := sc.WaitConverged(cfg.Nodes, 30*time.Second); err != nil {
		return nil, err
	}
	cl, err := sc.Client()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Warm the ring lease so both modes route by primary from the first
	// timed op instead of paying the lease fetch inside a sample.
	warm := workload.NewGenerator(workload.Spec{Keys: 1, Dataset: "bench", Table: "fbwarm"})
	if err := cl.WriteLatest(ctx, warm.Key(0), warm.Value(0)); err != nil && !errors.Is(err, core.ErrOutdated) {
		return nil, err
	}

	out := []Series{
		{Label: "mset-batched"}, {Label: "mset-unbatched-loop"},
		{Label: "mget-batched"}, {Label: "mget-unbatched-loop"},
	}
	for step, groups := range cfg.Steps {
		n := groups * cfg.BatchSize
		genB := workload.NewGenerator(workload.Spec{
			Keys:    n,
			Dataset: "bench",
			Table:   fmt.Sprintf("fbB%d", step),
		})
		genU := workload.NewGenerator(workload.Spec{
			Keys:    n,
			Dataset: "bench",
			Table:   fmt.Sprintf("fbU%d", step),
		})

		// Batched writes: one MSet per group.
		var samples []time.Duration
		start := time.Now()
		for g := 0; g < groups; g++ {
			items := make([]client.MSetItem, cfg.BatchSize)
			for j := range items {
				i := g*cfg.BatchSize + j
				items[j] = client.MSetItem{Key: genB.Key(i), Value: genB.Value(i)}
			}
			gs := time.Now()
			for i, err := range cl.MSet(ctx, items) {
				if err != nil && !errors.Is(err, core.ErrOutdated) {
					return nil, fmt.Errorf("mset group %d key %d: %w", g, i, err)
				}
			}
			samples = append(samples, time.Since(gs))
		}
		out[0].Points = append(out[0].Points, samplePoint(n, ms(time.Since(start)), samples))

		// Unbatched writes: the per-key loop over an equal-sized group.
		samples = samples[:0]
		start = time.Now()
		for g := 0; g < groups; g++ {
			gs := time.Now()
			for j := 0; j < cfg.BatchSize; j++ {
				i := g*cfg.BatchSize + j
				if err := cl.WriteLatest(ctx, genU.Key(i), genU.Value(i)); err != nil && !errors.Is(err, core.ErrOutdated) {
					return nil, fmt.Errorf("write group %d key %d: %w", g, i, err)
				}
			}
			samples = append(samples, time.Since(gs))
		}
		out[1].Points = append(out[1].Points, samplePoint(n, ms(time.Since(start)), samples))

		// Batched reads: one MGet per group.
		samples = samples[:0]
		start = time.Now()
		for g := 0; g < groups; g++ {
			keys := make([]kv.Key, cfg.BatchSize)
			for j := range keys {
				keys[j] = genB.Key(g*cfg.BatchSize + j)
			}
			gs := time.Now()
			res := cl.MGet(ctx, keys)
			for _, r := range res {
				if r.Err != nil {
					return nil, fmt.Errorf("mget group %d key %s: %w", g, r.Key, r.Err)
				}
			}
			samples = append(samples, time.Since(gs))
		}
		out[2].Points = append(out[2].Points, samplePoint(n, ms(time.Since(start)), samples))

		// Unbatched reads: the per-key loop.
		samples = samples[:0]
		start = time.Now()
		for g := 0; g < groups; g++ {
			gs := time.Now()
			for j := 0; j < cfg.BatchSize; j++ {
				i := g*cfg.BatchSize + j
				if _, _, err := cl.ReadLatest(ctx, genU.Key(i)); err != nil {
					return nil, fmt.Errorf("read group %d key %d: %w", g, i, err)
				}
			}
			samples = append(samples, time.Since(gs))
		}
		out[3].Points = append(out[3].Points, samplePoint(n, ms(time.Since(start)), samples))
	}
	return out, nil
}

// samplePoint summarises per-group wall times into a Point: Millis is the
// step's total, the percentile fields describe the group distribution.
func samplePoint(ops int, millis float64, samples []time.Duration) Point {
	p := Point{Ops: ops, Millis: millis}
	if len(samples) == 0 {
		return p
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	p.MeanMs = ms(sum) / float64(len(s))
	p.P50Ms = ms(quantileDur(s, 0.50))
	p.P99Ms = ms(quantileDur(s, 0.99))
	return p
}

// quantileDur is the nearest-rank quantile of a sorted sample.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
