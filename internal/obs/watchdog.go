package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Anomaly is one watchdog detection: a named degradation with a
// human-readable detail, retained in a bounded ring and surfaced through
// Report and the ops plane.
type Anomaly struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Wall   int64  `json:"wall"` // unix nanos
}

// anomalyRingSize bounds the retained anomaly log.
const anomalyRingSize = 32

type anomalyRing struct {
	mu   sync.Mutex
	buf  [anomalyRingSize]Anomaly
	next int
	n    int
}

func (ar *anomalyRing) push(a Anomaly) {
	ar.mu.Lock()
	ar.buf[ar.next] = a
	ar.next = (ar.next + 1) % len(ar.buf)
	if ar.n < len(ar.buf) {
		ar.n++
	}
	ar.mu.Unlock()
}

// snapshot returns retained anomalies, newest first.
func (ar *anomalyRing) snapshot() []Anomaly {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	out := make([]Anomaly, 0, ar.n)
	for i := 1; i <= ar.n; i++ {
		out = append(out, ar.buf[(ar.next-i+len(ar.buf))%len(ar.buf)])
	}
	return out
}

// RecordAnomaly files one anomaly into the registry's anomaly log, counts it
// under obs.anomalies, and mirrors it into the flight recorder so the
// detection interleaves with the ops around it. Nil-safe.
func (r *Registry) RecordAnomaly(kind, detail string) {
	if r == nil {
		return
	}
	r.anomalies.push(Anomaly{Kind: kind, Detail: detail, Wall: time.Now().UnixNano()})
	r.Counter("obs.anomalies").Inc()
	r.RecordOp(WideEvent{Op: "watchdog." + kind, Outcome: detail, Flags: FlagWatchdog})
}

// Anomalies returns the retained anomaly log, newest first. Nil-safe.
func (r *Registry) Anomalies() []Anomaly {
	if r == nil {
		return nil
	}
	return r.anomalies.snapshot()
}

// WatchdogConfig parameterises the anomaly watchdog. The zero value of every
// threshold selects a sane default; Registry is required.
type WatchdogConfig struct {
	Registry *Registry
	// Every paces evaluation (default 2s).
	Every time.Duration
	// BreakerFlap fires when at least this many breaker-open transitions
	// happen in one tick (default 3).
	BreakerFlap uint64
	// FsyncWaitMean fires when the mean WAL fsync wait over the tick
	// exceeds it (default 20ms).
	FsyncWaitMean time.Duration
	// RetrySurgeRatio and RetrySurgeMin fire when quorum retries exceed
	// RetrySurgeRatio × coordinated ops over the tick and at least
	// RetrySurgeMin retries happened (defaults 0.5 and 20).
	RetrySurgeRatio float64
	RetrySurgeMin   uint64
	// ImbalanceRatio fires when the Imbalance callback reports a max/mean
	// per-vnode load ratio above it (default 4; 0 keeps the default,
	// negative disables).
	ImbalanceRatio float64
	// Imbalance supplies the current per-vnode load imbalance ratio
	// (optional; nil disables the rule). A callback keeps obs free of a
	// ring-package dependency.
	Imbalance func() float64
	// Probes are extra named degradation checks evaluated every tick (e.g.
	// the persistence layer's sticky-fsync degraded flag). A true return
	// marks the name active in DegradedReasons.
	Probes map[string]func() bool
}

// Watchdog periodically evaluates obs snapshots for anomalies — breaker
// flap, WAL fsync-wait inflation, quorum retry surges, per-vnode load
// imbalance — emitting events into the flight recorder and maintaining the
// degraded_reasons list that /healthz serves. Detection is edge-triggered
// into the anomaly log (one event per onset) while DegradedReasons reflects
// the level: every rule currently firing.
type Watchdog struct {
	cfg  WatchdogConfig
	mu   sync.Mutex
	prev Snapshot
	// active maps rule name → firing, from the latest tick.
	active map[string]bool

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewWatchdog builds a watchdog (does not start it; call Start or drive Tick
// directly in tests).
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Every <= 0 {
		cfg.Every = 2 * time.Second
	}
	if cfg.BreakerFlap == 0 {
		cfg.BreakerFlap = 3
	}
	if cfg.FsyncWaitMean <= 0 {
		cfg.FsyncWaitMean = 20 * time.Millisecond
	}
	if cfg.RetrySurgeRatio <= 0 {
		cfg.RetrySurgeRatio = 0.5
	}
	if cfg.RetrySurgeMin == 0 {
		cfg.RetrySurgeMin = 20
	}
	if cfg.ImbalanceRatio == 0 {
		cfg.ImbalanceRatio = 4
	}
	w := &Watchdog{
		cfg:    cfg,
		active: map[string]bool{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	w.prev = cfg.Registry.Snapshot()
	return w
}

// Start launches the evaluation loop.
func (w *Watchdog) Start() {
	go func() {
		defer close(w.done)
		tick := time.NewTicker(w.cfg.Every)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				w.Tick()
			}
		}
	}()
}

// Close stops the loop (idempotent; safe before Start, in which case the
// done channel never closes — Close does not wait on an unstarted loop).
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	w.once.Do(func() { close(w.stop) })
}

// Tick evaluates every rule once against the delta since the previous tick.
// Exported so tests (and callers with their own scheduler) can drive the
// watchdog deterministically.
func (w *Watchdog) Tick() {
	if w == nil || w.cfg.Registry == nil {
		return
	}
	r := w.cfg.Registry
	snap := r.Snapshot()

	w.mu.Lock()
	delta := snap.Delta(w.prev)
	w.prev = snap

	fire := func(kind, detail string) {
		if !w.active[kind] {
			r.RecordAnomaly(kind, detail)
		}
		w.active[kind] = true
	}
	for k := range w.active {
		w.active[k] = false
	}

	if opened := delta.Counter("transport.breaker.opened"); opened >= w.cfg.BreakerFlap {
		fire("breaker_flap", fmt.Sprintf("%d breaker opens in one tick", opened))
	}
	if fs := delta.Hist("wal.fsync_wait"); fs.Count > 0 {
		if mean := time.Duration(fs.Mean()); mean > w.cfg.FsyncWaitMean {
			fire("fsync_wait_inflation", fmt.Sprintf("mean fsync wait %s over %d batches", mean, fs.Count))
		}
	}
	if errs := delta.Counter("wal.fsync_errors"); errs > 0 {
		fire("fsync_errors", fmt.Sprintf("%d fsync errors in one tick", errs))
	}
	retries := delta.Counter("quorum.retries")
	ops := delta.Counter("core.coord_writes") + delta.Counter("core.coord_reads")
	if retries >= w.cfg.RetrySurgeMin && float64(retries) > w.cfg.RetrySurgeRatio*float64(ops) {
		fire("quorum_retry_surge", fmt.Sprintf("%d retries across %d ops", retries, ops))
	}
	if w.cfg.Imbalance != nil && w.cfg.ImbalanceRatio > 0 {
		if ratio := w.cfg.Imbalance(); ratio > w.cfg.ImbalanceRatio {
			fire("vnode_imbalance", fmt.Sprintf("max/mean vnode load ratio %.1f", ratio))
		}
	}
	for name, probe := range w.cfg.Probes {
		if probe != nil && probe() {
			fire(name, "probe reports degradation")
		}
	}
	w.mu.Unlock()
}

// DegradedReasons returns the rules firing as of the latest tick, sorted.
// Empty means healthy.
func (w *Watchdog) DegradedReasons() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for k, on := range w.active {
		if on {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
