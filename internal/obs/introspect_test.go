package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sedna/internal/wire"
)

// --- hot-key sketch ---

func TestKeySketchRanksHeavyHitters(t *testing.T) {
	s := NewKeySketch(1, 8)
	// One hot key interleaved with a long tail of one-shot keys, far more
	// distinct keys than the 8 slots.
	const hot, rounds = uint64(7777), 200
	for i := 0; i < rounds; i++ {
		s.Record(hot, 3, true, 10)
		s.Record(uint64(10000+i), 1, false, 5)
	}
	top := s.Snapshot(3)
	if len(top) != 3 {
		t.Fatalf("Snapshot(3) = %d entries", len(top))
	}
	if top[0].Hash != hot {
		t.Fatalf("hottest = %#x, want %#x (ranked: %+v)", top[0].Hash, hot, top)
	}
	// Space-Saving guarantee: count over-estimates true frequency by ≤ Err.
	if got := top[0].Count; got < rounds || got-top[0].Err > rounds {
		t.Fatalf("hottest count %d err %d, true %d", got, top[0].Err, rounds)
	}
	if top[0].Writes != top[0].Count || top[0].VNode != 3 {
		t.Fatalf("hot attribution wrong: %+v", top[0])
	}
	// Tail entries carry the inherited over-estimation bound.
	if top[2].Err == 0 {
		t.Fatalf("tail entry should carry an error bound: %+v", top[2])
	}
}

func TestKeySketchExactWithinCapacity(t *testing.T) {
	s := NewKeySketch(2, 16)
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			s.Record(uint64(100+i), 7, true, 3)
		}
	}
	for _, e := range s.Snapshot(8) {
		want := e.Hash - 100 + 1
		if e.Count != want || e.Err != 0 {
			t.Fatalf("entry %+v: want exact count %d, err 0", e, want)
		}
		if e.Writes != want || e.Bytes != 3*want || e.VNode != 7 {
			t.Fatalf("attribution wrong: %+v", e)
		}
	}
}

func TestMergeTopK(t *testing.T) {
	a := []TopKEntry{{Hash: 1, Count: 10, Writes: 10}, {Hash: 2, Count: 5, Reads: 5}}
	b := []TopKEntry{{Hash: 2, Count: 50, Reads: 50, Err: 1}, {Hash: 3, Count: 7, Writes: 7}}
	m := MergeTopK(2, a, b)
	if len(m) != 2 || m[0].Hash != 2 || m[0].Count != 55 || m[0].Err != 1 || m[0].Reads != 55 {
		t.Fatalf("merge = %+v", m)
	}
	if m[1].Hash != 1 {
		t.Fatalf("second = %+v, want hash 1", m[1])
	}
}

func TestKeySketchConcurrent(t *testing.T) {
	s := NewKeySketch(4, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Record(uint64(i%200), int32(i%16), i%2 == 0, 8)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, e := range s.Snapshot(1000) {
		total += e.Count
	}
	// Counts never get lost, only reassigned between keys on eviction.
	if total != 8*2000 {
		t.Fatalf("total count %d, want %d", total, 8*2000)
	}
}

// --- flight recorder ---

func TestFlightRecorderNewestFirstAndWrap(t *testing.T) {
	r := NewRegistry()
	n := flightRingSize + 100
	for i := 0; i < n; i++ {
		r.RecordOp(WideEvent{Op: "w", DurNs: int64(i)})
	}
	evs := r.FlightEvents(0)
	if len(evs) != flightRingSize {
		t.Fatalf("ring holds %d, want %d", len(evs), flightRingSize)
	}
	for i, ev := range evs {
		if want := int64(n - 1 - i); ev.DurNs != want {
			t.Fatalf("evs[%d].DurNs = %d, want %d (newest first)", i, ev.DurNs, want)
		}
		if ev.Wall == 0 {
			t.Fatalf("evs[%d] missing wall stamp", i)
		}
	}
	if got := r.FlightEvents(5); len(got) != 5 || got[0].DurNs != int64(n-1) {
		t.Fatalf("FlightEvents(5) = %d events, first %+v", len(got), got[0])
	}
}

func TestFlightRecorderStampsNode(t *testing.T) {
	r := NewRegistry()
	r.SetNode("n1")
	r.RecordOp(WideEvent{Op: "coord_write"})
	evs := r.FlightEvents(1)
	if len(evs) != 1 || evs[0].Node != "n1" {
		t.Fatalf("evs = %+v, want node n1", evs)
	}
}

func TestIntrospectionToggle(t *testing.T) {
	r := NewRegistry()
	r.SetIntrospection(false)
	r.RecordOp(WideEvent{Op: "w"})
	r.RecordKey(1, 0, true, 1)
	r.SetTenantRule(TenantRule{mode: tenantDataset})
	r.RecordTenantOp("t", true, 1, time.Millisecond, false)
	if len(r.FlightEvents(0)) != 0 || len(r.TopKeys(8)) != 0 || len(r.TenantsSnapshot()) != 0 {
		t.Fatal("introspection off must record nothing")
	}
	r.SetIntrospection(true)
	r.RecordOp(WideEvent{Op: "w"})
	r.RecordKey(1, 0, true, 1)
	if len(r.FlightEvents(0)) != 1 || len(r.TopKeys(8)) != 1 {
		t.Fatal("introspection on must record")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.RecordOp(WideEvent{Op: "w", VNode: int32(g)})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.FlightEvents(0)
		}
	}()
	wg.Wait()
	<-done
	if got := len(r.FlightEvents(0)); got != flightRingSize {
		t.Fatalf("ring holds %d, want full %d", got, flightRingSize)
	}
}

// --- tenant attribution ---

func TestParseTenantRule(t *testing.T) {
	for _, spec := range []string{"", "dataset", "table", "prefix:4"} {
		if _, err := ParseTenantRule(spec); err != nil {
			t.Fatalf("ParseTenantRule(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"bogus", "prefix:", "prefix:0", "prefix:-1", "prefix:x"} {
		if _, err := ParseTenantRule(spec); err == nil {
			t.Fatalf("ParseTenantRule(%q): want error", spec)
		}
	}
}

func TestTenantRuleExtract(t *testing.T) {
	cases := []struct {
		spec, key, want string
	}{
		{"", "ds/tb/k", ""},
		{"dataset", "ds/tb/k", "ds"},
		{"dataset", "nokey", ""},
		{"dataset", "/leading", ""},
		{"table", "ds/tb/k", "ds/tb"},
		{"table", "ds/only", ""},
		{"prefix:2", "abcdef", "ab"},
		{"prefix:9", "abc", "abc"},
		{"prefix:9", "", ""},
	}
	for _, c := range cases {
		rule, err := ParseTenantRule(c.spec)
		if err != nil {
			t.Fatalf("ParseTenantRule(%q): %v", c.spec, err)
		}
		if got := rule.Extract(c.key); got != c.want {
			t.Fatalf("rule %q key %q: got %q want %q", c.spec, c.key, got, c.want)
		}
	}
}

func TestTenantCountersAndOverflow(t *testing.T) {
	r := NewRegistry()
	r.RecordTenantOp("alpha", true, 100, 2*time.Millisecond, false)
	r.RecordTenantOp("alpha", false, 50, time.Millisecond, true)
	r.RecordTenantOp("beta", true, 10, time.Millisecond, false)
	snap := r.TenantsSnapshot()
	if len(snap) != 2 || snap[0].Tenant != "alpha" {
		t.Fatalf("snapshot = %+v", snap)
	}
	a := snap[0]
	if a.Reads != 1 || a.Writes != 1 || a.Bytes != 150 || a.Errors != 1 || a.Lat.Count != 2 {
		t.Fatalf("alpha row = %+v", a)
	}
	// Cardinality cap: tenants beyond maxTenants fold into the overflow row.
	for i := 0; i < maxTenants+10; i++ {
		r.RecordTenantOp(fmt.Sprintf("tenant-%04d", i), true, 1, time.Microsecond, false)
	}
	snap = r.TenantsSnapshot()
	if len(snap) > maxTenants+1 {
		t.Fatalf("tenant table grew past the cap: %d rows", len(snap))
	}
	var overflow *TenantSnapshot
	for i := range snap {
		if snap[i].Tenant == overflowTenant {
			overflow = &snap[i]
		}
	}
	if overflow == nil || overflow.Writes == 0 {
		t.Fatalf("overflow bucket missing or empty: %+v", overflow)
	}
}

func TestMergeTenants(t *testing.T) {
	a := []TenantSnapshot{{Tenant: "x", Reads: 1, Writes: 2, Bytes: 10}}
	b := []TenantSnapshot{{Tenant: "x", Reads: 3, Bytes: 5, Errors: 1}, {Tenant: "y", Writes: 100}}
	m := MergeTenants(a, b)
	if len(m) != 2 || m[0].Tenant != "y" {
		t.Fatalf("merge = %+v, want y busiest", m)
	}
	if x := m[1]; x.Reads != 4 || x.Writes != 2 || x.Bytes != 15 || x.Errors != 1 {
		t.Fatalf("x row = %+v", x)
	}
}

// --- exemplars ---

func TestObserveOpTagsExemplarAndPinsTrace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	tr := NewTrace("coord_write")
	r.ObserveOp(h, 5*time.Millisecond, tr)

	snap := h.Snapshot()
	if len(snap.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want one", snap.Exemplars)
	}
	for b, id := range snap.Exemplars {
		if id != tr.ID {
			t.Fatalf("bucket %d exemplar %#x, want %#x", b, id, tr.ID)
		}
		if snap.Counts[b] == 0 {
			t.Fatalf("exemplar on empty bucket %d", b)
		}
	}
	// The pinned trace resolves even though it never entered the trace ring.
	found := false
	for _, ts := range r.Traces() {
		if ts.ID == tr.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("exemplar trace id does not resolve to a retained span")
	}
}

func TestObserveOpUnsampledFallsBack(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	r.ObserveOp(h, time.Millisecond, nil)
	snap := h.Snapshot()
	if snap.Count != 1 || len(snap.Exemplars) != 0 {
		t.Fatalf("snapshot = %+v, want plain observation", snap)
	}
}

func TestEveryReportExemplarResolves(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// Far more sampled traces than the trace ring (32) or pin table hold;
	// spread latencies so exemplars land in many buckets.
	for i := 0; i < 500; i++ {
		tr := NewTrace("op")
		r.ObserveOp(h, time.Duration(i+1)*57*time.Microsecond, tr)
		tr.Finish(r)
	}
	rep := r.Report()
	retained := map[uint64]bool{}
	for _, ts := range rep.Traces {
		retained[ts.ID] = true
	}
	for name, hs := range rep.Snapshot.Hists {
		for b, id := range hs.Exemplars {
			if !retained[id] {
				t.Fatalf("hist %s bucket %d exemplar %#x not retained", name, b, id)
			}
		}
	}
}

func TestPinnedTraceGC(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// Same bucket every time: each new exemplar displaces the last, so old
	// pins become unreferenced and must be collected at the cap.
	for i := 0; i < maxPinnedTraces*2; i++ {
		r.ObserveOp(h, time.Millisecond, NewTrace("op"))
	}
	r.exMu.Lock()
	pinned := len(r.exTraces)
	r.exMu.Unlock()
	if pinned > maxPinnedTraces {
		t.Fatalf("pin table grew to %d, cap %d", pinned, maxPinnedTraces)
	}
}

// --- trace context v2 ---

func TestTraceContextTenantRoundTrip(t *testing.T) {
	tc := TraceContext{ID: 42, Op: "coord_write", Stage: "quorum.send", Tenant: "ds"}
	got, ok := DecodeTraceContext(tc.Encode())
	if !ok || got != tc {
		t.Fatalf("round trip = %+v ok=%v", got, ok)
	}
	// A v1 block (no tenant field) still decodes.
	var e wire.Enc
	e.U8(traceCtxV1)
	e.U64(7)
	e.Str("w")
	e.Str("s")
	got, ok = DecodeTraceContext(e.B)
	if !ok || got.ID != 7 || got.Op != "w" || got.Tenant != "" {
		t.Fatalf("v1 decode = %+v ok=%v", got, ok)
	}
}

// --- stitching with missing spans ---

func TestStitchTracesPartialSpans(t *testing.T) {
	// Replica span lost (node crashed before STATS could serve it): the trace
	// must still stitch into a partial timeline led by the origin span.
	client := TraceSnapshot{ID: 9, Op: "client.write", Node: "cli", Stages: []TraceStage{{Name: "send", At: 1}}}
	coord := TraceSnapshot{ID: 9, Op: "client.write", Node: "n1", Parent: "transport.send", Stages: []TraceStage{{Name: "quorum", At: 2}}}
	stitched := StitchTraces([]TraceSnapshot{coord, client})
	if len(stitched) != 1 {
		t.Fatalf("stitched = %+v", stitched)
	}
	st := stitched[0]
	if st.ID != 9 || len(st.Spans) != 2 || st.Spans[0].Node != "cli" {
		t.Fatalf("partial trace = %+v, want origin first", st)
	}
	if nodes := st.Nodes(); len(nodes) != 2 {
		t.Fatalf("nodes = %v", nodes)
	}

	// Client-only trace (every server span lost) still forms a valid
	// single-span timeline.
	only := StitchTraces([]TraceSnapshot{client})
	if len(only) != 1 || len(only[0].Spans) != 1 || only[0].Op != "client.write" {
		t.Fatalf("client-only = %+v", only)
	}

	// Orphaned child span (origin lost): group survives, child leads.
	orphan := StitchTraces([]TraceSnapshot{coord})
	if len(orphan) != 1 || orphan[0].Spans[0].Parent == "" {
		t.Fatalf("orphan = %+v", orphan)
	}
}

// --- watchdog ---

func TestWatchdogRules(t *testing.T) {
	r := NewRegistry()
	imbalance := 1.0
	degraded := false
	w := NewWatchdog(WatchdogConfig{
		Registry:  r,
		Imbalance: func() float64 { return imbalance },
		Probes:    map[string]func() bool{"wal_durability_degraded": func() bool { return degraded }},
	})
	w.Tick()
	if got := w.DegradedReasons(); len(got) != 0 {
		t.Fatalf("healthy registry: reasons = %v", got)
	}

	// Breaker flap: 3 opens inside one tick.
	r.Counter("transport.breaker.opened").Add(3)
	// Fsync-wait inflation: mean 50ms > 20ms default.
	r.Histogram("wal.fsync_wait").Observe(50 * time.Millisecond)
	// Retry surge: 30 retries over 10 ops.
	r.Counter("quorum.retries").Add(30)
	r.Counter("core.coord_writes").Add(10)
	// Fsync errors, load imbalance, and the durability probe.
	r.Counter("wal.fsync_errors").Add(1)
	imbalance = 9
	degraded = true
	w.Tick()

	want := []string{"breaker_flap", "fsync_errors", "fsync_wait_inflation",
		"quorum_retry_surge", "vnode_imbalance", "wal_durability_degraded"}
	got := w.DegradedReasons()
	if len(got) != len(want) {
		t.Fatalf("reasons = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reasons = %v, want %v", got, want)
		}
	}

	// Each onset filed exactly one anomaly, mirrored into the flight ring.
	if an := r.Anomalies(); len(an) != len(want) {
		t.Fatalf("anomalies = %+v", an)
	}
	watchdogEvents := 0
	for _, ev := range r.FlightEvents(0) {
		if ev.Flags&FlagWatchdog != 0 {
			watchdogEvents++
		}
	}
	if watchdogEvents != len(want) {
		t.Fatalf("flight has %d watchdog events, want %d", watchdogEvents, len(want))
	}

	// Next quiet tick clears the level but files no duplicate anomalies.
	imbalance, degraded = 1, false
	w.Tick()
	if got := w.DegradedReasons(); len(got) != 0 {
		t.Fatalf("after recovery: reasons = %v", got)
	}
	if an := r.Anomalies(); len(an) != len(want) {
		t.Fatalf("recovery filed duplicate anomalies: %+v", an)
	}

	// A second onset is a new edge and files again.
	r.Counter("transport.breaker.opened").Add(5)
	w.Tick()
	if an := r.Anomalies(); len(an) != len(want)+1 {
		t.Fatalf("re-onset not filed: %+v", an)
	}
}

func TestWatchdogStartClose(t *testing.T) {
	r := NewRegistry()
	w := NewWatchdog(WatchdogConfig{Registry: r, Every: time.Millisecond})
	w.Start()
	r.Counter("wal.fsync_errors").Add(1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(w.DegradedReasons()) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := w.DegradedReasons(); len(got) != 1 || got[0] != "fsync_errors" {
		t.Fatalf("reasons = %v", got)
	}
	w.Close()
	w.Close() // idempotent
}

// --- report surface ---

func TestReportCarriesIntrospection(t *testing.T) {
	r := NewRegistry()
	r.SetNode("n1")
	r.RecordKey(99, 3, true, 10)
	r.RecordOp(WideEvent{Op: "coord_write", KeyHash: 99})
	r.RecordTenantOp("ds", true, 10, time.Millisecond, false)
	r.RecordAnomaly("breaker_flap", "test")
	rep := r.Report()
	if len(rep.TopKeys) != 1 || rep.TopKeys[0].Hash != 99 {
		t.Fatalf("report top keys = %+v", rep.TopKeys)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Tenant != "ds" {
		t.Fatalf("report tenants = %+v", rep.Tenants)
	}
	if len(rep.Flight) != 2 { // the op plus the anomaly's watchdog event
		t.Fatalf("report flight = %+v", rep.Flight)
	}
	if len(rep.Anomalies) != 1 || rep.Anomalies[0].Kind != "breaker_flap" {
		t.Fatalf("report anomalies = %+v", rep.Anomalies)
	}
}
