package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a Registry: plain maps with no locks,
// safe to serialise, merge and diff. Snapshots are the unit the STATS RPC
// ships between nodes and the unit the benchmarks consume.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Merge folds other into a copy of s: counters, gauges and histogram
// buckets add (a cluster-wide item count is the sum of per-node counts).
// Merge is commutative and associative, which is what cluster aggregation
// relies on.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	for k, v := range s.Counters {
		out.Counters[k] += v
	}
	for k, v := range other.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range other.Gauges {
		if cur, ok := out.Gauges[k]; ok {
			out.Gauges[k] = cur + v
		} else {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Hists {
		out.Hists[k] = v
	}
	for k, v := range other.Hists {
		out.Hists[k] = out.Hists[k].Merge(v)
	}
	return out
}

// Delta returns the change since prev: counters and histograms subtract
// (interval measurement), gauges keep their current value.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	for k, v := range s.Counters {
		if d := v - prev.Counters[k]; d > 0 {
			out.Counters[k] = d
		}
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Hists {
		out.Hists[k] = v.Delta(prev.Hists[k])
	}
	return out
}

// Counter returns a named counter value (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a named gauge value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Hist returns a named histogram snapshot (zero value when absent).
func (s Snapshot) Hist(name string) HistSnapshot { return s.Hists[name] }

// EncodeJSON serialises the snapshot for the STATS RPC and the BENCH_*.json
// artifacts.
func (s Snapshot) EncodeJSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A Snapshot is maps of integers; Marshal cannot fail. Keep the
		// wire contract total anyway.
		return []byte("{}")
	}
	return b
}

// DecodeSnapshot parses EncodeJSON output.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}

// Text renders the snapshot as sorted human-readable lines: one
// "name<TAB>value" per counter and gauge, and one
// "name<TAB>count=N mean=… p50=… p90=… p99=… max=…" per histogram
// (histogram values formatted as durations). Empty histograms are skipped.
func (s Snapshot) Text() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s\t%d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s\t%d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s\tcount=%d mean=%s p50=%s p90=%s p99=%s max=%s\n",
			n, h.Count,
			time.Duration(h.Mean()).Round(time.Microsecond),
			time.Duration(h.P50()).Round(time.Microsecond),
			time.Duration(h.P90()).Round(time.Microsecond),
			time.Duration(h.P99()).Round(time.Microsecond),
			time.Duration(h.Max).Round(time.Microsecond))
	}
	return b.String()
}
