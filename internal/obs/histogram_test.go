package obs

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestBucketBoundaries pins the log-linear mapping: values below histSub
// map linearly, octave boundaries land on fresh buckets, and every value
// falls inside its bucket's [low, high] range.
func TestBucketBoundaries(t *testing.T) {
	for v := int64(0); v < histSub; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want linear %d", v, got, v)
		}
	}
	cases := []struct {
		v    int64
		want int
	}{
		{histSub, histSub},               // first log-linear bucket
		{2*histSub - 1, 2*histSub - 1},   // last sub-bucket of octave 0
		{2 * histSub, 2 * histSub},       // next octave starts a new bucket
		{math.MaxInt64, histBuckets - 1}, // clamps into the final bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Fatalf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Exhaustively: low/high bounds are consistent and contiguous.
	prevHigh := int64(-1)
	for idx := 0; idx < histBuckets; idx++ {
		lo, hi := bucketLow(idx), bucketHigh(idx)
		if lo != prevHigh+1 {
			t.Fatalf("bucket %d low %d does not continue previous high %d", idx, lo, prevHigh)
		}
		if bucketIndex(lo) != idx {
			t.Fatalf("bucketIndex(low=%d) = %d, want %d", lo, bucketIndex(lo), idx)
		}
		if idx < histBuckets-1 && bucketIndex(hi) != idx {
			t.Fatalf("bucketIndex(high=%d) = %d, want %d", hi, bucketIndex(hi), idx)
		}
		prevHigh = hi
	}
	// Relative error bound: the bucket width is at most 1/histSub of the
	// value for all log-linear buckets.
	for _, v := range []int64{100, 999, 12345, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		lo, hi := bucketLow(idx), bucketHigh(idx)
		if width := hi - lo + 1; float64(width) > float64(v)/float64(histSub)+1 {
			t.Fatalf("bucket %d for %d too wide: [%d,%d]", idx, v, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	// Log-linear resolution is 1/histSub, so allow 15% tolerance.
	checks := []struct {
		got, want int64
	}{
		{s.P50(), int64(500 * time.Millisecond)},
		{s.P90(), int64(900 * time.Millisecond)},
		{s.P99(), int64(990 * time.Millisecond)},
	}
	for i, c := range checks {
		if diff := math.Abs(float64(c.got-c.want)) / float64(c.want); diff > 0.15 {
			t.Fatalf("quantile %d: got %s want ~%s (err %.1f%%)",
				i, time.Duration(c.got), time.Duration(c.want), diff*100)
		}
	}
	if s.Max != int64(1000*time.Millisecond) {
		t.Fatalf("max = %d", s.Max)
	}
	if mean := s.Mean(); math.Abs(mean-float64(500500*time.Microsecond)) > float64(s.Count) {
		t.Fatalf("mean = %f", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var s HistSnapshot
	if s.P50() != 0 || s.P99() != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot should report zeros")
	}
}

// histObs is a reduced histogram input for testing/quick: a set of bucketed
// observations.
type histObs []uint32

func snapFrom(obs histObs) HistSnapshot {
	var h Histogram
	for _, v := range obs {
		h.ObserveValue(int64(v))
	}
	return h.Snapshot()
}

// TestMergeAssociativity drives (a⊕b)⊕c == a⊕(b⊕c) through testing/quick
// over randomly generated observation sets.
func TestMergeAssociativity(t *testing.T) {
	eq := func(x, y HistSnapshot) bool {
		if x.Count != y.Count || x.Sum != y.Sum || x.Max != y.Max || len(x.Counts) != len(y.Counts) {
			return false
		}
		for i, n := range x.Counts {
			if y.Counts[i] != n {
				return false
			}
		}
		return true
	}
	f := func(a, b, c histObs) bool {
		sa, sb, sc := snapFrom(a), snapFrom(b), snapFrom(c)
		left := sa.Merge(sb).Merge(sc)
		right := sa.Merge(sb.Merge(sc))
		all := append(append(append(histObs{}, a...), b...), c...)
		return eq(left, right) && eq(left, snapFrom(all))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotMergeAssociativity extends associativity to whole registry
// snapshots (counters + gauges + histograms).
func TestSnapshotMergeAssociativity(t *testing.T) {
	build := func(c uint32, g int32, obs histObs) Snapshot {
		r := NewRegistry()
		r.Counter("ops").Add(uint64(c))
		r.Gauge("items").Set(int64(g))
		h := r.Histogram("lat")
		for _, v := range obs {
			h.ObserveValue(int64(v))
		}
		return r.Snapshot()
	}
	eq := func(x, y Snapshot) bool {
		if x.Counter("ops") != y.Counter("ops") || x.Gauge("items") != y.Gauge("items") {
			return false
		}
		hx, hy := x.Hist("lat"), y.Hist("lat")
		return hx.Count == hy.Count && hx.Sum == hy.Sum && hx.Max == hy.Max
	}
	f := func(c1, c2, c3 uint32, g1, g2, g3 int32, o1, o2, o3 histObs) bool {
		a, b, c := build(c1, g1, o1), build(c2, g2, o2), build(c3, g3, o3)
		return eq(a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramDelta(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	before := h.Snapshot()
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	d := h.Snapshot().Delta(before)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if d.Sum != uint64(10*time.Millisecond) {
		t.Fatalf("delta sum = %d", d.Sum)
	}
	if got := d.P50(); math.Abs(float64(got-int64(5*time.Millisecond))) > float64(time.Millisecond) {
		t.Fatalf("delta p50 = %s", time.Duration(got))
	}
}
