package obs

import (
	"sync/atomic"
	"time"
)

// WideEvent is one fixed-shape record per completed operation — the unit of
// the always-on flight recorder. Unlike the slow-op log (which only retains
// outliers), every op leaves a wide event, so the recorder answers "what was
// the system doing just before X" without any sampling decision made up
// front. Fields are the attribution set an operator pivots on: latency,
// vnode, key hash, tenant, outcome, retry count, breaker/hint flags, and the
// trace id when the op was sampled.
type WideEvent struct {
	Op      string `json:"op"`
	Node    string `json:"node,omitempty"`
	Wall    int64  `json:"wall"` // unix nanos, stamped at record time
	DurNs   int64  `json:"dur_ns"`
	VNode   int32  `json:"vnode"`
	KeyHash uint64 `json:"key_hash,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Retries uint32 `json:"retries,omitempty"`
	Flags   uint32 `json:"flags,omitempty"`
	TraceID uint64 `json:"trace_id,omitempty"`
}

// Flag bits on WideEvent.Flags.
const (
	// FlagBreakerOpen: at least one replica breaker was open when the op
	// completed.
	FlagBreakerOpen uint32 = 1 << iota
	// FlagHintsPending: hinted-handoff rows were queued locally.
	FlagHintsPending
	// FlagRetargeted: the client refreshed its ring lease mid-op (NotOwner).
	FlagRetargeted
	// FlagReplicaFailed: one or more replica RPCs failed during the op.
	FlagReplicaFailed
	// FlagWatchdog: synthetic event emitted by the anomaly watchdog, not a
	// client op.
	FlagWatchdog
)

// flightRingSize bounds the recorder. 512 events x ~100B is ~50 KiB per
// process; at 100k ops/s that is still ~5ms of lookback per node plus
// everything the slow-op log force-retains.
const flightRingSize = 512

// flightRing is a lock-free MPMC event buffer: writers claim a slot with one
// atomic add and publish the event with one atomic pointer store. Readers
// walk slots backwards from the claim cursor; a torn read is impossible
// (pointer loads are atomic) — at worst a reader observes an event newer
// than the cursor position it expected, which is harmless for a telemetry
// ring.
type flightRing struct {
	slots [flightRingSize]atomic.Pointer[WideEvent]
	next  atomic.Uint64
}

func (f *flightRing) push(ev *WideEvent) {
	i := f.next.Add(1) - 1
	f.slots[i%flightRingSize].Store(ev)
}

// snapshot returns up to limit events, newest first.
func (f *flightRing) snapshot(limit int) []WideEvent {
	head := f.next.Load()
	n := int(min64(head, flightRingSize))
	if limit > 0 && n > limit {
		n = limit
	}
	if n == 0 {
		return nil
	}
	out := make([]WideEvent, 0, n)
	for i := 0; i < n; i++ {
		slot := (head - 1 - uint64(i)) % flightRingSize
		if ev := f.slots[slot].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// RecordOp appends one wide event to the flight recorder, stamping the node
// name and wall clock. Nil-safe; a no-op when introspection is disabled.
func (r *Registry) RecordOp(ev WideEvent) {
	if r == nil || !r.introspectionOn() {
		return
	}
	if ev.Node == "" {
		if n := r.node.Load(); n != nil {
			ev.Node = *n
		}
	}
	if ev.Wall == 0 {
		ev.Wall = time.Now().UnixNano()
	}
	r.flight.push(&ev)
}

// FlightEvents returns up to limit recorded wide events, newest first.
// limit <= 0 means the whole ring. Nil-safe.
func (r *Registry) FlightEvents(limit int) []WideEvent {
	if r == nil {
		return nil
	}
	return r.flight.snapshot(limit)
}

// RecordKey attributes one op to a hashed key in the registry's hot-key
// sketch. Nil-safe and allocation-free in steady state; a no-op when
// introspection is disabled.
func (r *Registry) RecordKey(hash uint64, vnode int32, write bool, bytes int) {
	if r == nil || !r.introspectionOn() {
		return
	}
	r.keys.Record(hash, vnode, write, bytes)
}

// TopKeys returns this process's hottest keys, hottest first. Nil-safe.
func (r *Registry) TopKeys(k int) []TopKEntry {
	if r == nil {
		return nil
	}
	return r.keys.Snapshot(k)
}

// SetIntrospection enables or disables the workload introspection plane
// (hot-key sketch, flight recorder, tenant table, exemplars) at runtime.
// It defaults to on; the introspect benchmark flips it to measure overhead.
func (r *Registry) SetIntrospection(on bool) {
	if r == nil {
		return
	}
	r.introspectOff.Store(!on)
}

// introspectionOn reports whether the introspection plane is recording. The
// flag is inverted in storage so the zero value of Registry stays "on".
func (r *Registry) introspectionOn() bool {
	return !r.introspectOff.Load()
}
