package obs

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/wire"
)

// Trace records the stage timeline of one operation as it flows through the
// stack (client → transport → quorum → replica → memstore, or the
// coord-lease / trigger paths). Layers call Mark with a stage name; the
// trace stores the offset from the operation's start. Traces ride the
// context so deep layers need no extra plumbing, and a nil *Trace is a
// no-op — sampled tracing costs nothing on unsampled operations.
//
// A trace that crosses a process boundary keeps its ID: the sender encodes
// a TraceContext onto the wire frame, the receiver continues it with
// ContinueTrace, and the per-process spans are later stitched back into one
// causal timeline by StitchTraces (the CLI and the ops-plane /traces
// endpoint both do this over the STATS merge path).
type Trace struct {
	Op string
	// ID names the distributed trace; every span of one operation shares
	// it, across all processes it touches.
	ID uint64
	// Node identifies the process that recorded this span ("" when the
	// registry has no identity configured).
	Node string
	// Parent is the sender-side stage this span forked from ("" at the
	// trace origin).
	Parent string
	// Tenant is the tenant tag attributed to the traced op ("" when tenant
	// attribution is disabled). It propagates with the trace context so
	// replica-side spans stitch under the right tenant.
	Tenant string
	Start  time.Time

	mu     sync.Mutex
	stages []TraceStage
}

// TraceStage is one recorded stage: name and offset from the trace start.
type TraceStage struct {
	Name string        `json:"name"`
	At   time.Duration `json:"at"`
}

// traceSeq generates process-unique trace IDs; the random base makes
// collisions across processes vanishingly unlikely.
var traceSeq atomic.Uint64

func init() { traceSeq.Store(rand.Uint64() | 1) }

// nextTraceID returns a fresh trace ID (never 0; 0 means "untraced").
func nextTraceID() uint64 {
	for {
		if id := traceSeq.Add(1); id != 0 {
			return id
		}
	}
}

// NewTrace starts a trace for the named operation with a fresh ID.
func NewTrace(op string) *Trace {
	return &Trace{Op: op, ID: nextTraceID(), Start: time.Now()}
}

// Mark records a stage at the current time.
func (t *Trace) Mark(stage string) {
	if t == nil {
		return
	}
	at := time.Since(t.Start)
	t.mu.Lock()
	t.stages = append(t.stages, TraceStage{Name: stage, At: at})
	t.mu.Unlock()
}

// Elapsed returns the time since the trace started (0 on nil).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.Start)
}

// Snapshot captures the span recorded so far without sealing it.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSnapshot{
		ID:     t.ID,
		Op:     t.Op,
		Node:   t.Node,
		Parent: t.Parent,
		Tenant: t.Tenant,
		Stages: append([]TraceStage(nil), t.stages...),
	}
}

// Finish seals the trace with a terminal "done" stage and files it into the
// registry's ring of recent traces. When the total duration crosses the
// registry's slow-op threshold the span is also force-retained in the
// slow-op log, regardless of sampling — unless an op-completion site already
// recorded this trace id, whose entry carries routing context Finish cannot
// know (vnode, key hash, outcome).
func (t *Trace) Finish(r *Registry) {
	if t == nil {
		return
	}
	t.Mark("done")
	if r == nil {
		return
	}
	snap := t.Snapshot()
	r.traces.push(snap)
	if d := t.Elapsed(); r.IsSlow(d) && !r.slow.hasTrace(snap.ID) {
		r.RecordSlowOp(SlowOp{
			Op:      snap.Op,
			Node:    snap.Node,
			TraceID: snap.ID,
			Dur:     d,
			Wall:    time.Now().UnixNano(),
			VNode:   -1,
			Stages:  snap.Stages,
		})
	}
}

// TraceSnapshot is one finished span as exposed by the stats surfaces.
type TraceSnapshot struct {
	ID     uint64       `json:"id,omitempty"`
	Op     string       `json:"op"`
	Node   string       `json:"node,omitempty"`
	Parent string       `json:"parent,omitempty"`
	Tenant string       `json:"tenant,omitempty"`
	Stages []TraceStage `json:"stages"`
}

// String renders the timeline as "op[node]: stage@offset → ...".
func (s TraceSnapshot) String() string {
	var b strings.Builder
	b.WriteString(s.Op)
	if s.Node != "" {
		fmt.Fprintf(&b, "[%s]", s.Node)
	}
	b.WriteString(":")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, " %s@%s", st.Name, st.At)
	}
	return b.String()
}

// traceCtxKey keys the trace in a context.
type traceCtxKey struct{}

// WithTrace attaches t to ctx (returns ctx unchanged for a nil trace).
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// FromContext returns the trace riding ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// Mark records a stage on the context's trace, if any — the one-liner deep
// layers use: obs.Mark(ctx, "quorum.acked").
func Mark(ctx context.Context, stage string) { FromContext(ctx).Mark(stage) }

// --- cross-process propagation ---

// traceCtxVersion is the current TraceContext wire version. Decoders skip
// blocks with a version they do not understand, so the field can grow
// without breaking old peers. v1 carried {id, op, stage}; v2 added the
// tenant tag. Decoders accept both.
const (
	traceCtxV1      = 1
	traceCtxVersion = 2
)

// maxTraceCtx bounds one encoded trace-context block (guards frames).
const maxTraceCtx = 1024

// TraceContext is the wire form of a trace crossing a process boundary:
// enough for the receiver to open a child span that stitches back to the
// origin. It rides transport frames as an optional, versioned,
// length-delimited block (see transport's frame format).
type TraceContext struct {
	// ID is the distributed trace ID.
	ID uint64
	// Op is the origin operation name.
	Op string
	// Stage is the sender-side stage the request departed from.
	Stage string
	// Tenant is the origin-attributed tenant tag ("" when disabled); new in
	// v2.
	Tenant string
}

// Encode serialises the context (version byte first).
func (tc TraceContext) Encode() []byte {
	var e wire.Enc
	e.U8(traceCtxVersion)
	e.U64(tc.ID)
	e.Str(tc.Op)
	e.Str(tc.Stage)
	e.Str(tc.Tenant)
	return e.B
}

// DecodeTraceContext parses an encoded block. It reports ok=false for
// empty, truncated, oversized or unknown-version blocks — callers treat all
// of those as "no trace attached". v1 blocks (no tenant) still decode.
func DecodeTraceContext(b []byte) (TraceContext, bool) {
	if len(b) == 0 || len(b) > maxTraceCtx {
		return TraceContext{}, false
	}
	d := wire.NewDec(b)
	v := d.U8()
	if v != traceCtxV1 && v != traceCtxVersion {
		return TraceContext{}, false
	}
	tc := TraceContext{ID: d.U64(), Op: d.Str(), Stage: d.Str()}
	if v >= traceCtxVersion {
		tc.Tenant = d.Str()
	}
	if d.Err != nil || tc.ID == 0 {
		return TraceContext{}, false
	}
	return tc, true
}

// WireContext encodes the context's trace for an outbound request departing
// from the given stage (nil when ctx carries no trace). The stage is also
// marked on the local span so sender and receiver timelines interlock.
func WireContext(ctx context.Context, stage string) []byte {
	t := FromContext(ctx)
	if t == nil {
		return nil
	}
	t.Mark(stage)
	return TraceContext{ID: t.ID, Op: t.Op, Stage: stage, Tenant: t.Tenant}.Encode()
}

// ContinueTrace opens a child span for an inbound request carrying an
// encoded trace context. It returns nil when the block is absent or
// unparseable, so handlers can call it unconditionally. Propagated traces
// ignore the local sampling period: the origin already decided this op is
// traced. The caller must Finish the returned span.
func (r *Registry) ContinueTrace(encoded []byte) *Trace {
	if r == nil {
		return nil
	}
	tc, ok := DecodeTraceContext(encoded)
	if !ok {
		return nil
	}
	return &Trace{Op: tc.Op, ID: tc.ID, Node: r.NodeName(), Parent: tc.Stage, Tenant: tc.Tenant, Start: time.Now()}
}

// --- stitching ---

// StitchedTrace reassembles the per-process spans of one distributed trace.
type StitchedTrace struct {
	ID uint64 `json:"id"`
	// Op is the origin operation name.
	Op string `json:"op"`
	// Spans holds the per-process timelines, origin first, then children
	// sorted by node for determinism.
	Spans []TraceSnapshot `json:"spans"`
}

// Nodes returns the distinct node names that contributed spans, sorted.
func (st StitchedTrace) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, sp := range st.Spans {
		if !seen[sp.Node] {
			seen[sp.Node] = true
			out = append(out, sp.Node)
		}
	}
	sort.Strings(out)
	return out
}

// String renders every span on its own line, origin first.
func (st StitchedTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %x %s", st.ID, st.Op)
	for _, sp := range st.Spans {
		b.WriteString("\n  ")
		if sp.Parent != "" {
			fmt.Fprintf(&b, "(from %s) ", sp.Parent)
		}
		b.WriteString(sp.String())
	}
	return b.String()
}

// StitchTraces groups spans (typically gathered from every node's stats
// surface) by trace ID into causal traces. Spans without an ID — pre-trace
// snapshots or untraced local ops — each form their own group. Within a
// group the origin span (empty Parent) leads. Output is ordered by ID for
// determinism.
func StitchTraces(spans []TraceSnapshot) []StitchedTrace {
	byID := map[uint64][]TraceSnapshot{}
	var solo []StitchedTrace
	for _, sp := range spans {
		if sp.ID == 0 {
			solo = append(solo, StitchedTrace{Op: sp.Op, Spans: []TraceSnapshot{sp}})
			continue
		}
		byID[sp.ID] = append(byID[sp.ID], sp)
	}
	out := make([]StitchedTrace, 0, len(byID)+len(solo))
	for id, group := range byID {
		sort.SliceStable(group, func(i, j int) bool {
			if (group[i].Parent == "") != (group[j].Parent == "") {
				return group[i].Parent == ""
			}
			return group[i].Node < group[j].Node
		})
		out = append(out, StitchedTrace{ID: id, Op: group[0].Op, Spans: group})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return append(out, solo...)
}

// --- sampling and the trace ring ---

// SampleTrace returns a new trace for one out of every sampleEvery calls
// per op name (nil otherwise, and always nil on a nil registry). The caller
// must Finish the returned trace.
func (r *Registry) SampleTrace(op string) *Trace {
	if r == nil {
		return nil
	}
	every := r.sampleEvery.Load()
	if every == 0 {
		return nil
	}
	r.sampleMu.Lock()
	seq := r.sampleSeq[op]
	if seq == nil {
		seq = new(uint64)
		r.sampleSeq[op] = seq
	}
	r.sampleMu.Unlock()
	if (atomic.AddUint64(seq, 1)-1)%every != 0 {
		return nil
	}
	t := NewTrace(op)
	t.Node = r.NodeName()
	return t
}

// SetTraceSampling adjusts the sampling period (0 disables sampling).
func (r *Registry) SetTraceSampling(every uint64) {
	if r != nil {
		r.sampleEvery.Store(every)
	}
}

// Traces returns the most recent finished traces, newest last, plus every
// trace still pinned by a histogram-bucket exemplar (deduplicated by ID).
// The union is what makes the exemplar contract hold: any exemplar id on a
// local snapshot resolves to a span in the same Report.
func (r *Registry) Traces() []TraceSnapshot {
	if r == nil {
		return nil
	}
	out := r.traces.snapshot()
	seen := make(map[uint64]struct{}, len(out))
	for _, s := range out {
		if s.ID != 0 {
			seen[s.ID] = struct{}{}
		}
	}
	r.exMu.Lock()
	pinned := make([]*Trace, 0, len(r.exTraces))
	for id, t := range r.exTraces {
		if _, dup := seen[id]; !dup {
			pinned = append(pinned, t)
		}
	}
	r.exMu.Unlock()
	sort.Slice(pinned, func(i, j int) bool { return pinned[i].ID < pinned[j].ID })
	for _, t := range pinned {
		out = append(out, t.Snapshot())
	}
	return out
}

// --- exemplar-pinned traces ---

// maxPinnedTraces bounds the exemplar pin table; on overflow, pins no longer
// referenced by any histogram bucket are collected.
const maxPinnedTraces = 256

// ObserveOp records d on h, tagging the bucket with the op's trace id as an
// exemplar and pinning the trace so the id keeps resolving to a retained
// span after the trace ring wraps. With a nil trace (unsampled op) or
// introspection disabled it degrades to a plain Observe. Nil-safe.
func (r *Registry) ObserveOp(h *Histogram, d time.Duration, t *Trace) {
	if r == nil || t == nil || t.ID == 0 || !r.introspectionOn() {
		h.Observe(d)
		return
	}
	h.ObserveExemplar(d, t.ID)
	r.pinExemplarTrace(t)
}

func (r *Registry) pinExemplarTrace(t *Trace) {
	r.exMu.Lock()
	defer r.exMu.Unlock()
	if r.exTraces == nil {
		r.exTraces = map[uint64]*Trace{}
	}
	if _, ok := r.exTraces[t.ID]; !ok && len(r.exTraces) >= maxPinnedTraces {
		r.gcPinnedLocked()
	}
	r.exTraces[t.ID] = t
}

// gcPinnedLocked drops pins whose trace id no longer appears in any
// histogram bucket's exemplar slot. Caller holds exMu.
func (r *Registry) gcPinnedLocked() {
	referenced := map[uint64]struct{}{}
	r.mu.RLock()
	for _, h := range r.hists {
		h.exemplarIDs(referenced)
	}
	r.mu.RUnlock()
	for id := range r.exTraces {
		if _, ok := referenced[id]; !ok {
			delete(r.exTraces, id)
		}
	}
}

// traceRing is a small fixed ring of recent traces.
type traceRing struct {
	mu   sync.Mutex
	buf  [32]TraceSnapshot
	next int
	n    int
}

func (tr *traceRing) push(s TraceSnapshot) {
	tr.mu.Lock()
	tr.buf[tr.next] = s
	tr.next = (tr.next + 1) % len(tr.buf)
	if tr.n < len(tr.buf) {
		tr.n++
	}
	tr.mu.Unlock()
}

func (tr *traceRing) snapshot() []TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceSnapshot, 0, tr.n)
	for i := 0; i < tr.n; i++ {
		out = append(out, tr.buf[(tr.next-tr.n+i+len(tr.buf))%len(tr.buf)])
	}
	return out
}
