package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace records the stage timeline of one operation as it flows through the
// stack (client → transport → quorum → replica → memstore, or the
// coord-lease / trigger paths). Layers call Mark with a stage name; the
// trace stores the offset from the operation's start. Traces ride the
// context so deep layers need no extra plumbing, and a nil *Trace is a
// no-op — sampled tracing costs nothing on unsampled operations.
type Trace struct {
	Op    string
	Start time.Time

	mu     sync.Mutex
	stages []TraceStage
}

// TraceStage is one recorded stage: name and offset from the trace start.
type TraceStage struct {
	Name string        `json:"name"`
	At   time.Duration `json:"at"`
}

// NewTrace starts a trace for the named operation.
func NewTrace(op string) *Trace { return &Trace{Op: op, Start: time.Now()} }

// Mark records a stage at the current time.
func (t *Trace) Mark(stage string) {
	if t == nil {
		return
	}
	at := time.Since(t.Start)
	t.mu.Lock()
	t.stages = append(t.stages, TraceStage{Name: stage, At: at})
	t.mu.Unlock()
}

// Finish seals the trace with a terminal "done" stage and files it into the
// registry's ring of recent traces.
func (t *Trace) Finish(r *Registry) {
	if t == nil {
		return
	}
	t.Mark("done")
	if r == nil {
		return
	}
	t.mu.Lock()
	snap := TraceSnapshot{Op: t.Op, Stages: append([]TraceStage(nil), t.stages...)}
	t.mu.Unlock()
	r.traces.push(snap)
}

// TraceSnapshot is one finished trace as exposed by the stats surfaces.
type TraceSnapshot struct {
	Op     string       `json:"op"`
	Stages []TraceStage `json:"stages"`
}

// String renders the timeline as "op: stage@offset → ...".
func (s TraceSnapshot) String() string {
	var b strings.Builder
	b.WriteString(s.Op)
	b.WriteString(":")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, " %s@%s", st.Name, st.At)
	}
	return b.String()
}

// traceCtxKey keys the trace in a context.
type traceCtxKey struct{}

// WithTrace attaches t to ctx (returns ctx unchanged for a nil trace).
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// FromContext returns the trace riding ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// Mark records a stage on the context's trace, if any — the one-liner deep
// layers use: obs.Mark(ctx, "quorum.acked").
func Mark(ctx context.Context, stage string) { FromContext(ctx).Mark(stage) }

// SampleTrace returns a new trace for one out of every sampleEvery calls
// per op name (nil otherwise, and always nil on a nil registry). The caller
// must Finish the returned trace.
func (r *Registry) SampleTrace(op string) *Trace {
	if r == nil {
		return nil
	}
	every := r.sampleEvery.Load()
	if every == 0 {
		return nil
	}
	r.sampleMu.Lock()
	seq := r.sampleSeq[op]
	if seq == nil {
		seq = new(uint64)
		r.sampleSeq[op] = seq
	}
	r.sampleMu.Unlock()
	if (atomic.AddUint64(seq, 1)-1)%every != 0 {
		return nil
	}
	return NewTrace(op)
}

// SetTraceSampling adjusts the sampling period (0 disables sampling).
func (r *Registry) SetTraceSampling(every uint64) {
	if r != nil {
		r.sampleEvery.Store(every)
	}
}

// Traces returns the most recent finished traces, newest last.
func (r *Registry) Traces() []TraceSnapshot {
	if r == nil {
		return nil
	}
	return r.traces.snapshot()
}

// traceRing is a small fixed ring of recent traces.
type traceRing struct {
	mu   sync.Mutex
	buf  [32]TraceSnapshot
	next int
	n    int
}

func (tr *traceRing) push(s TraceSnapshot) {
	tr.mu.Lock()
	tr.buf[tr.next] = s
	tr.next = (tr.next + 1) % len(tr.buf)
	if tr.n < len(tr.buf) {
		tr.n++
	}
	tr.mu.Unlock()
}

func (tr *traceRing) snapshot() []TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceSnapshot, 0, tr.n)
	for i := 0; i < tr.n; i++ {
		out = append(out, tr.buf[(tr.next-tr.n+i+len(tr.buf))%len(tr.buf)])
	}
	return out
}
