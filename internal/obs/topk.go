package obs

import (
	"sort"
	"sync"
)

// KeySketch is a sharded Space-Saving heavy-hitter sketch (Metwally et al.):
// a fixed-capacity table of counters that tracks the hottest key hashes seen
// by this process with bounded memory and a provable over-estimation bound.
// Each entry carries the attribution an operator needs — op mix, bytes, the
// key's vnode — and entries merge associatively across shards and across
// nodes, so cluster-wide top-K views fold from per-node snapshots exactly
// like histograms do.
//
// Recording is a shard-mutex hit plus counter bumps: no allocation in steady
// state (the per-shard maps stop growing once every slot is occupied), which
// is what lets the memstore/core hot path maintain the sketch inline under a
// zero-allocs-per-op budget.
type KeySketch struct {
	shards []sketchShard
	mask   uint64
	k      int
}

// sketchEntry is one monitored key.
type sketchEntry struct {
	hash   uint64
	count  uint64
	errs   uint64 // over-estimation bound inherited at replacement
	reads  uint64
	writes uint64
	bytes  uint64
	vnode  int32
}

type sketchShard struct {
	mu      sync.Mutex
	cap     int
	entries []sketchEntry
	index   map[uint64]int
}

// defaultSketchShards and defaultSketchCap size the registry's built-in
// sketch: 4 shards x 32 slots monitors up to 128 keys in ~6 KiB.
const (
	defaultSketchShards = 4
	defaultSketchCap    = 32
)

// NewKeySketch builds a sketch with the given shard count (rounded up to a
// power of two) and per-shard capacity.
func NewKeySketch(shards, capacity int) *KeySketch {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacity < 1 {
		capacity = 1
	}
	s := &KeySketch{shards: make([]sketchShard, n), mask: uint64(n - 1), k: capacity}
	for i := range s.shards {
		s.shards[i].cap = capacity
		s.shards[i].entries = make([]sketchEntry, 0, capacity)
		s.shards[i].index = make(map[uint64]int, capacity)
	}
	return s
}

// Record attributes one operation to the hashed key. write selects the op
// counter, bytes adds payload size, vnode stamps the key's virtual node.
func (s *KeySketch) Record(hash uint64, vnode int32, write bool, bytes int) {
	if s == nil {
		return
	}
	sh := &s.shards[hash&s.mask]
	sh.mu.Lock()
	i, ok := sh.index[hash]
	switch {
	case ok:
		// Monitored: exact increment.
	case len(sh.entries) < sh.cap:
		// Free slot: start monitoring exactly.
		sh.entries = append(sh.entries, sketchEntry{hash: hash})
		i = len(sh.entries) - 1
		sh.index[hash] = i
	default:
		// Space-Saving replacement: evict the minimum-count entry; the new
		// key inherits its count as the over-estimation bound.
		i = 0
		for j := 1; j < len(sh.entries); j++ {
			if sh.entries[j].count < sh.entries[i].count {
				i = j
			}
		}
		victim := &sh.entries[i]
		delete(sh.index, victim.hash)
		*victim = sketchEntry{hash: hash, count: victim.count, errs: victim.count}
		sh.index[hash] = i
	}
	e := &sh.entries[i]
	e.count++
	e.vnode = vnode
	if write {
		e.writes++
	} else {
		e.reads++
	}
	e.bytes += uint64(bytes)
	sh.mu.Unlock()
}

// TopKEntry is one ranked key of a sketch snapshot. Count over-estimates the
// true frequency by at most Err; the raw key never leaves the process — only
// its 64-bit hash travels.
type TopKEntry struct {
	Hash   uint64 `json:"hash"`
	VNode  int32  `json:"vnode"`
	Count  uint64 `json:"count"`
	Err    uint64 `json:"err,omitempty"`
	Reads  uint64 `json:"reads,omitempty"`
	Writes uint64 `json:"writes,omitempty"`
	Bytes  uint64 `json:"bytes,omitempty"`
}

// Snapshot returns the sketch's top k entries, hottest first (ties broken by
// hash for determinism).
func (s *KeySketch) Snapshot(k int) []TopKEntry {
	if s == nil || k <= 0 {
		return nil
	}
	var out []TopKEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			out = append(out, TopKEntry{
				Hash: e.hash, VNode: e.vnode, Count: e.count, Err: e.errs,
				Reads: e.reads, Writes: e.writes, Bytes: e.bytes,
			})
		}
		sh.mu.Unlock()
	}
	return rankTopK(out, k)
}

// MergeTopK folds per-shard or per-node top-K entries into one ranked view:
// counts, errors, op mixes and bytes add per hash (the union bound of the
// Space-Saving guarantee), and the hottest k survive. Like Snapshot, output
// is hottest first.
func MergeTopK(k int, lists ...[]TopKEntry) []TopKEntry {
	byHash := map[uint64]TopKEntry{}
	for _, list := range lists {
		for _, e := range list {
			cur := byHash[e.Hash]
			cur.Hash = e.Hash
			cur.VNode = e.VNode
			cur.Count += e.Count
			cur.Err += e.Err
			cur.Reads += e.Reads
			cur.Writes += e.Writes
			cur.Bytes += e.Bytes
			byHash[e.Hash] = cur
		}
	}
	out := make([]TopKEntry, 0, len(byHash))
	for _, e := range byHash {
		out = append(out, e)
	}
	return rankTopK(out, k)
}

func rankTopK(entries []TopKEntry, k int) []TopKEntry {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Hash < entries[j].Hash
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return entries
}
