package obs

import (
	"sync"
	"time"
)

// SlowOp is one force-retained tail event: an operation whose latency
// crossed the registry's slow-op threshold. Unlike sampled traces — which
// keep one op in every N regardless of how it behaved — the slow-op log
// keeps every op that misbehaved, which is what Dean & Barroso's
// tail-at-scale argument asks operators to look at. Entries carry the
// routing and healing context (vnode, key hash, breaker/retry/hint
// outcomes) needed to tell a hot vnode from a dark replica.
type SlowOp struct {
	// Op names the operation ("coord_write", "client.read", ...).
	Op string `json:"op"`
	// Node is the process that recorded the event.
	Node string `json:"node,omitempty"`
	// TraceID links to the op's trace when one was sampled (0 otherwise).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Dur is the op's total latency.
	Dur time.Duration `json:"dur"`
	// Wall is the completion time (unix nanoseconds).
	Wall int64 `json:"wall"`
	// VNode is the key's virtual node (-1 when unknown or keyless).
	VNode int32 `json:"vnode"`
	// KeyHash is the 64-bit hash of the key (0 when keyless); the raw key
	// never leaves the process.
	KeyHash uint64 `json:"key_hash,omitempty"`
	// Outcome classifies the result: "ok", "outdated", "failure", ...
	Outcome string `json:"outcome,omitempty"`
	// Tags carries healing-pipeline context: failed replica counts, hints
	// enqueued, open breakers, retry counts.
	Tags map[string]string `json:"tags,omitempty"`
	// Stages is the op's stage timeline when a trace covered it.
	Stages []TraceStage `json:"stages,omitempty"`
}

// slowRingSize bounds the slow-op event log.
const slowRingSize = 64

// slowRing is a fixed ring of recent slow ops.
type slowRing struct {
	mu   sync.Mutex
	buf  [slowRingSize]SlowOp
	next int
	n    int
}

func (sr *slowRing) push(s SlowOp) {
	sr.mu.Lock()
	sr.buf[sr.next] = s
	sr.next = (sr.next + 1) % len(sr.buf)
	if sr.n < len(sr.buf) {
		sr.n++
	}
	sr.mu.Unlock()
}

// hasTrace reports whether the ring already holds an entry for trace id
// (op-completion sites record richer entries than Trace.Finish; this lets
// Finish skip the duplicate).
func (sr *slowRing) hasTrace(id uint64) bool {
	if id == 0 {
		return false
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for i := 0; i < sr.n; i++ {
		if sr.buf[i].TraceID == id {
			return true
		}
	}
	return false
}

func (sr *slowRing) snapshot() []SlowOp {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SlowOp, 0, sr.n)
	for i := 0; i < sr.n; i++ {
		out = append(out, sr.buf[(sr.next-sr.n+i+len(sr.buf))%len(sr.buf)])
	}
	return out
}

// SetSlowOpThreshold sets the latency above which ops are force-retained in
// the slow-op log (0 or negative disables the log).
func (r *Registry) SetSlowOpThreshold(d time.Duration) {
	if r != nil {
		r.slowThreshold.Store(int64(d))
	}
}

// SlowOpThreshold returns the current threshold (0 = disabled).
func (r *Registry) SlowOpThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowThreshold.Load())
}

// IsSlow reports whether a duration crosses the configured threshold.
func (r *Registry) IsSlow(d time.Duration) bool {
	if r == nil {
		return false
	}
	t := r.slowThreshold.Load()
	return t > 0 && int64(d) >= t
}

// RecordSlowOp force-retains one event in the slow-op log, stamping the
// registry's node identity when the entry has none, and counts it under
// obs.slow_ops. Callers normally gate on IsSlow first; RecordSlowOp itself
// never filters, so healing paths can log events they consider anomalous
// regardless of latency.
func (r *Registry) RecordSlowOp(s SlowOp) {
	if r == nil {
		return
	}
	if s.Node == "" {
		s.Node = r.NodeName()
	}
	if s.Wall == 0 {
		s.Wall = time.Now().UnixNano()
	}
	r.slow.push(s)
	r.Counter("obs.slow_ops").Inc()
}

// SlowOps returns the retained slow ops, oldest first.
func (r *Registry) SlowOps() []SlowOp {
	if r == nil {
		return nil
	}
	return r.slow.snapshot()
}

// SetNode records the process identity stamped onto traces and slow ops.
func (r *Registry) SetNode(name string) {
	if r != nil {
		r.node.Store(&name)
	}
}

// NodeName returns the configured process identity ("" when unset).
func (r *Registry) NodeName() string {
	if r == nil {
		return ""
	}
	if p := r.node.Load(); p != nil {
		return *p
	}
	return ""
}

// Report captures the registry's full stats surface — snapshot, recent
// traces and the slow-op log — as the one struct every stats consumer
// renders from: the OpObsStats RPC, `sedna-cli stats --json` and the
// ops-plane /statsz endpoint all serve exactly this shape, so field names
// stay stable across surfaces by construction.
type Report struct {
	Node     string          `json:"node"`
	Snapshot Snapshot        `json:"snapshot"`
	Traces   []TraceSnapshot `json:"traces,omitempty"`
	SlowOps  []SlowOp        `json:"slow_ops,omitempty"`
	// TopKeys is the node's hot-key sketch, hottest first (DESIGN.md §13).
	TopKeys []TopKEntry `json:"top_keys,omitempty"`
	// Tenants is the per-tenant attribution table, busiest first.
	Tenants []TenantSnapshot `json:"tenants,omitempty"`
	// Flight holds the newest wide events from the flight recorder (capped;
	// /flightz serves the full ring).
	Flight []WideEvent `json:"flight,omitempty"`
	// Anomalies is the watchdog detection log, newest first.
	Anomalies []Anomaly `json:"anomalies,omitempty"`
}

// reportFlightCap bounds the flight-recorder slice embedded in a Report so
// the STATS RPC payload stays small; /flightz serves the whole ring.
const reportFlightCap = 64

// reportTopK bounds the hot-key entries embedded in a Report.
const reportTopK = 32

// Report builds the registry's current Report.
func (r *Registry) Report() Report {
	if r == nil {
		return Report{}
	}
	return Report{
		Node:      r.NodeName(),
		Snapshot:  r.Snapshot(),
		Traces:    r.Traces(),
		SlowOps:   r.SlowOps(),
		TopKeys:   r.TopKeys(reportTopK),
		Tenants:   r.TenantsSnapshot(),
		Flight:    r.FlightEvents(reportFlightCap),
		Anomalies: r.Anomalies(),
	}
}
