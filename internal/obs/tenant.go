package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// TenantRule derives a tenant tag from a key. Sedna keys are
// dataset/table/name paths, so the natural tenancy boundaries are the first
// one or two path segments; a byte-prefix rule covers foreign keyspaces.
// The zero value disables tenant attribution entirely.
type TenantRule struct {
	mode   uint8
	prefix int
}

const (
	tenantNone uint8 = iota
	tenantDataset
	tenantTable
	tenantPrefix
)

// ParseTenantRule parses a tenant-rule spec:
//
//	""          tenant attribution disabled
//	"dataset"   first path segment (everything before the first '/')
//	"table"     first two path segments ("ds/tb")
//	"prefix:N"  first N bytes of the key
func ParseTenantRule(spec string) (TenantRule, error) {
	switch {
	case spec == "":
		return TenantRule{}, nil
	case spec == "dataset":
		return TenantRule{mode: tenantDataset}, nil
	case spec == "table":
		return TenantRule{mode: tenantTable}, nil
	case strings.HasPrefix(spec, "prefix:"):
		n, err := strconv.Atoi(spec[len("prefix:"):])
		if err != nil || n < 1 {
			return TenantRule{}, fmt.Errorf("obs: bad tenant rule %q: prefix length must be a positive integer", spec)
		}
		return TenantRule{mode: tenantPrefix, prefix: n}, nil
	default:
		return TenantRule{}, fmt.Errorf("obs: unknown tenant rule %q (want \"\", dataset, table, or prefix:N)", spec)
	}
}

// Enabled reports whether the rule extracts anything.
func (t TenantRule) Enabled() bool { return t.mode != tenantNone }

// Extract returns the tenant tag for key, or "" when the rule is disabled or
// the key does not match it. Extraction is substring slicing — no
// allocation.
func (t TenantRule) Extract(key string) string {
	switch t.mode {
	case tenantDataset:
		if i := strings.IndexByte(key, '/'); i > 0 {
			return key[:i]
		}
	case tenantTable:
		if i := strings.IndexByte(key, '/'); i > 0 {
			if j := strings.IndexByte(key[i+1:], '/'); j > 0 {
				return key[:i+1+j]
			}
		}
	case tenantPrefix:
		if len(key) >= t.prefix {
			return key[:t.prefix]
		}
		if len(key) > 0 {
			return key
		}
	}
	return ""
}

// maxTenants bounds the per-tenant table; traffic beyond the cap folds into
// the overflow bucket so a tenant-cardinality explosion cannot grow memory.
const (
	maxTenants     = 128
	overflowTenant = "~other"
)

// tenantStats is the live per-tenant accumulator.
type tenantStats struct {
	reads  atomic.Uint64
	writes atomic.Uint64
	bytes  atomic.Uint64
	errors atomic.Uint64
	lat    Histogram
}

// TenantSnapshot is one tenant's merged attribution row.
type TenantSnapshot struct {
	Tenant string       `json:"tenant"`
	Reads  uint64       `json:"reads"`
	Writes uint64       `json:"writes"`
	Bytes  uint64       `json:"bytes,omitempty"`
	Errors uint64       `json:"errors,omitempty"`
	Lat    HistSnapshot `json:"lat"`
}

// SetTenantRule installs the tenant extraction rule. Nil-safe.
func (r *Registry) SetTenantRule(rule TenantRule) {
	if r == nil {
		return
	}
	r.tenantRule.Store(&rule)
}

// TenantOf applies the registry's tenant rule to key. Nil-safe; "" when
// disabled.
func (r *Registry) TenantOf(key string) string {
	if r == nil {
		return ""
	}
	rule := r.tenantRule.Load()
	if rule == nil {
		return ""
	}
	return rule.Extract(key)
}

// RecordTenantOp attributes one completed op to tenant. Nil-safe; a no-op
// for the empty tenant or when introspection is disabled.
func (r *Registry) RecordTenantOp(tenant string, write bool, bytes int, d time.Duration, failed bool) {
	if r == nil || tenant == "" || !r.introspectionOn() {
		return
	}
	ts := r.tenantFor(tenant)
	if write {
		ts.writes.Add(1)
	} else {
		ts.reads.Add(1)
	}
	ts.bytes.Add(uint64(bytes))
	if failed {
		ts.errors.Add(1)
	}
	ts.lat.Observe(d)
}

func (r *Registry) tenantFor(tenant string) *tenantStats {
	r.tenantMu.RLock()
	ts, ok := r.tenants[tenant]
	r.tenantMu.RUnlock()
	if ok {
		return ts
	}
	r.tenantMu.Lock()
	defer r.tenantMu.Unlock()
	if ts, ok = r.tenants[tenant]; ok {
		return ts
	}
	if r.tenants == nil {
		r.tenants = make(map[string]*tenantStats)
	}
	if len(r.tenants) >= maxTenants {
		if ts, ok = r.tenants[overflowTenant]; ok {
			return ts
		}
		tenant = overflowTenant
	}
	ts = &tenantStats{}
	r.tenants[tenant] = ts
	return ts
}

// TenantsSnapshot returns every tenant's attribution row, busiest first.
// Nil-safe.
func (r *Registry) TenantsSnapshot() []TenantSnapshot {
	if r == nil {
		return nil
	}
	r.tenantMu.RLock()
	out := make([]TenantSnapshot, 0, len(r.tenants))
	for name, ts := range r.tenants {
		out = append(out, TenantSnapshot{
			Tenant: name,
			Reads:  ts.reads.Load(),
			Writes: ts.writes.Load(),
			Bytes:  ts.bytes.Load(),
			Errors: ts.errors.Load(),
			Lat:    ts.lat.Snapshot(),
		})
	}
	r.tenantMu.RUnlock()
	sortTenants(out)
	return out
}

// MergeTenants folds per-node tenant rows into one cluster-wide table,
// busiest first.
func MergeTenants(lists ...[]TenantSnapshot) []TenantSnapshot {
	byName := map[string]TenantSnapshot{}
	for _, list := range lists {
		for _, t := range list {
			cur, ok := byName[t.Tenant]
			if !ok {
				byName[t.Tenant] = t
				continue
			}
			cur.Reads += t.Reads
			cur.Writes += t.Writes
			cur.Bytes += t.Bytes
			cur.Errors += t.Errors
			cur.Lat = cur.Lat.Merge(t.Lat)
			byName[t.Tenant] = cur
		}
	}
	out := make([]TenantSnapshot, 0, len(byName))
	for _, t := range byName {
		out = append(out, t)
	}
	sortTenants(out)
	return out
}

func sortTenants(out []TenantSnapshot) {
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Reads+out[i].Writes, out[j].Reads+out[j].Writes
		if oi != oj {
			return oi > oj
		}
		return out[i].Tenant < out[j].Tenant
	})
}
