package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIncrements hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this doubles as the data-race check
// for the lock-free paths, and the totals prove no increment is lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops")
			g := r.Gauge("inflight")
			h := r.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.ObserveValue(int64(i%1000) * 1000)
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("ops"); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauge("inflight"); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := s.Hist("lat")
	if h.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, n := range h.Counts {
		bucketTotal += n
	}
	if bucketTotal != h.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, h.Count)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(5)
	r.Histogram("z").Observe(time.Millisecond)
	r.SampleTrace("op").Mark("stage")
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Hists) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry names: %v", names)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.ops").Add(7)
	r.Gauge("b.items").Set(-3)
	r.Histogram("c.lat").Observe(3 * time.Millisecond)
	s := r.Snapshot()
	got, err := DecodeSnapshot(s.EncodeJSON())
	if err != nil {
		t.Fatal(err)
	}
	if got.Counter("a.ops") != 7 || got.Gauge("b.items") != -3 || got.Hist("c.lat").Count != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	text := s.Text()
	for _, want := range []string{"a.ops\t7", "b.items\t-3", "c.lat\tcount=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text %q missing %q", text, want)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(10)
	before := r.Snapshot()
	r.Counter("ops").Add(5)
	r.Counter("new").Inc()
	d := r.Snapshot().Delta(before)
	if d.Counter("ops") != 5 || d.Counter("new") != 1 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestTraceThroughContext(t *testing.T) {
	r := NewRegistry()
	r.SetTraceSampling(1) // trace everything
	tr := r.SampleTrace("write")
	if tr == nil {
		t.Fatal("sampling=1 should always trace")
	}
	ctx := WithTrace(context.Background(), tr)
	Mark(ctx, "quorum.start")
	Mark(ctx, "replica.apply")
	tr.Finish(r)

	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.Op != "write" || len(got.Stages) != 3 {
		t.Fatalf("trace = %+v", got)
	}
	for i, want := range []string{"quorum.start", "replica.apply", "done"} {
		if got.Stages[i].Name != want {
			t.Fatalf("stage %d = %q, want %q", i, got.Stages[i].Name, want)
		}
	}
	for i := 1; i < len(got.Stages); i++ {
		if got.Stages[i].At < got.Stages[i-1].At {
			t.Fatalf("stage offsets not monotone: %+v", got.Stages)
		}
	}
	if s := got.String(); !strings.HasPrefix(s, "write:") {
		t.Fatalf("trace string = %q", s)
	}
}

func TestTraceSampling(t *testing.T) {
	r := NewRegistry()
	r.SetTraceSampling(10)
	n := 0
	for i := 0; i < 100; i++ {
		if tr := r.SampleTrace("op"); tr != nil {
			n++
			tr.Finish(r)
		}
	}
	if n != 10 {
		t.Fatalf("sampled %d of 100 at 1/10", n)
	}
	r.SetTraceSampling(0)
	if tr := r.SampleTrace("op"); tr != nil {
		t.Fatal("sampling disabled but got a trace")
	}
}

func TestTraceRingBounds(t *testing.T) {
	r := NewRegistry()
	r.SetTraceSampling(1)
	for i := 0; i < 100; i++ {
		r.SampleTrace("op").Finish(r)
	}
	if got := len(r.Traces()); got != 32 {
		t.Fatalf("ring holds %d, want 32", got)
	}
}
