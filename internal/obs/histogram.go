package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-linear latency histogram, in the spirit of
// HdrHistogram: each power-of-two octave is divided into histSub linear
// sub-buckets, giving a bounded relative error of 1/histSub (12.5%) across
// the full int64 range while needing only a few hundred fixed buckets.
// Values are durations in nanoseconds; negative observations clamp to 0.
//
// Concurrent Observe calls are wait-free (one atomic add per bucket plus a
// CAS loop for the max), and Snapshot is a consistent-enough read for
// monitoring: buckets are read one by one without stopping writers, so a
// snapshot may be mid-update by a handful of observations — harmless for
// percentiles, and the invariant sum(Counts) == Count still holds per
// observation because Count is derived from the buckets at snapshot time.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
	// ex holds per-bucket exemplar trace ids (the most recent sampled trace
	// whose observation landed in that bucket). Allocated lazily on the
	// first exemplar so the many histograms that never see one stay small.
	ex atomic.Pointer[[histBuckets]atomic.Uint64]
}

const (
	// histSubBits fixes 2^histSubBits linear sub-buckets per octave.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers values up to 2^62 ns (~146 years), clamping the
	// rest into the final bucket.
	histBuckets = (63 - histSubBits) * histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := int((uint64(v) >> (uint(exp) - histSubBits)) & (histSub - 1))
	idx := (exp-histSubBits+1)*histSub + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx.
func bucketLow(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := uint(idx/histSub + histSubBits - 1)
	sub := int64(idx % histSub)
	return int64(1)<<exp + sub<<(exp-histSubBits)
}

// bucketHigh returns the largest value mapping to bucket idx.
func bucketHigh(idx int) int64 {
	if idx >= histBuckets-1 {
		return int64(1)<<62 - 1
	}
	return bucketLow(idx+1) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(int64(d)) }

// ObserveValue records one raw value (nanoseconds for latencies).
func (h *Histogram) ObserveValue(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveExemplar records one duration and, when traceID is non-zero, tags
// the value's bucket with it as the exemplar: the latest trace to land in
// that latency band. A p99 spike then links directly to a stitched trace.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	if h == nil {
		return
	}
	v := int64(d)
	h.ObserveValue(v)
	if traceID == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	exp := h.ex.Load()
	if exp == nil {
		exp = new([histBuckets]atomic.Uint64)
		if !h.ex.CompareAndSwap(nil, exp) {
			exp = h.ex.Load()
		}
	}
	exp[bucketIndex(v)].Store(traceID)
}

// exemplarIDs appends every current exemplar trace id to dst.
func (h *Histogram) exemplarIDs(dst map[uint64]struct{}) {
	exp := h.ex.Load()
	if exp == nil {
		return
	}
	for i := range exp {
		if id := exp[i].Load(); id != 0 {
			dst[id] = struct{}{}
		}
	}
}

// Time runs fn and records its wall-clock duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Sum: h.sum.Load(), Max: h.max.Load()}
	exp := h.ex.Load()
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			if s.Counts == nil {
				s.Counts = map[int]uint64{}
			}
			s.Counts[i] = n
			s.Count += n
			if exp != nil {
				if id := exp[i].Load(); id != 0 {
					if s.Exemplars == nil {
						s.Exemplars = map[int]uint64{}
					}
					s.Exemplars[i] = id
				}
			}
		}
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram. Counts is sparse
// (bucket index → count) so idle histograms serialise to almost nothing.
type HistSnapshot struct {
	Counts map[int]uint64 `json:"counts,omitempty"`
	Count  uint64         `json:"count"`
	Sum    uint64         `json:"sum"`
	Max    int64          `json:"max"`
	// Exemplars maps bucket index → the most recent trace id observed in
	// that bucket (sparse; only buckets that saw a sampled trace appear).
	Exemplars map[int]uint64 `json:"exemplars,omitempty"`
}

// Merge folds other into a copy of s and returns it. Merge is commutative
// and associative: bucket counts and sums add, maxes take the larger — so
// per-node snapshots fold into one cluster-wide histogram in any order.
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count + other.Count,
		Sum:   s.Sum + other.Sum,
		Max:   s.Max,
	}
	if other.Max > out.Max {
		out.Max = other.Max
	}
	if len(s.Counts)+len(other.Counts) > 0 {
		out.Counts = make(map[int]uint64, len(s.Counts)+len(other.Counts))
		for i, n := range s.Counts {
			out.Counts[i] += n
		}
		for i, n := range other.Counts {
			out.Counts[i] += n
		}
	}
	if len(s.Exemplars)+len(other.Exemplars) > 0 {
		out.Exemplars = make(map[int]uint64, len(s.Exemplars)+len(other.Exemplars))
		for i, id := range s.Exemplars {
			out.Exemplars[i] = id
		}
		// On collision either side's exemplar is a valid representative;
		// other's wins for determinism.
		for i, id := range other.Exemplars {
			out.Exemplars[i] = id
		}
	}
	return out
}

// Delta returns the observations recorded since prev was taken (per-bucket
// subtraction; Max falls back to the current max, which is the lifetime max
// — good enough for interval reporting and never an undercount).
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Max: s.Max}
	for i, n := range s.Counts {
		d := n - prev.Counts[i]
		if d > 0 {
			if out.Counts == nil {
				out.Counts = map[int]uint64{}
			}
			out.Counts[i] = d
			out.Count += d
		}
	}
	out.Sum = s.Sum - prev.Sum
	// Exemplars are point-in-time tags, not monotone counters: the current
	// snapshot's exemplars stand for the interval, restricted to buckets
	// that actually saw new observations.
	for i, id := range s.Exemplars {
		if out.Counts[i] > 0 {
			if out.Exemplars == nil {
				out.Exemplars = map[int]uint64{}
			}
			out.Exemplars[i] = id
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in the value's unit
// (nanoseconds for latency histograms). It interpolates linearly inside the
// winning bucket and returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var seen float64
	for idx := 0; idx < histBuckets; idx++ {
		n := s.Counts[idx]
		if n == 0 {
			continue
		}
		if seen+float64(n) > rank {
			lo, hi := bucketLow(idx), bucketHigh(idx)
			if hi > s.Max && s.Max >= lo {
				hi = s.Max
			}
			frac := (rank - seen) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += float64(n)
	}
	return s.Max
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// P50, P90 and P99 are the conventional latency percentiles.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }

// P90 returns the 90th percentile.
func (s HistSnapshot) P90() int64 { return s.Quantile(0.90) }

// P99 returns the 99th percentile.
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }
