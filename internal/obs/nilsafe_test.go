package obs

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestNilSafetyAudit calls every exported method on a nil *Registry, nil
// metric handles and a nil *Trace, asserting the no-op contract the package
// doc promises: instrumented code never branches on "is observability
// configured". A reflection sweep at the end fails the test when a new
// exported method is added without a nil-safety call here, so the audit
// cannot silently go stale.
func TestNilSafetyAudit(t *testing.T) {
	var r *Registry

	// Metric handles off a nil registry are nil and fully inert.
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	if got := r.Counter("c").Load(); got != 0 {
		t.Fatalf("nil counter Load = %d", got)
	}
	r.Gauge("g").Set(9)
	r.Gauge("g").Add(-4)
	if got := r.Gauge("g").Load(); got != 0 {
		t.Fatalf("nil gauge Load = %d", got)
	}
	r.Histogram("h").Observe(time.Millisecond)
	r.Histogram("h").ObserveValue(42)
	ran := false
	r.Histogram("h").Time(func() { ran = true })
	if !ran {
		t.Fatal("nil histogram Time must still run fn")
	}
	if hs := r.Histogram("h").Snapshot(); hs.Count != 0 || hs.Counts != nil {
		t.Fatalf("nil histogram Snapshot = %+v", hs)
	}

	// Registry-level surfaces.
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Fatalf("nil registry Snapshot = %+v", s)
	}
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry Names = %v", names)
	}

	// Tracing.
	r.SetTraceSampling(1)
	if tr := r.SampleTrace("op"); tr != nil {
		t.Fatal("nil registry sampled a trace")
	}
	if traces := r.Traces(); traces != nil {
		t.Fatalf("nil registry Traces = %v", traces)
	}
	wired := TraceContext{ID: 7, Op: "w", Stage: "client.send"}.Encode()
	if tr := r.ContinueTrace(wired); tr != nil {
		t.Fatal("nil registry continued a trace")
	}

	// Identity and the slow-op log.
	r.SetNode("n1")
	if got := r.NodeName(); got != "" {
		t.Fatalf("nil registry NodeName = %q", got)
	}
	r.SetSlowOpThreshold(time.Millisecond)
	if got := r.SlowOpThreshold(); got != 0 {
		t.Fatalf("nil registry SlowOpThreshold = %v", got)
	}
	if r.IsSlow(time.Hour) {
		t.Fatal("nil registry IsSlow = true")
	}
	r.RecordSlowOp(SlowOp{Op: "x", Dur: time.Second})
	if got := r.SlowOps(); got != nil {
		t.Fatalf("nil registry SlowOps = %v", got)
	}
	if rep := r.Report(); rep.Node != "" || rep.Traces != nil || rep.SlowOps != nil {
		t.Fatalf("nil registry Report = %+v", rep)
	}

	// Introspection plane: sketch, flight recorder, tenants, exemplars,
	// anomalies.
	r.RecordKey(99, 1, true, 64)
	if got := r.TopKeys(8); got != nil {
		t.Fatalf("nil registry TopKeys = %v", got)
	}
	r.RecordOp(WideEvent{Op: "w"})
	if got := r.FlightEvents(8); got != nil {
		t.Fatalf("nil registry FlightEvents = %v", got)
	}
	r.SetIntrospection(false)
	rule, err := ParseTenantRule("dataset")
	if err != nil {
		t.Fatalf("ParseTenantRule: %v", err)
	}
	r.SetTenantRule(rule)
	if got := r.TenantOf("ds/tb/k"); got != "" {
		t.Fatalf("nil registry TenantOf = %q", got)
	}
	r.RecordTenantOp("ds", true, 8, time.Millisecond, false)
	if got := r.TenantsSnapshot(); got != nil {
		t.Fatalf("nil registry TenantsSnapshot = %v", got)
	}
	r.Histogram("h").ObserveExemplar(time.Millisecond, 7)
	r.ObserveOp(r.Histogram("h"), time.Millisecond, nil)
	r.RecordAnomaly("kind", "detail")
	if got := r.Anomalies(); got != nil {
		t.Fatalf("nil registry Anomalies = %v", got)
	}

	// Nil traces (what SampleTrace hands back on unsampled ops).
	var tr *Trace
	tr.Mark("stage")
	if got := tr.Elapsed(); got != 0 {
		t.Fatalf("nil trace Elapsed = %v", got)
	}
	if snap := tr.Snapshot(); snap.ID != 0 || snap.Stages != nil {
		t.Fatalf("nil trace Snapshot = %+v", snap)
	}
	tr.Finish(nil)
	tr.Finish(NewRegistry())

	// A live trace finishing into a nil registry must not panic either.
	live := NewTrace("op")
	live.Mark("a")
	live.Finish(nil)

	// Context helpers around absent traces.
	ctx := WithTrace(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext after WithTrace(nil) = %v", got)
	}
	Mark(ctx, "noop")
	if enc := WireContext(ctx, "send"); enc != nil {
		t.Fatalf("WireContext without trace = %v", enc)
	}
	// Garbage on the wire decodes to "no trace" rather than an error.
	if got := NewRegistry().ContinueTrace([]byte{0xff, 0x00, 0x01}); got != nil {
		t.Fatalf("ContinueTrace(garbage) = %v", got)
	}

	auditCoverage(t)
}

// auditCoverage cross-checks the explicit calls above against the actual
// exported method sets, so adding a method without auditing it fails here.
func auditCoverage(t *testing.T) {
	t.Helper()
	covered := map[reflect.Type]map[string]bool{
		reflect.TypeOf((*Registry)(nil)): {
			"Counter": true, "Gauge": true, "Histogram": true,
			"Snapshot": true, "Names": true,
			"SampleTrace": true, "SetTraceSampling": true, "Traces": true,
			"ContinueTrace": true,
			"SetNode":       true, "NodeName": true,
			"SetSlowOpThreshold": true, "SlowOpThreshold": true,
			"IsSlow": true, "RecordSlowOp": true, "SlowOps": true,
			"Report":    true,
			"RecordKey": true, "TopKeys": true,
			"RecordOp": true, "FlightEvents": true,
			"SetIntrospection": true,
			"SetTenantRule":    true, "TenantOf": true,
			"RecordTenantOp": true, "TenantsSnapshot": true,
			"ObserveOp":     true,
			"RecordAnomaly": true, "Anomalies": true,
		},
		reflect.TypeOf((*Counter)(nil)):   {"Inc": true, "Add": true, "Load": true},
		reflect.TypeOf((*Gauge)(nil)):     {"Set": true, "Add": true, "Load": true},
		reflect.TypeOf((*Histogram)(nil)): {"Observe": true, "ObserveValue": true, "ObserveExemplar": true, "Time": true, "Snapshot": true},
		reflect.TypeOf((*Trace)(nil)):     {"Mark": true, "Elapsed": true, "Snapshot": true, "Finish": true},
	}
	for typ, methods := range covered {
		for i := 0; i < typ.NumMethod(); i++ {
			name := typ.Method(i).Name
			if !methods[name] {
				t.Errorf("%s.%s is exported but missing from the nil-safety audit", typ, name)
			}
		}
	}
}
