// Package obs is Sedna's zero-dependency observability subsystem: a
// Registry of lock-free counters, gauges and log-linear latency histograms
// (mergeable snapshots, p50/p90/p99/max), plus a lightweight per-operation
// Trace that records stage timestamps as a request flows client → transport
// → quorum → replica → memstore. Every layer of the stack shares one
// Registry per process; snapshots travel over the STATS RPC and merge
// associatively into cluster-wide views, which is how the benchmarks report
// real subsystem-level numbers instead of ad-hoc timers.
//
// All methods are nil-safe: a nil *Registry hands out nil metrics whose
// methods are no-ops, so instrumented code never branches on "is
// observability configured".
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.n.Add(delta)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a lock-free instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds a process's named metrics. Metrics are created on first
// use and live forever; lookups after creation are a read-locked map hit,
// and updates on the returned handles are lock-free. Callers should cache
// handles on hot paths.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	traces      traceRing
	sampleMu    sync.Mutex
	sampleEvery atomic.Uint64
	sampleSeq   map[string]*uint64

	node          atomic.Pointer[string]
	slow          slowRing
	slowThreshold atomic.Int64

	// Workload introspection plane (DESIGN.md §13). introspectOff is
	// inverted so the zero value records by default.
	keys          *KeySketch
	flight        flightRing
	introspectOff atomic.Bool
	anomalies     anomalyRing

	tenantRule atomic.Pointer[TenantRule]
	tenantMu   sync.RWMutex
	tenants    map[string]*tenantStats

	// exTraces pins traces referenced by histogram-bucket exemplars so an
	// exemplar trace id always resolves to a retained trace even after the
	// sampled-trace ring has wrapped.
	exMu     sync.Mutex
	exTraces map[uint64]*Trace
}

// NewRegistry returns an empty registry. Trace sampling defaults to one
// trace per 256 sampled operations per op name.
func NewRegistry() *Registry {
	r := &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		sampleSeq: map[string]*uint64{},
		keys:      NewKeySketch(defaultSketchShards, defaultSketchCap),
		exTraces:  map[uint64]*Trace{},
	}
	r.sampleEvery.Store(256)
	return r
}

// Counter returns the named counter, creating it on first use (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value. The result is a plain
// value: it can be merged with other snapshots (cluster-wide aggregation),
// diffed against an earlier one (interval measurement) and serialised.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// Names returns every registered metric name, sorted (for tests and docs).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
