//go:build !race

package obs

import (
	"testing"
	"time"
)

// The memstore/core hot path maintains the hot-key sketch inline, so sketch
// recording must not allocate in steady state: the ISSUE budget is 0 extra
// allocations per op on that path. Warm-up occurrences are allowed to build
// the per-shard index; the budget applies once slots have churned.
func TestRecordKeyZeroAllocs(t *testing.T) {
	r := NewRegistry()
	// Warm up: fill every shard's slots and force evictions so the index map
	// reaches its steady-state size.
	for i := 0; i < 10*defaultSketchShards*defaultSketchCap; i++ {
		r.RecordKey(uint64(i), int32(i%16), i%2 == 0, 32)
	}
	var h uint64
	allocs := testing.AllocsPerRun(2000, func() {
		r.RecordKey(h, int32(h%16), h%2 == 0, 32)
		h++
	})
	if allocs != 0 {
		t.Fatalf("RecordKey allocates %.2f/op in steady state, budget 0", allocs)
	}
}

// Tenant attribution on an established tenant is atomics plus one histogram
// bucket add; it must stay allocation-free too.
func TestRecordTenantOpZeroAllocs(t *testing.T) {
	r := NewRegistry()
	r.RecordTenantOp("ds", true, 32, time.Millisecond, false)
	allocs := testing.AllocsPerRun(2000, func() {
		r.RecordTenantOp("ds", true, 32, time.Millisecond, false)
	})
	if allocs != 0 {
		t.Fatalf("RecordTenantOp allocates %.2f/op in steady state, budget 0", allocs)
	}
}

// The flight recorder budget is one fixed-size event allocation per recorded
// op (the published *WideEvent) and nothing else.
func TestRecordOpAllocBudget(t *testing.T) {
	r := NewRegistry()
	r.SetNode("n1")
	ev := WideEvent{Op: "coord_write", VNode: 3, KeyHash: 9, Outcome: "ok"}
	allocs := testing.AllocsPerRun(2000, func() {
		r.RecordOp(ev)
	})
	if allocs > 1 {
		t.Fatalf("RecordOp allocates %.2f/op, budget 1", allocs)
	}
}
