package obs

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// randHistSnapshot observes n pseudo-random latencies spanning nanoseconds
// to a minute (roughly log-uniform, so many octaves get buckets) and returns
// the snapshot. The caller's rng fixes the seed for reproducibility.
func randHistSnapshot(rng *rand.Rand, n int) HistSnapshot {
	h := &Histogram{}
	for i := 0; i < n; i++ {
		v := rng.Int63n(int64(time.Minute)) >> uint(rng.Intn(32))
		h.ObserveValue(v)
	}
	return h.Snapshot()
}

// TestHistMergeCommutative checks a.Merge(b) == b.Merge(a) over random
// snapshots — the property that lets cluster stats fold in arrival order.
func TestHistMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randHistSnapshot(rng, rng.Intn(300))
		b := randHistSnapshot(rng, rng.Intn(300))
		ab, ba := a.Merge(b), b.Merge(a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: a.Merge(b) != b.Merge(a)\n%+v\n%+v", trial, ab, ba)
		}
	}
}

// TestHistMergeAssociative checks (a∪b)∪c == a∪(b∪c), so a coordinator may
// pre-merge any subset of node snapshots without changing the result.
func TestHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := randHistSnapshot(rng, rng.Intn(200))
		b := randHistSnapshot(rng, rng.Intn(200))
		c := randHistSnapshot(rng, rng.Intn(200))
		left, right := a.Merge(b).Merge(c), a.Merge(b.Merge(c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: (a∪b)∪c != a∪(b∪c)\n%+v\n%+v", trial, left, right)
		}
	}
}

// TestHistMergeRandomShards merges random per-node shards in two unrelated
// orders (a random permutation folded left and a right fold) and checks the
// results are identical, totals are conserved, and quantiles of the merged
// histogram are monotone in q and bounded by the true max — the invariants
// /metrics and the bench reports rely on when they aggregate shards.
func TestHistMergeRandomShards(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		k := 2 + rng.Intn(7)
		shards := make([]HistSnapshot, k)
		var wantCount, wantSum uint64
		var wantMax int64
		for i := range shards {
			shards[i] = randHistSnapshot(rng, rng.Intn(250))
			wantCount += shards[i].Count
			wantSum += shards[i].Sum
			if shards[i].Max > wantMax {
				wantMax = shards[i].Max
			}
		}

		var left HistSnapshot
		for _, i := range rng.Perm(k) {
			left = left.Merge(shards[i])
		}
		var right HistSnapshot
		for i := k - 1; i >= 0; i-- {
			right = shards[i].Merge(right)
		}
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: merge order changed the result\n%+v\n%+v", trial, left, right)
		}
		if left.Count != wantCount || left.Sum != wantSum || left.Max != wantMax {
			t.Fatalf("trial %d: totals not conserved: got count=%d sum=%d max=%d want %d/%d/%d",
				trial, left.Count, left.Sum, left.Max, wantCount, wantSum, wantMax)
		}

		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			v := left.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: quantiles not monotone: q=%g gave %d after %d", trial, q, v, prev)
			}
			prev = v
		}
		if left.Count > 0 && left.Quantile(1) > left.Max {
			t.Fatalf("trial %d: Quantile(1)=%d exceeds max %d", trial, left.Quantile(1), left.Max)
		}
	}
}
