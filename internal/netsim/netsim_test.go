package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sedna/internal/transport"
)

func echo(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
	return transport.Message{Op: req.Op, Body: req.Body}, nil
}

func TestLoopbackCall(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	srv := n.Endpoint("s1")
	if err := srv.Serve(echo); err != nil {
		t.Fatal(err)
	}
	cli := n.Endpoint("c1")
	resp, err := cli.Call(context.Background(), "s1", transport.Message{Op: 3, Body: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Op != 3 || string(resp.Body) != "x" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestFromAddressIsLogical(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	got := make(chan string, 1)
	n.Endpoint("s1").Serve(func(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
		got <- from
		return req, nil
	})
	n.Endpoint("client-9").Call(context.Background(), "s1", transport.Message{})
	if from := <-got; from != "client-9" {
		t.Fatalf("from = %q", from)
	}
}

func TestUnknownDestination(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	cli := n.Endpoint("c")
	if _, err := cli.Call(context.Background(), "nowhere", transport.Message{}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndpointNotServing(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	n.Endpoint("s") // exists but never called Serve
	cli := n.Endpoint("c")
	if _, err := cli.Call(context.Background(), "s", transport.Message{}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestLatencyApplied(t *testing.T) {
	n := NewNetwork(Profile{Latency: 10 * time.Millisecond}, 1)
	n.Endpoint("s").Serve(echo)
	cli := n.Endpoint("c")
	start := time.Now()
	if _, err := cli.Call(context.Background(), "s", transport.Message{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("round trip %v, want >= 20ms (two legs)", d)
	}
}

func TestBandwidthDelay(t *testing.T) {
	// 1 Mbit/s: a 12500-byte body serialises in 100ms.
	n := NewNetwork(Profile{BandwidthBps: 1e6}, 1)
	n.Endpoint("s").Serve(echo)
	cli := n.Endpoint("c")
	start := time.Now()
	if _, err := cli.Call(context.Background(), "s", transport.Message{Body: make([]byte, 12500)}); err != nil {
		t.Fatal(err)
	}
	// Both legs carry the body (echo), so >= 200ms.
	if d := time.Since(start); d < 180*time.Millisecond {
		t.Fatalf("round trip %v, want >= ~200ms", d)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	n.Endpoint("s").Serve(echo)
	cli := n.Endpoint("c")
	n.Partition("c", "s")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, "s", transport.Message{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partitioned call err = %v", err)
	}
	n.Heal("c", "s")
	if _, err := cli.Call(context.Background(), "s", transport.Message{}); err != nil {
		t.Fatalf("healed call err = %v", err)
	}
}

func TestIsolateCutsAllLinks(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	n.Endpoint("a").Serve(echo)
	n.Endpoint("b").Serve(echo)
	n.Endpoint("c").Serve(echo)
	n.Isolate("b")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := n.Endpoint("a").Call(ctx, "b", transport.Message{}); err == nil {
		t.Fatal("isolated endpoint reachable")
	}
	if _, err := n.Endpoint("a").Call(context.Background(), "c", transport.Message{}); err != nil {
		t.Fatalf("unrelated link affected: %v", err)
	}
	n.HealAll()
	if _, err := n.Endpoint("a").Call(context.Background(), "b", transport.Message{}); err != nil {
		t.Fatalf("HealAll did not restore: %v", err)
	}
}

func TestDropRateTriggersTimeouts(t *testing.T) {
	n := NewNetwork(Profile{DropRate: 1.0}, 42)
	n.Endpoint("s").Serve(echo)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := n.Endpoint("c").Call(ctx, "s", transport.Message{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestPerLinkOverride(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	n.Endpoint("s").Serve(echo)
	n.SetLink("slow", "s", Profile{Latency: 20 * time.Millisecond})
	n.Endpoint("fast")

	start := time.Now()
	n.Endpoint("fast").Call(context.Background(), "s", transport.Message{})
	fast := time.Since(start)

	start = time.Now()
	n.Endpoint("slow").Call(context.Background(), "s", transport.Message{})
	slow := time.Since(start)
	if slow < 20*time.Millisecond {
		t.Fatalf("slow link took %v", slow)
	}
	if fast > 10*time.Millisecond {
		t.Fatalf("fast link took %v", fast)
	}
}

func TestRemoteHandlerError(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	n.Endpoint("s").Serve(func(ctx context.Context, from string, req transport.Message) (transport.Message, error) {
		return transport.Message{}, errors.New("nope")
	})
	_, err := n.Endpoint("c").Call(context.Background(), "s", transport.Message{})
	if !transport.IsRemote(err) {
		t.Fatalf("err = %v, want remote", err)
	}
}

func TestClosedEndpoint(t *testing.T) {
	n := NewNetwork(Loopback(), 1)
	s := n.Endpoint("s")
	s.Serve(echo)
	s.Close()
	if _, err := n.Endpoint("c").Call(context.Background(), "s", transport.Message{}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("call to closed endpoint = %v", err)
	}
	c := n.Endpoint("c")
	c.Close()
	if _, err := c.Call(context.Background(), "s", transport.Message{}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("call from closed endpoint = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := NewNetwork(Profile{Latency: time.Millisecond}, 7)
	n.Endpoint("s").Serve(echo)
	cli := n.Endpoint("c")
	var wg sync.WaitGroup
	errs := make([]error, 50)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cli.Call(context.Background(), "s", transport.Message{Op: uint16(i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) []bool {
		n := NewNetwork(Profile{DropRate: 0.5}, seed)
		n.Endpoint("s").Serve(echo)
		cli := n.Endpoint("c")
		var outcomes []bool
		for i := 0; i < 32; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			_, err := cli.Call(ctx, "s", transport.Message{})
			cancel()
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different outcomes")
		}
	}
}

func TestServiceTimeQueues(t *testing.T) {
	// With a serial 5ms service time, 8 concurrent requests to one server
	// take ~8x5ms, not ~5ms: the queueing model behind the paper's Fig. 8
	// multi-client slowdown.
	n := NewNetwork(Profile{ServiceTime: 5 * time.Millisecond}, 1)
	n.Endpoint("s").Serve(echo)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := n.Endpoint(fmt.Sprintf("c%d", i))
			cli.Call(context.Background(), "s", transport.Message{})
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d < 35*time.Millisecond {
		t.Fatalf("8 concurrent calls finished in %v; service not serialised", d)
	}
	// A single call is ~one service time.
	start = time.Now()
	n.Endpoint("solo").Call(context.Background(), "s", transport.Message{})
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("single call took %v", d)
	}
}

func TestServiceTimeDistinctServersParallel(t *testing.T) {
	// Load on different servers does not queue against each other.
	n := NewNetwork(Profile{ServiceTime: 10 * time.Millisecond}, 1)
	for i := 0; i < 4; i++ {
		n.Endpoint(fmt.Sprintf("s%d", i)).Serve(echo)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n.Endpoint(fmt.Sprintf("c%d", i)).Call(context.Background(), fmt.Sprintf("s%d", i), transport.Message{})
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d > 35*time.Millisecond {
		t.Fatalf("independent servers serialised: %v", d)
	}
}
