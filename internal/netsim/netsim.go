// Package netsim simulates the paper's testbed network: the CLUSTER 2012
// evaluation ran nine servers on a single gigabit Ethernet segment with
// sub-millisecond round trips (§VI-A). A Network hosts any number of
// in-process endpoints that satisfy transport.Transport, injecting
// configurable per-link latency, jitter, bandwidth delay and drops, plus
// partitions for failure testing — so cluster experiments that needed a
// machine room run deterministically inside one process.
package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sedna/internal/transport"
)

// Profile describes one directional link's behaviour.
type Profile struct {
	// Latency is the one-way propagation delay applied to each message.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// BandwidthBps models serialisation delay: a message of n bytes adds
	// n*8/BandwidthBps seconds. Zero disables the term.
	BandwidthBps int64
	// DropRate is the probability in [0,1] that a message is lost; a
	// dropped request surfaces to the caller as a context timeout, like a
	// real lost packet would.
	DropRate float64
	// ServiceTime models the destination server's per-request processing
	// cost (CPU + kernel + NIC). Requests to one endpoint are serviced
	// one at a time, so concurrent load queues — which is what makes
	// multi-client sweeps slow down per client, the effect behind the
	// paper's Fig. 8. Zero disables the queueing model.
	ServiceTime time.Duration
}

// GigabitLAN approximates the paper's testbed: 1 GbE, same rack, RTT under
// a millisecond.
func GigabitLAN() Profile {
	return Profile{
		Latency:      200 * time.Microsecond,
		Jitter:       50 * time.Microsecond,
		BandwidthBps: 1e9,
		// ~0.5ms of server work per request approximates the paper's
		// dual-core 2.53 GHz Xeons; it is what makes concurrent clients
		// queue (Fig. 8).
		ServiceTime: 500 * time.Microsecond,
	}
}

// Loopback is a zero-delay profile for unit tests.
func Loopback() Profile { return Profile{} }

// Network is a registry of simulated endpoints. All methods are safe for
// concurrent use.
type Network struct {
	mu        sync.Mutex
	def       Profile
	endpoints map[string]*Endpoint
	links     map[linkKey]Profile
	cut       map[linkKey]bool
	rng       *rand.Rand
	// messages counts delivered requests (for traffic experiments such as
	// the watch-storm ablation).
	messages uint64
}

type linkKey struct{ from, to string }

// NewNetwork creates a network whose links default to the given profile.
// The seed makes drop and jitter decisions reproducible.
func NewNetwork(def Profile, seed int64) *Network {
	return &Network{
		def:       def,
		endpoints: map[string]*Endpoint{},
		links:     map[linkKey]Profile{},
		cut:       map[linkKey]bool{},
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Endpoint returns the transport bound to addr, creating it if needed.
// Distinct calls with the same addr return the same endpoint.
func (n *Network) Endpoint(addr string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep := n.endpoints[addr]; ep != nil {
		return ep
	}
	ep := &Endpoint{net: n, addr: addr}
	n.endpoints[addr] = ep
	return ep
}

// SetLink overrides the profile of the directed link from -> to.
func (n *Network) SetLink(from, to string, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = p
}

// Partition cuts both directions between a and b; calls fail like packet
// loss (they hang until the caller's deadline).
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{a, b}] = true
	n.cut[linkKey{b, a}] = true
}

// Heal repairs a partition created by Partition.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey{a, b})
	delete(n.cut, linkKey{b, a})
}

// Isolate cuts every link touching addr, simulating a machine failure that
// is still running but unreachable.
func (n *Network) Isolate(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.endpoints {
		if other != addr {
			n.cut[linkKey{addr, other}] = true
			n.cut[linkKey{other, addr}] = true
		}
	}
}

// HealEndpoint removes every cut touching addr — the inverse of Isolate —
// without disturbing partitions between other endpoints.
func (n *Network) HealEndpoint(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k := range n.cut {
		if k.from == addr || k.to == addr {
			delete(n.cut, k)
		}
	}
}

// HealAll removes all partitions.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = map[linkKey]bool{}
}

// plan decides the fate of one message: its total delay, the destination
// service time, and whether it is dropped or the link is cut.
func (n *Network) plan(from, to string, size int) (delay, service time.Duration, dropped bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[linkKey{from, to}] {
		return 0, 0, true
	}
	p, ok := n.links[linkKey{from, to}]
	if !ok {
		p = n.def
	}
	if p.DropRate > 0 && n.rng.Float64() < p.DropRate {
		return 0, 0, true
	}
	delay = p.Latency
	if p.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(p.Jitter)))
	}
	if p.BandwidthBps > 0 {
		delay += time.Duration(int64(size) * 8 * int64(time.Second) / p.BandwidthBps)
	}
	return delay, p.ServiceTime, false
}

func (n *Network) lookup(addr string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.endpoints[addr]
}

// Messages returns the total requests delivered so far.
func (n *Network) Messages() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.messages
}

func (n *Network) countMessage() {
	n.mu.Lock()
	n.messages++
	n.mu.Unlock()
}

// Reset replaces the endpoint at addr with a fresh one, simulating a process
// restart on the same machine: the old endpoint stays closed, the new one
// can Serve again.
func (n *Network) Reset(addr string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old := n.endpoints[addr]; old != nil {
		old.mu.Lock()
		old.closed = true
		old.handler = nil
		old.mu.Unlock()
	}
	ep := &Endpoint{net: n, addr: addr}
	n.endpoints[addr] = ep
	return ep
}

// Endpoint is one simulated host; it implements transport.Transport.
type Endpoint struct {
	net  *Network
	addr string

	mu      sync.Mutex
	handler transport.Handler
	closed  bool
	// svcMu is the endpoint's serial "CPU": requests holding it model the
	// per-request service time, so concurrent callers queue.
	svcMu sync.Mutex
}

var _ transport.Transport = (*Endpoint)(nil)

// Addr implements transport.Transport.
func (e *Endpoint) Addr() string { return e.addr }

// Serve implements transport.Transport.
func (e *Endpoint) Serve(h transport.Handler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	if e.handler != nil {
		return fmt.Errorf("netsim: Serve called twice on %s", e.addr)
	}
	e.handler = h
	return nil
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	e.handler = nil
	return nil
}

// Call implements transport.Caller: it applies the link profile in both
// directions and runs the destination handler.
func (e *Endpoint) Call(ctx context.Context, addr string, req transport.Message) (transport.Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return transport.Message{}, transport.ErrClosed
	}
	e.mu.Unlock()

	dst := e.net.lookup(addr)
	if dst == nil {
		return transport.Message{}, transport.ErrUnreachable
	}

	// Outbound leg.
	delay, service, dropped := e.net.plan(e.addr, addr, len(req.Body))
	if dropped {
		<-ctx.Done()
		return transport.Message{}, ctx.Err()
	}
	if err := sleepCtx(ctx, delay); err != nil {
		return transport.Message{}, err
	}

	dst.mu.Lock()
	h := dst.handler
	closed := dst.closed
	dst.mu.Unlock()
	if closed || h == nil {
		return transport.Message{}, transport.ErrUnreachable
	}
	e.net.countMessage()
	if service > 0 {
		// The destination's serial CPU: concurrent requests queue here.
		dst.svcMu.Lock()
		err := sleepCtx(ctx, service)
		dst.svcMu.Unlock()
		if err != nil {
			return transport.Message{}, err
		}
	}
	resp, err := h(ctx, e.addr, req)
	if err != nil {
		// Handler errors travel back as remote errors, mirroring TCP.
		return transport.Message{}, &transport.RemoteError{Msg: err.Error()}
	}

	// Return leg.
	delay, _, dropped = e.net.plan(addr, e.addr, len(resp.Body))
	if dropped {
		<-ctx.Done()
		return transport.Message{}, ctx.Err()
	}
	if err := sleepCtx(ctx, delay); err != nil {
		return transport.Message{}, err
	}
	return resp, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
