package kv

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleRow() *Row {
	return &Row{
		Dirty: true,
		Values: []Versioned{
			{Value: []byte("hello"), TS: Timestamp{Wall: 123, Logical: 4, Node: 5}, Source: "node-a"},
			{Value: nil, TS: Timestamp{Wall: 456, Logical: 0, Node: 9}, Source: "node-b", Deleted: true},
		},
		Monitors: []uint64{7, 42},
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	r := sampleRow()
	b := EncodeRow(r)
	if len(b) != EncodedRowSize(r) {
		t.Fatalf("EncodedRowSize = %d, actual = %d", EncodedRowSize(r), len(b))
	}
	got, err := DecodeRow(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Values, r.Values)
	}
	if got.Dirty != r.Dirty {
		t.Fatal("Dirty flag lost")
	}
	if len(got.Monitors) != 2 || got.Monitors[0] != 7 || got.Monitors[1] != 42 {
		t.Fatalf("Monitors = %v", got.Monitors)
	}
}

func TestRowCodecEmpty(t *testing.T) {
	r := &Row{}
	got, err := DecodeRow(EncodeRow(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 0 || len(got.Monitors) != 0 || got.Dirty {
		t.Fatalf("empty row round trip = %+v", got)
	}
}

func TestRowCodecNoAliasing(t *testing.T) {
	r := sampleRow()
	b := EncodeRow(r)
	got, err := DecodeRow(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = 0xff
	}
	if string(got.Values[0].Value) != "hello" || got.Values[0].Source != "node-a" {
		t.Fatal("decoded row aliases the input buffer")
	}
}

func TestRowCodecRejectsTruncation(t *testing.T) {
	b := EncodeRow(sampleRow())
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeRow(b[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(b))
		}
	}
}

func TestRowCodecRejectsTrailingGarbage(t *testing.T) {
	b := append(EncodeRow(sampleRow()), 0xde, 0xad)
	if _, err := DecodeRow(b); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestRowCodecRejectsBadVersion(t *testing.T) {
	b := EncodeRow(sampleRow())
	b[0] = 99
	if _, err := DecodeRow(b); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestRowCodecPropertyRoundTrip(t *testing.T) {
	type vspec struct {
		Val  []byte
		Wall int64
		Log  uint32
		Node uint32
		Src  string
		Del  bool
	}
	f := func(dirty bool, specs []vspec, monitors []uint64) bool {
		if len(specs) > 100 {
			specs = specs[:100]
		}
		r := &Row{Dirty: dirty, Monitors: monitors}
		seen := map[string]bool{}
		for _, s := range specs {
			if len(s.Src) > 1000 || seen[s.Src] {
				continue // codec requires one entry per source (Row invariant)
			}
			seen[s.Src] = true
			r.Values = append(r.Values, Versioned{
				Value: s.Val, TS: Timestamp{Wall: s.Wall, Logical: s.Log, Node: s.Node},
				Source: s.Src, Deleted: s.Del,
			})
		}
		got, err := DecodeRow(EncodeRow(r))
		if err != nil {
			return false
		}
		if got.Dirty != r.Dirty || len(got.Values) != len(r.Values) || len(got.Monitors) != len(r.Monitors) {
			return false
		}
		for i := range r.Values {
			a, b := r.Values[i], got.Values[i]
			if a.Source != b.Source || a.TS != b.TS || a.Deleted != b.Deleted || !bytes.Equal(a.Value, b.Value) {
				return false
			}
		}
		for i := range r.Monitors {
			if r.Monitors[i] != got.Monitors[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRow(b *testing.B) {
	r := sampleRow()
	b.ReportAllocs()
	buf := make([]byte, 0, EncodedRowSize(r))
	for i := 0; i < b.N; i++ {
		buf = AppendRow(buf[:0], r)
	}
}

func BenchmarkDecodeRow(b *testing.B) {
	blob := EncodeRow(sampleRow())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRow(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRowInto(b *testing.B) {
	blob := EncodeRow(sampleRow())
	var r Row
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeRowInto(&r, blob); err != nil {
			b.Fatal(err)
		}
	}
}
